// Package obs is the self-contained observability kernel for the
// Domino fleet: zero-allocation atomic metrics (counters, gauges,
// fixed-bucket histograms) registered in a named Registry, a
// point-in-time Snapshot API whose Merge is the federation seam a
// future dominolb uses to collapse N node snapshots into one fleet
// view, spec-valid Prometheus text exposition (with a Lint validator
// the tests and cmd/promlint share), a lock-free per-session pipeline
// flight recorder, and the nil-safe Hooks interface the hot layers
// (internal/core, internal/stream, internal/rcastore) publish stage
// events through.
//
// Design constraints, in order:
//
//  1. Hot-path operations — Counter.Add, Gauge.Set, Histogram.Observe,
//     FlightRecorder.Record — allocate nothing and take no locks, so
//     instrumentation-on is the default without breaking the perf
//     contract (bench-diff gates this in CI).
//  2. The package depends only on the standard library: it sits below
//     every other internal package and any of them may import it.
//  3. Snapshots are plain serializable values: Merge(a, b) of two node
//     snapshots behaves exactly like one registry that had observed
//     both nodes' traffic, which is what lets a balancer tier
//     federate per-node /metrics without scraping infrastructure.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair). Labels are
// fixed at registration; dynamic label values should be pre-registered
// per known value (see cmd/dominod's per-node event counters) so the
// increment path stays lock- and allocation-free.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Type is a metric family's Prometheus type.
type Type string

// Metric family types understood by the registry and the linter.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is usable, but counters are normally created via Registry.Counter so
// they appear in snapshots.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (which must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram: observation counts
// per upper bound plus a +Inf overflow bucket, a running sum, and a
// total count. Buckets are fixed at registration so Observe is one
// bounded scan plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// LatencyBuckets is the default bucket layout for per-stage pipeline
// latencies, in seconds: 1µs to 100ms in a 1-2.5-5 progression. The
// pipeline's hot stages sit in the microsecond range; anything past
// 100ms lands in +Inf and is pathological by definition.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1,
}

// sample is one registered metric instance (a label combination within
// a family). Exactly one of the value sources is set.
type sample struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// family groups every sample registered under one metric name.
type family struct {
	name, help string
	typ        Type
	keys       []string // sample signatures, registration order
	samples    map[string]*sample
}

// Registry is a named collection of metrics. Registration takes a
// lock and may allocate; it happens at service start. Reads of the
// returned metric handles are lock-free. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	names    []string // family registration order
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (and returns) a counter. Counter names must end in
// "_total" — the exposition convention the linter enforces. Registering
// the same name+labels twice returns the existing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	s := r.register(name, help, TypeCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (and returns) a gauge. Registering the same
// name+labels twice returns the existing gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, TypeGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// snapshot time — for values another subsystem already maintains
// (registry occupancy, store rows) where mirroring them into an atomic
// would add a hot-path write for a scrape-time read.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, TypeGauge, labels)
	s.fn = fn
}

// CounterFunc registers a counter whose (monotonic) value is computed
// by fn at snapshot time. The "_total" naming rule applies.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	s := r.register(name, help, TypeCounter, labels)
	s.fn = fn
}

// Histogram registers (and returns) a fixed-bucket histogram. bounds
// must be ascending; nil selects LatencyBuckets. Registering the same
// name+labels twice returns the existing histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	s := r.register(name, help, TypeHistogram, labels)
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return s.hist
}

var nameOK = func(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

func (r *Registry) register(name, help string, typ Type, labels []Label) *sample {
	if !nameOK(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameOK(l.Key) || strings.Contains(l.Key, ":") || strings.HasPrefix(l.Key, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, samples: map[string]*sample{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %q registered as %s, re-registered as %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	s := f.samples[key]
	if s == nil {
		s = &sample{labels: append([]Label(nil), labels...)}
		f.samples[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// labelKey is a sample's canonical signature: labels sorted by key, so
// registration order of labels never splits one logical series in two.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

// Bucket is one cumulative histogram bucket in a snapshot. LE is the
// finite upper bound; the implicit +Inf bucket equals Sample.Count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Sample is one metric instance's point-in-time value.
type Sample struct {
	Labels []Label `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value"`
	// Buckets/Sum/Count carry histograms; Buckets are cumulative over
	// the finite bounds, Count is the +Inf cumulative total.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
}

// Family is one metric family's point-in-time state.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help"`
	Type    Type     `json:"type"`
	Samples []Sample `json:"samples"`
}

// Snapshot is a registry's full point-in-time state: a plain
// serializable value, ordered by family registration. Snapshots from
// different nodes merge with Merge — the dominolb federation seam.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Snapshot captures every registered metric's current value.
// Func-backed metrics are evaluated here, on the scrape path, never on
// the hot path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for _, name := range r.names {
		f := r.families[name]
		fam := Family{Name: f.name, Help: f.help, Type: f.typ}
		for _, key := range f.keys {
			s := f.samples[key]
			out := Sample{Labels: s.labels}
			switch {
			case s.fn != nil:
				out.Value = s.fn()
			case s.ctr != nil:
				out.Value = float64(s.ctr.Value())
			case s.gauge != nil:
				out.Value = s.gauge.Value()
			case s.hist != nil:
				out.Buckets = make([]Bucket, len(s.hist.bounds))
				var cum int64
				for i, b := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					out.Buckets[i] = Bucket{LE: b, Count: cum}
				}
				out.Count = cum + s.hist.counts[len(s.hist.bounds)].Load()
				out.Sum = s.hist.Sum()
			}
			fam.Samples = append(fam.Samples, out)
		}
		snap.Families = append(snap.Families, fam)
	}
	return snap
}

// Merge combines node snapshots into one fleet view: counters and
// gauges sum across nodes (gauges are occupancy-style here — sessions,
// rows, slots — and fleet occupancy is the sum), histograms sum
// bucket-wise. Families and samples present on only some nodes pass
// through. Merging histograms with different bucket layouts, or one
// name with conflicting types, is an error.
func Merge(snaps ...Snapshot) (Snapshot, error) {
	type accSample struct {
		s     Sample
		order int
	}
	type accFamily struct {
		fam     Family
		order   int
		keys    map[string]*accSample
		keyList []string
	}
	acc := map[string]*accFamily{}
	var order []string
	for _, snap := range snaps {
		for _, f := range snap.Families {
			af := acc[f.Name]
			if af == nil {
				af = &accFamily{
					fam:   Family{Name: f.Name, Help: f.Help, Type: f.Type},
					order: len(order),
					keys:  map[string]*accSample{},
				}
				acc[f.Name] = af
				order = append(order, f.Name)
			}
			if af.fam.Type != f.Type {
				return Snapshot{}, fmt.Errorf("obs: merge: %q is %s on one node, %s on another", f.Name, af.fam.Type, f.Type)
			}
			for _, s := range f.Samples {
				key := labelKey(s.Labels)
				as := af.keys[key]
				if as == nil {
					cp := s
					cp.Labels = append([]Label(nil), s.Labels...)
					cp.Buckets = append([]Bucket(nil), s.Buckets...)
					af.keys[key] = &accSample{s: cp}
					af.keyList = append(af.keyList, key)
					continue
				}
				as.s.Value += s.Value
				as.s.Sum += s.Sum
				as.s.Count += s.Count
				if len(as.s.Buckets) != len(s.Buckets) {
					return Snapshot{}, fmt.Errorf("obs: merge: %q bucket layouts differ", f.Name)
				}
				for i := range s.Buckets {
					if as.s.Buckets[i].LE != s.Buckets[i].LE {
						return Snapshot{}, fmt.Errorf("obs: merge: %q bucket bounds differ", f.Name)
					}
					as.s.Buckets[i].Count += s.Buckets[i].Count
				}
			}
		}
	}
	var out Snapshot
	for _, name := range order {
		af := acc[name]
		for _, key := range af.keyList {
			af.fam.Samples = append(af.fam.Samples, af.keys[key].s)
		}
		out.Families = append(out.Families, af.fam)
	}
	return out, nil
}

// WriteText renders the snapshot in Prometheus text exposition format
// (version 0.0.4): a # HELP and # TYPE line per family, then one line
// per sample, with histogram samples expanded to _bucket/_sum/_count.
// The output always passes Lint.
func (s Snapshot) WriteText(w io.Writer) error {
	var b []byte
	for _, f := range s.Families {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.Name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.Help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.Name...)
		b = append(b, ' ')
		b = append(b, f.Type...)
		b = append(b, '\n')
		for _, smp := range f.Samples {
			switch f.Type {
			case TypeHistogram:
				for _, bk := range smp.Buckets {
					b = appendSample(b, f.Name+"_bucket", smp.Labels, fmtFloat(bk.LE), float64(bk.Count))
				}
				b = appendSample(b, f.Name+"_bucket", smp.Labels, "+Inf", float64(smp.Count))
				b = appendSample(b, f.Name+"_sum", smp.Labels, "", smp.Sum)
				b = appendSample(b, f.Name+"_count", smp.Labels, "", float64(smp.Count))
			default:
				b = appendSample(b, f.Name, smp.Labels, "", smp.Value)
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// appendSample renders one exposition line. le, when non-empty, is
// appended as the trailing "le" label (histogram buckets).
func appendSample(b []byte, name string, labels []Label, le string, v float64) []byte {
	b = append(b, name...)
	if len(labels) > 0 || le != "" {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l.Key...)
			b = append(b, '=', '"')
			b = appendEscapedValue(b, l.Value)
			b = append(b, '"')
		}
		if le != "" {
			if len(labels) > 0 {
				b = append(b, ',')
			}
			b = append(b, `le="`...)
			b = append(b, le...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, fmtFloat(v)...)
	b = append(b, '\n')
	return b
}

// fmtFloat renders a sample value: integral values without a decimal
// point (counters read naturally), everything else in shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendEscapedValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func appendEscapedValue(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedHelp escapes HELP text: backslash and newline (quotes
// are legal in help text).
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}
