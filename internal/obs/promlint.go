package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the Prometheus text-exposition validator: the format
// contract for every /metrics surface in the repo. The unit tests run
// dominod's output through it, cmd/promlint exposes it to CI's curl
// smoke, and Snapshot.WriteText promises to satisfy it.

// LintStats summarizes a validated exposition document.
type LintStats struct {
	Families int
	Samples  int
}

// lintFamily tracks one family's declared metadata and running
// histogram state while linting.
type lintFamily struct {
	name      string
	help, typ string
	closed    bool // a later family started; no more samples allowed
	samples   int
	// per non-le label signature: previous le and cumulative count, and
	// whether the +Inf bucket was seen.
	hist map[string]*lintHist
}

type lintHist struct {
	lastLE    float64
	lastCount float64
	haveInf   bool
	infCount  float64
	sawCount  bool
	countVal  float64
}

// Lint validates a Prometheus text-exposition document against the
// format rules this repo holds every /metrics endpoint to:
//
//   - every sample belongs to a family declared by # HELP and # TYPE
//     lines that precede it, and one family's samples are contiguous;
//   - metric and label names are well-formed, label values use only
//     the \\, \", \n escapes, values parse as Go floats;
//   - counter families are named *_total;
//   - histogram buckets carry le labels that strictly ascend per
//     series with nondecreasing cumulative counts, end at +Inf, and
//     agree with the series' _count sample.
//
// It returns the accumulated problems (empty means valid) plus
// document statistics.
func Lint(r io.Reader) ([]error, LintStats) {
	var errs []error
	var stats LintStats
	fams := map[string]*lintFamily{}
	var current *lintFamily
	addErr := func(line int, format string, a ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, a...)))
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseMetaLine(line)
			if !ok {
				continue // plain comment
			}
			f := fams[name]
			if f == nil {
				f = &lintFamily{name: name, hist: map[string]*lintHist{}}
				fams[name] = f
				stats.Families++
			}
			if !nameOK(name) {
				addErr(lineNo, "invalid metric name %q", name)
			}
			switch kind {
			case "HELP":
				if f.help != "" {
					addErr(lineNo, "duplicate HELP for %q", name)
				}
				if rest == "" {
					addErr(lineNo, "empty HELP text for %q", name)
				}
				f.help = rest
			case "TYPE":
				if f.typ != "" {
					addErr(lineNo, "duplicate TYPE for %q", name)
				}
				if f.samples > 0 {
					addErr(lineNo, "TYPE for %q after its samples", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addErr(lineNo, "unknown TYPE %q for %q", rest, name)
				}
				if rest == "counter" && !strings.HasSuffix(name, "_total") {
					addErr(lineNo, "counter %q must be named *_total", name)
				}
				f.typ = rest
			}
			continue
		}

		name, labels, valStr, perr := parseSampleLine(line)
		if perr != nil {
			addErr(lineNo, "%v", perr)
			continue
		}
		stats.Samples++
		famName, suffix := familyOf(name, fams)
		f := fams[famName]
		if f == nil || f.typ == "" || f.help == "" {
			addErr(lineNo, "sample %q before # HELP and # TYPE for %q", name, famName)
			continue
		}
		if f.closed {
			addErr(lineNo, "samples for %q not contiguous", famName)
		}
		if current != nil && current != f {
			current.closed = true
		}
		current = f
		f.samples++

		seen := map[string]bool{}
		le := ""
		var nonLE strings.Builder
		for _, l := range labels {
			if !nameOK(l.Key) || strings.Contains(l.Key, ":") {
				addErr(lineNo, "invalid label name %q", l.Key)
			}
			if seen[l.Key] {
				addErr(lineNo, "duplicate label %q", l.Key)
			}
			seen[l.Key] = true
			if l.Key == "le" {
				le = l.Value
			} else {
				nonLE.WriteString(l.Key)
				nonLE.WriteByte('=')
				nonLE.WriteString(strconv.Quote(l.Value))
				nonLE.WriteByte(',')
			}
		}
		val, verr := strconv.ParseFloat(valStr, 64)
		if verr != nil {
			addErr(lineNo, "bad value %q", valStr)
			continue
		}

		switch f.typ {
		case "histogram":
			h := f.hist[nonLE.String()]
			if h == nil {
				h = &lintHist{lastLE: math.Inf(-1)}
				f.hist[nonLE.String()] = h
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					addErr(lineNo, "%s_bucket without le label", famName)
					break
				}
				bound, berr := strconv.ParseFloat(le, 64)
				if berr != nil {
					addErr(lineNo, "bad le %q", le)
					break
				}
				if bound <= h.lastLE {
					addErr(lineNo, "%s buckets out of order: le=%q after le=%v", famName, le, h.lastLE)
				}
				if val < h.lastCount {
					addErr(lineNo, "%s bucket counts not cumulative at le=%q", famName, le)
				}
				h.lastLE, h.lastCount = bound, val
				if math.IsInf(bound, 1) {
					h.haveInf, h.infCount = true, val
				}
			case "_sum":
			case "_count":
				h.sawCount, h.countVal = true, val
			case "":
				addErr(lineNo, "histogram %q sample without _bucket/_sum/_count suffix", famName)
			}
		case "counter":
			if suffix != "" {
				addErr(lineNo, "counter family %q has suffixed sample %q", famName, name)
			}
			if val < 0 {
				addErr(lineNo, "counter %q is negative", name)
			}
		default:
			if suffix != "" {
				addErr(lineNo, "%s family %q has suffixed sample %q", f.typ, famName, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %w", err))
	}
	for _, f := range fams {
		if f.typ == "" && f.help == "" {
			continue
		}
		if f.samples == 0 {
			// Declared but sampleless families are legal (a histogram
			// with no observations still emits samples, so this only
			// catches HELP/TYPE with nothing under them — allowed).
			continue
		}
		if f.typ == "histogram" {
			for sig, h := range f.hist {
				if !h.haveInf {
					errs = append(errs, fmt.Errorf("histogram %s{%s}: no +Inf bucket", f.name, strings.TrimSuffix(sig, ",")))
				}
				if h.haveInf && h.sawCount && h.infCount != h.countVal {
					errs = append(errs, fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v",
						f.name, strings.TrimSuffix(sig, ","), h.infCount, h.countVal))
				}
			}
		}
	}
	return errs, stats
}

// parseMetaLine splits a "# HELP name text" / "# TYPE name type" line.
// ok is false for plain comments.
func parseMetaLine(line string) (kind, name, rest string, ok bool) {
	body, found := strings.CutPrefix(line, "# ")
	if !found {
		return "", "", "", false
	}
	kind, body, found = strings.Cut(body, " ")
	if !found || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", false
	}
	name, rest, _ = strings.Cut(body, " ")
	return kind, name, rest, true
}

// familyOf resolves a sample name to its declared family: exact match
// first, then the histogram/summary suffixes.
func familyOf(name string, fams map[string]*lintFamily) (family, suffix string) {
	if _, ok := fams[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, exists := fams[base]; exists && (f.typ == "histogram" || f.typ == "summary") {
				return base, suf
			}
		}
	}
	return name, ""
}

// parseSampleLine parses `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []Label, value string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !nameOK(name) {
		return "", nil, "", fmt.Errorf("invalid sample name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, "", fmt.Errorf("unterminated label set")
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, "", err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want `value [timestamp]` after name, got %q", strings.TrimSpace(rest))
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// parseLabels parses the interior of a label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %q: trailing backslash", key)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q: bad escape \\%c", key, s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", key)
		}
		out = append(out, Label{Key: key, Value: val.String()})
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}
