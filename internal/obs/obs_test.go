package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "help")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := reg.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := reg.Histogram("h_seconds", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	snap := reg.Snapshot()
	var hs *Sample
	for i := range snap.Families {
		if snap.Families[i].Name == "h_seconds" {
			hs = &snap.Families[i].Samples[0]
		}
	}
	if hs == nil {
		t.Fatal("h_seconds missing from snapshot")
	}
	// Cumulative: <=1 holds {0.5, 1}; <=10 adds 5; <=100 adds 50; +Inf adds 500.
	want := []Bucket{{1, 2}, {10, 3}, {100, 4}}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if hs.Count != 5 {
		t.Fatalf("snapshot count = %d", hs.Count)
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "h", L("k", "v"))
	b := reg.Counter("dup_total", "h", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels did not return the same counter")
	}
	other := reg.Counter("dup_total", "h", L("k", "w"))
	if other == a {
		t.Fatal("different labels returned the same counter")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("counter without _total", func() { reg.Counter("bad", "h") })
	mustPanic("invalid name", func() { reg.Gauge("0bad", "h") })
	mustPanic("invalid label", func() { reg.Gauge("ok", "h", L("0bad", "v")) })
	mustPanic("type conflict", func() { reg.Gauge("dup_total", "h") })
	mustPanic("descending bounds", func() { reg.Histogram("hh", "h", []float64{2, 1}) })
}

// TestSnapshotMergeFederation is the dominolb federation seam: merging
// two node registries' snapshots must behave like one registry that
// observed both nodes' traffic.
func TestSnapshotMergeFederation(t *testing.T) {
	mk := func(sessions int64, lat []float64, cell string) Snapshot {
		reg := NewRegistry()
		reg.Counter("node_sessions_total", "sessions").Add(sessions)
		reg.Gauge("node_active", "active").Set(float64(sessions % 3))
		reg.Counter("node_cell_total", "per cell", L("cell", cell)).Add(2)
		h := reg.Histogram("node_latency_seconds", "lat", []float64{0.001, 0.01})
		for _, v := range lat {
			h.Observe(v)
		}
		return reg.Snapshot()
	}
	a := mk(5, []float64{0.0005, 0.005}, "amarisoft")
	b := mk(7, []float64{0.02}, "tdd")

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range m.Families {
		byName[f.Name] = f
	}
	if v := byName["node_sessions_total"].Samples[0].Value; v != 12 {
		t.Fatalf("merged counter = %v, want 12", v)
	}
	if v := byName["node_active"].Samples[0].Value; v != 3 {
		t.Fatalf("merged gauge = %v, want 3 (2+1)", v)
	}
	if n := len(byName["node_cell_total"].Samples); n != 2 {
		t.Fatalf("per-cell samples = %d, want the union 2", n)
	}
	h := byName["node_latency_seconds"].Samples[0]
	if h.Count != 3 {
		t.Fatalf("merged hist count = %d", h.Count)
	}
	if h.Buckets[0].Count != 1 || h.Buckets[1].Count != 2 {
		t.Fatalf("merged buckets = %+v", h.Buckets)
	}
	if math.Abs(h.Sum-0.0255) > 1e-12 {
		t.Fatalf("merged sum = %v", h.Sum)
	}

	// Merged output still passes the exposition linter.
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if errs, _ := Lint(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Fatalf("merged exposition invalid: %v\n%s", errs, sb.String())
	}

	// Conflicting layouts fail loudly.
	reg := NewRegistry()
	reg.Histogram("node_latency_seconds", "lat", []float64{1, 2, 3}).Observe(1)
	if _, err := Merge(a, reg.Snapshot()); err == nil {
		t.Fatal("merging mismatched bucket layouts did not error")
	}
	regA := NewRegistry()
	regA.Gauge("conflict", "x").Set(1)
	regB := NewRegistry()
	regB.Histogram("conflict", "x", []float64{1}).Observe(1)
	if _, err := Merge(regA.Snapshot(), regB.Snapshot()); err == nil {
		t.Fatal("merging conflicting types did not error")
	}
}

func TestWriteTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a counter").Add(2)
	reg.Gauge("b", "a gauge with \\ and\nnewline", L("cell", `va"l\ue`)).Set(1.5)
	reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1}).Observe(0.05)
	var sb strings.Builder
	if err := reg.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total a counter\n",
		"# TYPE a_total counter\n",
		"a_total 2\n",
		"# HELP b a gauge with \\\\ and\\nnewline\n",
		`b{cell="va\"l\\ue"} 1.5` + "\n",
		`lat_seconds_bucket{le="0.01"} 0`,
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.05\n",
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs, stats := Lint(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("own exposition invalid: %v", errs)
	} else if stats.Families != 3 {
		t.Fatalf("lint saw %d families, want 3", stats.Families)
	}
}

// TestHotPathZeroAlloc pins the kernel's core contract: the operations
// that sit on ingest hot paths allocate nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "h")
	g := reg.Gauge("g", "h")
	h := reg.Histogram("h_seconds", "h", nil)
	names := NewNameTable()
	names.Intern("dl_grant_starvation")
	rec := NewFlightRecorder(64, names)
	name := "dl_grant_starvation"
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(42) }},
		{"Gauge.Add", func() { g.Add(1) }},
		{"Histogram.Observe", func() { h.Observe(0.0023) }},
		{"FlightRecorder.Record", func() {
			rec.Record(Event{Kind: EvNodeFired, Wall: 1, Sim: 2, NameID: names.ID(name), N: 3})
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
