package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file is the scrape half of the dominolb federation seam:
// ParseText turns a backend's /metrics text back into the Snapshot it
// was rendered from, so the balancer can obs.Merge per-node snapshots
// into one fleet exposition. It is the inverse of Snapshot.WriteText
// and is deliberately strict — it parses the dialect WriteText emits
// (HELP then TYPE then contiguous samples, counter/gauge/histogram
// only), not arbitrary Prometheus text. Anything else is an error,
// because a half-parsed snapshot would merge into silently wrong
// fleet numbers.

// parseHist accumulates one histogram series (one non-le label
// signature) while its _bucket/_sum/_count lines stream past.
type parseHist struct {
	labels   []Label // the series labels minus le
	buckets  []Bucket
	haveInf  bool
	infCount int64
	sum      float64
	count    int64
	sawCount bool
}

// parseFam is one family under assembly.
type parseFam struct {
	fam Family
	// histogram series by labelKey, in first-seen order.
	hist  map[string]*parseHist
	hkeys []string
}

// ParseText parses a Prometheus text exposition document written by
// Snapshot.WriteText back into the equivalent Snapshot. Family and
// sample order follow the document; histogram series are reassembled
// from their _bucket/_sum/_count lines and validated (le bounds
// ascending, +Inf present and equal to _count). ParseText(w) after
// s.WriteText(w) yields s again, so scrape → parse → Merge →
// WriteText composes losslessly across nodes.
func ParseText(r io.Reader) (Snapshot, error) {
	fams := map[string]*parseFam{}
	var order []*parseFam
	var cur *parseFam

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	fail := func(format string, a ...any) (Snapshot, error) {
		return Snapshot{}, fmt.Errorf("obs: parse line %d: %s", lineNo, fmt.Sprintf(format, a...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseMetaLine(line)
			if !ok {
				continue // plain comment
			}
			switch kind {
			case "HELP":
				if fams[name] != nil {
					return fail("family %q declared twice", name)
				}
				cur = &parseFam{
					fam:  Family{Name: name, Help: unescapeHelp(rest)},
					hist: map[string]*parseHist{},
				}
				fams[name] = cur
				order = append(order, cur)
			case "TYPE":
				if cur == nil || cur.fam.Name != name {
					return fail("TYPE %q without preceding HELP", name)
				}
				if cur.fam.Type != "" {
					return fail("duplicate TYPE for %q", name)
				}
				switch Type(rest) {
				case TypeCounter, TypeGauge, TypeHistogram:
					cur.fam.Type = Type(rest)
				default:
					return fail("unsupported TYPE %q for %q", rest, name)
				}
			}
			continue
		}

		name, labels, valStr, err := parseSampleLine(line)
		if err != nil {
			return fail("%v", err)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fail("bad value %q", valStr)
		}
		if cur == nil || cur.fam.Type == "" {
			return fail("sample %q before # HELP and # TYPE", name)
		}
		if cur.fam.Type != TypeHistogram {
			if name != cur.fam.Name {
				return fail("sample %q outside family %q block", name, cur.fam.Name)
			}
			cur.fam.Samples = append(cur.fam.Samples, Sample{Labels: labels, Value: val})
			continue
		}

		suffix, ok := strings.CutPrefix(name, cur.fam.Name)
		if !ok {
			return fail("sample %q outside histogram %q block", name, cur.fam.Name)
		}
		var le string
		series := labels[:0:0]
		for _, l := range labels {
			if l.Key == "le" {
				le = l.Value
				continue
			}
			series = append(series, l)
		}
		if len(series) == 0 {
			series = nil // a le-only label set means an unlabeled series
		}
		h := cur.hist[labelKey(series)]
		if h == nil {
			h = &parseHist{labels: series, buckets: []Bucket{}}
			cur.hist[labelKey(series)] = h
			cur.hkeys = append(cur.hkeys, labelKey(series))
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return fail("%s_bucket without le label", cur.fam.Name)
			}
			n, ierr := sampleInt(val)
			if ierr != nil {
				return fail("bucket count %q: %v", valStr, ierr)
			}
			if le == "+Inf" {
				h.haveInf, h.infCount = true, n
				break
			}
			bound, berr := strconv.ParseFloat(le, 64)
			if berr != nil || math.IsInf(bound, 0) {
				return fail("bad le %q", le)
			}
			if h.haveInf {
				return fail("%s bucket after +Inf", cur.fam.Name)
			}
			if k := len(h.buckets); k > 0 && bound <= h.buckets[k-1].LE {
				return fail("%s buckets out of order at le=%q", cur.fam.Name, le)
			}
			h.buckets = append(h.buckets, Bucket{LE: bound, Count: n})
		case "_sum":
			h.sum = val
		case "_count":
			n, ierr := sampleInt(val)
			if ierr != nil {
				return fail("histogram count %q: %v", valStr, ierr)
			}
			h.sawCount, h.count = true, n
		default:
			return fail("histogram sample %q: want _bucket/_sum/_count suffix", name)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse: %w", err)
	}

	var out Snapshot
	for _, pf := range order {
		if pf.fam.Type == "" {
			return Snapshot{}, fmt.Errorf("obs: parse: family %q has HELP but no TYPE", pf.fam.Name)
		}
		for _, key := range pf.hkeys {
			h := pf.hist[key]
			if !h.haveInf {
				return Snapshot{}, fmt.Errorf("obs: parse: histogram %s{%s}: no +Inf bucket", pf.fam.Name, strings.TrimSuffix(key, ","))
			}
			if h.sawCount && h.count != h.infCount {
				return Snapshot{}, fmt.Errorf("obs: parse: histogram %s{%s}: +Inf bucket %d != _count %d", pf.fam.Name, strings.TrimSuffix(key, ","), h.infCount, h.count)
			}
			pf.fam.Samples = append(pf.fam.Samples, Sample{
				Labels:  h.labels,
				Buckets: h.buckets,
				Sum:     h.sum,
				Count:   h.infCount,
			})
		}
		out.Families = append(out.Families, pf.fam)
	}
	return out, nil
}

// sampleInt converts an exposition value that must be a cumulative
// count back to int64.
func sampleInt(v float64) (int64, error) {
	if v != math.Trunc(v) || math.Abs(v) >= 1e15 {
		return 0, fmt.Errorf("not an integral count")
	}
	return int64(v), nil
}

// unescapeHelp reverses appendEscapedHelp: \\ and \n back to their
// literal characters.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
