package obs

import (
	"io"
	"strconv"
	"sync/atomic"
)

// This file is the pipeline flight recorder: a fixed-capacity,
// lock-free ring buffer of per-session stage events. Each event
// carries both a wall-clock stamp (when it really happened on this
// node) and the deterministic sim.Time the pipeline was processing, so
// a dump of a misbehaving session can be diffed against a replay of
// the same trace: the sim-time-ordered event sequence is reproducible,
// the wall column shows where real time was spent. cmd/dominod keeps
// one recorder per session and serves dumps at
// GET /debug/flightrec/{session}.
//
// Every slot is a handful of atomic words guarded by a per-slot
// sequence (a seqlock): Record publishes the words between an odd and
// an even sequence store, readers re-check the sequence around their
// loads and skip slots caught mid-overwrite. No field is a pointer or
// a string — names travel as NameTable IDs — so the ring is safe under
// the race detector, never blocks the writer, and Record allocates
// nothing.

// EventKind identifies a pipeline stage event.
type EventKind uint8

// Pipeline stage events, in rough pipeline order.
const (
	// EvIngestChunk: one ingest chunk decoded and pushed; N = records,
	// Sim = stream watermark after the chunk.
	EvIngestChunk EventKind = iota + 1
	// EvWindowEvaluated: one detection window evaluated; Sim = window
	// end.
	EvWindowEvaluated
	// EvNodeFired: a causal-graph node's event run opened; Name = node,
	// Sim = run start.
	EvNodeFired
	// EvNodeRunClosed: a node's event run closed; Name = node, Sim =
	// run end, N = windows in the run.
	EvNodeRunClosed
	// EvChainRunOpened: a causal chain matched, opening a run; Name =
	// chain signature, Sim = run start.
	EvChainRunOpened
	// EvChainRunClosed: a chain run closed; Name = chain signature,
	// Sim = run end, N = windows in the run.
	EvChainRunClosed
	// EvReportStored: the session's final report was persisted to the
	// RCA store; Sim = session duration.
	EvReportStored
	// EvSessionEvicted: the session was evicted from the registry
	// (wall-clock only; Sim = 0).
	EvSessionEvicted
)

var eventKindNames = [...]string{
	EvIngestChunk:     "ingest_chunk",
	EvWindowEvaluated: "window_evaluated",
	EvNodeFired:       "node_fired",
	EvNodeRunClosed:   "node_run_closed",
	EvChainRunOpened:  "chain_run_opened",
	EvChainRunClosed:  "chain_run_closed",
	EvReportStored:    "report_stored",
	EvSessionEvicted:  "session_evicted",
}

// String returns the event kind's JSONL name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// NameTable maps the fixed universe of event names (causal-graph
// nodes, chain signatures) to dense IDs so flight-recorder slots stay
// pointer-free. Intern the universe at setup; ID and Name are
// read-only afterwards and safe for concurrent use. ID 0 is reserved
// for "no name".
type NameTable struct {
	ids   map[string]uint32
	names []string
}

// NewNameTable returns a table with only the empty name (ID 0).
func NewNameTable() *NameTable {
	return &NameTable{ids: map[string]uint32{"": 0}, names: []string{""}}
}

// Intern assigns (or returns) the ID for a name. Not safe concurrently
// with ID/Name — call during setup, before recording starts.
func (t *NameTable) Intern(name string) uint32 {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// ID returns a name's ID, or 0 if it was never interned.
func (t *NameTable) ID(name string) uint32 { return t.ids[name] }

// Name returns the name for an ID ("" for 0 or unknown IDs).
func (t *NameTable) Name(id uint32) string {
	if int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of interned names, including the empty name.
func (t *NameTable) Len() int { return len(t.names) }

// Event is one recorded stage event. Wall is wall-clock nanoseconds
// (non-deterministic, excluded from replay comparison); Sim is the
// deterministic pipeline position in sim.Time microseconds; NameID
// resolves through the recorder's NameTable; N is kind-specific (see
// the EventKind docs).
type Event struct {
	Kind   EventKind
	Wall   int64
	Sim    int64
	NameID uint32
	N      int64
}

// slot is one ring entry: a seqlock word plus the event packed into
// atomic words (kind and name ID share one). seq is odd while a write
// is in flight and (index+1)<<1 once generation `index` is published.
type slot struct {
	seq  atomic.Uint64
	kn   atomic.Uint64 // kind | nameID<<8
	wall atomic.Int64
	sim  atomic.Int64
	n    atomic.Int64
}

// FlightRecorder is a lock-free ring of the most recent events.
// Record is single-writer (one goroutine owns a session's ingest) and
// allocation-free; dumps may run concurrently from other goroutines
// and skip slots they catch mid-write instead of blocking the
// pipeline.
type FlightRecorder struct {
	mask  uint64
	w     atomic.Uint64 // total events ever recorded
	slots []slot
	names *NameTable
}

// NewFlightRecorder returns a recorder retaining the last `capacity`
// events (rounded up to a power of two, minimum 16). names resolves
// event name IDs in dumps; nil is allowed when no events carry names.
func NewFlightRecorder(capacity int, names *NameTable) *FlightRecorder {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]slot, n), names: names}
}

// Cap returns the ring capacity in events.
func (r *FlightRecorder) Cap() int { return len(r.slots) }

// Names returns the recorder's name table (may be nil).
func (r *FlightRecorder) Names() *NameTable { return r.names }

// Total returns the number of events ever recorded; Total() - Cap(),
// when positive, is how many were overwritten.
func (r *FlightRecorder) Total() int64 { return int64(r.w.Load()) }

// Record appends one event, overwriting the oldest once the ring is
// full. It never blocks and never allocates.
func (r *FlightRecorder) Record(ev Event) {
	i := r.w.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(i<<1 | 1)
	s.kn.Store(uint64(ev.Kind) | uint64(ev.NameID)<<8)
	s.wall.Store(ev.Wall)
	s.sim.Store(ev.Sim)
	s.n.Store(ev.N)
	s.seq.Store((i + 1) << 1)
}

// Reset empties the recorder in place (the session-recycling path).
// Not safe concurrently with Record on the same recorder.
func (r *FlightRecorder) Reset() {
	for i := range r.slots {
		r.slots[i].seq.Store(0)
	}
	r.w.Store(0)
}

// load copies slot contents for generation i if it is cleanly
// published, skipping slots a concurrent Record has caught mid-write.
func (r *FlightRecorder) load(i uint64) (Event, bool) {
	s := &r.slots[i&r.mask]
	want := (i + 1) << 1
	if s.seq.Load() != want {
		return Event{}, false
	}
	kn := s.kn.Load()
	ev := Event{
		Kind:   EventKind(kn & 0xff),
		NameID: uint32(kn >> 8),
		Wall:   s.wall.Load(),
		Sim:    s.sim.Load(),
		N:      s.n.Load(),
	}
	if s.seq.Load() != want {
		return Event{}, false
	}
	return ev, true
}

// retained returns the [start, end) generation range currently held.
func (r *FlightRecorder) retained() (start, end uint64) {
	end = r.w.Load()
	if end > uint64(len(r.slots)) {
		start = end - uint64(len(r.slots))
	}
	return start, end
}

// Events returns the retained events, oldest first. Slots caught
// mid-overwrite by a concurrent Record are skipped, so a dump taken
// during ingest is a consistent (possibly slightly thinned) view.
func (r *FlightRecorder) Events() []Event {
	start, end := r.retained()
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		if ev, ok := r.load(i); ok {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first. With withWall false the wall_ns field is omitted — the
// remaining fields (seq, kind, sim_us, name, n) are deterministic for
// a fixed-seed session, which is what the replay-determinism tests
// compare.
func (r *FlightRecorder) WriteJSONL(w io.Writer, withWall bool) error {
	start, end := r.retained()
	var line []byte
	for i := start; i < end; i++ {
		ev, ok := r.load(i)
		if !ok {
			continue
		}
		line = line[:0]
		line = append(line, `{"seq":`...)
		line = strconv.AppendUint(line, i, 10)
		line = append(line, `,"kind":"`...)
		line = append(line, ev.Kind.String()...)
		line = append(line, '"')
		if withWall {
			line = append(line, `,"wall_ns":`...)
			line = strconv.AppendInt(line, ev.Wall, 10)
		}
		line = append(line, `,"sim_us":`...)
		line = strconv.AppendInt(line, ev.Sim, 10)
		if ev.NameID != 0 {
			name := ""
			if r.names != nil {
				name = r.names.Name(ev.NameID)
			}
			line = append(line, `,"name":`...)
			line = strconv.AppendQuote(line, name)
		}
		if ev.N != 0 {
			line = append(line, `,"n":`...)
			line = strconv.AppendInt(line, ev.N, 10)
		}
		line = append(line, '}', '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
