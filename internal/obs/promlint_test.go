package obs

import (
	"strings"
	"testing"
)

const validExposition = `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{code="200"} 41
app_requests_total{code="500"} 1
# HELP app_active_sessions Sessions currently open.
# TYPE app_active_sessions gauge
app_active_sessions 3
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 2
app_latency_seconds_bucket{le="0.1"} 5
app_latency_seconds_bucket{le="+Inf"} 6
app_latency_seconds_sum 0.73
app_latency_seconds_count 6
`

func TestLintValidDocument(t *testing.T) {
	errs, stats := Lint(strings.NewReader(validExposition))
	if len(errs) != 0 {
		t.Fatalf("valid document rejected: %v", errs)
	}
	if stats.Families != 3 {
		t.Fatalf("families = %d, want 3", stats.Families)
	}
	if stats.Samples != 8 {
		t.Fatalf("samples = %d, want 8", stats.Samples)
	}
}

func TestLintInvalidDocuments(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{
			"sample without metadata",
			"orphan_metric 1\n",
			"before # HELP and # TYPE",
		},
		{
			"counter without _total",
			"# HELP bad Requests.\n# TYPE bad counter\nbad 1\n",
			"must be named *_total",
		},
		{
			"negative counter",
			"# HELP c_total C.\n# TYPE c_total counter\nc_total -1\n",
			"is negative",
		},
		{
			"bad label escape",
			"# HELP g G.\n# TYPE g gauge\ng{cell=\"a\\qb\"} 1\n",
			`bad escape \q`,
		},
		{
			"unquoted label value",
			"# HELP g G.\n# TYPE g gauge\ng{cell=bare} 1\n",
			"not quoted",
		},
		{
			"bad value",
			"# HELP g G.\n# TYPE g gauge\ng one\n",
			`bad value "one"`,
		},
		{
			"non-monotonic le",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"0.01\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"buckets out of order",
		},
		{
			"non-cumulative buckets",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"missing +Inf bucket",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf bucket",
		},
		{
			"+Inf disagrees with _count",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count",
		},
		{
			"interleaved families",
			"# HELP a A.\n# TYPE a gauge\n# HELP b B.\n# TYPE b gauge\na 1\nb 1\na 2\n",
			"not contiguous",
		},
		{
			"duplicate TYPE",
			"# HELP g G.\n# TYPE g gauge\n# TYPE g gauge\ng 1\n",
			"duplicate TYPE",
		},
		{
			"unknown TYPE",
			"# HELP g G.\n# TYPE g matrix\ng 1\n",
			"unknown TYPE",
		},
		{
			"duplicate label",
			"# HELP g G.\n# TYPE g gauge\ng{a=\"1\",a=\"2\"} 1\n",
			`duplicate label "a"`,
		},
		{
			"invalid metric name",
			"# HELP 0g G.\n# TYPE 0g gauge\n0g 1\n",
			"invalid",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs, _ := Lint(strings.NewReader(tc.doc))
			if len(errs) == 0 {
				t.Fatalf("document accepted, want error containing %q", tc.wantErr)
			}
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.wantErr) {
					return
				}
			}
			t.Fatalf("no error contains %q; got %v", tc.wantErr, errs)
		})
	}
}
