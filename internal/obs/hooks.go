package obs

// Hooks is the seam the pipeline's hot layers publish stage events
// through: internal/core fires the node/chain run transitions,
// internal/stream the window evaluations, internal/rcastore the store
// lifecycle. Every publishing site is nil-guarded, so a layer with no
// hooks installed pays one predictable branch and nothing else — the
// zero-alloc benchmark numbers are unchanged when observability is
// disabled, and implementations are expected to stay allocation-free
// so they remain unchanged when it is enabled (cmd/dominod's
// implementation records into a FlightRecorder and bumps registry
// counters, both zero-alloc).
//
// Times are sim.Time microseconds as int64 — obs sits below
// internal/sim and keeps its stdlib-only dependency rule.
//
// Implementations embed NopHooks and override what they observe.
type Hooks interface {
	// WindowEvaluated fires after each detection window [start, end)
	// is evaluated and stepped through the incremental engine.
	WindowEvaluated(start, end int64)
	// NodeFired fires when a causal-graph node's event run opens.
	NodeFired(node string, at int64)
	// NodeRunClosed fires when a node's event run closes after
	// `windows` consecutive windows.
	NodeRunClosed(node string, start, end int64, windows int)
	// ChainRunOpened fires when a causal chain matches, opening a run.
	// chain is the chain's DSL signature ("cause --> ... --> consequence").
	ChainRunOpened(chain string, at int64)
	// ChainRunClosed fires when a chain run closes.
	ChainRunClosed(chain string, start, end int64, windows int)
	// StoreInserted fires after rows are inserted into the RCA store.
	StoreInserted(rows int)
	// StoreEvicted fires when retention evicts rows from the RCA store.
	StoreEvicted(rows int)
	// StoreQueried fires once per RCA-store query evaluation.
	StoreQueried()
	// StoreSpilled fires after a spill write, with the rows written.
	StoreSpilled(rows int)
	// JournalAppended fires after records are appended to the RCA
	// store's write-ahead journal.
	JournalAppended(records int)
	// JournalSynced fires after the journal fsyncs (per the batching
	// policy, so appends-per-sync is JournalAppended/JournalSynced).
	JournalSynced()
	// JournalReplayed fires once per recovery with the records replayed
	// into the store and the duplicates skipped.
	JournalReplayed(replayed, deduped int)
	// JournalCheckpointed fires after an atomic checkpoint write, with
	// the rows persisted.
	JournalCheckpointed(rows int)
}

// NopHooks implements Hooks with no-ops; embed it to implement only
// the events a layer observes.
type NopHooks struct{}

// WindowEvaluated implements Hooks.
func (NopHooks) WindowEvaluated(start, end int64) {}

// NodeFired implements Hooks.
func (NopHooks) NodeFired(node string, at int64) {}

// NodeRunClosed implements Hooks.
func (NopHooks) NodeRunClosed(node string, start, end int64, windows int) {}

// ChainRunOpened implements Hooks.
func (NopHooks) ChainRunOpened(chain string, at int64) {}

// ChainRunClosed implements Hooks.
func (NopHooks) ChainRunClosed(chain string, start, end int64, windows int) {}

// StoreInserted implements Hooks.
func (NopHooks) StoreInserted(rows int) {}

// StoreEvicted implements Hooks.
func (NopHooks) StoreEvicted(rows int) {}

// StoreQueried implements Hooks.
func (NopHooks) StoreQueried() {}

// StoreSpilled implements Hooks.
func (NopHooks) StoreSpilled(rows int) {}

// JournalAppended implements Hooks.
func (NopHooks) JournalAppended(records int) {}

// JournalSynced implements Hooks.
func (NopHooks) JournalSynced() {}

// JournalReplayed implements Hooks.
func (NopHooks) JournalReplayed(replayed, deduped int) {}

// JournalCheckpointed implements Hooks.
func (NopHooks) JournalCheckpointed(rows int) {}
