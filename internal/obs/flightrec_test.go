package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRetainsNewest(t *testing.T) {
	r := NewFlightRecorder(10, nil) // rounds up to 16
	if r.Cap() != 16 {
		t.Fatalf("cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.Record(Event{Kind: EvWindowEvaluated, Sim: int64(i)})
	}
	if r.Total() != 40 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := int64(24 + i); ev.Sim != want {
			t.Fatalf("event %d: sim %d, want %d (oldest-first, newest 16)", i, ev.Sim, want)
		}
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	names := NewNameTable()
	quoted := names.Intern(`q"uote`)
	r := NewFlightRecorder(16, names)
	r.Record(Event{Kind: EvIngestChunk, Wall: 12345, Sim: 1000, N: 256})
	r.Record(Event{Kind: EvNodeFired, Wall: 12346, Sim: 2000, NameID: quoted})
	r.Record(Event{Kind: EvSessionEvicted, Wall: 12347})

	var withWall, noWall strings.Builder
	if err := r.WriteJSONL(&withWall, true); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&noWall, false); err != nil {
		t.Fatal(err)
	}
	wantWall := `{"seq":0,"kind":"ingest_chunk","wall_ns":12345,"sim_us":1000,"n":256}
{"seq":1,"kind":"node_fired","wall_ns":12346,"sim_us":2000,"name":"q\"uote"}
{"seq":2,"kind":"session_evicted","wall_ns":12347,"sim_us":0}
`
	if withWall.String() != wantWall {
		t.Fatalf("with wall:\n%s\nwant:\n%s", withWall.String(), wantWall)
	}
	if strings.Contains(noWall.String(), "wall_ns") {
		t.Fatalf("wall-excluded dump still carries wall_ns:\n%s", noWall.String())
	}
	if !strings.Contains(noWall.String(), `{"seq":1,"kind":"node_fired","sim_us":2000,"name":"q\"uote"}`) {
		t.Fatalf("wall-excluded dump malformed:\n%s", noWall.String())
	}
}

func TestFlightRecorderReset(t *testing.T) {
	r := NewFlightRecorder(16, nil)
	r.Record(Event{Kind: EvReportStored, Sim: 5})
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatalf("reset recorder not empty: total=%d events=%d", r.Total(), len(r.Events()))
	}
	r.Record(Event{Kind: EvWindowEvaluated, Sim: 9})
	evs := r.Events()
	if len(evs) != 1 || evs[0].Sim != 9 {
		t.Fatalf("post-reset events = %+v", evs)
	}
}

// TestFlightRecorderConcurrentDump races one writer against dump
// readers (run under -race in CI): dumps must return only fully
// published events, never torn ones.
func TestFlightRecorderConcurrentDump(t *testing.T) {
	r := NewFlightRecorder(32, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Record(Event{Kind: EvWindowEvaluated, Sim: i, N: i * 2})
		}
	}()
	for i := 0; i < 200; i++ {
		for _, ev := range r.Events() {
			if ev.Kind != EvWindowEvaluated || ev.N != ev.Sim*2 {
				t.Errorf("torn event: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}
