package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// roundTripRegistry builds a registry exercising every metric kind and
// the exposition escapes, returns its snapshot.
func roundTripSnapshot(t *testing.T) Snapshot {
	t.Helper()
	r := NewRegistry()
	c := r.Counter("rt_requests_total", "Requests handled.", L("node", "a"), L("path", `with "quotes" and \slash`))
	c.Add(41)
	r.Counter("rt_requests_total", "Requests handled.", L("node", "b")).Add(1)
	g := r.Gauge("rt_temperature", "Help with\nnewline and \\ backslash.")
	g.Set(-3.25)
	h := r.Histogram("rt_latency_us", "Latency.", []float64{100, 1000, 10000}, L("shard", "0"))
	for _, v := range []float64{50, 150, 2500, 99999} {
		h.Observe(v)
	}
	// A histogram series with zero observations must survive too.
	r.Histogram("rt_idle_us", "Never observed.", []float64{1, 2})
	return r.Snapshot()
}

func TestParseTextRoundTrip(t *testing.T) {
	want := roundTripSnapshot(t)
	var buf bytes.Buffer
	if err := want.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText: %v\ninput:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v\ninput:\n%s", got, want, buf.String())
	}
	// And the parsed snapshot re-renders byte-identically.
	var again bytes.Buffer
	if err := got.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Fatalf("re-render diverged:\nfirst:\n%s\nsecond:\n%s", buf.String(), again.String())
	}
}

// TestParseTextMergesAcrossNodes is the federation seam end to end:
// two nodes' expositions parse, Merge, and the merged text lints.
func TestParseTextMergesAcrossNodes(t *testing.T) {
	render := func(node string, requests int64) []byte {
		r := NewRegistry()
		r.Counter("fleet_requests_total", "Requests.", L("node", node)).Add(requests)
		r.Gauge("fleet_sessions", "Active sessions.").Set(2)
		h := r.Histogram("fleet_latency_us", "Latency.", []float64{10, 100})
		h.Observe(5)
		h.Observe(50)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, err := ParseText(bytes.NewReader(render("a", 10)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseText(bytes.NewReader(render("b", 32)))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := merged.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	errs, stats := Lint(bytes.NewReader(buf.Bytes()))
	for _, e := range errs {
		t.Errorf("merged exposition: %v", e)
	}
	if stats.Families != 3 {
		t.Fatalf("families = %d, want 3", stats.Families)
	}
	text := buf.String()
	if !strings.Contains(text, `fleet_requests_total{node="a"} 10`) ||
		!strings.Contains(text, `fleet_requests_total{node="b"} 32`) {
		t.Fatalf("per-node counters missing:\n%s", text)
	}
	if !strings.Contains(text, "fleet_sessions 4") {
		t.Fatalf("gauge not summed:\n%s", text)
	}
	if !strings.Contains(text, `fleet_latency_us_bucket{le="100"} 4`) ||
		!strings.Contains(text, "fleet_latency_us_count 4") {
		t.Fatalf("histogram not summed bucket-wise:\n%s", text)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"sample before metadata", "up 1\n", "before # HELP"},
		{"type without help", "# TYPE up gauge\nup 1\n", "without preceding HELP"},
		{"help without type", "# HELP up Up.\nup 1\n", "before # HELP and # TYPE"},
		{"unsupported type", "# HELP s Sum.\n# TYPE s summary\n", "unsupported TYPE"},
		{"duplicate family", "# HELP a A.\n# TYPE a gauge\na 1\n# HELP a A.\n# TYPE a gauge\n", "declared twice"},
		{"foreign sample in block", "# HELP a A.\n# TYPE a gauge\nb 1\n", "outside family"},
		{"bad value", "# HELP a A.\n# TYPE a gauge\na nope\n", "bad value"},
		{"histogram without inf", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_sum 0\nh_count 0\n", "no +Inf"},
		{"inf count mismatch", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 3\n", "!= _count"},
		{"buckets out of order", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"10\"} 0\nh_bucket{le=\"5\"} 0\n", "out of order"},
		{"fractional bucket count", "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1.5\n", "integral"},
		{"unterminated labels", "# HELP a A.\n# TYPE a gauge\na{x=\"1\" 1\n", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseText(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("parsed malformed doc without error:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseTextIgnoresCommentsAndTimestamps: plain comments and
// optional sample timestamps are part of the format and must not trip
// the strict parser.
func TestParseTextIgnoresCommentsAndTimestamps(t *testing.T) {
	doc := "# just a comment\n# HELP a_total A.\n# TYPE a_total counter\n\na_total{x=\"1\"} 7 1754000000\n"
	snap, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Families) != 1 || snap.Families[0].Samples[0].Value != 7 {
		t.Fatalf("snapshot: %+v", snap)
	}
}
