package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 57
			var counts [n]atomic.Int64
			if err := ForEach(workers, n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestIndexError checks deterministic fail-fast error
// propagation: regardless of scheduling, the error of the lowest
// failing index wins, every index below it still runs, and (in the
// sequential degenerate case) nothing beyond it runs at all.
func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		var ran [40]atomic.Int64
		err := ForEach(workers, 40, func(i int) error {
			ran[i].Add(1)
			switch i {
			case 3:
				return errLow
			case 35:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", workers, err)
		}
		for i := 0; i <= 3; i++ {
			if ran[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d below the failure ran %d times, want 1",
					workers, i, ran[i].Load())
			}
		}
		if workers == 1 {
			for i := 4; i < 40; i++ {
				if ran[i].Load() != 0 {
					t.Fatalf("sequential: index %d ran after the failure", i)
				}
			}
		}
	}
}

// TestForEachSlotWrites is the canonical usage pattern: concurrent
// writers each own one slot, so the assembled result is deterministic.
// Run under -race this also proves the pool itself is race-clean.
func TestForEachSlotWrites(t *testing.T) {
	const n = 64
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestLimiterBoundsConcurrency(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d", l.Cap())
	}
	var peak, cur atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer l.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds limiter cap 3", p)
	}
}

func TestLimiterTryAcquireAndContext(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if l.TryAcquire() {
		t.Fatal("second TryAcquire succeeded past cap")
	}
	if l.InUse() != 1 {
		t.Fatalf("InUse = %d", l.InUse())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Acquire on canceled ctx: %v", err)
	}
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestLimiterDefaultCap(t *testing.T) {
	if NewLimiter(0).Cap() < 1 {
		t.Fatal("default cap must be at least 1")
	}
}
