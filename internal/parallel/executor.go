package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor is a work-stealing batch executor: a fixed pool of workers,
// each owning a deque of splittable index-range tasks and a reusable
// scratch value. Owners pop from the tail (LIFO, cache-warm); thieves
// steal from the head (FIFO, the largest unsplit ranges). It differs
// from ForEach in two ways that matter for fleet-scale work:
//
//   - Map is caller-helps and therefore nestable: the calling
//     goroutine executes tasks of its own batch (and steals them back
//     from pool workers) instead of sleeping, so a Map inside a Map
//     task cannot deadlock the pool — total parallelism stays bounded
//     by the worker count instead of multiplying per nesting level.
//   - Per-worker scratch survives across tasks and batches, so
//     expensive per-core state (analyzers, buffers) is set up once per
//     worker, not once per task (the "shared pooled analyzers" model).
//
// The determinism contract matches ForEach: every index gets its own
// output slot, every index below the lowest failing one runs, and the
// lowest failing index's error is returned.
type Executor struct {
	deques []*deque // pool workers' deques, fixed
	ghelp  sync.Mutex
	help   []*deque // live caller-helper deques (Map callers)

	// Parking: seq increments on every push so a worker that finds no
	// work can detect pushes that raced with its scan before sleeping.
	pmu      sync.Mutex
	cond     *sync.Cond
	seq      uint64
	sleepers int
	closed   bool

	rr         atomic.Uint64 // round-robin Submit cursor
	newScratch func() any
	scratch    sync.Pool
	wg         sync.WaitGroup
}

// task is one unit of deque work: either a [lo,hi) slice of a Map
// batch (split further when popped) or a plain submitted function.
type task struct {
	batch  *mapBatch
	lo, hi int
	fn     func(scratch any)
}

type deque struct {
	mu    sync.Mutex
	tasks []task
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// pop takes the newest task (owner side).
func (d *deque) pop() (task, bool) {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = task{}
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t, true
}

// steal takes the oldest task (thief side) — for range tasks that is
// the largest remaining span, so one steal moves half the work.
func (d *deque) steal(match *mapBatch) (task, bool) {
	d.mu.Lock()
	for i := range d.tasks {
		t := d.tasks[i]
		if match != nil && t.batch != match {
			continue
		}
		copy(d.tasks[i:], d.tasks[i+1:])
		d.tasks[len(d.tasks)-1] = task{}
		d.tasks = d.tasks[:len(d.tasks)-1]
		d.mu.Unlock()
		return t, true
	}
	d.mu.Unlock()
	return task{}, false
}

// mapBatch tracks one Map call across however many workers touch it.
type mapBatch struct {
	fn      func(i int, scratch any) error
	grain   int
	pending atomic.Int64
	done    chan struct{}

	failIdx atomic.Int64 // lowest failing index so far
	mu      sync.Mutex
	err     error
}

func (b *mapBatch) fail(i int, err error) {
	b.mu.Lock()
	if err != nil && int64(i) < b.failIdx.Load() {
		b.failIdx.Store(int64(i))
		b.err = err
	}
	b.mu.Unlock()
}

// skipFrom reports whether index i is above a known failure (indices
// above the lowest failure may be skipped, exactly like ForEach).
func (b *mapBatch) skipFrom(i int) bool {
	return int64(i) > b.failIdx.Load()
}

func (b *mapBatch) finish(k int) {
	if b.pending.Add(int64(-k)) == 0 {
		close(b.done)
	}
}

// NewExecutor starts a pool of the given width (<= 0 selects
// GOMAXPROCS). newScratch, when non-nil, builds the per-worker scratch
// value handed to every task a worker runs; helper goroutines joining
// via Map draw scratches from a pool so the values are reused, not
// rebuilt per call. Close the executor when done.
func NewExecutor(workers int, newScratch func() any) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{
		deques:     make([]*deque, workers),
		newScratch: newScratch,
	}
	e.cond = sync.NewCond(&e.pmu)
	e.scratch.New = func() any {
		if e.newScratch == nil {
			return nil
		}
		return e.newScratch()
	}
	for i := range e.deques {
		e.deques[i] = &deque{}
	}
	e.wg.Add(workers)
	for i := range e.deques {
		go e.worker(e.deques[i])
	}
	return e
}

// Workers returns the pool width.
func (e *Executor) Workers() int { return len(e.deques) }

// Close stops the pool after draining queued tasks. Map keeps working
// on a closed executor (the caller runs its whole batch itself);
// Submit runs the function synchronously.
func (e *Executor) Close() {
	e.pmu.Lock()
	if e.closed {
		e.pmu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.pmu.Unlock()
	e.wg.Wait()
}

func (e *Executor) signal() {
	e.pmu.Lock()
	e.seq++
	if e.sleepers > 0 {
		e.cond.Signal()
	}
	e.pmu.Unlock()
}

func (e *Executor) loadSeq() uint64 {
	e.pmu.Lock()
	s := e.seq
	e.pmu.Unlock()
	return s
}

// park sleeps until a push happens after lastSeq was read, or the pool
// closes. Returns false when the pool is closed.
func (e *Executor) park(lastSeq uint64) bool {
	e.pmu.Lock()
	for e.seq == lastSeq && !e.closed {
		e.sleepers++
		e.cond.Wait()
		e.sleepers--
	}
	open := !e.closed
	e.pmu.Unlock()
	return open
}

// stealAny scans every deque (pool then live helpers) for a task.
func (e *Executor) stealAny(own *deque) (task, bool) {
	for _, d := range e.deques {
		if d == own {
			continue
		}
		if t, ok := d.steal(nil); ok {
			return t, ok
		}
	}
	e.ghelp.Lock()
	helpers := append([]*deque(nil), e.help...)
	e.ghelp.Unlock()
	for _, d := range helpers {
		if t, ok := d.steal(nil); ok {
			return t, ok
		}
	}
	return task{}, false
}

func (e *Executor) worker(own *deque) {
	defer e.wg.Done()
	scratch := e.scratch.Get()
	defer e.scratch.Put(scratch)
	for {
		t, ok := own.pop()
		if !ok {
			seq := e.loadSeq()
			t, ok = e.stealAny(own)
			if !ok {
				if !e.park(seq) {
					// Closed: drain anything that raced in, then exit.
					if t, ok = e.stealAny(own); !ok {
						return
					}
				} else {
					continue
				}
			}
		}
		e.run(own, t, scratch)
	}
}

// run executes one task, splitting range tasks down to the batch grain
// and pushing the upper halves back for thieves.
func (e *Executor) run(own *deque, t task, scratch any) {
	if t.fn != nil {
		t.fn(scratch)
		return
	}
	b := t.batch
	for t.hi-t.lo > b.grain {
		mid := int(uint(t.lo+t.hi) >> 1)
		own.push(task{batch: b, lo: mid, hi: t.hi})
		e.signal()
		t.hi = mid
	}
	for i := t.lo; i < t.hi; i++ {
		if b.skipFrom(i) {
			continue
		}
		if err := b.fn(i, scratch); err != nil {
			b.fail(i, err)
		}
	}
	b.finish(t.hi - t.lo)
}

// Map runs fn(0..n-1) across the pool and the calling goroutine and
// waits for all of them, returning the error of the lowest failing
// index (indices above it may be skipped). The caller helps: it
// executes tasks of its own batch while waiting, so Map may be called
// from inside a Map task without deadlocking, and a Map on a closed
// (or zero-width) pool simply degenerates to a sequential loop on the
// caller.
func (e *Executor) Map(n int, fn func(i int, scratch any) error) error {
	if n <= 0 {
		return nil
	}
	b := &mapBatch{fn: fn, grain: 1, done: make(chan struct{})}
	b.failIdx.Store(math.MaxInt64)
	b.pending.Store(int64(n))
	// Grain: split stops once a range is this small. n/(4*workers)
	// leaves enough pieces for even load without per-index overhead.
	if g := n / (4 * (len(e.deques) + 1)); g > 1 {
		b.grain = g
	}

	// The caller's private deque is visible to pool thieves while the
	// batch runs.
	own := &deque{}
	own.push(task{batch: b, lo: 0, hi: n})
	e.ghelp.Lock()
	e.help = append(e.help, own)
	e.ghelp.Unlock()
	e.signal()

	scratch := e.scratch.Get()
	for {
		t, ok := own.pop()
		if !ok {
			// Steal back only this batch's tasks: helping an unrelated
			// batch here could block this Map on foreign work.
			t, ok = e.stealBatch(b, own)
		}
		if !ok {
			break
		}
		e.run(own, t, scratch)
	}
	<-b.done
	e.scratch.Put(scratch)

	e.ghelp.Lock()
	for i, d := range e.help {
		if d == own {
			e.help = append(e.help[:i], e.help[i+1:]...)
			break
		}
	}
	e.ghelp.Unlock()
	return b.err
}

func (e *Executor) stealBatch(b *mapBatch, own *deque) (task, bool) {
	for _, d := range e.deques {
		if t, ok := d.steal(b); ok {
			return t, ok
		}
	}
	e.ghelp.Lock()
	helpers := append([]*deque(nil), e.help...)
	e.ghelp.Unlock()
	for _, d := range helpers {
		if d == own {
			continue
		}
		if t, ok := d.steal(b); ok {
			return t, ok
		}
	}
	return task{}, false
}

// Submit enqueues one plain function on the pool (round-robin across
// worker deques). It returns immediately; fn runs with the executing
// worker's scratch. On a closed executor fn runs synchronously on the
// caller with a pooled scratch — work is never dropped.
func (e *Executor) Submit(fn func(scratch any)) {
	e.pmu.Lock()
	closed := e.closed
	e.pmu.Unlock()
	if closed || len(e.deques) == 0 {
		scratch := e.scratch.Get()
		fn(scratch)
		e.scratch.Put(scratch)
		return
	}
	d := e.deques[e.rr.Add(1)%uint64(len(e.deques))]
	d.push(task{fn: fn})
	e.signal()
}
