package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExecutorMapDeterministic pins the determinism contract: results
// keyed by index are identical at any pool width, including zero-ish
// widths and a closed pool.
func TestExecutorMapDeterministic(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, 8} {
		e := NewExecutor(workers, nil)
		got := make([]int, n)
		if err := e.Map(n, func(i int, _ any) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		e.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ", workers)
		}
	}
}

func TestExecutorMapLowestError(t *testing.T) {
	e := NewExecutor(4, nil)
	defer e.Close()
	var ran [512]atomic.Bool
	err := e.Map(512, func(i int, _ any) error {
		ran[i].Store(true)
		if i == 100 || i == 400 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 100" {
		t.Fatalf("err = %v, want fail 100", err)
	}
	// Everything below the lowest failure must have run.
	for i := 0; i <= 100; i++ {
		if !ran[i].Load() {
			t.Fatalf("index %d below lowest failure did not run", i)
		}
	}
}

// TestExecutorNestedMap is the deadlock regression test: Map from
// inside a Map task on the same pool must complete because callers
// help instead of sleeping.
func TestExecutorNestedMap(t *testing.T) {
	e := NewExecutor(2, nil)
	defer e.Close()
	done := make(chan error, 1)
	go func() {
		var total atomic.Int64
		done <- e.Map(8, func(i int, _ any) error {
			return e.Map(16, func(j int, _ any) error {
				total.Add(1)
				return nil
			})
		})
		if got := total.Load(); got != 8*16 {
			t.Errorf("inner iterations = %d, want %d", got, 8*16)
		}
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

// TestExecutorScratchReuse checks that scratch values are created at
// most once per participating goroutine and actually handed to tasks.
func TestExecutorScratchReuse(t *testing.T) {
	var created atomic.Int64
	e := NewExecutor(3, func() any {
		created.Add(1)
		return new(int)
	})
	defer e.Close()
	var used atomic.Int64
	for round := 0; round < 5; round++ {
		if err := e.Map(64, func(i int, scratch any) error {
			counter, ok := scratch.(*int)
			if !ok {
				return errors.New("scratch has wrong type")
			}
			*counter++
			used.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if used.Load() != 5*64 {
		t.Fatalf("tasks run = %d", used.Load())
	}
	// 3 workers + 1 helper; sync.Pool may drop values under GC but
	// never in a tight loop like this without pressure — allow slack
	// anyway, the point is "not one per task".
	if c := created.Load(); c > 16 {
		t.Fatalf("scratch created %d times for %d tasks", c, 5*64)
	}
}

func TestExecutorSubmit(t *testing.T) {
	e := NewExecutor(2, func() any { return new(int) })
	var wg sync.WaitGroup
	var total atomic.Int64
	wg.Add(100)
	for i := 0; i < 100; i++ {
		e.Submit(func(scratch any) {
			if _, ok := scratch.(*int); !ok {
				t.Error("scratch has wrong type")
			}
			total.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if total.Load() != 100 {
		t.Fatalf("submitted tasks run = %d", total.Load())
	}
	e.Close()
	// Submit after Close runs synchronously; nothing is dropped.
	ran := false
	e.Submit(func(any) { ran = true })
	if !ran {
		t.Fatal("post-Close Submit did not run")
	}
}

func TestExecutorMapAfterClose(t *testing.T) {
	e := NewExecutor(4, nil)
	e.Close()
	e.Close() // idempotent
	got := make([]int, 100)
	if err := e.Map(100, func(i int, _ any) error {
		got[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("index %d not run after Close", i)
		}
	}
}

// TestExecutorConcurrentMaps runs independent batches from many
// goroutines at once — the pool is shared infrastructure, not
// per-batch — and is a race-detector workout for the deque/parking
// paths.
func TestExecutorConcurrentMaps(t *testing.T) {
	e := NewExecutor(4, nil)
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sum := make([]int64, 200)
			if err := e.Map(200, func(i int, _ any) error {
				sum[i] = int64(g*1000 + i)
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			for i := range sum {
				if sum[i] != int64(g*1000+i) {
					t.Errorf("goroutine %d index %d corrupted", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkBatchExecutor measures Map dispatch throughput over a fleet
// of small CPU-bound tasks (the dominod/experiments shape: many
// sessions' window evaluations through shared per-core scratch).
// tasks/s is the gated metric.
func BenchmarkBatchExecutor(b *testing.B) {
	const tasks = 4096
	e := NewExecutor(0, func() any { return make([]uint64, 256) })
	defer e.Close()
	out := make([]uint64, tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Map(tasks, func(j int, scratch any) error {
			buf := scratch.([]uint64)
			acc := uint64(j)
			for k := range buf {
				acc = acc*6364136223846793005 + 1442695040888963407
				buf[k] = acc
			}
			out[j] = acc
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}
