// Package parallel provides the deterministic worker-pool primitive
// underlying the experiment engine and the batch analyzer: indexed
// fan-out whose observable results are independent of worker count.
//
// Determinism contract: ForEach gives every index its own output slot
// (the callback writes results keyed by index, never by completion
// order), runs every index exactly once on success, and reports the
// error of the lowest failing index. A caller that derives all
// per-index randomness from the index itself — not from shared mutable
// state — therefore produces byte-identical results whether workers is
// 1 or GOMAXPROCS.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) across the given number of workers and waits
// for all of them. workers <= 0 selects runtime.GOMAXPROCS(0); a single
// worker degenerates to a plain sequential loop with no goroutines.
//
// Failures fail fast without giving up determinism: indices are
// dispatched in increasing order, so every index below the lowest
// failing one is guaranteed to run, the lowest failing index itself
// always runs (nothing lower exists to cancel it), and its error is
// the one returned; indices above a known failure may be skipped.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		failedIdx atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
	)
	failedIdx.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int64(next.Add(1)) - 1
				if i >= int64(n) || i > failedIdx.Load() {
					return
				}
				if err := fn(int(i)); err != nil {
					mu.Lock()
					if i < failedIdx.Load() {
						failedIdx.Store(i)
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
