// Package parallel provides the deterministic worker-pool primitive
// underlying the experiment engine and the batch analyzer: indexed
// fan-out whose observable results are independent of worker count.
//
// Determinism contract: ForEach gives every index its own output slot
// (the callback writes results keyed by index, never by completion
// order), runs every index exactly once on success, and reports the
// error of the lowest failing index. A caller that derives all
// per-index randomness from the index itself — not from shared mutable
// state — therefore produces byte-identical results whether workers is
// 1 or GOMAXPROCS.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ForEach runs fn(0..n-1) across the given number of workers and waits
// for all of them. workers <= 0 selects runtime.GOMAXPROCS(0); a single
// worker degenerates to a plain sequential loop with no goroutines.
//
// Failures fail fast without giving up determinism: indices are
// dispatched in increasing order, so every index below the lowest
// failing one is guaranteed to run, the lowest failing index itself
// always runs (nothing lower exists to cancel it), and its error is
// the one returned; indices above a known failure may be skipped.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next      atomic.Int64
		failedIdx atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
	)
	failedIdx.Store(int64(n))
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int64(next.Add(1)) - 1
				if i >= int64(n) || i > failedIdx.Load() {
					return
				}
				if err := fn(int(i)); err != nil {
					mu.Lock()
					if i < failedIdx.Load() {
						failedIdx.Store(i)
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Limiter is the open-ended counterpart of ForEach's bounded pool: a
// counting semaphore for long-running services whose task count is not
// known up front (e.g. cmd/dominod admitting session streams). Blocked
// Acquire calls provide natural backpressure to the producer.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting up to n concurrent holders;
// n <= 0 selects runtime.GOMAXPROCS(0).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Cap returns the limiter's capacity.
func (l *Limiter) Cap() int { return cap(l.sem) }

// InUse returns the number of slots currently held.
func (l *Limiter) InUse() int { return len(l.sem) }

// Acquire blocks until a slot is free or ctx is done, returning the
// context's error in the latter case.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrAcquireTimeout reports that AcquireTimeout gave up waiting for a
// slot. Services map it onto load-shedding responses (429) instead of
// the unbounded blocking Acquire provides.
var ErrAcquireTimeout = errors.New("parallel: limiter saturated, acquire timed out")

// AcquireTimeout is the bounded-queue-wait variant of Acquire: it
// waits at most d for a slot, returning ErrAcquireTimeout when the
// limiter stays saturated and ctx.Err() when the caller gives up
// first. d <= 0 degenerates to Acquire — wait as long as ctx allows.
// A service that shed load on saturation calls this and converts
// ErrAcquireTimeout into a retryable rejection rather than holding the
// producer hostage on a full semaphore.
func (l *Limiter) AcquireTimeout(ctx context.Context, d time.Duration) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if d <= 0 {
		return l.Acquire(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return ErrAcquireTimeout
	}
}

// TryAcquire takes a slot without blocking, reporting success.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (l *Limiter) Release() { <-l.sem }
