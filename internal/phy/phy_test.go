package phy

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/sim"
)

func TestNumerologySlotDuration(t *testing.T) {
	if SCS15kHz.SlotDuration() != sim.Millisecond {
		t.Fatal("15 kHz slot != 1 ms")
	}
	if SCS30kHz.SlotDuration() != 500*sim.Microsecond {
		t.Fatal("30 kHz slot != 0.5 ms")
	}
	if SCS15kHz.SlotsPerSecond() != 1000 || SCS30kHz.SlotsPerSecond() != 2000 {
		t.Fatal("slots per second wrong")
	}
}

func TestPRBsForBandwidthPaperCells(t *testing.T) {
	cases := []struct {
		scs  Numerology
		mhz  int
		want int
	}{
		{SCS15kHz, 15, 79},   // T-Mobile 15 MHz FDD
		{SCS30kHz, 100, 273}, // T-Mobile 100 MHz TDD
		{SCS30kHz, 20, 51},   // Amarisoft / Mosolabs 20 MHz TDD
	}
	for _, c := range cases {
		got, err := c.scs.PRBsForBandwidth(c.mhz)
		if err != nil {
			t.Fatalf("%v/%dMHz: %v", c.scs, c.mhz, err)
		}
		if got != c.want {
			t.Fatalf("%v/%dMHz: got %d PRBs, want %d", c.scs, c.mhz, got, c.want)
		}
	}
	if _, err := SCS15kHz.PRBsForBandwidth(17); err == nil {
		t.Fatal("unknown bandwidth did not error")
	}
}

func TestMCSTableMonotone(t *testing.T) {
	// The spec table has one tiny dip at the 16QAM→64QAM switch
	// (MCS 16→17: 2.5703 → 2.5664); allow that slack.
	prev := -1.0
	for m := MCS(0); m <= MaxMCS; m++ {
		eff := m.SpectralEfficiency()
		if eff <= prev-0.01 {
			t.Fatalf("spectral efficiency not increasing at MCS %d", m)
		}
		if eff > prev {
			prev = eff
		}
		if q := m.ModulationOrder(); q != 2 && q != 4 && q != 6 {
			t.Fatalf("MCS %d has modulation order %d", m, q)
		}
		if r := m.CodeRate(); r <= 0 || r >= 1 {
			t.Fatalf("MCS %d code rate %v out of (0,1)", m, r)
		}
	}
}

func TestMCSKnownValues(t *testing.T) {
	// Spot-check against TS 38.214 Table 5.1.3.1-1.
	if MCS(0).ModulationOrder() != 2 || math.Abs(MCS(0).CodeRate()-120.0/1024) > 1e-9 {
		t.Fatal("MCS 0 row wrong")
	}
	if MCS(10).ModulationOrder() != 4 {
		t.Fatal("MCS 10 should be 16QAM")
	}
	if MCS(17).ModulationOrder() != 6 {
		t.Fatal("MCS 17 should be 64QAM")
	}
	if MCS(27).Modulation() != "64QAM" {
		t.Fatal("MCS 27 modulation name")
	}
}

func TestCQIFromSNRMonotone(t *testing.T) {
	prev := CQI(-1)
	for snr := -10.0; snr <= 30; snr += 0.5 {
		c := CQIFromSNR(snr)
		if c < prev {
			t.Fatalf("CQI decreased with SNR at %v dB", snr)
		}
		prev = c
	}
	if CQIFromSNR(-20) != 0 {
		t.Fatal("very low SNR should map to CQI 0")
	}
	if CQIFromSNR(30) != 15 {
		t.Fatal("very high SNR should map to CQI 15")
	}
}

func TestMCSFromCQIBackoff(t *testing.T) {
	base := MCSFromCQI(10, 0)
	conservative := MCSFromCQI(10, 4)
	if conservative >= base {
		t.Fatalf("backoff did not lower MCS: %v vs %v", conservative, base)
	}
	if MCSFromCQI(0, -5) < 0 || MCSFromCQI(15, -100) > MaxMCS {
		t.Fatal("MCSFromCQI not clamped")
	}
	if MCSFromCQI(-3, 0) != MCSFromCQI(0, 0) {
		t.Fatal("negative CQI not clamped")
	}
}

func TestTBSScaling(t *testing.T) {
	// TBS grows with both PRBs and MCS.
	if TransportBlockSizeBits(10, 50) <= TransportBlockSizeBits(10, 25) {
		t.Fatal("TBS not increasing in PRBs")
	}
	if TransportBlockSizeBits(20, 50) <= TransportBlockSizeBits(5, 50) {
		t.Fatal("TBS not increasing in MCS")
	}
	if TransportBlockSizeBits(10, 0) != 0 {
		t.Fatal("zero PRBs should give zero TBS")
	}
	// Byte alignment.
	if TransportBlockSizeBits(15, 20)%8 != 0 {
		t.Fatal("TBS not byte aligned")
	}
}

func TestTBSRealisticMagnitudes(t *testing.T) {
	// 273 PRBs at MCS 27 (100 MHz cell, great channel): per-slot TB in
	// the tens of kilobytes, i.e. several hundred Mbit/s at 2000
	// slots/s.
	tbs := TransportBlockSizeBits(27, 273)
	rate := RateForTBS(tbs, 2000)
	if rate < 200e6 || rate > 800e6 {
		t.Fatalf("peak rate %v bps implausible for 100 MHz", rate)
	}
	// 51 PRBs at MCS 5 (20 MHz cell, weak channel): a few tens of Mbit/s max.
	rate = RateForTBS(TransportBlockSizeBits(5, 51), 2000)
	if rate < 5e6 || rate > 50e6 {
		t.Fatalf("weak-channel rate %v bps implausible", rate)
	}
}

func TestPRBsForBytes(t *testing.T) {
	for _, m := range []MCS{0, 5, 13, 27} {
		for _, bytes := range []int{100, 1200, 5000} {
			n := PRBsForBytes(m, bytes, 273)
			if n < 1 {
				t.Fatalf("PRBsForBytes(%v,%d) = %d", m, bytes, n)
			}
			if got := TransportBlockSizeBytes(m, n); got < bytes && n < 273 {
				t.Fatalf("PRBsForBytes(%v,%d)=%d too small: TBS %d", m, bytes, n, got)
			}
			if n > 1 {
				if prev := TransportBlockSizeBytes(m, n-1); prev >= bytes {
					t.Fatalf("PRBsForBytes(%v,%d)=%d not minimal", m, bytes, n)
				}
			}
		}
	}
	if PRBsForBytes(10, 0, 100) != 0 {
		t.Fatal("zero bytes should need zero PRBs")
	}
	if PRBsForBytes(10, 1<<30, 50) != 50 {
		t.Fatal("huge demand should cap at maxPRB")
	}
}

// Property: PRBsForBytes always returns a grant whose TBS covers the
// request or the cap.
func TestPRBsForBytesProperty(t *testing.T) {
	f := func(mRaw uint8, bytesRaw uint16) bool {
		m := MCS(int(mRaw) % 28)
		bytes := int(bytesRaw)%20000 + 1
		n := PRBsForBytes(m, bytes, 273)
		if n == 273 {
			return true
		}
		return TransportBlockSizeBytes(m, n) >= bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBLERShape(t *testing.T) {
	m := MCS(15)
	at := BLER(m, m.snrRequired())
	if math.Abs(at-0.10) > 0.02 {
		t.Fatalf("BLER at operating point = %v, want ~0.10", at)
	}
	if BLER(m, m.snrRequired()+10) > 0.01 {
		t.Fatal("BLER with 10 dB margin should be tiny")
	}
	if BLER(m, m.snrRequired()-10) < 0.5 {
		t.Fatal("BLER 10 dB below requirement should be near 1")
	}
	// Monotone decreasing in SNR.
	prev := 1.1
	for snr := -10.0; snr < 40; snr++ {
		b := BLER(m, snr)
		if b > prev {
			t.Fatalf("BLER not monotone at %v dB", snr)
		}
		prev = b
	}
}

func TestHARQRetxBLER(t *testing.T) {
	if HARQRetxBLER(0.1) >= 0.1 {
		t.Fatal("retx BLER should improve on first BLER")
	}
	if HARQRetxBLER(0.9) > 0.9 {
		t.Fatal("retx BLER should never exceed first BLER")
	}
	if HARQRetxBLER(0) < 1e-7 {
		t.Fatal("retx BLER should be floored")
	}
}

func TestChannelStationaryStats(t *testing.T) {
	cfg := DefaultGoodChannel()
	cfg.DipRate = 0 // isolate the Gauss–Markov process
	ch := NewChannel(cfg, sim.NewRNG(11))
	var sum, sq float64
	const n = 20000
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		now += 500 * sim.Microsecond
		v := ch.Sample(now)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-cfg.MeanSNRdB) > 1.5 {
		t.Fatalf("channel mean = %v, want ~%v", mean, cfg.MeanSNRdB)
	}
	want := math.Sqrt(cfg.StdSNRdB*cfg.StdSNRdB + cfg.FastFadeStdDB*cfg.FastFadeStdDB)
	if std < want*0.5 || std > want*2 {
		t.Fatalf("channel std = %v, want ~%v", std, want)
	}
}

func TestChannelScriptedDip(t *testing.T) {
	cfg := DefaultGoodChannel()
	cfg.DipRate = 0
	cfg.FastFadeStdDB = 0
	cfg.StdSNRdB = 0
	ch := NewChannel(cfg, sim.NewRNG(12))
	ch.ScriptDip(sim.Second, 2*sim.Second, 15)
	before := ch.Sample(500 * sim.Millisecond)
	during := ch.Sample(1500 * sim.Millisecond)
	after := ch.Sample(2500 * sim.Millisecond)
	if math.Abs(before-cfg.MeanSNRdB) > 0.01 || math.Abs(after-cfg.MeanSNRdB) > 0.01 {
		t.Fatalf("SNR outside dip: before=%v after=%v", before, after)
	}
	if math.Abs(during-(cfg.MeanSNRdB-15)) > 0.01 {
		t.Fatalf("SNR during dip = %v, want %v", during, cfg.MeanSNRdB-15)
	}
}

func TestChannelDeterminism(t *testing.T) {
	mk := func() []float64 {
		ch := NewChannel(DefaultPoorChannel(), sim.NewRNG(99))
		var out []float64
		for i := 1; i <= 1000; i++ {
			out = append(out, ch.Sample(sim.Time(i)*sim.Millisecond))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("channel stream diverged at %d", i)
		}
	}
}

func TestLinkAdapterReportInterval(t *testing.T) {
	la := NewLinkAdapter(0, 20*sim.Millisecond)
	m1 := la.MCSForSlot(0, 25)
	// Within the report interval the MCS must not change even if SNR
	// collapses.
	m2 := la.MCSForSlot(10*sim.Millisecond, -5)
	if m2 != m1 {
		t.Fatalf("MCS changed within report interval: %v -> %v", m1, m2)
	}
	m3 := la.MCSForSlot(25*sim.Millisecond, -5)
	if m3 >= m1 {
		t.Fatalf("MCS did not drop after report: %v -> %v", m1, m3)
	}
}

func TestLinkAdapterBackoff(t *testing.T) {
	agg := NewLinkAdapter(0, 0)
	con := NewLinkAdapter(5, 0)
	snr := 15.0
	if con.MCSForSlot(0, snr) >= agg.MCSForSlot(0, snr) {
		t.Fatal("conservative adapter should select lower MCS")
	}
}

// Property: BLER is always within (0,1] and decreasing margins raise it.
func TestBLERProperty(t *testing.T) {
	f := func(mRaw uint8, snrRaw int8) bool {
		m := MCS(int(mRaw) % 28)
		snr := float64(snrRaw) / 2
		b := BLER(m, snr)
		if b <= 0 || b > 1 {
			return false
		}
		return BLER(m, snr-3) >= b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMCSSelectionBLERAligned(t *testing.T) {
	// Link adaptation must be consistent with the BLER model: the MCS
	// selected for any SNR has first-transmission BLER at or below
	// ~10% plus quantization slack. (A misalignment here caused >50%
	// BLER retransmission storms in an earlier build.)
	for snr := -5.0; snr <= 35; snr += 0.5 {
		m := MCSForSNR(snr, 0)
		if b := BLER(m, snr); b > 0.12 {
			t.Fatalf("MCSForSNR(%v)=%v has BLER %v", snr, m, b)
		}
	}
	// Backoff only lowers the index.
	if MCSForSNR(20, 4) >= MCSForSNR(20, 0) {
		t.Fatal("backoff did not lower MCS")
	}
}

func TestMCSFromCQIConservative(t *testing.T) {
	// Quantizing SNR through CQI must never pick a higher MCS than the
	// unquantized selection at the same SNR.
	for snr := -5.0; snr <= 35; snr += 0.5 {
		cqi := CQIFromSNR(snr)
		if MCSFromCQI(cqi, 0) > MCSForSNR(snr, 0) {
			t.Fatalf("CQI path more aggressive than direct at %v dB", snr)
		}
	}
}
