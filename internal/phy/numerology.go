// Package phy models the 5G New Radio physical layer at the resolution
// Domino needs: per-slot PRB grids, MCS/TBS link adaptation driven by a
// time-varying channel, and a BLER model that feeds HARQ.
//
// The goal is behavioural fidelity, not a full 38.211 implementation:
// the quantities the paper's telemetry exposes (PRB, MCS, TBS, retx
// flags) must move for the same reasons they move on real cells.
package phy

import (
	"fmt"

	"github.com/domino5g/domino/internal/sim"
)

// Numerology captures the 5G NR subcarrier-spacing configuration (µ).
type Numerology int

// Subcarrier spacings used by the paper's cells: the FDD low-band cell
// runs 15 kHz SCS, the TDD mid-band cells run 30 kHz.
const (
	SCS15kHz Numerology = 0 // µ=0: 1 ms slots, FDD low band
	SCS30kHz Numerology = 1 // µ=1: 0.5 ms slots, TDD mid band
)

// SlotDuration returns the slot length for the numerology.
func (n Numerology) SlotDuration() sim.Time {
	switch n {
	case SCS15kHz:
		return sim.Millisecond
	case SCS30kHz:
		return 500 * sim.Microsecond
	default:
		panic(fmt.Sprintf("phy: unsupported numerology %d", n))
	}
}

// SlotsPerSecond returns the slot rate.
func (n Numerology) SlotsPerSecond() int {
	return int(sim.Second / n.SlotDuration())
}

// SubcarrierSpacingHz returns the SCS in Hz.
func (n Numerology) SubcarrierSpacingHz() int {
	switch n {
	case SCS15kHz:
		return 15_000
	case SCS30kHz:
		return 30_000
	default:
		panic(fmt.Sprintf("phy: unsupported numerology %d", n))
	}
}

// String implements fmt.Stringer.
func (n Numerology) String() string {
	switch n {
	case SCS15kHz:
		return "15kHz"
	case SCS30kHz:
		return "30kHz"
	default:
		return fmt.Sprintf("Numerology(%d)", int(n))
	}
}

// PRBsForBandwidth returns the number of physical resource blocks in a
// carrier of the given bandwidth (MHz) at this numerology, per the
// TS 38.101-1 transmission-bandwidth tables (FR1). Values cover the
// configurations used by the paper's four cells plus common ones.
func (n Numerology) PRBsForBandwidth(mhz int) (int, error) {
	type key struct {
		scs Numerology
		mhz int
	}
	table := map[key]int{
		{SCS15kHz, 5}:   25,
		{SCS15kHz, 10}:  52,
		{SCS15kHz, 15}:  79,
		{SCS15kHz, 20}:  106,
		{SCS15kHz, 40}:  216,
		{SCS15kHz, 50}:  270,
		{SCS30kHz, 10}:  24,
		{SCS30kHz, 15}:  38,
		{SCS30kHz, 20}:  51,
		{SCS30kHz, 40}:  106,
		{SCS30kHz, 50}:  133,
		{SCS30kHz, 60}:  162,
		{SCS30kHz, 80}:  217,
		{SCS30kHz, 100}: 273,
	}
	prbs, ok := table[key{n, mhz}]
	if !ok {
		return 0, fmt.Errorf("phy: no PRB entry for %d MHz at %v SCS", mhz, n)
	}
	return prbs, nil
}

// SubcarriersPerPRB is fixed at 12 in NR.
const SubcarriersPerPRB = 12

// SymbolsPerSlot is fixed at 14 for normal cyclic prefix.
const SymbolsPerSlot = 14

// REPerPRBData is the usable resource elements per PRB per slot after
// subtracting DMRS and control overhead, as in the TS 38.214 TBS
// procedure (N'_RE = 12 subcarriers × 14 symbols − overhead, capped at
// 156 in the spec; we fold typical PDCCH/DMRS overhead in directly).
const REPerPRBData = 132
