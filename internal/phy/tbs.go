package phy

import "math"

func exp2(x float64) float64  { return math.Exp2(x) }
func log10(x float64) float64 { return math.Log10(x) }

// TransportBlockSizeBits computes the transport-block size in bits for
// an allocation of nPRB resource blocks at the given MCS, following the
// structure of the TS 38.214 §5.1.3.2 procedure: available resource
// elements × spectral efficiency, quantized and floored to a byte
// boundary. Single layer, no spatial multiplexing (matching the
// paper's single-antenna telemetry view).
func TransportBlockSizeBits(m MCS, nPRB int) int {
	if nPRB <= 0 {
		return 0
	}
	nRE := float64(REPerPRBData * nPRB)
	nInfo := nRE * m.SpectralEfficiency()
	if nInfo < 24 {
		return 0
	}
	// Quantize as in 38.214: round down to a multiple of 8 after
	// subtracting the 24-bit CRC budget (approximation of the
	// LDPC-graph quantization steps, accurate to within a percent).
	// The spec's TBS table bottoms out at 24 bits: any schedulable
	// allocation carries at least that much.
	bits := int(nInfo) - 24
	bits -= bits % 8
	if bits < 24 {
		bits = 24
	}
	return bits
}

// TransportBlockSizeBytes is TransportBlockSizeBits in bytes.
func TransportBlockSizeBytes(m MCS, nPRB int) int {
	return TransportBlockSizeBits(m, nPRB) / 8
}

// PRBsForBytes returns the minimum PRB count whose TBS at MCS m covers
// `bytes` of payload, capped at maxPRB. The scheduler uses this to size
// grants to buffer status reports.
func PRBsForBytes(m MCS, bytes, maxPRB int) int {
	if bytes <= 0 {
		return 0
	}
	if maxPRB <= 0 {
		return 0
	}
	// TBS is linear in nPRB to within quantization, so start from the
	// analytic estimate and fix up.
	perPRB := TransportBlockSizeBytes(m, 1)
	if perPRB == 0 {
		// MCS 0 with one PRB can still carry a few bytes once more PRBs
		// accumulate; fall back to linear search.
		for n := 1; n <= maxPRB; n++ {
			if TransportBlockSizeBytes(m, n) >= bytes {
				return n
			}
		}
		return maxPRB
	}
	n := bytes / perPRB
	if n < 1 {
		n = 1
	}
	for n <= maxPRB && TransportBlockSizeBytes(m, n) < bytes {
		n++
	}
	if n > maxPRB {
		return maxPRB
	}
	// The quantization in TransportBlockSizeBits means the analytic
	// estimate is not a lower bound; shrink to the true minimum.
	for n > 1 && TransportBlockSizeBytes(m, n-1) >= bytes {
		n--
	}
	return n
}

// RateForTBS converts a per-slot TBS (bits) and slot duration into a
// throughput in bits per second.
func RateForTBS(tbsBits int, slotsPerSecond int) float64 {
	return float64(tbsBits) * float64(slotsPerSecond)
}
