package phy

import (
	"math"
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// ChannelConfig parameterizes the time-varying wireless channel for one
// link direction of one UE.
type ChannelConfig struct {
	// MeanSNRdB is the long-run average SNR. ~22 dB models a healthy
	// mid-band link; ~8 dB models the persistently poor Amarisoft
	// uplink the paper describes.
	MeanSNRdB float64
	// StdSNRdB is the stationary standard deviation of the slow-fading
	// (shadowing) process.
	StdSNRdB float64
	// CoherenceTime controls how fast the slow-fading process decorrelates
	// (Gauss–Markov time constant).
	CoherenceTime sim.Time
	// FastFadeStdDB is per-slot fast-fading noise layered on top of the
	// slow process.
	FastFadeStdDB float64
	// DipRate is the expected number of deep-fade events per minute
	// (mobility/blocking). Zero disables random dips.
	DipRate float64
	// DipDepthDB and DipDuration shape each deep fade.
	DipDepthDB  float64
	DipDuration sim.Time
}

// DefaultGoodChannel returns a healthy mid-band channel profile.
func DefaultGoodChannel() ChannelConfig {
	return ChannelConfig{
		MeanSNRdB:     23,
		StdSNRdB:      2.5,
		CoherenceTime: 200 * sim.Millisecond,
		FastFadeStdDB: 1.2,
		DipRate:       0.4,
		DipDepthDB:    14,
		DipDuration:   600 * sim.Millisecond,
	}
}

// DefaultPoorChannel returns the persistently poor profile (Amarisoft
// uplink): low mean, frequent dips. Depth and duration are calibrated
// so delay excursions stay within the paper's observed ~1 s tail.
func DefaultPoorChannel() ChannelConfig {
	return ChannelConfig{
		MeanSNRdB:     12,
		StdSNRdB:      3.0,
		CoherenceTime: 150 * sim.Millisecond,
		FastFadeStdDB: 1.8,
		DipRate:       3.0,
		DipDepthDB:    8,
		DipDuration:   600 * sim.Millisecond,
	}
}

// scriptedDip is a deterministic SNR excursion injected by scenarios
// (e.g. the Fig. 12 channel-degradation case study).
type scriptedDip struct {
	start, end sim.Time
	depthDB    float64
}

// scriptedRamp is a deterministic, persistent SNR offset injected by
// scenarios: zero before start, linearly interpolated to deltaDB at
// end, and held at deltaDB afterwards. A negative delta models a
// lasting degradation (mid-call SNR collapse); a positive one a
// lasting improvement.
type scriptedRamp struct {
	start, end sim.Time
	deltaDB    float64
}

// offsetAt returns the ramp's contribution at time now.
func (r scriptedRamp) offsetAt(now sim.Time) float64 {
	switch {
	case now < r.start:
		return 0
	case now >= r.end:
		return r.deltaDB
	default:
		return r.deltaDB * float64(now-r.start) / float64(r.end-r.start)
	}
}

// Channel is the evolving SNR process for one UE/direction. Sample is
// called once per slot by the MAC; the process advances lazily based on
// elapsed time, so slot rate does not bias the statistics.
type Channel struct {
	cfg ChannelConfig
	rng *sim.RNG

	lastT    sim.Time
	slowSNR  float64 // current slow-fading SNR (dB), pre fast fade
	dipUntil sim.Time
	dipDepth float64
	scripted []scriptedDip
	ramps    []scriptedRamp
}

// NewChannel creates a channel process with its own forked RNG stream.
func NewChannel(cfg ChannelConfig, rng *sim.RNG) *Channel {
	return &Channel{
		cfg:     cfg,
		rng:     rng.Fork(),
		slowSNR: cfg.MeanSNRdB,
	}
}

// ScriptDip schedules a deterministic SNR reduction of depthDB between
// start and end, on top of the stochastic process. Scenario builders
// use this to reproduce the paper's case-study figures.
func (c *Channel) ScriptDip(start, end sim.Time, depthDB float64) {
	c.scripted = append(c.scripted, scriptedDip{start: start, end: end, depthDB: depthDB})
	sort.Slice(c.scripted, func(i, j int) bool { return c.scripted[i].start < c.scripted[j].start })
}

// ScriptRamp schedules a persistent SNR offset that grows linearly
// from 0 at start to deltaDB at end and stays at deltaDB for the rest
// of the run. start == end applies the full offset as a step at start.
// Unlike ScriptDip, the offset never clears — scenario builders use it
// for lasting mean-SNR shifts such as a mid-call channel collapse.
func (c *Channel) ScriptRamp(start, end sim.Time, deltaDB float64) {
	if end < start {
		end = start
	}
	c.ramps = append(c.ramps, scriptedRamp{start: start, end: end, deltaDB: deltaDB})
}

// Sample advances the process to time now and returns the instantaneous
// SNR in dB.
func (c *Channel) Sample(now sim.Time) float64 {
	dt := now - c.lastT
	if dt < 0 {
		dt = 0
	}
	c.lastT = now

	// Gauss–Markov slow fading: exponential decorrelation toward the
	// mean with stationary variance Std².
	if c.cfg.CoherenceTime > 0 && dt > 0 {
		rho := math.Exp(-float64(dt) / float64(c.cfg.CoherenceTime))
		innovStd := c.cfg.StdSNRdB * math.Sqrt(1-rho*rho)
		c.slowSNR = c.cfg.MeanSNRdB + rho*(c.slowSNR-c.cfg.MeanSNRdB) + c.rng.Normal(0, innovStd)
	}

	// Random deep fades (Poisson arrivals).
	if c.cfg.DipRate > 0 && now >= c.dipUntil {
		perSample := c.cfg.DipRate / 60 * float64(dt) / float64(sim.Second)
		if c.rng.Bool(perSample) {
			c.dipUntil = now + c.rng.Jitter(c.cfg.DipDuration, 0.4)
			c.dipDepth = c.rng.Uniform(0.6, 1.3) * c.cfg.DipDepthDB
		}
	}

	snr := c.slowSNR + c.rng.Normal(0, c.cfg.FastFadeStdDB)
	if now < c.dipUntil {
		snr -= c.dipDepth
	}
	for _, d := range c.scripted {
		if now >= d.start && now < d.end {
			snr -= d.depthDB
		}
	}
	for _, r := range c.ramps {
		snr += r.offsetAt(now)
	}
	return snr
}

// BLER returns the block error rate for transmitting at MCS m over a
// channel with the given instantaneous SNR. Modeled as a logistic curve
// around the MCS's required SNR: at the operating point (snr ==
// required) first-transmission BLER is ~10%, the target link
// adaptation aims for; each dB of margin roughly halves it.
func BLER(m MCS, snrDB float64) float64 {
	margin := snrDB - m.snrRequired()
	// Logistic centered so that margin 0 → 0.10, steepness ~1.1/dB.
	bler := 1 / (1 + math.Exp(1.1*margin+2.197)) // ln(9) ≈ 2.197 ⇒ 10% at 0 margin
	if bler < 1e-5 {
		bler = 1e-5
	}
	return bler
}

// HARQRetxBLER returns the residual error rate of a HARQ retransmission
// given the first-transmission BLER. Chase combining adds ~3 dB of
// effective SNR per attempt; we approximate by squaring and flooring.
func HARQRetxBLER(firstBLER float64) float64 {
	b := firstBLER * firstBLER * 4
	if b > firstBLER {
		b = firstBLER
	}
	if b < 1e-6 {
		b = 1e-6
	}
	return b
}

// LinkAdapter tracks CQI reports and picks the MCS for each grant,
// modeling the reporting delay and the operator's aggressiveness.
type LinkAdapter struct {
	// Backoff is subtracted from the CQI-mapped MCS: positive values
	// model conservative selection (the Amarisoft UL strategy the
	// paper calls out), negative model aggressive selection.
	Backoff int
	// ReportInterval is the CQI reporting period; MCS only changes on
	// report boundaries, modeling stale link adaptation.
	ReportInterval sim.Time

	lastReport sim.Time
	currentMCS MCS
	haveReport bool
}

// NewLinkAdapter returns an adapter with the given backoff and report
// interval (0 interval means every sample).
func NewLinkAdapter(backoff int, reportInterval sim.Time) *LinkAdapter {
	return &LinkAdapter{Backoff: backoff, ReportInterval: reportInterval}
}

// MCSForSlot returns the MCS to use at time now given instantaneous
// channel SNR. The returned value only changes on report boundaries.
func (la *LinkAdapter) MCSForSlot(now sim.Time, snrDB float64) MCS {
	if !la.haveReport || la.ReportInterval == 0 || now-la.lastReport >= la.ReportInterval {
		cqi := CQIFromSNR(snrDB)
		la.currentMCS = MCSFromCQI(cqi, la.Backoff)
		la.lastReport = now
		la.haveReport = true
	}
	return la.currentMCS
}
