package phy

import "fmt"

// MCS is a modulation-and-coding-scheme index (0..27 in the 64-QAM
// table of TS 38.214 Table 5.1.3.1-1, which is what the paper's cells
// use: observed MCS medians run 0..28).
type MCS int

// MaxMCS is the highest index in the 64QAM MCS table.
const MaxMCS MCS = 27

// mcsEntry is one row of TS 38.214 Table 5.1.3.1-1 (MCS index table 1
// for PDSCH): modulation order Qm and target code rate R × 1024.
type mcsEntry struct {
	qm       int     // bits per symbol (2 = QPSK, 4 = 16QAM, 6 = 64QAM)
	rate1024 float64 // target code rate × 1024
}

// mcsTable64 is TS 38.214 Table 5.1.3.1-1.
var mcsTable64 = [28]mcsEntry{
	{2, 120}, {2, 157}, {2, 193}, {2, 251}, {2, 308}, {2, 379}, {2, 449},
	{2, 526}, {2, 602}, {2, 679}, {4, 340}, {4, 378}, {4, 434}, {4, 490},
	{4, 553}, {4, 616}, {4, 658}, {6, 438}, {6, 466}, {6, 517}, {6, 567},
	{6, 616}, {6, 666}, {6, 719}, {6, 772}, {6, 822}, {6, 873}, {6, 910},
}

// Valid reports whether the MCS index is within the table.
func (m MCS) Valid() bool { return m >= 0 && m <= MaxMCS }

// ModulationOrder returns bits per modulation symbol (Qm).
func (m MCS) ModulationOrder() int {
	if !m.Valid() {
		panic(fmt.Sprintf("phy: invalid MCS %d", m))
	}
	return mcsTable64[m].qm
}

// CodeRate returns the target code rate (0..1).
func (m MCS) CodeRate() float64 {
	if !m.Valid() {
		panic(fmt.Sprintf("phy: invalid MCS %d", m))
	}
	return mcsTable64[m].rate1024 / 1024
}

// SpectralEfficiency returns information bits per resource element
// (Qm × R), the quantity that converts PRBs into transport-block bits.
func (m MCS) SpectralEfficiency() float64 {
	return float64(m.ModulationOrder()) * m.CodeRate()
}

// Modulation returns a human-readable modulation name.
func (m MCS) Modulation() string {
	switch m.ModulationOrder() {
	case 2:
		return "QPSK"
	case 4:
		return "16QAM"
	case 6:
		return "64QAM"
	default:
		return "unknown"
	}
}

// String implements fmt.Stringer.
func (m MCS) String() string {
	if !m.Valid() {
		return fmt.Sprintf("MCS(%d)", int(m))
	}
	return fmt.Sprintf("MCS%d(%s,R=%.2f)", int(m), m.Modulation(), m.CodeRate())
}

// CQI is a channel-quality indicator (0..15) as reported by the UE.
type CQI int

// cqiSNRThresholds maps CQI index i (1..15) to the approximate minimum
// SNR (dB) at which that CQI is reported, derived from the standard
// CQI table efficiencies mapped through the Shannon gap. CQI 0 means
// out of range.
var cqiSNRThresholds = [16]float64{
	-100, -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9,
	8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
}

// CQIFromSNR quantizes an SNR (dB) to the highest CQI whose threshold
// it meets.
func CQIFromSNR(snrDB float64) CQI {
	best := CQI(0)
	for i := 1; i < len(cqiSNRThresholds); i++ {
		if snrDB >= cqiSNRThresholds[i] {
			best = CQI(i)
		}
	}
	return best
}

// MCSForSNR returns the highest MCS whose ~10%-BLER operating point is
// at or below the given SNR, minus backoff. This keeps link adaptation
// consistent with the BLER model: the selected MCS has non-negative
// margin, so first-transmission BLER stays at or below the 10% target.
func MCSForSNR(snrDB float64, backoff int) MCS {
	m := MCS(0)
	for i := MaxMCS; i >= 0; i-- {
		if mcsSNRRequired[i] <= snrDB {
			m = i
			break
		}
	}
	m -= MCS(backoff)
	if m < 0 {
		m = 0
	}
	if m > MaxMCS {
		m = MaxMCS
	}
	return m
}

// MCSFromCQI returns the scheduler's MCS choice for a reported CQI,
// after applying backoff (conservative link adaptation subtracts a few
// indices; aggressive adds). The CQI is first mapped back to the lower
// edge of its SNR bin — quantization makes the selection conservative,
// as real link adaptation is.
func MCSFromCQI(cqi CQI, backoff int) MCS {
	if cqi < 0 {
		cqi = 0
	}
	if cqi > 15 {
		cqi = 15
	}
	return MCSForSNR(cqiSNRThresholds[cqi], backoff)
}

// snrRequired returns the approximate SNR (dB) at which the MCS
// achieves ~10% BLER on first transmission, the operating point link
// adaptation targets. Derived from spectral efficiency through the
// Shannon gap: SNR_dB ≈ 10·log10(2^(eff·gap) − 1).
func (m MCS) snrRequired() float64 {
	return mcsSNRRequired[m]
}

// mcsSNRRequired is precomputed for speed; see snr_table_test.go for
// the generating property.
var mcsSNRRequired = func() [28]float64 {
	var out [28]float64
	for i := range out {
		eff := MCS(i).SpectralEfficiency()
		// Inverse Shannon with a 1.6× gap-to-capacity factor:
		// eff = log2(1+snr)/1.6  =>  snr = 2^(1.6·eff) − 1.
		lin := pow2(1.6*eff) - 1
		out[i] = 10 * log10(lin)
	}
	return out
}()

func pow2(x float64) float64 {
	// exp2 via math.Exp2 without importing math at package scope twice;
	// small helper keeps the table init readable.
	return exp2(x)
}
