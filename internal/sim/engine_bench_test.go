package sim

import (
	"testing"
)

// The scheduler microbenchmarks process a fixed batch of events per
// iteration so that even a -benchtime=1x run (the CI perf gate) yields
// a statistically meaningful events/s figure.

const benchEvents = 1 << 17 // 131072 events per iteration

// BenchmarkEngineSchedule measures raw schedule+dispatch churn with a
// scattered (LCG-permuted) timestamp pattern, the general case for the
// heap.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		lcg := uint64(12345)
		for j := 0; j < benchEvents; j++ {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			at := base + Time(lcg%1000)*Microsecond
			e.Schedule(at, sinkFn)
		}
		e.Run()
	}
	b.ReportMetric(float64(benchEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineTicker measures the ticker steady state — the
// simulator's dominant event source (slot loops, frame and stats
// timers): 16 tickers with co-prime-ish intervals firing across one
// simulated second per iteration.
func BenchmarkEngineTicker(b *testing.B) {
	e := NewEngine()
	intervals := []Time{7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67}
	events := 0
	for _, iv := range intervals {
		e.NewTicker(0, iv*Microsecond, func(Time) { events++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	events = 0
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 100*Millisecond)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineScheduleCancel measures the eager-removal Cancel path:
// every scheduled event is canceled before it fires (the RRC
// inactivity-timer pattern).
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	ids := make([]EventID, benchEvents)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := range ids {
			ids[j] = e.Schedule(base+Time(j%997)*Microsecond, sinkFn)
		}
		for j := range ids {
			e.Cancel(ids[j])
		}
		if e.Pending() != 0 {
			b.Fatal("cancel left events behind")
		}
	}
	b.ReportMetric(float64(benchEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
