package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// Parent and child streams must differ.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d drawn %d times out of 70000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(3)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~3", mean)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto draw %v below xm", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(6)
	for _, mean := range []float64{0.5, 4, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(9)
	base := 100 * Millisecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.2)
		if j < 80*Millisecond || j > 120*Millisecond {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(10)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

// Property: any seed yields Float64 values in [0,1) and LogNormal > 0.
func TestRNGRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
			if r.LogNormal(0, 1) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
