package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOWithinTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5*Millisecond, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(Millisecond, func() { ran = true })
	e.Cancel(id)
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	// Canceling twice is a no-op.
	e.Cancel(id)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		at := at
		e.Schedule(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(3 * Millisecond)
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if e.Now() != 3*Millisecond {
		t.Fatalf("clock after RunUntil = %v, want 3ms", e.Now())
	}
	e.RunUntil(10 * Millisecond)
	if len(ran) != 3 {
		t.Fatalf("ran %d events total, want 3", len(ran))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(Millisecond, func() { count++; e.Stop() })
	e.Schedule(2*Millisecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: count = %d", count)
	}
	// Resume picks up where we left off.
	e.Run()
	if count != 2 {
		t.Fatalf("resume failed: count = %d", count)
	}
}

func TestEngineScheduleAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5*Millisecond, func() {
		e.ScheduleAfter(-Millisecond, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.NewTicker(0, 10*Millisecond, func(now Time) {
		ticks = append(ticks, now)
	})
	e.RunUntil(35 * Millisecond)
	tk.Stop()
	e.RunUntil(100 * Millisecond)
	if len(ticks) != 4 { // 0, 10, 20, 30 ms
		t.Fatalf("tick count = %d, want 4 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		if at != Time(i)*10*Millisecond {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(0, Millisecond, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromMilliseconds(1.5) != 1500*Microsecond {
		t.Fatal("FromMilliseconds")
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Fatal("FromSeconds")
	}
	if (2 * Second).Milliseconds() != 2000 {
		t.Fatal("Milliseconds")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds")
	}
	if (1500 * Millisecond).String() != "1.500s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}

// TestEngineCancelEager pins the new Cancel contract: canceled events
// leave the queue immediately, so Pending never counts dead entries
// (the old lazy-deletion queue over-reported until the entry was
// popped).
func TestEngineCancelEager(t *testing.T) {
	e := NewEngine()
	ids := make([]EventID, 10)
	for i := range ids {
		ids[i] = e.Schedule(Time(i+1)*Millisecond, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	// Cancel from the middle and both ends.
	for _, i := range []int{4, 0, 9} {
		e.Cancel(ids[i])
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending after 3 cancels = %d, want 7", e.Pending())
	}
	// Double-cancel stays a no-op.
	e.Cancel(ids[4])
	if e.Pending() != 7 {
		t.Fatalf("Pending after double cancel = %d, want 7", e.Pending())
	}
	e.Run()
	if got := int(e.Executed()); got != 7 {
		t.Fatalf("executed %d events, want 7", got)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", e.Pending())
	}
}

// TestEngineStaleEventID pins that an EventID from an executed event
// can never cancel the event that recycled its slot.
func TestEngineStaleEventID(t *testing.T) {
	e := NewEngine()
	stale := e.Schedule(Millisecond, func() {})
	e.Run() // executes and frees the slot
	ran := false
	e.Schedule(2*Millisecond, func() { ran = true }) // reuses the slot
	e.Cancel(stale)                                  // must not touch the new event
	e.Run()
	if !ran {
		t.Fatal("stale EventID canceled a recycled slot's event")
	}
}

// TestEngineCancelHeavyProperty schedules and cancels pseudo-randomly
// and checks that exactly the surviving events run, in order.
func TestEngineCancelHeavyProperty(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := NewEngine()
		type ev struct {
			id EventID
			at Time
		}
		var scheduled []ev
		ran := 0
		for _, d := range delays {
			at := Time(d) * Microsecond
			scheduled = append(scheduled, ev{e.Schedule(at, func() { ran++ }), at})
		}
		want := len(scheduled)
		for i, s := range scheduled {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(s.id)
				want--
			}
		}
		if e.Pending() != want {
			return false
		}
		e.Run()
		return ran == want && e.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sinkFn is a pre-built no-op callback so alloc guards don't measure
// the cost of constructing the closure under test.
var sinkFn = func() {}

// TestScheduleZeroAllocSteadyState guards the free-list design: once
// the heap and slot arrays have grown, Schedule+Cancel and
// Schedule+dispatch allocate nothing.
func TestScheduleZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ { // grow heap and slots past test peak
		e.Schedule(Millisecond, sinkFn)
	}
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		id := e.Schedule(e.Now()+Millisecond, sinkFn)
		e.Cancel(id)
	}); avg != 0 {
		t.Fatalf("Schedule+Cancel allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		e.Schedule(e.Now()+Millisecond, sinkFn)
		e.RunUntil(e.Now() + Millisecond)
	}); avg != 0 {
		t.Fatalf("Schedule+dispatch allocates %v/op, want 0", avg)
	}
}

// TestTickerZeroAllocSteadyState guards the cached tick closure + slot
// reuse: a running ticker allocates nothing per tick.
func TestTickerZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.NewTicker(0, Millisecond, func(Time) { ticks++ })
	e.RunUntil(10 * Millisecond) // warm up
	if avg := testing.AllocsPerRun(200, func() {
		e.RunUntil(e.Now() + Millisecond)
	}); avg != 0 {
		t.Fatalf("ticker tick allocates %v/op, want 0", avg)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// Property: for any set of event delays, the engine dispatches them in
// nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			at := Time(d) * Microsecond
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
