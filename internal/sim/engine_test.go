package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Millisecond, func() { order = append(order, 3) })
	e.Schedule(10*Millisecond, func() { order = append(order, 1) })
	e.Schedule(20*Millisecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOWithinTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5*Millisecond, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(Millisecond, func() { ran = true })
	e.Cancel(id)
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	// Canceling twice is a no-op.
	e.Cancel(id)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		at := at
		e.Schedule(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(3 * Millisecond)
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	if e.Now() != 3*Millisecond {
		t.Fatalf("clock after RunUntil = %v, want 3ms", e.Now())
	}
	e.RunUntil(10 * Millisecond)
	if len(ran) != 3 {
		t.Fatalf("ran %d events total, want 3", len(ran))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(Millisecond, func() { count++; e.Stop() })
	e.Schedule(2*Millisecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt the loop: count = %d", count)
	}
	// Resume picks up where we left off.
	e.Run()
	if count != 2 {
		t.Fatalf("resume failed: count = %d", count)
	}
}

func TestEngineScheduleAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5*Millisecond, func() {
		e.ScheduleAfter(-Millisecond, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.NewTicker(0, 10*Millisecond, func(now Time) {
		ticks = append(ticks, now)
	})
	e.RunUntil(35 * Millisecond)
	tk.Stop()
	e.RunUntil(100 * Millisecond)
	if len(ticks) != 4 { // 0, 10, 20, 30 ms
		t.Fatalf("tick count = %d, want 4 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		if at != Time(i)*10*Millisecond {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.NewTicker(0, Millisecond, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTimeConversions(t *testing.T) {
	if FromMilliseconds(1.5) != 1500*Microsecond {
		t.Fatal("FromMilliseconds")
	}
	if FromSeconds(0.25) != 250*Millisecond {
		t.Fatal("FromSeconds")
	}
	if (2 * Second).Milliseconds() != 2000 {
		t.Fatal("Milliseconds")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds")
	}
	if (1500 * Millisecond).String() != "1.500s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}

// Property: for any set of event delays, the engine dispatches them in
// nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var seen []Time
		for _, d := range delays {
			at := Time(d) * Microsecond
			e.Schedule(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
