// Package sim provides a deterministic discrete-event simulation engine
// used by every substrate in the Domino reproduction: the 5G RAN model,
// the network paths, and the WebRTC media stack all schedule their work
// as timestamped events on a single Engine.
//
// Time is modeled as integer microseconds (Time). All randomness flows
// through the seeded RNG in rng.go, so a simulation run is a pure
// function of its configuration and seed.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulation timestamp in microseconds since the start of the
// run. Microsecond resolution comfortably resolves 5G slot boundaries
// (500 µs at 30 kHz SCS) and sub-slot PHY events.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// MaxTime is the largest representable simulation timestamp.
const MaxTime Time = math.MaxInt64

// Milliseconds returns the timestamp as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the timestamp as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMilliseconds converts a float64 millisecond count to a Time.
func FromMilliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// FromSeconds converts a float64 second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// The scheduler stores events in two flat arrays instead of a
// pointer-per-event container/heap: heapEntry values ordered by
// (at, seq) in an implicit 4-ary heap, and eventSlot values holding the
// callbacks. Slots are recycled through a free list, so steady-state
// scheduling allocates nothing; a generation counter per slot makes
// recycled EventIDs unambiguous. The 4-ary layout halves the tree depth
// of the binary heap and keeps sift loops inside one or two cache lines
// of the entry array.

// heapEntry is one scheduled occurrence in the priority queue. seq
// breaks ties so that events scheduled earlier at the same timestamp
// run first (deterministic FIFO ordering within a timestamp).
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// eventSlot holds a callback and its bookkeeping. gen starts at 1 and
// is bumped every time the slot is freed, so a stale EventID (executed
// or canceled event) can never match a recycled slot. heapPos is the
// slot's current index in the heap array, -1 while free.
//
// A slot carries either fn (Schedule) or argFn+arg (ScheduleArg); the
// latter lets hot paths dispatch a long-lived callback against a
// per-event argument without allocating a fresh closure per event.
type eventSlot struct {
	fn       func()
	argFn    func(any)
	arg      any
	gen      uint32
	heapPos  int32
	nextFree int32
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is inert: Cancel of it is a no-op (slot generations start at
// 1, so a zero generation never matches). An EventID is only
// meaningful on the Engine that issued it — slot indices and
// generations are per-engine, so canceling it on another engine could
// silently hit an unrelated event there.
type EventID struct {
	slot int32
	gen  uint32
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now   Time
	heap  []heapEntry
	slots []eventSlot
	// freeHead is the head of the free-slot list, -1 when empty.
	freeHead int32
	seq      uint64
	// stopped is set by Stop and halts the run loop after the current
	// event completes.
	stopped bool
	// executed counts dispatched events, exposed for tests and for
	// benchmark throughput reporting.
	executed uint64
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{freeHead: -1}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

func (e *Engine) less(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp moves the entry at index i toward the root until the heap
// property holds, updating slot positions along the way.
func (e *Engine) siftUp(i int) {
	ent := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(ent, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i].slot].heapPos = int32(i)
		i = p
	}
	e.heap[i] = ent
	e.slots[ent.slot].heapPos = int32(i)
}

// siftDown moves the entry at index i toward the leaves until the heap
// property holds.
func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	ent := e.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.less(e.heap[best], ent) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i].slot].heapPos = int32(i)
		i = best
	}
	e.heap[i] = ent
	e.slots[ent.slot].heapPos = int32(i)
}

// heapRemove deletes the entry at heap index i and returns it.
func (e *Engine) heapRemove(i int) heapEntry {
	ent := e.heap[i]
	n := len(e.heap) - 1
	if i != n {
		moved := e.heap[n]
		e.heap = e.heap[:n]
		e.heap[i] = moved
		e.slots[moved.slot].heapPos = int32(i)
		e.siftDown(i)
		if e.heap[i].slot == moved.slot {
			e.siftUp(i)
		}
	} else {
		e.heap = e.heap[:n]
	}
	return ent
}

// allocSlot takes a slot off the free list (or grows the slot array)
// and installs fn in it.
func (e *Engine) allocSlot(fn func()) int32 {
	if i := e.freeHead; i >= 0 {
		s := &e.slots[i]
		e.freeHead = s.nextFree
		s.fn = fn
		return i
	}
	e.slots = append(e.slots, eventSlot{fn: fn, gen: 1, heapPos: -1})
	return int32(len(e.slots) - 1)
}

// freeSlot returns a slot to the free list, invalidating every EventID
// issued for its current generation.
func (e *Engine) freeSlot(i int32) {
	s := &e.slots[i]
	s.fn = nil
	s.argFn = nil
	s.arg = nil
	s.gen++
	s.heapPos = -1
	s.nextFree = e.freeHead
	e.freeHead = i
}

// Schedule runs fn at absolute time at. Scheduling in the past (before
// Now) panics: it always indicates a modeling bug, and silently
// reordering time would destroy causality in the trace data.
func (e *Engine) Schedule(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	si := e.allocSlot(fn)
	e.heap = append(e.heap, heapEntry{at: at, seq: e.seq, slot: si})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	return EventID{slot: si, gen: e.slots[si].gen}
}

// ScheduleAfter runs fn after delay d from the current time.
func (e *Engine) ScheduleAfter(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// ScheduleArg runs fn(arg) at absolute time at. It is the zero-alloc
// variant of Schedule for per-event work: the caller builds fn once
// (e.g. per link or per HARQ entity) and passes the varying state as
// arg, avoiding a closure allocation on every call. Pointer-shaped args
// do not allocate when boxed into the interface. Ordering semantics are
// identical to Schedule (same timestamp+sequence queue).
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	si := e.allocSlot(nil)
	s := &e.slots[si]
	s.argFn = fn
	s.arg = arg
	e.heap = append(e.heap, heapEntry{at: at, seq: e.seq, slot: si})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	return EventID{slot: si, gen: s.gen}
}

// Cancel removes a scheduled event from the queue immediately.
// Canceling an already-executed or already-canceled event is a no-op:
// the slot generation no longer matches. Because removal is eager, a
// canceled event costs nothing at dispatch time and Pending() never
// counts it. The id must come from this engine's Schedule/ScheduleArg
// (see EventID).
func (e *Engine) Cancel(id EventID) {
	if id.slot < 0 || int(id.slot) >= len(e.slots) {
		return
	}
	s := &e.slots[id.slot]
	if s.gen != id.gen || s.heapPos < 0 {
		return
	}
	e.heapRemove(int(s.heapPos))
	e.freeSlot(id.slot)
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step dispatches the next event. It reports false when the queue is
// empty. The event's slot is freed before its callback runs, so a
// callback that schedules (tickers do) reuses the slot it fired from.
func (e *Engine) step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ent := e.heapRemove(0)
	s := &e.slots[ent.slot]
	fn, argFn, arg := s.fn, s.argFn, s.arg
	e.freeSlot(ent.slot)
	e.now = ent.at
	e.executed++
	if argFn != nil {
		argFn(arg)
	} else {
		fn()
	}
	return true
}

// RunUntil executes events in timestamp order until the queue is empty,
// Stop is called, or the next event would run strictly after deadline.
// The clock is left at min(deadline, time of last executed event) —
// i.e. after RunUntil returns normally, Now() == deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.heap) == 0 || e.heap[0].at > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// Pending returns the number of live scheduled events. Canceled events
// are removed eagerly, so — unlike the old lazy-deletion queue — the
// count never includes dead entries.
func (e *Engine) Pending() int { return len(e.heap) }

// Ticker repeatedly schedules fn every interval until canceled. The
// callback receives the tick time. Tickers are the backbone of the
// slot-level RAN loop and the 50 ms WebRTC stats collector.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       func(Time)
	// tickFn caches the t.tick method value so rescheduling does not
	// allocate a fresh closure every tick; combined with the engine's
	// slot free list, a steady ticker allocates nothing after start.
	tickFn  func()
	id      EventID
	stopped bool
}

// NewTicker starts a ticker whose first tick fires at start and then
// every interval thereafter. interval must be positive.
func (e *Engine) NewTicker(start, interval Time, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tickFn = t.tick
	t.id = e.Schedule(start, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	now := t.engine.Now()
	t.fn(now)
	if !t.stopped {
		// The slot this tick fired from was freed just before dispatch,
		// so this reschedule reuses it via the free list.
		t.id = t.engine.Schedule(now+t.interval, t.tickFn)
	}
}

// Stop cancels the ticker. A stopped ticker never fires again.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.id)
}
