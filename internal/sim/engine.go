// Package sim provides a deterministic discrete-event simulation engine
// used by every substrate in the Domino reproduction: the 5G RAN model,
// the network paths, and the WebRTC media stack all schedule their work
// as timestamped events on a single Engine.
//
// Time is modeled as integer microseconds (Time). All randomness flows
// through the seeded RNG in rng.go, so a simulation run is a pure
// function of its configuration and seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in microseconds since the start of the
// run. Microsecond resolution comfortably resolves 5G slot boundaries
// (500 µs at 30 kHz SCS) and sub-slot PHY events.
type Time int64

// Common durations expressed in simulation Time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
)

// MaxTime is the largest representable simulation timestamp.
const MaxTime Time = math.MaxInt64

// Milliseconds returns the timestamp as a float64 millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns the timestamp as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMilliseconds converts a float64 millisecond count to a Time.
func FromMilliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// FromSeconds converts a float64 second count to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// event is a scheduled callback. seq breaks ties so that events
// scheduled earlier at the same timestamp run first (deterministic
// FIFO ordering within a timestamp).
type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	e *event
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now   Time
	queue eventQueue
	seq   uint64
	// stopped is set by Stop and halts the run loop after the current
	// event completes.
	stopped bool
	// executed counts dispatched events, exposed for tests and for
	// benchmark throughput reporting.
	executed uint64
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events dispatched so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn at absolute time at. Scheduling in the past (before
// Now) panics: it always indicates a modeling bug, and silently
// reordering time would destroy causality in the trace data.
func (e *Engine) Schedule(at Time, fn func()) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{e: ev}
}

// ScheduleAfter runs fn after delay d from the current time.
func (e *Engine) ScheduleAfter(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel marks a scheduled event as dead. Canceling an already-executed
// or already-canceled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.e != nil {
		id.e.dead = true
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step dispatches the next live event. It reports false when the queue
// is empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in timestamp order until the queue is empty,
// Stop is called, or the next event would run strictly after deadline.
// The clock is left at min(deadline, time of last executed event) —
// i.e. after RunUntil returns normally, Now() == deadline.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		// Peek at the head; live or dead, its timestamp bounds the next
		// dispatch time.
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// Pending returns the number of events in the queue, including dead
// (canceled) entries that have not yet been popped.
func (e *Engine) Pending() int { return len(e.queue) }

// Ticker repeatedly schedules fn every interval until canceled. The
// callback receives the tick time. Tickers are the backbone of the
// slot-level RAN loop and the 50 ms WebRTC stats collector.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       func(Time)
	id       EventID
	stopped  bool
}

// NewTicker starts a ticker whose first tick fires at start and then
// every interval thereafter. interval must be positive.
func (e *Engine) NewTicker(start, interval Time, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.id = e.Schedule(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	now := t.engine.Now()
	t.fn(now)
	if !t.stopped {
		t.id = t.engine.Schedule(now+t.interval, t.tick)
	}
}

// Stop cancels the ticker. A stopped ticker never fires again.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.id)
}
