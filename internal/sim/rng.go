package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 core) with the distribution helpers the simulator needs.
// We do not use math/rand so that the stream is stable across Go
// releases: experiment outputs in EXPERIMENTS.md must be reproducible
// bit-for-bit from a seed.
type RNG struct {
	state uint64
	// Spare normal deviate from the Box–Muller pair.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator from the current state.
// Subsystems (channel model, cross-traffic, sources, ...) each fork
// their own stream so that adding draws in one subsystem does not
// perturb another.
func (r *RNG) Fork() *RNG {
	// Mix a distinct constant so the child stream differs from the
	// parent continuation.
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller, with the spare deviate cached).
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + stddev*u*m
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean).
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto-distributed value with shape alpha
// and minimum xm. Heavy-tailed draws model cross-traffic burst sizes
// and frame-size outliers.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Poisson returns a Poisson-distributed count with the given mean
// (Knuth's method; means used in the simulator are small).
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation for large means keeps the loop bounded.
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac],
// a convenience for spreading otherwise-synchronized timers.
func (r *RNG) Jitter(d Time, frac float64) Time {
	return Time(float64(d) * r.Uniform(1-frac, 1+frac))
}
