package mac

import (
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/phy"
	"github.com/domino5g/domino/internal/rlc"
	"github.com/domino5g/domino/internal/sim"
)

func TestTDDPattern(t *testing.T) {
	p := TDD("DDDSU")
	want := []SlotKind{SlotDL, SlotDL, SlotDL, SlotSpecial, SlotUL}
	for i := int64(0); i < 10; i++ {
		if p.Kind(i) != want[i%5] {
			t.Fatalf("slot %d kind = %v", i, p.Kind(i))
		}
	}
	if p.IsFDD() {
		t.Fatal("TDD pattern claims FDD")
	}
	if p.String() != "DDDSU" {
		t.Fatalf("String = %q", p.String())
	}
	if p.ULSlotFraction() != 0.2 {
		t.Fatalf("UL fraction = %v", p.ULSlotFraction())
	}
}

func TestTDDHasULDL(t *testing.T) {
	p := TDD("DDDSU")
	if p.HasUL(0) || !p.HasUL(4) {
		t.Fatal("HasUL wrong")
	}
	if !p.HasDL(0) || !p.HasDL(3) || p.HasDL(4) {
		t.Fatal("HasDL wrong")
	}
	if p.NextULSlot(0) != 4 || p.NextULSlot(4) != 4 || p.NextULSlot(5) != 9 {
		t.Fatal("NextULSlot wrong")
	}
}

func TestFDDPattern(t *testing.T) {
	p := FDD()
	if !p.IsFDD() || p.Kind(17) != SlotBoth || !p.HasUL(3) || !p.HasDL(3) {
		t.Fatal("FDD pattern wrong")
	}
	if p.NextULSlot(7) != 7 {
		t.Fatal("FDD NextULSlot should be immediate")
	}
	if p.ULSlotFraction() != 1 {
		t.Fatal("FDD UL fraction")
	}
}

func TestTDDInvalidPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid pattern did not panic")
		}
	}()
	TDD("DDX")
}

func TestSlotClock(t *testing.T) {
	c := SlotClock{SlotDuration: 500 * sim.Microsecond}
	if c.SlotAt(1250*sim.Microsecond) != 2 {
		t.Fatal("SlotAt")
	}
	if c.TimeOf(4) != 2*sim.Millisecond {
		t.Fatal("TimeOf")
	}
}

func mkTB(id uint64, mcs phy.MCS) *TB {
	return &TB{ID: id, MCS: mcs, PRBs: 20, TBSBits: phy.TransportBlockSizeBits(mcs, 20)}
}

func TestHARQAllDecodeAtHighSNR(t *testing.T) {
	e := sim.NewEngine()
	decoded := 0
	h := NewHARQEntity(DefaultHARQConfig(), e, sim.NewRNG(1),
		func(*TB, sim.Time) { decoded++ }, nil, nil, nil)
	e.Schedule(0, func() {
		for i := 0; i < 200; i++ {
			h.Transmit(mkTB(uint64(i), 10), 40 /* huge margin */, 500*sim.Microsecond)
		}
	})
	e.Run()
	if decoded != 200 {
		t.Fatalf("decoded %d/200 at 40 dB", decoded)
	}
	if h.Retx != 0 {
		t.Fatalf("%d retx at 40 dB", h.Retx)
	}
}

func TestHARQRetxAndExhaustion(t *testing.T) {
	e := sim.NewEngine()
	cfg := HARQConfig{RTT: 10 * sim.Millisecond, MaxAttempts: 3}
	var exhausted, decoded int
	var retxRequests []*TB
	var h *HARQEntity
	h = NewHARQEntity(cfg, e, sim.NewRNG(2),
		func(*TB, sim.Time) { decoded++ },
		func(*TB, sim.Time) { exhausted++ },
		func(tb *TB) {
			retxRequests = append(retxRequests, tb)
			// Cell resends immediately at terrible SNR so it keeps failing.
			h.Transmit(tb, -30, 500*sim.Microsecond)
		}, nil)
	e.Schedule(0, func() { h.Transmit(mkTB(1, 15), -30, 500*sim.Microsecond) })
	e.Run()
	if decoded != 0 {
		t.Fatal("decoded at -30 dB")
	}
	if exhausted != 1 {
		t.Fatalf("exhausted = %d, want 1", exhausted)
	}
	if len(retxRequests) != 2 { // attempts 1 and 2 after the first
		t.Fatalf("retx requests = %d, want 2", len(retxRequests))
	}
	if h.Exhausted != 1 {
		t.Fatal("stats: exhausted counter")
	}
}

func TestHARQRetxTiming(t *testing.T) {
	e := sim.NewEngine()
	cfg := HARQConfig{RTT: 10 * sim.Millisecond, MaxAttempts: 5}
	var retxAt []sim.Time
	var h *HARQEntity
	h = NewHARQEntity(cfg, e, sim.NewRNG(3), nil, nil, func(tb *TB) {
		retxAt = append(retxAt, e.Now())
		if len(retxAt) < 3 {
			h.Transmit(tb, -30, 500*sim.Microsecond)
		}
	}, nil)
	e.Schedule(0, func() {
		tb := mkTB(1, 10)
		tb.SentAt = 0
		h.Transmit(tb, -30, 500*sim.Microsecond)
	})
	e.Run()
	if len(retxAt) < 2 {
		t.Fatalf("only %d retx", len(retxAt))
	}
	// Retx n becomes schedulable at SentAt + n*RTT — the ~10 ms per
	// cycle delay inflation of Fig. 17.
	if retxAt[0] != 10*sim.Millisecond {
		t.Fatalf("first retx at %v, want 10ms", retxAt[0])
	}
	if retxAt[1] != 20*sim.Millisecond {
		t.Fatalf("second retx at %v, want 20ms", retxAt[1])
	}
}

func TestHARQOutcomeCallback(t *testing.T) {
	e := sim.NewEngine()
	var outcomes []HARQOutcome
	h := NewHARQEntity(DefaultHARQConfig(), e, sim.NewRNG(4), nil, nil, nil,
		func(o HARQOutcome) { outcomes = append(outcomes, o) })
	e.Schedule(0, func() { h.Transmit(mkTB(1, 5), 40, sim.Millisecond) })
	e.Run()
	if len(outcomes) != 1 || !outcomes[0].Decoded || outcomes[0].At != sim.Millisecond {
		t.Fatalf("outcomes = %+v", outcomes)
	}
}

func TestCrossTrafficQuiet(t *testing.T) {
	ct := NewCrossTraffic(QuietCell(), 100, sim.NewRNG(5))
	for i := sim.Time(0); i < sim.Second; i += 500 * sim.Microsecond {
		if d := ct.DemandPRBs(i, 500*sim.Microsecond); d != 0 {
			t.Fatalf("quiet cell demanded %d PRBs", d)
		}
	}
}

func TestCrossTrafficBusyStats(t *testing.T) {
	ct := NewCrossTraffic(BusyCommercialDL(), 79, sim.NewRNG(6))
	var sum, n float64
	nonzero := 0
	for i := sim.Time(0); i < 2*sim.Minute; i += sim.Millisecond {
		d := ct.DemandPRBs(i, sim.Millisecond)
		if d < 0 || d > 79 {
			t.Fatalf("demand %d out of range", d)
		}
		if d > 0 {
			nonzero++
		}
		sum += float64(d)
		n++
	}
	mean := sum / n
	if mean < 5 || mean > 70 {
		t.Fatalf("busy-cell mean demand = %v PRBs, implausible", mean)
	}
	if float64(nonzero)/n < 0.9 {
		t.Fatal("busy cell should have near-constant baseline demand")
	}
}

func TestCrossTrafficScriptedBurst(t *testing.T) {
	ct := NewCrossTraffic(QuietCell(), 100, sim.NewRNG(7))
	ct.ScriptBurst(sim.Second, 2*sim.Second, 0.8)
	if d := ct.DemandPRBs(1500*sim.Millisecond, sim.Millisecond); d != 80 {
		t.Fatalf("scripted demand = %d, want 80", d)
	}
	if d := ct.DemandPRBs(2500*sim.Millisecond, sim.Millisecond); d != 0 {
		t.Fatalf("demand after burst = %d", d)
	}
}

func TestULSchedulerBasicPipeline(t *testing.T) {
	cfg := GrantConfig{SchedulingDelay: 12 * sim.Millisecond, BSRPeriod: 2 * sim.Millisecond, MaxGrantBytes: 100000}
	s := NewULScheduler(cfg)
	// Slot at t=0 with 5000 buffered bytes: BSR goes out, nothing usable.
	usable, _ := s.OnULSlot(0, 5000)
	if usable != 0 {
		t.Fatalf("grant usable immediately: %d", usable)
	}
	if s.BSRsSent != 1 {
		t.Fatal("BSR not sent")
	}
	// Before the scheduling delay: still nothing, and no duplicate BSR
	// for the same bytes.
	usable, _ = s.OnULSlot(5*sim.Millisecond, 5000)
	if usable != 0 || s.BSRsSent != 1 {
		t.Fatalf("pipeline leaked early: usable=%d bsrs=%d", usable, s.BSRsSent)
	}
	// After the delay the grant is usable and covers the BSR.
	usable, proactive := s.OnULSlot(12*sim.Millisecond, 5000)
	if usable != 5000 || proactive {
		t.Fatalf("usable = %d (proactive=%v), want 5000", usable, proactive)
	}
}

func TestULSchedulerGrowingBuffer(t *testing.T) {
	cfg := GrantConfig{SchedulingDelay: 10 * sim.Millisecond, BSRPeriod: 2 * sim.Millisecond, MaxGrantBytes: 100000}
	s := NewULScheduler(cfg)
	s.OnULSlot(0, 3000)
	// Buffer grows: a second BSR should cover only the delta.
	s.OnULSlot(2*sim.Millisecond, 7000)
	if s.BSRsSent != 2 {
		t.Fatalf("BSRs = %d, want 2", s.BSRsSent)
	}
	total := 0
	u, _ := s.OnULSlot(10*sim.Millisecond, 7000)
	total += u
	u, _ = s.OnULSlot(12*sim.Millisecond, 7000)
	total += u
	if total != 7000 {
		t.Fatalf("granted %d total, want 7000", total)
	}
}

func TestULSchedulerMaxGrantCap(t *testing.T) {
	cfg := GrantConfig{SchedulingDelay: sim.Millisecond, BSRPeriod: sim.Millisecond, MaxGrantBytes: 1000}
	s := NewULScheduler(cfg)
	s.OnULSlot(0, 5000)
	u, _ := s.OnULSlot(sim.Millisecond, 5000)
	if u != 1000 {
		t.Fatalf("grant = %d, want cap 1000", u)
	}
}

func TestULSchedulerProactive(t *testing.T) {
	cfg := GrantConfig{
		SchedulingDelay: 15 * sim.Millisecond, BSRPeriod: 2 * sim.Millisecond,
		MaxGrantBytes: 100000, Proactive: true,
		ProactivePeriod: 5 * sim.Millisecond, ProactiveBytes: 800,
	}
	s := NewULScheduler(cfg)
	// Even with an empty buffer, proactive grants appear immediately.
	u, pro := s.OnULSlot(0, 0)
	if u != 800 || !pro {
		t.Fatalf("proactive grant missing: %d (%v)", u, pro)
	}
	// Next one only after the period.
	u, _ = s.OnULSlot(2*sim.Millisecond, 0)
	if u != 0 {
		t.Fatalf("proactive period violated: %d", u)
	}
	u, pro = s.OnULSlot(5*sim.Millisecond, 0)
	if u != 800 || !pro {
		t.Fatal("second proactive grant missing")
	}
	if s.ProactiveGrants != 2 {
		t.Fatalf("proactive counter = %d", s.ProactiveGrants)
	}
}

// Property: the scheduler eventually grants every buffered byte, with
// over-granting bounded by the grant floor (the last grant may be
// padded to MinGrantBytes).
func TestULSchedulerConservationProperty(t *testing.T) {
	f := func(bufRaw uint16, delayRaw uint8) bool {
		buf := int(bufRaw)%20000 + 1
		cfg := GrantConfig{
			SchedulingDelay: sim.Time(int(delayRaw)%20+1) * sim.Millisecond,
			BSRPeriod:       2 * sim.Millisecond,
			MaxGrantBytes:   4000,
		}
		s := NewULScheduler(cfg)
		granted := 0
		for now := sim.Time(0); now < 500*sim.Millisecond; now += sim.Millisecond {
			remaining := buf - granted
			if remaining < 0 {
				remaining = 0
			}
			u, _ := s.OnULSlot(now, remaining)
			granted += u
		}
		return granted >= buf && granted <= buf+DefaultMinGrantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTBDirectionField(t *testing.T) {
	tb := &TB{Dir: netem.Uplink, Segments: []rlc.Segment{{Length: 10}}}
	if tb.Dir.String() != "UL" || len(tb.Segments) != 1 {
		t.Fatal("TB fields")
	}
}
