package mac

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// CrossTrafficConfig shapes the PRB demand of background UEs sharing
// the cell. The paper attributes 28% of commercial-cell degradations to
// cross traffic; the heavily-utilized T-Mobile FDD cell shows strong
// asymmetric (DL-dominant) cross load.
type CrossTrafficConfig struct {
	// UEs is the number of background users.
	UEs int `json:"ues"`
	// BurstRate is the expected bursts per minute per UE.
	BurstRate float64 `json:"burst_rate"`
	// BurstDuration is the mean burst length.
	BurstDuration sim.Time `json:"burst_duration_us"`
	// BurstPRBFraction is the mean fraction of the carrier a bursting
	// UE demands.
	BurstPRBFraction float64 `json:"burst_prb_fraction"`
	// BaselineFraction is the always-on background demand fraction
	// (light chatter from idle-ish UEs).
	BaselineFraction float64 `json:"baseline_fraction"`
}

// QuietCell returns a no-cross-traffic profile (private cells in the
// paper carried only the experiment UE).
func QuietCell() CrossTrafficConfig { return CrossTrafficConfig{} }

// BusyCommercialDL returns the heavy, bursty downlink load of the
// T-Mobile 15 MHz FDD cell.
func BusyCommercialDL() CrossTrafficConfig {
	return CrossTrafficConfig{
		UEs:              8,
		BurstRate:        5,
		BurstDuration:    900 * sim.Millisecond,
		BurstPRBFraction: 0.55,
		BaselineFraction: 0.18,
	}
}

// LightCommercialUL returns the lighter uplink load commercial cells
// carry.
func LightCommercialUL() CrossTrafficConfig {
	return CrossTrafficConfig{
		UEs:              4,
		BurstRate:        1.2,
		BurstDuration:    400 * sim.Millisecond,
		BurstPRBFraction: 0.2,
		BaselineFraction: 0.05,
	}
}

// CrossTraffic produces per-slot background PRB demand. Demand is the
// sum of a baseline and per-UE on/off bursts with exponential
// inter-arrivals and jittered durations.
type CrossTraffic struct {
	cfg      CrossTrafficConfig
	rng      *sim.RNG
	totalPRB int

	burstEnds []sim.Time // active burst end times (one per bursting UE)
	nextCheck sim.Time
	scripted  []scriptedBurst
}

type scriptedBurst struct {
	start, end sim.Time
	fraction   float64
}

// NewCrossTraffic builds a generator for a carrier with totalPRB
// resource blocks.
func NewCrossTraffic(cfg CrossTrafficConfig, totalPRB int, rng *sim.RNG) *CrossTraffic {
	return &CrossTraffic{cfg: cfg, rng: rng.Fork(), totalPRB: totalPRB}
}

// SetConfig replaces the generator's stochastic profile from the next
// DemandPRBs call onward. Bursts already in flight keep their end
// times; only arrival statistics and demand fractions change. Scenario
// dynamics schedule this on the simulation engine to model load-regime
// shifts (e.g. a quiet cell entering rush hour mid-call).
func (ct *CrossTraffic) SetConfig(cfg CrossTrafficConfig) { ct.cfg = cfg }

// Config returns the generator's current profile.
func (ct *CrossTraffic) Config() CrossTrafficConfig { return ct.cfg }

// ScriptBurst injects a deterministic background load of the given
// carrier fraction during [start, end) — used by the Fig. 13 scenario.
func (ct *CrossTraffic) ScriptBurst(start, end sim.Time, fraction float64) {
	ct.scripted = append(ct.scripted, scriptedBurst{start, end, fraction})
	sort.Slice(ct.scripted, func(i, j int) bool { return ct.scripted[i].start < ct.scripted[j].start })
}

// DemandPRBs returns the background PRB demand for the slot at now.
func (ct *CrossTraffic) DemandPRBs(now sim.Time, slotDuration sim.Time) int {
	demand := ct.cfg.BaselineFraction * float64(ct.totalPRB)

	if ct.cfg.UEs > 0 && ct.cfg.BurstRate > 0 {
		// Expire finished bursts.
		live := ct.burstEnds[:0]
		for _, end := range ct.burstEnds {
			if end > now {
				live = append(live, end)
			}
		}
		ct.burstEnds = live
		// New burst arrivals: Poisson thinning per slot across UEs.
		perSlot := float64(ct.cfg.UEs) * ct.cfg.BurstRate / 60 * float64(slotDuration) / float64(sim.Second)
		if ct.rng.Bool(perSlot) {
			ct.burstEnds = append(ct.burstEnds, now+ct.rng.Jitter(ct.cfg.BurstDuration, 0.5))
		}
		for range ct.burstEnds {
			demand += ct.rng.Uniform(0.7, 1.3) * ct.cfg.BurstPRBFraction * float64(ct.totalPRB)
		}
	}

	for _, s := range ct.scripted {
		if now >= s.start && now < s.end {
			demand += s.fraction * float64(ct.totalPRB)
		}
	}

	d := int(demand)
	if d > ct.totalPRB {
		d = ct.totalPRB
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ActiveBursts returns the number of live background bursts (telemetry).
func (ct *CrossTraffic) ActiveBursts() int { return len(ct.burstEnds) }
