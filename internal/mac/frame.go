// Package mac models the 5G NR medium access control layer: TDD/FDD
// frame structures, the uplink request–grant scheduling loop (BSR →
// grant with cell-specific latency, plus proactive grants), per-slot
// PRB allocation under cross-traffic contention, and HARQ
// retransmission. Together with internal/rlc it produces exactly the
// delay mechanisms the paper traces: UL scheduling delay and delay
// spread (§5.2.1), HARQ retx delay (§5.2.2), and RLC retx + HoL
// blocking (§5.2.3).
package mac

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/sim"
)

// SlotKind is the usable direction(s) of one slot.
type SlotKind int

// Slot kinds. Special slots (the TDD guard/switch slot) carry a small
// amount of DL plus control; we model them as DL-capable.
const (
	SlotDL SlotKind = iota
	SlotUL
	SlotSpecial
	SlotBoth // FDD: every slot carries both directions
)

// String implements fmt.Stringer.
func (k SlotKind) String() string {
	switch k {
	case SlotDL:
		return "D"
	case SlotUL:
		return "U"
	case SlotSpecial:
		return "S"
	case SlotBoth:
		return "B"
	default:
		return "?"
	}
}

// FramePattern maps absolute slot indices to slot kinds.
type FramePattern struct {
	fdd     bool
	pattern []SlotKind
}

// FDD returns the frequency-division pattern: every slot is usable in
// both directions on separate carriers.
func FDD() FramePattern { return FramePattern{fdd: true} }

// TDD parses a slot pattern string such as "DDDSU" (the common
// 30 kHz mid-band pattern: 3 downlink, 1 special, 1 uplink per 2.5 ms)
// or "DDDDDDDSUU". Panics on invalid characters so misconfigured cells
// fail loudly at construction.
func TDD(pattern string) FramePattern {
	if pattern == "" {
		panic("mac: empty TDD pattern")
	}
	slots := make([]SlotKind, 0, len(pattern))
	for _, c := range strings.ToUpper(pattern) {
		switch c {
		case 'D':
			slots = append(slots, SlotDL)
		case 'U':
			slots = append(slots, SlotUL)
		case 'S':
			slots = append(slots, SlotSpecial)
		default:
			panic(fmt.Sprintf("mac: invalid TDD pattern char %q", c))
		}
	}
	return FramePattern{pattern: slots}
}

// IsFDD reports whether the pattern is frequency-division.
func (f FramePattern) IsFDD() bool { return f.fdd }

// Kind returns the slot kind for an absolute slot index.
func (f FramePattern) Kind(slot int64) SlotKind {
	if f.fdd {
		return SlotBoth
	}
	return f.pattern[int(slot%int64(len(f.pattern)))]
}

// HasUL reports whether slot carries uplink.
func (f FramePattern) HasUL(slot int64) bool {
	k := f.Kind(slot)
	return k == SlotUL || k == SlotBoth
}

// HasDL reports whether slot carries downlink.
func (f FramePattern) HasDL(slot int64) bool {
	k := f.Kind(slot)
	return k == SlotDL || k == SlotSpecial || k == SlotBoth
}

// NextULSlot returns the first slot index >= from that carries uplink.
func (f FramePattern) NextULSlot(from int64) int64 {
	if f.fdd {
		return from
	}
	n := int64(len(f.pattern))
	for i := int64(0); i < n; i++ {
		if f.HasUL(from + i) {
			return from + i
		}
	}
	panic("mac: TDD pattern has no uplink slot")
}

// ULSlotFraction returns the fraction of slots carrying uplink, used to
// derate peak UL capacity in TDD.
func (f FramePattern) ULSlotFraction() float64 {
	if f.fdd {
		return 1
	}
	ul := 0
	for _, k := range f.pattern {
		if k == SlotUL {
			ul++
		}
	}
	return float64(ul) / float64(len(f.pattern))
}

// String renders the pattern.
func (f FramePattern) String() string {
	if f.fdd {
		return "FDD"
	}
	var b strings.Builder
	for _, k := range f.pattern {
		b.WriteString(k.String())
	}
	return b.String()
}

// SlotClock converts between simulation time and slot indices for a
// given slot duration.
type SlotClock struct {
	SlotDuration sim.Time
}

// SlotAt returns the slot index containing time t.
func (c SlotClock) SlotAt(t sim.Time) int64 { return int64(t / c.SlotDuration) }

// TimeOf returns the start time of slot index s.
func (c SlotClock) TimeOf(s int64) sim.Time { return sim.Time(s) * c.SlotDuration }
