package mac

import (
	"github.com/domino5g/domino/internal/sim"
)

// GrantConfig parameterizes the uplink request–grant loop of one cell.
type GrantConfig struct {
	// SchedulingDelay is the BSR-to-usable-grant latency (the paper
	// measured 5–25 ms across its four cells). It folds together the
	// BSR opportunity wait, gNB processing, and the k2 grant offset.
	SchedulingDelay sim.Time `json:"scheduling_delay_us"`
	// BSRPeriod is the minimum spacing between buffer status reports.
	BSRPeriod sim.Time `json:"bsr_period_us"`
	// MaxGrantBytes caps a single grant (large buffers are served
	// across multiple grants, creating the multi-TB bursts of Fig. 14).
	MaxGrantBytes int `json:"max_grant_bytes"`
	// MinGrantBytes floors a single grant. Real schedulers never issue
	// grants smaller than one PRB's transport block; without the floor,
	// per-PDU header overhead fragments the tail of a buffer into
	// grants too small to carry any payload. Zero selects the default.
	MinGrantBytes int `json:"min_grant_bytes,omitempty"`
	// Proactive enables Mosolabs-style pre-scheduled small grants.
	Proactive bool `json:"proactive,omitempty"`
	// ProactivePeriod is the spacing of proactive grants.
	ProactivePeriod sim.Time `json:"proactive_period_us,omitempty"`
	// ProactiveBytes is the size of each proactive grant.
	ProactiveBytes int `json:"proactive_bytes,omitempty"`
}

// DefaultGrantConfig returns a mid-range request–grant configuration.
func DefaultGrantConfig() GrantConfig {
	return GrantConfig{
		SchedulingDelay: 12 * sim.Millisecond,
		BSRPeriod:       2 * sim.Millisecond,
		MaxGrantBytes:   12000,
	}
}

// Grant is an uplink transmission opportunity for the experiment UE.
type Grant struct {
	// UsableAt is the earliest slot time the grant can be used.
	UsableAt sim.Time
	// Bytes is the granted capacity.
	Bytes int
	// Proactive marks grants issued without a BSR.
	Proactive bool
}

// ULScheduler runs the UE/gNB request–grant state machine. The cell
// drives it once per UL-capable slot; it decides when BSRs fire and
// returns the grants that are usable in the current slot.
//
// The modeled pipeline, matching §5.2.1: data arrives in the UE RLC
// buffer → at the next BSR opportunity the UE reports its buffer →
// after SchedulingDelay the gNB's grant becomes usable → the UE
// transmits. Grants in flight are tracked so the UE does not re-report
// bytes already requested (over-reporting would hide the over-granting
// waste the paper shows in Fig. 16).
type ULScheduler struct {
	cfg GrantConfig

	pending []Grant // grants not yet usable or not yet consumed

	lastBSRAt     sim.Time
	sentBSR       bool
	inFlightBytes int // bytes requested by BSRs whose grants are still pending

	// Telemetry counters.
	BSRsSent        uint64
	GrantsIssued    uint64
	ProactiveGrants uint64

	lastProactive sim.Time
}

// DefaultMinGrantBytes is the grant floor applied when
// GrantConfig.MinGrantBytes is zero.
const DefaultMinGrantBytes = 64

// NewULScheduler returns a scheduler with the given config.
func NewULScheduler(cfg GrantConfig) *ULScheduler {
	if cfg.MinGrantBytes <= 0 {
		cfg.MinGrantBytes = DefaultMinGrantBytes
	}
	return &ULScheduler{cfg: cfg, lastProactive: -sim.MaxTime / 2, lastBSRAt: -sim.MaxTime / 2}
}

// SetConfig replaces the grant policy from the next UL slot onward.
// Grants already in flight keep their original usability times and
// sizes — exactly like a real gNB reconfiguration, which cannot recall
// issued DCIs. Scenario dynamics schedule this on the simulation
// engine to model scheduler-policy shifts (e.g. grant starvation).
func (s *ULScheduler) SetConfig(cfg GrantConfig) {
	if cfg.MinGrantBytes <= 0 {
		cfg.MinGrantBytes = DefaultMinGrantBytes
	}
	s.cfg = cfg
}

// Config returns the scheduler's current grant policy.
func (s *ULScheduler) Config() GrantConfig { return s.cfg }

// OnULSlot advances the state machine at an uplink-capable slot
// occurring at now, with the UE's current RLC buffer occupancy.
// It returns the total granted bytes usable in this slot (possibly
// from multiple accumulated grants) and whether any of it is proactive.
func (s *ULScheduler) OnULSlot(now sim.Time, bufferedBytes int) (usableBytes int, proactive bool) {
	// 1. Proactive grants fire on their own cadence.
	if s.cfg.Proactive && now-s.lastProactive >= s.cfg.ProactivePeriod {
		s.pending = append(s.pending, Grant{UsableAt: now, Bytes: s.cfg.ProactiveBytes, Proactive: true})
		s.lastProactive = now
		s.ProactiveGrants++
	}

	// 2. BSR: report un-requested buffered bytes, rate-limited.
	unrequested := bufferedBytes - s.inFlightBytes
	if unrequested > 0 && now-s.lastBSRAt >= s.cfg.BSRPeriod {
		req := unrequested
		if s.cfg.MaxGrantBytes > 0 && req > s.cfg.MaxGrantBytes {
			req = s.cfg.MaxGrantBytes
		}
		if req < s.cfg.MinGrantBytes {
			req = s.cfg.MinGrantBytes
		}
		s.pending = append(s.pending, Grant{UsableAt: now + s.cfg.SchedulingDelay, Bytes: req})
		s.inFlightBytes += req
		s.lastBSRAt = now
		s.BSRsSent++
		s.GrantsIssued++
	}

	// 3. Collect grants usable now.
	kept := s.pending[:0]
	for _, g := range s.pending {
		if g.UsableAt <= now {
			usableBytes += g.Bytes
			if g.Proactive {
				proactive = true
			} else {
				s.inFlightBytes -= g.Bytes
				if s.inFlightBytes < 0 {
					s.inFlightBytes = 0
				}
			}
		} else {
			kept = append(kept, g)
		}
	}
	s.pending = kept
	return usableBytes, proactive
}

// PendingGrants returns the number of grants still in flight.
func (s *ULScheduler) PendingGrants() int { return len(s.pending) }
