package mac

import (
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/phy"
	"github.com/domino5g/domino/internal/rlc"
	"github.com/domino5g/domino/internal/sim"
)

// TB is one transport block scheduled in one slot for one direction.
// It carries RLC segments and the PHY parameters the DCI telemetry
// records.
type TB struct {
	ID       uint64
	Dir      netem.Direction
	SentAt   sim.Time
	PRBs     int
	MCS      phy.MCS
	TBSBits  int
	UsedBits int // payload actually carried (≤ TBSBits; grants can go partly unused)
	Segments []rlc.Segment

	// Attempt is the HARQ attempt number: 0 = first transmission.
	Attempt int
	// Proactive marks TBs granted without a BSR (Mosolabs-style).
	Proactive bool
	// CarriesRLCRetx marks TBs containing RLC-retransmitted segments.
	CarriesRLCRetx bool

	// decoded carries the BLER draw from Transmit to the scheduled
	// decode event, so the event needs no per-TB closure.
	decoded bool
}

// HARQConfig parameterizes the retransmission process.
type HARQConfig struct {
	// RTT is the NACK-to-retransmission turnaround (the paper measures
	// ~10 ms on the Amarisoft cell).
	RTT sim.Time
	// MaxAttempts is the transmission cap (first + retx). The paper's
	// Amarisoft cell used 4 retransmissions; 5 total attempts.
	MaxAttempts int
}

// DefaultHARQConfig mirrors the Amarisoft configuration.
func DefaultHARQConfig() HARQConfig {
	return HARQConfig{RTT: 10 * sim.Millisecond, MaxAttempts: 5}
}

// HARQOutcome describes one concluded transport-block attempt, for
// telemetry.
type HARQOutcome struct {
	TB      *TB
	At      sim.Time
	Decoded bool
	// Exhausted is set when a failed attempt was the last allowed one,
	// escalating recovery to the RLC layer.
	Exhausted bool
}

// HARQEntity manages retransmissions for one direction of one bearer.
// The surrounding cell drives it: Transmit is called when a TB is sent;
// the entity draws the decode outcome from the BLER model, schedules
// retransmissions on the engine, and reports outcomes.
type HARQEntity struct {
	cfg    HARQConfig
	engine *sim.Engine
	rng    *sim.RNG

	// onDecoded delivers successfully decoded TBs (to RLC RX).
	onDecoded func(tb *TB, at sim.Time)
	// onExhausted hands the TB's segments back for RLC recovery.
	onExhausted func(tb *TB, at sim.Time)
	// onRetxDue asks the scheduler to resend the TB (it re-enters the
	// PRB allocation with priority at the next usable slot).
	onRetxDue func(tb *TB)
	// onOutcome observes every attempt conclusion (telemetry).
	onOutcome func(HARQOutcome)

	// decodeFn/retxFn are the ScheduleArg trampolines, built once so
	// the per-TB decode and retx-due events allocate no closures.
	decodeFn func(any)
	retxFn   func(any)

	// Stats
	FirstTx   uint64
	Retx      uint64
	Exhausted uint64
}

// NewHARQEntity constructs a HARQ entity. Any callback may be nil.
func NewHARQEntity(cfg HARQConfig, engine *sim.Engine, rng *sim.RNG,
	onDecoded func(tb *TB, at sim.Time),
	onExhausted func(tb *TB, at sim.Time),
	onRetxDue func(tb *TB),
	onOutcome func(HARQOutcome),
) *HARQEntity {
	h := &HARQEntity{
		cfg:         cfg,
		engine:      engine,
		rng:         rng.Fork(),
		onDecoded:   onDecoded,
		onExhausted: onExhausted,
		onRetxDue:   onRetxDue,
		onOutcome:   onOutcome,
	}
	h.decodeFn = func(a any) { h.decode(a.(*TB)) }
	h.retxFn = func(a any) {
		if h.onRetxDue != nil {
			h.onRetxDue(a.(*TB))
		}
	}
	return h
}

// Transmit processes a TB sent at the current time over a channel with
// the given instantaneous SNR. The decode outcome is known one slot
// later (decodeDelay); on failure a retransmission is scheduled after
// the HARQ RTT, until MaxAttempts is exhausted.
func (h *HARQEntity) Transmit(tb *TB, snrDB float64, decodeDelay sim.Time) {
	if tb.Attempt == 0 {
		h.FirstTx++
	} else {
		h.Retx++
	}
	bler := phy.BLER(tb.MCS, snrDB)
	for i := 0; i < tb.Attempt; i++ {
		bler = phy.HARQRetxBLER(bler)
	}
	tb.decoded = !h.rng.Bool(bler)
	h.engine.ScheduleArg(h.engine.Now()+decodeDelay, h.decodeFn, tb)
}

// decode concludes one attempt when its decode event fires.
func (h *HARQEntity) decode(tb *TB) {
	now := h.engine.Now()
	if tb.decoded {
		h.emit(HARQOutcome{TB: tb, At: now, Decoded: true})
		if h.onDecoded != nil {
			h.onDecoded(tb, now)
		}
		return
	}
	if tb.Attempt+1 >= h.cfg.MaxAttempts {
		h.Exhausted++
		h.emit(HARQOutcome{TB: tb, At: now, Decoded: false, Exhausted: true})
		if h.onExhausted != nil {
			h.onExhausted(tb, now)
		}
		return
	}
	h.emit(HARQOutcome{TB: tb, At: now, Decoded: false})
	tb.Attempt++
	// The retransmission becomes schedulable one HARQ RTT after the
	// original transmission; when PRB contention already delayed
	// earlier attempts past that point, it is due immediately.
	due := tb.SentAt + h.cfg.RTT*sim.Time(tb.Attempt)
	if due < now {
		due = now
	}
	h.engine.ScheduleArg(due, h.retxFn, tb)
}

func (h *HARQEntity) emit(o HARQOutcome) {
	if h.onOutcome != nil {
		h.onOutcome(o)
	}
}
