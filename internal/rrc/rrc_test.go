package rrc

import (
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

func TestStableNeverReleases(t *testing.T) {
	m := NewMachine(Stable(), sim.NewRNG(1))
	for now := sim.Time(0); now < 10*sim.Minute; now += sim.Millisecond {
		if !m.Poll(now) {
			t.Fatalf("stable machine released at %v", now)
		}
	}
	if len(m.Transitions()) != 1 {
		t.Fatalf("transitions = %d, want 1 (initial)", len(m.Transitions()))
	}
}

func TestScriptedReleaseCycle(t *testing.T) {
	m := NewMachine(Flaky(0), sim.NewRNG(2))
	m.ScriptRelease(sim.Second)
	rntiBefore := m.RNTI()

	if !m.Poll(500 * sim.Millisecond) {
		t.Fatal("connected before release")
	}
	if m.Poll(sim.Second) {
		t.Fatal("still connected at release time")
	}
	if m.State() != Idle {
		t.Fatal("state should be Idle")
	}
	// During the outage (~300 ms) the UE is unreachable; poll at slot
	// cadence so the reconnection is observed promptly.
	if m.Poll(1100 * sim.Millisecond) {
		t.Fatal("connected during outage")
	}
	reconnected := false
	for now := 1101 * sim.Millisecond; now <= 1500*sim.Millisecond; now += sim.Millisecond {
		if m.Poll(now) {
			reconnected = true
			break
		}
	}
	if !reconnected {
		t.Fatal("did not reconnect")
	}
	if m.RNTI() == rntiBefore {
		t.Fatal("RNTI did not change across reconnection")
	}
	tr := m.Transitions()
	if len(tr) != 3 {
		t.Fatalf("transitions = %d, want 3", len(tr))
	}
	if tr[1].To != Idle || tr[2].To != Connected {
		t.Fatalf("transition sequence wrong: %+v", tr)
	}
	outage := tr[2].At - tr[1].At
	if outage < 200*sim.Millisecond || outage > 400*sim.Millisecond {
		t.Fatalf("outage = %v, want ~300ms", outage)
	}
}

func TestFlakyReleaseRate(t *testing.T) {
	m := NewMachine(Flaky(4), sim.NewRNG(3))
	releases := 0
	connected := m.State() == Connected
	for now := sim.Time(0); now < 10*sim.Minute; now += sim.Millisecond {
		up := m.Poll(now)
		if connected && !up {
			releases++
		}
		connected = up
	}
	// 4/min over 10 min ⇒ ~40 releases; allow wide tolerance.
	if releases < 20 || releases > 70 {
		t.Fatalf("releases = %d over 10 min at rate 4/min", releases)
	}
}

func TestRNTIRange(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		m := NewMachine(Stable(), sim.NewRNG(seed))
		if m.RNTI() == 0 || m.RNTI() > 0xFFF2 {
			t.Fatalf("RNTI %d out of C-RNTI range", m.RNTI())
		}
	}
}

func TestStateString(t *testing.T) {
	if Connected.String() != "CONNECTED" || Idle.String() != "IDLE" {
		t.Fatal("state strings")
	}
}
