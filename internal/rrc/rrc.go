// Package rrc models the Radio Resource Control connection state of a
// UE. The paper observed disruptive RRC Release + re-establishment
// cycles during active transfer on the T-Mobile 15 MHz FDD cell
// (§5.3): the PHY goes silent for ~300 ms, the RNTI changes, and
// one-way delay spikes to ~400 ms as traffic buffers at the UE.
package rrc

import (
	"github.com/domino5g/domino/internal/sim"
)

// State is the RRC connection state.
type State int

// RRC states (INACTIVE folded into IDLE: both halt data transfer).
const (
	Idle State = iota
	Connected
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == Connected {
		return "CONNECTED"
	}
	return "IDLE"
}

// Config parameterizes the connection state machine.
type Config struct {
	// ReleaseRate is the expected number of spurious RRC releases per
	// minute during active transfer (the paper saw 0 on three cells
	// and an intermittent 3–4/min on the T-Mobile FDD cell).
	ReleaseRate float64
	// OutageDuration is how long the UE stays unreachable during a
	// release + re-establishment cycle (~300 ms measured).
	OutageDuration sim.Time
}

// Stable returns a configuration that never spuriously releases.
func Stable() Config { return Config{} }

// Flaky returns the T-Mobile FDD behaviour.
func Flaky(ratePerMinute float64) Config {
	return Config{ReleaseRate: ratePerMinute, OutageDuration: 300 * sim.Millisecond}
}

// Transition is a state-change record for telemetry.
type Transition struct {
	At    sim.Time
	From  State
	To    State
	RNTI  uint32 // RNTI valid after the transition (0 while idle)
	Cause string
}

// Machine is the per-UE RRC state machine. The cell polls Connected()
// each slot; scripted and stochastic releases are evaluated lazily.
type Machine struct {
	cfg Config
	rng *sim.RNG

	state       State
	rnti        uint32
	reconnectAt sim.Time
	lastPoll    sim.Time

	transitions []Transition
	scripted    []sim.Time // scripted release times not yet fired
}

// NewMachine returns a connected machine with a fresh RNTI.
func NewMachine(cfg Config, rng *sim.RNG) *Machine {
	m := &Machine{cfg: cfg, rng: rng.Fork(), state: Connected}
	m.rnti = m.newRNTI()
	m.transitions = append(m.transitions, Transition{At: 0, From: Idle, To: Connected, RNTI: m.rnti, Cause: "initial"})
	return m
}

func (m *Machine) newRNTI() uint32 {
	// C-RNTI range 0x0001..0xFFF2.
	return uint32(m.rng.Intn(0xFFF2-1) + 1)
}

// ScriptRelease forces a release at the given time (case-study
// scenarios use this for deterministic Fig. 19 reproductions).
func (m *Machine) ScriptRelease(at sim.Time) {
	m.scripted = append(m.scripted, at)
}

// SetConfig replaces the stochastic release behaviour from the next
// Poll onward; an outage already in progress keeps its reconnect time.
// Scenario dynamics schedule this on the simulation engine to model a
// bounded flaky phase (releases only between two instants of the call).
func (m *Machine) SetConfig(cfg Config) { m.cfg = cfg }

// Config returns the machine's current configuration.
func (m *Machine) Config() Config { return m.cfg }

// Poll advances the machine to now and reports whether the UE is
// connected (able to transmit/receive).
func (m *Machine) Poll(now sim.Time) bool {
	dt := now - m.lastPoll
	if dt < 0 {
		dt = 0
	}
	m.lastPoll = now

	switch m.state {
	case Connected:
		release := false
		cause := ""
		for i, at := range m.scripted {
			if at <= now {
				release = true
				cause = "scripted"
				m.scripted = append(m.scripted[:i], m.scripted[i+1:]...)
				break
			}
		}
		if !release && m.cfg.ReleaseRate > 0 {
			p := m.cfg.ReleaseRate / 60 * float64(dt) / float64(sim.Second)
			if m.rng.Bool(p) {
				release = true
				cause = "spurious"
			}
		}
		if release {
			m.state = Idle
			m.reconnectAt = now + m.rng.Jitter(m.cfg.OutageDuration, 0.2)
			if m.cfg.OutageDuration == 0 {
				m.reconnectAt = now + 300*sim.Millisecond
			}
			m.transitions = append(m.transitions, Transition{At: now, From: Connected, To: Idle, Cause: cause})
			return false
		}
		return true
	case Idle:
		if now >= m.reconnectAt {
			m.state = Connected
			m.rnti = m.newRNTI()
			m.transitions = append(m.transitions, Transition{At: now, From: Idle, To: Connected, RNTI: m.rnti, Cause: "re-establishment"})
			return true
		}
		return false
	}
	return false
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// RNTI returns the current C-RNTI (stale while idle; changes on
// re-establishment, which is exactly what NR-Scope observes).
func (m *Machine) RNTI() uint32 { return m.rnti }

// Transitions returns the transition log.
func (m *Machine) Transitions() []Transition { return m.transitions }
