// Package rlc implements a 5G Radio Link Control acknowledged-mode
// (AM) entity pair: transmit-side segmentation of IP packets (SDUs)
// into transport-block-sized PDU segments with ARQ retransmission, and
// receive-side reassembly with strict in-order delivery.
//
// Two behaviours matter for the paper's causal chains and are modeled
// faithfully:
//
//   - Buffer build-up: packets queue in the TX entity whenever the
//     application sends faster than the PHY drains (Fig. 12), and the
//     buffer occupancy feeds the MAC's buffer status reports.
//   - Head-of-line blocking: in-order delivery holds back every
//     later SDU while an RLC retransmission is outstanding, releasing
//     them in a burst when the missing segment finally arrives
//     (Fig. 15c / Fig. 18).
package rlc

import (
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// SegmentHeaderBytes is the per-segment RLC+MAC subheader overhead.
const SegmentHeaderBytes = 5

// SDU is one upper-layer packet queued for transmission.
type SDU struct {
	SN     uint32
	Packet *netem.Packet
	// EnqueuedAt is when the SDU entered the RLC buffer; the paper's
	// one-way delay includes this queueing time.
	EnqueuedAt sim.Time
}

// Segment is a contiguous byte range of one SDU carried in a transport
// block. Segments are the unit of HARQ/ARQ bookkeeping.
type Segment struct {
	SDU    *SDU
	Offset int
	Length int
	Last   bool // true if this segment ends the SDU
	// RLCRetx marks a segment retransmitted by the RLC layer after
	// HARQ exhaustion (telemetry surfaces this as an RLC-retx event).
	RLCRetx bool
}

// TxEntity is the sender side of an RLC AM bearer.
type TxEntity struct {
	nextSN uint32

	// queue holds SDUs not yet fully (first-)transmitted, in order.
	queue []*SDU
	// cursor is the byte offset into queue[0] already segmented.
	cursor int

	// retx holds segments awaiting retransmission, FIFO, each eligible
	// at a time that models the RLC status-report round trip.
	retx []retxSegment

	// bufferedNew tracks bytes of queued SDUs not yet transmitted.
	bufferedNew int
	// bufferedRetx tracks payload bytes awaiting retransmission.
	bufferedRetx int

	// RetxCount counts RLC retransmission events (for gNB-log telemetry).
	RetxCount uint64
}

type retxSegment struct {
	seg        Segment
	eligibleAt sim.Time
}

// NewTxEntity returns an empty transmit entity.
func NewTxEntity() *TxEntity { return &TxEntity{} }

// Enqueue appends a packet to the transmission buffer at time now.
func (tx *TxEntity) Enqueue(p *netem.Packet, now sim.Time) {
	sdu := &SDU{SN: tx.nextSN, Packet: p, EnqueuedAt: now}
	tx.nextSN++
	tx.queue = append(tx.queue, sdu)
	tx.bufferedNew += p.Size
}

// BufferedBytes returns the total bytes awaiting first transmission or
// retransmission, including per-PDU header overhead — the quantity
// reported in BSRs and logged by the gNB (Fig. 12's "BSR" subplot).
// Counting headers matters: grants sized to a headerless estimate
// would strand the tail of every SDU.
func (tx *TxEntity) BufferedBytes() int {
	return tx.bufferedNew + tx.bufferedRetx +
		(len(tx.queue)+len(tx.retx))*SegmentHeaderBytes
}

// HasEligibleRetx reports whether a retransmission is ready at now.
func (tx *TxEntity) HasEligibleRetx(now sim.Time) bool {
	for _, r := range tx.retx {
		if r.eligibleAt <= now {
			return true
		}
	}
	return false
}

// OldestEnqueuedAt returns the enqueue time of the oldest buffered SDU
// and true, or zero and false when the buffer is empty.
func (tx *TxEntity) OldestEnqueuedAt() (sim.Time, bool) {
	if len(tx.queue) == 0 {
		return 0, false
	}
	return tx.queue[0].EnqueuedAt, true
}

// FillTB segments up to capacityBytes of buffered data into PDU
// segments for one transport block, eligible retransmissions first
// (matching gNB scheduler priority). It returns the segments and the
// payload bytes consumed including per-segment header overhead.
func (tx *TxEntity) FillTB(capacityBytes int, now sim.Time) (segs []Segment, used int) {
	return tx.FillTBInto(nil, capacityBytes, now)
}

// FillTBInto is FillTB appending into buf (which the caller typically
// recycles from a concluded transport block), so the steady-state slot
// loop segments without allocating.
func (tx *TxEntity) FillTBInto(buf []Segment, capacityBytes int, now sim.Time) (segs []Segment, used int) {
	segs = buf
	// Retransmissions first.
	kept := tx.retx[:0]
	for i, r := range tx.retx {
		need := r.seg.Length + SegmentHeaderBytes
		if r.eligibleAt <= now && capacityBytes-used >= need {
			seg := r.seg
			seg.RLCRetx = true
			segs = append(segs, seg)
			used += need
			tx.bufferedRetx -= r.seg.Length
		} else {
			kept = append(kept, tx.retx[i])
		}
	}
	tx.retx = kept

	// Then new data, segmenting across SDU boundaries.
	for len(tx.queue) > 0 {
		room := capacityBytes - used - SegmentHeaderBytes
		if room <= 0 {
			break
		}
		sdu := tx.queue[0]
		remaining := sdu.Packet.Size - tx.cursor
		take := remaining
		if take > room {
			take = room
		}
		seg := Segment{SDU: sdu, Offset: tx.cursor, Length: take, Last: tx.cursor+take == sdu.Packet.Size}
		segs = append(segs, seg)
		used += take + SegmentHeaderBytes
		tx.cursor += take
		tx.bufferedNew -= take
		if seg.Last {
			tx.queue = tx.queue[1:]
			tx.cursor = 0
		}
	}
	return segs, used
}

// Nack returns segments to the retransmission queue after the MAC
// exhausted HARQ. eligibleAt models the status-report round trip before
// the RLC transmitter learns of the loss.
func (tx *TxEntity) Nack(segs []Segment, eligibleAt sim.Time) {
	for _, s := range segs {
		tx.retx = append(tx.retx, retxSegment{seg: s, eligibleAt: eligibleAt})
		tx.bufferedRetx += s.Length
		tx.RetxCount++
	}
}

// DeliveredPacket is an in-order reassembled SDU handed to the upper
// layer with its delivery time.
type DeliveredPacket struct {
	Packet *netem.Packet
	At     sim.Time
	// HoLReleased marks packets that were complete earlier but held by
	// in-order delivery behind a missing SN (Fig. 18's burst release).
	HoLReleased bool
}

// RxEntity is the receiver side of an RLC AM bearer. It reassembles
// segments and delivers SDUs strictly in SN order. Reassembly state
// lives in a ring-buffer window indexed by SN offset from nextSN — the
// hot path touches no maps and allocates nothing once the window has
// grown to the bearer's in-flight depth.
type RxEntity struct {
	deliver func(DeliveredPacket)

	nextSN uint32
	// win is the reassembly ring: the state for SN nextSN+k lives at
	// win[(head+k) & (len(win)-1)]. len(win) is always a power of two.
	win  []rxSDU
	head int
	// pendingCount tracks occupied ring entries (PendingSDUs).
	pendingCount int

	// HoLBlockedMax tracks the maximum burst released at once, a
	// diagnostic for head-of-line blocking severity.
	HoLBlockedMax int
}

type rxSDU struct {
	sdu        *SDU
	received   int
	total      int
	active     bool
	complete   bool
	completeAt sim.Time
}

// NewRxEntity returns a receive entity delivering into the callback.
func NewRxEntity(deliver func(DeliveredPacket)) *RxEntity {
	return &RxEntity{deliver: deliver}
}

// slot returns the ring entry for SN nextSN+k, growing the window as
// needed (doubling keeps the masked indexing valid).
func (rx *RxEntity) slot(k uint32) *rxSDU {
	if len(rx.win) == 0 || int(k) >= len(rx.win) {
		size := 16
		for size <= int(k) {
			size *= 2
		}
		grown := make([]rxSDU, size)
		for i := range rx.win {
			grown[i] = rx.win[(rx.head+i)&(len(rx.win)-1)]
		}
		rx.win = grown
		rx.head = 0
	}
	return &rx.win[(rx.head+int(k))&(len(rx.win)-1)]
}

// Receive processes decoded segments at time now, then releases every
// in-order complete SDU.
func (rx *RxEntity) Receive(segs []Segment, now sim.Time) {
	for i := range segs {
		s := &segs[i]
		if s.SDU.SN < rx.nextSN {
			continue // duplicate of an already-delivered SDU
		}
		st := rx.slot(s.SDU.SN - rx.nextSN)
		if !st.active {
			*st = rxSDU{sdu: s.SDU, total: s.SDU.Packet.Size, active: true}
			rx.pendingCount++
		}
		if st.complete {
			continue
		}
		st.received += s.Length
		if st.received >= st.total {
			st.complete = true
			st.completeAt = now
		}
	}
	rx.release(now)
}

// release delivers consecutive complete SDUs starting at nextSN.
func (rx *RxEntity) release(now sim.Time) {
	burst := 0
	for len(rx.win) > 0 {
		st := &rx.win[rx.head]
		if !st.active || !st.complete {
			break
		}
		pkt, holdBack := st.sdu.Packet, st.completeAt < now
		*st = rxSDU{}
		rx.head = (rx.head + 1) & (len(rx.win) - 1)
		rx.nextSN++
		rx.pendingCount--
		rx.deliver(DeliveredPacket{
			Packet:      pkt,
			At:          now,
			HoLReleased: holdBack,
		})
		burst++
	}
	if burst > rx.HoLBlockedMax {
		rx.HoLBlockedMax = burst
	}
}

// PendingSDUs returns the number of SDUs buffered waiting for in-order
// delivery (complete or partial).
func (rx *RxEntity) PendingSDUs() int { return rx.pendingCount }
