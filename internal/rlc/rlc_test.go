package rlc

import (
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

func pkt(seq uint64, size int) *netem.Packet {
	return &netem.Packet{Seq: seq, Size: size}
}

func TestTxEnqueueAndBuffer(t *testing.T) {
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 1200), 0)
	tx.Enqueue(pkt(2, 300), 0)
	if tx.BufferedBytes() != 1500+2*SegmentHeaderBytes {
		t.Fatalf("buffered = %d, want %d", tx.BufferedBytes(), 1500+2*SegmentHeaderBytes)
	}
	if at, ok := tx.OldestEnqueuedAt(); !ok || at != 0 {
		t.Fatal("oldest enqueue time wrong")
	}
}

func TestFillTBWholePackets(t *testing.T) {
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 1000), 0)
	tx.Enqueue(pkt(2, 1000), 0)
	segs, used := tx.FillTB(3000, 0)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	for _, s := range segs {
		if !s.Last || s.Offset != 0 || s.Length != 1000 {
			t.Fatalf("unexpected segment %+v", s)
		}
	}
	if used != 2000+2*SegmentHeaderBytes {
		t.Fatalf("used = %d", used)
	}
	if tx.BufferedBytes() != 0 {
		t.Fatalf("buffer not drained: %d", tx.BufferedBytes())
	}
}

func TestFillTBSegmentsAcrossTBs(t *testing.T) {
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 1200), 0)
	segs1, _ := tx.FillTB(500, 0)
	if len(segs1) != 1 || segs1[0].Last || segs1[0].Length != 500-SegmentHeaderBytes {
		t.Fatalf("first segment %+v", segs1[0])
	}
	segs2, _ := tx.FillTB(10000, 0)
	if len(segs2) != 1 || !segs2[0].Last {
		t.Fatalf("second segment %+v", segs2)
	}
	if segs1[0].Length+segs2[0].Length != 1200 {
		t.Fatal("segments do not cover SDU")
	}
	if segs2[0].Offset != segs1[0].Length {
		t.Fatal("second segment offset wrong")
	}
}

func TestFillTBTooSmall(t *testing.T) {
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 100), 0)
	segs, used := tx.FillTB(SegmentHeaderBytes, 0) // no room for any payload
	if len(segs) != 0 || used != 0 {
		t.Fatalf("expected nothing, got %d segs", len(segs))
	}
}

func TestNackAndRetxPriority(t *testing.T) {
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 400), 0)
	segs, _ := tx.FillTB(10000, 0)
	tx.Enqueue(pkt(2, 400), 0)
	tx.Nack(segs, 50*sim.Millisecond)
	if tx.RetxCount != 1 {
		t.Fatalf("RetxCount = %d", tx.RetxCount)
	}
	if tx.BufferedBytes() != 800+2*SegmentHeaderBytes {
		t.Fatalf("buffered = %d, want %d", tx.BufferedBytes(), 800+2*SegmentHeaderBytes)
	}
	// Before eligibility, only new data goes out.
	early, _ := tx.FillTB(405+SegmentHeaderBytes, 10*sim.Millisecond)
	if len(early) != 1 || early[0].RLCRetx {
		t.Fatalf("early fill should carry new data only: %+v", early)
	}
	if tx.HasEligibleRetx(10 * sim.Millisecond) {
		t.Fatal("retx should not be eligible yet")
	}
	// After eligibility the retx goes first.
	if !tx.HasEligibleRetx(60 * sim.Millisecond) {
		t.Fatal("retx should be eligible")
	}
	late, _ := tx.FillTB(10000, 60*sim.Millisecond)
	if len(late) != 1 || !late[0].RLCRetx {
		t.Fatalf("late fill should carry the retx: %+v", late)
	}
	if late[0].SDU.Packet.Seq != 1 {
		t.Fatal("retx carries wrong SDU")
	}
}

func deliverAll(t *testing.T, tx *TxEntity, rx *RxEntity, capacity int, now sim.Time) {
	t.Helper()
	for tx.BufferedBytes() > 0 {
		segs, _ := tx.FillTB(capacity, now)
		if len(segs) == 0 {
			t.Fatal("no progress draining buffer")
		}
		rx.Receive(segs, now)
	}
}

func TestRxInOrderDelivery(t *testing.T) {
	var got []uint64
	rx := NewRxEntity(func(d DeliveredPacket) { got = append(got, d.Packet.Seq) })
	tx := NewTxEntity()
	for i := 1; i <= 5; i++ {
		tx.Enqueue(pkt(uint64(i), 600), 0)
	}
	deliverAll(t, tx, rx, 2000, 0)
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestRxHoLBlocking(t *testing.T) {
	var got []DeliveredPacket
	rx := NewRxEntity(func(d DeliveredPacket) { got = append(got, d) })
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 500), 0)
	tx.Enqueue(pkt(2, 500), 0)
	tx.Enqueue(pkt(3, 500), 0)

	first, _ := tx.FillTB(500+SegmentHeaderBytes, 0) // carries SDU 1
	rest, _ := tx.FillTB(10000, 0)                   // carries SDUs 2,3

	// SDU 1's TB fails HARQ: receiver gets 2,3 first — nothing may be
	// delivered (head-of-line blocking).
	rx.Receive(rest, 10*sim.Millisecond)
	if len(got) != 0 {
		t.Fatalf("HoL violated: delivered %d early", len(got))
	}
	if rx.PendingSDUs() != 2 {
		t.Fatalf("pending = %d, want 2", rx.PendingSDUs())
	}

	// RLC retx of SDU 1 arrives much later: everything releases at once.
	tx.Nack(first, 100*sim.Millisecond)
	retx, _ := tx.FillTB(10000, 105*sim.Millisecond)
	rx.Receive(retx, 105*sim.Millisecond)
	if len(got) != 3 {
		t.Fatalf("delivered %d after retx, want 3", len(got))
	}
	for i, d := range got {
		if d.Packet.Seq != uint64(i+1) {
			t.Fatalf("order wrong: %v", got)
		}
		if d.At != 105*sim.Millisecond {
			t.Fatal("burst release should share one timestamp")
		}
	}
	if !got[1].HoLReleased || !got[2].HoLReleased {
		t.Fatal("blocked packets not marked HoLReleased")
	}
	if got[0].HoLReleased {
		t.Fatal("head packet should not be marked HoLReleased")
	}
	if rx.HoLBlockedMax < 3 {
		t.Fatalf("HoLBlockedMax = %d", rx.HoLBlockedMax)
	}
}

func TestRxDuplicateSegments(t *testing.T) {
	var got []uint64
	rx := NewRxEntity(func(d DeliveredPacket) { got = append(got, d.Packet.Seq) })
	tx := NewTxEntity()
	tx.Enqueue(pkt(1, 500), 0)
	segs, _ := tx.FillTB(10000, 0)
	rx.Receive(segs, 0)
	rx.Receive(segs, sim.Millisecond) // duplicate delivery (HARQ+RLC race)
	if len(got) != 1 {
		t.Fatalf("duplicate produced %d deliveries", len(got))
	}
}

// Property: any enqueue pattern drained through any TB capacity
// sequence delivers every packet exactly once, in order.
func TestRLCDeliveryProperty(t *testing.T) {
	f := func(sizes []uint16, caps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		tx := NewTxEntity()
		var got []uint64
		rx := NewRxEntity(func(d DeliveredPacket) { got = append(got, d.Packet.Seq) })
		want := 0
		for i, s := range sizes {
			size := int(s)%1400 + 1
			tx.Enqueue(pkt(uint64(i), size), 0)
			want++
		}
		ci := 0
		for guard := 0; tx.BufferedBytes() > 0 && guard < 100000; guard++ {
			capacity := 40
			if len(caps) > 0 {
				capacity = int(caps[ci%len(caps)])%3000 + 20
				ci++
			}
			segs, _ := tx.FillTB(capacity, 0)
			rx.Receive(segs, 0)
		}
		if tx.BufferedBytes() != 0 || len(got) != want {
			return false
		}
		for i, seq := range got {
			if seq != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: bytes are conserved — sum of segment lengths for an SDU
// equals its size, regardless of capacity slicing.
func TestRLCSegmentationConservation(t *testing.T) {
	f := func(size uint16, capRaw uint8) bool {
		sz := int(size)%2000 + 1
		capacity := int(capRaw)%500 + SegmentHeaderBytes + 1
		tx := NewTxEntity()
		tx.Enqueue(pkt(7, sz), 0)
		total := 0
		for guard := 0; tx.BufferedBytes() > 0 && guard < 10000; guard++ {
			segs, used := tx.FillTB(capacity, 0)
			sum := 0
			for _, s := range segs {
				total += s.Length
				sum += s.Length + SegmentHeaderBytes
			}
			if sum != used {
				return false
			}
		}
		return total == sz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
