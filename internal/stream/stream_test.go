package stream

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

func simulate(t testing.TB, cell ran.CellConfig, seed uint64, d sim.Time) *trace.Set {
	t.Helper()
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cell, seed))
	if err != nil {
		t.Fatal(err)
	}
	return sess.Run(d)
}

// records round-trips a set through the JSONL wire format into the
// time-ordered record sequence a live collector would deliver.
func records(t testing.TB, set *trace.Set) []trace.Record {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, set); err != nil {
		t.Fatal(err)
	}
	sr := trace.NewStreamReader(&buf)
	var recs []trace.Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
}

func streamReport(t testing.TB, a *core.Analyzer, recs []trace.Record, cfg Config) (*core.Report, Stats) {
	t.Helper()
	s := New(a, cfg)
	for _, rec := range recs {
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return rep, stats
}

// diffReports asserts full equality of the two analysis outputs: every
// window's feature vector, consequences, causes and chain matches, and
// every collapsed node/chain event run.
func diffReports(t *testing.T, batch, stream *core.Report) {
	t.Helper()
	if batch.CellName != stream.CellName {
		t.Fatalf("cell: %q vs %q", batch.CellName, stream.CellName)
	}
	if batch.Duration != stream.Duration {
		t.Fatalf("duration: %v vs %v", batch.Duration, stream.Duration)
	}
	if len(batch.Windows) != len(stream.Windows) {
		t.Fatalf("windows: %d vs %d", len(batch.Windows), len(stream.Windows))
	}
	for i := range batch.Windows {
		if !reflect.DeepEqual(batch.Windows[i], stream.Windows[i]) {
			t.Fatalf("window %d diverged:\nbatch:  %+v\nstream: %+v", i, batch.Windows[i], stream.Windows[i])
		}
	}
	if !reflect.DeepEqual(batch.NodeEvents, stream.NodeEvents) {
		t.Fatalf("node events diverged:\nbatch:  %+v\nstream: %+v", batch.NodeEvents, stream.NodeEvents)
	}
	if !reflect.DeepEqual(batch.ChainEvents, stream.ChainEvents) {
		t.Fatalf("chain events diverged:\nbatch:  %+v\nstream: %+v", batch.ChainEvents, stream.ChainEvents)
	}
}

// TestDifferentialAllPresets is the subsystem's pinning test: for every
// Table 1 preset at a fixed seed, the streaming analyzer fed one record
// at a time produces a report identical to the batch analyzer over the
// complete trace — windows, node events, and chain runs.
func TestDifferentialAllPresets(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const dur = 15 * sim.Second
	for i, cell := range ran.Presets() {
		cell := cell
		t.Run(cell.Name, func(t *testing.T) {
			set := simulate(t, cell, uint64(41+i), dur)
			batch, err := analyzer.Analyze(set)
			if err != nil {
				t.Fatal(err)
			}
			recs := records(t, set)
			stream, stats := streamReport(t, analyzer, recs, Config{})
			diffReports(t, batch, stream)

			total := len(set.DCI) + len(set.GNBLogs) + len(set.Packets) + len(set.Stats) + len(set.RRC)
			if stats.Records != total {
				t.Fatalf("streamed %d records, trace holds %d", stats.Records, total)
			}
			// The O(window) claim: with a 5 s window over a 15 s trace
			// the peak buffered state must stay well below the trace.
			if stats.MaxBuffered >= total*2/3 {
				t.Fatalf("buffered %d of %d samples — window eviction is not bounding state", stats.MaxBuffered, total)
			}
			if stats.Windows != len(batch.Windows) {
				t.Fatalf("evaluated %d windows, batch has %d", stats.Windows, len(batch.Windows))
			}
		})
	}
}

// TestDifferentialAllScenarios extends the stream≡batch pin to the
// full scenario catalog: every registered scenario (the four Table 1
// presets plus the ten degradation scenarios) must produce identical
// windows, node events, and chain runs through both paths. One
// streaming analyzer is recycled across scenarios via Reset, pinning
// the pooled fleet-ingest path against the same oracle.
func TestDifferentialAllScenarios(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const dur = 12 * sim.Second
	s := New(analyzer, Config{})
	for i, name := range scenario.Names() {
		name := name
		seed := uint64(61 + i)
		t.Run(name, func(t *testing.T) {
			sc, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := sc.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			set := sess.Run(dur)
			batch, err := analyzer.Analyze(set)
			if err != nil {
				t.Fatal(err)
			}
			s.Reset()
			for _, rec := range records(t, set) {
				if err := s.Push(rec); err != nil {
					t.Fatal(err)
				}
			}
			rep, err := s.Close()
			if err != nil {
				t.Fatal(err)
			}
			diffReports(t, batch, rep)
		})
	}
}

// TestBatchedPushesAndCallbacks checks chunked ingestion and that the
// callback stream reassembles into exactly the final report.
func TestBatchedPushesAndCallbacks(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := simulate(t, ran.Amarisoft(), 7, 12*sim.Second)
	batch, err := analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	recs := records(t, set)

	var windows []core.WindowResult
	gotNodes := map[string][]core.EventRun{}
	gotChains := map[int][]core.ChainRun{}
	s := New(analyzer, Config{
		OnWindow:     func(w core.WindowResult) { windows = append(windows, w) },
		OnNodeEvent:  func(r core.EventRun) { gotNodes[r.Node] = append(gotNodes[r.Node], r) },
		OnChainEvent: func(r core.ChainRun) { gotChains[r.Chain.ID] = append(gotChains[r.Chain.ID], r) },
	})
	for len(recs) > 0 {
		n := 97
		if n > len(recs) {
			n = len(recs)
		}
		if err := s.PushBatch(recs[:n]); err != nil {
			t.Fatal(err)
		}
		recs = recs[n:]
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, batch, rep)
	if !reflect.DeepEqual(windows, batch.Windows) {
		t.Fatal("OnWindow stream diverged from batch windows")
	}
	// Every run present in the report must have been emitted once.
	for n, runs := range rep.NodeEvents {
		if !reflect.DeepEqual(gotNodes[n], runs) {
			t.Fatalf("node %s: emitted %+v, report %+v", n, gotNodes[n], runs)
		}
	}
	for id, runs := range rep.ChainEvents {
		if !reflect.DeepEqual(gotChains[id], runs) {
			t.Fatalf("chain %d: emitted %+v, report %+v", id, gotChains[id], runs)
		}
	}
}

// TestOpenEndedStream analyzes a stream whose header carries no
// duration (a live capture): the final report must equal batch
// analysis with the watermark as the session duration.
func TestOpenEndedStream(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := simulate(t, ran.Mosolabs(), 11, 12*sim.Second)
	recs := records(t, set)

	var watermark sim.Time
	s := New(analyzer, Config{})
	for _, rec := range recs {
		if rec.Header != nil {
			open := *rec.Header
			open.Duration = 0
			if err := s.Push(trace.Record{Header: &open}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if at, ok := rec.Time(); ok && at > watermark {
			watermark = at
		}
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	truncated := *set
	truncated.Duration = watermark
	batch, err := analyzer.Analyze(&truncated)
	if err != nil {
		t.Fatal(err)
	}
	diffReports(t, batch, rep)
}

func testHeader() trace.Record {
	return trace.Record{Header: &trace.Header{CellName: "t", Duration: 10 * sim.Second, HasGNBLog: true}}
}

func rrcAt(at sim.Time) trace.Record {
	return trace.Record{RRC: &trace.RRCRecord{At: at, Connected: true}}
}

func TestStreamProtocolErrors(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("record before header", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(rrcAt(0)); !errors.Is(err, ErrNoHeader) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate header", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(testHeader()); err == nil {
			t.Fatal("duplicate header accepted")
		}
	})
	t.Run("close without header", func(t *testing.T) {
		s := New(analyzer, Config{})
		if _, err := s.Close(); err == nil {
			t.Fatal("headerless close accepted")
		}
	})
	t.Run("empty record", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(trace.Record{}); err == nil {
			t.Fatal("empty record accepted")
		}
	})
	t.Run("use after close", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(rrcAt(0)); !errors.Is(err, ErrClosed) {
			t.Fatalf("push after close: %v", err)
		}
		if _, err := s.Close(); !errors.Is(err, ErrClosed) {
			t.Fatalf("double close: %v", err)
		}
	})
}

// TestLateRecords pins the watermark contract: a record behind an
// already-evaluated window fails the stream (or is counted under
// DropLate), while a record within Lateness is folded in and the
// result still matches batch analysis.
func TestLateRecords(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("reject", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		// Watermark to 6 s evaluates windows [0,5) and [0.5,5.5).
		if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Windows; got != 3 {
			t.Fatalf("evaluated %d windows, want 3", got)
		}
		if err := s.Push(rrcAt(sim.Second)); !errors.Is(err, ErrLateRecord) {
			t.Fatalf("late record: %v", err)
		}
	})
	t.Run("drop", func(t *testing.T) {
		s := New(analyzer, Config{DropLate: true})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(rrcAt(sim.Second)); err != nil {
			t.Fatal(err)
		}
		if s.Stats().LateDropped != 1 {
			t.Fatalf("LateDropped = %d", s.Stats().LateDropped)
		}
	})
	t.Run("lateness slack matches batch", func(t *testing.T) {
		set := simulate(t, ran.TMobileTDD(), 3, 10*sim.Second)
		batch, err := analyzer.Analyze(set)
		if err != nil {
			t.Fatal(err)
		}
		recs := records(t, set)
		// Perturb delivery two ways: swap adjacent records (mostly
		// cross-series jitter), then displace every 10th record five
		// positions later — in a dense merged stream that inverts
		// records of the *same* series, which must be insertion-sorted
		// back into the window index, not just appended.
		perturbed := append([]trace.Record(nil), recs...)
		for i := 1; i+1 < len(perturbed); i += 2 {
			perturbed[i], perturbed[i+1] = perturbed[i+1], perturbed[i]
		}
		for i := 10; i+6 < len(perturbed); i += 10 {
			r := perturbed[i]
			copy(perturbed[i:], perturbed[i+1:i+6])
			perturbed[i+5] = r
		}
		rep, _ := streamReport(t, analyzer, perturbed, Config{Lateness: 100 * sim.Millisecond})
		diffReports(t, batch, rep)
	})
	t.Run("same-series reorder within slack", func(t *testing.T) {
		// Regression: two records of one series delivered out of order
		// within the slack must land sorted in the index — an appended
		// 5.4 s RRC sample after a 5.6 s one would otherwise corrupt
		// the binary-searched series and drop the detection silently.
		s := New(analyzer, Config{Lateness: 300 * sim.Millisecond})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		for _, at := range []sim.Time{5600 * sim.Millisecond, 5400 * sim.Millisecond} {
			if err := s.Push(rrcAt(at)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		// Both samples sit in windows covering [5.4s, 5.6s]; with a
		// corrupted series the rrc_state_change runs differ from the
		// batch analysis of the same two records.
		set := &trace.Set{
			CellName: "t", Duration: 10 * sim.Second, HasGNBLog: true,
			RRC: []trace.RRCRecord{{At: 5400 * sim.Millisecond, Connected: true}, {At: 5600 * sim.Millisecond, Connected: true}},
		}
		batch, err := analyzer.Analyze(set)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch.NodeEvents["rrc_state_change"], rep.NodeEvents["rrc_state_change"]) {
			t.Fatalf("rrc runs diverged:\nbatch:  %+v\nstream: %+v",
				batch.NodeEvents["rrc_state_change"], rep.NodeEvents["rrc_state_change"])
		}
	})
}

// TestSnapshotAfterReset pins the pooled-analyzer edge: a Reset
// analyzer that has not yet seen its next session's header must report
// no snapshot (not panic on the recycled engine state).
func TestSnapshotAfterReset(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(analyzer, Config{})
	if err := s.Push(testHeader()); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if snap := s.Snapshot(); snap != nil {
		t.Fatalf("snapshot before the recycled session's header: %+v", snap)
	}
	// The recycled analyzer must still work for the next session.
	if err := s.Push(testHeader()); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NodeEvents["rrc_state_change"]) == 0 {
		t.Fatal("recycled analyzer dropped the detection")
	}
}

// TestSnapshotMidStream checks that a live snapshot halfway through the
// session is a usable prefix report: same cell, partial duration, and
// event counts that only grow as the stream completes.
func TestSnapshotMidStream(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := simulate(t, ran.Amarisoft(), 5, 12*sim.Second)
	recs := records(t, set)
	s := New(analyzer, Config{})
	half := len(recs) / 2
	for _, rec := range recs[:half] {
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap == nil || snap.CellName != set.CellName {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Duration <= 0 || snap.Duration > set.Duration {
		t.Fatalf("snapshot duration %v outside (0, %v]", snap.Duration, set.Duration)
	}
	snapChains := snap.TotalChainEvents()
	for _, rec := range recs[half:] {
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalChainEvents() < snapChains {
		t.Fatalf("chain events shrank: %d then %d", snapChains, rep.TotalChainEvents())
	}
}

// TestDropWindows checks the bounded-report mode: no per-window results
// retained, event runs unchanged.
func TestDropWindows(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := simulate(t, ran.Mosolabs(), 9, 10*sim.Second)
	batch, err := analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := streamReport(t, analyzer, records(t, set), Config{DropWindows: true})
	if len(rep.Windows) != 0 {
		t.Fatalf("DropWindows kept %d windows", len(rep.Windows))
	}
	if !reflect.DeepEqual(batch.NodeEvents, rep.NodeEvents) || !reflect.DeepEqual(batch.ChainEvents, rep.ChainEvents) {
		t.Fatal("event runs diverged under DropWindows")
	}
}

// captureHooks records every obs hook invocation for assertions.
type captureHooks struct {
	obs.NopHooks
	windows     int
	nodeFired   []string
	nodeClosed  []string
	chainOpened []string
	chainClosed []string
}

func (h *captureHooks) WindowEvaluated(start, end int64) { h.windows++ }
func (h *captureHooks) NodeFired(node string, at int64)  { h.nodeFired = append(h.nodeFired, node) }
func (h *captureHooks) NodeRunClosed(node string, start, end int64, windows int) {
	h.nodeClosed = append(h.nodeClosed, node)
}
func (h *captureHooks) ChainRunOpened(chain string, at int64) {
	h.chainOpened = append(h.chainOpened, chain)
}
func (h *captureHooks) ChainRunClosed(chain string, start, end int64, windows int) {
	h.chainClosed = append(h.chainClosed, chain)
}

// TestObsHooks pins the observability seam: hook counts agree with the
// final report (every run that opened also closed), chain hooks carry
// the DSL signature, and Reset clears the hooks with the rest of the
// session state.
func TestObsHooks(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := simulate(t, ran.TMobileTDD(), 7, 20*sim.Second)
	recs := records(t, set)

	h := &captureHooks{}
	s := New(analyzer, Config{})
	s.SetHooks(h)
	for _, rec := range recs {
		if err := s.Push(rec); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.Stats()
	rep, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}

	if h.windows == 0 || h.windows < stats.Windows {
		t.Fatalf("WindowEvaluated fired %d times, stats saw %d windows", h.windows, stats.Windows)
	}
	var nodeRuns int
	for _, runs := range rep.NodeEvents {
		nodeRuns += len(runs)
	}
	if len(h.nodeClosed) != nodeRuns {
		t.Fatalf("NodeRunClosed fired %d times, report has %d runs", len(h.nodeClosed), nodeRuns)
	}
	if len(h.nodeFired) != len(h.nodeClosed) {
		t.Fatalf("NodeFired %d != NodeRunClosed %d (Close must close every open run)",
			len(h.nodeFired), len(h.nodeClosed))
	}
	var chainRuns int
	for _, runs := range rep.ChainEvents {
		chainRuns += len(runs)
	}
	if len(h.chainClosed) != chainRuns {
		t.Fatalf("ChainRunClosed fired %d times, report has %d runs", len(h.chainClosed), chainRuns)
	}
	if len(h.chainOpened) != len(h.chainClosed) {
		t.Fatalf("ChainRunOpened %d != ChainRunClosed %d", len(h.chainOpened), len(h.chainClosed))
	}
	for _, sig := range h.chainOpened {
		if !strings.Contains(sig, " --> ") {
			t.Fatalf("chain hook got %q, want a DSL signature", sig)
		}
	}

	// Reset drops the hooks: the next session must stay silent.
	s.Reset()
	before := h.windows
	if err := s.Push(testHeader()); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h.windows != before {
		t.Fatalf("hooks fired after Reset: %d windows before, %d after", before, h.windows)
	}
}

// TestLateAccounting pins the drop-side bookkeeping of the watermark
// contract: every record behind the horizon is counted (and only
// counted — the report is as if it never arrived), accepted records
// are tallied separately, and the horizon boundary itself is inclusive.
func TestLateAccounting(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("each dropped record counted once", func(t *testing.T) {
		s := New(analyzer, Config{DropLate: true})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		for _, at := range []sim.Time{sim.Second, 2 * sim.Second, 3 * sim.Second} {
			if err := s.Push(rrcAt(at)); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		if st.LateDropped != 3 {
			t.Fatalf("LateDropped = %d, want 3", st.LateDropped)
		}
		if st.Records != 1 {
			t.Fatalf("Records = %d, want 1 (dropped records must not count as accepted)", st.Records)
		}
	})

	t.Run("horizon boundary is inclusive", func(t *testing.T) {
		s := New(analyzer, Config{})
		if err := s.Push(testHeader()); err != nil {
			t.Fatal(err)
		}
		// Watermark 6 s evaluates through window [1s, 6s): the horizon
		// is exactly 6 s. A record at 6 s is on time; one tick earlier
		// is late.
		if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		if err := s.Push(rrcAt(6 * sim.Second)); err != nil {
			t.Fatalf("record at the horizon rejected: %v", err)
		}
		if err := s.Push(rrcAt(6*sim.Second - 1)); !errors.Is(err, ErrLateRecord) {
			t.Fatalf("record one tick behind the horizon: %v", err)
		}
	})

	t.Run("dropped records leave the report untouched", func(t *testing.T) {
		set := simulate(t, ran.TMobileTDD(), 11, 10*sim.Second)
		recs := records(t, set)
		clean, cleanStats := streamReport(t, analyzer, recs, Config{DropLate: true})

		// Same stream with stale duplicates injected after the watermark
		// has moved on: they must be dropped, counted, and invisible in
		// the report.
		s := New(analyzer, Config{DropLate: true})
		for _, rec := range recs {
			if err := s.Push(rec); err != nil {
				t.Fatal(err)
			}
		}
		for _, at := range []sim.Time{sim.Second, 2 * sim.Second} {
			if err := s.Push(rrcAt(at)); err != nil {
				t.Fatal(err)
			}
		}
		st := s.Stats()
		dirty, err := s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.LateDropped != 2 {
			t.Fatalf("LateDropped = %d, want 2", st.LateDropped)
		}
		if st.Records != cleanStats.Records {
			t.Fatalf("accepted records %d != clean run %d", st.Records, cleanStats.Records)
		}
		diffReports(t, clean, dirty)
	})
}
