// Package stream is the incremental (operator-side, always-on) face of
// the Domino detector: an Analyzer that consumes trace records one at
// a time while the session is still running, slides the detection
// window with O(window) buffered state instead of the whole trace, and
// emits window results and collapsed event runs as they close.
//
// For the same records, a stream Analyzer's final report is identical
// to the batch core.Analyzer.Analyze over the equivalent trace.Set —
// both drive the same incremental engine in internal/core, and the
// differential test in this package pins the equivalence over all four
// Table 1 presets.
//
// Watermark contract: records must arrive in non-decreasing primary-
// timestamp order, up to the configured Lateness slack. A window
// [s, s+W) is evaluated once the watermark (the highest timestamp
// seen) reaches s+W+Lateness, which guarantees no record belonging to
// the window can still be in flight. Records that arrive after their
// window was already evaluated are rejected (or counted and dropped
// with DropLate), never silently folded in — reproducibility beats
// completeness here.
package stream

import (
	"errors"
	"fmt"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Errors reported by Push and Close.
var (
	// ErrNoHeader is returned when a data record precedes the header.
	ErrNoHeader = errors.New("stream: record before header")
	// ErrLateRecord is returned when a record arrives for a window that
	// was already evaluated (input more out-of-order than Lateness).
	ErrLateRecord = errors.New("stream: record arrived after its window closed")
	// ErrClosed is returned by any call after Close.
	ErrClosed = errors.New("stream: analyzer closed")
)

// Config parameterizes a streaming analyzer.
type Config struct {
	// Lateness is the out-of-order slack: a window is held open until
	// the watermark passes its end by this much. Zero (the default)
	// expects fully time-ordered input, which is what WriteJSONL
	// produces and what a time-merging live collector delivers.
	Lateness sim.Time
	// DropLate counts and discards records older than the slack allows
	// instead of failing the stream.
	DropLate bool
	// DropWindows discards per-window results from the final report,
	// bounding report growth for very long sessions (event runs are
	// always kept).
	DropWindows bool

	// OnWindow, if set, is called for every evaluated window, in order.
	OnWindow func(core.WindowResult)
	// OnNodeEvent, if set, is called for every collapsed node event run
	// as it closes (including those closed by Close).
	OnNodeEvent func(core.EventRun)
	// OnChainEvent, if set, is called for every collapsed chain run as
	// it closes.
	OnChainEvent func(core.ChainRun)
}

// Stats counts a stream's progress.
type Stats struct {
	// Records is the number of data records accepted.
	Records int
	// LateDropped is the number of records discarded under DropLate.
	LateDropped int
	// Windows is the number of window positions evaluated so far.
	Windows int
	// MaxBuffered is the high-water mark of buffered samples — the
	// O(window) state bound (compare len(trace.Set) for batch).
	MaxBuffered int
	// Watermark is the highest record timestamp seen.
	Watermark sim.Time
}

// Analyzer incrementally analyzes one session's record stream. It is
// not safe for concurrent use; callers multiplexing sessions (e.g.
// cmd/dominod) guard each session's Analyzer with its own lock.
type Analyzer struct {
	core *core.Analyzer
	cfg  Config

	// window/step cache the (immutable) detector geometry: Push is the
	// per-record hot path and must not copy the full DetectorConfig
	// out of the core analyzer on every record.
	window sim.Time
	step   sim.Time

	hdr       *trace.Header
	eval      *core.WindowEvaluator
	inc       *core.Incremental
	nextStart sim.Time
	stats     Stats
	closed    bool
	hooks     obs.Hooks
}

// New returns a streaming analyzer driving the given (immutable,
// shareable) core analyzer. The stream must deliver a header record
// before any data record.
func New(a *core.Analyzer, cfg Config) *Analyzer {
	dc := a.Config()
	return &Analyzer{core: a, cfg: cfg, window: dc.Window, step: dc.Step}
}

// Reset rewinds the analyzer to its pre-header state so it can ingest
// a new session, recycling the window evaluator's series arrays and
// the incremental engine's scratch instead of reallocating them. This
// is the fleet-ingest fast path: cmd/dominod keeps closed analyzers in
// a sync.Pool and Resets them per session, so steady-state ingest
// allocates only the report it returns.
func (s *Analyzer) Reset() {
	s.hdr = nil
	s.nextStart = 0
	s.stats = Stats{}
	s.closed = false
	s.hooks = nil
}

// SetHooks installs observability hooks on the pipeline (nil disables
// them, the default): window evaluations fire here, node/chain run
// transitions are forwarded to the incremental engine. Call before the
// header record is pushed; Reset clears the hooks with the rest of the
// per-session state so pooled analyzers never leak one session's hooks
// into the next.
func (s *Analyzer) SetHooks(h obs.Hooks) { s.hooks = h }

// Header returns the stream's header once it has been pushed.
func (s *Analyzer) Header() (trace.Header, bool) {
	if s.hdr == nil {
		return trace.Header{}, false
	}
	return *s.hdr, true
}

// Stats returns the stream's progress counters.
func (s *Analyzer) Stats() Stats { return s.stats }

// Watermark returns the highest record timestamp seen.
func (s *Analyzer) Watermark() sim.Time { return s.stats.Watermark }

// emittedEnd returns the end of the newest evaluated window — the
// horizon a new record must not fall behind.
func (s *Analyzer) emittedEnd() sim.Time {
	if s.stats.Windows == 0 {
		return 0
	}
	return s.nextStart - s.step + s.window
}

// Push feeds one record into the stream, evaluating every window the
// advancing watermark allows before returning.
func (s *Analyzer) Push(rec trace.Record) error {
	if s.closed {
		return ErrClosed
	}
	if rec.Header != nil {
		if s.hdr != nil {
			return errors.New("stream: duplicate header")
		}
		if rec.Header.Duration < 0 {
			return errors.New("stream: negative duration in header")
		}
		h := *rec.Header
		s.hdr = &h
		if s.eval != nil {
			s.eval.Reset(h.HasGNBLog)
			s.inc.Reset(h.CellName)
		} else {
			s.eval = s.core.NewWindowEvaluator(h.HasGNBLog)
			s.inc = s.core.NewIncremental(h.CellName)
		}
		s.inc.SetScenario(h.Scenario)
		s.inc.SetHooks(s.hooks)
		if s.cfg.DropWindows {
			s.inc.SetKeepWindows(false)
		}
		return nil
	}
	if s.hdr == nil {
		return ErrNoHeader
	}
	t, ok := rec.Time()
	if !ok {
		return errors.New("stream: record without timestamp")
	}
	if t < 0 {
		return fmt.Errorf("stream: negative record timestamp %v", t)
	}
	if t < s.emittedEnd() {
		if s.cfg.DropLate {
			s.stats.LateDropped++
			return nil
		}
		return fmt.Errorf("%w: t=%v, already evaluated through %v (regenerate type-grouped legacy traces with the current writer, or raise Lateness)",
			ErrLateRecord, t, s.emittedEnd())
	}
	s.eval.Observe(rec)
	s.stats.Records++
	if b := s.eval.Buffered(); b > s.stats.MaxBuffered {
		s.stats.MaxBuffered = b
	}
	if t > s.stats.Watermark {
		s.stats.Watermark = t
	}
	s.advance(false)
	return nil
}

// PushBatch feeds a batch of records, stopping at the first error.
func (s *Analyzer) PushBatch(recs []trace.Record) error {
	for _, rec := range recs {
		if err := s.Push(rec); err != nil {
			return err
		}
	}
	return nil
}

// advance evaluates every window position that is safe to close. With
// flush set (Close), remaining windows are evaluated regardless of the
// watermark — no further records can arrive.
func (s *Analyzer) advance(flush bool) {
	lastStart := sim.MaxTime - s.window
	if s.hdr.Duration > 0 {
		lastStart = s.hdr.Duration - s.window
	} else if flush {
		lastStart = s.stats.Watermark - s.window
	}
	for s.nextStart <= lastStart {
		if !flush && s.stats.Watermark < s.nextStart+s.window+s.cfg.Lateness {
			return
		}
		s.eval.EvictBefore(s.nextStart)
		v := s.eval.Eval(s.nextStart)
		wr, closedNodes, closedChains := s.inc.Step(v)
		if s.hooks != nil {
			s.hooks.WindowEvaluated(int64(s.nextStart), int64(s.nextStart+s.window))
		}
		s.stats.Windows++
		s.nextStart += s.step
		s.emit(wr, closedNodes, closedChains)
	}
}

func (s *Analyzer) emit(wr core.WindowResult, nodes []core.EventRun, chains []core.ChainRun) {
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(wr)
	}
	if s.cfg.OnNodeEvent != nil {
		for _, r := range nodes {
			s.cfg.OnNodeEvent(r)
		}
	}
	if s.cfg.OnChainEvent != nil {
		for _, r := range chains {
			s.cfg.OnChainEvent(r)
		}
	}
}

// Snapshot returns a live report of the session so far, with open runs
// treated as closed at the watermark. It returns nil before the header
// has arrived (including on a Reset analyzer whose recycled engine is
// waiting for its next session's header).
func (s *Analyzer) Snapshot() *core.Report {
	if s.hdr == nil || s.inc == nil {
		return nil
	}
	asOf := s.stats.Watermark
	if d := s.hdr.Duration; d > 0 && d < asOf {
		asOf = d
	}
	return s.inc.Snapshot(asOf)
}

// Close flushes every remaining window (using the header duration, or
// the watermark for open-ended streams), closes all open event runs,
// and returns the final report. The analyzer is unusable afterwards.
func (s *Analyzer) Close() (*core.Report, error) {
	if s.closed {
		return nil, ErrClosed
	}
	s.closed = true
	if s.hdr == nil {
		return nil, errors.New("stream: stream ended before a header record")
	}
	s.advance(true)
	duration := s.hdr.Duration
	if duration == 0 {
		duration = s.stats.Watermark
	}
	rep, closedNodes, closedChains := s.inc.Finish(duration)
	if s.cfg.OnNodeEvent != nil {
		for _, r := range closedNodes {
			s.cfg.OnNodeEvent(r)
		}
	}
	if s.cfg.OnChainEvent != nil {
		for _, r := range closedChains {
			s.cfg.OnChainEvent(r)
		}
	}
	return rep, nil
}
