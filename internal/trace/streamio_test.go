package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

// drainStream reads the whole stream, returning the records and the
// terminal error (nil for a clean io.EOF).
func drainStream(t *testing.T, input string) ([]Record, error) {
	t.Helper()
	sr := NewStreamReader(strings.NewReader(input))
	var recs []Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

func TestStreamReaderRoundTrip(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, set); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(bytes.NewReader(buf.Bytes()))
	var n int
	var last sim.Time
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Header != nil {
			if n != 0 {
				t.Fatal("header not first")
			}
			if rec.Header.CellName != "testcell" || rec.Header.Duration != sim.Second || !rec.Header.HasGNBLog {
				t.Fatalf("header = %+v", *rec.Header)
			}
		} else {
			at, ok := rec.Time()
			if !ok {
				t.Fatalf("record %d has no timestamp", n)
			}
			// WriteJSONL must emit records merged in time order so the
			// file is streamable with O(window) buffering.
			if at < last {
				t.Fatalf("record %d out of order: %v after %v", n, at, last)
			}
			last = at
		}
		n++
	}
	want := 1 + len(set.DCI) + len(set.GNBLogs) + len(set.Packets) + len(set.Stats) + len(set.RRC)
	if n != want {
		t.Fatalf("streamed %d records, want %d", n, want)
	}
	if _, ok := sr.Header(); !ok {
		t.Fatal("header not retained")
	}
}

// TestMalformedJSONL drives both the batch and streaming readers over
// malformed inputs and asserts both return clean errors — no panics —
// and agree on whether the input is acceptable.
func TestMalformedJSONL(t *testing.T) {
	header := `{"type":"header","data":{"cell_name":"c","duration_us":1000000,"has_gnb_log":true}}`
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"empty file", "", false},
		{"missing header", `{"type":"dci","data":{"At":1}}` + "\n", false},
		{"late header", `{"type":"dci","data":{"At":1}}` + "\n" + header + "\n", false},
		{"header only", header + "\n", true},
		{"truncated line", header + "\n" + `{"type":"dci","da`, false},
		{"truncated data object", header + "\n" + `{"type":"dci","data":{"At":` + "\n", false},
		{"unknown record type", header + "\n" + `{"type":"mystery","data":{}}` + "\n", false},
		{"empty line", header + "\n\n", false},
		{"not json", "not json at all\n", false},
		{"wrong data shape", header + "\n" + `{"type":"dci","data":[1,2,3]}` + "\n", false},
		{"header with bad duration", `{"type":"header","data":{"duration_us":"soon"}}` + "\n", false},
		{"valid record", header + "\n" + `{"type":"rrc","data":{"At":5,"Connected":true}}` + "\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, batchErr := ReadJSONL(strings.NewReader(tc.input))
			recs, streamErr := drainStream(t, tc.input)
			// ReadJSONL requires the header to come first (it fails
			// fast otherwise), so the streaming-side acceptability
			// check is header-first too.
			headerFirst := len(recs) > 0 && recs[0].Header != nil
			streamOK := streamErr == nil && headerFirst
			if (batchErr == nil) != tc.ok {
				t.Fatalf("batch: err=%v, want ok=%v", batchErr, tc.ok)
			}
			if streamOK != tc.ok {
				t.Fatalf("stream: err=%v headerFirst=%v, want ok=%v", streamErr, headerFirst, tc.ok)
			}
		})
	}
}

// TestStreamReaderErrorIsSticky pins that a decode error is terminal:
// later Next calls repeat it instead of resynchronizing mid-stream.
func TestStreamReaderErrorIsSticky(t *testing.T) {
	sr := NewStreamReader(strings.NewReader("garbage\n" + `{"type":"rrc","data":{}}` + "\n"))
	_, err1 := sr.Next()
	if err1 == nil {
		t.Fatal("garbage accepted")
	}
	_, err2 := sr.Next()
	if err2 != err1 {
		t.Fatalf("error not sticky: %v then %v", err1, err2)
	}
}

func TestRecordTime(t *testing.T) {
	if _, ok := (Record{}).Time(); ok {
		t.Fatal("empty record has a timestamp")
	}
	if !(Record{}).IsZero() {
		t.Fatal("empty record not zero")
	}
	p := &PacketRecord{SentAt: 3 * sim.Millisecond, Arrived: 9 * sim.Millisecond}
	if at, ok := (Record{Packet: p}).Time(); !ok || at != 3*sim.Millisecond {
		t.Fatalf("packet time = %v, %v", at, ok)
	}
	if _, ok := (Record{Header: &Header{}}).Time(); ok {
		t.Fatal("header records carry no timestamp")
	}
}

// TestReadJSONLFailsFastOnMissingHeader pins the fail-fast contract: a
// stream whose first line is not a header is rejected with the
// missing-header error immediately, without draining (and potentially
// choking on) the rest of the stream. The garbage second line proves
// it: the old drain-everything behavior would have surfaced a line-2
// parse error instead.
func TestReadJSONLFailsFastOnMissingHeader(t *testing.T) {
	input := `{"type":"dci","data":{"At":1}}` + "\nthis line is not json and must never be parsed\n"
	_, err := ReadJSONL(strings.NewReader(input))
	if err == nil {
		t.Fatal("headerless stream accepted")
	}
	if !strings.Contains(err.Error(), "missing header") {
		t.Fatalf("err = %v, want missing-header failure (not a line-2 parse error)", err)
	}
}

// FuzzReadJSONL feeds arbitrary bytes to both readers: neither may
// panic, and they must agree on input acceptability (ReadJSONL is
// built on StreamReader, so a divergence means the wrapper broke).
func FuzzReadJSONL(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"type":"header","data":{}}` + "\n")
	f.Add(`{"type":"pkt","data":{"SentAt":-1}}`)
	f.Add(strings.Repeat(`{"type":"rrc","data":{}}`+"\n", 3))
	f.Fuzz(func(t *testing.T, input string) {
		_, batchErr := ReadJSONL(strings.NewReader(input))

		sr := NewStreamReader(strings.NewReader(input))
		var streamErr error
		headerFirst := false
		first := true
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				streamErr = err
				break
			}
			if first {
				first = false
				headerFirst = rec.Header != nil
			}
			if !headerFirst {
				// ReadJSONL stops at the first non-header first line;
				// stop mirroring it here so both readers consume the
				// same prefix.
				break
			}
		}
		if (batchErr == nil) != (streamErr == nil && headerFirst) {
			t.Fatalf("readers disagree: batch=%v stream=%v headerFirst=%v", batchErr, streamErr, headerFirst)
		}
	})
}
