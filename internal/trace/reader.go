package trace

import (
	"bufio"
	"bytes"
	"io"
)

// RecordReader is the streaming decode interface shared by the JSONL
// and binary trace readers: Next yields the header record first, then
// every data record in stream order; ReadBatch amortizes the per-call
// overhead for bulk consumers. Both readers return io.EOF at a clean
// end of stream and make any other error terminal and sticky.
type RecordReader interface {
	// Next returns the next record, io.EOF at a clean end of stream.
	Next() (Record, error)
	// Header returns the stream header once it has been read.
	Header() (Header, bool)
	// ReadBatch returns the next batch of records, nil + io.EOF at a
	// clean end of stream. The JSONL reader fills dst's backing array
	// (growing a default-sized one when dst has no capacity); the
	// binary reader ignores dst and returns freshly allocated block
	// storage, one block per call. A non-empty batch is returned with
	// a nil error even when the stream ends or fails right after it;
	// the terminal error resurfaces on the following call.
	ReadBatch(dst []Record) ([]Record, error)
}

var (
	_ RecordReader = (*StreamReader)(nil)
	_ RecordReader = (*BinaryStreamReader)(nil)
)

// ReadBatch fills dst (up to its capacity; a default capacity of 256
// is used when dst has none) with consecutive records. See
// RecordReader.ReadBatch for the error contract.
func (sr *StreamReader) ReadBatch(dst []Record) ([]Record, error) {
	if cap(dst) == 0 {
		dst = make([]Record, 0, 256)
	}
	dst = dst[:0]
	for len(dst) < cap(dst) {
		rec, err := sr.Next()
		if err != nil {
			if len(dst) > 0 {
				return dst, nil
			}
			return nil, err
		}
		dst = append(dst, rec)
	}
	return dst, nil
}

// NewAutoStreamReader sniffs the stream's format — the binary magic
// header versus anything else, assumed JSONL — and returns the
// matching reader. This is the `-stdin` and file-reading entry point:
// producers that cannot set a content type still get the right
// decoder.
func NewAutoStreamReader(r io.Reader) RecordReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	pfx, _ := br.Peek(len(binaryMagic))
	if bytes.Equal(pfx, []byte(binaryMagic)) {
		return NewBinaryStreamReader(br)
	}
	return NewStreamReader(br)
}
