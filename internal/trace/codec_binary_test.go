package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// drainReader collects every record a reader yields until io.EOF.
func drainReader(t *testing.T, r RecordReader) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

// TestBinaryMatchesJSONLRecordStream pins the core differential
// contract: decoding the binary encoding of a set yields exactly the
// record stream of its JSONL encoding — same order, same values,
// header first. JSONL is the oracle.
func TestBinaryMatchesJSONLRecordStream(t *testing.T) {
	set := sampleSet()

	var jbuf, bbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, set); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, set); err != nil {
		t.Fatal(err)
	}

	want := drainReader(t, NewStreamReader(&jbuf))
	got := drainReader(t, NewBinaryStreamReader(&bbuf))
	if len(got) != len(want) {
		t.Fatalf("record count: binary %d, jsonl %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d:\nbinary %+v\njsonl  %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryHeaderAndBatch(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	sr := NewBinaryStreamReader(&buf)
	if _, ok := sr.Header(); ok {
		t.Fatal("header available before reading")
	}
	first, err := sr.ReadBatch(nil)
	if err != nil || len(first) != 1 || first[0].Header == nil {
		t.Fatalf("first batch = %v, %v; want one header record", first, err)
	}
	hdr, ok := sr.Header()
	if !ok || hdr.CellName != set.CellName || hdr.Duration != set.Duration || hdr.HasGNBLog != set.HasGNBLog {
		t.Fatalf("header = %+v, %v", hdr, ok)
	}
	n := 0
	for {
		batch, err := sr.ReadBatch(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += len(batch)
	}
	if want := len(set.DCI) + len(set.GNBLogs) + len(set.Packets) + len(set.Stats) + len(set.RRC); n != want {
		t.Fatalf("batched records = %d, want %d", n, want)
	}
	// Terminal io.EOF is sticky.
	if _, err := sr.ReadBatch(nil); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestJSONLReadBatch(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, set); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(&buf)
	dst := make([]Record, 0, 3)
	var got []Record
	for {
		batch, err := sr.ReadBatch(dst)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > 3 {
			t.Fatalf("batch larger than dst cap: %d", len(batch))
		}
		got = append(got, batch...)
	}
	if want := 1 + len(set.DCI) + len(set.GNBLogs) + len(set.Packets) + len(set.Stats) + len(set.RRC); len(got) != want {
		t.Fatalf("records = %d, want %d", len(got), want)
	}
	if got[0].Header == nil {
		t.Fatal("first batched record is not the header")
	}
}

func TestAutoStreamReaderSniffs(t *testing.T) {
	set := sampleSet()
	var jbuf, bbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, set); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, set); err != nil {
		t.Fatal(err)
	}
	want := len(set.DCI) + len(set.GNBLogs) + len(set.Packets) + len(set.Stats) + len(set.RRC) + 1
	for name, buf := range map[string]*bytes.Buffer{"jsonl": &jbuf, "binary": &bbuf} {
		recs := drainReader(t, NewAutoStreamReader(buf))
		if len(recs) != want {
			t.Fatalf("%s: sniffed reader yielded %d records, want %d", name, len(recs), want)
		}
	}
}

// TestBinaryFailFast mirrors the ReadJSONL header-first tests: corrupt
// or truncated streams must produce a terminal error, never a silent
// short read.
func TestBinaryFailFast(t *testing.T) {
	var full bytes.Buffer
	if err := WriteBinary(&full, sampleSet()); err != nil {
		t.Fatal(err)
	}
	valid := full.Bytes()

	// A stream cut anywhere before the final byte must error: every
	// prefix either breaks a frame mid-payload or drops the end frame.
	for _, cut := range []int{0, 3, len(binaryMagic), len(binaryMagic) + 1, len(valid) / 2, len(valid) - 1} {
		recs, err := drainAll(NewBinaryStreamReader(bytes.NewReader(valid[:cut])))
		if err == nil || err == io.EOF {
			t.Fatalf("cut at %d: got %d records and err %v, want terminal error", cut, len(recs), err)
		}
	}

	corrupt := func(name string, mutate func(b []byte) []byte, wantSub string) {
		t.Helper()
		b := mutate(append([]byte(nil), valid...))
		_, err := drainAll(NewBinaryStreamReader(bytes.NewReader(b)))
		if err == nil || err == io.EOF {
			t.Fatalf("%s: no error", name)
		}
		if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q missing %q", name, err, wantSub)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic")
	corrupt("bad version", func(b []byte) []byte { b[7] = '9'; return b }, "bad magic")
	corrupt("unknown frame kind", func(b []byte) []byte { b[8] = 0x7f; return b }, "unknown frame kind")
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0x01) }, "trailing data")
	corrupt("giant frame length", func(b []byte) []byte {
		out := append([]byte(nil), b[:9]...)
		out = binary.AppendUvarint(out, maxBinaryFramePayload+1)
		return append(out, b[9:]...)
	}, "exceeds limit")

	// A block frame before any header frame (strip dict+header frames,
	// keep magic) must fail with a decode error, not succeed.
	cur := len(binaryMagic)
	for i := 0; i < 2; i++ { // dict, header
		kind := valid[cur]
		plen, n := binary.Uvarint(valid[cur+1:])
		if n <= 0 {
			t.Fatalf("frame %d: bad varint", i)
		}
		if i == 0 && kind != frameDict || i == 1 && kind != frameHeader {
			t.Fatalf("frame %d: unexpected kind %d", i, kind)
		}
		cur += 1 + n + int(plen)
	}
	headless := append([]byte(binaryMagic), valid[cur:]...)
	if _, err := drainAll(NewBinaryStreamReader(bytes.NewReader(headless))); err == nil || err == io.EOF {
		t.Fatal("block without header frame: no error")
	}
}

func drainAll(r RecordReader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, io.EOF
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func TestBinaryWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteRecord(Record{DCI: &DCIRecord{}}); err == nil {
		t.Fatal("record before header accepted")
	}
	w = NewBinaryWriter(&buf)
	if err := w.Close(); err == nil {
		t.Fatal("close before header accepted")
	}
	w = NewBinaryWriter(&buf)
	if err := w.WriteHeader(Header{CellName: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(Header{CellName: "c"}); err == nil {
		t.Fatal("duplicate header accepted")
	}
}

// TestBinaryMultiBlockDict checks that strings first appearing deep in
// the stream (after the first dict frame) round-trip: dict frames are
// emitted incrementally before the block that needs them.
func TestBinaryMultiBlockDict(t *testing.T) {
	set := &Set{CellName: "cell", Duration: sim.Second, HasGNBLog: true}
	for i := 0; i < 3*defaultBinaryBlockSize; i++ {
		set.GNBLogs = append(set.GNBLogs, GNBLogRecord{
			At:   sim.Time(i) * sim.Millisecond,
			Kind: GNBLogRRC,
			Note: "note-" + string(rune('a'+i/defaultBinaryBlockSize)),
		})
		set.RRC = append(set.RRC, RRCRecord{
			At:    sim.Time(i)*sim.Millisecond + 1,
			Cause: "cause-" + string(rune('a'+i/(defaultBinaryBlockSize/2))),
		})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, set); err != nil {
		t.Fatal(err)
	}
	recs := drainReader(t, NewBinaryStreamReader(&buf))
	if len(recs) != 1+len(set.GNBLogs)+len(set.RRC) {
		t.Fatalf("got %d records", len(recs))
	}
	gi, ri := 0, 0
	for _, rec := range recs[1:] {
		switch {
		case rec.GNB != nil:
			if rec.GNB.Note != set.GNBLogs[gi].Note {
				t.Fatalf("gnb %d note = %q, want %q", gi, rec.GNB.Note, set.GNBLogs[gi].Note)
			}
			gi++
		case rec.RRC != nil:
			if rec.RRC.Cause != set.RRC[ri].Cause {
				t.Fatalf("rrc %d cause = %q, want %q", ri, rec.RRC.Cause, set.RRC[ri].Cause)
			}
			ri++
		}
	}
}

// encodeStream encodes a header plus records through the streaming
// writer (the dominod-shaped path, no Set in sight).
func encodeStream(hdr Header, recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteHeader(hdr); err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// fuzzRecords deterministically derives a record list (arbitrary
// values, including negative timestamps and raw float bit patterns)
// from fuzz input bytes.
func fuzzRecords(data []byte) (Header, []Record) {
	hdr := Header{CellName: "fuzz-cell", Duration: sim.Second}
	var recs []Record
	u64 := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		n := 8
		if len(data) < n {
			n = len(data)
		}
		var b [8]byte
		copy(b[:], data[:n])
		data = data[n:]
		return binary.LittleEndian.Uint64(b[:])
	}
	i64 := func() int64 { return int64(u64()) }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	str := func() string {
		v := u64()
		return string(rune('a'+v%26)) + string(rune('0'+(v>>8)%10))
	}
	for len(data) > 0 {
		kind := data[0] % 5
		data = data[1:]
		switch kind {
		case 0:
			recs = append(recs, Record{DCI: &DCIRecord{
				At: sim.Time(i64()), Dir: netem.Direction(i64()), RNTI: uint32(u64()),
				OwnPRB: int(i64()), OtherPRB: int(i64()), MCS: int(i64()),
				TBSBits: int(i64()), UsedBits: int(i64()),
				HARQRetx: u64()%2 == 0, RLCRetx: u64()%3 == 0,
				Proactive: u64()%5 == 0, Unused: u64()%7 == 0,
			}})
		case 1:
			recs = append(recs, Record{GNB: &GNBLogRecord{
				At: sim.Time(i64()), Kind: GNBLogKind(i64()), Dir: netem.Direction(i64()),
				BufferBytes: int(i64()), RNTI: uint32(u64()), Note: str(),
			}})
		case 2:
			recs = append(recs, Record{Packet: &PacketRecord{
				Seq: u64(), Kind: netem.MediaKind(i64()), Dir: netem.Direction(i64()),
				Size: int(i64()), SentAt: sim.Time(i64()), Arrived: sim.Time(i64()),
			}})
		case 3:
			recs = append(recs, Record{Stats: &WebRTCStatsRecord{
				At: sim.Time(i64()), Local: u64()%2 == 0,
				InboundFPS: f64(), OutboundFPS: f64(), OutboundHeight: int(i64()),
				InboundHeight: int(i64()), VideoJBDelayMs: f64(), AudioJBDelayMs: f64(),
				MinJBDelayMs: f64(), FrozenNow: u64()%2 == 0, FreezeTotalMs: f64(),
				ConcealedSamples: u64(), TotalSamples: u64(), TargetBitrateBps: f64(),
				PushbackRateBps: f64(), OutstandingBytes: int(i64()), CongestionWindow: int(i64()),
				GCCNetState: GCCState(i64()), TrendlineSlope: f64(), TrendlineThreshold: f64(),
				AckedBitrateBps: f64(),
			}})
		case 4:
			recs = append(recs, Record{RRC: &RRCRecord{
				At: sim.Time(i64()), Connected: u64()%2 == 0, RNTI: uint32(u64()), Cause: str(),
			}})
		}
	}
	return hdr, recs
}

// FuzzBinaryRoundTrip checks encode→decode ≡ input for arbitrary
// record values. Fidelity is asserted by re-encoding the decoded
// stream: the bytes must match the original encoding exactly, which
// (with an injective per-field encoding) holds only if every field —
// including raw NaN bit patterns DeepEqual cannot compare — survived.
func FuzzBinaryRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{3, 0xff, 0x80, 7, 9, 0x41}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs := fuzzRecords(data)
		enc1, err := encodeStream(hdr, recs)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		sr := NewBinaryStreamReader(bytes.NewReader(enc1))
		var decoded []Record
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			decoded = append(decoded, rec)
		}
		if len(decoded) != len(recs)+1 {
			t.Fatalf("decoded %d records, want %d", len(decoded), len(recs)+1)
		}
		if decoded[0].Header == nil {
			t.Fatal("first decoded record is not the header")
		}
		enc2, err := encodeStream(*decoded[0].Header, decoded[1:])
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encoded stream differs (%d vs %d bytes)", len(enc1), len(enc2))
		}
	})
}

// FuzzBinaryStreamReader feeds arbitrary bytes to the decoder: it must
// terminate with io.EOF or an error, never panic or loop — the binary
// analog of FuzzReadJSONL.
func FuzzBinaryStreamReader(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, sampleSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte("{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr := NewBinaryStreamReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			_, err := sr.Next()
			if err != nil {
				break
			}
			if i > 1<<20 {
				t.Fatal("reader yielded over a million records from fuzz input")
			}
		}
	})
}

// TestBinaryRecycle pins the bounded-lifetime decode mode: with a
// recycle ring installed, streamed records still match a fresh-storage
// decode value-for-value as long as each batch is consumed before
// depth further blocks are decoded — and storage really is reused (a
// batch's backing array is overwritten once the ring wraps).
func TestBinaryRecycle(t *testing.T) {
	recs := benchCorpus()
	enc, err := encodeStream(Header{CellName: "bench", Duration: sim.Time(len(recs)) * 100}, recs)
	if err != nil {
		t.Fatal(err)
	}
	want := drainReader(t, NewBinaryStreamReader(bytes.NewReader(enc)))

	for _, depth := range []int{1, 3} {
		sr := NewBinaryStreamReader(bytes.NewReader(enc))
		sr.Recycle(depth)
		var got []Record
		for {
			batch, err := sr.ReadBatch(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			// Copy record VALUES out before the ring wraps: the
			// pointers themselves go stale by design.
			for _, r := range batch {
				switch {
				case r.Header != nil:
					h := *r.Header
					got = append(got, Record{Header: &h})
				case r.DCI != nil:
					v := *r.DCI
					got = append(got, Record{DCI: &v})
				case r.GNB != nil:
					v := *r.GNB
					got = append(got, Record{GNB: &v})
				case r.Packet != nil:
					v := *r.Packet
					got = append(got, Record{Packet: &v})
				case r.Stats != nil:
					v := *r.Stats
					got = append(got, Record{Stats: &v})
				case r.RRC != nil:
					v := *r.RRC
					got = append(got, Record{RRC: &v})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("depth %d: %d records, want %d", depth, len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("depth %d: record %d diverges from fresh-storage decode:\ngot  %+v\nwant %+v",
					depth, i, got[i], want[i])
			}
		}
	}

	// The reuse is real: after the ring wraps, an earlier batch's
	// backing storage holds later records.
	sr := NewBinaryStreamReader(bytes.NewReader(enc))
	sr.Recycle(1)
	if _, err := sr.ReadBatch(nil); err != nil { // header batch
		t.Fatal(err)
	}
	first, err := sr.ReadBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]Record, len(first))
	copy(snap, first)
	overwritten := false
	for {
		if _, err := sr.ReadBatch(nil); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		for i := range first {
			if !reflect.DeepEqual(first[i], snap[i]) {
				overwritten = true
			}
		}
		if overwritten {
			break
		}
	}
	if !overwritten {
		t.Fatal("Recycle(1) never reused the first block's storage")
	}
}

// TestBinaryDecodeRecycledAllocs pins the allocation contract the
// dominod ingest path relies on: with recycling enabled, steady-state
// decode allocates (amortized) nothing per record.
func TestBinaryDecodeRecycledAllocs(t *testing.T) {
	recs := benchCorpus()
	enc, err := encodeStream(Header{CellName: "bench"}, recs)
	if err != nil {
		t.Fatal(err)
	}
	reader := bytes.NewReader(enc)
	// Warm a single long-lived reader? No — dominod builds one reader
	// per session, so the honest bound includes ring growth; amortized
	// over the corpus it must still be far below the fresh-storage
	// cost (one backing array per series per block).
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		reader.Reset(enc)
		sr := NewBinaryStreamReader(reader)
		sr.Recycle(1)
		n = 0
		for {
			batch, err := sr.ReadBatch(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(batch)
		}
	})
	if perRec := allocs / float64(n); perRec > 0.02 {
		t.Fatalf("recycled binary decode allocates %.4f allocs/record (total %.0f for %d records)", perRec, allocs, n)
	}
}

// TestBinaryDecodeAllocs bounds the decoder's per-record allocation
// cost: block-granular backing arrays only, well under one allocation
// per record (the JSONL decoder's floor).
func TestBinaryDecodeAllocs(t *testing.T) {
	recs := benchCorpus()
	enc, err := encodeStream(Header{CellName: "bench"}, recs)
	if err != nil {
		t.Fatal(err)
	}
	reader := bytes.NewReader(enc)
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		reader.Reset(enc)
		sr := NewBinaryStreamReader(reader)
		n = 0
		for {
			batch, err := sr.ReadBatch(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n += len(batch)
		}
	})
	perRec := allocs / float64(n)
	if perRec > 0.2 {
		t.Fatalf("binary decode allocates %.3f allocs/record (total %.0f for %d records)", perRec, allocs, n)
	}
}
