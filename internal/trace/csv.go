package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/domino5g/domino/internal/sim"
)

// CSV exports flatten individual series for plotting tools — the
// figures in the paper are CDFs and time series over exactly these
// columns.

func ms(t sim.Time) string { return strconv.FormatFloat(t.Milliseconds(), 'f', 3, 64) }

// WritePacketsCSV writes the packet series: one row per datagram with
// send/arrival timestamps and one-way delay in milliseconds.
func WritePacketsCSV(w io.Writer, set *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "kind", "dir", "size_bytes", "sent_ms", "arrived_ms", "delay_ms"}); err != nil {
		return err
	}
	for _, p := range set.Packets {
		rec := []string{
			strconv.FormatUint(p.Seq, 10), p.Kind.String(), p.Dir.String(),
			strconv.Itoa(p.Size), ms(p.SentAt), ms(p.Arrived), ms(p.Delay()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDCICSV writes the scheduling telemetry series.
func WriteDCICSV(w io.Writer, set *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ms", "dir", "rnti", "own_prb", "other_prb", "mcs", "tbs_bits", "used_bits", "harq_retx", "rlc_retx", "proactive", "unused"}); err != nil {
		return err
	}
	for _, r := range set.DCI {
		rec := []string{
			ms(r.At), r.Dir.String(), strconv.FormatUint(uint64(r.RNTI), 10),
			strconv.Itoa(r.OwnPRB), strconv.Itoa(r.OtherPRB), strconv.Itoa(r.MCS),
			strconv.Itoa(r.TBSBits), strconv.Itoa(r.UsedBits),
			strconv.FormatBool(r.HARQRetx), strconv.FormatBool(r.RLCRetx),
			strconv.FormatBool(r.Proactive), strconv.FormatBool(r.Unused),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStatsCSV writes the 50 ms WebRTC stats series.
func WriteStatsCSV(w io.Writer, set *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"at_ms", "side", "inbound_fps", "outbound_fps", "outbound_height",
		"video_jb_ms", "audio_jb_ms", "min_jb_ms", "frozen", "freeze_total_ms",
		"concealed", "total_samples", "target_bps", "pushback_bps",
		"outstanding_bytes", "cwnd_bytes", "gcc_state", "trend_slope", "trend_threshold", "acked_bps",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range set.Stats {
		side := "remote"
		if r.Local {
			side = "local"
		}
		rec := []string{
			ms(r.At), side, f(r.InboundFPS), f(r.OutboundFPS), strconv.Itoa(r.OutboundHeight),
			f(r.VideoJBDelayMs), f(r.AudioJBDelayMs), f(r.MinJBDelayMs),
			strconv.FormatBool(r.FrozenNow), f(r.FreezeTotalMs),
			strconv.FormatUint(r.ConcealedSamples, 10), strconv.FormatUint(r.TotalSamples, 10),
			f(r.TargetBitrateBps), f(r.PushbackRateBps),
			strconv.Itoa(r.OutstandingBytes), strconv.Itoa(r.CongestionWindow),
			r.GCCNetState.String(), f(r.TrendlineSlope), f(r.TrendlineThreshold), f(r.AckedBitrateBps),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVBundle writes all three CSV series through the writer factory
// (name → destination), e.g. files "packets.csv", "dci.csv", "stats.csv".
func WriteCSVBundle(open func(name string) (io.WriteCloser, error), set *Set) error {
	for _, part := range []struct {
		name  string
		write func(io.Writer, *Set) error
	}{
		{"packets.csv", WritePacketsCSV},
		{"dci.csv", WriteDCICSV},
		{"stats.csv", WriteStatsCSV},
	} {
		f, err := open(part.name)
		if err != nil {
			return fmt.Errorf("trace: opening %s: %w", part.name, err)
		}
		if err := part.write(f, set); err != nil {
			f.Close()
			return fmt.Errorf("trace: writing %s: %w", part.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
