package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// oracleLine is the reflection-based encoder the hand-rolled codec
// replaced: json.Marshal of the record inside the {"type","data"}
// envelope, exactly as the old WriteJSONL produced it (sans newline).
func oracleLine(t testing.TB, typ string, v any) ([]byte, error) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(jsonLine{Type: typ, Data: data}); err != nil {
		return nil, err
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n")), nil
}

// oracleDecodeLine is the stdlib double-unmarshal the fast decoder
// shortcuts; StreamReader still uses it as the fallback.
func oracleDecodeLine(line []byte) (Record, error) {
	var l jsonLine
	if err := json.Unmarshal(line, &l); err != nil {
		return Record{}, err
	}
	switch l.Type {
	case "header":
		var h jsonHeader
		if err := json.Unmarshal(l.Data, &h); err != nil {
			return Record{}, err
		}
		return Record{Header: &Header{CellName: h.CellName, Scenario: h.Scenario, Duration: sim.Time(h.Duration), HasGNBLog: h.HasGNBLog}}, nil
	case "dci":
		var v DCIRecord
		return Record{DCI: &v}, json.Unmarshal(l.Data, &v)
	case "gnb":
		var v GNBLogRecord
		return Record{GNB: &v}, json.Unmarshal(l.Data, &v)
	case "pkt":
		var v PacketRecord
		return Record{Packet: &v}, json.Unmarshal(l.Data, &v)
	case "stats":
		var v WebRTCStatsRecord
		return Record{Stats: &v}, json.Unmarshal(l.Data, &v)
	case "rrc":
		var v RRCRecord
		return Record{RRC: &v}, json.Unmarshal(l.Data, &v)
	default:
		return Record{}, errUnknownType(l.Type)
	}
}

type errUnknownType string

func (e errUnknownType) Error() string { return "unknown record type " + string(e) }

// fastEncodeRecord dispatches to the append encoder for one record.
func fastEncodeRecord(dst []byte, rec Record) ([]byte, error) {
	switch {
	case rec.Header != nil:
		return appendHeaderLine(dst, rec.Header), nil
	case rec.DCI != nil:
		return appendDCILine(dst, rec.DCI), nil
	case rec.GNB != nil:
		return appendGNBLine(dst, rec.GNB), nil
	case rec.Packet != nil:
		return appendPacketLine(dst, rec.Packet), nil
	case rec.Stats != nil:
		return appendStatsLine(dst, rec.Stats)
	case rec.RRC != nil:
		return appendRRCLine(dst, rec.RRC), nil
	}
	return dst, nil
}

func recordTypeName(rec Record) string {
	switch {
	case rec.Header != nil:
		return "header"
	case rec.DCI != nil:
		return "dci"
	case rec.GNB != nil:
		return "gnb"
	case rec.Packet != nil:
		return "pkt"
	case rec.Stats != nil:
		return "stats"
	case rec.RRC != nil:
		return "rrc"
	}
	return ""
}

func recordPayload(rec Record) any {
	switch {
	case rec.Header != nil:
		return jsonHeader{CellName: rec.Header.CellName, Scenario: rec.Header.Scenario, Duration: int64(rec.Header.Duration), HasGNBLog: rec.Header.HasGNBLog}
	case rec.DCI != nil:
		return *rec.DCI
	case rec.GNB != nil:
		return *rec.GNB
	case rec.Packet != nil:
		return *rec.Packet
	case rec.Stats != nil:
		return *rec.Stats
	case rec.RRC != nil:
		return *rec.RRC
	}
	return nil
}

// checkEncodeMatchesOracle pins fast encode == oracle encode for one
// record, including error agreement (NaN/Inf).
func checkEncodeMatchesOracle(t *testing.T, rec Record) {
	t.Helper()
	fast, fastErr := fastEncodeRecord(nil, rec)
	want, oracleErr := oracleLine(t, recordTypeName(rec), recordPayload(rec))
	if (fastErr == nil) != (oracleErr == nil) {
		t.Fatalf("error disagreement: fast=%v oracle=%v for %+v", fastErr, oracleErr, rec)
	}
	if fastErr != nil {
		return
	}
	if !bytes.Equal(fast, want) {
		t.Fatalf("encoding mismatch:\nfast:   %s\noracle: %s", fast, want)
	}
	// Round trip: when the fast decoder accepts the line it must agree
	// with the oracle decoder exactly. Lines with escapes bail to the
	// fallback by design, so the oracle is the reference either way —
	// comparing against the original record would be wrong for lossy
	// inputs (invalid UTF-8 is replaced with U+FFFD on encode).
	oracleRec, err := oracleDecodeLine(fast)
	if err != nil {
		t.Fatalf("oracle decoder rejected oracle-encoded line %s: %v", fast, err)
	}
	if back, ok := fastDecodeLine(fast); ok {
		if !reflect.DeepEqual(back, oracleRec) {
			t.Fatalf("round trip mismatch on %s:\nfast:   %+v\noracle: %+v", fast, back, oracleRec)
		}
	}
}

// TestCodecDifferentialQuick drives randomized records of every type
// through encoder and decoder against the encoding/json oracle.
func TestCodecDifferentialQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(v DCIRecord) bool {
		checkEncodeMatchesOracle(t, Record{DCI: &v})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v GNBLogRecord) bool {
		checkEncodeMatchesOracle(t, Record{GNB: &v})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v PacketRecord) bool {
		checkEncodeMatchesOracle(t, Record{Packet: &v})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v WebRTCStatsRecord) bool {
		checkEncodeMatchesOracle(t, Record{Stats: &v})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(v RRCRecord) bool {
		checkEncodeMatchesOracle(t, Record{RRC: &v})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(h Header) bool {
		checkEncodeMatchesOracle(t, Record{Header: &h})
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCodecEdgeValues exercises the encoder corners quick rarely hits:
// float formats the stdlib special-cases, strings needing every escape
// class, and the NaN/Inf error path.
func TestCodecEdgeValues(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1e-7, -1e-7, 1e-6, 1e20, 1e21, -1e21,
		123456.789, 3.141592653589793, 2.5e-9, 6.02e23, math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	}
	for _, f := range floats {
		checkEncodeMatchesOracle(t, Record{Stats: &WebRTCStatsRecord{InboundFPS: f, TrendlineSlope: -f}})
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		checkEncodeMatchesOracle(t, Record{Stats: &WebRTCStatsRecord{AckedBitrateBps: bad}})
	}
	strs := []string{
		"", "plain", "with \"quotes\" and \\slashes\\",
		"html <tags> & ampersands", "newline\ntab\tcr\r", "nul\x00bell\x07",
		"unicode ✓ ☂ 日本語", "line sep \u2028 and \u2029 end",
		"invalid \xff\xfe utf8", "trailing continuation \xc3",
	}
	for _, s := range strs {
		checkEncodeMatchesOracle(t, Record{GNB: &GNBLogRecord{Note: s}})
		checkEncodeMatchesOracle(t, Record{RRC: &RRCRecord{Cause: s}})
		checkEncodeMatchesOracle(t, Record{Header: &Header{CellName: s, Scenario: s}})
	}
	ints := []int{0, 1, -1, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, n := range ints {
		checkEncodeMatchesOracle(t, Record{DCI: &DCIRecord{At: sim.Time(n), OwnPRB: n}})
	}
	checkEncodeMatchesOracle(t, Record{Packet: &PacketRecord{Seq: math.MaxUint64, Kind: netem.MediaKind(-3)}})
}

// TestFastDecodeSubsetAgreesWithOracle pins the fast decoder's subset
// property on hand-picked lines: whenever the fast path accepts a line
// the oracle must accept it with the identical record, and lines the
// fast path rejects must still decode correctly through the fallback
// (exercised via StreamReader in streamio_test.go).
func TestFastDecodeSubsetAgreesWithOracle(t *testing.T) {
	lines := []string{
		`{"type":"header","data":{"cell_name":"c","duration_us":5,"has_gnb_log":true}}`,
		`{"type":"header","data":{"cell_name":"c","scenario":"s","duration_us":5,"has_gnb_log":false}}`,
		`{"type":"dci","data":{"At":1,"Dir":0,"RNTI":70,"OwnPRB":2,"OtherPRB":3,"MCS":4,"TBSBits":5,"UsedBits":6,"HARQRetx":true,"RLCRetx":false,"Proactive":true,"Unused":false}}`,
		`{"type":"dci","data":{"At":-9223372036854775808}}`,
		`{"type":"pkt","data":{"Seq":18446744073709551615,"Size":-1}}`,
		`{"type":"stats","data":{"InboundFPS":29.97,"TrendlineSlope":-1.5e-9,"At":123}}`,
		`{"type":"rrc","data":{"At":5,"Connected":true,"Cause":"inactivity timer"}}`,
		`{"type":"gnb","data":{"Note":"plain ascii"}}`,
		` { "type" : "rrc" , "data" : { "At" : 7 } } `,
		`{"type":"dci","data":{}}`,
		// Duplicate key: last one wins in both decoders.
		`{"type":"rrc","data":{"At":1,"At":2}}`,
	}
	for _, line := range lines {
		fast, ok := fastDecodeLine([]byte(line))
		if !ok {
			t.Fatalf("fast path rejected canonical line %s", line)
		}
		want, err := oracleDecodeLine([]byte(line))
		if err != nil {
			t.Fatalf("oracle rejected %s: %v", line, err)
		}
		if !reflect.DeepEqual(fast, want) {
			t.Fatalf("decode mismatch on %s:\nfast:   %+v\noracle: %+v", line, fast, want)
		}
	}

	// Lines the fast path must bail on (stdlib semantics the scanner
	// does not reimplement) — the production path still decodes or
	// rejects them via the fallback, so bailing just means "slow".
	bail := []string{
		`{"type":"rrc","data":{"at":5}}`,                    // case-folded key
		`{"type":"rrc","data":{"At":null}}`,                 // null literal
		`{"type":"rrc","data":{"At":1e2}}`,                  // exponent for int field
		`{"type":"rrc","data":{"At":01}}`,                   // leading zero
		`{"type":"rrc","data":{"Cause":"a\u0041b"}}`,        // escaped string
		`{"type":"rrc","data":{"Bogus":1}}`,                 // unknown field
		`{"type":"mystery","data":{}}`,                      // unknown type
		`{"data":{"At":1},"type":"rrc"}`,                    // reordered envelope
		`{"type":"rrc","data":{"At":1}}trailing`,            // trailing garbage
		`{"type":"rrc","data":[1,2]}`,                       // wrong data shape
		`{"type":"rrc","data":{"At":9223372036854775808}}`,  // int64 overflow
		`{"type":"pkt","data":{"Seq":-1}}`,                  // negative uint
		`{"type":"stats","data":{"InboundFPS":1.797e+309}}`, // float overflow
	}
	for _, line := range bail {
		if rec, ok := fastDecodeLine([]byte(line)); ok {
			t.Fatalf("fast path accepted %s as %+v; it must defer to the oracle", line, rec)
		}
	}
}

// FuzzCodecDifferential feeds arbitrary line bytes to the fast decoder:
// whenever it accepts, the oracle must agree record-for-record, and
// re-encoding the record must match the oracle encoder byte-for-byte.
func FuzzCodecDifferential(f *testing.F) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, set); err != nil {
		f.Fatal(err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) > 0 {
			f.Add(string(line))
		}
	}
	f.Add(`{"type":"stats","data":{"InboundFPS":1e-7}}`)
	f.Add(`{"type":"dci","data":{"At":-1,"Unused":true}}`)
	f.Add(`{"type":"rrc","data":{"Cause":"«utf8»"}}`)
	f.Fuzz(func(t *testing.T, line string) {
		rec, ok := fastDecodeLine([]byte(line))
		if !ok {
			return // slow-path material; the fallback owns it
		}
		want, err := oracleDecodeLine([]byte(line))
		if err != nil {
			t.Fatalf("fast path accepted %q but oracle errors: %v", line, err)
		}
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("decode mismatch on %q:\nfast:   %+v\noracle: %+v", line, rec, want)
		}
		checkEncodeMatchesOracle(t, rec)
	})
}

// TestEncodeAllocs guards the zero-allocation encode contract for the
// string-free hot records (steady-state WriteJSONL reuses one buffer).
func TestEncodeAllocs(t *testing.T) {
	dci := DCIRecord{At: 12345, OwnPRB: 20, MCS: 17, TBSBits: 8192, HARQRetx: true}
	pkt := PacketRecord{Seq: 99, Size: 1200, SentAt: 777, Arrived: 888}
	stats := WebRTCStatsRecord{At: 555, InboundFPS: 29.97, TargetBitrateBps: 2.5e6}
	buf := make([]byte, 0, 4096)
	if avg := testing.AllocsPerRun(200, func() {
		buf = appendDCILine(buf[:0], &dci)
		buf = appendPacketLine(buf[:0], &pkt)
		var err error
		buf, err = appendStatsLine(buf[:0], &stats)
		if err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("encode allocates %v/record-batch, want 0", avg)
	}
}

// TestDecodeAllocs guards the fast decoder's allocation budget: one
// record struct per line, nothing else (strings excepted).
func TestDecodeAllocs(t *testing.T) {
	line := []byte(`{"type":"stats","data":{"At":555,"Local":true,"InboundFPS":29.97,"TargetBitrateBps":2.5e+06,"GCCNetState":1}}`)
	if avg := testing.AllocsPerRun(200, func() {
		if _, ok := fastDecodeLine(line); !ok {
			t.Fatal("fast path rejected canonical stats line")
		}
	}); avg > 1 {
		t.Fatalf("decode allocates %v/record, want ≤1 (the record struct)", avg)
	}
}

// TestWriteJSONLMatchesLegacyEncoder regenerates a sample set through
// the new writer and through a line-by-line oracle re-encode, pinning
// whole-file byte equality — the golden-trace guarantee.
func TestWriteJSONLMatchesLegacyEncoder(t *testing.T) {
	set := sampleSet()
	var got bytes.Buffer
	if err := WriteJSONL(&got, set); err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(bytes.NewReader(got.Bytes()))
	var want bytes.Buffer
	for {
		rec, err := sr.Next()
		if err != nil {
			break
		}
		line, err := oracleLine(t, recordTypeName(rec), recordPayload(rec))
		if err != nil {
			t.Fatal(err)
		}
		want.Write(line)
		want.WriteByte('\n')
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("WriteJSONL output differs from the encoding/json oracle")
	}
}
