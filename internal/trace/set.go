package trace

import (
	"fmt"
	"sort"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// Set is a merged cross-layer trace: everything Domino needs to analyze
// one session. Collectors append during simulation; Sort fixes ordering
// before analysis.
type Set struct {
	// Meta describes the capture.
	CellName string
	// Scenario names the registered scenario that generated the trace
	// (empty for plain preset captures and external telemetry), so
	// downstream reports stay labeled with the workload that produced
	// them.
	Scenario string
	Duration sim.Time

	DCI     []DCIRecord
	GNBLogs []GNBLogRecord
	Packets []PacketRecord
	Stats   []WebRTCStatsRecord
	RRC     []RRCRecord

	// HasGNBLog mirrors the paper's data availability: commercial
	// cells expose no RLC-layer information, so RLC-retx detection is
	// disabled on them.
	HasGNBLog bool
}

// Sort orders every series by timestamp. Analysis assumes sorted input.
// Collectors append in simulation-time order, so each series is checked
// with one linear scan first and the O(n log n) stable sort only runs
// on series that actually need it (imported external telemetry).
func (s *Set) Sort() {
	if !sortedBy(len(s.DCI), func(i int) sim.Time { return s.DCI[i].At }) {
		sort.SliceStable(s.DCI, func(i, j int) bool { return s.DCI[i].At < s.DCI[j].At })
	}
	if !sortedBy(len(s.GNBLogs), func(i int) sim.Time { return s.GNBLogs[i].At }) {
		sort.SliceStable(s.GNBLogs, func(i, j int) bool { return s.GNBLogs[i].At < s.GNBLogs[j].At })
	}
	if !sortedBy(len(s.Packets), func(i int) sim.Time { return s.Packets[i].SentAt }) {
		sort.SliceStable(s.Packets, func(i, j int) bool { return s.Packets[i].SentAt < s.Packets[j].SentAt })
	}
	if !sortedBy(len(s.Stats), func(i int) sim.Time { return s.Stats[i].At }) {
		sort.SliceStable(s.Stats, func(i, j int) bool { return s.Stats[i].At < s.Stats[j].At })
	}
	if !sortedBy(len(s.RRC), func(i int) sim.Time { return s.RRC[i].At }) {
		sort.SliceStable(s.RRC, func(i, j int) bool { return s.RRC[i].At < s.RRC[j].At })
	}
}

// sortedBy reports whether the series is already in nondecreasing
// timestamp order.
func sortedBy(n int, at func(int) sim.Time) bool {
	for i := 1; i < n; i++ {
		if at(i) < at(i-1) {
			return false
		}
	}
	return true
}

// EventCounts summarizes record volumes (the Table 1 "event rate"
// columns).
type EventCounts struct {
	DCI     int
	GNBLog  int
	Packets int
	WebRTC  int
}

// Counts returns record counts per source.
func (s *Set) Counts() EventCounts {
	return EventCounts{DCI: len(s.DCI), GNBLog: len(s.GNBLogs), Packets: len(s.Packets), WebRTC: len(s.Stats)}
}

// RatePerMinute converts a count into a per-minute event rate over the
// set's duration.
func (s *Set) RatePerMinute(count int) float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(count) / s.Duration.Seconds() * 60
}

// PacketDelays returns the one-way delay series (ms) for packets of the
// given direction and kinds, ordered by send time.
func (s *Set) PacketDelays(dir netem.Direction, kinds ...netem.MediaKind) []float64 {
	match := func(k netem.MediaKind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, kk := range kinds {
			if k == kk {
				return true
			}
		}
		return false
	}
	var out []float64
	for _, p := range s.Packets {
		if p.Dir == dir && match(p.Kind) {
			out = append(out, p.Delay().Milliseconds())
		}
	}
	return out
}

// StatsSide returns the stats series for one client.
func (s *Set) StatsSide(local bool) []WebRTCStatsRecord {
	var out []WebRTCStatsRecord
	for _, r := range s.Stats {
		if r.Local == local {
			out = append(out, r)
		}
	}
	return out
}

// Validate performs consistency checks a downstream consumer relies on:
// sorted series and sane timestamps. It returns the first problem found.
func (s *Set) Validate() error {
	for i := 1; i < len(s.DCI); i++ {
		if s.DCI[i].At < s.DCI[i-1].At {
			return fmt.Errorf("trace: DCI records unsorted at index %d", i)
		}
	}
	for i := 1; i < len(s.Stats); i++ {
		if s.Stats[i].At < s.Stats[i-1].At {
			return fmt.Errorf("trace: stats records unsorted at index %d", i)
		}
	}
	for i, p := range s.Packets {
		if p.Arrived < p.SentAt {
			return fmt.Errorf("trace: packet %d arrives before it is sent", i)
		}
	}
	if s.Duration < 0 {
		return fmt.Errorf("trace: negative duration")
	}
	return nil
}

// Collector implements the observer interfaces of the RAN and RTC
// layers and accumulates a Set.
type Collector struct {
	Set Set
}

// NewCollector returns a collector for the named cell.
func NewCollector(cellName string, hasGNBLog bool) *Collector {
	return &Collector{Set: Set{CellName: cellName, HasGNBLog: hasGNBLog}}
}

// Reserve pre-sizes the record slices for an expected record volume, so
// a session of known duration does not pay repeated grow-and-copy cycles
// while collecting millions of records. Estimates may be rough: a low
// estimate just falls back to normal slice growth, a zero is ignored.
func (c *Collector) Reserve(dci, gnb, pkts, stats, rrc int) {
	s := &c.Set
	if dci > cap(s.DCI) {
		s.DCI = append(make([]DCIRecord, 0, dci), s.DCI...)
	}
	if gnb > cap(s.GNBLogs) && s.HasGNBLog {
		s.GNBLogs = append(make([]GNBLogRecord, 0, gnb), s.GNBLogs...)
	}
	if pkts > cap(s.Packets) {
		s.Packets = append(make([]PacketRecord, 0, pkts), s.Packets...)
	}
	if stats > cap(s.Stats) {
		s.Stats = append(make([]WebRTCStatsRecord, 0, stats), s.Stats...)
	}
	if rrc > cap(s.RRC) {
		s.RRC = append(make([]RRCRecord, 0, rrc), s.RRC...)
	}
}

// OnDCI records a scheduling event.
func (c *Collector) OnDCI(r DCIRecord) { c.Set.DCI = append(c.Set.DCI, r) }

// OnGNBLog records a base-station log line.
func (c *Collector) OnGNBLog(r GNBLogRecord) {
	if c.Set.HasGNBLog {
		c.Set.GNBLogs = append(c.Set.GNBLogs, r)
	}
}

// OnPacket records a delivered packet.
func (c *Collector) OnPacket(r PacketRecord) { c.Set.Packets = append(c.Set.Packets, r) }

// OnStats records a WebRTC stats sample.
func (c *Collector) OnStats(r WebRTCStatsRecord) { c.Set.Stats = append(c.Set.Stats, r) }

// OnRRC records an RRC transition.
func (c *Collector) OnRRC(r RRCRecord) { c.Set.RRC = append(c.Set.RRC, r) }
