package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/domino5g/domino/internal/sim"
)

// The on-disk trace format is JSON Lines: a header line followed by one
// line per record, each tagged with its record type. The format is
// deliberately simple so that captures from real tooling (NR-Scope
// exports, pcap digests, WebRTC stats dumps) can be converted into it
// with a few lines of scripting — this is the ingestion boundary where
// Domino would meet real telemetry.

type jsonLine struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

type jsonHeader struct {
	CellName  string `json:"cell_name"`
	Duration  int64  `json:"duration_us"`
	HasGNBLog bool   `json:"has_gnb_log"`
}

// WriteJSONL serializes the set.
func WriteJSONL(w io.Writer, set *Set) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	write := func(typ string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		return enc.Encode(jsonLine{Type: typ, Data: data})
	}
	if err := write("header", jsonHeader{CellName: set.CellName, Duration: int64(set.Duration), HasGNBLog: set.HasGNBLog}); err != nil {
		return err
	}
	for _, r := range set.DCI {
		if err := write("dci", r); err != nil {
			return err
		}
	}
	for _, r := range set.GNBLogs {
		if err := write("gnb", r); err != nil {
			return err
		}
	}
	for _, r := range set.Packets {
		if err := write("pkt", r); err != nil {
			return err
		}
	}
	for _, r := range set.Stats {
		if err := write("stats", r); err != nil {
			return err
		}
	}
	for _, r := range set.RRC {
		if err := write("rrc", r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL deserializes a set written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Set, error) {
	set := &Set{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		var line jsonLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		switch line.Type {
		case "header":
			var h jsonHeader
			if err := json.Unmarshal(line.Data, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.CellName = h.CellName
			set.Duration = sim.Time(h.Duration)
			set.HasGNBLog = h.HasGNBLog
			sawHeader = true
		case "dci":
			var v DCIRecord
			if err := json.Unmarshal(line.Data, &v); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.DCI = append(set.DCI, v)
		case "gnb":
			var v GNBLogRecord
			if err := json.Unmarshal(line.Data, &v); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.GNBLogs = append(set.GNBLogs, v)
		case "pkt":
			var v PacketRecord
			if err := json.Unmarshal(line.Data, &v); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.Packets = append(set.Packets, v)
		case "stats":
			var v WebRTCStatsRecord
			if err := json.Unmarshal(line.Data, &v); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.Stats = append(set.Stats, v)
		case "rrc":
			var v RRCRecord
			if err := json.Unmarshal(line.Data, &v); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			set.RRC = append(set.RRC, v)
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", lineNo, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing header line")
	}
	set.Sort()
	return set, nil
}
