package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// The on-disk trace format is JSON Lines: a header line followed by one
// line per record, each tagged with its record type. The format is
// deliberately simple so that captures from real tooling (NR-Scope
// exports, pcap digests, WebRTC stats dumps) can be converted into it
// with a few lines of scripting — this is the ingestion boundary where
// Domino would meet real telemetry.
//
// Records are written merged in timestamp order (stable within each
// source, ties broken by source: DCI, gNB, packet, stats, RRC), so a
// written trace is directly consumable by a streaming analyzer with
// O(window) buffering — the file replays like the live session did.

type jsonLine struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

type jsonHeader struct {
	CellName string `json:"cell_name"`
	// Scenario is omitted when empty so pre-scenario traces round-trip
	// byte-identically.
	Scenario  string `json:"scenario,omitempty"`
	Duration  int64  `json:"duration_us"`
	HasGNBLog bool   `json:"has_gnb_log"`
}

// forEachMerged yields every record of the set (header excluded) in
// the canonical emission order shared by WriteJSONL and WriteBinary:
// merged by timestamp, stable within each source, ties broken by
// source order (DCI, gNB, packet, stats, RRC). The yielded Records
// point into the set; the set itself is never mutated.
func forEachMerged(set *Set, fn func(Record) error) error {
	// Per-source stable orderings by the same keys Set.Sort uses,
	// computed on index slices so the set itself stays untouched.
	order := func(n int, at func(i int) sim.Time) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return at(idx[a]) < at(idx[b]) })
		return idx
	}
	sources := []struct {
		idx []int
		at  func(i int) sim.Time
		rec func(i int) Record
	}{
		{order(len(set.DCI), func(i int) sim.Time { return set.DCI[i].At }),
			func(i int) sim.Time { return set.DCI[i].At },
			func(i int) Record { return Record{DCI: &set.DCI[i]} }},
		{order(len(set.GNBLogs), func(i int) sim.Time { return set.GNBLogs[i].At }),
			func(i int) sim.Time { return set.GNBLogs[i].At },
			func(i int) Record { return Record{GNB: &set.GNBLogs[i]} }},
		{order(len(set.Packets), func(i int) sim.Time { return set.Packets[i].SentAt }),
			func(i int) sim.Time { return set.Packets[i].SentAt },
			func(i int) Record { return Record{Packet: &set.Packets[i]} }},
		{order(len(set.Stats), func(i int) sim.Time { return set.Stats[i].At }),
			func(i int) sim.Time { return set.Stats[i].At },
			func(i int) Record { return Record{Stats: &set.Stats[i]} }},
		{order(len(set.RRC), func(i int) sim.Time { return set.RRC[i].At }),
			func(i int) sim.Time { return set.RRC[i].At },
			func(i int) Record { return Record{RRC: &set.RRC[i]} }},
	}
	pos := make([]int, len(sources))
	for {
		best, bestAt := -1, sim.MaxTime
		for s := range sources {
			if pos[s] >= len(sources[s].idx) {
				continue
			}
			at := sources[s].at(sources[s].idx[pos[s]])
			if best == -1 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best == -1 {
			return nil
		}
		if err := fn(sources[best].rec(sources[best].idx[pos[best]])); err != nil {
			return err
		}
		pos[best]++
	}
}

// WriteJSONL serializes the set: a header line, then every record in
// timestamp order. The caller's set is not mutated. Lines are built by
// the hand-rolled append encoder in codec.go — byte-identical to the
// reflection-based encoding this replaced (codec_test.go pins that
// against the encoding/json oracle) with zero allocations per record.
func WriteJSONL(w io.Writer, set *Set) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 1024)
	hdr := Header{CellName: set.CellName, Scenario: set.Scenario, Duration: set.Duration, HasGNBLog: set.HasGNBLog}
	buf = appendHeaderLine(buf[:0], &hdr)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	err := forEachMerged(set, func(rec Record) error {
		var encErr error
		switch {
		case rec.DCI != nil:
			buf = appendDCILine(buf[:0], rec.DCI)
		case rec.GNB != nil:
			buf = appendGNBLine(buf[:0], rec.GNB)
		case rec.Packet != nil:
			buf = appendPacketLine(buf[:0], rec.Packet)
		case rec.Stats != nil:
			buf, encErr = appendStatsLine(buf[:0], rec.Stats)
		case rec.RRC != nil:
			buf = appendRRCLine(buf[:0], rec.RRC)
		}
		if encErr != nil {
			return encErr
		}
		buf = append(buf, '\n')
		_, werr := bw.Write(buf)
		return werr
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadJSONL deserializes a set written by WriteJSONL. It is the batch
// counterpart of NewStreamReader: the whole stream is drained into a
// sorted Set. A stream whose first line is not a header fails
// immediately — a missing header means the input is not a trace, and
// draining gigabytes before saying so helps nobody.
func ReadJSONL(r io.Reader) (*Set, error) {
	return readSet(NewStreamReader(r))
}

// ReadAuto deserializes a set from either trace encoding, sniffing the
// binary magic the way NewAutoStreamReader does. It is the batch entry
// point for callers that accept files in both formats.
func ReadAuto(r io.Reader) (*Set, error) {
	return readSet(NewAutoStreamReader(r))
}

// readSet drains any record stream into a sorted Set, enforcing the
// header-first contract shared by both encodings.
func readSet(sr RecordReader) (*Set, error) {
	set := &Set{}
	first := true
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if rec.Header == nil {
				return nil, fmt.Errorf("trace: missing header line")
			}
		}
		switch {
		case rec.Header != nil:
			set.CellName = rec.Header.CellName
			set.Scenario = rec.Header.Scenario
			set.Duration = rec.Header.Duration
			set.HasGNBLog = rec.Header.HasGNBLog
		case rec.DCI != nil:
			set.DCI = append(set.DCI, *rec.DCI)
		case rec.GNB != nil:
			set.GNBLogs = append(set.GNBLogs, *rec.GNB)
		case rec.Packet != nil:
			set.Packets = append(set.Packets, *rec.Packet)
		case rec.Stats != nil:
			set.Stats = append(set.Stats, *rec.Stats)
		case rec.RRC != nil:
			set.RRC = append(set.RRC, *rec.RRC)
		}
	}
	if _, ok := sr.Header(); !ok {
		return nil, fmt.Errorf("trace: missing header line")
	}
	set.Sort()
	return set, nil
}
