package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// The on-disk trace format is JSON Lines: a header line followed by one
// line per record, each tagged with its record type. The format is
// deliberately simple so that captures from real tooling (NR-Scope
// exports, pcap digests, WebRTC stats dumps) can be converted into it
// with a few lines of scripting — this is the ingestion boundary where
// Domino would meet real telemetry.
//
// Records are written merged in timestamp order (stable within each
// source, ties broken by source: DCI, gNB, packet, stats, RRC), so a
// written trace is directly consumable by a streaming analyzer with
// O(window) buffering — the file replays like the live session did.

type jsonLine struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

type jsonHeader struct {
	CellName string `json:"cell_name"`
	// Scenario is omitted when empty so pre-scenario traces round-trip
	// byte-identically.
	Scenario  string `json:"scenario,omitempty"`
	Duration  int64  `json:"duration_us"`
	HasGNBLog bool   `json:"has_gnb_log"`
}

// WriteJSONL serializes the set: a header line, then every record in
// timestamp order. The caller's set is not mutated. Lines are built by
// the hand-rolled append encoder in codec.go — byte-identical to the
// reflection-based encoding this replaced (codec_test.go pins that
// against the encoding/json oracle) with zero allocations per record.
func WriteJSONL(w io.Writer, set *Set) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 1024)
	flushLine := func(err error) error {
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		_, werr := bw.Write(buf)
		return werr
	}
	hdr := Header{CellName: set.CellName, Scenario: set.Scenario, Duration: set.Duration, HasGNBLog: set.HasGNBLog}
	buf = appendHeaderLine(buf[:0], &hdr)
	if err := flushLine(nil); err != nil {
		return err
	}

	// Per-source stable orderings by the same keys Set.Sort uses,
	// computed on index slices so the set itself stays untouched.
	order := func(n int, at func(i int) sim.Time) []int {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return at(idx[a]) < at(idx[b]) })
		return idx
	}
	sources := []struct {
		typ  string
		idx  []int
		at   func(i int) sim.Time
		emit func(i int) error
	}{
		{"dci", order(len(set.DCI), func(i int) sim.Time { return set.DCI[i].At }),
			func(i int) sim.Time { return set.DCI[i].At },
			func(i int) error { buf = appendDCILine(buf[:0], &set.DCI[i]); return flushLine(nil) }},
		{"gnb", order(len(set.GNBLogs), func(i int) sim.Time { return set.GNBLogs[i].At }),
			func(i int) sim.Time { return set.GNBLogs[i].At },
			func(i int) error { buf = appendGNBLine(buf[:0], &set.GNBLogs[i]); return flushLine(nil) }},
		{"pkt", order(len(set.Packets), func(i int) sim.Time { return set.Packets[i].SentAt }),
			func(i int) sim.Time { return set.Packets[i].SentAt },
			func(i int) error { buf = appendPacketLine(buf[:0], &set.Packets[i]); return flushLine(nil) }},
		{"stats", order(len(set.Stats), func(i int) sim.Time { return set.Stats[i].At }),
			func(i int) sim.Time { return set.Stats[i].At },
			func(i int) error {
				var err error
				buf, err = appendStatsLine(buf[:0], &set.Stats[i])
				return flushLine(err)
			}},
		{"rrc", order(len(set.RRC), func(i int) sim.Time { return set.RRC[i].At }),
			func(i int) sim.Time { return set.RRC[i].At },
			func(i int) error { buf = appendRRCLine(buf[:0], &set.RRC[i]); return flushLine(nil) }},
	}
	pos := make([]int, len(sources))
	for {
		best, bestAt := -1, sim.MaxTime
		for s := range sources {
			if pos[s] >= len(sources[s].idx) {
				continue
			}
			at := sources[s].at(sources[s].idx[pos[s]])
			if best == -1 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best == -1 {
			break
		}
		if err := sources[best].emit(sources[best].idx[pos[best]]); err != nil {
			return err
		}
		pos[best]++
	}
	return bw.Flush()
}

// ReadJSONL deserializes a set written by WriteJSONL. It is the batch
// counterpart of NewStreamReader: the whole stream is drained into a
// sorted Set. A stream whose first line is not a header fails
// immediately — a missing header means the input is not a trace, and
// draining gigabytes before saying so helps nobody.
func ReadJSONL(r io.Reader) (*Set, error) {
	set := &Set{}
	sr := NewStreamReader(r)
	first := true
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if first {
			first = false
			if rec.Header == nil {
				return nil, fmt.Errorf("trace: missing header line")
			}
		}
		switch {
		case rec.Header != nil:
			set.CellName = rec.Header.CellName
			set.Scenario = rec.Header.Scenario
			set.Duration = rec.Header.Duration
			set.HasGNBLog = rec.Header.HasGNBLog
		case rec.DCI != nil:
			set.DCI = append(set.DCI, *rec.DCI)
		case rec.GNB != nil:
			set.GNBLogs = append(set.GNBLogs, *rec.GNB)
		case rec.Packet != nil:
			set.Packets = append(set.Packets, *rec.Packet)
		case rec.Stats != nil:
			set.Stats = append(set.Stats, *rec.Stats)
		case rec.RRC != nil:
			set.RRC = append(set.RRC, *rec.RRC)
		}
	}
	if _, ok := sr.Header(); !ok {
		return nil, fmt.Errorf("trace: missing header line")
	}
	set.Sort()
	return set, nil
}
