package trace

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// benchCorpus builds a synthetic record mix shaped like a real session
// trace (mostly DCI, then packets, stats, gNB logs, RRC) for codec
// benchmarks. The fast/stdjson sub-benchmark pairs keep the before and
// after of the hand-rolled codec side by side in BENCH_scenarios.json.
func benchCorpus() []Record {
	const groups = 500
	recs := make([]Record, 0, groups*9)
	for i := 0; i < groups; i++ {
		at := sim.Time(i) * sim.Millisecond
		for j := 0; j < 4; j++ {
			recs = append(recs, Record{DCI: &DCIRecord{
				At: at + sim.Time(j), Dir: netem.Direction(j % 2), RNTI: 70 + uint32(i%3),
				OwnPRB: 10 + j, OtherPRB: i % 50, MCS: 5 + i%20, TBSBits: 8000 + 13*i,
				UsedBits: 7000 + 11*i, HARQRetx: i%7 == 0, Unused: i%5 == 0,
			}})
		}
		for j := 0; j < 2; j++ {
			recs = append(recs, Record{Packet: &PacketRecord{
				Seq: uint64(i*2 + j), Kind: netem.MediaKind(j), Dir: netem.Direction(j),
				Size: 1200 - j*300, SentAt: at, Arrived: at + 9*sim.Millisecond + sim.Time(i%400),
			}})
		}
		recs = append(recs, Record{Stats: &WebRTCStatsRecord{
			At: at, Local: i%2 == 0, InboundFPS: 29.97, OutboundFPS: 30,
			OutboundHeight: 720, VideoJBDelayMs: 42.5 + float64(i%10),
			TargetBitrateBps: 2.5e6, TrendlineSlope: -1.25e-3, AckedBitrateBps: 2.1e6,
		}})
		recs = append(recs, Record{GNB: &GNBLogRecord{
			At: at, Kind: GNBLogRLCBuffer, Dir: netem.Uplink, BufferBytes: 1000 * (i % 40),
		}})
		if i%100 == 0 {
			recs = append(recs, Record{RRC: &RRCRecord{At: at, Connected: i%200 == 0, RNTI: 70, Cause: "inactivity"}})
		}
	}
	return recs
}

// mallocsDelta runs fn and returns the exact heap-allocation count it
// performed (single-threaded benchmarks only).
func mallocsDelta(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// BenchmarkCodecEncode compares the hand-rolled append encoder against
// the encoding/json path it replaced (rec/s and allocs/rec are the
// gated metrics).
func BenchmarkCodecEncode(b *testing.B) {
	recs := benchCorpus()
	b.Run("fast", func(b *testing.B) {
		buf := make([]byte, 0, 1024)
		b.ReportAllocs()
		b.ResetTimer()
		var allocs uint64
		for i := 0; i < b.N; i++ {
			allocs += mallocsDelta(func() {
				for k := range recs {
					var err error
					buf, err = fastEncodeRecord(buf[:0], recs[k])
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		b.ReportMetric(float64(allocs)/float64(len(recs)*b.N), "allocs/rec")
	})
	b.Run("stdjson", func(b *testing.B) {
		var out bytes.Buffer
		enc := json.NewEncoder(&out)
		b.ReportAllocs()
		b.ResetTimer()
		var allocs uint64
		for i := 0; i < b.N; i++ {
			allocs += mallocsDelta(func() {
				out.Reset()
				for k := range recs {
					data, err := json.Marshal(recordPayload(recs[k]))
					if err != nil {
						b.Fatal(err)
					}
					if err := enc.Encode(jsonLine{Type: recordTypeName(recs[k]), Data: data}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		b.ReportMetric(float64(allocs)/float64(len(recs)*b.N), "allocs/rec")
	})
}

// BenchmarkCodecDecode compares the field-scanning decoder against the
// stdlib double-unmarshal on the same encoded lines.
func BenchmarkCodecDecode(b *testing.B) {
	recs := benchCorpus()
	lines := make([][]byte, len(recs))
	for i := range recs {
		line, err := fastEncodeRecord(nil, recs[i])
		if err != nil {
			b.Fatal(err)
		}
		lines[i] = line
	}
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var allocs uint64
		for i := 0; i < b.N; i++ {
			allocs += mallocsDelta(func() {
				for _, line := range lines {
					if _, ok := fastDecodeLine(line); !ok {
						b.Fatal("fast path rejected canonical line")
					}
				}
			})
		}
		b.ReportMetric(float64(len(lines))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		b.ReportMetric(float64(allocs)/float64(len(lines)*b.N), "allocs/rec")
	})
	b.Run("stdjson", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var allocs uint64
		for i := 0; i < b.N; i++ {
			allocs += mallocsDelta(func() {
				for _, line := range lines {
					if _, err := oracleDecodeLine(line); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.ReportMetric(float64(len(lines))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
		b.ReportMetric(float64(allocs)/float64(len(lines)*b.N), "allocs/rec")
	})
}

// BenchmarkCodecBinaryEncode measures the binary columnar encoder on
// the same corpus as BenchmarkCodecEncode, so the JSONL and binary
// rows sit side by side in BENCH_scenarios.json.
func BenchmarkCodecBinaryEncode(b *testing.B) {
	recs := benchCorpus()
	hdr := Header{CellName: "bench", Duration: sim.Second}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	var allocs, bytesOut uint64
	for i := 0; i < b.N; i++ {
		allocs += mallocsDelta(func() {
			buf.Reset()
			w := NewBinaryWriter(&buf)
			if err := w.WriteHeader(hdr); err != nil {
				b.Fatal(err)
			}
			for k := range recs {
				if err := w.WriteRecord(recs[k]); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
		bytesOut = uint64(buf.Len())
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
	b.ReportMetric(float64(allocs)/float64(len(recs)*b.N), "allocs/rec")
	b.ReportMetric(float64(bytesOut)/float64(len(recs)), "bytes/rec")
}

// BenchmarkCodecBinaryDecode measures block-columnar decode throughput
// over the encoded corpus (the dominod binary ingest hot path).
func BenchmarkCodecBinaryDecode(b *testing.B) {
	recs := benchCorpus()
	hdr := Header{CellName: "bench", Duration: sim.Second}
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteHeader(hdr); err != nil {
		b.Fatal(err)
	}
	for k := range recs {
		if err := w.WriteRecord(recs[k]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	reader := bytes.NewReader(enc)
	b.ReportAllocs()
	b.ResetTimer()
	var allocs uint64
	for i := 0; i < b.N; i++ {
		allocs += mallocsDelta(func() {
			reader.Reset(enc)
			sr := NewBinaryStreamReader(reader)
			n := 0
			for {
				batch, err := sr.ReadBatch(nil)
				if err != nil {
					if err.Error() != "EOF" {
						b.Fatal(err)
					}
					break
				}
				n += len(batch)
			}
			if n != len(recs)+1 {
				b.Fatalf("decoded %d records", n)
			}
		})
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "rec/s")
	b.ReportMetric(float64(allocs)/float64(len(recs)*b.N), "allocs/rec")
}
