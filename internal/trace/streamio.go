package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/domino5g/domino/internal/sim"
)

// Header is the stream metadata carried by a trace's first JSONL line.
// Duration may be zero for open-ended live captures whose length is
// unknown until the stream ends.
type Header struct {
	CellName string
	// Scenario names the generating scenario; empty for plain preset
	// captures, keeping their serialized form unchanged.
	Scenario  string
	Duration  sim.Time
	HasGNBLog bool
}

// Record is one streamed trace line: exactly one field is non-nil. It
// is the unit of ingestion for the streaming analysis subsystem — a
// live collector produces Records in (approximately) timestamp order
// and feeds them to a stream analyzer without ever materializing a
// full Set.
type Record struct {
	Header *Header
	DCI    *DCIRecord
	GNB    *GNBLogRecord
	Packet *PacketRecord
	Stats  *WebRTCStatsRecord
	RRC    *RRCRecord
}

// Time returns the record's primary timestamp (send time for packets)
// and whether it has one; header records carry no timestamp.
func (r Record) Time() (sim.Time, bool) {
	switch {
	case r.DCI != nil:
		return r.DCI.At, true
	case r.GNB != nil:
		return r.GNB.At, true
	case r.Packet != nil:
		return r.Packet.SentAt, true
	case r.Stats != nil:
		return r.Stats.At, true
	case r.RRC != nil:
		return r.RRC.At, true
	}
	return 0, false
}

// IsZero reports whether the record carries nothing.
func (r Record) IsZero() bool {
	return r.Header == nil && r.DCI == nil && r.GNB == nil &&
		r.Packet == nil && r.Stats == nil && r.RRC == nil
}

// StreamReader decodes a JSONL trace incrementally, one record per
// Next call, without buffering the full set. It accepts exactly the
// format WriteJSONL produces and keeps the same per-line error
// reporting as the batch ReadJSONL (which is built on top of it).
type StreamReader struct {
	sc     *bufio.Scanner
	lineNo int
	hdr    *Header
	err    error
}

// NewStreamReader returns a streaming decoder over r.
func NewStreamReader(r io.Reader) *StreamReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &StreamReader{sc: sc}
}

// Header returns the stream header once it has been read.
func (sr *StreamReader) Header() (Header, bool) {
	if sr.hdr == nil {
		return Header{}, false
	}
	return *sr.hdr, true
}

// Line returns the number of lines consumed so far.
func (sr *StreamReader) Line() int { return sr.lineNo }

// Next returns the next record. It returns io.EOF at a clean end of
// stream; any other error is terminal and repeated on later calls.
func (sr *StreamReader) Next() (Record, error) {
	if sr.err != nil {
		return Record{}, sr.err
	}
	if !sr.sc.Scan() {
		if err := sr.sc.Err(); err != nil {
			sr.err = fmt.Errorf("trace: line %d: %w", sr.lineNo+1, err)
		} else {
			sr.err = io.EOF
		}
		return Record{}, sr.err
	}
	sr.lineNo++
	// Fast path: field-scanning decoder for canonically encoded lines
	// (the overwhelming case — WriteJSONL output and dominod ingest).
	// Anything it does not recognize falls through to the reflection
	// path below, which doubles as the differential-test oracle.
	if rec, ok := fastDecodeLine(sr.sc.Bytes()); ok {
		if rec.Header != nil {
			sr.hdr = rec.Header
		}
		return rec, nil
	}
	fail := func(err error) (Record, error) {
		sr.err = fmt.Errorf("trace: line %d: %w", sr.lineNo, err)
		return Record{}, sr.err
	}
	var line jsonLine
	if err := json.Unmarshal(sr.sc.Bytes(), &line); err != nil {
		return fail(err)
	}
	switch line.Type {
	case "header":
		var h jsonHeader
		if err := json.Unmarshal(line.Data, &h); err != nil {
			return fail(err)
		}
		hdr := Header{CellName: h.CellName, Scenario: h.Scenario, Duration: sim.Time(h.Duration), HasGNBLog: h.HasGNBLog}
		sr.hdr = &hdr
		return Record{Header: &hdr}, nil
	case "dci":
		var v DCIRecord
		if err := json.Unmarshal(line.Data, &v); err != nil {
			return fail(err)
		}
		return Record{DCI: &v}, nil
	case "gnb":
		var v GNBLogRecord
		if err := json.Unmarshal(line.Data, &v); err != nil {
			return fail(err)
		}
		return Record{GNB: &v}, nil
	case "pkt":
		var v PacketRecord
		if err := json.Unmarshal(line.Data, &v); err != nil {
			return fail(err)
		}
		return Record{Packet: &v}, nil
	case "stats":
		var v WebRTCStatsRecord
		if err := json.Unmarshal(line.Data, &v); err != nil {
			return fail(err)
		}
		return Record{Stats: &v}, nil
	case "rrc":
		var v RRCRecord
		if err := json.Unmarshal(line.Data, &v); err != nil {
			return fail(err)
		}
		return Record{RRC: &v}, nil
	default:
		return fail(fmt.Errorf("unknown record type %q", line.Type))
	}
}
