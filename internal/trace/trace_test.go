package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

func sampleSet() *Set {
	c := NewCollector("testcell", true)
	c.OnDCI(DCIRecord{At: 2 * sim.Millisecond, Dir: netem.Uplink, RNTI: 7, OwnPRB: 10, MCS: 12, TBSBits: 8000})
	c.OnDCI(DCIRecord{At: sim.Millisecond, Dir: netem.Downlink, RNTI: 7, OwnPRB: 4, OtherPRB: 30, MCS: 9, TBSBits: 3000, HARQRetx: true})
	c.OnGNBLog(GNBLogRecord{At: 3 * sim.Millisecond, Kind: GNBLogRLCRetx, Dir: netem.Uplink, Note: "x"})
	c.OnPacket(PacketRecord{Seq: 1, Kind: netem.KindVideo, Dir: netem.Uplink, Size: 1200, SentAt: 0, Arrived: 30 * sim.Millisecond})
	c.OnPacket(PacketRecord{Seq: 2, Kind: netem.KindRTCP, Dir: netem.Downlink, Size: 100, SentAt: sim.Millisecond, Arrived: 9 * sim.Millisecond})
	c.OnStats(WebRTCStatsRecord{At: 50 * sim.Millisecond, Local: true, InboundFPS: 30, TargetBitrateBps: 1e6})
	c.OnStats(WebRTCStatsRecord{At: 50 * sim.Millisecond, Local: false, InboundFPS: 29, TargetBitrateBps: 2e6})
	c.OnRRC(RRCRecord{At: 10 * sim.Millisecond, Connected: true, RNTI: 9})
	c.Set.Duration = sim.Second
	c.Set.Sort()
	return &c.Set
}

func TestCollectorAndSort(t *testing.T) {
	set := sampleSet()
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set.DCI[0].At > set.DCI[1].At {
		t.Fatal("DCI not sorted")
	}
	counts := set.Counts()
	if counts.DCI != 2 || counts.GNBLog != 1 || counts.Packets != 2 || counts.WebRTC != 2 {
		t.Fatalf("counts = %+v", counts)
	}
}

func TestCollectorGNBLogGating(t *testing.T) {
	c := NewCollector("commercial", false)
	c.OnGNBLog(GNBLogRecord{At: 0, Kind: GNBLogRLCRetx})
	if len(c.Set.GNBLogs) != 0 {
		t.Fatal("commercial collector kept gNB logs")
	}
}

func TestRatePerMinute(t *testing.T) {
	set := sampleSet()
	if got := set.RatePerMinute(120); got != 7200 {
		t.Fatalf("RatePerMinute = %v", got)
	}
	empty := &Set{}
	if empty.RatePerMinute(10) != 0 {
		t.Fatal("zero-duration rate should be 0")
	}
}

func TestPacketDelays(t *testing.T) {
	set := sampleSet()
	ul := set.PacketDelays(netem.Uplink)
	if len(ul) != 1 || ul[0] != 30 {
		t.Fatalf("UL delays = %v", ul)
	}
	rtcp := set.PacketDelays(netem.Downlink, netem.KindRTCP)
	if len(rtcp) != 1 || rtcp[0] != 8 {
		t.Fatalf("RTCP delays = %v", rtcp)
	}
	if n := len(set.PacketDelays(netem.Downlink, netem.KindVideo)); n != 0 {
		t.Fatalf("unexpected DL video packets: %d", n)
	}
}

func TestStatsSide(t *testing.T) {
	set := sampleSet()
	if len(set.StatsSide(true)) != 1 || len(set.StatsSide(false)) != 1 {
		t.Fatal("StatsSide split wrong")
	}
	if !set.StatsSide(true)[0].Local {
		t.Fatal("local filter returned remote record")
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	set := sampleSet()
	set.Packets[0].Arrived = set.Packets[0].SentAt - sim.Millisecond
	if err := set.Validate(); err == nil {
		t.Fatal("negative transit accepted")
	}
	set2 := sampleSet()
	set2.Duration = -1
	if err := set2.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	set := sampleSet()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CellName != set.CellName || got.Duration != set.Duration || got.HasGNBLog != set.HasGNBLog {
		t.Fatal("header mismatch")
	}
	if got.Counts() != set.Counts() {
		t.Fatalf("counts mismatch: %+v vs %+v", got.Counts(), set.Counts())
	}
	if got.DCI[0] != set.DCI[0] || got.Packets[0] != set.Packets[0] {
		t.Fatal("record contents mismatch")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input needs a header")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"mystery","data":{}}` + "\n")); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

func TestGCCStateString(t *testing.T) {
	if GCCNormal.String() != "normal" || GCCOveruse.String() != "overuse" || GCCUnderuse.String() != "underuse" {
		t.Fatal("GCC state strings")
	}
}

func TestPacketRecordDelay(t *testing.T) {
	p := PacketRecord{SentAt: sim.Millisecond, Arrived: 5 * sim.Millisecond}
	if p.Delay() != 4*sim.Millisecond {
		t.Fatal("Delay")
	}
}

func TestCSVExports(t *testing.T) {
	set := sampleSet()
	var pkts, dci, st bytes.Buffer
	if err := WritePacketsCSV(&pkts, set); err != nil {
		t.Fatal(err)
	}
	if err := WriteDCICSV(&dci, set); err != nil {
		t.Fatal(err)
	}
	if err := WriteStatsCSV(&st, set); err != nil {
		t.Fatal(err)
	}
	// Header + one row per record.
	lines := func(b *bytes.Buffer) int { return strings.Count(b.String(), "\n") }
	if lines(&pkts) != 1+len(set.Packets) {
		t.Fatalf("packets CSV has %d lines", lines(&pkts))
	}
	if lines(&dci) != 1+len(set.DCI) {
		t.Fatalf("dci CSV has %d lines", lines(&dci))
	}
	if lines(&st) != 1+len(set.Stats) {
		t.Fatalf("stats CSV has %d lines", lines(&st))
	}
	if !strings.Contains(pkts.String(), "delay_ms") || !strings.Contains(pkts.String(), "video") {
		t.Fatalf("packets CSV malformed:\n%s", pkts.String())
	}
	if !strings.Contains(st.String(), "local") || !strings.Contains(st.String(), "remote") {
		t.Fatal("stats CSV missing sides")
	}
}

type closableBuffer struct{ bytes.Buffer }

func (c *closableBuffer) Close() error { return nil }

func TestCSVBundle(t *testing.T) {
	set := sampleSet()
	got := map[string]*closableBuffer{}
	err := WriteCSVBundle(func(name string) (io.WriteCloser, error) {
		b := &closableBuffer{}
		got[name] = b
		return b, nil
	}, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"packets.csv", "dci.csv", "stats.csv"} {
		if got[name] == nil || got[name].Len() == 0 {
			t.Fatalf("bundle part %s missing or empty", name)
		}
	}
}
