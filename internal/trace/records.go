// Package trace defines the cross-layer telemetry model that Domino
// consumes: the record schemas mirror the paper's six data sources
// (NR-Scope DCI telemetry, gNB logs, packet captures at both clients,
// and the instrumented WebRTC client's 50 ms statistics), plus the
// merged TraceSet container and its CSV/JSONL serialization.
package trace

import (
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// DCIRecord is one decoded scheduling event, as NR-Scope reports:
// per-slot PRB allocations for the experiment UE and aggregate
// other-UE (cross-traffic) allocations, the selected MCS, and the
// transport block size.
type DCIRecord struct {
	At        sim.Time
	Dir       netem.Direction
	RNTI      uint32
	OwnPRB    int
	OtherPRB  int
	MCS       int
	TBSBits   int
	UsedBits  int
	HARQRetx  bool // this TB is a HARQ retransmission
	RLCRetx   bool // this TB carries RLC-retransmitted segments
	Proactive bool // granted without a BSR
	Unused    bool // grant went (partly) unfilled
}

// GNBLogKind classifies gNB log entries (available on private cells
// only, matching the paper: commercial cells expose no RLC info).
type GNBLogKind int

// gNB log entry kinds.
const (
	GNBLogRLCBuffer GNBLogKind = iota
	GNBLogRLCRetx
	GNBLogRRC
)

// GNBLogRecord is one base-station log line.
type GNBLogRecord struct {
	At   sim.Time
	Kind GNBLogKind
	Dir  netem.Direction
	// BufferBytes is the RLC buffer occupancy (GNBLogRLCBuffer).
	BufferBytes int
	// RNTI is the UE identity after an RRC transition (GNBLogRRC).
	RNTI uint32
	// Note is a free-form detail field.
	Note string
}

// PacketRecord is one captured datagram with both endpoint timestamps,
// as produced by the paper's client-side pcaps (NTP-synchronized).
type PacketRecord struct {
	Seq     uint64
	Kind    netem.MediaKind
	Dir     netem.Direction
	Size    int
	SentAt  sim.Time
	Arrived sim.Time
}

// Delay returns the one-way delay.
func (p PacketRecord) Delay() sim.Time { return p.Arrived - p.SentAt }

// GCCState is the congestion controller's bandwidth-usage assessment.
type GCCState int

// GCC network states.
const (
	GCCNormal GCCState = iota
	GCCOveruse
	GCCUnderuse
)

// String implements fmt.Stringer.
func (s GCCState) String() string {
	switch s {
	case GCCOveruse:
		return "overuse"
	case GCCUnderuse:
		return "underuse"
	default:
		return "normal"
	}
}

// WebRTCStatsRecord is one 50 ms sample from the instrumented client:
// playback quality, jitter-buffer state, and GCC internals. Fields
// cover every variable the paper's event conditions (Table 5) test.
type WebRTCStatsRecord struct {
	At sim.Time
	// Side identifies the reporting client: "local" is the cellular
	// client, "remote" the wired one.
	Local bool

	// Playback / media.
	InboundFPS       float64
	OutboundFPS      float64
	OutboundHeight   int // resolution (lines): 180/360/540/720/1080
	InboundHeight    int
	VideoJBDelayMs   float64 // current video jitter-buffer delay
	AudioJBDelayMs   float64
	MinJBDelayMs     float64 // minimum (target) jitter-buffer delay
	FrozenNow        bool
	FreezeTotalMs    float64
	ConcealedSamples uint64
	TotalSamples     uint64

	// GCC internals.
	TargetBitrateBps   float64
	PushbackRateBps    float64
	OutstandingBytes   int
	CongestionWindow   int
	GCCNetState        GCCState
	TrendlineSlope     float64
	TrendlineThreshold float64
	AckedBitrateBps    float64
}

// RRCRecord is one RRC state transition as seen in telemetry.
type RRCRecord struct {
	At        sim.Time
	Connected bool
	RNTI      uint32
	Cause     string
}
