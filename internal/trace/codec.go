package trace

import (
	"math"
	"strconv"
	"unicode/utf8"
	"unsafe"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// This file is the hand-rolled JSONL codec for the trace hot path.
//
// Encoder: append-based writers that produce byte-identical output to
// the reflection path WriteJSONL used before (json.Marshal of each
// record wrapped in the {"type","data"} envelope, HTML-escaped), so
// golden traces are unchanged while encoding drops from ~3 allocations
// per record to zero and decoding from ~13 to one (the record struct).
//
// Decoder: a field-scanning parser for the exact shape the encoder
// emits (compact envelope, known field names, JSON-conformant scalars).
// It accepts a strict subset of what encoding/json accepts; on any
// deviation — unknown or case-folded field names, escaped strings,
// nulls, exotic numbers — the caller falls back to the stdlib path,
// which therefore stays both the semantic oracle (differential tests in
// codec_test.go pin fast == stdlib on everything the fast path accepts)
// and the handler of foreign telemetry.

const hexDigits = "0123456789abcdef"

// jsonSafe marks ASCII bytes that encoding/json (with HTML escaping,
// the json.Marshal default) copies through unescaped.
var jsonSafe = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		jsonSafe[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		jsonSafe[b] = false
	}
}

// appendJSONString appends s as a JSON string literal exactly as
// json.Marshal renders it (HTML escaping on, invalid UTF-8 replaced,
// U+2028/U+2029 escaped).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes other than \n, \r, \t, and the
				// HTML-sensitive <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as json.Marshal renders float64
// values. It reports false for NaN and infinities, which JSON cannot
// represent (json.Marshal errors on them).
func appendJSONFloat(dst []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim the exponent's leading zero ("e-09" → "e-9"), as
		// encoding/json does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, true
}

// encBuf accumulates one encoded line; float errors are latched so the
// append chains stay branch-light.
type encBuf struct {
	b      []byte
	badNum bool
}

func (e *encBuf) raw(s string) { e.b = append(e.b, s...) }
func (e *encBuf) i64(v int64)  { e.b = strconv.AppendInt(e.b, v, 10) }
func (e *encBuf) u64(v uint64) { e.b = strconv.AppendUint(e.b, v, 10) }
func (e *encBuf) str(s string) { e.b = appendJSONString(e.b, s) }
func (e *encBuf) boolv(v bool) {
	if v {
		e.b = append(e.b, "true"...)
	} else {
		e.b = append(e.b, "false"...)
	}
}
func (e *encBuf) f64(v float64) {
	var ok bool
	e.b, ok = appendJSONFloat(e.b, v)
	if !ok {
		e.badNum = true
	}
}

// errUnsupportedFloat mirrors json.Marshal's refusal of NaN/Inf.
type errUnsupportedFloat struct{}

func (errUnsupportedFloat) Error() string {
	return "trace: unsupported float value (NaN or Inf) in record"
}

// appendHeaderLine appends the encoded header envelope (no newline).
func appendHeaderLine(dst []byte, h *Header) []byte {
	e := encBuf{b: dst}
	e.raw(`{"type":"header","data":{"cell_name":`)
	e.str(h.CellName)
	if h.Scenario != "" { // omitempty, matching jsonHeader
		e.raw(`,"scenario":`)
		e.str(h.Scenario)
	}
	e.raw(`,"duration_us":`)
	e.i64(int64(h.Duration))
	e.raw(`,"has_gnb_log":`)
	e.boolv(h.HasGNBLog)
	e.raw(`}}`)
	return e.b
}

// appendDCILine appends the encoded DCI record envelope (no newline).
func appendDCILine(dst []byte, r *DCIRecord) []byte {
	e := encBuf{b: dst}
	e.raw(`{"type":"dci","data":{"At":`)
	e.i64(int64(r.At))
	e.raw(`,"Dir":`)
	e.i64(int64(r.Dir))
	e.raw(`,"RNTI":`)
	e.u64(uint64(r.RNTI))
	e.raw(`,"OwnPRB":`)
	e.i64(int64(r.OwnPRB))
	e.raw(`,"OtherPRB":`)
	e.i64(int64(r.OtherPRB))
	e.raw(`,"MCS":`)
	e.i64(int64(r.MCS))
	e.raw(`,"TBSBits":`)
	e.i64(int64(r.TBSBits))
	e.raw(`,"UsedBits":`)
	e.i64(int64(r.UsedBits))
	e.raw(`,"HARQRetx":`)
	e.boolv(r.HARQRetx)
	e.raw(`,"RLCRetx":`)
	e.boolv(r.RLCRetx)
	e.raw(`,"Proactive":`)
	e.boolv(r.Proactive)
	e.raw(`,"Unused":`)
	e.boolv(r.Unused)
	e.raw(`}}`)
	return e.b
}

// appendGNBLine appends the encoded gNB-log record envelope.
func appendGNBLine(dst []byte, r *GNBLogRecord) []byte {
	e := encBuf{b: dst}
	e.raw(`{"type":"gnb","data":{"At":`)
	e.i64(int64(r.At))
	e.raw(`,"Kind":`)
	e.i64(int64(r.Kind))
	e.raw(`,"Dir":`)
	e.i64(int64(r.Dir))
	e.raw(`,"BufferBytes":`)
	e.i64(int64(r.BufferBytes))
	e.raw(`,"RNTI":`)
	e.u64(uint64(r.RNTI))
	e.raw(`,"Note":`)
	e.str(r.Note)
	e.raw(`}}`)
	return e.b
}

// appendPacketLine appends the encoded packet record envelope.
func appendPacketLine(dst []byte, r *PacketRecord) []byte {
	e := encBuf{b: dst}
	e.raw(`{"type":"pkt","data":{"Seq":`)
	e.u64(r.Seq)
	e.raw(`,"Kind":`)
	e.i64(int64(r.Kind))
	e.raw(`,"Dir":`)
	e.i64(int64(r.Dir))
	e.raw(`,"Size":`)
	e.i64(int64(r.Size))
	e.raw(`,"SentAt":`)
	e.i64(int64(r.SentAt))
	e.raw(`,"Arrived":`)
	e.i64(int64(r.Arrived))
	e.raw(`}}`)
	return e.b
}

// appendStatsLine appends the encoded WebRTC stats record envelope. The
// error mirrors json.Marshal's NaN/Inf rejection.
func appendStatsLine(dst []byte, r *WebRTCStatsRecord) ([]byte, error) {
	e := encBuf{b: dst}
	e.raw(`{"type":"stats","data":{"At":`)
	e.i64(int64(r.At))
	e.raw(`,"Local":`)
	e.boolv(r.Local)
	e.raw(`,"InboundFPS":`)
	e.f64(r.InboundFPS)
	e.raw(`,"OutboundFPS":`)
	e.f64(r.OutboundFPS)
	e.raw(`,"OutboundHeight":`)
	e.i64(int64(r.OutboundHeight))
	e.raw(`,"InboundHeight":`)
	e.i64(int64(r.InboundHeight))
	e.raw(`,"VideoJBDelayMs":`)
	e.f64(r.VideoJBDelayMs)
	e.raw(`,"AudioJBDelayMs":`)
	e.f64(r.AudioJBDelayMs)
	e.raw(`,"MinJBDelayMs":`)
	e.f64(r.MinJBDelayMs)
	e.raw(`,"FrozenNow":`)
	e.boolv(r.FrozenNow)
	e.raw(`,"FreezeTotalMs":`)
	e.f64(r.FreezeTotalMs)
	e.raw(`,"ConcealedSamples":`)
	e.u64(r.ConcealedSamples)
	e.raw(`,"TotalSamples":`)
	e.u64(r.TotalSamples)
	e.raw(`,"TargetBitrateBps":`)
	e.f64(r.TargetBitrateBps)
	e.raw(`,"PushbackRateBps":`)
	e.f64(r.PushbackRateBps)
	e.raw(`,"OutstandingBytes":`)
	e.i64(int64(r.OutstandingBytes))
	e.raw(`,"CongestionWindow":`)
	e.i64(int64(r.CongestionWindow))
	e.raw(`,"GCCNetState":`)
	e.i64(int64(r.GCCNetState))
	e.raw(`,"TrendlineSlope":`)
	e.f64(r.TrendlineSlope)
	e.raw(`,"TrendlineThreshold":`)
	e.f64(r.TrendlineThreshold)
	e.raw(`,"AckedBitrateBps":`)
	e.f64(r.AckedBitrateBps)
	e.raw(`}}`)
	if e.badNum {
		return dst, errUnsupportedFloat{}
	}
	return e.b, nil
}

// appendRRCLine appends the encoded RRC record envelope.
func appendRRCLine(dst []byte, r *RRCRecord) []byte {
	e := encBuf{b: dst}
	e.raw(`{"type":"rrc","data":{"At":`)
	e.i64(int64(r.At))
	e.raw(`,"Connected":`)
	e.boolv(r.Connected)
	e.raw(`,"RNTI":`)
	e.u64(uint64(r.RNTI))
	e.raw(`,"Cause":`)
	e.str(r.Cause)
	e.raw(`}}`)
	return e.b
}

// --- Decoder fast path ---

// lineParser scans one JSONL line. Any deviation from the fast-path
// subset clears ok; the caller then re-decodes the line through
// encoding/json, so bailing out is never an error by itself.
type lineParser struct {
	buf []byte
	pos int
	ok  bool
}

func (p *lineParser) skipWS() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *lineParser) expect(c byte) {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return
	}
	p.ok = false
}

// key scans a JSON object key and returns its raw bytes. Keys with
// escapes are not fast-path material.
func (p *lineParser) key() []byte {
	if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
		p.ok = false
		return nil
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case c == '"':
			k := p.buf[start:p.pos]
			p.pos++
			return k
		case c == '\\' || c < 0x20:
			p.ok = false
			return nil
		default:
			p.pos++
		}
	}
	p.ok = false
	return nil
}

// stringValue scans a JSON string with no escapes and valid UTF-8;
// anything else bails to the stdlib path (which handles unescaping and
// replacement exactly once, in one place).
func (p *lineParser) stringValue() string {
	if p.pos >= len(p.buf) || p.buf[p.pos] != '"' {
		p.ok = false
		return ""
	}
	p.pos++
	start := p.pos
	ascii := true
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case c == '"':
			raw := p.buf[start:p.pos]
			p.pos++
			if !ascii && !utf8.Valid(raw) {
				// encoding/json replaces invalid UTF-8 with U+FFFD;
				// let it.
				p.ok = false
				return ""
			}
			return string(raw)
		case c == '\\' || c < 0x20:
			p.ok = false
			return ""
		default:
			if c >= utf8.RuneSelf {
				ascii = false
			}
			p.pos++
		}
	}
	p.ok = false
	return ""
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// tokString views a scanned token as a string without copying, for the
// strconv parse calls only — they do not retain their argument, and the
// backing line buffer outlives the call.
func tokString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// numberToken scans the contiguous number-shaped token at the cursor
// and validates it against the JSON number grammar (encoding/json
// rejects "01", "+1", "1.", etc. — so must we, or the fast path would
// accept inputs the oracle rejects).
func (p *lineParser) numberToken() []byte {
	start := p.pos
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case isDigit(c), c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.pos++
		default:
			goto done
		}
	}
done:
	tok := p.buf[start:p.pos]
	if !validJSONNumber(tok) {
		p.ok = false
		return nil
	}
	return tok
}

func validJSONNumber(b []byte) bool {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		i++
		for i < len(b) && isDigit(b[i]) {
			i++
		}
	default:
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || !isDigit(b[i]) {
			return false
		}
		for i < len(b) && isDigit(b[i]) {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || !isDigit(b[i]) {
			return false
		}
		for i < len(b) && isDigit(b[i]) {
			i++
		}
	}
	return i == len(b)
}

// i64 parses an integer value. Fractional or exponent forms bail out:
// encoding/json errors on them for integer fields, and the fallback
// produces that error.
func (p *lineParser) i64() int64 {
	tok := p.numberToken()
	if !p.ok {
		return 0
	}
	for _, c := range tok {
		if c == '.' || c == 'e' || c == 'E' {
			p.ok = false
			return 0
		}
	}
	v, err := strconv.ParseInt(tokString(tok), 10, 64)
	if err != nil {
		p.ok = false
		return 0
	}
	return v
}

func (p *lineParser) u64(bits int) uint64 {
	tok := p.numberToken()
	if !p.ok {
		return 0
	}
	for _, c := range tok {
		if c == '.' || c == 'e' || c == 'E' || c == '-' {
			p.ok = false
			return 0
		}
	}
	v, err := strconv.ParseUint(tokString(tok), 10, bits)
	if err != nil {
		p.ok = false
		return 0
	}
	return v
}

func (p *lineParser) f64() float64 {
	tok := p.numberToken()
	if !p.ok {
		return 0
	}
	v, err := strconv.ParseFloat(tokString(tok), 64)
	if err != nil {
		p.ok = false
		return 0
	}
	return v
}

func (p *lineParser) boolValue() bool {
	if len(p.buf)-p.pos >= 4 && string(p.buf[p.pos:p.pos+4]) == "true" {
		p.pos += 4
		return true
	}
	if len(p.buf)-p.pos >= 5 && string(p.buf[p.pos:p.pos+5]) == "false" {
		p.pos += 5
		return false
	}
	p.ok = false
	return false
}

// beginObject consumes the value's opening brace. It returns false for
// an empty object (already fully consumed) or a parse failure.
func (p *lineParser) beginObject() bool {
	p.skipWS()
	p.expect('{')
	p.skipWS()
	if p.ok && p.pos < len(p.buf) && p.buf[p.pos] == '}' {
		p.pos++
		return false
	}
	return p.ok
}

// fieldKey parses `"key":`, leaving the cursor at the value. The
// begin/key/end helpers keep the per-type decoders closure-free — a
// callback-driven scan would cost one closure allocation per record.
func (p *lineParser) fieldKey() []byte {
	k := p.key()
	if !p.ok {
		return nil
	}
	p.skipWS()
	p.expect(':')
	p.skipWS()
	return k
}

// endField consumes the separator after a value: false means another
// field follows, true means the object closed (or the line is not
// fast-path material, flagged in p.ok).
func (p *lineParser) endField() bool {
	p.skipWS()
	if p.pos >= len(p.buf) {
		p.ok = false
		return true
	}
	switch p.buf[p.pos] {
	case ',':
		p.pos++
		p.skipWS()
		return false
	case '}':
		p.pos++
		return true
	default:
		p.ok = false
		return true
	}
}

func decodeHeaderData(p *lineParser) *Header {
	h := &Header{}
	if !p.beginObject() {
		return h
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "cell_name":
			h.CellName = p.stringValue()
		case "scenario":
			h.Scenario = p.stringValue()
		case "duration_us":
			h.Duration = sim.Time(p.i64())
		case "has_gnb_log":
			h.HasGNBLog = p.boolValue()
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return h
}

func decodeDCIData(p *lineParser) *DCIRecord {
	v := &DCIRecord{}
	if !p.beginObject() {
		return v
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "At":
			v.At = sim.Time(p.i64())
		case "Dir":
			v.Dir = netem.Direction(p.i64())
		case "RNTI":
			v.RNTI = uint32(p.u64(32))
		case "OwnPRB":
			v.OwnPRB = int(p.i64())
		case "OtherPRB":
			v.OtherPRB = int(p.i64())
		case "MCS":
			v.MCS = int(p.i64())
		case "TBSBits":
			v.TBSBits = int(p.i64())
		case "UsedBits":
			v.UsedBits = int(p.i64())
		case "HARQRetx":
			v.HARQRetx = p.boolValue()
		case "RLCRetx":
			v.RLCRetx = p.boolValue()
		case "Proactive":
			v.Proactive = p.boolValue()
		case "Unused":
			v.Unused = p.boolValue()
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return v
}

func decodeGNBData(p *lineParser) *GNBLogRecord {
	v := &GNBLogRecord{}
	if !p.beginObject() {
		return v
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "At":
			v.At = sim.Time(p.i64())
		case "Kind":
			v.Kind = GNBLogKind(p.i64())
		case "Dir":
			v.Dir = netem.Direction(p.i64())
		case "BufferBytes":
			v.BufferBytes = int(p.i64())
		case "RNTI":
			v.RNTI = uint32(p.u64(32))
		case "Note":
			v.Note = p.stringValue()
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return v
}

func decodePacketData(p *lineParser) *PacketRecord {
	v := &PacketRecord{}
	if !p.beginObject() {
		return v
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "Seq":
			v.Seq = p.u64(64)
		case "Kind":
			v.Kind = netem.MediaKind(p.i64())
		case "Dir":
			v.Dir = netem.Direction(p.i64())
		case "Size":
			v.Size = int(p.i64())
		case "SentAt":
			v.SentAt = sim.Time(p.i64())
		case "Arrived":
			v.Arrived = sim.Time(p.i64())
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return v
}

func decodeStatsData(p *lineParser) *WebRTCStatsRecord {
	v := &WebRTCStatsRecord{}
	if !p.beginObject() {
		return v
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "At":
			v.At = sim.Time(p.i64())
		case "Local":
			v.Local = p.boolValue()
		case "InboundFPS":
			v.InboundFPS = p.f64()
		case "OutboundFPS":
			v.OutboundFPS = p.f64()
		case "OutboundHeight":
			v.OutboundHeight = int(p.i64())
		case "InboundHeight":
			v.InboundHeight = int(p.i64())
		case "VideoJBDelayMs":
			v.VideoJBDelayMs = p.f64()
		case "AudioJBDelayMs":
			v.AudioJBDelayMs = p.f64()
		case "MinJBDelayMs":
			v.MinJBDelayMs = p.f64()
		case "FrozenNow":
			v.FrozenNow = p.boolValue()
		case "FreezeTotalMs":
			v.FreezeTotalMs = p.f64()
		case "ConcealedSamples":
			v.ConcealedSamples = p.u64(64)
		case "TotalSamples":
			v.TotalSamples = p.u64(64)
		case "TargetBitrateBps":
			v.TargetBitrateBps = p.f64()
		case "PushbackRateBps":
			v.PushbackRateBps = p.f64()
		case "OutstandingBytes":
			v.OutstandingBytes = int(p.i64())
		case "CongestionWindow":
			v.CongestionWindow = int(p.i64())
		case "GCCNetState":
			v.GCCNetState = GCCState(p.i64())
		case "TrendlineSlope":
			v.TrendlineSlope = p.f64()
		case "TrendlineThreshold":
			v.TrendlineThreshold = p.f64()
		case "AckedBitrateBps":
			v.AckedBitrateBps = p.f64()
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return v
}

func decodeRRCData(p *lineParser) *RRCRecord {
	v := &RRCRecord{}
	if !p.beginObject() {
		return v
	}
	for p.ok {
		switch string(p.fieldKey()) {
		case "At":
			v.At = sim.Time(p.i64())
		case "Connected":
			v.Connected = p.boolValue()
		case "RNTI":
			v.RNTI = uint32(p.u64(32))
		case "Cause":
			v.Cause = p.stringValue()
		default:
			p.ok = false
		}
		if !p.ok || p.endField() {
			break
		}
	}
	return v
}

// fastDecodeLine decodes one envelope line on the fast path. ok=false
// means only "not fast-path material": the caller must re-decode the
// line through the encoding/json oracle, which yields the identical
// record for valid inputs and the authoritative error for invalid ones.
func fastDecodeLine(line []byte) (Record, bool) {
	p := lineParser{buf: line, ok: true}
	p.skipWS()
	p.expect('{')
	p.skipWS()
	if k := p.key(); !p.ok || string(k) != "type" {
		return Record{}, false
	}
	p.skipWS()
	p.expect(':')
	p.skipWS()
	// The type tag is scanned as raw bytes (key() is exactly a
	// no-escape string scan), so dispatching allocates nothing.
	typ := p.key()
	p.skipWS()
	p.expect(',')
	p.skipWS()
	if k := p.key(); !p.ok || string(k) != "data" {
		return Record{}, false
	}
	p.skipWS()
	p.expect(':')
	if !p.ok {
		return Record{}, false
	}
	var rec Record
	switch string(typ) {
	case "header":
		rec.Header = decodeHeaderData(&p)
	case "dci":
		rec.DCI = decodeDCIData(&p)
	case "gnb":
		rec.GNB = decodeGNBData(&p)
	case "pkt":
		rec.Packet = decodePacketData(&p)
	case "stats":
		rec.Stats = decodeStatsData(&p)
	case "rrc":
		rec.RRC = decodeRRCData(&p)
	default:
		return Record{}, false
	}
	p.skipWS()
	p.expect('}')
	p.skipWS()
	if !p.ok || p.pos != len(p.buf) {
		return Record{}, false
	}
	return rec, true
}
