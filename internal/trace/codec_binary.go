package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// Binary columnar trace format ("DMNTRCB1").
//
// JSONL decode is ~1 alloc/record but still byte-scans text for every
// sample; at fleet ingest volume the codec is the ceiling. This file
// implements the compact binary alternative. JSONL remains the
// compatibility path and the differential oracle: WriteBinary emits
// records in exactly WriteJSONL's merged order (forEachMerged), so the
// record stream decoded from either encoding of the same set is
// identical — codec_binary_test.go and the root-package scenario
// differential pin that, mirroring PR 4's fast-vs-stdlib pattern.
//
// Layout (all integers varint-encoded unless noted):
//
//	stream := magic frame*
//	magic  := "DMNTRCB1"                  (8 bytes, version in last byte)
//	frame  := kind(1B) payloadLen(uvarint) payload
//
// Frame kinds:
//
//	dict   (1): count, then count x (len, bytes). Strings append to the
//	            decoder's dictionary; IDs are assigned in order. The
//	            first dict frame interns the five series names followed
//	            by the cell (and scenario) name, so block tags are
//	            self-describing dictionary references.
//	header (2): cellID, scenarioID+1 (0 = none), duration (zigzag),
//	            flags byte (bit0 = HasGNBLog).
//	block  (3): n, then n tag bytes (dict IDs of series names, in the
//	            global merged record order), then for each series
//	            present, its column section (field-major: all
//	            timestamps, then all of field 2, ...). Timestamps are
//	            zigzag deltas against the previous record of the same
//	            series, carried across blocks. Ints are zigzag varints,
//	            unsigned fields uvarints, floats 8-byte little-endian
//	            IEEE 754 bits, and per-record bools are packed into one
//	            flags byte per record. Strings (gNB notes, RRC causes)
//	            are dictionary references; new strings are emitted in a
//	            dict frame immediately before the block that first uses
//	            them.
//	end    (4): total record count (header excluded) — lets the reader
//	            fail fast on truncation instead of silently returning a
//	            short stream.
const (
	binaryMagic = "DMNTRCB1"

	frameDict   = 1
	frameHeader = 2
	frameBlock  = 3
	frameEnd    = 4

	// defaultBinaryBlockSize is the number of records per block: large
	// enough to amortize per-block overheads (frame parse, column
	// setup, one batch push downstream), small enough that a streaming
	// consumer's watermark lag stays a fraction of a window.
	defaultBinaryBlockSize = 512

	// maxBinaryFramePayload bounds a single frame so a corrupt length
	// prefix cannot make the reader attempt a multi-GB allocation.
	maxBinaryFramePayload = 1 << 27
)

// Series indices; also the dictionary IDs of the series names because
// the writer interns seriesNames first.
const (
	seriesDCI = iota
	seriesGNB
	seriesPkt
	seriesStats
	seriesRRC
	numSeries
)

var seriesNames = [numSeries]string{"dci", "gnb", "pkt", "stats", "rrc"}

// BinaryWriter encodes a trace stream into the binary columnar format:
// a header first, then records in timestamp order, Close to flush the
// final partial block and the end frame. The zero value is not usable;
// use NewBinaryWriter.
type BinaryWriter struct {
	w      *bufio.Writer
	dict   map[string]uint64
	nextID uint64
	fresh  []string // strings interned since the last dict frame

	blockSize int
	pend      []Record
	lastAt    [numSeries]sim.Time
	total     uint64

	wroteHeader bool
	closed      bool
	scratch     []byte // frame payload build buffer, reused
	err         error
}

// NewBinaryWriter returns a streaming binary encoder over w. The
// caller must call Close to complete the stream.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriterSize(w, 1<<16)
	}
	return &BinaryWriter{
		w:         bw,
		dict:      make(map[string]uint64, 16),
		blockSize: defaultBinaryBlockSize,
		pend:      make([]Record, 0, defaultBinaryBlockSize),
		scratch:   make([]byte, 0, 1<<14),
	}
}

func (w *BinaryWriter) intern(s string) uint64 {
	if id, ok := w.dict[s]; ok {
		return id
	}
	id := w.nextID
	w.nextID++
	w.dict[s] = id
	w.fresh = append(w.fresh, s)
	return id
}

// flushDict emits a dict frame for strings interned since the last one.
func (w *BinaryWriter) flushDict() {
	if len(w.fresh) == 0 {
		return
	}
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(len(w.fresh)))
	for _, s := range w.fresh {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	w.fresh = w.fresh[:0]
	w.emitFrame(frameDict, b)
}

func (w *BinaryWriter) emitFrame(kind byte, payload []byte) {
	if w.err != nil {
		return
	}
	// payload aliases w.scratch; keep it alive across the writes.
	w.scratch = payload[:0]
	if err := w.w.WriteByte(kind); err != nil {
		w.err = err
		return
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	if _, err := w.w.Write(lenBuf[:n]); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = err
	}
}

// WriteHeader emits the dictionary bootstrap and header frames. It
// must be called exactly once, before any record.
func (w *BinaryWriter) WriteHeader(h Header) error {
	if w.err != nil {
		return w.err
	}
	if w.wroteHeader {
		w.err = fmt.Errorf("trace: binary: duplicate header")
		return w.err
	}
	w.wroteHeader = true
	if _, err := w.w.WriteString(binaryMagic); err != nil {
		w.err = err
		return w.err
	}
	for _, s := range seriesNames {
		w.intern(s)
	}
	cellID := w.intern(h.CellName)
	scenRef := uint64(0)
	if h.Scenario != "" {
		scenRef = w.intern(h.Scenario) + 1
	}
	w.flushDict()
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, cellID)
	b = binary.AppendUvarint(b, scenRef)
	b = binary.AppendVarint(b, int64(h.Duration))
	var flags byte
	if h.HasGNBLog {
		flags |= 1
	}
	b = append(b, flags)
	w.emitFrame(frameHeader, b)
	return w.err
}

// WriteRecord appends one record to the stream. A Record carrying a
// Header is routed to WriteHeader; all other records require the
// header to have been written first. Records are expected in the same
// merged timestamp order WriteJSONL emits — the format stores
// per-series time deltas, so any order round-trips, but only sorted
// input keeps the encoding compact and the stream replayable.
func (w *BinaryWriter) WriteRecord(rec Record) error {
	if w.err != nil {
		return w.err
	}
	if rec.Header != nil {
		return w.WriteHeader(*rec.Header)
	}
	if !w.wroteHeader {
		w.err = fmt.Errorf("trace: binary: record before header")
		return w.err
	}
	if rec.IsZero() {
		w.err = fmt.Errorf("trace: binary: empty record")
		return w.err
	}
	w.pend = append(w.pend, rec)
	if len(w.pend) >= w.blockSize {
		w.flushBlock()
	}
	return w.err
}

// Close flushes the final partial block, the end frame, and the
// underlying buffered writer. The writer is unusable afterwards.
func (w *BinaryWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if !w.wroteHeader {
		w.err = fmt.Errorf("trace: binary: close before header")
		return w.err
	}
	w.closed = true
	w.flushBlock()
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, w.total)
	w.emitFrame(frameEnd, b)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return w.err
}

func appendFloatCol(b []byte, recs []Record, get func(Record) float64) []byte {
	for _, r := range recs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(get(r)))
	}
	return b
}

// flushBlock encodes the pending records as (optionally) a dict frame
// followed by one block frame.
func (w *BinaryWriter) flushBlock() {
	if w.err != nil || len(w.pend) == 0 {
		return
	}
	// First pass: intern strings so the dict frame precedes the block,
	// and split the block into per-series record lists.
	var bySeries [numSeries][]Record
	for _, rec := range w.pend {
		switch {
		case rec.DCI != nil:
			bySeries[seriesDCI] = append(bySeries[seriesDCI], rec)
		case rec.GNB != nil:
			w.intern(rec.GNB.Note)
			bySeries[seriesGNB] = append(bySeries[seriesGNB], rec)
		case rec.Packet != nil:
			bySeries[seriesPkt] = append(bySeries[seriesPkt], rec)
		case rec.Stats != nil:
			bySeries[seriesStats] = append(bySeries[seriesStats], rec)
		case rec.RRC != nil:
			w.intern(rec.RRC.Cause)
			bySeries[seriesRRC] = append(bySeries[seriesRRC], rec)
		}
	}
	w.flushDict()

	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(len(w.pend)))
	for _, rec := range w.pend {
		switch {
		case rec.DCI != nil:
			b = append(b, seriesDCI)
		case rec.GNB != nil:
			b = append(b, seriesGNB)
		case rec.Packet != nil:
			b = append(b, seriesPkt)
		case rec.Stats != nil:
			b = append(b, seriesStats)
		case rec.RRC != nil:
			b = append(b, seriesRRC)
		}
	}

	if recs := bySeries[seriesDCI]; len(recs) > 0 {
		last := w.lastAt[seriesDCI]
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.At-last))
			last = r.DCI.At
		}
		w.lastAt[seriesDCI] = last
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.Dir))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, uint64(r.DCI.RNTI))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.OwnPRB))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.OtherPRB))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.MCS))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.TBSBits))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.DCI.UsedBits))
		}
		for _, r := range recs {
			var f byte
			if r.DCI.HARQRetx {
				f |= 1
			}
			if r.DCI.RLCRetx {
				f |= 2
			}
			if r.DCI.Proactive {
				f |= 4
			}
			if r.DCI.Unused {
				f |= 8
			}
			b = append(b, f)
		}
	}
	if recs := bySeries[seriesGNB]; len(recs) > 0 {
		last := w.lastAt[seriesGNB]
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.GNB.At-last))
			last = r.GNB.At
		}
		w.lastAt[seriesGNB] = last
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.GNB.Kind))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.GNB.Dir))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.GNB.BufferBytes))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, uint64(r.GNB.RNTI))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, w.dict[r.GNB.Note])
		}
	}
	if recs := bySeries[seriesPkt]; len(recs) > 0 {
		last := w.lastAt[seriesPkt]
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Packet.SentAt-last))
			last = r.Packet.SentAt
		}
		w.lastAt[seriesPkt] = last
		// Arrival is encoded relative to the same packet's send time:
		// the one-way delay is small and positive in real traces.
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Packet.Arrived-r.Packet.SentAt))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, r.Packet.Seq)
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Packet.Kind))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Packet.Dir))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Packet.Size))
		}
	}
	if recs := bySeries[seriesStats]; len(recs) > 0 {
		last := w.lastAt[seriesStats]
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.At-last))
			last = r.Stats.At
		}
		w.lastAt[seriesStats] = last
		for _, r := range recs {
			var f byte
			if r.Stats.Local {
				f |= 1
			}
			if r.Stats.FrozenNow {
				f |= 2
			}
			b = append(b, f)
		}
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.InboundFPS })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.OutboundFPS })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.VideoJBDelayMs })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.AudioJBDelayMs })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.MinJBDelayMs })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.FreezeTotalMs })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.TargetBitrateBps })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.PushbackRateBps })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.TrendlineSlope })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.TrendlineThreshold })
		b = appendFloatCol(b, recs, func(r Record) float64 { return r.Stats.AckedBitrateBps })
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.OutboundHeight))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.InboundHeight))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.OutstandingBytes))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.CongestionWindow))
		}
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.Stats.GCCNetState))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, r.Stats.ConcealedSamples)
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, r.Stats.TotalSamples)
		}
	}
	if recs := bySeries[seriesRRC]; len(recs) > 0 {
		last := w.lastAt[seriesRRC]
		for _, r := range recs {
			b = binary.AppendVarint(b, int64(r.RRC.At-last))
			last = r.RRC.At
		}
		w.lastAt[seriesRRC] = last
		for _, r := range recs {
			var f byte
			if r.RRC.Connected {
				f |= 1
			}
			b = append(b, f)
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, uint64(r.RRC.RNTI))
		}
		for _, r := range recs {
			b = binary.AppendUvarint(b, w.dict[r.RRC.Cause])
		}
	}
	w.total += uint64(len(w.pend))
	w.pend = w.pend[:0]
	w.emitFrame(frameBlock, b)
}

// WriteBinary serializes the set in the binary columnar format,
// emitting records in exactly the merged timestamp order WriteJSONL
// uses — decoding either encoding of the same set yields an identical
// record stream. The caller's set is not mutated.
func WriteBinary(w io.Writer, set *Set) error {
	bw := NewBinaryWriter(w)
	hdr := Header{CellName: set.CellName, Scenario: set.Scenario, Duration: set.Duration, HasGNBLog: set.HasGNBLog}
	if err := bw.WriteHeader(hdr); err != nil {
		return err
	}
	if err := forEachMerged(set, bw.WriteRecord); err != nil {
		return err
	}
	return bw.Close()
}

// binCursor is a bounds-checked decode cursor over one frame payload.
type binCursor struct {
	b   []byte
	off int
	err error
}

func (c *binCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("trace: binary: truncated or corrupt %s", what)
	}
}

func (c *binCursor) uvarint(what string) uint64 {
	// Single-byte fast path: small deltas and enum-like fields are the
	// overwhelming majority of the column data.
	if c.err == nil && c.off < len(c.b) && c.b[c.off] < 0x80 {
		v := uint64(c.b[c.off])
		c.off++
		return v
	}
	return c.uvarintSlow(what)
}

func (c *binCursor) uvarintSlow(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *binCursor) varint(what string) int64 {
	if c.err == nil && c.off < len(c.b) && c.b[c.off] < 0x80 {
		u := uint64(c.b[c.off])
		c.off++
		return int64(u>>1) ^ -int64(u&1) // zigzag decode
	}
	return c.varintSlow(what)
}

func (c *binCursor) varintSlow(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *binCursor) byte(what string) byte {
	if c.err != nil || c.off >= len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *binCursor) float(what string) float64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v
}

func (c *binCursor) bytes(n int, what string) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		c.fail(what)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

// BinaryStreamReader decodes a binary columnar trace incrementally,
// one block at a time. It implements RecordReader: Next yields the
// header record first and then every data record in the stream's
// (merged timestamp) order, exactly like the JSONL StreamReader over
// the equivalent JSONL encoding. Decoded blocks use freshly allocated
// backing storage, so records stay valid after the reader advances —
// unless the consumer opts into bounded batch lifetimes with Recycle.
type BinaryStreamReader struct {
	r   *bufio.Reader
	buf []byte // frame payload scratch, reused across frames

	dict     []string
	seriesOf []int8 // dict ID -> series index, -1 for plain strings

	hdr     *Header
	started bool // magic consumed
	endSeen bool

	recs   []Record // pending decoded block (freshly allocated)
	pos    int
	hdrRec [1]Record // backs the one-element header batch from ReadBatch
	lastAt [numSeries]sim.Time
	total  uint64

	// ring, when non-empty, holds the recycled block-storage
	// generations enabled by Recycle; ringPos is the generation the
	// next block decodes into.
	ring    []blockStorage
	ringPos int

	err error
}

// blockStorage is one generation of decoded-block backing arrays,
// reused round-robin when the consumer opts into Recycle.
type blockStorage struct {
	recs  []Record
	dcis  []DCIRecord
	gnbs  []GNBLogRecord
	pkts  []PacketRecord
	stats []WebRTCStatsRecord
	rrcs  []RRCRecord
}

// Recycle trades the default batch-lives-forever guarantee for an
// allocation-free steady state: block storage is reused round-robin
// across depth+1 generations, so records from a ReadBatch (or Next)
// call are overwritten in place once depth further blocks have been
// decoded. Consumers that copy what they keep — dominod's ingest
// pipeline pushes a batch through the analyzer (which copies record
// values into its index) while decoding the next — run with depth 1
// and no per-record garbage. Call before the first read; depth <= 0
// restores fresh allocation per block.
func (sr *BinaryStreamReader) Recycle(depth int) {
	if depth <= 0 {
		sr.ring = nil
		return
	}
	sr.ring = make([]blockStorage, depth+1)
	sr.ringPos = 0
}

// grow returns s resized to n elements, reusing its backing array when
// it is big enough. Callers overwrite every element, so stale contents
// never need zeroing.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n, n+n/4)
}

// NewBinaryStreamReader returns a streaming decoder over r. The magic
// header is validated lazily on the first read call.
func NewBinaryStreamReader(r io.Reader) *BinaryStreamReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	return &BinaryStreamReader{r: br, buf: make([]byte, 0, 1<<14)}
}

// Header returns the stream header once it has been read.
func (sr *BinaryStreamReader) Header() (Header, bool) {
	if sr.hdr == nil {
		return Header{}, false
	}
	return *sr.hdr, true
}

func (sr *BinaryStreamReader) fail(err error) error {
	if sr.err == nil {
		sr.err = err
	}
	return sr.err
}

func (sr *BinaryStreamReader) failf(format string, args ...any) error {
	return sr.fail(fmt.Errorf("trace: binary: "+format, args...))
}

// Next returns the next record. It returns io.EOF at a clean end of
// stream (after a valid end frame); any other error — including plain
// truncation — is terminal and repeated on later calls.
func (sr *BinaryStreamReader) Next() (Record, error) {
	if sr.err != nil {
		return Record{}, sr.err
	}
	if sr.pos < len(sr.recs) {
		rec := sr.recs[sr.pos]
		sr.pos++
		return rec, nil
	}
	for {
		rec, n, err := sr.nextFrame()
		if err != nil {
			return Record{}, err
		}
		if rec != nil {
			return *rec, nil
		}
		if n > 0 { // block decoded
			rec := sr.recs[sr.pos]
			sr.pos++
			return rec, nil
		}
	}
}

// ReadBatch returns the next batch of records: the header record (as a
// one-element batch) first, then one whole block per call. dst is
// ignored — the binary decoder returns freshly allocated block storage
// each call, so the batch stays valid while later batches are read. A
// nil batch with io.EOF marks a clean end of stream.
func (sr *BinaryStreamReader) ReadBatch(dst []Record) ([]Record, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.pos < len(sr.recs) {
		batch := sr.recs[sr.pos:]
		sr.pos = len(sr.recs)
		return batch, nil
	}
	for {
		rec, n, err := sr.nextFrame()
		if err != nil {
			return nil, err
		}
		if rec != nil {
			sr.hdrRec[0] = *rec
			return sr.hdrRec[:], nil
		}
		if n > 0 {
			batch := sr.recs[sr.pos:]
			sr.pos = len(sr.recs)
			return batch, nil
		}
	}
}

// nextFrame consumes one frame. It returns a non-nil record for a
// header frame, n > 0 with sr.recs/sr.pos primed for a block frame,
// and (nil, 0, nil) for bookkeeping frames (dict, end) the caller
// should loop past.
func (sr *BinaryStreamReader) nextFrame() (*Record, int, error) {
	if !sr.started {
		magic := make([]byte, len(binaryMagic))
		if _, err := io.ReadFull(sr.r, magic); err != nil {
			return nil, 0, sr.failf("short magic header: %v", err)
		}
		if !bytes.Equal(magic, []byte(binaryMagic)) {
			return nil, 0, sr.failf("bad magic %q (not a binary domino trace, or unsupported version)", magic)
		}
		sr.started = true
	}
	kind, err := sr.r.ReadByte()
	if err == io.EOF {
		if sr.endSeen {
			return nil, 0, sr.fail(io.EOF)
		}
		return nil, 0, sr.failf("truncated stream: missing end frame")
	}
	if err != nil {
		return nil, 0, sr.fail(err)
	}
	if sr.endSeen {
		return nil, 0, sr.failf("trailing data after end frame")
	}
	plen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return nil, 0, sr.failf("frame length: %v", err)
	}
	if plen > maxBinaryFramePayload {
		return nil, 0, sr.failf("frame payload %d exceeds limit", plen)
	}
	if uint64(cap(sr.buf)) < plen {
		sr.buf = make([]byte, plen)
	}
	payload := sr.buf[:plen]
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return nil, 0, sr.failf("truncated frame payload: %v", err)
	}
	switch kind {
	case frameDict:
		if err := sr.decodeDict(payload); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil
	case frameHeader:
		rec, err := sr.decodeHeader(payload)
		if err != nil {
			return nil, 0, err
		}
		return rec, 0, nil
	case frameBlock:
		if sr.hdr == nil {
			return nil, 0, sr.failf("block before header frame")
		}
		n, err := sr.decodeBlock(payload)
		if err != nil {
			return nil, 0, err
		}
		return nil, n, nil
	case frameEnd:
		c := binCursor{b: payload}
		want := c.uvarint("end frame count")
		if c.err != nil {
			return nil, 0, sr.fail(c.err)
		}
		if want != sr.total {
			return nil, 0, sr.failf("record count mismatch: end frame says %d, decoded %d", want, sr.total)
		}
		sr.endSeen = true
		return nil, 0, nil
	default:
		return nil, 0, sr.failf("unknown frame kind %d", kind)
	}
}

func (sr *BinaryStreamReader) decodeDict(payload []byte) error {
	c := binCursor{b: payload}
	count := c.uvarint("dict count")
	for i := uint64(0); i < count && c.err == nil; i++ {
		n := c.uvarint("dict string length")
		raw := c.bytes(int(n), "dict string")
		if c.err != nil {
			break
		}
		s := string(raw)
		series := int8(-1)
		for si, name := range seriesNames {
			if s == name && len(sr.dict) == si {
				series = int8(si)
			}
		}
		sr.dict = append(sr.dict, s)
		sr.seriesOf = append(sr.seriesOf, series)
	}
	if c.err != nil {
		return sr.fail(c.err)
	}
	if c.off != len(payload) {
		return sr.failf("dict frame has %d trailing bytes", len(payload)-c.off)
	}
	return nil
}

func (sr *BinaryStreamReader) dictString(id uint64, what string) (string, error) {
	if id >= uint64(len(sr.dict)) {
		return "", sr.failf("%s references unknown dict id %d", what, id)
	}
	return sr.dict[id], nil
}

func (sr *BinaryStreamReader) decodeHeader(payload []byte) (*Record, error) {
	if sr.hdr != nil {
		return nil, sr.failf("duplicate header frame")
	}
	c := binCursor{b: payload}
	cellID := c.uvarint("header cell")
	scenRef := c.uvarint("header scenario")
	dur := c.varint("header duration")
	flags := c.byte("header flags")
	if c.err != nil {
		return nil, sr.fail(c.err)
	}
	if c.off != len(payload) {
		return nil, sr.failf("header frame has %d trailing bytes", len(payload)-c.off)
	}
	cell, err := sr.dictString(cellID, "header cell")
	if err != nil {
		return nil, err
	}
	hdr := Header{CellName: cell, Duration: sim.Time(dur), HasGNBLog: flags&1 != 0}
	if scenRef != 0 {
		if hdr.Scenario, err = sr.dictString(scenRef-1, "header scenario"); err != nil {
			return nil, err
		}
	}
	sr.hdr = &hdr
	return &Record{Header: &hdr}, nil
}

func (sr *BinaryStreamReader) decodeBlock(payload []byte) (int, error) {
	c := binCursor{b: payload}
	n := c.uvarint("block count")
	if c.err != nil {
		return 0, sr.fail(c.err)
	}
	if n == 0 || n > maxBinaryFramePayload {
		return 0, sr.failf("implausible block record count %d", n)
	}
	tags := c.bytes(int(n), "block tags")
	if c.err != nil {
		return 0, sr.fail(c.err)
	}
	var counts [numSeries]int
	for _, t := range tags {
		if int(t) >= len(sr.seriesOf) || sr.seriesOf[t] < 0 {
			return 0, sr.failf("block tag %d is not an interned series name", t)
		}
		counts[sr.seriesOf[t]]++
	}

	// Backing storage: fresh per block by default, so records handed
	// out stay valid while the reader advances (dominod pipelines a
	// block's analyzer push against the next block's decode); drawn
	// from the recycle ring when the consumer bounded batch lifetimes
	// with Recycle. Every field of every element is overwritten below,
	// so reused arrays need no zeroing.
	var st *blockStorage
	if len(sr.ring) > 0 {
		st = &sr.ring[sr.ringPos]
		sr.ringPos++
		if sr.ringPos == len(sr.ring) {
			sr.ringPos = 0
		}
	} else {
		st = &blockStorage{}
	}
	st.recs = grow(st.recs, int(n))
	recs := st.recs
	var dcis []DCIRecord
	var gnbs []GNBLogRecord
	var pkts []PacketRecord
	var stats []WebRTCStatsRecord
	var rrcs []RRCRecord

	if m := counts[seriesDCI]; m > 0 {
		st.dcis = grow(st.dcis, m)
		dcis = st.dcis
		last := sr.lastAt[seriesDCI]
		for i := range dcis {
			last += sim.Time(c.varint("dci at"))
			dcis[i].At = last
		}
		sr.lastAt[seriesDCI] = last
		for i := range dcis {
			dcis[i].Dir = netem.Direction(c.varint("dci dir"))
		}
		for i := range dcis {
			dcis[i].RNTI = uint32(c.uvarint("dci rnti"))
		}
		for i := range dcis {
			dcis[i].OwnPRB = int(c.varint("dci own_prb"))
		}
		for i := range dcis {
			dcis[i].OtherPRB = int(c.varint("dci other_prb"))
		}
		for i := range dcis {
			dcis[i].MCS = int(c.varint("dci mcs"))
		}
		for i := range dcis {
			dcis[i].TBSBits = int(c.varint("dci tbs_bits"))
		}
		for i := range dcis {
			dcis[i].UsedBits = int(c.varint("dci used_bits"))
		}
		for i := range dcis {
			f := c.byte("dci flags")
			dcis[i].HARQRetx = f&1 != 0
			dcis[i].RLCRetx = f&2 != 0
			dcis[i].Proactive = f&4 != 0
			dcis[i].Unused = f&8 != 0
		}
	}
	if m := counts[seriesGNB]; m > 0 {
		st.gnbs = grow(st.gnbs, m)
		gnbs = st.gnbs
		last := sr.lastAt[seriesGNB]
		for i := range gnbs {
			last += sim.Time(c.varint("gnb at"))
			gnbs[i].At = last
		}
		sr.lastAt[seriesGNB] = last
		for i := range gnbs {
			gnbs[i].Kind = GNBLogKind(c.varint("gnb kind"))
		}
		for i := range gnbs {
			gnbs[i].Dir = netem.Direction(c.varint("gnb dir"))
		}
		for i := range gnbs {
			gnbs[i].BufferBytes = int(c.varint("gnb buffer_bytes"))
		}
		for i := range gnbs {
			gnbs[i].RNTI = uint32(c.uvarint("gnb rnti"))
		}
		for i := range gnbs {
			id := c.uvarint("gnb note")
			if c.err != nil {
				break
			}
			s, err := sr.dictString(id, "gnb note")
			if err != nil {
				return 0, err
			}
			gnbs[i].Note = s
		}
	}
	if m := counts[seriesPkt]; m > 0 {
		st.pkts = grow(st.pkts, m)
		pkts = st.pkts
		last := sr.lastAt[seriesPkt]
		for i := range pkts {
			last += sim.Time(c.varint("pkt sent_at"))
			pkts[i].SentAt = last
		}
		sr.lastAt[seriesPkt] = last
		for i := range pkts {
			pkts[i].Arrived = pkts[i].SentAt + sim.Time(c.varint("pkt delay"))
		}
		for i := range pkts {
			pkts[i].Seq = c.uvarint("pkt seq")
		}
		for i := range pkts {
			pkts[i].Kind = netem.MediaKind(c.varint("pkt kind"))
		}
		for i := range pkts {
			pkts[i].Dir = netem.Direction(c.varint("pkt dir"))
		}
		for i := range pkts {
			pkts[i].Size = int(c.varint("pkt size"))
		}
	}
	if m := counts[seriesStats]; m > 0 {
		st.stats = grow(st.stats, m)
		stats = st.stats
		last := sr.lastAt[seriesStats]
		for i := range stats {
			last += sim.Time(c.varint("stats at"))
			stats[i].At = last
		}
		sr.lastAt[seriesStats] = last
		for i := range stats {
			f := c.byte("stats flags")
			stats[i].Local = f&1 != 0
			stats[i].FrozenNow = f&2 != 0
		}
		for i := range stats {
			stats[i].InboundFPS = c.float("stats inbound_fps")
		}
		for i := range stats {
			stats[i].OutboundFPS = c.float("stats outbound_fps")
		}
		for i := range stats {
			stats[i].VideoJBDelayMs = c.float("stats video_jb_delay_ms")
		}
		for i := range stats {
			stats[i].AudioJBDelayMs = c.float("stats audio_jb_delay_ms")
		}
		for i := range stats {
			stats[i].MinJBDelayMs = c.float("stats min_jb_delay_ms")
		}
		for i := range stats {
			stats[i].FreezeTotalMs = c.float("stats freeze_total_ms")
		}
		for i := range stats {
			stats[i].TargetBitrateBps = c.float("stats target_bitrate_bps")
		}
		for i := range stats {
			stats[i].PushbackRateBps = c.float("stats pushback_rate_bps")
		}
		for i := range stats {
			stats[i].TrendlineSlope = c.float("stats trendline_slope")
		}
		for i := range stats {
			stats[i].TrendlineThreshold = c.float("stats trendline_threshold")
		}
		for i := range stats {
			stats[i].AckedBitrateBps = c.float("stats acked_bitrate_bps")
		}
		for i := range stats {
			stats[i].OutboundHeight = int(c.varint("stats outbound_height"))
		}
		for i := range stats {
			stats[i].InboundHeight = int(c.varint("stats inbound_height"))
		}
		for i := range stats {
			stats[i].OutstandingBytes = int(c.varint("stats outstanding_bytes"))
		}
		for i := range stats {
			stats[i].CongestionWindow = int(c.varint("stats congestion_window"))
		}
		for i := range stats {
			stats[i].GCCNetState = GCCState(c.varint("stats gcc_net_state"))
		}
		for i := range stats {
			stats[i].ConcealedSamples = c.uvarint("stats concealed_samples")
		}
		for i := range stats {
			stats[i].TotalSamples = c.uvarint("stats total_samples")
		}
	}
	if m := counts[seriesRRC]; m > 0 {
		st.rrcs = grow(st.rrcs, m)
		rrcs = st.rrcs
		last := sr.lastAt[seriesRRC]
		for i := range rrcs {
			last += sim.Time(c.varint("rrc at"))
			rrcs[i].At = last
		}
		sr.lastAt[seriesRRC] = last
		for i := range rrcs {
			f := c.byte("rrc flags")
			rrcs[i].Connected = f&1 != 0
		}
		for i := range rrcs {
			rrcs[i].RNTI = uint32(c.uvarint("rrc rnti"))
		}
		for i := range rrcs {
			id := c.uvarint("rrc cause")
			if c.err != nil {
				break
			}
			s, err := sr.dictString(id, "rrc cause")
			if err != nil {
				return 0, err
			}
			rrcs[i].Cause = s
		}
	}
	if c.err != nil {
		return 0, sr.fail(c.err)
	}
	if c.off != len(payload) {
		return 0, sr.failf("block frame has %d trailing bytes", len(payload)-c.off)
	}

	var next [numSeries]int
	for i, t := range tags {
		switch sr.seriesOf[t] {
		case seriesDCI:
			recs[i] = Record{DCI: &dcis[next[seriesDCI]]}
			next[seriesDCI]++
		case seriesGNB:
			recs[i] = Record{GNB: &gnbs[next[seriesGNB]]}
			next[seriesGNB]++
		case seriesPkt:
			recs[i] = Record{Packet: &pkts[next[seriesPkt]]}
			next[seriesPkt]++
		case seriesStats:
			recs[i] = Record{Stats: &stats[next[seriesStats]]}
			next[seriesStats]++
		case seriesRRC:
			recs[i] = Record{RRC: &rrcs[next[seriesRRC]]}
			next[seriesRRC]++
		}
	}
	sr.recs = recs
	sr.pos = 0
	sr.total += n
	return int(n), nil
}
