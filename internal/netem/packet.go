// Package netem provides the network-layer plumbing of the simulator:
// the packet model shared by every layer, delay/loss path segments for
// the wired legs of a call, and the Link abstraction that lets the RAN
// and the media stack be composed into end-to-end topologies.
package netem

import (
	"fmt"

	"github.com/domino5g/domino/internal/sim"
)

// MediaKind classifies a packet's payload for jitter-buffer routing and
// per-kind statistics.
type MediaKind int

// Packet payload classes.
const (
	KindVideo MediaKind = iota
	KindAudio
	KindRTCP
	KindCross // background cross traffic (never reaches the app layer)
)

// String implements fmt.Stringer.
func (k MediaKind) String() string {
	switch k {
	case KindVideo:
		return "video"
	case KindAudio:
		return "audio"
	case KindRTCP:
		return "rtcp"
	case KindCross:
		return "cross"
	default:
		return fmt.Sprintf("MediaKind(%d)", int(k))
	}
}

// Direction is the cellular-relative direction of travel.
type Direction int

// Directions are named from the cellular client's perspective, matching
// the paper: the UL stream is sent by the 5G-attached client.
const (
	Uplink Direction = iota
	Downlink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Uplink {
		return "UL"
	}
	return "DL"
}

// Packet is one IP datagram traversing the simulated network. The
// struct carries the cross-layer annotations the paper's capture points
// record: send/arrival timestamps (one-way delay), media framing
// (frame ID, burst position), and RTP-level sequencing.
type Packet struct {
	// Seq is a per-flow monotonically increasing sequence number.
	Seq uint64
	// Kind is the payload class.
	Kind MediaKind
	// Size is the datagram size in bytes (IP+UDP+RTP+payload).
	Size int
	// FrameID groups the video packets of one encoded frame; zero for
	// non-video packets.
	FrameID uint64
	// LastOfFrame marks the final packet of a video frame.
	LastOfFrame bool
	// KeyFrame marks packets of an intra-coded frame.
	KeyFrame bool
	// SentAt is the application send timestamp.
	SentAt sim.Time
	// ArrivedAt is the receive timestamp, set on delivery.
	ArrivedAt sim.Time
	// Payload carries opaque per-packet data (e.g. RTCP feedback
	// contents) between endpoints.
	Payload any
}

// OneWayDelay returns the packet's network transit time.
func (p *Packet) OneWayDelay() sim.Time { return p.ArrivedAt - p.SentAt }

// Link is a unidirectional packet conduit. Implementations (wired
// paths, the RAN uplink/downlink) deliver packets to the sink passed at
// construction, possibly delayed, reordered, or dropped.
type Link interface {
	// Send enqueues a packet at the current simulation time.
	Send(p *Packet)
}

// Sink consumes delivered packets.
type Sink func(p *Packet)

// Chain composes links so that packets delivered by first are fed into
// next, returning the entry link. Used to join RAN and wired segments.
type chained struct {
	entry Link
}

func (c *chained) Send(p *Packet) { c.entry.Send(p) }

// LinkFactory builds a link delivering into the given sink; used by
// Chain to wire segments back-to-front.
type LinkFactory func(sink Sink) Link

// Chain wires factories left-to-right: packets enter the first segment
// and exit the last into finalSink.
func Chain(finalSink Sink, factories ...LinkFactory) Link {
	sink := finalSink
	var entry Link
	for i := len(factories) - 1; i >= 0; i-- {
		l := factories[i](sink)
		entry = l
		next := l
		sink = func(p *Packet) { next.Send(p) }
	}
	if entry == nil {
		return sinkLink(finalSink)
	}
	return entry
}

type sinkLink Sink

func (s sinkLink) Send(p *Packet) { s(p) }
