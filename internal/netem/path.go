package netem

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// PathConfig parameterizes a wired path segment (campus↔GCP leg, or the
// private-core hop).
type PathConfig struct {
	// BaseDelay is the fixed propagation+processing delay.
	BaseDelay sim.Time
	// JitterStd is the standard deviation of per-packet delay noise
	// (truncated at zero extra delay).
	JitterStd sim.Time
	// LossRate is the i.i.d. drop probability.
	LossRate float64
	// RateBps caps throughput; zero means unbounded. When set, packets
	// serialize through a single queue at this rate (models the access
	// bottleneck for wired comparisons).
	RateBps float64
}

// WiredGCPPath returns the paper's campus↔GCP wired leg: ~8 ms one-way
// with sub-millisecond jitter and negligible loss.
func WiredGCPPath() PathConfig {
	return PathConfig{
		BaseDelay: 8 * sim.Millisecond,
		JitterStd: 400 * sim.Microsecond,
		LossRate:  2e-5,
	}
}

// PrivateCorePath returns the short on-prem hop between a private 5G
// core and a local server.
func PrivateCorePath() PathConfig {
	return PathConfig{
		BaseDelay: 700 * sim.Microsecond,
		JitterStd: 80 * sim.Microsecond,
	}
}

// Path is a Link that delays (and occasionally drops) packets per its
// config. Delivery preserves FIFO order: a delayed packet never
// overtakes an earlier one (matching a wired queue).
type Path struct {
	cfg    PathConfig
	engine *sim.Engine
	rng    *sim.RNG
	sink   Sink

	lastDelivery sim.Time
	busyUntil    sim.Time

	// extraDelays holds scripted delay windows for case-study scenarios
	// (e.g. injecting reverse-path delay for the Fig. 22 experiment).
	extraDelays []delayWindow

	// deliverFn is the delivery callback built once at construction and
	// dispatched per packet via ScheduleArg, so sending a packet does
	// not allocate a closure.
	deliverFn func(any)

	// Sent/Dropped count packets for loss accounting.
	Sent    uint64
	Dropped uint64
}

type delayWindow struct {
	start, end sim.Time
	extra      sim.Time
	// kindOnly restricts the window to one payload class when set
	// (used to inflate only the RTCP feedback path, Fig. 22).
	kindOnly bool
	kind     MediaKind
}

// NewPath builds a path segment delivering into sink.
func NewPath(engine *sim.Engine, rng *sim.RNG, cfg PathConfig, sink Sink) *Path {
	p := &Path{cfg: cfg, engine: engine, rng: rng.Fork(), sink: sink}
	p.deliverFn = func(a any) {
		pkt := a.(*Packet)
		pkt.ArrivedAt = p.engine.Now()
		p.sink(pkt)
	}
	return p
}

// Factory returns a LinkFactory for Chain composition.
func Factory(engine *sim.Engine, rng *sim.RNG, cfg PathConfig) LinkFactory {
	return func(sink Sink) Link { return NewPath(engine, rng, cfg, sink) }
}

// ScriptExtraDelay adds `extra` delay to every packet sent in
// [start, end). Windows may overlap; their extras accumulate.
func (p *Path) ScriptExtraDelay(start, end, extra sim.Time) {
	p.extraDelays = append(p.extraDelays, delayWindow{start: start, end: end, extra: extra})
	sort.Slice(p.extraDelays, func(i, j int) bool { return p.extraDelays[i].start < p.extraDelays[j].start })
}

// ScriptExtraDelayKind adds `extra` delay only to packets of the given
// payload class sent in [start, end) — e.g. delaying RTCP while media
// flows untouched, the paper's Fig. 22 scenario.
func (p *Path) ScriptExtraDelayKind(kind MediaKind, start, end, extra sim.Time) {
	p.extraDelays = append(p.extraDelays, delayWindow{start: start, end: end, extra: extra, kindOnly: true, kind: kind})
	sort.Slice(p.extraDelays, func(i, j int) bool { return p.extraDelays[i].start < p.extraDelays[j].start })
}

// Send implements Link.
func (p *Path) Send(pkt *Packet) {
	now := p.engine.Now()
	p.Sent++
	if p.cfg.LossRate > 0 && p.rng.Bool(p.cfg.LossRate) {
		p.Dropped++
		return
	}
	delay := p.cfg.BaseDelay
	if p.cfg.JitterStd > 0 {
		j := sim.Time(p.rng.Normal(0, float64(p.cfg.JitterStd)))
		if j < -p.cfg.BaseDelay/2 {
			j = -p.cfg.BaseDelay / 2
		}
		delay += j
	}
	for _, w := range p.extraDelays {
		if now >= w.start && now < w.end && (!w.kindOnly || w.kind == pkt.Kind) {
			delay += w.extra
		}
	}
	// Serialization through a rate cap, if configured.
	if p.cfg.RateBps > 0 {
		txTime := sim.Time(float64(pkt.Size*8) / p.cfg.RateBps * float64(sim.Second))
		start := now
		if p.busyUntil > start {
			start = p.busyUntil
		}
		p.busyUntil = start + txTime
		delay += (start - now) + txTime
	}
	deliverAt := now + delay
	// FIFO: never deliver before a previously sent packet.
	if deliverAt < p.lastDelivery {
		deliverAt = p.lastDelivery
	}
	p.lastDelivery = deliverAt
	p.engine.ScheduleArg(deliverAt, p.deliverFn, pkt)
}
