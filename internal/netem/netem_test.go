package netem

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/sim"
)

func TestPathBaseDelay(t *testing.T) {
	e := sim.NewEngine()
	var got []*Packet
	p := NewPath(e, sim.NewRNG(1), PathConfig{BaseDelay: 10 * sim.Millisecond}, func(pk *Packet) {
		got = append(got, pk)
	})
	e.Schedule(0, func() { p.Send(&Packet{Seq: 1, Size: 1200, SentAt: 0}) })
	e.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets", len(got))
	}
	if got[0].OneWayDelay() != 10*sim.Millisecond {
		t.Fatalf("delay = %v, want 10ms", got[0].OneWayDelay())
	}
}

func TestPathFIFO(t *testing.T) {
	e := sim.NewEngine()
	var seqs []uint64
	cfg := PathConfig{BaseDelay: 5 * sim.Millisecond, JitterStd: 3 * sim.Millisecond}
	p := NewPath(e, sim.NewRNG(2), cfg, func(pk *Packet) { seqs = append(seqs, pk.Seq) })
	for i := 0; i < 500; i++ {
		i := i
		e.Schedule(sim.Time(i)*100*sim.Microsecond, func() {
			p.Send(&Packet{Seq: uint64(i), Size: 1200, SentAt: e.Now()})
		})
	}
	e.Run()
	if len(seqs) != 500 {
		t.Fatalf("delivered %d, want 500", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering: %d before %d", seqs[i-1], seqs[i])
		}
	}
}

func TestPathLoss(t *testing.T) {
	e := sim.NewEngine()
	delivered := 0
	p := NewPath(e, sim.NewRNG(3), PathConfig{BaseDelay: sim.Millisecond, LossRate: 0.2}, func(*Packet) { delivered++ })
	const n = 20000
	for i := 0; i < n; i++ {
		e.Schedule(sim.Time(i)*10*sim.Microsecond, func() {
			p.Send(&Packet{Size: 1200, SentAt: e.Now()})
		})
	}
	e.Run()
	rate := 1 - float64(delivered)/n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("loss rate = %v, want ~0.2", rate)
	}
	if p.Dropped+uint64(delivered) != p.Sent {
		t.Fatal("loss accounting inconsistent")
	}
}

func TestPathScriptedDelayWindow(t *testing.T) {
	e := sim.NewEngine()
	var delays []sim.Time
	p := NewPath(e, sim.NewRNG(4), PathConfig{BaseDelay: 5 * sim.Millisecond}, func(pk *Packet) {
		delays = append(delays, pk.OneWayDelay())
	})
	p.ScriptExtraDelay(sim.Second, 2*sim.Second, 100*sim.Millisecond)
	for _, at := range []sim.Time{500 * sim.Millisecond, 1500 * sim.Millisecond, 2500 * sim.Millisecond} {
		at := at
		e.Schedule(at, func() { p.Send(&Packet{Size: 100, SentAt: e.Now()}) })
	}
	e.Run()
	if delays[0] != 5*sim.Millisecond {
		t.Fatalf("pre-window delay %v", delays[0])
	}
	if delays[1] != 105*sim.Millisecond {
		t.Fatalf("in-window delay %v, want 105ms", delays[1])
	}
	if delays[2] != 5*sim.Millisecond {
		t.Fatalf("post-window delay %v", delays[2])
	}
}

func TestPathRateCapSerializes(t *testing.T) {
	e := sim.NewEngine()
	var arrivals []sim.Time
	// 1 Mbps: a 1250-byte packet takes 10 ms to serialize.
	p := NewPath(e, sim.NewRNG(5), PathConfig{RateBps: 1e6}, func(pk *Packet) {
		arrivals = append(arrivals, pk.ArrivedAt)
	})
	e.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			p.Send(&Packet{Size: 1250, SentAt: 0})
		}
	})
	e.Run()
	want := []sim.Time{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	for i, at := range arrivals {
		if at != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, at, want[i])
		}
	}
}

func TestChainComposition(t *testing.T) {
	e := sim.NewEngine()
	var out []*Packet
	link := Chain(func(pk *Packet) { out = append(out, pk) },
		Factory(e, sim.NewRNG(6), PathConfig{BaseDelay: 3 * sim.Millisecond}),
		Factory(e, sim.NewRNG(7), PathConfig{BaseDelay: 4 * sim.Millisecond}),
	)
	e.Schedule(0, func() { link.Send(&Packet{Size: 100, SentAt: 0}) })
	e.Run()
	if len(out) != 1 {
		t.Fatalf("delivered %d", len(out))
	}
	if d := out[0].OneWayDelay(); d != 7*sim.Millisecond {
		t.Fatalf("chained delay = %v, want 7ms", d)
	}
}

func TestChainEmpty(t *testing.T) {
	var out []*Packet
	link := Chain(func(pk *Packet) { out = append(out, pk) })
	link.Send(&Packet{Seq: 9})
	if len(out) != 1 || out[0].Seq != 9 {
		t.Fatal("empty chain should pass packets straight through")
	}
}

func TestKindAndDirectionStrings(t *testing.T) {
	if KindVideo.String() != "video" || KindAudio.String() != "audio" ||
		KindRTCP.String() != "rtcp" || KindCross.String() != "cross" {
		t.Fatal("MediaKind strings")
	}
	if Uplink.String() != "UL" || Downlink.String() != "DL" {
		t.Fatal("Direction strings")
	}
}

// Property: one-way delay through a jittery path is never below half
// the base delay (the truncation bound) and FIFO order always holds.
func TestPathDelayProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		e := sim.NewEngine()
		n := int(count)%50 + 1
		base := 6 * sim.Millisecond
		var last sim.Time
		ok := true
		p := NewPath(e, sim.NewRNG(seed), PathConfig{BaseDelay: base, JitterStd: 2 * sim.Millisecond}, func(pk *Packet) {
			if pk.OneWayDelay() < base/2 {
				ok = false
			}
			if pk.ArrivedAt < last {
				ok = false
			}
			last = pk.ArrivedAt
		})
		for i := 0; i < n; i++ {
			e.Schedule(sim.Time(i)*sim.Millisecond, func() {
				p.Send(&Packet{Size: 500, SentAt: e.Now()})
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
