// Package faultinject is a seeded, deterministic fault injector for
// exercising dominod's fault-tolerance layer. It provides two seams:
//
//   - Transport, an http.RoundTripper that garbles upload bodies —
//     connection resets mid-chunk, torn frames with garbage at the cut
//     point, and delayed writes — on a fixed schedule derived from a
//     seed and an attempt counter, so a chaos run replays identically.
//   - FS, an rcastore.FS that fails writes, fsyncs, and renames on
//     demand, for driving the write-ahead journal's disk-error paths.
//
// Fault model: the injector reproduces what a TCP application can
// actually observe — aborted connections and torn stream framing. It
// deliberately does not flip bytes inside otherwise-intact frames:
// TCP checksums make silent in-flight payload corruption a transport
// concern, and neither wire format carries per-frame checksums, so an
// in-place flip could decode as valid-but-different records and the
// chaos differential could not distinguish "injector broke the data"
// from "dominod lost data". Garbage at a tear point, by contrast, is
// always detectable: the frame containing the tear is incomplete and
// can never decode.
//
// Determinism contract: fault positions come from a rand.Rand seeded
// at construction and consumed once per faulted attempt, so a single
// goroutine issuing requests through one Transport sees an identical
// fault schedule across runs. Concurrent requests through one
// Transport serialize on an internal mutex but interleave
// nondeterministically; give each concurrent uploader its own
// Transport.
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/domino5g/domino/internal/rcastore"
)

// Kind enumerates the transport fault kinds.
type Kind int

const (
	// KindReset aborts the upload mid-body: the request body errors
	// after a seeded byte offset, the underlying transport tears down
	// the connection, and the server sees a truncated stream.
	KindReset Kind = iota
	// KindCorrupt tears the upload with garbage: the body yields a
	// seeded prefix, then a few bytes of framing-invalid garbage, then
	// errors. The server must reject the garbled tail, not hang on it.
	KindCorrupt
	// KindDelay delivers the whole body but pauses between chunks,
	// modeling a slow client; the request succeeds.
	KindDelay
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReset:
		return "reset"
	case KindCorrupt:
		return "corrupt"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault records one injected transport fault, for assertions and logs.
type Fault struct {
	Attempt int   // 1-based faultable-request counter
	Kind    Kind  // what was injected
	Offset  int64 // body byte offset the fault fired at (0 for delay)
}

// ErrInjected is the error surfaced by reset and corrupt faults; it
// stands in for the ECONNRESET a torn TCP connection would produce.
var ErrInjected = fmt.Errorf("faultinject: connection torn (injected)")

// TransportOptions configures a Transport.
type TransportOptions struct {
	// Seed drives fault offsets. Same seed + same request sequence =
	// same fault schedule.
	Seed int64
	// MaxFaults faults the first MaxFaults body-bearing requests, then
	// lets every later attempt through clean — an upload retried more
	// than MaxFaults times is guaranteed to eventually succeed.
	MaxFaults int
	// Kinds is the fault cycle, indexed by attempt; defaults to
	// [reset, corrupt, delay].
	Kinds []Kind
	// Delay is the per-pause duration for KindDelay (default 200µs —
	// enough to yield the scheduler, small enough to keep suites fast).
	Delay time.Duration
	// Base is the wrapped RoundTripper (default http.DefaultTransport).
	Base http.RoundTripper
}

// Transport is the flaky http.RoundTripper. Only requests carrying a
// body (uploads) are counted and faulted; bodiless requests such as
// watermark probes and report fetches pass straight through.
type Transport struct {
	opts TransportOptions

	mu       sync.Mutex
	rng      *rand.Rand
	attempts int
	faults   []Fault
}

// NewTransport builds a Transport from opts, applying defaults.
func NewTransport(opts TransportOptions) *Transport {
	if len(opts.Kinds) == 0 {
		opts.Kinds = []Kind{KindReset, KindCorrupt, KindDelay}
	}
	if opts.Delay <= 0 {
		opts.Delay = 200 * time.Microsecond
	}
	if opts.Base == nil {
		opts.Base = http.DefaultTransport
	}
	return &Transport{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Attempts reports how many body-bearing requests have been issued.
func (t *Transport) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// Faults returns a copy of the injected-fault log.
func (t *Transport) Faults() []Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Fault(nil), t.faults...)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body == nil || req.ContentLength == 0 {
		return t.opts.Base.RoundTrip(req)
	}
	t.mu.Lock()
	t.attempts++
	n := t.attempts
	if n > t.opts.MaxFaults {
		t.mu.Unlock()
		return t.opts.Base.RoundTrip(req)
	}
	kind := t.opts.Kinds[(n-1)%len(t.opts.Kinds)]
	// Tear somewhere strictly inside the body so resets always
	// truncate and torn frames always leave a decodable prefix bound.
	max := req.ContentLength - 1
	if max < 1 {
		max = 1
	}
	offset := 1 + t.rng.Int63n(max)
	if kind == KindDelay {
		offset = 0
	}
	t.faults = append(t.faults, Fault{Attempt: n, Kind: kind, Offset: offset})
	t.mu.Unlock()

	clone := req.Clone(req.Context())
	switch kind {
	case KindReset:
		clone.Body = &tearReader{src: req.Body, remain: offset}
	case KindCorrupt:
		clone.Body = &tearReader{src: req.Body, remain: offset, garbage: 4}
	case KindDelay:
		clone.Body = &delayReader{src: req.Body, pause: t.opts.Delay}
	}
	// The tear happens mid-body, so the served length no longer matches;
	// let the transport stream with unknown length instead of erroring
	// on the mismatch before any bytes reach the server.
	if kind != KindDelay {
		clone.ContentLength = -1
		clone.TransferEncoding = []string{"chunked"}
	}
	return t.opts.Base.RoundTrip(clone)
}

// tearReader yields remain bytes of src, then garbage 0x01 bytes, then
// fails. 0x01 can never complete a frame in either wire format: JSONL
// forbids unescaped control characters and the binary reader only sees
// it inside a frame the tear left incomplete.
type tearReader struct {
	src     io.ReadCloser
	remain  int64
	garbage int
}

func (r *tearReader) Read(p []byte) (int, error) {
	if r.remain > 0 {
		if int64(len(p)) > r.remain {
			p = p[:r.remain]
		}
		n, err := r.src.Read(p)
		r.remain -= int64(n)
		if err == io.EOF && r.remain > 0 {
			// Body shorter than the seeded offset; tear at real EOF.
			r.remain = 0
			err = nil
		}
		return n, err
	}
	if r.garbage > 0 {
		n := r.garbage
		if n > len(p) {
			n = len(p)
		}
		for i := 0; i < n; i++ {
			p[i] = 0x01
		}
		r.garbage -= n
		return n, nil
	}
	return 0, ErrInjected
}

func (r *tearReader) Close() error { return r.src.Close() }

// delayReader passes src through, sleeping between chunks.
type delayReader struct {
	src   io.ReadCloser
	pause time.Duration
}

func (r *delayReader) Read(p []byte) (int, error) {
	if len(p) > 4096 {
		p = p[:4096]
	}
	n, err := r.src.Read(p)
	if n > 0 {
		time.Sleep(r.pause)
	}
	return n, err
}

func (r *delayReader) Close() error { return r.src.Close() }

// FS is an rcastore.FS with injectable failures, for driving the
// journal's disk-error paths. Arm a failure class with FailWrites /
// FailSyncs / FailRenames; the next n calls of that class fail with
// ErrDiskFault, then the class behaves normally again. The zero value
// delegates to the real filesystem.
type FS struct {
	// Base is the wrapped filesystem (default rcastore.OsFS{}).
	Base rcastore.FS

	mu          sync.Mutex
	failWrites  int
	failSyncs   int
	failRenames int
}

// ErrDiskFault is the error injected by FS failure counters.
var ErrDiskFault = fmt.Errorf("faultinject: disk write failed (injected)")

// FailWrites arms the next n File.Write calls to fail.
func (fs *FS) FailWrites(n int) { fs.mu.Lock(); fs.failWrites = n; fs.mu.Unlock() }

// FailSyncs arms the next n File.Sync calls to fail.
func (fs *FS) FailSyncs(n int) { fs.mu.Lock(); fs.failSyncs = n; fs.mu.Unlock() }

// FailRenames arms the next n Rename calls to fail.
func (fs *FS) FailRenames(n int) { fs.mu.Lock(); fs.failRenames = n; fs.mu.Unlock() }

func (fs *FS) base() rcastore.FS {
	if fs.Base != nil {
		return fs.Base
	}
	return rcastore.OsFS{}
}

func (fs *FS) takeWrite() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failWrites > 0 {
		fs.failWrites--
		return true
	}
	return false
}

func (fs *FS) takeSync() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.failSyncs > 0 {
		fs.failSyncs--
		return true
	}
	return false
}

// OpenFile implements rcastore.FS.
func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (rcastore.File, error) {
	f, err := fs.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, fs: fs}, nil
}

// Rename implements rcastore.FS.
func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	fail := fs.failRenames > 0
	if fail {
		fs.failRenames--
	}
	fs.mu.Unlock()
	if fail {
		return ErrDiskFault
	}
	return fs.base().Rename(oldpath, newpath)
}

// Remove implements rcastore.FS.
func (fs *FS) Remove(name string) error { return fs.base().Remove(name) }

// faultFile consults its FS's failure counters before delegating.
type faultFile struct {
	rcastore.File
	fs *FS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.takeWrite() {
		return 0, ErrDiskFault
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.takeSync() {
		return ErrDiskFault
	}
	return f.File.Sync()
}
