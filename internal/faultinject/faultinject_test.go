package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"github.com/domino5g/domino/internal/rcastore"
)

// captureServer records whatever body bytes each request managed to
// deliver before succeeding or tearing.
type captureServer struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (c *captureServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ := io.ReadAll(r.Body) // error expected on torn uploads
		c.mu.Lock()
		c.bodies = append(c.bodies, got)
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (c *captureServer) body(i int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= len(c.bodies) {
		return nil
	}
	return c.bodies[i]
}

func post(t *testing.T, cl *http.Client, url string, payload []byte) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return cl.Do(req)
}

func TestTransportFaultSchedule(t *testing.T) {
	capture := &captureServer{}
	srv := httptest.NewServer(capture.handler())
	defer srv.Close()

	payload := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB
	tr := NewTransport(TransportOptions{Seed: 42, MaxFaults: 3})
	cl := &http.Client{Transport: tr}

	// Attempt 1: reset — client-visible error, server gets a strict prefix.
	if resp, err := post(t, cl, srv.URL, payload); err == nil {
		resp.Body.Close()
		t.Fatal("reset attempt must error")
	}
	// Attempt 2: corrupt — client-visible error, server gets prefix + garbage.
	if resp, err := post(t, cl, srv.URL, payload); err == nil {
		resp.Body.Close()
		t.Fatal("corrupt attempt must error")
	}
	// Attempt 3: delay — slow but successful.
	resp, err := post(t, cl, srv.URL, payload)
	if err != nil {
		t.Fatalf("delay attempt must succeed: %v", err)
	}
	resp.Body.Close()
	// Attempt 4: past MaxFaults, clean.
	resp, err = post(t, cl, srv.URL, payload)
	if err != nil {
		t.Fatalf("post-fault attempt must succeed: %v", err)
	}
	resp.Body.Close()

	faults := tr.Faults()
	if len(faults) != 3 || tr.Attempts() != 4 {
		t.Fatalf("faults=%d attempts=%d, want 3 faults over 4 attempts", len(faults), tr.Attempts())
	}
	wantKinds := []Kind{KindReset, KindCorrupt, KindDelay}
	for i, f := range faults {
		if f.Kind != wantKinds[i] || f.Attempt != i+1 {
			t.Fatalf("fault %d = %+v, want kind %v", i, f, wantKinds[i])
		}
	}

	// Server-side view: reset delivered a strict prefix; corrupt a
	// prefix followed only by 0x01 garbage; the clean attempts the
	// whole payload.
	if got := capture.body(0); !bytes.HasPrefix(payload, got) || len(got) >= len(payload) {
		t.Fatalf("reset delivered %d bytes, want a strict prefix of %d", len(got), len(payload))
	}
	corrupt := capture.body(1)
	trimmed := bytes.TrimRight(corrupt, "\x01")
	if !bytes.HasPrefix(payload, trimmed) || len(trimmed) == len(corrupt) {
		t.Fatalf("corrupt upload must be prefix + 0x01 garbage, got %d bytes (%d after trim)", len(corrupt), len(trimmed))
	}
	for _, i := range []int{2, 3} {
		if !bytes.Equal(capture.body(i), payload) {
			t.Fatalf("attempt %d should deliver the full payload", i+1)
		}
	}
}

func TestTransportDeterministic(t *testing.T) {
	schedule := func() []Fault {
		capture := &captureServer{}
		srv := httptest.NewServer(capture.handler())
		defer srv.Close()
		tr := NewTransport(TransportOptions{Seed: 7, MaxFaults: 4})
		cl := &http.Client{Transport: tr}
		payload := bytes.Repeat([]byte("x"), 4096)
		for i := 0; i < 5; i++ {
			if resp, err := post(t, cl, srv.URL, payload); err == nil {
				resp.Body.Close()
			}
		}
		return tr.Faults()
	}
	a, b := schedule(), schedule()
	if len(a) != 4 {
		t.Fatalf("want 4 faults, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at fault %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := NewTransport(TransportOptions{Seed: 8, MaxFaults: 4}); c.opts.Seed == 7 {
		t.Fatal("unreachable")
	}
}

func TestTransportPassesBodilessRequests(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tr := NewTransport(TransportOptions{Seed: 1, MaxFaults: 100})
	cl := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		resp, err := cl.Get(srv.URL)
		if err != nil {
			t.Fatalf("GET %d through saturated injector failed: %v", i, err)
		}
		resp.Body.Close()
	}
	if tr.Attempts() != 0 {
		t.Fatalf("bodiless requests were counted: attempts=%d", tr.Attempts())
	}
}

func rec(session string) rcastore.Record {
	return rcastore.Record{Session: session, Cell: "tdd", Fired: []string{"harq_retx"}}
}

func TestFSJournalWriteFaults(t *testing.T) {
	dir := t.TempDir()
	fs := &FS{}
	j, err := rcastore.OpenJournal(filepath.Join(dir, "w.wal"), rcastore.JournalOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fs.FailWrites(1)
	if err := j.Append(rec("lost")); err == nil {
		t.Fatal("armed write fault did not surface")
	}
	if err := j.Append(rec("kept")); err != nil {
		t.Fatalf("journal must recover after a failed write: %v", err)
	}

	fs.FailSyncs(1)
	if err := j.Sync(); err == nil {
		t.Fatal("armed sync fault did not surface")
	}
}

func TestFSCheckpointRenameFault(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "store.ckpt")
	fs := &FS{}
	st := rcastore.New(rcastore.Options{})
	j, err := rcastore.OpenJournal(filepath.Join(dir, "w.wal"), rcastore.JournalOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	st.Insert(rec("s1"))
	if err := j.Append(rec("s1")); err != nil {
		t.Fatal(err)
	}

	fs.FailRenames(1)
	if err := j.Checkpoint(st, ckpt); err == nil {
		t.Fatal("armed rename fault did not surface")
	}
	// A failed checkpoint must leave both journal and store usable, and
	// a retry must succeed.
	if err := j.Append(rec("s2")); err != nil {
		t.Fatalf("journal unusable after failed checkpoint: %v", err)
	}
	st.Insert(rec("s2"))
	if err := j.Checkpoint(st, ckpt); err != nil {
		t.Fatalf("checkpoint retry failed: %v", err)
	}
}
