package rtc

import (
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/sim"
)

func TestResolutionLadder(t *testing.T) {
	cases := []struct {
		rate float64
		want Resolution
	}{
		{100_000, Res180}, {400_000, Res360}, {800_000, Res540},
		{1_500_000, Res720}, {4_000_000, Res1080},
	}
	for _, c := range cases {
		if got := ResolutionForRate(c.rate); got != c.want {
			t.Fatalf("ResolutionForRate(%v) = %v, want %v", c.rate, got, c.want)
		}
	}
}

func TestVideoSourceFrameSizing(t *testing.T) {
	src := NewVideoSource(DefaultVideoSourceConfig(), 1_500_000, sim.NewRNG(1))
	var total int
	n := 300 // 10 s at 30 fps
	keyframes := 0
	for i := 0; i < n; i++ {
		f := src.NextFrame(sim.Time(i) * frameDur())
		total += f.Bytes
		if f.Key {
			keyframes++
		}
	}
	// 10 s at 1.5 Mbit/s ≈ 1.875 MB ± keyframe overhead.
	gotRate := float64(total) * 8 / 10
	if gotRate < 1_200_000 || gotRate > 2_300_000 {
		t.Fatalf("source rate %v for target 1.5e6", gotRate)
	}
	if keyframes != 1 {
		t.Fatalf("keyframes = %d in 300 frames (interval 300)", keyframes)
	}
}

func frameDur() sim.Time { return sim.FromMilliseconds(1000.0 / 30) }

func TestVideoSourceRateSmoothing(t *testing.T) {
	src := NewVideoSource(DefaultVideoSourceConfig(), 2_000_000, sim.NewRNG(2))
	src.SetRate(500_000)
	// One update moves partway, not all the way.
	if r := src.Rate(); r <= 500_000 || r >= 2_000_000 {
		t.Fatalf("smoothed rate = %v", r)
	}
	for i := 0; i < 50; i++ {
		src.SetRate(500_000)
	}
	if r := src.Rate(); r > 550_000 {
		t.Fatalf("rate did not converge: %v", r)
	}
}

func TestVideoSourceResolutionShares(t *testing.T) {
	src := NewVideoSource(DefaultVideoSourceConfig(), 800_000, sim.NewRNG(3))
	for i := 0; i < 100; i++ {
		src.NextFrame(sim.Time(i) * frameDur())
	}
	src.SetRate(300_000)
	for i := 0; i < 50; i++ {
		src.SetRate(300_000)
	}
	for i := 100; i < 200; i++ {
		src.NextFrame(sim.Time(i) * frameDur())
	}
	shares := src.ResolutionShares()
	if shares[Res540] == 0 || shares[Res360] == 0 {
		t.Fatalf("expected time at both 540p and 360p: %v", shares)
	}
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

func TestWiredSessionHealthy(t *testing.T) {
	s := NewWiredSession(WiredSessionConfig{
		Path:   netem.WiredGCPPath(),
		Local:  DefaultClientConfig("local", true),
		Remote: DefaultClientConfig("remote", false),
		Seed:   1,
	})
	set := s.Run(30 * sim.Second)

	if len(set.Packets) == 0 || len(set.Stats) == 0 {
		t.Fatal("wired session produced no trace data")
	}
	// One-way delays hug the configured 8 ms base.
	delays := set.PacketDelays(netem.Uplink, netem.KindVideo)
	if len(delays) == 0 {
		t.Fatal("no UL video packets")
	}
	med := median(delays)
	if med < 5 || med > 15 {
		t.Fatalf("wired median delay %v ms, want ~8", med)
	}
	// No freezes, negligible concealment.
	vs := s.Remote.VideoBufferStats(30 * sim.Second)
	if vs.FreezeCount > 0 {
		t.Fatalf("freezes on wired network: %d", vs.FreezeCount)
	}
	as := s.Remote.AudioBufferStats()
	if frac := float64(as.ConcealedSamples) / float64(as.TotalSamples+1); frac > 0.01 {
		t.Fatalf("wired concealment fraction %v", frac)
	}
	// GCC should have grown well past the start rate.
	if s.Local.Controller().TargetRate() < 1_500_000 {
		t.Fatalf("wired target rate stuck at %v", s.Local.Controller().TargetRate())
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func TestCellSessionProducesCrossLayerTrace(t *testing.T) {
	cfg := DefaultSessionConfig(ran.Mosolabs(), 2)
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := s.Run(20 * sim.Second)

	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := set.Counts()
	if counts.DCI == 0 || counts.Packets == 0 || counts.WebRTC == 0 {
		t.Fatalf("missing trace sources: %+v", counts)
	}
	// Stats from both sides at 50 ms cadence: ~2 × 20s/50ms = 800.
	if counts.WebRTC < 600 || counts.WebRTC > 1000 {
		t.Fatalf("WebRTC stats count = %d", counts.WebRTC)
	}
	// Both media directions present.
	if len(set.PacketDelays(netem.Uplink, netem.KindVideo)) == 0 ||
		len(set.PacketDelays(netem.Downlink, netem.KindVideo)) == 0 {
		t.Fatal("missing a media direction")
	}
	// RTCP flows in both directions too.
	if len(set.PacketDelays(netem.Uplink, netem.KindRTCP)) == 0 ||
		len(set.PacketDelays(netem.Downlink, netem.KindRTCP)) == 0 {
		t.Fatal("missing RTCP direction")
	}
}

func TestCellSessionULDelayExceedsDL(t *testing.T) {
	s, err := NewSession(DefaultSessionConfig(ran.TMobileTDD(), 3))
	if err != nil {
		t.Fatal(err)
	}
	set := s.Run(30 * sim.Second)
	ul := median(set.PacketDelays(netem.Uplink, netem.KindVideo, netem.KindAudio))
	dl := median(set.PacketDelays(netem.Downlink, netem.KindVideo, netem.KindAudio))
	if ul <= dl {
		t.Fatalf("UL median %.2f ms should exceed DL median %.2f ms", ul, dl)
	}
}

func TestCellSessionAmarisoftULBitrateSuffers(t *testing.T) {
	s, err := NewSession(DefaultSessionConfig(ran.Amarisoft(), 4))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(40 * sim.Second)
	ulRate := s.Local.Controller().TargetRate()  // UL sender
	dlRate := s.Remote.Controller().TargetRate() // DL sender
	if ulRate >= dlRate {
		t.Fatalf("poor UL channel should cap UL rate: UL %.0f vs DL %.0f", ulRate, dlRate)
	}
}

func TestSessionStatsHaveGCCInternals(t *testing.T) {
	s, err := NewSession(DefaultSessionConfig(ran.Mosolabs(), 5))
	if err != nil {
		t.Fatal(err)
	}
	set := s.Run(10 * sim.Second)
	sawThreshold, sawWindow := false, false
	for _, r := range set.Stats {
		if r.TrendlineThreshold > 0 {
			sawThreshold = true
		}
		if r.CongestionWindow > 0 {
			sawWindow = true
		}
	}
	if !sawThreshold || !sawWindow {
		t.Fatal("stats records missing GCC internals")
	}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		s, err := NewSession(DefaultSessionConfig(ran.Amarisoft(), 42))
		if err != nil {
			t.Fatal(err)
		}
		set := s.Run(8 * sim.Second)
		return s.Local.SentPackets, s.Remote.SentPackets, float64(len(set.DCI))
	}
	a1, b1, d1 := run()
	a2, b2, d2 := run()
	if a1 != a2 || b1 != b2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", a1, b1, d1, a2, b2, d2)
	}
}
