package rtc

import (
	"fmt"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// SessionConfig describes one two-party call (Fig. 7): the local client
// behind a 5G cell, the remote client behind a wired path.
type SessionConfig struct {
	Cell ran.CellConfig
	// Wired is the path between the cell's core side and the remote
	// client (GCP leg for commercial cells, on-prem hop for private).
	Wired  netem.PathConfig
	Local  ClientConfig
	Remote ClientConfig
	Seed   uint64
	// ScenarioName labels the session's trace (and every report derived
	// from it) with the generating scenario. Empty for plain preset
	// sessions, which keeps their serialized traces unchanged.
	ScenarioName string
}

// DefaultSessionConfig returns a session on the given cell preset with
// the paper's wired legs.
func DefaultSessionConfig(cell ran.CellConfig, seed uint64) SessionConfig {
	wired := netem.WiredGCPPath()
	if cell.HasGNBLog || cell.Name == "Mosolabs 20MHz TDD" {
		// Private cells used a local server in the core's subnet.
		wired = netem.PrivateCorePath()
	}
	return SessionConfig{
		Cell:   cell,
		Wired:  wired,
		Local:  DefaultClientConfig("local", true),
		Remote: DefaultClientConfig("remote", false),
		Seed:   seed,
	}
}

// Session is a running two-party call over a simulated 5G cell.
type Session struct {
	Engine    *sim.Engine
	Cell      *ran.Cell
	Local     *Client
	Remote    *Client
	Collector *trace.Collector

	ulWired *netem.Path
	dlWired *netem.Path
}

// sessionStats intercepts client stats to add cross-client fields
// before persisting them.
type sessionStats struct {
	s *Session
}

// OnStats implements StatsObserver.
func (ss sessionStats) OnStats(r trace.WebRTCStatsRecord) {
	// Inbound resolution is the peer's current outbound rung.
	if r.Local {
		r.InboundHeight = int(ss.s.Remote.Video().Resolution())
	} else {
		r.InboundHeight = int(ss.s.Local.Video().Resolution())
	}
	ss.s.Collector.OnStats(r)
}

// NewSession builds and wires a session; call Run to execute it.
func NewSession(cfg SessionConfig) (*Session, error) {
	engine := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	s := &Session{Engine: engine}
	s.Collector = trace.NewCollector(cfg.Cell.Name, cfg.Cell.HasGNBLog)
	s.Collector.Set.Scenario = cfg.ScenarioName

	ss := sessionStats{s}
	s.Local = NewClient(engine, rng, cfg.Local, ss, s.Collector)
	s.Remote = NewClient(engine, rng, cfg.Remote, ss, s.Collector)

	// Uplink: local → cell UL → wired → remote.
	s.ulWired = netem.NewPath(engine, rng, cfg.Wired, s.Remote.Receive)
	cell, err := ran.NewCell(engine, rng, cfg.Cell,
		func(p *netem.Packet) { s.ulWired.Send(p) },
		s.Local.Receive,
		s.Collector,
	)
	if err != nil {
		return nil, fmt.Errorf("rtc: building session cell: %w", err)
	}
	s.Cell = cell
	s.Local.Attach(cell.ULLink())

	// Downlink: remote → wired → cell DL → local.
	s.dlWired = netem.NewPath(engine, rng, cfg.Wired, func(p *netem.Packet) { cell.DLLink().Send(p) })
	s.Remote.Attach(s.dlWired)

	return s, nil
}

// ULWired returns the uplink-side wired leg (for delay scripting).
func (s *Session) ULWired() *netem.Path { return s.ulWired }

// DLWired returns the downlink-side wired leg (for delay scripting).
func (s *Session) DLWired() *netem.Path { return s.dlWired }

// Run executes the call for the given duration and returns the merged
// cross-layer trace.
func (s *Session) Run(duration sim.Time) *trace.Set {
	// Pre-size the trace series from the cell geometry so collection
	// does not pay repeated slice grow-and-copy cycles: up to one DCI
	// record per direction per slot, a gNB buffer-log pair (UL+DL)
	// every 16 slots — i.e. slots/8 records — plus retx log lines,
	// 50 ms stats per client, and a conservative packet-rate guess.
	slots := int(duration / s.Cell.Config().Numerology.SlotDuration())
	secs := int(duration / sim.Second)
	s.Collector.Reserve(2*slots, slots/8, 1000*secs, 2*secs*20, 4*secs)
	s.Local.Start()
	s.Remote.Start()
	s.Engine.RunUntil(duration)
	s.Local.Stop()
	s.Remote.Stop()
	s.Cell.Stop()
	set := &s.Collector.Set
	set.Duration = duration
	set.Sort()
	return set
}

// WiredSessionConfig describes the wired-vs-wired baseline call used by
// the paper's motivation experiments (Fig. 2–4).
type WiredSessionConfig struct {
	Path   netem.PathConfig
	Local  ClientConfig
	Remote ClientConfig
	Seed   uint64
}

// WiredSession is a two-party call across a wired path only.
type WiredSession struct {
	Engine    *sim.Engine
	Local     *Client
	Remote    *Client
	Collector *trace.Collector
}

// NewWiredSession builds a wired baseline session.
func NewWiredSession(cfg WiredSessionConfig) *WiredSession {
	engine := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	s := &WiredSession{Engine: engine}
	s.Collector = trace.NewCollector("wired", false)

	s.Local = NewClient(engine, rng, cfg.Local, s.Collector, s.Collector)
	s.Remote = NewClient(engine, rng, cfg.Remote, s.Collector, s.Collector)

	up := netem.NewPath(engine, rng, cfg.Path, s.Remote.Receive)
	down := netem.NewPath(engine, rng, cfg.Path, s.Local.Receive)
	s.Local.Attach(up)
	s.Remote.Attach(down)
	return s
}

// Run executes the wired call and returns its trace.
func (s *WiredSession) Run(duration sim.Time) *trace.Set {
	s.Local.Start()
	s.Remote.Start()
	s.Engine.RunUntil(duration)
	s.Local.Stop()
	s.Remote.Stop()
	set := &s.Collector.Set
	set.Duration = duration
	set.Sort()
	return set
}
