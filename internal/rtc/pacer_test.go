package rtc

import (
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
)

// collectLink records every packet sent through it with its send time.
type collectLink struct {
	engine *sim.Engine
	pkts   []*netem.Packet
	at     []sim.Time
}

func (l *collectLink) Send(p *netem.Packet) {
	l.pkts = append(l.pkts, p)
	l.at = append(l.at, l.engine.Now())
}

func TestPacerSpacesFrameBurst(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultClientConfig("c", true)
	cfg.StartRate = 3_000_000 // ~12.5 KB frames: 11 packets
	c := NewClient(e, sim.NewRNG(1), cfg, nil, nil)
	link := &collectLink{engine: e}
	c.Attach(link)
	c.Start()
	e.RunUntil(200 * sim.Millisecond)
	c.Stop()

	// Find one video frame's packets and verify pacing.
	byFrame := map[uint64][]sim.Time{}
	for i, p := range link.pkts {
		if p.Kind == netem.KindVideo {
			byFrame[p.FrameID] = append(byFrame[p.FrameID], link.at[i])
		}
	}
	multi := false
	for _, times := range byFrame {
		if len(times) < 3 {
			continue
		}
		multi = true
		for i := 1; i < len(times); i++ {
			gap := times[i] - times[i-1]
			if gap != pacerSpacing {
				t.Fatalf("pacer gap = %v, want %v", gap, pacerSpacing)
			}
		}
	}
	if !multi {
		t.Fatal("no multi-packet frames observed")
	}
}

func TestPacedPacketsCarryActualSendTime(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultClientConfig("c", true)
	cfg.StartRate = 3_000_000
	c := NewClient(e, sim.NewRNG(2), cfg, nil, nil)
	link := &collectLink{engine: e}
	c.Attach(link)
	c.Start()
	e.RunUntil(100 * sim.Millisecond)
	c.Stop()
	for i, p := range link.pkts {
		if p.SentAt != link.at[i] {
			t.Fatalf("packet SentAt %v but sent at %v", p.SentAt, link.at[i])
		}
	}
}

func TestSessionWithoutAttachDropsSafely(t *testing.T) {
	// A client with no link must not panic; packets are discarded.
	e := sim.NewEngine()
	c := NewClient(e, sim.NewRNG(3), DefaultClientConfig("c", true), nil, nil)
	c.Start()
	e.RunUntil(100 * sim.Millisecond)
	c.Stop()
	if c.SentPackets != 0 {
		t.Fatalf("unattached client counted %d sends", c.SentPackets)
	}
}
