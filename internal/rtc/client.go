package rtc

import (
	"github.com/domino5g/domino/internal/gcc"
	"github.com/domino5g/domino/internal/jitterbuffer"
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// MTU is the media packet payload ceiling (bytes on the wire).
const MTU = 1200

// ClientConfig parameterizes one call participant.
type ClientConfig struct {
	// Name labels the client in traces.
	Name string
	// Local marks the cellular-side client (the paper's "local" /
	// experiment UE); the wired peer is remote.
	Local bool
	// StartRate seeds the congestion controller and encoder.
	StartRate float64
	// GCC is the congestion controller configuration.
	GCC gcc.Config
	// Video is the encoder profile.
	Video VideoSourceConfig
	// Audio is the audio source profile.
	Audio AudioSourceConfig
	// FeedbackInterval is the RTCP transport-feedback period.
	FeedbackInterval sim.Time
	// StatsInterval is the stats sampling period (the paper's
	// instrumented client samples every 50 ms).
	StatsInterval sim.Time
}

// DefaultClientConfig returns the standard profile.
func DefaultClientConfig(name string, local bool) ClientConfig {
	start := 1_000_000.0
	return ClientConfig{
		Name:             name,
		Local:            local,
		StartRate:        start,
		GCC:              gcc.DefaultConfig(start),
		Video:            DefaultVideoSourceConfig(),
		Audio:            DefaultAudioSourceConfig(),
		FeedbackInterval: 100 * sim.Millisecond,
		StatsInterval:    50 * sim.Millisecond,
	}
}

// StatsObserver consumes the 50 ms stats stream.
type StatsObserver interface {
	OnStats(trace.WebRTCStatsRecord)
}

// PacketObserver sees every media/RTCP packet delivered to a client,
// with both timestamps populated — the pcap capture points.
type PacketObserver interface {
	OnPacket(trace.PacketRecord)
}

// Client is one WebRTC endpoint: encoder + packetizer + GCC on the send
// side; frame assembly, jitter buffers, and feedback generation on the
// receive side.
type Client struct {
	cfg    ClientConfig
	engine *sim.Engine
	rng    *sim.RNG

	out netem.Link // outgoing media+RTCP link (toward the peer)

	ctrl  *gcc.Controller
	video *VideoSource
	vbuf  *jitterbuffer.VideoBuffer
	abuf  *jitterbuffer.AudioBuffer

	seq        uint64
	audioSeq   uint64
	sentFPSWin []sim.Time

	// Receive-side feedback accumulation.
	pendingResults []gcc.PacketResult
	highestSeqSeen uint64
	seenSeqs       map[uint64]bool

	// Direction of travel of this client's outgoing packets through
	// the 5G cell (UL for the local client, DL for the remote).
	outDir netem.Direction

	statsObs  StatsObserver
	packetObs PacketObserver

	tickers []*sim.Ticker

	// Counters.
	SentPackets uint64
	RecvPackets uint64
	SentBytes   uint64
}

// NewClient constructs a client; Attach must be called before Start.
func NewClient(engine *sim.Engine, rng *sim.RNG, cfg ClientConfig, statsObs StatsObserver, packetObs PacketObserver) *Client {
	if cfg.FeedbackInterval <= 0 {
		cfg.FeedbackInterval = 100 * sim.Millisecond
	}
	if cfg.StatsInterval <= 0 {
		cfg.StatsInterval = 50 * sim.Millisecond
	}
	c := &Client{
		cfg:       cfg,
		engine:    engine,
		rng:       rng.Fork(),
		ctrl:      gcc.NewController(cfg.GCC, engine.Now()),
		vbuf:      jitterbuffer.NewVideoBuffer(jitterbuffer.DefaultVideoConfig()),
		abuf:      jitterbuffer.NewAudioBuffer(jitterbuffer.DefaultAudioConfig()),
		seenSeqs:  make(map[uint64]bool),
		statsObs:  statsObs,
		packetObs: packetObs,
	}
	c.video = NewVideoSource(cfg.Video, cfg.StartRate, c.rng)
	c.outDir = netem.Downlink
	if cfg.Local {
		c.outDir = netem.Uplink
	}
	return c
}

// Attach sets the outgoing link toward the peer.
func (c *Client) Attach(out netem.Link) { c.out = out }

// Start begins media generation and periodic tasks.
func (c *Client) Start() {
	frameInterval := sim.FromMilliseconds(1000 / c.cfg.Video.FPS)
	c.tickers = append(c.tickers,
		c.engine.NewTicker(c.rng.Jitter(frameInterval, 0.3), frameInterval, c.onVideoFrame),
		c.engine.NewTicker(c.rng.Jitter(c.cfg.Audio.PacketInterval, 0.3), c.cfg.Audio.PacketInterval, c.onAudioTick),
		c.engine.NewTicker(c.cfg.FeedbackInterval, c.cfg.FeedbackInterval, c.onFeedbackTick),
		c.engine.NewTicker(c.cfg.StatsInterval, c.cfg.StatsInterval, c.onStatsTick),
	)
}

// Stop cancels periodic activity.
func (c *Client) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
}

// pacerSpacing is the inter-packet gap the send-side pacer applies
// within one frame burst. Pacing keeps intra-frame delay spread from
// polluting GCC's inter-group delay measurements, as libwebrtc's pacer
// does; the residual burstiness still shows up as the paper's Fig. 14
// multi-TB frames.
const pacerSpacing = 800 * sim.Microsecond

// onVideoFrame encodes one frame and sends it as a paced packet burst.
func (c *Client) onVideoFrame(now sim.Time) {
	c.video.SetRate(c.ctrl.PushbackRate())
	f := c.video.NextFrame(now)
	remaining := f.Bytes
	i := 0
	for remaining > 0 {
		size := remaining
		if size > MTU {
			size = MTU
		}
		remaining -= size
		c.seq++
		p := &netem.Packet{
			Seq: c.seq, Kind: netem.KindVideo, Size: size,
			FrameID: f.ID, LastOfFrame: remaining <= 0, KeyFrame: f.Key,
		}
		if i == 0 {
			p.SentAt = now
			c.sendPacket(p)
		} else {
			c.engine.Schedule(now+sim.Time(i)*pacerSpacing, func() {
				p.SentAt = c.engine.Now()
				c.sendPacket(p)
			})
		}
		i++
	}
	c.sentFPSWin = append(c.sentFPSWin, now)
	if len(c.sentFPSWin) > 90 {
		c.sentFPSWin = c.sentFPSWin[len(c.sentFPSWin)-90:]
	}
}

// onAudioTick sends one audio packet.
func (c *Client) onAudioTick(now sim.Time) {
	c.seq++
	c.audioSeq++
	p := &netem.Packet{
		Seq: c.seq, Kind: netem.KindAudio, Size: c.cfg.Audio.PacketBytes,
		SentAt: now,
	}
	c.sendPacket(p)
}

func (c *Client) sendPacket(p *netem.Packet) {
	if c.out == nil {
		return
	}
	c.ctrl.OnPacketSent(p.Seq, p.Size)
	c.SentPackets++
	c.SentBytes += uint64(p.Size)
	c.out.Send(p)
}

// Receive is the peer-facing delivery sink: media packets feed the
// jitter buffers and the feedback accumulator; RTCP packets feed GCC.
func (c *Client) Receive(p *netem.Packet) {
	now := c.engine.Now()
	c.RecvPackets++
	if c.packetObs != nil {
		// The record's direction is the packet's travel direction
		// through the cell: the local client receives DL traffic.
		dir := netem.Downlink
		if !c.cfg.Local {
			dir = netem.Uplink
		}
		c.packetObs.OnPacket(trace.PacketRecord{
			Seq: p.Seq, Kind: p.Kind, Dir: dir, Size: p.Size,
			SentAt: p.SentAt, Arrived: now,
		})
	}

	switch p.Kind {
	case netem.KindRTCP:
		if results, ok := p.Payload.([]gcc.PacketResult); ok {
			c.ctrl.OnFeedback(now, results)
		}
		return
	case netem.KindVideo:
		if p.LastOfFrame {
			// RLC in-order delivery + FIFO wired paths mean the frame
			// is complete when its last packet arrives.
			c.vbuf.OnFrame(p.FrameID, p.SentAt, now)
		}
	case netem.KindAudio:
		c.abuf.OnPacket(p.SentAt, now)
	}

	// Accumulate transport feedback for the peer's GCC.
	if !c.seenSeqs[p.Seq] {
		c.seenSeqs[p.Seq] = true
		c.pendingResults = append(c.pendingResults, gcc.PacketResult{
			Seq: p.Seq, Size: p.Size, SentAt: p.SentAt, RecvAt: now,
		})
		if p.Seq > c.highestSeqSeen {
			c.highestSeqSeen = p.Seq
		}
	}
}

// onFeedbackTick ships accumulated transport feedback to the peer.
func (c *Client) onFeedbackTick(now sim.Time) {
	if c.out == nil || len(c.pendingResults) == 0 {
		return
	}
	results := c.pendingResults
	c.pendingResults = nil
	// Trim the dedup set to bound memory (entries far below the
	// highest seq can never recur: paths are FIFO).
	if len(c.seenSeqs) > 4096 {
		for s := range c.seenSeqs {
			if s+4096 < c.highestSeqSeen {
				delete(c.seenSeqs, s)
			}
		}
	}
	c.seq++
	p := &netem.Packet{
		Seq: c.seq, Kind: netem.KindRTCP,
		Size:    80 + 8*len(results),
		SentAt:  now,
		Payload: results,
	}
	// RTCP is not congestion controlled; send directly.
	c.SentPackets++
	c.out.Send(p)
}

// onStatsTick emits one instrumented-client stats record.
func (c *Client) onStatsTick(now sim.Time) {
	if c.statsObs == nil {
		return
	}
	vs := c.vbuf.Stats(now)
	as := c.abuf.Stats()
	snap := c.ctrl.Snapshot(now)
	c.ctrl.Tick(now)

	outFPS := 0
	for i := len(c.sentFPSWin) - 1; i >= 0; i-- {
		if now-c.sentFPSWin[i] > sim.Second {
			break
		}
		outFPS++
	}
	c.statsObs.OnStats(trace.WebRTCStatsRecord{
		At:    now,
		Local: c.cfg.Local,

		InboundFPS:       vs.FPS,
		OutboundFPS:      float64(outFPS),
		OutboundHeight:   int(c.video.Resolution()),
		InboundHeight:    0, // filled by Session from the peer
		VideoJBDelayMs:   vs.CurrentDelayMs,
		AudioJBDelayMs:   as.CurrentDelayMs,
		MinJBDelayMs:     vs.TargetDelayMs,
		FrozenNow:        vs.FrozenNow,
		FreezeTotalMs:    vs.FreezeTotalMs,
		ConcealedSamples: as.ConcealedSamples,
		TotalSamples:     as.TotalSamples,

		TargetBitrateBps:   snap.TargetRateBps,
		PushbackRateBps:    snap.PushbackRateBps,
		OutstandingBytes:   snap.OutstandingBytes,
		CongestionWindow:   snap.CongestionWindow,
		GCCNetState:        snap.State,
		TrendlineSlope:     snap.TrendSlope,
		TrendlineThreshold: snap.TrendThreshold,
		AckedBitrateBps:    snap.AckedBitrateBps,
	})
}

// VideoBufferStats exposes the receive buffer state.
func (c *Client) VideoBufferStats(now sim.Time) jitterbuffer.VideoStats { return c.vbuf.Stats(now) }

// AudioBufferStats exposes the audio buffer state.
func (c *Client) AudioBufferStats() jitterbuffer.AudioStats { return c.abuf.Stats() }

// Controller exposes the congestion controller (read-mostly).
func (c *Client) Controller() *gcc.Controller { return c.ctrl }

// Video exposes the video source.
func (c *Client) Video() *VideoSource { return c.video }
