// Package rtc implements the WebRTC-like media stack of the
// reproduction: video/audio sources with an encoder rate ladder, RTP
// packetization, receive-side frame assembly and jitter buffering,
// transport-wide RTCP feedback driving GCC, a 50 ms stats collector
// matching the paper's instrumented client, and the two-party Session
// that wires clients across a 5G cell and wired paths.
package rtc

import (
	"github.com/domino5g/domino/internal/sim"
)

// Resolution is a video encode resolution (vertical lines).
type Resolution int

// The WebRTC simulcast ladder the paper observes (Table 3).
const (
	Res180  Resolution = 180
	Res360  Resolution = 360
	Res540  Resolution = 540
	Res720  Resolution = 720
	Res1080 Resolution = 1080
)

// ladder maps minimum sustainable encoder rate (bps) to resolution.
var ladder = []struct {
	minRate float64
	res     Resolution
}{
	{2_600_000, Res1080},
	{1_300_000, Res720},
	{650_000, Res540},
	{280_000, Res360},
	{0, Res180},
}

// ResolutionForRate returns the ladder rung for an encoder rate.
func ResolutionForRate(bps float64) Resolution {
	for _, l := range ladder {
		if bps >= l.minRate {
			return l.res
		}
	}
	return Res180
}

// VideoSourceConfig parameterizes the synthetic encoder.
type VideoSourceConfig struct {
	// FPS is the capture/encode frame rate.
	FPS float64
	// KeyframeInterval is the distance between intra frames.
	KeyframeInterval int
	// KeyframeScale is the size multiplier for keyframes.
	KeyframeScale float64
	// SizeJitter is the relative stddev of per-frame size variation.
	SizeJitter float64
}

// DefaultVideoSourceConfig returns a 30 fps encoder profile matching
// the prerecorded-clip injection of the paper's experiments.
func DefaultVideoSourceConfig() VideoSourceConfig {
	return VideoSourceConfig{FPS: 30, KeyframeInterval: 300, KeyframeScale: 3.0, SizeJitter: 0.18}
}

// VideoFrame is one encoded frame.
type VideoFrame struct {
	ID        uint64
	Bytes     int
	Key       bool
	Res       Resolution
	CaptureAt sim.Time
}

// VideoSource produces frames sized to the current encoder rate. The
// encoder follows the pushback rate (GCC's final output) with a small
// reaction lag, as libwebrtc's rate allocator does.
type VideoSource struct {
	cfg  VideoSourceConfig
	rng  *sim.RNG
	rate float64 // current encoder rate (bps)

	nextID     uint64
	frameCount int

	// resTime accumulates wall time per resolution for Table 3.
	resTime map[Resolution]sim.Time
	lastAt  sim.Time
	curRes  Resolution
}

// NewVideoSource returns a source at startRate.
func NewVideoSource(cfg VideoSourceConfig, startRate float64, rng *sim.RNG) *VideoSource {
	if cfg.FPS <= 0 {
		cfg = DefaultVideoSourceConfig()
	}
	return &VideoSource{
		cfg: cfg, rng: rng.Fork(), rate: startRate,
		resTime: make(map[Resolution]sim.Time),
		curRes:  ResolutionForRate(startRate),
	}
}

// SetRate updates the encoder rate (called from the GCC output). The
// encoder smooths rate changes over ~300 ms.
func (s *VideoSource) SetRate(bps float64) {
	s.rate = 0.7*s.rate + 0.3*bps
}

// Rate returns the current encoder rate.
func (s *VideoSource) Rate() float64 { return s.rate }

// Resolution returns the current ladder rung.
func (s *VideoSource) Resolution() Resolution { return s.curRes }

// NextFrame produces the frame captured at time at.
func (s *VideoSource) NextFrame(at sim.Time) VideoFrame {
	// Account resolution residency for Table 3.
	if s.lastAt != 0 {
		s.resTime[s.curRes] += at - s.lastAt
	}
	s.lastAt = at
	s.curRes = ResolutionForRate(s.rate)

	bytes := s.rate / 8 / s.cfg.FPS
	key := s.frameCount%s.cfg.KeyframeInterval == 0
	if key {
		bytes *= s.cfg.KeyframeScale
	}
	bytes *= s.rng.Uniform(1-s.cfg.SizeJitter, 1+s.cfg.SizeJitter)
	if bytes < 200 {
		bytes = 200
	}
	s.frameCount++
	s.nextID++
	return VideoFrame{ID: s.nextID, Bytes: int(bytes), Key: key, Res: s.curRes, CaptureAt: at}
}

// ResolutionShares returns the fraction of time spent at each ladder
// rung (Table 3 rows).
func (s *VideoSource) ResolutionShares() map[Resolution]float64 {
	var total sim.Time
	for _, d := range s.resTime {
		total += d
	}
	out := make(map[Resolution]float64, len(s.resTime))
	if total == 0 {
		return out
	}
	for r, d := range s.resTime {
		out[r] = float64(d) / float64(total)
	}
	return out
}

// AudioSourceConfig parameterizes the Opus-like audio source.
type AudioSourceConfig struct {
	// PacketInterval is the packet spacing (20 ms).
	PacketInterval sim.Time
	// PacketBytes is the payload+header size per packet.
	PacketBytes int
}

// DefaultAudioSourceConfig returns a 20 ms / ~48 kbit/s profile.
func DefaultAudioSourceConfig() AudioSourceConfig {
	return AudioSourceConfig{PacketInterval: 20 * sim.Millisecond, PacketBytes: 120}
}
