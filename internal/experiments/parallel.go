package experiments

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/trace"
)

// DeriveSeed maps (base seed, cell name, session index) to the seed of
// one simulated session. The derivation depends only on stable keys —
// never on scheduling or iteration order — which is what makes the
// worker-pool fan-out byte-identical to the sequential path: each
// session's randomness is fixed the moment its identity is known.
//
// The result is base ⊕ FNV-1a64(cellName ‖ sessionIdx), nudged away
// from zero because this package reserves a zero seed as "unset"
// (Options.Defaults replaces it), so no derived seed should collide
// with that sentinel.
func DeriveSeed(base uint64, cellName string, sessionIdx int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(cellName))
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(sessionIdx))
	h.Write(idx[:])
	s := base ^ h.Sum64()
	if s == 0 {
		s = 0x9e3779b97f4a7c15 // golden-ratio constant; any fixed nonzero value works
	}
	return s
}

// RunParallel executes the given experiments across opts.Workers
// workers and returns their results in the order the IDs were given.
// All IDs are validated up front so an unknown ID fails fast without
// burning simulation time; a runner failure surfaces as the error of
// the lowest failing ID, matching the sequential path.
func RunParallel(ids []string, opts Options) ([]Result, error) {
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, err := lookup(id)
		if err != nil {
			return nil, err
		}
		runners[i] = r
	}
	return runRunners(ids, runners, opts)
}

// runRunners is the worker-pool core of RunParallel, split out so tests
// can inject failing runners without touching the registry.
//
// Workers is a total budget enforced by a single shared work-stealing
// executor: the experiment fan-out and every per-experiment session
// fan-out run as nested Map calls on the same pool. Because Map is
// caller-helps, a worker blocked on an inner fan-out executes that
// fan-out's tasks itself, so total parallelism stays at opts.Workers
// with no static outer×inner width split (and no sequential tail when
// one slow experiment remains — its sessions spread over the whole
// pool). Worker counts never affect artifact bytes.
func runRunners(ids []string, runners []Runner, opts Options) ([]Result, error) {
	opts = opts.Defaults()
	if opts.Workers > 1 && opts.exec == nil {
		ex := parallel.NewExecutor(opts.Workers, nil)
		defer ex.Close()
		opts.exec = ex
	}
	out := make([]Result, len(ids))
	err := opts.forEach(len(ids), func(i int) error {
		start := time.Now()
		res, err := runners[i](opts)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
		res.Elapsed = time.Since(start)
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// cellRun is one completed simulated call on a preset.
type cellRun struct {
	Cfg  ran.CellConfig
	Sess *rtc.Session
	Set  *trace.Set
}

// runPresetSessions simulates one call per preset, fanned out across
// o.Workers workers. Slot i always holds preset i's run and each run's
// seed derives from the preset name, so the assembled slice — and any
// artifact rendered from it in slot order — is independent of worker
// count.
func runPresetSessions(presets []ran.CellConfig, o Options) ([]cellRun, error) {
	out := make([]cellRun, len(presets))
	err := o.forEach(len(presets), func(i int) error {
		cfg := presets[i]
		s, set, err := runCellSession(cfg, o.Duration, DeriveSeed(o.Seed, cfg.Name, 0))
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name, err)
		}
		out[i] = cellRun{Cfg: cfg, Sess: s, Set: set}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
