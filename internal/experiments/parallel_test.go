package experiments

import (
	"errors"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

func TestDeriveSeed(t *testing.T) {
	s := DeriveSeed(7, "Amarisoft 38MHz TDD", 3)
	if s != DeriveSeed(7, "Amarisoft 38MHz TDD", 3) {
		t.Fatal("DeriveSeed is not stable")
	}
	if s == 0 {
		t.Fatal("derived seed must be nonzero")
	}
	if s == DeriveSeed(7, "Amarisoft 38MHz TDD", 4) {
		t.Fatal("session index must change the seed")
	}
	if s == DeriveSeed(7, "Mosolabs 20MHz TDD", 3) {
		t.Fatal("cell name must change the seed")
	}
	if s == DeriveSeed(8, "Amarisoft 38MHz TDD", 3) {
		t.Fatal("base seed must change the seed")
	}
	// The zero-avoidance path: using the hash itself as the base makes
	// base ^ hash == 0, which must still yield a usable nonzero seed.
	if DeriveSeed(DeriveSeed(0, "x", 0), "x", 0) == 0 {
		t.Fatal("zero seed escaped")
	}
}

// TestRunParallelDeterministicAcrossWorkers is the engine's core
// guarantee: for a fixed seed, the artifact bytes are identical whether
// the batch runs sequentially or over 2 or 8 workers. The ID sample
// covers every fan-out shape — preset fan-out (table1, fig8), the
// (preset × session) analyzer grid (fig10), a single-session runner
// (fig2), and a pure-computation runner (fig11).
func TestRunParallelDeterministicAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "fig2", "fig8", "fig10", "fig11"}
	opts := Options{Duration: 12 * sim.Second, Seed: 11, Sessions: 2}

	opts.Workers = 1
	base, err := RunParallel(ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(ids) {
		t.Fatalf("got %d results, want %d", len(base), len(ids))
	}
	for i, res := range base {
		if res.ID != ids[i] {
			t.Fatalf("slot %d holds %q, want %q", i, res.ID, ids[i])
		}
		if len(res.Text) == 0 {
			t.Fatalf("%s: empty artifact", res.ID)
		}
	}
	for _, workers := range []int{2, 8} {
		opts.Workers = workers
		got, err := RunParallel(ids, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].Text != base[i].Text {
				t.Fatalf("workers=%d: %s diverged from sequential output:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					workers, base[i].ID, base[i].Text, got[i].Text)
			}
		}
	}
}

// TestRunAllMatchesRunParallel pins RunAll to the batch engine: same
// IDs, same order, same artifact bytes as per-ID Run calls.
func TestRunAllMatchesRunParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration is slow")
	}
	opts := Options{Duration: 10 * sim.Second, Seed: 3, Workers: 4}
	all, err := RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(all) != len(ids) {
		t.Fatalf("RunAll returned %d results, want %d", len(all), len(ids))
	}
	for i, res := range all {
		if res.ID != ids[i] {
			t.Fatalf("slot %d holds %q, want registration order %q", i, res.ID, ids[i])
		}
	}
	// Spot-check one artifact against a lone sequential Run.
	single, err := Run("table1", Options{Duration: 10 * sim.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, res := range all {
		if res.ID == "table1" {
			found = true
			if res.Text != single.Text {
				t.Fatal("batch artifact differs from single sequential Run")
			}
		}
	}
	if !found {
		t.Fatal("table1 missing from RunAll output")
	}
}

func TestRunParallelUnknownIDFailsFast(t *testing.T) {
	_, err := RunParallel([]string{"fig11", "fig99"}, Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown id not reported: %v", err)
	}
}

// TestRunRunnersErrorPropagation injects a failing runner into the pool
// and checks that the failure of the lowest-index runner surfaces,
// wrapped with its ID, while healthy runners are unaffected.
func TestRunRunnersErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	ok := func(Options) (Result, error) { return Result{ID: "ok", Text: "x"}, nil }
	fail := func(Options) (Result, error) { return Result{}, boom }
	for _, workers := range []int{1, 4} {
		_, err := runRunners(
			[]string{"a", "b", "c", "d"},
			[]Runner{ok, fail, ok, fail},
			Options{Duration: sim.Second, Seed: 1, Workers: workers},
		)
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error not propagated: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "experiments: b:") {
			t.Fatalf("workers=%d: lowest failing ID not named: %v", workers, err)
		}
	}
}
