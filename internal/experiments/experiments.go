// Package experiments regenerates every table and figure of the
// paper's evaluation from the simulator substrate: the motivation
// experiments (Figs. 2–6, Table 1), the longitudinal per-cell study
// (Fig. 8, Table 3), the Domino analysis statistics (Fig. 10,
// Tables 2 and 4), the extensibility demo (Fig. 11), and the
// mechanism case studies (Figs. 12–22).
//
// Runners return formatted text artifacts; cmd/experiments prints them
// and EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/sim"
)

// Options tune experiment scale. Defaults keep a full regeneration
// under a couple of minutes; the paper's durations can be approximated
// by raising Duration.
type Options struct {
	// Duration is the per-session call length (default 60 s; the
	// paper's calls are 30 min).
	Duration sim.Time
	// Seed anchors all randomness. Experiments that fan sessions out
	// (the preset and preset×session aggregates) derive each session's
	// stream via DeriveSeed(Seed, cellName, sessionIdx); single-session
	// case studies use Seed directly. Either way the inputs are stable
	// keys, so artifacts are byte-identical for a given Seed regardless
	// of Workers.
	Seed uint64
	// Sessions is the number of calls per cell for aggregate
	// statistics (default 1; the paper used 14 across 4 cells).
	Sessions int
	// Workers is the worker-pool width used both to fan experiments
	// out in RunAll/RunParallel and to fan sessions out inside a
	// single experiment. Default 1 (fully sequential); any value
	// produces identical artifact text for the same Seed.
	Workers int

	// exec, when set, is the shared work-stealing executor every
	// fan-out in this options scope runs on. RunParallel installs one
	// sized to Workers: because Executor.Map is caller-helps and
	// nestable, the per-experiment session fan-outs ride the same pool
	// — total parallelism stays bounded by Workers with no static
	// outer×inner width split. Nil (the default) selects the plain
	// parallel.ForEach pool per fan-out.
	exec *parallel.Executor
}

// forEach is the package's single fan-out primitive: indexed, with
// ForEach's determinism contract (per-index output slots, lowest
// failing index's error). It dispatches onto the shared executor when
// one is installed and otherwise onto a one-shot ForEach pool.
func (o Options) forEach(n int, fn func(i int) error) error {
	if o.exec != nil {
		return o.exec.Map(n, func(i int, _ any) error { return fn(i) })
	}
	return parallel.ForEach(o.Workers, n, fn)
}

// Defaults fills zero fields.
func (o Options) Defaults() Options {
	if o.Duration <= 0 {
		o.Duration = 60 * sim.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sessions <= 0 {
		o.Sessions = 1
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Result is one regenerated artifact.
type Result struct {
	ID    string
	Title string
	// PaperRef summarizes what the paper reports, for side-by-side
	// comparison in EXPERIMENTS.md.
	PaperRef string
	// Text is the regenerated table/series. Deterministic in
	// (Options.Seed, Options.Duration, Options.Sessions) and
	// independent of Options.Workers.
	Text string
	// Elapsed is the wall-clock time regenerating this artifact took.
	// It is reporting metadata only and excluded from determinism
	// guarantees.
	Elapsed time.Duration
}

// Runner regenerates one artifact.
type Runner func(Options) (Result, error)

var registry = map[string]Runner{}
var registryOrder []string

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate runner " + id)
	}
	registry[id] = r
	registryOrder = append(registryOrder, id)
}

// IDs returns all experiment IDs in registration order.
func IDs() []string { return append([]string(nil), registryOrder...) }

// lookup resolves an experiment ID.
func lookup(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		var known []string
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	return r, nil
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Result, error) {
	out, err := RunParallel([]string{id}, opts)
	if err != nil {
		return Result{}, err
	}
	return out[0], nil
}

// RunAll executes every experiment, fanning out across opts.Workers
// workers; results come back in registration order regardless of
// completion order.
func RunAll(opts Options) ([]Result, error) {
	return RunParallel(IDs(), opts)
}
