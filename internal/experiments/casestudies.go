package experiments

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/rrc"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stats"
	"github.com/domino5g/domino/internal/trace"
)

func init() {
	register("fig12", fig12)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig19", fig19)
	register("fig20", fig20)
	register("fig21", fig21)
	register("fig22", fig22)
}

// delayPhases summarizes media one-way delay (ms) before/during/after
// an event window, for one direction.
func delayPhases(set *trace.Set, dir netem.Direction, evStart, evEnd sim.Time) (before, during, after float64) {
	var b, d, a []float64
	for _, p := range set.Packets {
		if p.Dir != dir || p.Kind == netem.KindRTCP {
			continue
		}
		ms := p.Delay().Milliseconds()
		switch {
		case p.SentAt < evStart:
			b = append(b, ms)
		case p.SentAt < evEnd:
			d = append(d, ms)
		default:
			a = append(a, ms)
		}
	}
	return stats.NewCDF(b).Median(), stats.NewCDF(d).Quantile(0.9), stats.NewCDF(a).Median()
}

// fig12 reproduces the channel-degradation case study: a scripted SNR
// dip on the Amarisoft uplink causes MCS collapse, RLC buffer
// build-up, and a delay surge that clears after recovery.
func fig12(o Options) (Result, error) {
	cfg := ran.Amarisoft()
	cfg.ULChannel.DipRate = 0 // deterministic
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, o.Seed))
	if err != nil {
		return Result{}, err
	}
	evStart, evEnd := 20*sim.Second, 23*sim.Second
	sess.Cell.ULChannel().ScriptDip(evStart, evEnd, 16)

	// Sample the RLC buffer during the run.
	var bufBefore, bufDuring, bufAfter int
	sess.Engine.NewTicker(0, 20*sim.Millisecond, func(now sim.Time) {
		b := sess.Cell.ULBufferBytes()
		switch {
		case now < evStart:
			if b > bufBefore {
				bufBefore = b
			}
		case now < evEnd+sim.Second:
			if b > bufDuring {
				bufDuring = b
			}
		default:
			if b > bufAfter {
				bufAfter = b
			}
		}
	})
	set := sess.Run(40 * sim.Second)

	// MCS during vs outside the dip.
	var mcsIn, mcsOut []float64
	for _, r := range set.DCI {
		if r.Dir != netem.Uplink || r.OwnPRB == 0 {
			continue
		}
		if r.At >= evStart && r.At < evEnd {
			mcsIn = append(mcsIn, float64(r.MCS))
		} else {
			mcsOut = append(mcsOut, float64(r.MCS))
		}
	}
	before, during, after := delayPhases(set, netem.Uplink, evStart, evEnd+sim.Second)

	var b strings.Builder
	tb := stats.NewTable("Signal", "before", "during dip", "after recovery")
	tb.AddRow("UL MCS (median)", stats.NewCDF(mcsOut).Median(), stats.NewCDF(mcsIn).Median(), stats.NewCDF(mcsOut).Median())
	tb.AddRow("RLC buffer max (KB)", float64(bufBefore)/1e3, float64(bufDuring)/1e3, float64(bufAfter)/1e3)
	tb.AddRow("UL one-way delay (ms, p50/p90/p50)", before, during, after)
	b.WriteString(tb.String())
	return Result{
		ID:       "fig12",
		Title:    "Fig. 12 — channel degradation: MCS drop -> RLC buffer build-up -> delay surge -> recovery",
		PaperRef: "paper: MCS collapses at the dip, BSR buffer grows, delay reaches ~380 ms, then drains back to ~30 ms",
		Text:     b.String(),
	}, nil
}

// fig13 reproduces the cross-traffic case study on the busy commercial
// DL: a scripted burst crowds out the UE, delay rises, GCC detects
// overuse and cuts the target bitrate, then recovers.
func fig13(o Options) (Result, error) {
	cfg := ran.TMobileFDD()
	cfg.DLCross.UEs = 0 // replace stochastic load with the scripted burst
	cfg.DLCross.BaselineFraction = 0
	cfg.RRC = rrc.Stable()
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, o.Seed))
	if err != nil {
		return Result{}, err
	}
	evStart, evEnd := 20*sim.Second, 24*sim.Second
	sess.Cell.DLCross().ScriptBurst(evStart, evEnd, 0.9)
	set := sess.Run(40 * sim.Second)

	before, during, after := delayPhases(set, netem.Downlink, evStart, evEnd+sim.Second)
	// Remote client (DL sender) GCC behaviour.
	var rateBefore, rateMin, rateAfter float64 = 0, 1e18, 0
	overuse := false
	for _, r := range set.StatsSide(false) {
		switch {
		case r.At < evStart:
			rateBefore = r.TargetBitrateBps
		case r.At < evEnd+2*sim.Second:
			if r.TargetBitrateBps < rateMin {
				rateMin = r.TargetBitrateBps
			}
			if r.GCCNetState == trace.GCCOveruse {
				overuse = true
			}
		default:
			rateAfter = r.TargetBitrateBps
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "before", "during burst", "after")
	tb.AddRow("DL one-way delay (ms, p50/p90/p50)", before, during, after)
	tb.AddRow("DL target bitrate (Mbps)", rateBefore/1e6, rateMin/1e6, rateAfter/1e6)
	tb.AddRow("GCC overuse detected", "-", fmt.Sprintf("%v", overuse), "-")
	b.WriteString(tb.String())
	return Result{
		ID:       "fig13",
		Title:    "Fig. 13 — cross traffic: PRB crowd-out -> delay rise -> GCC overuse -> target-rate cut -> recovery",
		PaperRef: "paper: delay climbs to ~250 ms, GCC detects overuse ~0.8 s after burst onset and multiplicatively decreases",
		Text:     b.String(),
	}, nil
}

// fig14Presets returns the three cells the packet↔TB comparison spans.
func fig14Presets() []ran.CellConfig {
	return []ran.CellConfig{ran.TMobileTDD(), ran.TMobileFDD(), ran.Amarisoft()}
}

// Metric names under which fig14's trace-level rollups are stored.
const (
	fig14MetricTBsPerMin   = "ul_tbs_per_min"
	fig14MetricTBBytes     = "median_tb_bytes"
	fig14MetricSpreadP50Ms = "frame_spread_p50_ms"
	fig14MetricSpreadP90Ms = "frame_spread_p90_ms"
)

// fig14SessionMetrics computes one cell run's trace-level rollups: UL
// transport blocks per minute, the median TB payload, and the
// per-frame arrival delay-spread percentiles.
func fig14SessionMetrics(set *trace.Set, o Options) []rcastore.Metric {
	var tbBytes []float64
	tbs := 0
	for _, r := range set.DCI {
		if r.Dir == netem.Uplink && r.OwnPRB > 0 {
			tbs++
			tbBytes = append(tbBytes, float64(r.UsedBits)/8)
		}
	}
	// Delay spread: per video frame (send-time bursts), the span of
	// its packets' arrival times.
	c := stats.NewCDF(frameSpreads(set, netem.Uplink))
	return []rcastore.Metric{
		{Name: fig14MetricTBsPerMin, Value: float64(tbs) / o.Duration.Seconds() * 60},
		{Name: fig14MetricTBBytes, Value: stats.NewCDF(tbBytes).Median()},
		{Name: fig14MetricSpreadP50Ms, Value: c.Median()},
		{Name: fig14MetricSpreadP90Ms, Value: c.Quantile(0.9)},
	}
}

// fig14 reproduces the packet↔TB delay-spread comparison across cells:
// the number of transport blocks a video frame spans and the resulting
// intra-frame arrival spread. It is deliberately expressed as a
// longitudinal query: each session is analyzed into a report, collapsed
// into the fleet RCA store with the figure's trace-level rollups
// attached as named metrics, and the table rendered entirely from
// per-cell store queries. fig14Direct keeps the original trace-level
// rendering as the oracle; the two are differentially tested
// byte-identical.
func fig14(o Options) (Result, error) {
	runs, err := runPresetSessions(fig14Presets(), o)
	if err != nil {
		return Result{}, err
	}
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		return Result{}, err
	}
	st := rcastore.New(rcastore.Options{})
	for i, run := range runs {
		rep, err := analyzer.Analyze(run.Set)
		if err != nil {
			return Result{}, err
		}
		// Synthetic fleet timeline: sessions a minute apart.
		rec := rcastore.FromReport(fmt.Sprintf("fig14-s%02d", i), sim.Time(i)*sim.Minute, rep)
		rec.Metrics = fig14SessionMetrics(run.Set, o)
		st.Insert(rec)
	}

	tb := stats.NewTable("Cell", "UL TBs/min", "median TB bytes", "frame delay-spread p50 (ms)", "p90")
	for _, cfg := range fig14Presets() {
		recs := st.Query(rcastore.Query{Cell: cfg.Name})
		if len(recs) != 1 {
			return Result{}, fmt.Errorf("fig14: store query for cell %q matched %d sessions, want 1", cfg.Name, len(recs))
		}
		row := make([]any, 0, 5)
		row = append(row, cfg.Name)
		for _, name := range []string{fig14MetricTBsPerMin, fig14MetricTBBytes, fig14MetricSpreadP50Ms, fig14MetricSpreadP90Ms} {
			v, ok := recs[0].Metric(name)
			if !ok {
				return Result{}, fmt.Errorf("fig14: stored session for cell %q is missing metric %q", cfg.Name, name)
			}
			row = append(row, v)
		}
		tb.AddRow(row...)
	}
	return Result{
		ID:    "fig14",
		Title: "Fig. 14 — packet-to-TB mapping: per-frame delay spread across cells",
		PaperRef: "paper: 100 MHz TDD packs frames into few TBs (small spread); 15 MHz FDD needs >10 TBs/frame " +
			"(large spread); Amarisoft's poor UL forces low rate but spread persists",
		Text: tb.String(),
	}, nil
}

// fig14Direct is the original trace-level rendering of fig. 14, kept
// verbatim as the oracle for the store-backed fig14: the two must
// produce byte-identical tables.
func fig14Direct(o Options) (Result, error) {
	tb := stats.NewTable("Cell", "UL TBs/min", "median TB bytes", "frame delay-spread p50 (ms)", "p90")
	runs, err := runPresetSessions(fig14Presets(), o)
	if err != nil {
		return Result{}, err
	}
	for _, run := range runs {
		cfg, set := run.Cfg, run.Set
		var tbBytes []float64
		tbs := 0
		for _, r := range set.DCI {
			if r.Dir == netem.Uplink && r.OwnPRB > 0 {
				tbs++
				tbBytes = append(tbBytes, float64(r.UsedBits)/8)
			}
		}
		spreads := frameSpreads(set, netem.Uplink)
		c := stats.NewCDF(spreads)
		tb.AddRow(cfg.Name, float64(tbs)/o.Duration.Seconds()*60,
			stats.NewCDF(tbBytes).Median(), c.Median(), c.Quantile(0.9))
	}
	return Result{
		ID:    "fig14",
		Title: "Fig. 14 — packet-to-TB mapping: per-frame delay spread across cells",
		PaperRef: "paper: 100 MHz TDD packs frames into few TBs (small spread); 15 MHz FDD needs >10 TBs/frame " +
			"(large spread); Amarisoft's poor UL forces low rate but spread persists",
		Text: tb.String(),
	}, nil
}

// frameSpreads groups media packets into frames by send-time bursts and
// returns each frame's arrival-time span in ms.
func frameSpreads(set *trace.Set, dir netem.Direction) []float64 {
	var spreads []float64
	var burstStart, firstArr, lastArr sim.Time
	count := 0
	flush := func() {
		if count > 1 {
			spreads = append(spreads, (lastArr - firstArr).Milliseconds())
		}
		count = 0
	}
	for _, p := range set.Packets {
		if p.Dir != dir || p.Kind != netem.KindVideo {
			continue
		}
		if count == 0 || p.SentAt-burstStart > 5*sim.Millisecond {
			flush()
			burstStart = p.SentAt
			firstArr, lastArr = p.Arrived, p.Arrived
			count = 1
			continue
		}
		count++
		if p.Arrived < firstArr {
			firstArr = p.Arrived
		}
		if p.Arrived > lastArr {
			lastArr = p.Arrived
		}
	}
	flush()
	return spreads
}

// fig16 reproduces the proactive-grant accounting on the Mosolabs cell.
func fig16(o Options) (Result, error) {
	sess, set, err := runCellSession(ran.Mosolabs(), o.Duration, o.Seed)
	if err != nil {
		return Result{}, err
	}
	var proUsed, proUnused, reqUsed, reqUnused int
	for _, r := range set.DCI {
		if r.Dir != netem.Uplink || r.OwnPRB == 0 {
			continue
		}
		switch {
		case r.Proactive && r.Unused:
			proUnused++
		case r.Proactive:
			proUsed++
		case r.Unused:
			reqUnused++
		default:
			reqUsed++
		}
	}
	st := sess.Cell.ULStats()
	var b strings.Builder
	tb := stats.NewTable("Grant class", "fully used TBs", "partly/unused TBs")
	tb.AddRow("proactive", proUsed, proUnused)
	tb.AddRow("BSR-requested", reqUsed, reqUnused)
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nwasted grant capacity: %.1f KB over %v (%.2f%% of granted)\n",
		float64(st.WastedBytes)/1e3, o.Duration,
		100*float64(st.WastedBytes)/float64(maxU64(st.GrantedBytes, 1)))
	return Result{
		ID:       "fig16",
		Title:    "Fig. 16 — proactive UL grants cut first-packet latency but waste capacity",
		PaperRef: "paper: unused proactive grants (unfilled bars) and over-granted BSR grants waste bandwidth",
		Text:     b.String(),
	}, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fig17 reproduces the HARQ retransmission delay inflation.
func fig17(o Options) (Result, error) {
	// Two Amarisoft runs: default vs near-perfect channel. The HARQ
	// retransmission rate and the delay tail move together.
	noisy := ran.Amarisoft()
	clean := ran.Amarisoft()
	clean.ULChannel.MeanSNRdB = 35
	clean.ULChannel.DipRate = 0
	clean.ULChannel.FastFadeStdDB = 0.2
	clean.ULChannel.StdSNRdB = 0.5
	clean.ULLinkAdapt.Backoff = 6 // conservative: retx nearly impossible

	tb := stats.NewTable("Channel", "HARQ retx/min (UL)", "UL delay p50 (ms)", "p90", "p99")
	for _, run := range []struct {
		name string
		cfg  ran.CellConfig
	}{{"noisy (paper-like)", noisy}, {"clean (ablation)", clean}} {
		sess, set, err := runCellSession(run.cfg, o.Duration, o.Seed)
		if err != nil {
			return Result{}, err
		}
		c := stats.NewCDF(set.PacketDelays(netem.Uplink, netem.KindVideo, netem.KindAudio))
		st := sess.Cell.ULStats()
		tb.AddRow(run.name, float64(st.HARQRetx)/o.Duration.Seconds()*60,
			c.Median(), c.Quantile(0.9), c.Quantile(0.99))
	}
	return Result{
		ID:       "fig17",
		Title:    "Fig. 17 — HARQ retransmissions inflate packet delay by ~one HARQ RTT (10 ms) per attempt",
		PaperRef: "paper: hundreds of HARQ retx per minute; each adds ~10 ms to the packets in the retransmitted TB",
		Text:     tb.String(),
	}, nil
}

// fig18 reproduces the RLC retransmission case: HARQ exhaustion forces
// RLC recovery (~105 ms) and head-of-line blocking releases bursts.
func fig18(o Options) (Result, error) {
	cfg := ran.Amarisoft()
	cfg.ULChannel.DipRate = 0
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, o.Seed))
	if err != nil {
		return Result{}, err
	}
	// A deep dip long enough to exhaust HARQ on some TBs.
	sess.Cell.ULChannel().ScriptDip(20*sim.Second, 21*sim.Second, 30)
	set := sess.Run(40 * sim.Second)

	st := sess.Cell.ULStats()
	before, during, after := delayPhases(set, netem.Uplink, 20*sim.Second, 22*sim.Second)
	rlcLogs := 0
	for _, g := range set.GNBLogs {
		if g.Kind == trace.GNBLogRLCRetx {
			rlcLogs++
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "value")
	tb.AddRow("HARQ exhaustion events", st.HARQExhaust)
	tb.AddRow("RLC retransmissions", st.RLCRetx)
	tb.AddRow("gNB RLC-retx log entries", rlcLogs)
	tb.AddRow("max HoL release burst (packets)", st.HoLBurstMax)
	tb.AddRow("UL delay before/during/after (ms)", fmt.Sprintf("%.1f / %.1f / %.1f", before, during, after))
	b.WriteString(tb.String())
	return Result{
		ID:       "fig18",
		Title:    "Fig. 18 — RLC retransmission adds ~105 ms and releases HoL-blocked packet bursts",
		PaperRef: "paper: the RLC-recovered packet arrives ~105 ms late; blocked packets share one release timestamp",
		Text:     b.String(),
	}, nil
}

// fig19 reproduces the RRC state-transition outage.
func fig19(o Options) (Result, error) {
	cfg := ran.TMobileFDD()
	cfg.DLCross.UEs = 0
	cfg.DLCross.BaselineFraction = 0
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, o.Seed))
	if err != nil {
		return Result{}, err
	}
	sess.Cell.RRC().ScriptRelease(20 * sim.Second)
	set := sess.Run(40 * sim.Second)

	before, during, after := delayPhases(set, netem.Uplink, 20*sim.Second, 21*sim.Second)
	rntis := map[uint32]bool{}
	for _, r := range set.RRC {
		if r.RNTI != 0 {
			rntis[r.RNTI] = true
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "value")
	tb.AddRow("RRC transitions observed", len(set.RRC))
	tb.AddRow("distinct RNTIs", len(rntis))
	tb.AddRow("UL delay before/during/after (ms)", fmt.Sprintf("%.1f / %.1f / %.1f", before, during, after))
	b.WriteString(tb.String())
	return Result{
		ID:       "fig19",
		Title:    "Fig. 19 — RRC release halts the PHY ~300 ms; delay spikes toward 400 ms; RNTI changes",
		PaperRef: "paper: complete PHY silence during the transition, buffered traffic spikes delay to ~400 ms",
		Text:     b.String(),
	}, nil
}

// fig20 reproduces the jitter-buffer drain / freeze case study by
// injecting a forward-path delay surge.
func fig20(o Options) (Result, error) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Mosolabs(), o.Seed))
	if err != nil {
		return Result{}, err
	}
	// Surge on the DL wired leg: the local client's inbound stream.
	sess.DLWired().ScriptExtraDelay(20*sim.Second, 21500*sim.Millisecond, 280*sim.Millisecond)
	set := sess.Run(35 * sim.Second)

	vs := sess.Local.VideoBufferStats(35 * sim.Second)
	minFPS := 1e9
	jbZero := false
	for _, r := range set.StatsSide(true) {
		if r.At >= 20*sim.Second && r.At < 25*sim.Second {
			if r.InboundFPS < minFPS {
				minFPS = r.InboundFPS
			}
			if r.VideoJBDelayMs <= 0.5 {
				jbZero = true
			}
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "value")
	tb.AddRow("jitter buffer drained to 0", jbZero)
	tb.AddRow("freeze count", vs.FreezeCount)
	tb.AddRow("total freeze (ms)", vs.FreezeTotalMs)
	tb.AddRow("min inbound FPS during event", minFPS)
	b.WriteString(tb.String())
	return Result{
		ID:       "fig20",
		Title:    "Fig. 20 — delay surge drains the jitter buffer, freezing video and dropping frame rate",
		PaperRef: "paper: delay to ~280 ms drains the buffer; video freezes; FPS recovers only after the buffer refills",
		Text:     b.String(),
	}, nil
}

// fig21 reproduces the GCC target-rate trace: a forward delay ramp
// crosses the trendline threshold, overuse is declared, rate drops.
func fig21(o Options) (Result, error) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Mosolabs(), o.Seed))
	if err != nil {
		return Result{}, err
	}
	// Ramp the UL wired leg: the local sender's media path.
	for i := sim.Time(0); i < 3*sim.Second; i += 500 * sim.Millisecond {
		frac := float64(i) / float64(3*sim.Second)
		sess.ULWired().ScriptExtraDelay(20*sim.Second+i, 20*sim.Second+i+500*sim.Millisecond,
			sim.Time(frac*float64(350*sim.Millisecond)))
	}
	set := sess.Run(40 * sim.Second)

	var slopeMax, preRate, minRate float64
	minRate = 1e18
	overuseAt := sim.Time(0)
	fpsMin := 1e9
	for _, r := range set.StatsSide(true) {
		switch {
		case r.At < 20*sim.Second:
			preRate = r.TargetBitrateBps
		case r.At < 30*sim.Second:
			if r.TrendlineSlope > slopeMax {
				slopeMax = r.TrendlineSlope
			}
			if r.GCCNetState == trace.GCCOveruse && overuseAt == 0 {
				overuseAt = r.At
			}
			if r.TargetBitrateBps < minRate {
				minRate = r.TargetBitrateBps
			}
			if r.OutboundFPS < fpsMin {
				fpsMin = r.OutboundFPS
			}
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "value")
	tb.AddRow("target rate before ramp (Mbps)", preRate/1e6)
	tb.AddRow("max trendline slope during ramp", slopeMax)
	tb.AddRow("overuse first declared at", overuseAt.String())
	tb.AddRow("min target rate after overuse (Mbps)", minRate/1e6)
	tb.AddRow("min outbound FPS", fpsMin)
	b.WriteString(tb.String())
	return Result{
		ID:       "fig21",
		Title:    "Fig. 21 — delay ramp: trendline slope crosses threshold -> overuse -> multiplicative rate cut -> FPS/res drop",
		PaperRef: "paper: slope exceeds adaptive threshold, overuse declared, target rate multiplicatively decreased, frame rate drops",
		Text:     b.String(),
	}, nil
}

// fig22 reproduces the pushback case study: RTCP-only delay on the
// reverse path stalls feedback; outstanding bytes cross the congestion
// window; pushback rate drops while target stays high.
func fig22(o Options) (Result, error) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Mosolabs(), o.Seed))
	if err != nil {
		return Result{}, err
	}
	// Delay only RTCP on the DL wired leg: local's media is untouched,
	// but its feedback is late.
	sess.DLWired().ScriptExtraDelayKind(netem.KindRTCP, 20*sim.Second, 23*sim.Second, 400*sim.Millisecond)
	set := sess.Run(35 * sim.Second)

	var cwndFull, pushDrop bool
	var targetBefore, targetDuring, pushMin float64
	pushMin = 1e18
	for _, r := range set.StatsSide(true) {
		switch {
		case r.At < 20*sim.Second:
			targetBefore = r.TargetBitrateBps
		case r.At < 24*sim.Second:
			targetDuring = r.TargetBitrateBps
			if r.OutstandingBytes > r.CongestionWindow && r.CongestionWindow > 0 {
				cwndFull = true
			}
			if r.PushbackRateBps < pushMin {
				pushMin = r.PushbackRateBps
			}
			if r.PushbackRateBps < r.TargetBitrateBps*0.9 {
				pushDrop = true
			}
		}
	}
	var b strings.Builder
	tb := stats.NewTable("Signal", "value")
	tb.AddRow("target rate before / during RTCP stall (Mbps)",
		fmt.Sprintf("%.2f / %.2f", targetBefore/1e6, targetDuring/1e6))
	tb.AddRow("outstanding bytes exceeded cwnd", cwndFull)
	tb.AddRow("pushback dropped below target", pushDrop)
	tb.AddRow("min pushback rate during stall (Mbps)", pushMin/1e6)
	b.WriteString(tb.String())
	return Result{
		ID:       "fig22",
		Title:    "Fig. 22 — reverse-path (RTCP) delay alone triggers pushback-rate drops despite a stable target rate",
		PaperRef: "paper: RTCP delay >300 ms accumulates outstanding bytes past the window; pushback rate and FPS drop",
		Text:     b.String(),
	}, nil
}
