package experiments

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stats"
	"github.com/domino5g/domino/internal/trace"
	"github.com/domino5g/domino/internal/zoomqss"
)

func init() {
	register("table1", table1)
	register("fig2", fig2)
	register("fig3", fig3)
	register("fig4", fig4)
	register("fig5", fig5)
	register("fig6", fig6)
}

// runCellSession runs one call on a preset and returns its trace.
func runCellSession(cfg ran.CellConfig, duration sim.Time, seed uint64) (*rtc.Session, *trace.Set, error) {
	s, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, seed))
	if err != nil {
		return nil, nil, err
	}
	set := s.Run(duration)
	return s, set, nil
}

// runWiredSession runs the wired baseline call.
func runWiredSession(duration sim.Time, seed uint64) (*rtc.WiredSession, *trace.Set) {
	s := rtc.NewWiredSession(rtc.WiredSessionConfig{
		Path:   netem.WiredGCPPath(),
		Local:  rtc.DefaultClientConfig("local", true),
		Remote: rtc.DefaultClientConfig("remote", false),
		Seed:   seed,
	})
	return s, s.Run(duration)
}

// table1 regenerates Table 1: per-cell telemetry event rates.
func table1(o Options) (Result, error) {
	tb := stats.NewTable("Dataset", "Type", "Duplex", "DCI/min", "gNB/min", "Pkt/min", "WebRTC/min")
	runs, err := runPresetSessions(ran.Presets(), o)
	if err != nil {
		return Result{}, err
	}
	for _, run := range runs {
		cfg, set := run.Cfg, run.Set
		c := set.Counts()
		typ := "Public"
		if cfg.HasGNBLog || cfg.Name == "Mosolabs 20MHz TDD" {
			typ = "Private"
		}
		duplex := "TDD"
		if cfg.Frame.IsFDD() {
			duplex = "FDD"
		}
		tb.AddRow(cfg.Name, typ, duplex,
			set.RatePerMinute(c.DCI), set.RatePerMinute(c.GNBLog),
			set.RatePerMinute(c.Packets), set.RatePerMinute(c.WebRTC))
	}
	// Zoom QSS row: per-minute records ≈ 1 (the API reports minutely).
	tb.AddRow("Zoom API (campus)", "API", "-", 0.0, 0.0, 0.0, 1.0)
	return Result{
		ID:    "table1",
		Title: "Table 1 — dataset overview: telemetry event rates per minute",
		PaperRef: "paper: DCI 14k-38k/min, gNB 0-29k/min (Amarisoft only), " +
			"packets 97k-132k/min, WebRTC 8.7k-13.2k/min",
		Text: tb.String(),
	}, nil
}

// fig2 regenerates Fig. 2: one-way delay CDFs, 5G vs wired.
func fig2(o Options) (Result, error) {
	_, cellSet, err := runCellSession(ran.TMobileFDD(), o.Duration, o.Seed)
	if err != nil {
		return Result{}, err
	}
	_, wiredSet := runWiredSession(o.Duration, o.Seed)

	var b strings.Builder
	tb := stats.NewTable("Series", "p50 (ms)", "p90", "p99", "max")
	add := func(name string, xs []float64) {
		c := stats.NewCDF(xs)
		tb.AddRow(name, c.Median(), c.Quantile(0.9), c.Quantile(0.99), c.Max())
	}
	media := []netem.MediaKind{netem.KindVideo, netem.KindAudio}
	add("cellular UL", cellSet.PacketDelays(netem.Uplink, media...))
	add("cellular DL", cellSet.PacketDelays(netem.Downlink, media...))
	add("wired UL", wiredSet.PacketDelays(netem.Uplink, media...))
	add("wired DL", wiredSet.PacketDelays(netem.Downlink, media...))
	b.WriteString(tb.String())

	b.WriteString("\nCDF series (delay ms -> fraction):\n")
	pts := stats.LogSpace(1, 1000, 13)
	for _, s := range []struct {
		name string
		xs   []float64
	}{
		{"cellular-UL", cellSet.PacketDelays(netem.Uplink, media...)},
		{"wired-UL", wiredSet.PacketDelays(netem.Uplink, media...)},
	} {
		c := stats.NewCDF(s.xs)
		fmt.Fprintf(&b, "%-12s", s.name)
		for _, pt := range c.Series(pts) {
			fmt.Fprintf(&b, " %.0f:%.2f", pt[0], pt[1])
		}
		b.WriteString("\n")
	}
	return Result{
		ID:       "fig2",
		Title:    "Fig. 2 — one-way packet delay: 5G vs wired",
		PaperRef: "paper: 5G inflates median delay by 1-2 orders of magnitude; p99 352/381 ms UL/DL",
		Text:     b.String(),
	}, nil
}

// fig3 regenerates Fig. 3: jitter-buffer delay CDFs.
func fig3(o Options) (Result, error) {
	_, cellSet, err := runCellSession(ran.TMobileFDD(), o.Duration, o.Seed)
	if err != nil {
		return Result{}, err
	}
	_, wiredSet := runWiredSession(o.Duration, o.Seed)

	tb := stats.NewTable("Stream", "Network", "video p50 (ms)", "video p90", "audio p50", "audio p90")
	row := func(network string, set *trace.Set, local bool, stream string) {
		var video, audio []float64
		for _, r := range set.StatsSide(local) {
			video = append(video, r.VideoJBDelayMs)
			audio = append(audio, r.AudioJBDelayMs)
		}
		v, a := stats.NewCDF(video), stats.NewCDF(audio)
		tb.AddRow(stream, network, v.Median(), v.Quantile(0.9), a.Median(), a.Quantile(0.9))
	}
	// The UL stream is buffered at the remote client; DL at the local.
	row("cellular", cellSet, false, "UL")
	row("cellular", cellSet, true, "DL")
	row("wired", wiredSet, false, "UL")
	row("wired", wiredSet, true, "DL")
	return Result{
		ID:       "fig3",
		Title:    "Fig. 3 — jitter-buffer delay: 5G vs wired (ITU-T: >150 ms impacts interactivity)",
		PaperRef: "paper: 5G jitter-buffer delays frequently cross the 150 ms interactivity threshold; wired stays below",
		Text:     tb.String(),
	}, nil
}

// fig4 regenerates Fig. 4: concealed audio and freeze fractions.
func fig4(o Options) (Result, error) {
	cellS, _, err := runCellSession(ran.TMobileFDD(), o.Duration, o.Seed)
	if err != nil {
		return Result{}, err
	}
	wiredS, _ := runWiredSession(o.Duration, o.Seed)

	tb := stats.NewTable("Stream", "Network", "Concealed fraction", "Freeze fraction")
	addRow := func(stream, network string, as func() (uint64, uint64), fz func() (float64, sim.Time)) {
		concealed, total := as()
		fzMs, dur := fz()
		cf := 0.0
		if total > 0 {
			cf = float64(concealed) / float64(total)
		}
		ff := 0.0
		if dur > 0 {
			ff = fzMs / dur.Milliseconds()
		}
		tb.AddRow(stream, network, cf, ff)
	}
	// UL stream is played back at the remote client.
	addRow("UL", "cellular",
		func() (uint64, uint64) {
			st := cellS.Remote.AudioBufferStats()
			return st.ConcealedSamples, st.TotalSamples
		},
		func() (float64, sim.Time) {
			return cellS.Remote.VideoBufferStats(o.Duration).FreezeTotalMs, o.Duration
		})
	addRow("DL", "cellular",
		func() (uint64, uint64) {
			st := cellS.Local.AudioBufferStats()
			return st.ConcealedSamples, st.TotalSamples
		},
		func() (float64, sim.Time) {
			return cellS.Local.VideoBufferStats(o.Duration).FreezeTotalMs, o.Duration
		})
	addRow("UL", "wired",
		func() (uint64, uint64) {
			st := wiredS.Remote.AudioBufferStats()
			return st.ConcealedSamples, st.TotalSamples
		},
		func() (float64, sim.Time) {
			return wiredS.Remote.VideoBufferStats(o.Duration).FreezeTotalMs, o.Duration
		})
	addRow("DL", "wired",
		func() (uint64, uint64) {
			st := wiredS.Local.AudioBufferStats()
			return st.ConcealedSamples, st.TotalSamples
		},
		func() (float64, sim.Time) {
			return wiredS.Local.VideoBufferStats(o.Duration).FreezeTotalMs, o.Duration
		})
	return Result{
		ID:       "fig4",
		Title:    "Fig. 4 — concealed audio samples and video freezes: cellular vs wired",
		PaperRef: "paper: ~12% audio concealed and 6 s frozen over 5G in 5 min; wired near zero",
		Text:     tb.String(),
	}, nil
}

// zoomCDFRows renders per-access-type quantiles for one metric.
func zoomCDFRows(title string, get func(zoomqss.Record) float64, o Options) string {
	recs := zoomqss.Generate(zoomqss.DefaultConfig(), o.Seed)
	tb := stats.NewTable("Access", "p50", "p75", "p90", "p99")
	for _, a := range []zoomqss.AccessType{zoomqss.Wired, zoomqss.WiFi, zoomqss.Cellular} {
		c := stats.NewCDF(zoomqss.Column(zoomqss.Filter(recs, a), get))
		tb.AddRow(a.String(), c.Median(), c.Quantile(0.75), c.Quantile(0.9), c.Quantile(0.99))
	}
	return title + "\n" + tb.String()
}

// fig5 regenerates Fig. 5: campus Zoom jitter by access type.
func fig5(o Options) (Result, error) {
	text := zoomCDFRows("Outbound jitter (ms):", func(r zoomqss.Record) float64 { return r.OutboundJitterMs }, o) +
		"\n" + zoomCDFRows("Inbound jitter (ms):", func(r zoomqss.Record) float64 { return r.InboundJitterMs }, o)
	return Result{
		ID:       "fig5",
		Title:    "Fig. 5 — campus Zoom dataset: network jitter by access type",
		PaperRef: "paper: jitter consistently higher on cellular than Wi-Fi and wired",
		Text:     text,
	}, nil
}

// fig6 regenerates Fig. 6: campus Zoom loss by access type.
func fig6(o Options) (Result, error) {
	text := zoomCDFRows("Outbound loss (%):", func(r zoomqss.Record) float64 { return r.OutboundLossPct }, o) +
		"\n" + zoomCDFRows("Inbound loss (%):", func(r zoomqss.Record) float64 { return r.InboundLossPct }, o)
	return Result{
		ID:       "fig6",
		Title:    "Fig. 6 — campus Zoom dataset: packet loss by access type",
		PaperRef: "paper: cellular shows significantly higher loss than wired/Wi-Fi",
		Text:     text,
	}, nil
}
