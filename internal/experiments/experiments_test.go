package experiments

import (
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

// quickOpts keeps experiment tests fast: short calls, one session.
func quickOpts() Options {
	return Options{Duration: 20 * sim.Second, Seed: 11, Sessions: 1}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "table3",
		"fig10", "table2", "table4", "fig11", "headline",
		"fig12", "fig13", "fig14", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22",
		"scenarios",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", quickOpts()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestFig2ShapeCellularDominatesWired(t *testing.T) {
	res, err := Run("fig2", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "cellular UL") || !strings.Contains(res.Text, "wired UL") {
		t.Fatalf("missing series:\n%s", res.Text)
	}
}

func TestFig5OrderingInOutput(t *testing.T) {
	res, err := Run("fig5", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wired", "wifi", "cellular"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("missing access type %q:\n%s", want, res.Text)
		}
	}
}

func TestFig11GeneratesCode(t *testing.T) {
	res, err := Run("fig11", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "func BackwardTrace") {
		t.Fatalf("no generated detector:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "dl_rlc_retx") {
		t.Fatal("generated code missing the Fig. 11 chain")
	}
}

// The heavier end-to-end runners are exercised once each with short
// durations; shape assertions live with the runner outputs.
func TestCaseStudyRunnersProduceOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("case studies are slow")
	}
	for _, id := range []string{"fig12", "fig16", "fig20", "fig22"} {
		res, err := Run(id, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Text) == 0 || res.Title == "" || res.PaperRef == "" {
			t.Fatalf("%s: incomplete result", id)
		}
	}
}

// TestFig14StoreQueryMatchesDirect differentially tests the
// store-backed fig14 against the original trace-level rendering: the
// report->record collapse, metric attachment, and per-cell store
// queries must reproduce the direct table byte for byte.
func TestFig14StoreQueryMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three preset sessions twice")
	}
	o := quickOpts()
	via, err := fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := fig14Direct(o)
	if err != nil {
		t.Fatal(err)
	}
	if via.Text != direct.Text {
		t.Fatalf("store-backed fig14 diverged from the direct oracle:\nstore:\n%s\ndirect:\n%s", via.Text, direct.Text)
	}
	if via.Title != direct.Title || via.PaperRef != direct.PaperRef || via.ID != direct.ID {
		t.Fatal("fig14 result metadata diverged from the direct oracle")
	}
}

func TestTable1RatesPlausible(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Run("table1", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// All four cells and the Zoom row appear.
	for _, want := range []string{"T-Mobile", "Amarisoft", "Mosolabs", "Zoom"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("missing row %q:\n%s", want, res.Text)
		}
	}
}
