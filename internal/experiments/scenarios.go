package experiments

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/stats"
)

func init() {
	register("scenarios", scenariosCatalog)
}

// scenariosCatalog runs every registered scenario through the full
// pipeline — build, simulate, Domino analysis — and tabulates which
// causes dominate each one. It is the extensibility counterpart of the
// Table 1 aggregates: the same substrate, but over the whole scenario
// catalog instead of the four static presets. Each scenario's seed
// derives from its name, so the artifact is byte-identical for a given
// Options.Seed at any worker count.
func scenariosCatalog(o Options) (Result, error) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		return Result{}, err
	}
	scenarios := scenario.All()
	type row struct {
		name, cell, topCause string
		degPerMin            float64
		chainEvents          int
	}
	rows := make([]row, len(scenarios))
	err = o.forEach(len(scenarios), func(i int) error {
		s := scenarios[i]
		sess, err := s.Build(DeriveSeed(o.Seed, "scenario:"+s.Name, 0))
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		set := sess.Run(o.Duration)
		rep, err := analyzer.Analyze(set)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		top, topRate := "-", 0.0
		for _, c := range core.CauseClasses() {
			if r := rep.EventsPerMinute(c); r > topRate {
				top, topRate = c, r
			}
		}
		rows[i] = row{
			name:        s.Name,
			cell:        s.Cell,
			topCause:    top,
			degPerMin:   rep.DegradationEventsPerMinute(core.ConsequenceClasses()),
			chainEvents: rep.TotalChainEvents(),
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	var b strings.Builder
	tb := stats.NewTable("Scenario", "Cell", "Top cause", "Degradation ev/min", "Chain events")
	for _, r := range rows {
		tb.AddRow(r.name, r.cell, r.topCause, r.degPerMin, r.chainEvents)
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\n%d scenarios registered (%d dynamic kinds available)\n",
		len(scenarios), len(scenario.DynamicKinds()))
	return Result{
		ID:    "scenarios",
		Title: "Scenario catalog — per-scenario root-cause profile over the registered workloads",
		PaperRef: "extends Table 1/Fig. 10 beyond the four static cells: each registered scenario provokes " +
			"a different causal chain of the Fig. 9 graph",
		Text: b.String(),
	}, nil
}
