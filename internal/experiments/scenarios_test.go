package experiments

import (
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/scenario"
)

// TestScenariosCatalogShape checks the catalog artifact covers every
// registered scenario.
func TestScenariosCatalogShape(t *testing.T) {
	res, err := Run("scenarios", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(res.Text, name) {
			t.Fatalf("catalog artifact missing scenario %q:\n%s", name, res.Text)
		}
	}
}

// TestScenariosCatalogWorkerInvariant pins the golden-determinism
// contract across worker counts: the catalog artifact is byte-
// identical however the per-scenario sessions are fanned out.
func TestScenariosCatalogWorkerInvariant(t *testing.T) {
	opts := quickOpts()
	opts.Workers = 1
	seq, err := Run("scenarios", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par, err := Run("scenarios", opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Text != par.Text {
		t.Fatalf("catalog artifact differs across Workers settings\nworkers=1:\n%s\nworkers=4:\n%s", seq.Text, par.Text)
	}
}
