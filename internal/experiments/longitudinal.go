package experiments

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/stats"
)

func init() {
	register("fig8", fig8)
	register("table3", table3)
}

// fig8 regenerates Fig. 8: per-cell CDFs of one-way delay, target
// bitrate, frame rate, and jitter-buffer delay for UL and DL streams.
func fig8(o Options) (Result, error) {
	var b strings.Builder
	media := []netem.MediaKind{netem.KindVideo, netem.KindAudio}
	runs, err := runPresetSessions(ran.Presets(), o)
	if err != nil {
		return Result{}, err
	}
	for _, run := range runs {
		cfg, s, set := run.Cfg, run.Sess, run.Set
		fmt.Fprintf(&b, "== %s ==\n", cfg.Name)
		tb := stats.NewTable("Metric", "UL p50", "UL p90", "DL p50", "DL p90")

		ulD := stats.NewCDF(set.PacketDelays(netem.Uplink, media...))
		dlD := stats.NewCDF(set.PacketDelays(netem.Downlink, media...))
		tb.AddRow("one-way delay (ms)", ulD.Median(), ulD.Quantile(0.9), dlD.Median(), dlD.Quantile(0.9))

		// Target bitrate: UL sender is the local client.
		var ulRate, dlRate, ulFPS, dlFPS, ulJB, dlJB []float64
		for _, r := range set.StatsSide(true) { // local
			ulRate = append(ulRate, r.TargetBitrateBps/1e6)
			dlFPS = append(dlFPS, r.InboundFPS) // local receives the DL stream
			dlJB = append(dlJB, r.VideoJBDelayMs)
		}
		for _, r := range set.StatsSide(false) { // remote
			dlRate = append(dlRate, r.TargetBitrateBps/1e6)
			ulFPS = append(ulFPS, r.InboundFPS)
			ulJB = append(ulJB, r.VideoJBDelayMs)
		}
		ur, dr := stats.NewCDF(ulRate), stats.NewCDF(dlRate)
		tb.AddRow("target bitrate (Mbps)", ur.Median(), ur.Quantile(0.9), dr.Median(), dr.Quantile(0.9))
		uf, df := stats.NewCDF(ulFPS), stats.NewCDF(dlFPS)
		tb.AddRow("inbound frame rate (fps)", uf.Median(), uf.Quantile(0.9), df.Median(), df.Quantile(0.9))
		uj, dj := stats.NewCDF(ulJB), stats.NewCDF(dlJB)
		tb.AddRow("jitter-buffer delay (ms)", uj.Median(), uj.Quantile(0.9), dj.Median(), dj.Quantile(0.9))
		b.WriteString(tb.String())
		b.WriteString("\n")
		_ = s
	}
	return Result{
		ID:    "fig8",
		Title: "Fig. 8 — WebRTC performance metrics across the four 5G cells",
		PaperRef: "paper: UL delay medians exceed DL everywhere except the T-Mobile FDD DL long tail; " +
			"Amarisoft UL bitrate well below its DL; DL frame rates above UL",
		Text: b.String(),
	}, nil
}

// table3 regenerates Table 3: video resolution distribution per cell.
func table3(o Options) (Result, error) {
	tb := stats.NewTable("Cell", "Stream", "180p", "360p", "540p", "720p", "1080p")
	runs, err := runPresetSessions(ran.Presets(), o)
	if err != nil {
		return Result{}, err
	}
	for _, run := range runs {
		cfg, s := run.Cfg, run.Sess
		add := func(stream string, shares map[rtc.Resolution]float64) {
			tb.AddRow(cfg.Name, stream,
				shares[rtc.Res180], shares[rtc.Res360], shares[rtc.Res540],
				shares[rtc.Res720], shares[rtc.Res1080])
		}
		add("UL", s.Local.Video().ResolutionShares())
		add("DL", s.Remote.Video().ResolutionShares())
	}
	return Result{
		ID:       "table3",
		Title:    "Table 3 — video resolution distribution (fraction of time), UL vs DL",
		PaperRef: "paper: healthy cells sit at 540p; the Amarisoft UL spends 35% at 360p due to its poor uplink",
		Text:     tb.String(),
	}, nil
}
