package experiments

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/stats"
)

func init() {
	register("fig10", fig10)
	register("table2", table2)
	register("table4", table4)
	register("fig11", fig11)
	register("headline", headline)
}

// analyzeGroup runs Domino over sessions on the given presets and
// merges the reports. The (preset × session) grid fans out across
// o.Workers workers — one shared Analyzer serves all of them (it is
// safe for concurrent use) — and reports merge in grid order, so the
// aggregate is byte-identical whatever the worker count.
func analyzeGroup(presets []ran.CellConfig, o Options) (*core.Report, error) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		return nil, err
	}
	type job struct {
		cfg     ran.CellConfig
		session int
	}
	jobs := make([]job, 0, len(presets)*o.Sessions)
	for _, cfg := range presets {
		for s := 0; s < o.Sessions; s++ {
			jobs = append(jobs, job{cfg: cfg, session: s})
		}
	}
	reports := make([]*core.Report, len(jobs))
	err = o.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		_, set, err := runCellSession(j.cfg, o.Duration, DeriveSeed(o.Seed, j.cfg.Name, j.session))
		if err != nil {
			return fmt.Errorf("%s session %d: %w", j.cfg.Name, j.session, err)
		}
		rep, err := analyzer.Analyze(set)
		if err != nil {
			return fmt.Errorf("%s session %d: %w", j.cfg.Name, j.session, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return core.MergeReports(reports), nil
}

func commercialPresets() []ran.CellConfig {
	return []ran.CellConfig{ran.TMobileTDD(), ran.TMobileFDD()}
}

func privatePresets() []ran.CellConfig {
	return []ran.CellConfig{ran.Amarisoft(), ran.Mosolabs()}
}

// fig10 regenerates Fig. 10: absolute occurrence frequency per minute
// of 5G causes and WebRTC consequences, commercial vs private.
func fig10(o Options) (Result, error) {
	com, err := analyzeGroup(commercialPresets(), o)
	if err != nil {
		return Result{}, err
	}
	priv, err := analyzeGroup(privatePresets(), o)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	tb := stats.NewTable("Node", "Commercial (/min)", "Private (/min)")
	b.WriteString("Causes in 5G:\n")
	for _, n := range core.CauseClasses() {
		tb.AddRow(n, com.EventsPerMinute(n), priv.EventsPerMinute(n))
	}
	b.WriteString(tb.String())
	tb2 := stats.NewTable("Node", "Commercial (/min)", "Private (/min)")
	b.WriteString("\nConsequences in APP:\n")
	for _, n := range core.ConsequenceClasses() {
		tb2.AddRow(n, com.EventsPerMinute(n), priv.EventsPerMinute(n))
	}
	b.WriteString(tb2.String())
	return Result{
		ID:    "fig10",
		Title: "Fig. 10 — cause and consequence occurrence frequency per minute",
		PaperRef: "paper commercial: cross 2.23, HARQ 3.28, UL-sched 1.39, poor-ch 0.97, RRC 0.10, RLC 0; " +
			"private: poor-ch 5.83, UL-sched 5.83, HARQ 4.24, RLC 0.07; consequences: JB-drain rarest, " +
			"target/pushback drops 1.3-3.1/min",
		Text: b.String(),
	}, nil
}

// table2 regenerates Table 2: conditional probability of causes given
// consequences.
func table2(o Options) (Result, error) {
	var b strings.Builder
	for _, group := range []struct {
		name    string
		presets []ran.CellConfig
	}{
		{"Commercial 5G", commercialPresets()},
		{"Private 5G", privatePresets()},
	} {
		rep, err := analyzeGroup(group.presets, o)
		if err != nil {
			return Result{}, err
		}
		probs := rep.ConditionalProbabilities(core.CauseClasses(), core.ConsequenceClasses())
		fmt.Fprintf(&b, "== %s ==\n", group.name)
		header := append([]string{"Consequence"}, core.CauseClasses()...)
		header = append(header, "unknown")
		cells := make([]any, len(header))
		tb := stats.NewTable(header...)
		for _, cons := range core.ConsequenceClasses() {
			cells[0] = cons
			for i, cause := range core.CauseClasses() {
				cells[i+1] = fmt.Sprintf("%.1f%%", probs[cons][cause]*100)
			}
			cells[len(cells)-1] = fmt.Sprintf("%.1f%%", probs[cons]["unknown"]*100)
			tb.AddRow(cells...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return Result{
		ID:    "table2",
		Title: "Table 2 — P(cause | consequence), commercial vs private cells",
		PaperRef: "paper: UL scheduling and HARQ prevalent in both groups; RLC retx only detectable on " +
			"private (gNB-log) cells; RRC transitions only on the T-Mobile FDD cell",
		Text: b.String(),
	}, nil
}

// table4 regenerates Table 4: per-chain share of all detected chains.
func table4(o Options) (Result, error) {
	var b strings.Builder
	for _, group := range []struct {
		name    string
		presets []ran.CellConfig
	}{
		{"Commercial 5G", commercialPresets()},
		{"Private 5G", privatePresets()},
	} {
		rep, err := analyzeGroup(group.presets, o)
		if err != nil {
			return Result{}, err
		}
		ratios := rep.ChainRatios(core.CauseClasses(), core.ConsequenceClasses())
		fmt.Fprintf(&b, "== %s (total chain events: %d) ==\n", group.name, rep.TotalChainEvents())
		header := append([]string{"Consequence"}, core.CauseClasses()...)
		tb := stats.NewTable(header...)
		cells := make([]any, len(header))
		for _, cons := range core.ConsequenceClasses() {
			cells[0] = cons
			for i, cause := range core.CauseClasses() {
				cells[i+1] = fmt.Sprintf("%.1f%%", ratios[cons][cause]*100)
			}
			tb.AddRow(cells...)
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
	}
	return Result{
		ID:       "table4",
		Title:    "Table 4 — each causal chain's share of all detected chains",
		PaperRef: "paper: pushback chains dominate (HARQ 67%, poor channel 56% commercial); JB-drain chains are rare",
		Text:     b.String(),
	}, nil
}

// fig11 regenerates Fig. 11: DSL text to generated detection code.
func fig11(Options) (Result, error) {
	text := `dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain
`
	g, err := core.ParseChainsString(text)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	b.WriteString("Input DSL:\n")
	b.WriteString(text)
	b.WriteString("\nGenerated Go detector:\n")
	b.WriteString(core.GenerateGo(g, "detect"))
	return Result{
		ID:       "fig11",
		Title:    "Fig. 11 — Domino generates detection code from text chain definitions",
		PaperRef: "paper: generates Python; this reproduction generates Go with identical backward-trace semantics",
		Text:     b.String(),
	}, nil
}

// headline regenerates the §4.2 headline numbers: degradation events
// per session-minute and dominant causes.
func headline(o Options) (Result, error) {
	com, err := analyzeGroup(commercialPresets(), o)
	if err != nil {
		return Result{}, err
	}
	priv, err := analyzeGroup(privatePresets(), o)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "degradation events per session-minute: commercial %.2f, private %.2f\n",
		com.DegradationEventsPerMinute(core.ConsequenceClasses()),
		priv.DegradationEventsPerMinute(core.ConsequenceClasses()))
	b.WriteString("\ntop chains (commercial):\n")
	for _, cc := range com.TopChains(5) {
		fmt.Fprintf(&b, "  %3d×  %s\n", cc.Events, cc.Chain.String())
	}
	b.WriteString("\ntop chains (private):\n")
	for _, cc := range priv.TopChains(5) {
		fmt.Fprintf(&b, "  %3d×  %s\n", cc.Events, cc.Chain.String())
	}
	return Result{
		ID:       "headline",
		Title:    "§4.2 headline — ~5 quality degradation events per session-minute",
		PaperRef: "paper: ≈5 events/min; commercial dominated by retx (42%) and cross traffic (28%), private by UL scheduling (36%) and poor channel (37%)",
		Text:     b.String(),
	}, nil
}
