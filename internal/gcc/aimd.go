package gcc

import (
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// AIMDConfig parameterizes the delay-based rate controller.
type AIMDConfig struct {
	MinRateBps float64
	MaxRateBps float64
	// Beta is the multiplicative-decrease factor applied to the
	// acknowledged bitrate on overuse (libwebrtc: 0.85).
	Beta float64
	// MultiplicativeGainPerSecond is the far-from-limit growth factor.
	MultiplicativeGainPerSecond float64
	// FastRecovery enables the acknowledged-bitrate shortcut the paper
	// describes in §6.2: after a short-lived overuse, if measured
	// throughput stayed high, jump straight back instead of slow
	// additive probing. Observed in ~1% of anomalies.
	FastRecovery bool
	// FastRecoveryWindow bounds how long after a decrease the shortcut
	// may fire.
	FastRecoveryWindow sim.Time
}

// DefaultAIMDConfig returns the standard configuration.
func DefaultAIMDConfig() AIMDConfig {
	return AIMDConfig{
		MinRateBps:                  150_000,
		MaxRateBps:                  15_000_000,
		Beta:                        0.85,
		MultiplicativeGainPerSecond: 1.08,
		FastRecovery:                true,
		FastRecoveryWindow:          3 * sim.Second,
	}
}

// aimdState is the rate controller's phase.
type aimdState int

const (
	stateHold aimdState = iota
	stateIncrease
	stateDecrease
)

// AIMD is the delay-based rate controller: Hold/Increase/Decrease
// driven by the overuse detector, with the acknowledged bitrate
// anchoring decreases and the near-max region selecting additive
// (cautious) instead of multiplicative probing.
type AIMD struct {
	cfg AIMDConfig

	rate              float64
	state             aimdState
	lastUpdate        sim.Time
	linkCapacity      float64 // EWMA of acked bitrate around decreases
	haveCapacity      bool
	lastDecreaseAt    sim.Time
	rateBeforeDrop    float64
	avgPacketSizeBits float64
}

// NewAIMD returns a controller starting at startRate.
func NewAIMD(cfg AIMDConfig, startRate float64, now sim.Time) *AIMD {
	if startRate < cfg.MinRateBps {
		startRate = cfg.MinRateBps
	}
	return &AIMD{cfg: cfg, rate: startRate, state: stateIncrease, lastUpdate: now, avgPacketSizeBits: 9600}
}

// Update advances the controller with the detector state and the
// current acknowledged bitrate, returning the new target rate.
func (a *AIMD) Update(now sim.Time, detector trace.GCCState, ackedBps float64, rttMs float64) float64 {
	dt := (now - a.lastUpdate).Seconds()
	if dt < 0 {
		dt = 0
	}
	if dt > 1 {
		dt = 1
	}

	// State machine per the GCC draft: overuse always decreases;
	// underuse holds (lets queues drain); normal resumes increase.
	switch detector {
	case trace.GCCOveruse:
		a.state = stateDecrease
	case trace.GCCUnderuse:
		a.state = stateHold
	case trace.GCCNormal:
		if a.state == stateHold || a.state == stateDecrease {
			a.state = stateIncrease
		}
	}

	switch a.state {
	case stateDecrease:
		target := a.rate * a.cfg.Beta
		if ackedBps > 0 {
			target = ackedBps * a.cfg.Beta
			// Track link capacity estimate around the decrease.
			if !a.haveCapacity {
				a.linkCapacity = ackedBps
				a.haveCapacity = true
			} else {
				a.linkCapacity = 0.95*a.linkCapacity + 0.05*ackedBps
			}
		}
		if target < a.rate {
			if a.rate > a.cfg.MinRateBps && a.rateBeforeDrop == 0 {
				a.rateBeforeDrop = a.rate
				a.lastDecreaseAt = now
			}
			a.rate = target
		}
		a.state = stateHold
	case stateIncrease:
		// Fast recovery: a short-lived overuse with sustained high
		// measured throughput jumps straight back (§6.2).
		if a.cfg.FastRecovery && a.rateBeforeDrop > 0 &&
			now-a.lastDecreaseAt <= a.cfg.FastRecoveryWindow &&
			ackedBps >= 0.95*a.rateBeforeDrop {
			a.rate = a.rateBeforeDrop
			a.rateBeforeDrop = 0
		} else if a.haveCapacity && a.rate >= 0.9*a.linkCapacity {
			// Near the estimated capacity: cautious additive increase
			// of about half a packet per RTT.
			if rttMs <= 0 {
				rttMs = 100
			}
			responseTime := rttMs + 100
			alpha := 0.5 * a.avgPacketSizeBits * (1000 * dt / responseTime)
			if alpha < 1000*dt {
				alpha = 1000 * dt
			}
			a.rate += alpha
		} else {
			// Far from capacity: multiplicative probing.
			gain := pow(a.cfg.MultiplicativeGainPerSecond, dt)
			a.rate *= gain
		}
		if a.rateBeforeDrop > 0 && a.rate >= a.rateBeforeDrop {
			a.rateBeforeDrop = 0
		}
	case stateHold:
		// Keep the rate.
	}

	// Never exceed 1.5× the measured throughput (standard GCC cap) nor
	// the configured bounds.
	if ackedBps > 0 && a.rate > 1.5*ackedBps+30_000 {
		a.rate = 1.5*ackedBps + 30_000
	}
	if a.rate < a.cfg.MinRateBps {
		a.rate = a.cfg.MinRateBps
	}
	if a.rate > a.cfg.MaxRateBps {
		a.rate = a.cfg.MaxRateBps
	}
	a.lastUpdate = now
	return a.rate
}

// Rate returns the current target rate.
func (a *AIMD) Rate() float64 { return a.rate }

// pow is a small positive-base power helper (dt in [0,1]).
func pow(base, exp float64) float64 {
	// exp is small; use the identity base^exp = e^(exp·ln base) via the
	// math package.
	return mathPow(base, exp)
}
