// Package gcc implements the Google Congestion Control sender-side
// pipeline as used by WebRTC and instrumented by the paper: packet
// grouping and inter-arrival delay-variation measurement, the trendline
// estimator with adaptive threshold, the overuse detector, the AIMD
// target-rate controller with acknowledged-bitrate fast recovery, a
// loss-based bound, and the congestion-window pushback controller that
// produces the final media send rate.
//
// The split between "target rate" (delay/loss estimator output, §6.2)
// and "pushback rate" (congestion-window constrained output, §6.3)
// follows the paper's terminology; both are exported at 50 ms to the
// stats stream that Domino analyzes.
package gcc

import (
	"github.com/domino5g/domino/internal/sim"
)

// PacketResult is one entry of a transport-wide feedback report: a sent
// packet and its receive timestamp (Lost marks missing packets).
type PacketResult struct {
	Seq    uint64
	Size   int
	SentAt sim.Time
	RecvAt sim.Time
	Lost   bool
}

// burstInterval is the send-time window that groups packets into one
// "packet group" for delay-variation purposes (WebRTC uses 5 ms).
const burstInterval = 5 * sim.Millisecond

// packetGroup aggregates packets sent within one burst interval.
type packetGroup struct {
	firstSend sim.Time
	lastSend  sim.Time
	lastRecv  sim.Time
	size      int
	complete  bool
}

// InterArrival converts a stream of per-packet feedback into per-group
// delay-variation samples: d(i) = (recv_i − recv_{i−1}) − (send_i −
// send_{i−1}). Positive d means the network is queueing.
type InterArrival struct {
	current *packetGroup
	prev    *packetGroup
}

// NewInterArrival returns an empty filter.
func NewInterArrival() *InterArrival { return &InterArrival{} }

// DelaySample is one delay-variation observation.
type DelaySample struct {
	// At is the arrival time of the group that produced the sample.
	At sim.Time
	// DeltaMs is the delay variation in milliseconds.
	DeltaMs float64
	// SendDelta is the send-time gap between the groups.
	SendDelta sim.Time
}

// OnPacket feeds one received packet (in feedback order) and returns a
// delay-variation sample when a group completes.
func (ia *InterArrival) OnPacket(sentAt, recvAt sim.Time) (DelaySample, bool) {
	if ia.current == nil {
		ia.current = &packetGroup{firstSend: sentAt, lastSend: sentAt, lastRecv: recvAt}
		return DelaySample{}, false
	}
	if sentAt-ia.current.firstSend <= burstInterval {
		// Same group: extend.
		if sentAt > ia.current.lastSend {
			ia.current.lastSend = sentAt
		}
		if recvAt > ia.current.lastRecv {
			ia.current.lastRecv = recvAt
		}
		return DelaySample{}, false
	}
	// New group begins: the previous pair (prev, current) yields a sample.
	var out DelaySample
	ok := false
	if ia.prev != nil {
		sendDelta := ia.current.lastSend - ia.prev.lastSend
		recvDelta := ia.current.lastRecv - ia.prev.lastRecv
		out = DelaySample{
			At:        ia.current.lastRecv,
			DeltaMs:   (recvDelta - sendDelta).Milliseconds(),
			SendDelta: sendDelta,
		}
		ok = true
	}
	ia.prev = ia.current
	ia.current = &packetGroup{firstSend: sentAt, lastSend: sentAt, lastRecv: recvAt}
	return out, ok
}

// Reset clears group state (used after long feedback gaps).
func (ia *InterArrival) Reset() {
	ia.current = nil
	ia.prev = nil
}
