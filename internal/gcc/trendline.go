package gcc

import (
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// TrendlineConfig parameterizes the delay-gradient estimator and the
// adaptive-threshold overuse detector (libwebrtc defaults).
type TrendlineConfig struct {
	// WindowSize is the number of delay samples in the regression.
	WindowSize int
	// SmoothingCoef is the exponential smoothing factor applied to the
	// accumulated delay before the regression.
	SmoothingCoef float64
	// ThresholdGain scales the raw slope into the modified trend
	// compared against the threshold.
	ThresholdGain float64
	// InitialThreshold is the starting adaptive threshold (ms).
	InitialThreshold float64
	// KUp / KDown are the adaptive threshold gains (threshold chases
	// |trend| slowly upward, faster downward).
	KUp, KDown float64
	// OverusingTime is how long the modified trend must stay above the
	// threshold before Overuse is signaled.
	OverusingTime sim.Time
}

// DefaultTrendlineConfig returns the libwebrtc default parameters.
func DefaultTrendlineConfig() TrendlineConfig {
	return TrendlineConfig{
		WindowSize:       20,
		SmoothingCoef:    0.9,
		ThresholdGain:    4.0,
		InitialThreshold: 12.5,
		KUp:              0.0087,
		KDown:            0.039,
		OverusingTime:    10 * sim.Millisecond,
	}
}

// Trendline estimates the one-way delay gradient and classifies the
// network state. It is the paper's Fig. 21 "slope of delay variation"
// signal together with the adaptive threshold.
type Trendline struct {
	cfg TrendlineConfig

	accumulatedDelay float64
	smoothedDelay    float64
	samples          []trendSample // ring of (arrivalMs, smoothedDelay)
	numDeltas        int

	slope     float64
	modified  float64
	threshold float64

	state          trace.GCCState
	overusingSince sim.Time
	overuseActive  bool
	lastSampleAt   sim.Time
}

type trendSample struct {
	arrivalMs float64
	delay     float64
}

// NewTrendline returns an estimator with the given config.
func NewTrendline(cfg TrendlineConfig) *Trendline {
	if cfg.WindowSize <= 1 {
		cfg = DefaultTrendlineConfig()
	}
	return &Trendline{cfg: cfg, threshold: cfg.InitialThreshold, state: trace.GCCNormal}
}

// Update feeds one delay-variation sample and returns the current
// network state.
func (t *Trendline) Update(s DelaySample) trace.GCCState {
	t.numDeltas++
	t.accumulatedDelay += s.DeltaMs
	t.smoothedDelay = t.cfg.SmoothingCoef*t.smoothedDelay + (1-t.cfg.SmoothingCoef)*t.accumulatedDelay

	t.samples = append(t.samples, trendSample{arrivalMs: s.At.Milliseconds(), delay: t.smoothedDelay})
	if len(t.samples) > t.cfg.WindowSize {
		t.samples = t.samples[1:]
	}
	if len(t.samples) == t.cfg.WindowSize {
		t.slope = lsqSlope(t.samples)
	}

	nd := t.numDeltas
	if nd > 60 {
		nd = 60
	}
	t.modified = float64(nd) * t.slope * t.cfg.ThresholdGain
	t.detect(s.At)
	t.adaptThreshold(s.At)
	t.lastSampleAt = s.At
	return t.state
}

// detect runs the overuse state machine on the modified trend.
func (t *Trendline) detect(now sim.Time) {
	switch {
	case t.modified > t.threshold:
		if !t.overuseActive {
			t.overuseActive = true
			t.overusingSince = now
		}
		if now-t.overusingSince >= t.cfg.OverusingTime {
			t.state = trace.GCCOveruse
		}
	case t.modified < -t.threshold:
		t.overuseActive = false
		t.state = trace.GCCUnderuse
	default:
		t.overuseActive = false
		t.state = trace.GCCNormal
	}
}

// adaptThreshold chases |modified| with asymmetric gains, clamped to
// [6, 600] ms as in libwebrtc. The adaptation keeps a single standing
// queue from permanently pinning the detector at Overuse.
func (t *Trendline) adaptThreshold(now sim.Time) {
	if t.lastSampleAt == 0 {
		return
	}
	dtMs := (now - t.lastSampleAt).Milliseconds()
	if dtMs < 0 {
		dtMs = 0
	}
	if dtMs > 100 {
		dtMs = 100
	}
	abs := t.modified
	if abs < 0 {
		abs = -abs
	}
	// Outliers far above the threshold adapt it as if they sat at the
	// +15 ms cap: a lone spike cannot yank the threshold up, but
	// sustained high-jitter regimes (5G delay spread) still raise the
	// tolerance instead of pinning the detector at Overuse. (libwebrtc
	// skips these samples entirely; on cellular-grade jitter that
	// starves the adaptation loop.)
	if abs > t.threshold+15 {
		abs = t.threshold + 15
	}
	k := t.cfg.KDown
	if abs > t.threshold {
		k = t.cfg.KUp
	}
	t.threshold += k * (abs - t.threshold) * dtMs
	if t.threshold < 6 {
		t.threshold = 6
	}
	if t.threshold > 600 {
		t.threshold = 600
	}
}

// Slope returns the latest raw regression slope (ms of delay per ms).
func (t *Trendline) Slope() float64 { return t.slope }

// ModifiedTrend returns the gain-scaled trend compared to Threshold.
func (t *Trendline) ModifiedTrend() float64 { return t.modified }

// Threshold returns the adaptive threshold.
func (t *Trendline) Threshold() float64 { return t.threshold }

// State returns the current network-state classification.
func (t *Trendline) State() trace.GCCState { return t.state }

// lsqSlope is a least-squares linear fit of delay against arrival time.
func lsqSlope(samples []trendSample) float64 {
	n := float64(len(samples))
	var sumX, sumY float64
	for _, s := range samples {
		sumX += s.arrivalMs
		sumY += s.delay
	}
	meanX, meanY := sumX/n, sumY/n
	var num, den float64
	for _, s := range samples {
		dx := s.arrivalMs - meanX
		num += dx * (s.delay - meanY)
		den += dx * dx
	}
	if den == 0 {
		return 0
	}
	return num / den
}
