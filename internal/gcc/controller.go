package gcc

import (
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Config aggregates the full controller configuration.
type Config struct {
	Trendline TrendlineConfig
	AIMD      AIMDConfig
	Pushback  PushbackConfig
	StartRate float64
}

// DefaultConfig returns the standard GCC configuration with the given
// starting rate (0 selects 1 Mbit/s).
func DefaultConfig(startRate float64) Config {
	if startRate <= 0 {
		startRate = 1_000_000
	}
	return Config{
		Trendline: DefaultTrendlineConfig(),
		AIMD:      DefaultAIMDConfig(),
		Pushback:  DefaultPushbackConfig(),
		StartRate: startRate,
	}
}

// Controller is the sender-side GCC pipeline. Drive it with
// OnPacketSent for every outgoing media packet and OnFeedback for every
// transport-wide RTCP report; read TargetRate (estimator output) and
// PushbackRate (final encoder/pacer rate).
type Controller struct {
	cfg Config

	interArrival *InterArrival
	trendline    *Trendline
	aimd         *AIMD
	acked        *AckedBitrate
	loss         *LossEstimator
	pushback     *Pushback

	target    float64
	srttMs    float64
	lastFBAt  sim.Time
	overuses  uint64
	fastRecov uint64
	feedbacks uint64
	lossFrac  float64
}

// NewController constructs a controller at time now.
func NewController(cfg Config, now sim.Time) *Controller {
	if cfg.StartRate <= 0 {
		cfg.StartRate = 1_000_000
	}
	return &Controller{
		cfg:          cfg,
		interArrival: NewInterArrival(),
		trendline:    NewTrendline(cfg.Trendline),
		aimd:         NewAIMD(cfg.AIMD, cfg.StartRate, now),
		acked:        NewAckedBitrate(0),
		loss:         NewLossEstimator(cfg.StartRate),
		pushback:     NewPushback(cfg.Pushback),
		target:       cfg.StartRate,
	}
}

// OnPacketSent registers an outgoing media packet for outstanding-bytes
// tracking.
func (c *Controller) OnPacketSent(seq uint64, size int) {
	c.pushback.OnPacketSent(seq, size)
}

// OnFeedback processes one transport-wide feedback report (ordered by
// send time) at time now.
func (c *Controller) OnFeedback(now sim.Time, results []PacketResult) {
	if len(results) == 0 {
		return
	}
	c.feedbacks++

	wasOveruse := c.trendline.State() == trace.GCCOveruse
	lost, total := 0, 0
	var lastRTTMs float64 = -1
	for _, r := range results {
		total++
		c.pushback.OnAcked(r.Seq)
		if r.Lost {
			lost++
			continue
		}
		c.acked.OnAcked(r.RecvAt, r.Size)
		// RTT proxy: send→receive delay plus the feedback return leg
		// (now − receive).
		rtt := (r.RecvAt - r.SentAt + now - r.RecvAt).Milliseconds()
		lastRTTMs = rtt
		if sample, ok := c.interArrival.OnPacket(r.SentAt, r.RecvAt); ok {
			c.trendline.Update(sample)
		}
	}
	if lastRTTMs > 0 {
		if c.srttMs == 0 {
			c.srttMs = lastRTTMs
		} else {
			c.srttMs = 0.9*c.srttMs + 0.1*lastRTTMs
		}
	}
	if total > 0 {
		c.lossFrac = float64(lost) / float64(total)
	}

	state := c.trendline.State()
	if state == trace.GCCOveruse && !wasOveruse {
		c.overuses++
	}

	ackedBps := c.acked.Rate(now)
	before := c.aimd.Rate()
	delayRate := c.aimd.Update(now, state, ackedBps, c.srttMs)
	if delayRate > before*1.5 && before > 0 {
		// A jump of more than the additive schedule indicates the
		// fast-recovery shortcut fired.
		c.fastRecov++
	}
	lossRate := c.loss.Update(c.lossFrac, delayRate)
	c.target = delayRate
	if lossRate < c.target {
		c.target = lossRate
	}
	if c.target < c.cfg.AIMD.MinRateBps {
		c.target = c.cfg.AIMD.MinRateBps
	}
	c.pushback.Update(now, c.target, c.srttMs)
	c.lastFBAt = now
}

// Tick advances the pushback controller between feedback reports (the
// window must react even when feedback stalls — that is the Fig. 22
// failure mode).
func (c *Controller) Tick(now sim.Time) {
	c.pushback.Update(now, c.target, c.srttMs)
}

// TargetRate returns the bandwidth-estimator output (bps).
func (c *Controller) TargetRate() float64 { return c.target }

// PushbackRate returns the congestion-window constrained media rate (bps).
func (c *Controller) PushbackRate() float64 { return c.pushback.Rate() }

// State returns the current overuse-detector classification.
func (c *Controller) State() trace.GCCState { return c.trendline.State() }

// Internals is a snapshot of controller state for the stats stream.
type Internals struct {
	TargetRateBps    float64
	PushbackRateBps  float64
	OutstandingBytes int
	CongestionWindow int
	State            trace.GCCState
	TrendSlope       float64
	TrendThreshold   float64
	AckedBitrateBps  float64
	SRTTMs           float64
	LossFraction     float64
	OveruseEvents    uint64
	FastRecoveries   uint64
}

// Snapshot returns the controller internals at time now.
func (c *Controller) Snapshot(now sim.Time) Internals {
	return Internals{
		TargetRateBps:    c.target,
		PushbackRateBps:  c.pushback.Rate(),
		OutstandingBytes: c.pushback.OutstandingBytes(),
		CongestionWindow: c.pushback.WindowBytes(),
		State:            c.trendline.State(),
		TrendSlope:       c.trendline.ModifiedTrend(),
		TrendThreshold:   c.trendline.Threshold(),
		AckedBitrateBps:  c.acked.Rate(now),
		SRTTMs:           c.srttMs,
		LossFraction:     c.lossFrac,
		OveruseEvents:    c.overuses,
		FastRecoveries:   c.fastRecov,
	}
}
