package gcc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

func TestInterArrivalGrouping(t *testing.T) {
	ia := NewInterArrival()
	// Two packets inside one burst window: no sample.
	if _, ok := ia.OnPacket(0, 20*sim.Millisecond); ok {
		t.Fatal("first packet produced a sample")
	}
	if _, ok := ia.OnPacket(2*sim.Millisecond, 22*sim.Millisecond); ok {
		t.Fatal("same-burst packet produced a sample")
	}
	// New group: still no sample (needs two complete groups).
	if _, ok := ia.OnPacket(10*sim.Millisecond, 30*sim.Millisecond); ok {
		t.Fatal("second group start should not yet produce a sample")
	}
	// Third group completes the pair (group1, group2).
	s, ok := ia.OnPacket(20*sim.Millisecond, 45*sim.Millisecond)
	if !ok {
		t.Fatal("no sample after three groups")
	}
	// Group1 last send 2ms recv 22ms; group2 last send 10ms recv 30ms:
	// sendDelta 8ms, recvDelta 8ms → 0 variation.
	if s.DeltaMs != 0 {
		t.Fatalf("delta = %v, want 0", s.DeltaMs)
	}
}

func TestInterArrivalQueueingPositive(t *testing.T) {
	ia := NewInterArrival()
	ia.OnPacket(0, 20*sim.Millisecond)
	ia.OnPacket(10*sim.Millisecond, 35*sim.Millisecond) // +5ms queueing
	s, ok := ia.OnPacket(20*sim.Millisecond, 50*sim.Millisecond)
	if !ok {
		t.Fatal("no sample")
	}
	if s.DeltaMs != 5 {
		t.Fatalf("delta = %v, want 5", s.DeltaMs)
	}
}

// feedDelays pushes a synthetic delay pattern through a trendline:
// delayFn maps sample index to one-way delay (ms). Samples are 10 ms
// apart in both send and arrival base time.
func feedDelays(tl *Trendline, n int, delayFn func(i int) float64) trace.GCCState {
	st := trace.GCCNormal
	prev := delayFn(0)
	for i := 1; i < n; i++ {
		d := delayFn(i)
		st = tl.Update(DelaySample{
			At:        sim.Time(i) * 10 * sim.Millisecond,
			DeltaMs:   d - prev,
			SendDelta: 10 * sim.Millisecond,
		})
		prev = d
	}
	return st
}

func TestTrendlineStableDelayIsNormal(t *testing.T) {
	tl := NewTrendline(DefaultTrendlineConfig())
	st := feedDelays(tl, 100, func(i int) float64 { return 30 })
	if st != trace.GCCNormal {
		t.Fatalf("state = %v for flat delay", st)
	}
	if math.Abs(tl.Slope()) > 0.01 {
		t.Fatalf("slope = %v for flat delay", tl.Slope())
	}
}

func TestTrendlineRampTriggersOveruse(t *testing.T) {
	tl := NewTrendline(DefaultTrendlineConfig())
	// Steeply growing delay: +8 ms per sample.
	st := feedDelays(tl, 60, func(i int) float64 { return 30 + 8*float64(i) })
	if st != trace.GCCOveruse {
		t.Fatalf("state = %v for ramping delay, want overuse", st)
	}
	if tl.Slope() <= 0 {
		t.Fatalf("slope = %v, want positive", tl.Slope())
	}
}

func TestTrendlineFallingDelayIsUnderuse(t *testing.T) {
	tl := NewTrendline(DefaultTrendlineConfig())
	// Ramp up then sharply down.
	feedDelays(tl, 50, func(i int) float64 { return 30 + 8*float64(i) })
	prev := 30 + 8*49.0
	st := trace.GCCNormal
	for i := 0; i < 40; i++ {
		d := prev - 12
		st = tl.Update(DelaySample{
			At:      sim.Time(50+i) * 10 * sim.Millisecond,
			DeltaMs: d - prev,
		})
		prev = d
	}
	if st != trace.GCCUnderuse {
		t.Fatalf("state = %v for falling delay, want underuse", st)
	}
}

func TestTrendlineThresholdAdapts(t *testing.T) {
	tl := NewTrendline(DefaultTrendlineConfig())
	before := tl.Threshold()
	// Moderate sustained trend just above threshold drags it up.
	feedDelays(tl, 200, func(i int) float64 { return 30 + 3*float64(i) })
	if tl.Threshold() <= before {
		t.Fatalf("threshold did not adapt upward: %v -> %v", before, tl.Threshold())
	}
	if tl.Threshold() > 600 {
		t.Fatal("threshold exceeded clamp")
	}
}

func TestAIMDOveruseDecreases(t *testing.T) {
	a := NewAIMD(DefaultAIMDConfig(), 2_000_000, 0)
	r := a.Update(100*sim.Millisecond, trace.GCCOveruse, 1_800_000, 50)
	if r >= 2_000_000 {
		t.Fatalf("rate %v did not decrease on overuse", r)
	}
	// Beta × acked bitrate.
	if math.Abs(r-0.85*1_800_000) > 1 {
		t.Fatalf("rate = %v, want beta*acked = %v", r, 0.85*1_800_000)
	}
}

func TestAIMDNormalIncreases(t *testing.T) {
	cfg := DefaultAIMDConfig()
	cfg.FastRecovery = false
	a := NewAIMD(cfg, 1_000_000, 0)
	r0 := a.Rate()
	var r float64
	for i := 1; i <= 10; i++ {
		r = a.Update(sim.Time(i)*100*sim.Millisecond, trace.GCCNormal, 2_000_000, 50)
	}
	if r <= r0 {
		t.Fatalf("rate did not grow under normal state: %v -> %v", r0, r)
	}
}

func TestAIMDSlowAdditiveRecovery(t *testing.T) {
	cfg := DefaultAIMDConfig()
	cfg.FastRecovery = false
	a := NewAIMD(cfg, 3_000_000, 0)
	// Crash the rate with an overuse anchored at low acked bitrate.
	a.Update(100*sim.Millisecond, trace.GCCOveruse, 1_000_000, 50)
	dropped := a.Rate()
	// Recovery with acked ≈ current rate (near capacity estimate):
	// additive phase, slow.
	now := 100 * sim.Millisecond
	steps := 0
	for a.Rate() < 3_000_000*0.95 && steps < 3000 {
		now += 100 * sim.Millisecond
		a.Update(now, trace.GCCNormal, a.Rate(), 50)
		steps++
	}
	recovery := (now - 100*sim.Millisecond).Seconds()
	if recovery < 5 {
		t.Fatalf("recovery from %v took only %vs; paper reports >30s additive phases", dropped, recovery)
	}
}

func TestAIMDFastRecovery(t *testing.T) {
	cfg := DefaultAIMDConfig()
	a := NewAIMD(cfg, 3_000_000, 0)
	a.Update(100*sim.Millisecond, trace.GCCOveruse, 1_000_000, 50)
	if a.Rate() >= 3_000_000 {
		t.Fatal("no decrease")
	}
	// Throughput measured right back at the pre-drop level: the
	// acknowledged-bitrate shortcut should restore the rate quickly.
	a.Update(300*sim.Millisecond, trace.GCCNormal, 3_000_000, 50)
	if a.Rate() < 2_900_000 {
		t.Fatalf("fast recovery did not fire: rate %v", a.Rate())
	}
}

func TestAIMDBounds(t *testing.T) {
	cfg := DefaultAIMDConfig()
	a := NewAIMD(cfg, 500_000, 0)
	for i := 1; i < 100; i++ {
		a.Update(sim.Time(i)*100*sim.Millisecond, trace.GCCOveruse, 1000, 50)
	}
	if a.Rate() < cfg.MinRateBps {
		t.Fatalf("rate %v below floor", a.Rate())
	}
	b := NewAIMD(cfg, 14_000_000, 0)
	for i := 1; i < 2000; i++ {
		b.Update(sim.Time(i)*100*sim.Millisecond, trace.GCCNormal, 30_000_000, 50)
	}
	if b.Rate() > cfg.MaxRateBps {
		t.Fatalf("rate %v above ceiling", b.Rate())
	}
}

func TestAckedBitrate(t *testing.T) {
	ab := NewAckedBitrate(500 * sim.Millisecond)
	if ab.Rate(0) != 0 {
		t.Fatal("empty estimator should report 0")
	}
	// 100 packets × 1250 B over 500 ms = 2 Mbit/s.
	for i := 0; i < 100; i++ {
		ab.OnAcked(sim.Time(i)*5*sim.Millisecond, 1250)
	}
	r := ab.Rate(500 * sim.Millisecond)
	if r < 1.5e6 || r > 2.5e6 {
		t.Fatalf("rate = %v, want ~2e6", r)
	}
	// Old samples age out.
	r2 := ab.Rate(10 * sim.Second)
	if r2 != 0 {
		t.Fatalf("stale rate = %v, want 0", r2)
	}
}

func TestLossEstimator(t *testing.T) {
	l := NewLossEstimator(1e6)
	r1 := l.Update(0.3, 1e6)
	if r1 >= 1e6 {
		t.Fatalf("30%% loss did not cut rate: %v", r1)
	}
	// Sustained loss compounds.
	r2 := l.Update(0.3, 1e6)
	if r2 >= r1 {
		t.Fatalf("sustained loss did not compound: %v -> %v", r1, r2)
	}
	// Loss-free intervals grow the bound back.
	r3 := l.Update(0.0, 1e6)
	if r3 <= r2 {
		t.Fatalf("0%% loss did not grow the bound: %v -> %v", r2, r3)
	}
	// Moderate loss holds.
	if r4 := l.Update(0.05, 1e6); r4 != r3 {
		t.Fatalf("5%% loss should hold: %v != %v", r4, r3)
	}
	// The bound never exceeds the delay-based rate.
	for i := 0; i < 100; i++ {
		l.Update(0, 1e6)
	}
	if l.Rate() > 1e6 {
		t.Fatalf("bound exceeded delay-based rate: %v", l.Rate())
	}
}

func TestPushbackOutstandingTracking(t *testing.T) {
	p := NewPushback(DefaultPushbackConfig())
	p.OnPacketSent(1, 1000)
	p.OnPacketSent(2, 2000)
	p.OnPacketSent(2, 2000) // duplicate ignored
	if p.OutstandingBytes() != 3000 {
		t.Fatalf("outstanding = %d", p.OutstandingBytes())
	}
	p.OnAcked(1)
	p.OnAcked(1) // double-ack ignored
	if p.OutstandingBytes() != 2000 {
		t.Fatalf("outstanding after ack = %d", p.OutstandingBytes())
	}
}

func TestPushbackReducesWhenWindowFull(t *testing.T) {
	p := NewPushback(DefaultPushbackConfig())
	target := 2_000_000.0
	rtt := 50.0
	r := p.Update(0, target, rtt)
	if r != target {
		t.Fatalf("empty window should not push back: %v", r)
	}
	// Stuff far more than a window's worth of outstanding bytes.
	for i := uint64(0); i < 100; i++ {
		p.OnPacketSent(i, 1500)
	}
	r = p.Update(0, target, rtt)
	if r >= target {
		t.Fatalf("full window did not push back: %v", r)
	}
	if p.OutstandingBytes() <= p.WindowBytes() {
		t.Fatal("test should have exceeded the window")
	}
	// Draining restores the rate.
	for i := uint64(0); i < 100; i++ {
		p.OnAcked(i)
	}
	r = p.Update(0, target, rtt)
	if r != target {
		t.Fatalf("rate did not recover after drain: %v", r)
	}
}

func TestPushbackFloor(t *testing.T) {
	cfg := DefaultPushbackConfig()
	p := NewPushback(cfg)
	for i := uint64(0); i < 10000; i++ {
		p.OnPacketSent(i, 1500)
	}
	r := p.Update(0, 2_000_000, 50)
	if r < cfg.MinPushbackRateBps {
		t.Fatalf("pushback rate %v below floor", r)
	}
}

// runFeedback drives a controller with a synthetic network: constant
// one-way delay plus optional per-era delay offsets.
func runFeedback(c *Controller, eras []struct {
	duration sim.Time
	delayMs  float64
}) sim.Time {
	seq := uint64(0)
	now := sim.Time(0)
	for _, era := range eras {
		end := now + era.duration
		for now < end {
			// 20 packets per 100 ms ≈ 2 Mbit/s of 1250 B packets.
			var results []PacketResult
			for i := 0; i < 20; i++ {
				seq++
				sent := now + sim.Time(i)*5*sim.Millisecond
				c.OnPacketSent(seq, 1250)
				results = append(results, PacketResult{
					Seq: seq, Size: 1250, SentAt: sent,
					RecvAt: sent + sim.FromMilliseconds(era.delayMs),
				})
			}
			now += 100 * sim.Millisecond
			c.OnFeedback(now, results)
		}
	}
	return now
}

func TestControllerStableNetworkGrowsRate(t *testing.T) {
	c := NewController(DefaultConfig(500_000), 0)
	runFeedback(c, []struct {
		duration sim.Time
		delayMs  float64
	}{{10 * sim.Second, 30}})
	if c.TargetRate() <= 500_000 {
		t.Fatalf("target did not grow on a clean network: %v", c.TargetRate())
	}
	if c.State() == trace.GCCOveruse {
		t.Fatal("clean network classified as overuse")
	}
}

func TestControllerDelayRampCutsRate(t *testing.T) {
	c := NewController(DefaultConfig(2_000_000), 0)
	// Stable, then a steep delay ramp (grows 15 ms per 100 ms block).
	seq := uint64(0)
	now := sim.Time(0)
	for ; now < 5*sim.Second; now += 100 * sim.Millisecond {
		var results []PacketResult
		for i := 0; i < 20; i++ {
			seq++
			sent := now + sim.Time(i)*5*sim.Millisecond
			c.OnPacketSent(seq, 1250)
			results = append(results, PacketResult{Seq: seq, Size: 1250, SentAt: sent, RecvAt: sent + 30*sim.Millisecond})
		}
		c.OnFeedback(now+100*sim.Millisecond, results)
	}
	before := c.TargetRate()
	ramp := 0.0
	for ; now < 8*sim.Second; now += 100 * sim.Millisecond {
		ramp += 15
		var results []PacketResult
		for i := 0; i < 20; i++ {
			seq++
			sent := now + sim.Time(i)*5*sim.Millisecond
			c.OnPacketSent(seq, 1250)
			results = append(results, PacketResult{Seq: seq, Size: 1250, SentAt: sent,
				RecvAt: sent + sim.FromMilliseconds(30+ramp)})
		}
		c.OnFeedback(now+100*sim.Millisecond, results)
	}
	if c.TargetRate() >= before {
		t.Fatalf("target did not drop under delay ramp: %v -> %v", before, c.TargetRate())
	}
	snap := c.Snapshot(now)
	if snap.OveruseEvents == 0 {
		t.Fatal("no overuse events recorded")
	}
}

func TestControllerLossCutsRate(t *testing.T) {
	c := NewController(DefaultConfig(2_000_000), 0)
	seq := uint64(0)
	now := sim.Time(0)
	for ; now < 5*sim.Second; now += 100 * sim.Millisecond {
		var results []PacketResult
		for i := 0; i < 20; i++ {
			seq++
			sent := now + sim.Time(i)*5*sim.Millisecond
			c.OnPacketSent(seq, 1250)
			r := PacketResult{Seq: seq, Size: 1250, SentAt: sent, RecvAt: sent + 30*sim.Millisecond}
			if i%4 == 0 { // 25% loss
				r.Lost = true
			}
			results = append(results, r)
		}
		c.OnFeedback(now+100*sim.Millisecond, results)
	}
	if c.TargetRate() > 1_500_000 {
		t.Fatalf("25%% loss did not constrain rate: %v", c.TargetRate())
	}
}

func TestControllerFeedbackStallTriggersPushback(t *testing.T) {
	c := NewController(DefaultConfig(2_000_000), 0)
	// Prime with clean traffic.
	runFeedback(c, []struct {
		duration sim.Time
		delayMs  float64
	}{{3 * sim.Second, 30}})
	target := c.TargetRate()
	// Now send without any feedback (RTCP path stalled): outstanding
	// bytes pile up and Tick pushes the send rate down while the
	// target stays put — the Fig. 22 signature.
	seq := uint64(1 << 20)
	for i := 0; i < 200; i++ {
		seq++
		c.OnPacketSent(seq, 1250)
	}
	c.Tick(4 * sim.Second)
	if c.PushbackRate() >= target {
		t.Fatalf("pushback rate %v did not drop below target %v during feedback stall", c.PushbackRate(), target)
	}
	if c.TargetRate() != target {
		t.Fatalf("target rate should be unchanged by the stall: %v -> %v", target, c.TargetRate())
	}
	snap := c.Snapshot(4 * sim.Second)
	if snap.OutstandingBytes <= snap.CongestionWindow {
		t.Fatal("outstanding bytes should exceed the window")
	}
}

// Property: the controller's rates always stay within configured bounds
// and pushback never exceeds target.
func TestControllerBoundsProperty(t *testing.T) {
	f := func(seed uint64, blocks uint8) bool {
		rng := sim.NewRNG(seed)
		c := NewController(DefaultConfig(1_000_000), 0)
		seq := uint64(0)
		now := sim.Time(0)
		for b := 0; b < int(blocks)%30+5; b++ {
			delay := rng.Uniform(10, 300)
			loss := rng.Float64() * 0.3
			var results []PacketResult
			for i := 0; i < 20; i++ {
				seq++
				sent := now + sim.Time(i)*5*sim.Millisecond
				c.OnPacketSent(seq, 1250)
				r := PacketResult{Seq: seq, Size: 1250, SentAt: sent, RecvAt: sent + sim.FromMilliseconds(delay)}
				if rng.Bool(loss) {
					r.Lost = true
				}
				results = append(results, r)
			}
			now += 100 * sim.Millisecond
			c.OnFeedback(now, results)
			cfg := DefaultAIMDConfig()
			if c.TargetRate() < cfg.MinRateBps-1 || c.TargetRate() > cfg.MaxRateBps+1 {
				return false
			}
			if c.PushbackRate() > c.TargetRate()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTrendlineThresholdAdaptsUnderSustainedOutliers(t *testing.T) {
	// Cellular-grade delay spread produces modified trends far above
	// threshold+15 for long stretches. libwebrtc skips those samples
	// entirely, freezing the threshold; our clamp-adaptation
	// (documented deviation) must keep ratcheting the threshold upward
	// so the detector does not stay pinned at Overuse forever.
	tl := NewTrendline(DefaultTrendlineConfig())
	before := tl.Threshold()
	for i := 1; i < 400; i++ {
		// Relentless +8 ms/sample ramp: modified trend ≫ threshold+15.
		tl.Update(DelaySample{
			At:      sim.Time(i) * 33 * sim.Millisecond,
			DeltaMs: 8,
		})
	}
	// The threshold must have chased the (initially far-outlying)
	// modified trend all the way up — under libwebrtc's skip rule it
	// would still be at its initial 12.5.
	if tl.Threshold() < before*2 {
		t.Fatalf("threshold frozen under sustained outliers: %v -> %v", before, tl.Threshold())
	}
}

func TestControllerSurvivesHeavyJitterAboveFloor(t *testing.T) {
	// With threshold adaptation, zero-mean jitter must not pin the
	// target rate at the minimum.
	c := NewController(DefaultConfig(2_000_000), 0)
	rng := sim.NewRNG(23)
	seq := uint64(0)
	now := sim.Time(0)
	for ; now < 60*sim.Second; now += 100 * sim.Millisecond {
		var results []PacketResult
		for i := 0; i < 20; i++ {
			seq++
			sent := now + sim.Time(i)*5*sim.Millisecond
			c.OnPacketSent(seq, 1250)
			d := 20 + rng.Exponential(10)
			results = append(results, PacketResult{Seq: seq, Size: 1250, SentAt: sent,
				RecvAt: sent + sim.FromMilliseconds(d)})
		}
		c.OnFeedback(now+100*sim.Millisecond, results)
	}
	min := DefaultAIMDConfig().MinRateBps
	if c.TargetRate() <= min*1.5 {
		t.Fatalf("heavy jitter pinned rate near floor: %v", c.TargetRate())
	}
}
