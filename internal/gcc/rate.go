package gcc

import (
	"math"

	"github.com/domino5g/domino/internal/sim"
)

func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }

// AckedBitrate measures delivered throughput from transport feedback
// over a sliding window — GCC's "acknowledged bitrate estimator".
type AckedBitrate struct {
	window  sim.Time
	samples []ackSample
	bytes   int
}

type ackSample struct {
	at   sim.Time
	size int
}

// NewAckedBitrate returns an estimator with the given window
// (libwebrtc uses ~500 ms; zero selects that default).
func NewAckedBitrate(window sim.Time) *AckedBitrate {
	if window <= 0 {
		window = 500 * sim.Millisecond
	}
	return &AckedBitrate{window: window}
}

// OnAcked records size bytes acknowledged as received at time at.
func (ab *AckedBitrate) OnAcked(at sim.Time, size int) {
	ab.samples = append(ab.samples, ackSample{at: at, size: size})
	ab.bytes += size
	ab.trim(at)
}

func (ab *AckedBitrate) trim(now sim.Time) {
	cut := 0
	for cut < len(ab.samples) && ab.samples[cut].at < now-ab.window {
		ab.bytes -= ab.samples[cut].size
		cut++
	}
	if cut > 0 {
		ab.samples = ab.samples[cut:]
	}
}

// Rate returns the current estimate in bits per second (0 until data).
func (ab *AckedBitrate) Rate(now sim.Time) float64 {
	ab.trim(now)
	if len(ab.samples) < 2 {
		return 0
	}
	span := ab.samples[len(ab.samples)-1].at - ab.samples[0].at
	if span < 50*sim.Millisecond {
		span = 50 * sim.Millisecond
	}
	return float64(ab.bytes*8) / span.Seconds()
}

// LossEstimator applies the GCC loss-based bound: above 10% loss the
// rate is cut proportionally; below 2% it may grow; in between it
// holds.
type LossEstimator struct {
	rate float64
}

// NewLossEstimator starts the loss-based bound at startRate.
func NewLossEstimator(startRate float64) *LossEstimator {
	return &LossEstimator{rate: startRate}
}

// Update applies one feedback interval's loss fraction and returns the
// loss-based rate bound. The bound is stateful: sustained loss
// compounds multiplicative cuts; loss-free intervals grow the bound
// back toward (and then past) the delay-based rate, at which point the
// delay-based estimate governs.
func (l *LossEstimator) Update(lossFraction, delayBasedRate float64) float64 {
	if l.rate <= 0 {
		l.rate = delayBasedRate
	}
	switch {
	case lossFraction > 0.10:
		l.rate *= 1 - 0.5*lossFraction
	case lossFraction < 0.02:
		l.rate *= 1.05
	}
	if l.rate > delayBasedRate {
		l.rate = delayBasedRate
	}
	return l.rate
}

// Rate returns the current loss-based bound.
func (l *LossEstimator) Rate() float64 { return l.rate }
