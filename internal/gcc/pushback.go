package gcc

import (
	"github.com/domino5g/domino/internal/sim"
)

// PushbackConfig parameterizes the congestion-window pushback
// controller (§6.3, Appendix E).
type PushbackConfig struct {
	// WindowRTTMultiple sizes the congestion window as this multiple of
	// the RTT's worth of target-rate bytes, plus the additive term.
	WindowRTTMultiple float64
	// ExtraWindowBytes is the additive window slack.
	ExtraWindowBytes int
	// MinWindowBytes floors the window.
	MinWindowBytes int
	// MinPushbackRateBps floors the pushback rate.
	MinPushbackRateBps float64
}

// DefaultPushbackConfig returns libwebrtc-like parameters.
func DefaultPushbackConfig() PushbackConfig {
	return PushbackConfig{
		WindowRTTMultiple:  1.5,
		ExtraWindowBytes:   6000,
		MinWindowBytes:     12000,
		MinPushbackRateBps: 120_000,
	}
}

// Pushback tracks outstanding (sent-but-unacknowledged) bytes against a
// congestion window and derives the final media send rate from the
// target rate. A delay increase on either the media path or the RTCP
// feedback path inflates outstanding bytes and triggers pushback —
// exactly the Fig. 22 mechanism.
type Pushback struct {
	cfg PushbackConfig

	inflight    map[uint64]int // seq → size of unacked packets
	outstanding int
	window      int

	pushbackRate float64
}

// NewPushback returns a pushback controller.
func NewPushback(cfg PushbackConfig) *Pushback {
	if cfg.MinWindowBytes <= 0 {
		cfg = DefaultPushbackConfig()
	}
	return &Pushback{cfg: cfg, inflight: make(map[uint64]int), window: cfg.MinWindowBytes}
}

// OnPacketSent registers an outgoing media packet.
func (p *Pushback) OnPacketSent(seq uint64, size int) {
	if _, dup := p.inflight[seq]; dup {
		return
	}
	p.inflight[seq] = size
	p.outstanding += size
}

// OnAcked removes an acknowledged (or reported-lost) packet.
func (p *Pushback) OnAcked(seq uint64) {
	if size, ok := p.inflight[seq]; ok {
		delete(p.inflight, seq)
		p.outstanding -= size
	}
}

// Update recomputes the window from the smoothed RTT and target rate,
// then derives the pushback rate. It returns the pushback rate.
func (p *Pushback) Update(now sim.Time, targetRateBps, rttMs float64) float64 {
	if rttMs <= 0 {
		rttMs = 100
	}
	w := int(targetRateBps / 8 * rttMs / 1000 * p.cfg.WindowRTTMultiple)
	w += p.cfg.ExtraWindowBytes
	if w < p.cfg.MinWindowBytes {
		w = p.cfg.MinWindowBytes
	}
	p.window = w

	fill := float64(p.outstanding) / float64(p.window)
	rate := targetRateBps
	if fill > 1 {
		// Window exceeded: scale the rate down proportionally so
		// outstanding data can drain.
		rate = targetRateBps / fill
	}
	if rate < p.cfg.MinPushbackRateBps {
		rate = p.cfg.MinPushbackRateBps
	}
	if rate > targetRateBps {
		rate = targetRateBps
	}
	p.pushbackRate = rate
	return rate
}

// OutstandingBytes returns current in-flight bytes.
func (p *Pushback) OutstandingBytes() int { return p.outstanding }

// WindowBytes returns the current congestion window.
func (p *Pushback) WindowBytes() int { return p.window }

// Rate returns the last computed pushback rate.
func (p *Pushback) Rate() float64 { return p.pushbackRate }
