package rcastore

import (
	"fmt"
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

// synthRecords builds a deterministic fleet of records: cells ×
// scenarios × sessions with varied fired sets, chain runs, and cause
// rollups, driven by a seeded xorshift so the workload is identical
// across runs and machines.
func synthRecords(n int) []Record {
	cells := []string{"tdd", "fdd", "amarisoft", "mosolabs"}
	scens := []string{"harq-storm", "grant-starvation", "rush-hour-cross-traffic", "flapping-rrc"}
	nodes := []string{
		"harq_retx", "rlc_retx", "cross_traffic", "channel_degrades", "ul_scheduling", "rrc_state_change",
		"forward_delay_up", "reverse_delay_up", "target_bitrate_down", "jitter_buffer_drain",
		"inbound_framerate_down", "outbound_resolution_down",
	}
	chains := []string{
		"harq_retx --> forward_delay_up --> jitter_buffer_drain",
		"ul_scheduling --> target_bitrate_down --> outbound_resolution_down",
		"cross_traffic --> forward_delay_up --> inbound_framerate_down",
		"channel_degrades --> harq_retx --> jitter_buffer_drain",
		"rrc_state_change --> forward_delay_up --> jitter_buffer_drain",
	}
	causeOf := []string{"harq_retx", "ul_scheduling", "cross_traffic", "channel_degrades", "rrc_state_change"}
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	out := make([]Record, n)
	for i := range out {
		start := sim.Time(i) * 30 * sim.Second
		r := Record{
			Session:  fmt.Sprintf("s%06d", i),
			Cell:     cells[next(len(cells))],
			Scenario: scens[next(len(scens))],
			Start:    start,
			End:      start + sim.Minute,
		}
		for j, name := range nodes {
			if next(3) != 0 || j < 2 {
				r.Fired = append(r.Fired, name)
			}
		}
		seen := map[string]int{}
		for c := 0; c < 1+next(3); c++ {
			id := next(len(chains))
			runs := 1 + next(8)
			r.Chains = append(r.Chains, ChainRuns{Chain: chains[id], Runs: runs})
			seen[causeOf[id]] += runs
		}
		for cause, runs := range seen {
			r.Causes = append(r.Causes, CauseRuns{Cause: cause, Runs: runs})
		}
		r.Metrics = []Metric{{Name: "degradation_per_min", Value: float64(next(100)) / 10}}
		out[i] = r
	}
	return out
}

// BenchmarkRCAStoreInsert measures fleet ingest into a bounded store:
// each op pushes a 4096-record fleet through Insert with dictionary
// interning, bitset packing, and block eviction all on the hot path.
func BenchmarkRCAStoreInsert(b *testing.B) {
	recs := synthRecords(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(Options{BlockRows: 256, MaxBlocks: 8})
		for _, r := range recs {
			s.Insert(r)
		}
	}
	b.ReportMetric(float64(b.N*len(recs))/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkRCAStoreQuery measures the read side over a 8192-record
// fleet: each op is one ranged record query plus the three
// aggregations (top chains, cause rates, nearest-incident).
func BenchmarkRCAStoreQuery(b *testing.B) {
	recs := synthRecords(8192)
	s := New(Options{BlockRows: 256})
	for _, r := range recs {
		s.Insert(r)
	}
	stats := s.Stats()
	window := Query{From: stats.MaxStart - 30*sim.Minute, Cell: "tdd"}
	probe := []string{"harq_retx", "forward_delay_up", "jitter_buffer_drain", "cross_traffic"}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows += len(s.Query(window))
		rows += len(s.TopChains(Query{From: stats.MaxStart - 60*sim.Minute}, 5))
		rows += len(s.CauseRates(Query{Cell: "fdd"}, 10*sim.Minute))
		rows += len(s.Similar(probe, Query{}, 5))
	}
	if rows == 0 {
		b.Fatal("benchmark queries matched nothing")
	}
	b.ReportMetric(float64(b.N*4)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkRCAStoreJournalAppend measures the write-ahead journal's
// append path at the default group-commit batch (SyncEvery 64): CRC
// framing + JSON encode + batched fsync, the per-report durability tax
// dominod pays on session completion.
func BenchmarkRCAStoreJournalAppend(b *testing.B) {
	recs := synthRecords(256)
	j, err := OpenJournal(b.TempDir()+"/bench.wal", JournalOptions{SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkRCAStoreJournalReplay measures cold-start recovery: decode
// + CRC-verify + dedup-check + insert for a 4096-record journal with
// no checkpoint, the worst-case restart cost per record.
func BenchmarkRCAStoreJournalReplay(b *testing.B) {
	recs := synthRecords(4096)
	dir := b.TempDir()
	jpath := dir + "/bench.wal"
	j, err := OpenJournal(jpath, JournalOptions{SyncEvery: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, j2, stats, err := Recover(dir+"/none.ckpt", jpath, Options{BlockRows: 256}, JournalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		j2.Close()
		if stats.Replayed == 0 || st.Len() == 0 {
			b.Fatal("replay recovered nothing")
		}
	}
	b.ReportMetric(float64(b.N*len(recs))/b.Elapsed().Seconds(), "records/s")
}
