package rcastore

// This file is the store's durability layer: a crash-consistent
// write-ahead journal plus checkpoint/recover. The spill file
// (Store.Spill) remains the checkpoint format; the journal records
// every report inserted since the last checkpoint, so a crash loses at
// most the appends an operator chose not to fsync yet (SyncEvery > 1)
// instead of everything since boot.
//
// Layout on disk:
//
//	checkpoint  — a Spill stream, replaced atomically (tmp + rename)
//	journal     — one framed line per Record appended since the last
//	              checkpoint: crc32(payload) as 8 hex chars, a space,
//	              the Record as JSON, '\n'
//
// Recovery loads the checkpoint, replays the journal tail, tolerates a
// torn final record (a crash mid-append), and deduplicates by session
// ID so the crash window between "checkpoint renamed" and "journal
// truncated" cannot double-insert. The recovered store spills
// byte-identically to a gracefully shut-down one — pinned by
// TestJournalRecoverMatchesGracefulSpill.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"

	"github.com/domino5g/domino/internal/obs"
)

// File is the subset of *os.File the journal needs. It exists so fault
// harnesses (internal/faultinject) can inject disk errors underneath
// the journal without touching the real filesystem.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Truncate changes the file's size, keeping the write offset for
	// O_APPEND handles at the new end.
	Truncate(size int64) error
}

// FS is the filesystem seam the journal and checkpoint path go
// through. OsFS is the real implementation; faultinject.FS injects
// deterministic write/sync/rename errors for crash testing.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OsFS implements FS on the host filesystem.
type OsFS struct{}

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// JournalOptions parameterize a journal.
type JournalOptions struct {
	// FS is the filesystem the journal writes through; nil selects
	// OsFS.
	FS FS
	// SyncEvery batches fsyncs: the file is synced once every this many
	// appends (group commit). <= 1 (the default) syncs every append —
	// a report acked to the journal is durable before Append returns.
	SyncEvery int
	// Hooks, if set, observes journal lifecycle events (appends, syncs,
	// replay, checkpoints). Must not call back into the journal.
	Hooks obs.Hooks
}

func (o JournalOptions) defaults() JournalOptions {
	if o.FS == nil {
		o.FS = OsFS{}
	}
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	return o
}

// Journal is a crash-consistent append log of store records. Append is
// safe for concurrent use; a Journal belongs to exactly one Store's
// insert stream (the caller appends every record it inserts).
type Journal struct {
	mu        sync.Mutex
	fs        FS
	f         File
	path      string
	opts      JournalOptions
	buf       []byte
	sinceSync int
	closed    bool
}

// OpenJournal opens (creating if absent) a journal for appending.
// Callers that may be restarting after a crash should use Recover
// instead, which replays and repairs the tail before reopening.
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	opts = opts.defaults()
	f, err := opts.FS.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("rcastore: opening journal: %w", err)
	}
	return &Journal{fs: opts.FS, f: f, path: path, opts: opts}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// SetHooks installs (or replaces) the journal's observability hooks.
// Recovery runs before a service's metrics exist, so dominod recovers
// first and wires hooks afterwards.
func (j *Journal) SetHooks(h obs.Hooks) {
	j.mu.Lock()
	j.opts.Hooks = h
	j.mu.Unlock()
}

// Append frames and writes one record, fsyncing per the SyncEvery
// policy. An error leaves the journal usable: the failed entry may be
// torn on disk, which recovery tolerates at the tail.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("rcastore: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("rcastore: journal closed")
	}
	j.buf = j.buf[:0]
	j.buf = appendCRC(j.buf, payload)
	j.buf = append(j.buf, ' ')
	j.buf = append(j.buf, payload...)
	j.buf = append(j.buf, '\n')
	if _, err := j.f.Write(j.buf); err != nil {
		return fmt.Errorf("rcastore: journal append: %w", err)
	}
	if j.opts.Hooks != nil {
		j.opts.Hooks.JournalAppended(1)
	}
	j.sinceSync++
	if j.sinceSync >= j.opts.SyncEvery {
		return j.syncLocked()
	}
	return nil
}

// Sync forces any batched appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rcastore: journal sync: %w", err)
	}
	if j.opts.Hooks != nil {
		j.opts.Hooks.JournalSynced()
	}
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Checkpoint atomically persists the store's full retained state to
// checkpointPath (spill to a temp file, fsync, rename) and then resets
// the journal to empty. Crash ordering is safe at every step: before
// the rename the old checkpoint + full journal recover the store;
// after the rename but before the truncate, replay deduplicates the
// journaled sessions already present in the new checkpoint.
func (j *Journal) Checkpoint(st *Store, checkpointPath string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("rcastore: journal closed")
	}
	// Durability order part 1: the journal must be complete on disk
	// before the checkpoint that supersedes it.
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rcastore: journal sync before checkpoint: %w", err)
	}
	tmp := checkpointPath + ".tmp"
	f, err := j.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("rcastore: creating checkpoint temp: %w", err)
	}
	if err := st.Spill(f); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		return fmt.Errorf("rcastore: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		j.fs.Remove(tmp)
		return fmt.Errorf("rcastore: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("rcastore: closing checkpoint: %w", err)
	}
	if err := j.fs.Rename(tmp, checkpointPath); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("rcastore: publishing checkpoint: %w", err)
	}
	// The checkpoint is durable and published; the journaled history it
	// covers can go.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("rcastore: truncating journal after checkpoint: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rcastore: syncing truncated journal: %w", err)
	}
	if j.opts.Hooks != nil {
		j.opts.Hooks.JournalCheckpointed(st.Len())
	}
	return nil
}

// RecoveryStats reports what Recover found on disk.
type RecoveryStats struct {
	// CheckpointRows is the number of rows loaded from the checkpoint
	// (0 when no checkpoint file existed).
	CheckpointRows int
	// Replayed is the number of journal records inserted into the
	// store.
	Replayed int
	// Deduped is the number of journal records skipped because their
	// session was already present — the checkpoint-rename/journal-
	// truncate crash window.
	Deduped int
	// TornTail reports whether the journal ended in a torn (partially
	// written) record, which was discarded and truncated away.
	TornTail bool
	// TornBytes is the size of the discarded torn tail.
	TornBytes int64
}

// Recover rebuilds a store from its checkpoint and journal, repairing
// a torn journal tail, and returns the store plus a journal reopened
// for appending. Either file may be absent (a fresh deployment, or a
// crash before the first checkpoint). The recovered store is
// byte-identical, under Spill, to the store a graceful shutdown would
// have spilled — provided every insert was journaled and synced.
func Recover(checkpointPath, journalPath string, opts Options, jopts JournalOptions) (*Store, *Journal, RecoveryStats, error) {
	jopts = jopts.defaults()
	fs := jopts.FS
	var stats RecoveryStats

	st, err := loadCheckpoint(fs, checkpointPath, opts)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.CheckpointRows = st.Len()

	goodOffset, torn, err := replayJournal(fs, journalPath, st, &stats)
	if err != nil {
		return nil, nil, stats, err
	}

	j, err := OpenJournal(journalPath, jopts)
	if err != nil {
		return nil, nil, stats, err
	}
	if torn {
		// Drop the torn record so the next append starts a clean frame.
		if err := j.f.Truncate(goodOffset); err != nil {
			j.Close()
			return nil, nil, stats, fmt.Errorf("rcastore: truncating torn journal tail: %w", err)
		}
	}
	if jopts.Hooks != nil {
		jopts.Hooks.JournalReplayed(stats.Replayed, stats.Deduped)
	}
	return st, j, stats, nil
}

// loadCheckpoint loads the checkpoint spill, returning an empty store
// when the file does not exist.
func loadCheckpoint(fs FS, path string, opts Options) (*Store, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return New(opts), nil
		}
		return nil, fmt.Errorf("rcastore: opening checkpoint: %w", err)
	}
	defer f.Close()
	st, err := Load(f, opts)
	if err != nil {
		return nil, fmt.Errorf("rcastore: loading checkpoint %s: %w", path, err)
	}
	return st, nil
}

// replayJournal replays journalPath into st, skipping records whose
// session is already stored. It returns the offset of the end of the
// last valid record and whether a torn tail follows it. A malformed
// record that is NOT the final one is corruption and fails recovery —
// torn writes can only happen at the tail.
func replayJournal(fs FS, path string, st *Store, stats *RecoveryStats) (int64, bool, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("rcastore: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, false, fmt.Errorf("rcastore: reading journal: %w", err)
	}

	seen := st.sessionSet()
	var goodOffset int64
	entry := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		lineEnd := nl
		if nl < 0 {
			lineEnd = len(data)
		}
		line := data[:lineEnd]
		entry++
		rec, derr := decodeJournalLine(line)
		if nl < 0 {
			// No commit newline: the final record was torn mid-write,
			// whatever its bytes happen to decode as.
			stats.TornTail = true
			stats.TornBytes = int64(len(data))
			return goodOffset, true, nil
		}
		if derr != nil {
			// A bad record is only a crash artifact at the very tail;
			// earlier it is corruption and recovery must not guess.
			if len(bytes.TrimSpace(data[nl+1:])) > 0 {
				return 0, false, fmt.Errorf("rcastore: journal entry %d corrupt: %v", entry, derr)
			}
			stats.TornTail = true
			stats.TornBytes = int64(len(data))
			return goodOffset, true, nil
		}
		if _, dup := seen[rec.Session]; dup {
			stats.Deduped++
		} else {
			st.Insert(rec)
			seen[rec.Session] = struct{}{}
			stats.Replayed++
		}
		goodOffset += int64(nl + 1)
		data = data[nl+1:]
	}
	return goodOffset, false, nil
}

// decodeJournalLine validates one framed journal line ("crc8hex
// payload") and decodes its record.
func decodeJournalLine(line []byte) (Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, fmt.Errorf("short or unframed line (%d bytes)", len(line))
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, fmt.Errorf("bad frame checksum field: %v", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return Record{}, fmt.Errorf("checksum mismatch: frame says %08x, payload is %08x", want, got)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("decoding record: %v", err)
	}
	return rec, nil
}

// appendCRC appends crc32(payload) as 8 lower-case hex characters.
func appendCRC(dst, payload []byte) []byte {
	const hexdigits = "0123456789abcdef"
	sum := crc32.ChecksumIEEE(payload)
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hexdigits[(sum>>uint(shift))&0xF])
	}
	return dst
}

// sessionSet returns the set of session IDs currently retained —
// recovery's dedup index.
func (s *Store) sessionSet() map[string]struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]struct{})
	for _, b := range s.blocks {
		for i := 0; i < b.n; i++ {
			set[b.sessions[i]] = struct{}{}
		}
	}
	return set
}
