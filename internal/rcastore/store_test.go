package rcastore

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/sim"
)

// rec builds a synthetic record at minute m with the given identity and
// payload.
func rec(session, cell, scen string, m int, fired []string, chains []ChainRuns, causes []CauseRuns) Record {
	start := sim.Time(m) * sim.Minute
	return Record{
		Session: session, Cell: cell, Scenario: scen,
		Start: start, End: start + sim.Minute,
		Fired: fired, Chains: chains, Causes: causes,
	}
}

func sessions(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Session
	}
	return out
}

func TestFromReport(t *testing.T) {
	chain := core.Chain{ID: 1, Nodes: []string{"harq_retx", "forward_delay_up", "jitter_buffer_drain"}}
	rep := &core.Report{
		CellName: "tdd",
		Scenario: "harq-storm",
		Duration: 60 * sim.Second,
		NodeEvents: map[string][]core.EventRun{
			"harq_retx":           {{Node: "harq_retx"}, {Node: "harq_retx"}},
			"jitter_buffer_drain": {{Node: "jitter_buffer_drain"}},
			"never_fired":         {},
		},
		ChainEvents: map[int][]core.ChainRun{
			1: {{Chain: chain}, {Chain: chain}, {Chain: chain}},
			2: {},
		},
	}
	r := FromReport("s1", 10*sim.Minute, rep)
	if r.Cell != "tdd" || r.Scenario != "harq-storm" || r.Session != "s1" {
		t.Fatalf("identity columns wrong: %+v", r)
	}
	if r.Start != 10*sim.Minute || r.End != 10*sim.Minute+60*sim.Second {
		t.Fatalf("time columns wrong: %+v", r)
	}
	if want := []string{"harq_retx", "jitter_buffer_drain"}; !reflect.DeepEqual(r.Fired, want) {
		t.Fatalf("Fired = %v, want %v (sorted, empty runs excluded)", r.Fired, want)
	}
	if want := []ChainRuns{{Chain: chain.String(), Runs: 3}}; !reflect.DeepEqual(r.Chains, want) {
		t.Fatalf("Chains = %v, want %v", r.Chains, want)
	}
	if want := []CauseRuns{{Cause: "harq_retx", Runs: 3}}; !reflect.DeepEqual(r.Causes, want) {
		t.Fatalf("Causes = %v, want %v", r.Causes, want)
	}
	if r.TotalChainRuns() != 3 {
		t.Fatalf("TotalChainRuns = %d, want 3", r.TotalChainRuns())
	}
}

func TestEmptyStoreQueries(t *testing.T) {
	s := New(Options{})
	if got := s.Query(Query{}); len(got) != 0 {
		t.Fatalf("empty store Query returned %d records", len(got))
	}
	if got := s.TopChains(Query{}, 5); len(got) != 0 {
		t.Fatalf("empty store TopChains returned %v", got)
	}
	if got := s.CauseRates(Query{}, sim.Minute); len(got) != 0 {
		t.Fatalf("empty store CauseRates returned %v", got)
	}
	if got := s.Similar([]string{"harq_retx"}, Query{}, 3); len(got) != 0 {
		t.Fatalf("empty store Similar returned %v", got)
	}
	if _, ok := s.Fired("nope"); ok {
		t.Fatal("empty store Fired reported a record")
	}
	st := s.Stats()
	if st.Rows != 0 || st.Blocks != 0 || st.MinStart != 0 || st.MaxStart != 0 {
		t.Fatalf("empty store Stats = %+v", st)
	}
	if s.Len() != 0 {
		t.Fatalf("empty store Len = %d", s.Len())
	}
	var buf bytes.Buffer
	if err := s.Spill(&buf); err != nil {
		t.Fatalf("empty store Spill: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("empty store spill has %d lines, want 1 (header only)", n)
	}
}

func TestQueryPredicates(t *testing.T) {
	s := New(Options{BlockRows: 2})
	s.Insert(rec("a", "tdd", "harq-storm", 0,
		[]string{"harq_retx", "jitter_buffer_drain"},
		[]ChainRuns{{Chain: "harq_retx --> jitter_buffer_drain", Runs: 2}},
		[]CauseRuns{{Cause: "harq_retx", Runs: 2}}))
	s.Insert(rec("b", "fdd", "grant-starvation", 1,
		[]string{"ul_scheduling"},
		[]ChainRuns{{Chain: "ul_scheduling --> target_bitrate_down", Runs: 1}},
		[]CauseRuns{{Cause: "ul_scheduling", Runs: 1}}))
	s.Insert(rec("c", "tdd", "grant-starvation", 2,
		[]string{"ul_scheduling", "harq_retx"},
		[]ChainRuns{{Chain: "ul_scheduling --> target_bitrate_down", Runs: 4}},
		[]CauseRuns{{Cause: "ul_scheduling", Runs: 4}}))

	cases := []struct {
		name string
		q    Query
		want []string
	}{
		{"all", Query{}, []string{"a", "b", "c"}},
		{"cell", Query{Cell: "tdd"}, []string{"a", "c"}},
		{"unknown cell", Query{Cell: "nope"}, nil},
		{"scenario", Query{Scenario: "grant-starvation"}, []string{"b", "c"}},
		{"session", Query{Session: "b"}, []string{"b"}},
		{"time range", Query{From: sim.Minute, To: 2 * sim.Minute}, []string{"b"}},
		{"from only", Query{From: sim.Minute}, []string{"b", "c"}},
		{"cause", Query{Cause: "ul_scheduling"}, []string{"b", "c"}},
		{"unknown cause", Query{Cause: "nope"}, nil},
		{"fired all", Query{FiredAll: []string{"harq_retx", "ul_scheduling"}}, []string{"c"}},
		{"fired unknown", Query{FiredAll: []string{"never_seen"}}, nil},
		{"limit", Query{Limit: 2}, []string{"a", "b"}},
		{"combined", Query{Cell: "tdd", Cause: "ul_scheduling"}, []string{"c"}},
	}
	for _, tc := range cases {
		if got := sessions(s.Query(tc.q)); !reflect.DeepEqual(got, tc.want) && !(len(got) == 0 && len(tc.want) == 0) {
			t.Errorf("%s: Query = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestOutOfOrderInsertion(t *testing.T) {
	s := New(Options{BlockRows: 2})
	for _, m := range []int{7, 2, 9, 0, 5, 4} {
		s.Insert(rec(fmt.Sprintf("s%d", m), "tdd", "", m, []string{"harq_retx"}, nil, nil))
	}
	got := sessions(s.Query(Query{}))
	want := []string{"s0", "s2", "s4", "s5", "s7", "s9"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("out-of-order query order = %v, want %v (sorted by start)", got, want)
	}
	// A range crossing block boundaries must still see the bubble-sorted
	// truth: minutes [2,6) = s2, s4, s5 even though they sit in
	// different arrival-order blocks.
	got = sessions(s.Query(Query{From: 2 * sim.Minute, To: 6 * sim.Minute}))
	if want := []string{"s2", "s4", "s5"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("out-of-order ranged query = %v, want %v", got, want)
	}
	st := s.Stats()
	if st.MinStart != 0 || st.MaxStart != 9*sim.Minute {
		t.Fatalf("Stats bounds = [%v, %v], want [0, 9m]", st.MinStart, st.MaxStart)
	}
}

func TestEvictionBoundary(t *testing.T) {
	s := New(Options{BlockRows: 2, MaxBlocks: 2})
	for m := 0; m < 7; m++ {
		s.Insert(rec(fmt.Sprintf("s%d", m), "tdd", "", m, []string{"harq_retx"}, nil,
			[]CauseRuns{{Cause: "harq_retx", Runs: 1}}))
	}
	// 7 rows at 2 rows/block = 4 blocks; retention 2 blocks keeps rows
	// s4..s6 (the open block holds s6 alone).
	st := s.Stats()
	if st.Rows != 3 || st.InsertedRows != 7 || st.EvictedRows != 4 || st.EvictedBlocks != 2 {
		t.Fatalf("retention stats = %+v, want rows=3 inserted=7 evictedRows=4 evictedBlocks=2", st)
	}
	// A query spanning evicted history returns only the retained tail.
	got := sessions(s.Query(Query{From: 0, To: 10 * sim.Minute}))
	if want := []string{"s4", "s5", "s6"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("query across evicted blocks = %v, want %v", got, want)
	}
	// A query entirely inside the evicted range finds nothing.
	if got := s.Query(Query{From: 0, To: 4 * sim.Minute}); len(got) != 0 {
		t.Fatalf("query inside evicted range returned %v", sessions(got))
	}
	// Aggregations see only retained rows too.
	tc := s.TopChains(Query{}, 0)
	if len(tc) != 0 {
		t.Fatalf("TopChains over chainless records = %v", tc)
	}
	cr := s.CauseRates(Query{}, 0)
	if len(cr) != 1 || cr[0].Runs != 3 || cr[0].Sessions != 3 {
		t.Fatalf("CauseRates after eviction = %+v, want one bucket with runs=3 sessions=3", cr)
	}
	if st.MinStart != 4*sim.Minute {
		t.Fatalf("retained MinStart = %v, want 4m", st.MinStart)
	}
}

func TestStrideGrowthRepack(t *testing.T) {
	s := New(Options{BlockRows: 64})
	s.Insert(rec("small", "tdd", "", 0, []string{"n0", "n1"}, nil, nil))
	// Blow the node universe past one word while the block is open.
	var wide []string
	for i := 0; i < 70; i++ {
		wide = append(wide, fmt.Sprintf("n%d", i))
	}
	s.Insert(rec("wide", "tdd", "", 1, wide, nil, nil))
	s.Insert(rec("tail", "tdd", "", 2, []string{"n69"}, nil, nil))

	if got := s.Query(Query{Session: "small"})[0].Fired; !reflect.DeepEqual(got, []string{"n0", "n1"}) {
		t.Fatalf("repacked early row Fired = %v", got)
	}
	if got := s.Query(Query{Session: "wide"})[0].Fired; len(got) != 70 {
		t.Fatalf("wide row has %d fired nodes, want 70", len(got))
	}
	if got := sessions(s.Query(Query{FiredAll: []string{"n69"}})); !reflect.DeepEqual(got, []string{"wide", "tail"}) {
		t.Fatalf("FiredAll over grown universe = %v", got)
	}
	// Hamming similarity across strides: probe beyond the early row's
	// original word count.
	m := s.Similar([]string{"n0", "n1"}, Query{}, 1)
	if len(m) != 1 || m[0].Session != "small" || m[0].Distance != 0 {
		t.Fatalf("Similar across strides = %+v", m)
	}
}

func TestTopChainsAndCauseRates(t *testing.T) {
	s := New(Options{})
	chainA := "harq_retx --> jitter_buffer_drain"
	chainB := "ul_scheduling --> target_bitrate_down"
	s.Insert(rec("a", "tdd", "", 0, nil,
		[]ChainRuns{{Chain: chainA, Runs: 2}, {Chain: chainB, Runs: 5}},
		[]CauseRuns{{Cause: "harq_retx", Runs: 2}, {Cause: "ul_scheduling", Runs: 5}}))
	s.Insert(rec("b", "tdd", "", 1, nil,
		[]ChainRuns{{Chain: chainA, Runs: 4}},
		[]CauseRuns{{Cause: "harq_retx", Runs: 4}}))
	s.Insert(rec("c", "fdd", "", 1, nil,
		[]ChainRuns{{Chain: chainB, Runs: 1}},
		[]CauseRuns{{Cause: "ul_scheduling", Runs: 1}}))

	top := s.TopChains(Query{}, 1)
	if len(top) != 1 || top[0].Chain != chainA || top[0].Runs != 6 || top[0].Sessions != 2 {
		t.Fatalf("TopChains k=1 = %+v, want %s runs=6 sessions=2", top, chainA)
	}
	top = s.TopChains(Query{Cell: "fdd"}, 0)
	if len(top) != 1 || top[0].Chain != chainB || top[0].Runs != 1 {
		t.Fatalf("TopChains cell=fdd = %+v", top)
	}

	rates := s.CauseRates(Query{}, sim.Minute)
	// Expect (fdd,1m,ul), (tdd,0,harq), (tdd,0,ul), (tdd,1m,harq) in
	// (cell, bucket, cause) order.
	want := []CauseBucket{
		{Cell: "fdd", Bucket: sim.Minute, Cause: "ul_scheduling", Runs: 1, Sessions: 1, Minutes: 1, RunsPerMin: 1},
		{Cell: "tdd", Bucket: 0, Cause: "harq_retx", Runs: 2, Sessions: 1, Minutes: 1, RunsPerMin: 2},
		{Cell: "tdd", Bucket: 0, Cause: "ul_scheduling", Runs: 5, Sessions: 1, Minutes: 1, RunsPerMin: 5},
		{Cell: "tdd", Bucket: sim.Minute, Cause: "harq_retx", Runs: 4, Sessions: 1, Minutes: 1, RunsPerMin: 4},
	}
	if !reflect.DeepEqual(rates, want) {
		t.Fatalf("CauseRates = %+v\nwant %+v", rates, want)
	}
}

func TestSimilar(t *testing.T) {
	s := New(Options{})
	s.Insert(rec("old", "tdd", "", 0, []string{"a", "b", "c"}, nil, nil))
	s.Insert(rec("near", "tdd", "", 1, []string{"a", "b"}, nil, nil))
	s.Insert(rec("twin", "fdd", "", 2, []string{"a", "b", "c"}, nil, nil))
	s.Insert(rec("far", "tdd", "", 3, []string{"x"}, nil, nil))

	m := s.Similar([]string{"a", "b", "c"}, Query{}, 3)
	if len(m) != 3 {
		t.Fatalf("Similar returned %d matches, want 3", len(m))
	}
	// Exact matches first, most recent exact match before the older one.
	if m[0].Session != "twin" || m[0].Distance != 0 {
		t.Fatalf("best match = %s d=%d, want twin d=0", m[0].Session, m[0].Distance)
	}
	if m[1].Session != "old" || m[1].Distance != 0 {
		t.Fatalf("second match = %s d=%d, want old d=0 (recency tiebreak)", m[1].Session, m[1].Distance)
	}
	if m[2].Session != "near" || m[2].Distance != 1 {
		t.Fatalf("third match = %s d=%d, want near d=1", m[2].Session, m[2].Distance)
	}
	// Unknown probe nodes add constant distance but preserve order; a
	// cell filter narrows candidates.
	m = s.Similar([]string{"a", "b", "c", "never_seen"}, Query{Cell: "tdd"}, 1)
	if len(m) != 1 || m[0].Session != "old" || m[0].Distance != 1 {
		t.Fatalf("filtered Similar = %+v, want old d=1", m)
	}
	// Fired() returns the latest record for a session.
	r, ok := s.Fired("near")
	if !ok || !reflect.DeepEqual(r.Fired, []string{"a", "b"}) {
		t.Fatalf("Fired(near) = %+v ok=%v", r, ok)
	}
}

func TestSpillReloadRoundTrip(t *testing.T) {
	s := New(Options{BlockRows: 2})
	s.Insert(rec("a", "tdd", "harq-storm", 0,
		[]string{"harq_retx", "jitter_buffer_drain"},
		[]ChainRuns{{Chain: "harq_retx --> jitter_buffer_drain", Runs: 2}},
		[]CauseRuns{{Cause: "harq_retx", Runs: 2}}))
	r2 := rec("b", "fdd", "", 3, []string{"ul_scheduling"},
		[]ChainRuns{{Chain: "ul_scheduling --> target_bitrate_down", Runs: 1}},
		[]CauseRuns{{Cause: "ul_scheduling", Runs: 1}})
	r2.Metrics = []Metric{{Name: "frame_spread_p50_ms", Value: 3.75}, {Name: "ul_tbs_per_min", Value: 1234.5678901}}
	s.Insert(r2)
	s.Insert(rec("c", "tdd", "grant-starvation", 1, []string{"ul_scheduling", "harq_retx"}, nil, nil))

	var first bytes.Buffer
	if err := s.Spill(&first); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()), Options{BlockRows: 2})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var second bytes.Buffer
	if err := loaded.Spill(&second); err != nil {
		t.Fatalf("re-Spill: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("spill -> load -> spill is not byte-identical:\n--- first ---\n%s--- second ---\n%s",
			first.String(), second.String())
	}
	if !reflect.DeepEqual(loaded.Query(Query{}), s.Query(Query{})) {
		t.Fatal("loaded store's records differ from the source store's")
	}
	if v, ok := loaded.Query(Query{Session: "b"})[0].Metric("ul_tbs_per_min"); !ok || v != 1234.5678901 {
		t.Fatalf("metric lost in round trip: %v %v", v, ok)
	}
}

func TestLoadReEvicts(t *testing.T) {
	s := New(Options{BlockRows: 1})
	for m := 0; m < 5; m++ {
		s.Insert(rec(fmt.Sprintf("s%d", m), "tdd", "", m, nil, nil, nil))
	}
	var buf bytes.Buffer
	if err := s.Spill(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, Options{BlockRows: 1, MaxBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := sessions(loaded.Query(Query{}))
	if want := []string{"s3", "s4"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Load with tighter retention kept %v, want %v", got, want)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"not json", "hello\n"},
		{"wrong format", `{"rcastore":99,"nodes":[],"cells":[],"scenarios":[],"chains":[],"causes":[],"metrics":[]}` + "\n"},
		{"bad row json", `{"rcastore":1,"nodes":[],"cells":["tdd"],"scenarios":[""],"chains":[],"causes":[],"metrics":[]}` + "\nnot-json\n"},
		{"cell out of range", `{"rcastore":1,"nodes":[],"cells":[],"scenarios":[],"chains":[],"causes":[],"metrics":[]}` + "\n" +
			`{"session":"x","cell":7,"scenario":0,"start_us":0,"end_us":1}` + "\n"},
		{"node out of range", `{"rcastore":1,"nodes":[],"cells":["tdd"],"scenarios":[""],"chains":[],"causes":[],"metrics":[]}` + "\n" +
			`{"session":"x","cell":0,"scenario":0,"start_us":0,"end_us":1,"fired":[3]}` + "\n"},
		{"duplicate dict entry", `{"rcastore":1,"nodes":["a","a"],"cells":[],"scenarios":[],"chains":[],"causes":[],"metrics":[]}` + "\n"},
	}
	for _, tc := range cases {
		if _, err := Load(strings.NewReader(tc.in), Options{}); err == nil {
			t.Errorf("Load(%s) succeeded, want error", tc.name)
		}
	}
}

func TestInsertReport(t *testing.T) {
	chain := core.Chain{ID: 1, Nodes: []string{"cross_traffic", "forward_delay_up", "jitter_buffer_drain"}}
	rep := &core.Report{
		CellName: "fdd",
		Duration: 30 * sim.Second,
		NodeEvents: map[string][]core.EventRun{
			"cross_traffic": {{Node: "cross_traffic"}},
		},
		ChainEvents: map[int][]core.ChainRun{1: {{Chain: chain}}},
	}
	s := New(Options{})
	s.InsertReport("sess-9", 5*sim.Minute, rep, []Metric{{Name: "kpi", Value: 1}})
	got := s.Query(Query{Cause: "cross_traffic"})
	if len(got) != 1 || got[0].Session != "sess-9" {
		t.Fatalf("InsertReport record not queryable: %+v", got)
	}
	if v, ok := got[0].Metric("kpi"); !ok || v != 1 {
		t.Fatalf("InsertReport dropped metrics: %v %v", v, ok)
	}
}

// storeHooks counts obs hook invocations for TestStoreHooks.
type storeHooks struct {
	obs.NopHooks
	inserted, evicted, queries, spilledRows int
}

func (h *storeHooks) StoreInserted(rows int) { h.inserted += rows }
func (h *storeHooks) StoreEvicted(rows int)  { h.evicted += rows }
func (h *storeHooks) StoreQueried()          { h.queries++ }
func (h *storeHooks) StoreSpilled(rows int)  { h.spilledRows += rows }

// TestStoreHooks pins the store's observability seam: hook tallies
// agree with Stats() across inserts, whole-block evictions, every
// query entry point, and spills.
func TestStoreHooks(t *testing.T) {
	h := &storeHooks{}
	s := New(Options{BlockRows: 2, MaxBlocks: 2, Hooks: h})
	for i := 0; i < 7; i++ {
		s.Insert(rec(fmt.Sprintf("s%d", i), "cell", "scen", i, []string{"sinr_drop"}, nil, nil))
	}
	st := s.Stats()
	if h.inserted != st.InsertedRows {
		t.Fatalf("StoreInserted saw %d rows, stats %d", h.inserted, st.InsertedRows)
	}
	if h.evicted != st.EvictedRows || h.evicted == 0 {
		t.Fatalf("StoreEvicted saw %d rows, stats %d", h.evicted, st.EvictedRows)
	}

	s.Query(Query{})
	s.TopChains(Query{}, 3)
	s.CauseRates(Query{}, sim.Minute)
	s.Similar([]string{"sinr_drop"}, Query{}, 1)
	s.Fired("s6")
	if h.queries != 5 {
		t.Fatalf("StoreQueried fired %d times, want 5 (one per entry point)", h.queries)
	}

	var buf bytes.Buffer
	if err := s.Spill(&buf); err != nil {
		t.Fatal(err)
	}
	if h.spilledRows != s.Len() {
		t.Fatalf("StoreSpilled saw %d rows, store retains %d", h.spilledRows, s.Len())
	}
}
