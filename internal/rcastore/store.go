// Package rcastore is the fleet RCA memory: an embedded, append-only
// columnar store for completed analysis reports. Where dominod's
// per-session registry answers "what is wrong with this call right
// now", the store answers longitudinal questions across thousands of
// finished calls — "top causal chains fleet-wide in the last hour",
// "cells whose grant-starvation rate is trending up", "which prior
// incident looks like this one".
//
// Each completed core.Report collapses into one Record: identity
// columns (session, cell, scenario), a fleet-timeline position
// (start/end), the set of causal-graph nodes that fired at least once
// (packed as a dictionary-indexed bitset, the same uint64-word trick
// core.FeatureBits plays for the 36 detector features), per-chain
// collapsed run counts, per-cause-class rollups, and optional named
// numeric metrics. Records live in fixed-size column blocks with
// block-level time/cell/scenario pruning indexes; memory is bounded by
// evicting whole blocks oldest-first, and a JSONL spill format
// (Store.Spill / Load) carries history across restarts byte-identically.
//
// The query layer (query.go) matches typed predicates — time range,
// cell, scenario, cause class, fired-node mask, session — and
// aggregates matches into top-chain rankings, per-cell cause-class
// rates over time buckets, and nearest-prior-incident lookups by
// fired-node Hamming similarity.
package rcastore

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/sim"
)

// Options bound the store.
type Options struct {
	// BlockRows is the number of records per column block (default
	// 256). Larger blocks amortize per-block index overhead; smaller
	// blocks evict at finer granularity.
	BlockRows int
	// MaxBlocks caps retained blocks; once exceeded, whole blocks are
	// evicted oldest-first (insertion order). 0 retains everything.
	MaxBlocks int
	// Hooks, if set, observes store lifecycle events (inserts,
	// evictions, queries, spills). Implementations must be cheap and
	// must not call back into the store — hooks fire with the store
	// lock held.
	Hooks obs.Hooks
}

func (o Options) defaults() Options {
	if o.BlockRows <= 0 {
		o.BlockRows = 256
	}
	return o
}

// ChainRuns is one chain's collapsed run count within a record.
type ChainRuns struct {
	// Chain is the chain signature in DSL form ("cause --> ... -->
	// consequence"), the stable cross-session chain identity.
	Chain string `json:"chain"`
	Runs  int    `json:"runs"`
}

// CauseRuns is one cause class's collapsed chain-run rollup within a
// record.
type CauseRuns struct {
	Cause string `json:"cause"`
	Runs  int    `json:"runs"`
}

// Metric is one named numeric rollup attached to a record — per-session
// KPIs (delay quantiles, TB statistics) that longitudinal artifacts
// query instead of re-simulating.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Record is one completed session's row: what fired, which chains
// matched how often, and where the session sits on the fleet timeline.
// Start/End are absolute fleet times (wall-clock microseconds in
// dominod, synthetic timelines in experiments) — not the session's
// internal 0-based trace clock.
type Record struct {
	Session  string   `json:"session"`
	Cell     string   `json:"cell"`
	Scenario string   `json:"scenario,omitempty"`
	Start    sim.Time `json:"start_us"`
	End      sim.Time `json:"end_us"`
	// Fired lists causal-graph nodes with at least one collapsed event
	// run, sorted by name.
	Fired []string `json:"fired,omitempty"`
	// Chains holds collapsed run counts per matched chain, sorted by
	// chain signature.
	Chains []ChainRuns `json:"chains,omitempty"`
	// Causes holds chain-run rollups per root cause class, sorted by
	// cause.
	Causes []CauseRuns `json:"causes,omitempty"`
	// Metrics holds optional named numeric rollups, sorted by name.
	Metrics []Metric `json:"metrics,omitempty"`
}

// Duration returns the record's fleet-timeline span.
func (r Record) Duration() sim.Time { return r.End - r.Start }

// Metric returns a named metric value and whether it is present.
func (r Record) Metric(name string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// TotalChainRuns sums the record's collapsed chain runs.
func (r Record) TotalChainRuns() int {
	n := 0
	for _, c := range r.Chains {
		n += c.Runs
	}
	return n
}

// FromReport collapses a completed analysis report into a store record.
// start places the session on the fleet timeline; the record ends at
// start + report duration. Fired nodes, chain signatures, and cause
// rollups come sorted, so records built from equal reports are equal.
func FromReport(session string, start sim.Time, rep *core.Report) Record {
	rec := Record{
		Session:  session,
		Cell:     rep.CellName,
		Scenario: rep.Scenario,
		Start:    start,
		End:      start + rep.Duration,
	}
	for node, runs := range rep.NodeEvents {
		if len(runs) > 0 {
			rec.Fired = append(rec.Fired, node)
		}
	}
	sort.Strings(rec.Fired)
	chainAgg := map[string]int{}
	causeAgg := map[string]int{}
	for _, runs := range rep.ChainEvents {
		if len(runs) == 0 {
			continue
		}
		chainAgg[runs[0].Chain.String()] += len(runs)
		causeAgg[runs[0].Chain.Cause()] += len(runs)
	}
	for sig, n := range chainAgg {
		rec.Chains = append(rec.Chains, ChainRuns{Chain: sig, Runs: n})
	}
	sort.Slice(rec.Chains, func(i, j int) bool { return rec.Chains[i].Chain < rec.Chains[j].Chain })
	for cause, n := range causeAgg {
		rec.Causes = append(rec.Causes, CauseRuns{Cause: cause, Runs: n})
	}
	sort.Slice(rec.Causes, func(i, j int) bool { return rec.Causes[i].Cause < rec.Causes[j].Cause })
	return rec
}

// dict interns strings: names get dense IDs in first-seen order, the
// IDs index the columnar arrays. Dictionaries only grow — IDs stay
// valid for the life of the store (and across spill/reload, which
// serializes them in order).
type dict struct {
	names []string
	index map[string]int
}

func newDict() *dict { return &dict{index: map[string]int{}} }

func (d *dict) id(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	i := len(d.names)
	d.names = append(d.names, name)
	d.index[name] = i
	return i
}

func (d *dict) lookup(name string) (int, bool) {
	i, ok := d.index[name]
	return i, ok
}

func (d *dict) name(i uint32) string { return d.names[i] }

// block is one fixed-capacity run of records in columnar layout: plain
// parallel arrays per fixed-width column, offset+values arrays for the
// variable-width ones (chain runs, cause rollups, metrics), and a flat
// bitset matrix for fired nodes (stride words per row). Blocks carry
// min/max-start bounds and cell/scenario presence bitmaps so queries
// skip whole blocks without touching rows.
type block struct {
	n        int
	sessions []string
	cellIDs  []uint32
	scenIDs  []uint32
	starts   []sim.Time
	ends     []sim.Time

	// fired is an n×stride matrix of bitset words; row i spans
	// fired[i*stride : (i+1)*stride], bit j of the row = node dict ID j
	// fired. stride grows (with a repack) when the node universe
	// outgrows the current word count.
	stride int
	fired  []uint64

	chainOff, chainIDs, chainRuns []uint32
	causeOff, causeIDs, causeRuns []uint32
	metricOff, metricIDs          []uint32
	metricVals                    []float64

	minStart, maxStart sim.Time
	cellMask, scenMask []uint64
}

func newBlock(rows, stride int) *block {
	b := &block{stride: stride}
	b.sessions = make([]string, 0, rows)
	b.cellIDs = make([]uint32, 0, rows)
	b.scenIDs = make([]uint32, 0, rows)
	b.starts = make([]sim.Time, 0, rows)
	b.ends = make([]sim.Time, 0, rows)
	b.fired = make([]uint64, 0, rows*stride)
	b.chainOff = append(make([]uint32, 0, rows+1), 0)
	b.causeOff = append(make([]uint32, 0, rows+1), 0)
	b.metricOff = append(make([]uint32, 0, rows+1), 0)
	return b
}

// row returns record i's fired-bitset words.
func (b *block) row(i int) []uint64 { return b.fired[i*b.stride : (i+1)*b.stride] }

// repack widens the bitset matrix to a new stride, zero-extending every
// existing row. Rare: it runs only when a record fires a node beyond
// the universe seen when the block was opened.
func (b *block) repack(stride int) {
	if stride <= b.stride {
		return
	}
	wide := make([]uint64, 0, cap(b.fired)/maxInt(b.stride, 1)*stride)
	for i := 0; i < b.n; i++ {
		wide = append(wide, b.row(i)...)
		for k := b.stride; k < stride; k++ {
			wide = append(wide, 0)
		}
	}
	b.fired, b.stride = wide, stride
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func setMaskBit(mask *[]uint64, id int) {
	for id/64 >= len(*mask) {
		*mask = append(*mask, 0)
	}
	(*mask)[id/64] |= 1 << uint(id%64)
}

func maskHas(mask []uint64, id int) bool {
	return id/64 < len(mask) && mask[id/64]&(1<<uint(id%64)) != 0
}

// Store is the embedded fleet RCA store. All methods are safe for
// concurrent use; inserts take the write lock, queries the read lock.
type Store struct {
	mu   sync.RWMutex
	opts Options

	nodes, cells, scens    *dict
	chains, causes, mnames *dict

	blocks []*block

	insertedRows  int
	evictedRows   int
	evictedBlocks int
}

// New returns an empty store.
func New(opts Options) *Store {
	return &Store{
		opts:   opts.defaults(),
		nodes:  newDict(),
		cells:  newDict(),
		scens:  newDict(),
		chains: newDict(),
		causes: newDict(),
		mnames: newDict(),
	}
}

// SetHooks installs (or replaces) the store's observability hooks —
// the path for attaching hooks to a store reloaded from a spill, where
// Options were consumed by Load before the hooks existed.
func (s *Store) SetHooks(h obs.Hooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opts.Hooks = h
}

// Insert appends one record. Records may arrive in any time order —
// the store is ordered by arrival, and block time bounds (not sort
// order) drive query pruning — but retention is arrival-ordered too:
// when MaxBlocks is exceeded the oldest-inserted block is dropped
// whole. Insert normalizes nothing beyond what it stores; use
// FromReport for canonically sorted records.
func (s *Store) Insert(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()

	// Intern everything first so the needed stride is known before the
	// row is appended.
	cellID := s.cells.id(rec.Cell)
	scenID := s.scens.id(rec.Scenario)
	nodeIDs := make([]int, len(rec.Fired))
	maxNode := -1
	for i, n := range rec.Fired {
		nodeIDs[i] = s.nodes.id(n)
		if nodeIDs[i] > maxNode {
			maxNode = nodeIDs[i]
		}
	}
	stride := (s.nodeUniverseLocked() + 63) / 64
	if stride == 0 {
		stride = 1
	}

	b := s.openBlockLocked(stride)
	if stride > b.stride {
		b.repack(stride)
	}

	b.sessions = append(b.sessions, rec.Session)
	b.cellIDs = append(b.cellIDs, uint32(cellID))
	b.scenIDs = append(b.scenIDs, uint32(scenID))
	b.starts = append(b.starts, rec.Start)
	b.ends = append(b.ends, rec.End)
	rowStart := len(b.fired)
	for k := 0; k < b.stride; k++ {
		b.fired = append(b.fired, 0)
	}
	row := b.fired[rowStart:]
	for _, id := range nodeIDs {
		row[id/64] |= 1 << uint(id%64)
	}
	for _, c := range rec.Chains {
		b.chainIDs = append(b.chainIDs, uint32(s.chains.id(c.Chain)))
		b.chainRuns = append(b.chainRuns, uint32(c.Runs))
	}
	b.chainOff = append(b.chainOff, uint32(len(b.chainIDs)))
	for _, c := range rec.Causes {
		b.causeIDs = append(b.causeIDs, uint32(s.causes.id(c.Cause)))
		b.causeRuns = append(b.causeRuns, uint32(c.Runs))
	}
	b.causeOff = append(b.causeOff, uint32(len(b.causeIDs)))
	for _, m := range rec.Metrics {
		b.metricIDs = append(b.metricIDs, uint32(s.mnames.id(m.Name)))
		b.metricVals = append(b.metricVals, m.Value)
	}
	b.metricOff = append(b.metricOff, uint32(len(b.metricIDs)))

	if b.n == 0 || rec.Start < b.minStart {
		b.minStart = rec.Start
	}
	if b.n == 0 || rec.Start > b.maxStart {
		b.maxStart = rec.Start
	}
	setMaskBit(&b.cellMask, cellID)
	setMaskBit(&b.scenMask, scenID)
	b.n++
	s.insertedRows++
	if s.opts.Hooks != nil {
		s.opts.Hooks.StoreInserted(1)
	}

	s.evictLocked()
}

// InsertReport is Insert ∘ FromReport, with optional metrics attached.
func (s *Store) InsertReport(session string, start sim.Time, rep *core.Report, metrics []Metric) {
	rec := FromReport(session, start, rep)
	rec.Metrics = metrics
	s.Insert(rec)
}

// nodeUniverseLocked is the current fired-node dictionary size.
func (s *Store) nodeUniverseLocked() int { return len(s.nodes.names) }

func (s *Store) openBlockLocked(stride int) *block {
	if n := len(s.blocks); n > 0 && s.blocks[n-1].n < s.opts.BlockRows {
		return s.blocks[n-1]
	}
	b := newBlock(s.opts.BlockRows, stride)
	s.blocks = append(s.blocks, b)
	return b
}

func (s *Store) evictLocked() {
	if s.opts.MaxBlocks <= 0 {
		return
	}
	for len(s.blocks) > s.opts.MaxBlocks {
		if s.opts.Hooks != nil {
			s.opts.Hooks.StoreEvicted(s.blocks[0].n)
		}
		s.evictedRows += s.blocks[0].n
		s.evictedBlocks++
		s.blocks = s.blocks[1:]
	}
}

// Stats summarizes the store's shape and retention state.
type Stats struct {
	// Rows and Blocks count retained data; InsertedRows counts every
	// Insert since New, so InsertedRows-Rows is the evicted history.
	Rows, Blocks               int
	InsertedRows               int
	EvictedRows, EvictedBlocks int
	// Nodes..MetricNames are dictionary cardinalities (these count
	// every name ever seen, eviction does not shrink them).
	Nodes, Cells, Scenarios, Chains, Causes, MetricNames int
	// MinStart/MaxStart bound the retained records' start times; both
	// zero when the store is empty.
	MinStart, MaxStart sim.Time
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Blocks:        len(s.blocks),
		InsertedRows:  s.insertedRows,
		EvictedRows:   s.evictedRows,
		EvictedBlocks: s.evictedBlocks,
		Nodes:         len(s.nodes.names),
		Cells:         len(s.cells.names),
		Scenarios:     len(s.scens.names),
		Chains:        len(s.chains.names),
		Causes:        len(s.causes.names),
		MetricNames:   len(s.mnames.names),
	}
	first := true
	for _, b := range s.blocks {
		st.Rows += b.n
		if b.n == 0 {
			continue
		}
		if first || b.minStart < st.MinStart {
			st.MinStart = b.minStart
		}
		if first || b.maxStart > st.MaxStart {
			st.MaxStart = b.maxStart
		}
		first = false
	}
	return st
}

// Len returns the number of retained records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.blocks {
		n += b.n
	}
	return n
}

// NodeNames returns every fired-node name the store has seen, in
// dictionary (first-seen) order.
func (s *Store) NodeNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.nodes.names...)
}

// materialize rebuilds the Record stored at block b, row i. The
// caller must hold at least the read lock.
func (s *Store) materializeLocked(b *block, i int) Record {
	rec := Record{
		Session:  b.sessions[i],
		Cell:     s.cells.name(b.cellIDs[i]),
		Scenario: s.scens.name(b.scenIDs[i]),
		Start:    b.starts[i],
		End:      b.ends[i],
	}
	row := b.row(i)
	for w, word := range row {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			rec.Fired = append(rec.Fired, s.nodes.name(uint32(w*64+bit)))
			word &= word - 1
		}
	}
	sort.Strings(rec.Fired)
	for k := b.chainOff[i]; k < b.chainOff[i+1]; k++ {
		rec.Chains = append(rec.Chains, ChainRuns{Chain: s.chains.name(b.chainIDs[k]), Runs: int(b.chainRuns[k])})
	}
	for k := b.causeOff[i]; k < b.causeOff[i+1]; k++ {
		rec.Causes = append(rec.Causes, CauseRuns{Cause: s.causes.name(b.causeIDs[k]), Runs: int(b.causeRuns[k])})
	}
	for k := b.metricOff[i]; k < b.metricOff[i+1]; k++ {
		rec.Metrics = append(rec.Metrics, Metric{Name: s.mnames.name(b.metricIDs[k]), Value: b.metricVals[k]})
	}
	return rec
}

// String renders store stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("rows=%d blocks=%d evicted=%d nodes=%d chains=%d causes=%d",
		s.Rows, s.Blocks, s.EvictedRows, s.Nodes, s.Chains, s.Causes)
}
