package rcastore

import (
	"math/bits"
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// Query is the typed predicate set every store read accepts. Zero
// fields match everything, so Query{} selects the whole retained
// history.
type Query struct {
	// From/To bound the record start time: a record matches when
	// From <= Start, and Start < To when To is nonzero.
	From, To sim.Time
	// Cell/Scenario/Session match those columns exactly when nonempty.
	Cell     string
	Scenario string
	Session  string
	// Cause matches records whose cause rollups include this cause
	// class with at least one run.
	Cause string
	// FiredAll matches records whose fired-node set includes every
	// listed node (a bitset superset test). A node the store has never
	// seen matches nothing.
	FiredAll []string
	// Limit truncates Query results after sorting (0 = unlimited). It
	// does not affect aggregations.
	Limit int
}

// compiled is a query resolved against the store dictionaries. ok=false
// means some predicate names an unknown dictionary entry and the query
// matches nothing.
type compiled struct {
	q                Query
	cellID, scenID   int
	causeID          int
	hasCell, hasScen bool
	hasCause         bool
	want             []uint64 // fired-node superset mask
	ok               bool
}

func (s *Store) compileLocked(q Query) compiled {
	c := compiled{q: q, ok: true}
	if q.Cell != "" {
		c.cellID, c.ok = s.cells.lookup(q.Cell)
		if !c.ok {
			return c
		}
		c.hasCell = true
	}
	if q.Scenario != "" {
		c.scenID, c.ok = s.scens.lookup(q.Scenario)
		if !c.ok {
			return c
		}
		c.hasScen = true
	}
	if q.Cause != "" {
		c.causeID, c.ok = s.causes.lookup(q.Cause)
		if !c.ok {
			return c
		}
		c.hasCause = true
	}
	for _, n := range q.FiredAll {
		id, ok := s.nodes.lookup(n)
		if !ok {
			c.ok = false
			return c
		}
		for id/64 >= len(c.want) {
			c.want = append(c.want, 0)
		}
		c.want[id/64] |= 1 << uint(id%64)
	}
	return c
}

// blockMatch prunes whole blocks on the block-level indexes.
func (c compiled) blockMatch(b *block) bool {
	if b.n == 0 {
		return false
	}
	if c.q.To != 0 && b.minStart >= c.q.To {
		return false
	}
	if b.maxStart < c.q.From {
		return false
	}
	if c.hasCell && !maskHas(b.cellMask, c.cellID) {
		return false
	}
	if c.hasScen && !maskHas(b.scenMask, c.scenID) {
		return false
	}
	return true
}

func (c compiled) rowMatch(b *block, i int) bool {
	if st := b.starts[i]; st < c.q.From || (c.q.To != 0 && st >= c.q.To) {
		return false
	}
	if c.hasCell && int(b.cellIDs[i]) != c.cellID {
		return false
	}
	if c.hasScen && int(b.scenIDs[i]) != c.scenID {
		return false
	}
	if c.q.Session != "" && b.sessions[i] != c.q.Session {
		return false
	}
	if len(c.want) > 0 {
		row := b.row(i)
		for w, want := range c.want {
			var have uint64
			if w < len(row) {
				have = row[w]
			}
			if have&want != want {
				return false
			}
		}
	}
	if c.hasCause {
		found := false
		for k := b.causeOff[i]; k < b.causeOff[i+1]; k++ {
			if int(b.causeIDs[k]) == c.causeID && b.causeRuns[k] > 0 {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// scanLocked streams every matching (block, row) pair in insertion
// order. The caller must hold at least the read lock.
func (s *Store) scanLocked(c compiled, visit func(b *block, i int)) {
	if !c.ok {
		return
	}
	for _, b := range s.blocks {
		if !c.blockMatch(b) {
			continue
		}
		for i := 0; i < b.n; i++ {
			if c.rowMatch(b, i) {
				visit(b, i)
			}
		}
	}
}

// queriedLocked fires the StoreQueried hook once per query
// evaluation. The caller must hold at least the read lock.
func (s *Store) queriedLocked() {
	if s.opts.Hooks != nil {
		s.opts.Hooks.StoreQueried()
	}
}

// Query returns matching records sorted by (Start, Session), truncated
// to q.Limit when nonzero.
func (s *Store) Query(q Query) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queriedLocked()
	var out []Record
	s.scanLocked(s.compileLocked(q), func(b *block, i int) {
		out = append(out, s.materializeLocked(b, i))
	})
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Session < out[j].Session
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// ChainAgg is one chain's fleet-wide aggregate over a query's matches.
type ChainAgg struct {
	Chain string `json:"chain"`
	// Runs sums collapsed chain runs across matching records; Sessions
	// counts the records the chain appeared in.
	Runs     int `json:"runs"`
	Sessions int `json:"sessions"`
}

// TopChains ranks causal chains by total collapsed runs across the
// matching records — "top causal chains fleet-wide in the last hour"
// is TopChains(Query{From: now-1h}, k). Ties break by chain signature;
// k <= 0 returns every chain seen.
func (s *Store) TopChains(q Query, k int) []ChainAgg {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queriedLocked()
	runs := map[uint32]int{}
	sessions := map[uint32]int{}
	s.scanLocked(s.compileLocked(q), func(b *block, i int) {
		for j := b.chainOff[i]; j < b.chainOff[i+1]; j++ {
			runs[b.chainIDs[j]] += int(b.chainRuns[j])
			sessions[b.chainIDs[j]]++
		}
	})
	out := make([]ChainAgg, 0, len(runs))
	for id, n := range runs {
		out = append(out, ChainAgg{Chain: s.chains.name(id), Runs: n, Sessions: sessions[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		return out[i].Chain < out[j].Chain
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// CauseBucket is one (cell, time bucket, cause class) cell of the
// longitudinal cause-rate surface.
type CauseBucket struct {
	Cell string `json:"cell"`
	// Bucket is the bucket's start on the fleet timeline.
	Bucket sim.Time `json:"bucket_us"`
	Cause  string   `json:"cause"`
	// Runs sums the cause's chain runs over the bucket's sessions;
	// Sessions counts matching records in the (cell, bucket) group —
	// including ones where this cause never fired, so rates compare
	// across buckets.
	Runs     int `json:"runs"`
	Sessions int `json:"sessions"`
	// Minutes is the group's total session minutes — the RunsPerMin
	// denominator, carried explicitly so a fleet tier can re-derive the
	// rate after summing Runs and Minutes across nodes.
	Minutes float64 `json:"minutes"`
	// RunsPerMin normalizes Runs by the group's total session minutes.
	RunsPerMin float64 `json:"runs_per_min"`
}

// CauseRates buckets matching records by start time and aggregates
// cause-class chain runs per (cell, bucket): the "is grant starvation
// trending up in this cell" query. Results are sorted by (cell,
// bucket, cause). bucket <= 0 collapses the timeline into one bucket.
func (s *Store) CauseRates(q Query, bucket sim.Time) []CauseBucket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queriedLocked()
	type groupKey struct {
		cell   uint32
		bucket sim.Time
	}
	type cellKey struct {
		groupKey
		cause uint32
	}
	runs := map[cellKey]int{}
	sessions := map[groupKey]int{}
	minutes := map[groupKey]float64{}
	s.scanLocked(s.compileLocked(q), func(b *block, i int) {
		bs := sim.Time(0)
		if bucket > 0 {
			bs = b.starts[i] / bucket * bucket
		}
		g := groupKey{cell: b.cellIDs[i], bucket: bs}
		sessions[g]++
		minutes[g] += (b.ends[i] - b.starts[i]).Seconds() / 60
		for k := b.causeOff[i]; k < b.causeOff[i+1]; k++ {
			runs[cellKey{groupKey: g, cause: b.causeIDs[k]}] += int(b.causeRuns[k])
		}
	})
	out := make([]CauseBucket, 0, len(runs))
	for k, n := range runs {
		cb := CauseBucket{
			Cell:     s.cells.name(k.cell),
			Bucket:   k.bucket,
			Cause:    s.causes.name(k.cause),
			Runs:     n,
			Sessions: sessions[k.groupKey],
			Minutes:  minutes[k.groupKey],
		}
		if m := minutes[k.groupKey]; m > 0 {
			cb.RunsPerMin = float64(n) / m
		}
		out = append(out, cb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		if out[i].Bucket != out[j].Bucket {
			return out[i].Bucket < out[j].Bucket
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// Match is one nearest-prior-incident result: a record plus its
// fired-node Hamming distance from the probe signature.
type Match struct {
	Record
	// Distance is the Hamming distance between the probe's fired-node
	// set and the record's: nodes in exactly one of the two sets.
	Distance int `json:"distance"`
}

// Similar finds the k records most similar to a fired-node signature,
// by Hamming distance over the packed fired bitsets — the "which prior
// incident looks like this one" lookup. Probe nodes the store has
// never seen still count toward the distance (no record can share
// them). Ties break toward more recent records, then session. q
// narrows the candidate set; k <= 0 returns all matches ranked.
func (s *Store) Similar(fired []string, q Query, k int) []Match {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queriedLocked()
	var probe []uint64
	unknown := 0
	for _, n := range fired {
		id, ok := s.nodes.lookup(n)
		if !ok {
			unknown++
			continue
		}
		for id/64 >= len(probe) {
			probe = append(probe, 0)
		}
		probe[id/64] |= 1 << uint(id%64)
	}
	type hit struct {
		b *block
		i int
		d int
	}
	var hits []hit
	s.scanLocked(s.compileLocked(q), func(b *block, i int) {
		row := b.row(i)
		d := unknown
		n := len(row)
		if len(probe) > n {
			n = len(probe)
		}
		for w := 0; w < n; w++ {
			var have, want uint64
			if w < len(row) {
				have = row[w]
			}
			if w < len(probe) {
				want = probe[w]
			}
			d += bits.OnesCount64(have ^ want)
		}
		hits = append(hits, hit{b, i, d})
	})
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].d != hits[j].d {
			return hits[i].d < hits[j].d
		}
		if hits[i].b.starts[hits[i].i] != hits[j].b.starts[hits[j].i] {
			return hits[i].b.starts[hits[i].i] > hits[j].b.starts[hits[j].i]
		}
		return hits[i].b.sessions[hits[i].i] < hits[j].b.sessions[hits[j].i]
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	out := make([]Match, 0, len(hits))
	for _, h := range hits {
		out = append(out, Match{Record: s.materializeLocked(h.b, h.i), Distance: h.d})
	}
	return out
}

// Fired returns the most recently inserted record for a session and
// whether one exists — the probe-building step of /incidents/similar.
func (s *Store) Fired(session string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.queriedLocked()
	for bi := len(s.blocks) - 1; bi >= 0; bi-- {
		b := s.blocks[bi]
		for i := b.n - 1; i >= 0; i-- {
			if b.sessions[i] == session {
				return s.materializeLocked(b, i), true
			}
		}
	}
	return Record{}, false
}
