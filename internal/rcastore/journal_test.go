package rcastore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/obs"
)

// journalFleet builds n records with distinct sessions and enough
// variety to grow every dictionary.
func journalFleet(n int) []Record {
	recs := make([]Record, n)
	cells := []string{"tdd", "fdd", "amarisoft"}
	for i := range recs {
		recs[i] = rec(fmt.Sprintf("j%04d", i), cells[i%len(cells)], "harq-storm", i,
			[]string{"harq_retx", fmt.Sprintf("node_%d", i%7)},
			[]ChainRuns{{Chain: fmt.Sprintf("chain_%d", i%5), Runs: 1 + i%4}},
			[]CauseRuns{{Cause: "harq_retx", Runs: 1 + i%4}})
		recs[i].Metrics = []Metric{{Name: "deg_per_min", Value: float64(i) / 3}}
	}
	return recs
}

func spillBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Spill(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalRecoverMatchesGracefulSpill is the durability acceptance
// pin: insert a fleet with journaling and a mid-stream checkpoint,
// "crash" with no final checkpoint, recover from disk, and require the
// recovered store to spill byte-identically to the live one — with
// block eviction active on both sides so retention replays too.
func TestJournalRecoverMatchesGracefulSpill(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "store.ckpt")
	jpath := filepath.Join(dir, "store.wal")
	opts := Options{BlockRows: 8, MaxBlocks: 5}

	live := New(opts)
	j, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := journalFleet(60)
	for i, r := range recs {
		live.Insert(r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		if i == 25 {
			if err := j.Checkpoint(live, ckpt); err != nil {
				t.Fatal(err)
			}
		}
	}
	// kill -9 analog: the journal file is synced per append; the
	// process just disappears with no final checkpoint.
	j.Close()

	recovered, j2, stats, err := Recover(ckpt, jpath, opts, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if stats.CheckpointRows != 26 {
		t.Fatalf("CheckpointRows = %d, want 26", stats.CheckpointRows)
	}
	if stats.Replayed != 34 || stats.Deduped != 0 || stats.TornTail {
		t.Fatalf("stats = %+v, want 34 replayed, none deduped, no torn tail", stats)
	}
	if got, want := spillBytes(t, recovered), spillBytes(t, live); !bytes.Equal(got, want) {
		t.Fatalf("recovered store spill diverges from graceful spill:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}

	// The reopened journal must keep working: append one more record,
	// crash again, recover again.
	extra := rec("j-extra", "tdd", "harq-storm", 99, []string{"harq_retx"}, nil, nil)
	live.Insert(extra)
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recovered2, j3, _, err := Recover(ckpt, jpath, opts, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if !bytes.Equal(spillBytes(t, recovered2), spillBytes(t, live)) {
		t.Fatal("second crash/recover cycle diverged")
	}
}

// TestJournalRecoverFresh covers a first boot: neither file exists.
func TestJournalRecoverFresh(t *testing.T) {
	dir := t.TempDir()
	st, j, stats, err := Recover(filepath.Join(dir, "none.ckpt"), filepath.Join(dir, "none.wal"), Options{}, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if st.Len() != 0 || stats.CheckpointRows != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh recovery not empty: len=%d stats=%+v", st.Len(), stats)
	}
	if err := j.Append(rec("s1", "tdd", "", 0, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTail pins crash-mid-append behavior: a partial final
// record is discarded, everything before it replays, and the repaired
// journal accepts new appends cleanly.
func TestJournalTornTail(t *testing.T) {
	for _, tear := range []string{
		"cut-mid-payload",  // no newline at all
		"bad-crc-tail",     // newline present, checksum wrong
		"short-frame-tail", // newline present, frame too short
	} {
		t.Run(tear, func(t *testing.T) {
			dir := t.TempDir()
			ckpt := filepath.Join(dir, "store.ckpt")
			jpath := filepath.Join(dir, "store.wal")
			j, err := OpenJournal(jpath, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			recs := journalFleet(5)
			for _, r := range recs {
				if err := j.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()

			var tail []byte
			switch tear {
			case "cut-mid-payload":
				tail = []byte(`deadbeef {"session":"torn`)
			case "bad-crc-tail":
				tail = []byte("00000000 {\"session\":\"torn\"}\n")
			case "short-frame-tail":
				tail = []byte("xx\n")
			}
			f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(tail)
			f.Close()

			st, j2, stats, err := Recover(ckpt, jpath, Options{}, JournalOptions{})
			if err != nil {
				t.Fatalf("torn tail must recover, got %v", err)
			}
			if !stats.TornTail || stats.TornBytes != int64(len(tail)) {
				t.Fatalf("stats = %+v, want torn tail of %d bytes", stats, len(tail))
			}
			if st.Len() != len(recs) {
				t.Fatalf("recovered %d rows, want %d", st.Len(), len(recs))
			}
			// The torn bytes must be gone: a fresh append then re-recover
			// yields exactly recs + 1.
			extra := rec("j-after-tear", "tdd", "", 50, nil, nil, nil)
			if err := j2.Append(extra); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			st2, j3, stats2, err := Recover(ckpt, jpath, Options{}, JournalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			j3.Close()
			if stats2.TornTail || st2.Len() != len(recs)+1 {
				t.Fatalf("repair failed: stats=%+v rows=%d", stats2, st2.Len())
			}
		})
	}
}

// TestJournalMidCorruption: a bad record that is not the final one is
// corruption, and recovery must refuse to guess.
func TestJournalMidCorruption(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "store.wal")
	j, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range journalFleet(4) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	lines[1] = []byte("00000000 {\"session\":\"forged\"}\n")
	if err := os.WriteFile(jpath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Recover(filepath.Join(dir, "none.ckpt"), jpath, Options{}, JournalOptions{})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption must fail recovery, got %v", err)
	}
}

// TestJournalCheckpointCrashWindow simulates dying between the
// checkpoint rename and the journal truncate: the journal still holds
// records the checkpoint already covers, and replay must dedup them by
// session instead of double-inserting.
func TestJournalCheckpointCrashWindow(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "store.ckpt")
	jpath := filepath.Join(dir, "store.wal")
	live := New(Options{})
	j, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := journalFleet(6)
	for _, r := range recs {
		live.Insert(r)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	preCheckpoint, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(live, ckpt); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Undo the truncate, as if the crash hit right after the rename.
	if err := os.WriteFile(jpath, preCheckpoint, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, j2, stats, err := Recover(ckpt, jpath, Options{}, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if stats.Deduped != len(recs) || stats.Replayed != 0 {
		t.Fatalf("stats = %+v, want all %d journal records deduped", stats, len(recs))
	}
	if !bytes.Equal(spillBytes(t, recovered), spillBytes(t, live)) {
		t.Fatal("crash-window recovery double-inserted or diverged")
	}
}

// journalHookCounter counts journal hook firings.
type journalHookCounter struct {
	obs.NopHooks
	appends, syncs, checkpoints int
	replayed, deduped           int
}

func (h *journalHookCounter) JournalAppended(n int)   { h.appends += n }
func (h *journalHookCounter) JournalSynced()          { h.syncs++ }
func (h *journalHookCounter) JournalCheckpointed(int) { h.checkpoints++ }
func (h *journalHookCounter) JournalReplayed(r, d int) {
	h.replayed += r
	h.deduped += d
}

// TestJournalSyncBatching pins the group-commit policy: SyncEvery n
// fsyncs once per n appends, and Sync/Close flush the remainder.
func TestJournalSyncBatching(t *testing.T) {
	dir := t.TempDir()
	hooks := &journalHookCounter{}
	j, err := OpenJournal(filepath.Join(dir, "w.wal"), JournalOptions{SyncEvery: 4, Hooks: hooks})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range journalFleet(10) {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if hooks.appends != 10 || hooks.syncs != 2 {
		t.Fatalf("appends=%d syncs=%d, want 10 appends / 2 batched syncs", hooks.appends, hooks.syncs)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if hooks.syncs != 3 {
		t.Fatalf("explicit Sync did not flush: syncs=%d", hooks.syncs)
	}
	j.Close()
}

// failFile wraps a File, failing writes after a byte budget — a local
// stand-in for a full disk (internal/faultinject provides the richer
// harness; it cannot be imported here without a cycle).
type failFile struct {
	File
	budget int
}

func (f *failFile) Write(p []byte) (int, error) {
	if f.budget -= len(p); f.budget < 0 {
		return 0, errors.New("disk full (injected)")
	}
	return f.File.Write(p)
}

type failFS struct {
	OsFS
	budget int
}

func (fs *failFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failFile{File: f, budget: fs.budget}, nil
}

// TestJournalAppendDiskError: a failed append reports its error but
// leaves the journal open; what made it to disk before the failure
// still recovers (possibly with a torn tail).
func TestJournalAppendDiskError(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "w.wal")
	j, err := OpenJournal(jpath, JournalOptions{FS: &failFS{budget: 400}})
	if err != nil {
		t.Fatal(err)
	}
	recs := journalFleet(10)
	ok, failed := 0, 0
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			failed++
		} else {
			ok++
		}
	}
	j.Close()
	if failed == 0 || ok == 0 {
		t.Fatalf("want a mix of successes and failures, got ok=%d failed=%d", ok, failed)
	}
	st, j2, _, err := Recover(filepath.Join(dir, "none.ckpt"), jpath, Options{}, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if st.Len() != ok {
		t.Fatalf("recovered %d rows, want the %d durable ones", st.Len(), ok)
	}
}
