package rcastore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/domino5g/domino/internal/sim"
)

// spillFormat versions the spill layout; Load rejects other versions.
const spillFormat = 1

// spillHeader is the first JSONL line: the format version and every
// dictionary in ID order, so a reload reconstructs identical IDs and a
// re-spill is byte-identical to the original.
type spillHeader struct {
	Format    int      `json:"rcastore"`
	Nodes     []string `json:"nodes"`
	Cells     []string `json:"cells"`
	Scenarios []string `json:"scenarios"`
	Chains    []string `json:"chains"`
	Causes    []string `json:"causes"`
	Metrics   []string `json:"metrics"`
}

// spillPair is one (dictionary ID, count) entry of a sparse column.
type spillPair [2]uint32

// spillMetric is one (dictionary ID, value) metric entry.
type spillMetric struct {
	ID    uint32  `json:"id"`
	Value float64 `json:"v"`
}

// spillRow is one record with all strings dictionary-encoded. Fired
// nodes are written as ascending dictionary IDs rather than bitset
// words so the format is independent of block stride.
type spillRow struct {
	Session  string        `json:"session"`
	Cell     uint32        `json:"cell"`
	Scenario uint32        `json:"scenario"`
	Start    int64         `json:"start_us"`
	End      int64         `json:"end_us"`
	Fired    []uint32      `json:"fired,omitempty"`
	Chains   []spillPair   `json:"chains,omitempty"`
	Causes   []spillPair   `json:"causes,omitempty"`
	Metrics  []spillMetric `json:"metrics,omitempty"`
}

// Spill writes the retained store as JSONL: one dictionary header line
// followed by one line per record in insertion order. The output is a
// pure function of the store's state — spilling a reloaded spill
// reproduces it byte for byte (pinned by TestSpillReloadRoundTrip).
func (s *Store) Spill(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := spillHeader{
		Format:    spillFormat,
		Nodes:     emptyNotNil(s.nodes.names),
		Cells:     emptyNotNil(s.cells.names),
		Scenarios: emptyNotNil(s.scens.names),
		Chains:    emptyNotNil(s.chains.names),
		Causes:    emptyNotNil(s.causes.names),
		Metrics:   emptyNotNil(s.mnames.names),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, b := range s.blocks {
		for i := 0; i < b.n; i++ {
			row := spillRow{
				Session:  b.sessions[i],
				Cell:     b.cellIDs[i],
				Scenario: b.scenIDs[i],
				Start:    int64(b.starts[i]),
				End:      int64(b.ends[i]),
			}
			for w, word := range b.row(i) {
				for bit := 0; bit < 64; bit++ {
					if word&(1<<uint(bit)) != 0 {
						row.Fired = append(row.Fired, uint32(w*64+bit))
					}
				}
			}
			for k := b.chainOff[i]; k < b.chainOff[i+1]; k++ {
				row.Chains = append(row.Chains, spillPair{b.chainIDs[k], b.chainRuns[k]})
			}
			for k := b.causeOff[i]; k < b.causeOff[i+1]; k++ {
				row.Causes = append(row.Causes, spillPair{b.causeIDs[k], b.causeRuns[k]})
			}
			for k := b.metricOff[i]; k < b.metricOff[i+1]; k++ {
				row.Metrics = append(row.Metrics, spillMetric{ID: b.metricIDs[k], Value: b.metricVals[k]})
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if s.opts.Hooks != nil {
		rows := 0
		for _, b := range s.blocks {
			rows += b.n
		}
		s.opts.Hooks.StoreSpilled(rows)
	}
	return nil
}

func emptyNotNil(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

// Load rebuilds a store from a Spill stream. The header seeds the
// dictionaries in their original order, so IDs — and a subsequent
// Spill — are identical to the source store's. opts applies fresh: a
// smaller MaxBlocks than the spilling store's re-evicts the oldest
// rows on the way in.
func Load(r io.Reader, opts Options) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("rcastore: empty spill: missing header line")
	}
	var hdr spillHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("rcastore: decoding spill header: %w", err)
	}
	if hdr.Format != spillFormat {
		return nil, fmt.Errorf("rcastore: unsupported spill format %d (want %d)", hdr.Format, spillFormat)
	}
	s := New(opts)
	seed := func(d *dict, names []string, kind string) error {
		for _, n := range names {
			before := len(d.names)
			if d.id(n) != before {
				return fmt.Errorf("rcastore: duplicate %s dictionary entry %q", kind, n)
			}
		}
		return nil
	}
	if err := seed(s.nodes, hdr.Nodes, "node"); err != nil {
		return nil, err
	}
	if err := seed(s.cells, hdr.Cells, "cell"); err != nil {
		return nil, err
	}
	if err := seed(s.scens, hdr.Scenarios, "scenario"); err != nil {
		return nil, err
	}
	if err := seed(s.chains, hdr.Chains, "chain"); err != nil {
		return nil, err
	}
	if err := seed(s.causes, hdr.Causes, "cause"); err != nil {
		return nil, err
	}
	if err := seed(s.mnames, hdr.Metrics, "metric"); err != nil {
		return nil, err
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row spillRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return nil, fmt.Errorf("rcastore: spill line %d: %w", line, err)
		}
		rec, err := s.decodeRow(row)
		if err != nil {
			return nil, fmt.Errorf("rcastore: spill line %d: %w", line, err)
		}
		s.Insert(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeRow resolves a dictionary-encoded spill row back into a
// Record against the (already seeded) dictionaries.
func (s *Store) decodeRow(row spillRow) (Record, error) {
	if int(row.Cell) >= len(s.cells.names) {
		return Record{}, fmt.Errorf("cell ID %d out of range", row.Cell)
	}
	if int(row.Scenario) >= len(s.scens.names) {
		return Record{}, fmt.Errorf("scenario ID %d out of range", row.Scenario)
	}
	rec := Record{
		Session:  row.Session,
		Cell:     s.cells.name(row.Cell),
		Scenario: s.scens.name(row.Scenario),
		Start:    sim.Time(row.Start),
		End:      sim.Time(row.End),
	}
	for _, id := range row.Fired {
		if int(id) >= len(s.nodes.names) {
			return Record{}, fmt.Errorf("fired node ID %d out of range", id)
		}
		rec.Fired = append(rec.Fired, s.nodes.name(id))
	}
	for _, p := range row.Chains {
		if int(p[0]) >= len(s.chains.names) {
			return Record{}, fmt.Errorf("chain ID %d out of range", p[0])
		}
		rec.Chains = append(rec.Chains, ChainRuns{Chain: s.chains.name(p[0]), Runs: int(p[1])})
	}
	for _, p := range row.Causes {
		if int(p[0]) >= len(s.causes.names) {
			return Record{}, fmt.Errorf("cause ID %d out of range", p[0])
		}
		rec.Causes = append(rec.Causes, CauseRuns{Cause: s.causes.name(p[0]), Runs: int(p[1])})
	}
	for _, m := range row.Metrics {
		if int(m.ID) >= len(s.mnames.names) {
			return Record{}, fmt.Errorf("metric ID %d out of range", m.ID)
		}
		rec.Metrics = append(rec.Metrics, Metric{Name: s.mnames.name(m.ID), Value: m.Value})
	}
	return rec, nil
}
