package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubServer implements just enough of the dominod ingest contract for
// client tests: it accepts whole records, can be scripted to fail a
// request after swallowing k records, and serves the watermark.
type stubServer struct {
	mu       sync.Mutex
	accepted int      // records accepted so far (header = record 0)
	records  []string // accepted record lines, in order
	posts    []post   // every POST observed
	script   []verdict
	done     bool
}

type post struct {
	seq   int
	eos   bool
	lines int
}

// verdict scripts one POST: swallow `take` records (-1 = all), then
// answer `status` (0 = 200 on full consumption).
type verdict struct {
	take       int
	status     int
	retryAfter int
}

func (s *stubServer) handler(t *testing.T) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		seq, _ := strconv.Atoi(r.Header.Get(HeaderSeq))
		body, _ := io.ReadAll(r.Body)
		lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
		if len(body) == 0 {
			lines = nil
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.posts = append(s.posts, post{seq: seq, eos: r.Header.Get(HeaderEos) == "1", lines: len(lines)})
		v := verdict{take: -1}
		if len(s.script) > 0 {
			v, s.script = s.script[0], s.script[1:]
		}
		if seq > s.accepted {
			w.WriteHeader(http.StatusPreconditionFailed)
			return
		}
		skip := s.accepted - seq // duplicate prefix: dedup, don't re-accept
		take := len(lines)
		if v.take >= 0 && v.take < take {
			take = v.take
		}
		for i := skip; i < take; i++ {
			s.records = append(s.records, lines[i])
			s.accepted++
		}
		if v.status != 0 {
			if v.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(v.retryAfter))
			}
			w.WriteHeader(v.status)
			return
		}
		s.done = true
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /sessions/{id}/watermark", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		json.NewEncoder(w).Encode(Watermark{Session: r.PathValue("id"), Accepted: s.accepted, State: "active"})
	})
	return mux
}

func payloadLines(n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"header":true}` + "\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"record":%d}`+"\n", i)
	}
	return b.Bytes()
}

func newTestClient(url string, retries int) *Client {
	return New(Options{
		BaseURL: url,
		Retries: retries,
		Backoff: time.Millisecond,
		Seed:    1,
		Sleep:   func(time.Duration) {},
	})
}

func TestUploadCleanFirstTry(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	c := newTestClient(srv.URL, 3)
	stats, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payloadLines(9))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 1 || stats.Resumed != 0 {
		t.Fatalf("stats = %+v, want one clean attempt", stats)
	}
	if stub.accepted != 10 || !stub.done {
		t.Fatalf("server accepted %d records, done=%v", stub.accepted, stub.done)
	}
}

func TestUploadResumesFromWatermark(t *testing.T) {
	stub := &stubServer{script: []verdict{{take: 4, status: http.StatusServiceUnavailable}}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	c := newTestClient(srv.URL, 3)
	payload := payloadLines(9)
	stats, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 2 || stats.Resumed != 1 {
		t.Fatalf("stats = %+v, want one resume", stats)
	}
	if len(stub.posts) != 2 || stub.posts[1].seq != 4 || stub.posts[1].lines != 6 {
		t.Fatalf("retry POST = %+v, want seq 4 with the 6-record suffix", stub.posts)
	}
	// The reassembled stream must be the original, no dup no gap.
	want := strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")
	if strings.Join(stub.records, "|") != strings.Join(want, "|") {
		t.Fatalf("server assembled %v", stub.records)
	}
}

func TestUploadBinaryFullResendDedups(t *testing.T) {
	stub := &stubServer{script: []verdict{{take: 3, status: http.StatusServiceUnavailable}}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	c := newTestClient(srv.URL, 3)
	// The stub treats lines as records; the client must still resend
	// everything with seq 0 because the declared type is binary.
	payload := payloadLines(7)
	stats, err := c.Upload(context.Background(), "s1", ContentTypeBinary, payload)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stub.posts[1].seq != 0 || stub.posts[1].lines != 8 {
		t.Fatalf("binary retry must resend whole payload at seq 0, got %+v", stub.posts[1])
	}
	want := strings.Split(strings.TrimSuffix(string(payloadLines(7)), "\n"), "\n")
	if strings.Join(stub.records, "|") != strings.Join(want, "|") {
		t.Fatalf("dedup failed, server assembled %v", stub.records)
	}
}

func TestUploadHonorsRetryAfter(t *testing.T) {
	stub := &stubServer{script: []verdict{{take: 0, status: http.StatusTooManyRequests, retryAfter: 3}}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	var slept []time.Duration
	c := New(Options{
		BaseURL: srv.URL, Retries: 2, Backoff: time.Millisecond, Seed: 1,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if _, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payloadLines(3)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 3*time.Second {
		t.Fatalf("slept %v, want the server's 3s Retry-After", slept)
	}
}

// TestUploadBalancerShed503 is the dominolb failover contract from the
// client's side: a balancer that loses a backend mid-upload answers
// with a retryable 503 plus Retry-After, and the client must honor the
// hint, retry, land the payload — and account the round as a shed
// retry in UploadStats.
func TestUploadBalancerShed503(t *testing.T) {
	stub := &stubServer{script: []verdict{{take: 0, status: http.StatusServiceUnavailable, retryAfter: 2}}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	var slept []time.Duration
	c := New(Options{
		BaseURL: srv.URL, Retries: 2, Backoff: time.Millisecond, Seed: 1,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	stats, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payloadLines(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want the balancer's 2s Retry-After", slept)
	}
	if stats.Attempts != 2 || stats.ShedRetries != 1 {
		t.Fatalf("stats = %+v, want 2 attempts with 1 shed retry", stats)
	}
}

func TestUploadPermanentFailure(t *testing.T) {
	stub := &stubServer{script: []verdict{{take: 0, status: http.StatusRequestEntityTooLarge}}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	c := newTestClient(srv.URL, 5)
	stats, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payloadLines(3))
	if err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("413 must fail permanently, got %v", err)
	}
	if stats.Attempts != 1 {
		t.Fatalf("413 must not be retried, attempts=%d", stats.Attempts)
	}
}

func TestUploadRetriesExhausted(t *testing.T) {
	stub := &stubServer{script: []verdict{
		{take: 0, status: 503}, {take: 0, status: 503}, {take: 0, status: 503},
	}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()
	c := newTestClient(srv.URL, 2)
	stats, err := c.Upload(context.Background(), "s1", ContentTypeJSONL, payloadLines(3))
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("want retries-exhausted error, got %v", err)
	}
	if stats.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", stats.Attempts)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		c := New(Options{BaseURL: "http://x", Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: seed})
		var ds []time.Duration
		for n := 0; n < 6; n++ {
			ds = append(ds, c.backoff(n, 0))
		}
		return ds
	}
	a, b := delays(3), delays(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, a[i], b[i])
		}
	}
	for n, d := range a {
		base := 10 * time.Millisecond << uint(n)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d < base/2 || d > base {
			t.Fatalf("retry %d delay %v outside jitter window [%v, %v]", n, d, base/2, base)
		}
	}
	if a[5] > 80*time.Millisecond {
		t.Fatalf("delay %v exceeds MaxBackoff", a[5])
	}
}

func TestTrimRecords(t *testing.T) {
	payload := []byte("h\nr0\nr1\nr2\n")
	for n, want := range map[int]string{0: "h\nr0\nr1\nr2\n", 1: "r0\nr1\nr2\n", 3: "r2\n", 4: "", 9: ""} {
		if got := string(trimRecords(payload, n)); got != want {
			t.Fatalf("trimRecords(%d) = %q, want %q", n, got, want)
		}
	}
}
