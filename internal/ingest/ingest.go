// Package ingest is the retrying, resumable client side of dominod's
// ingest protocol. It uploads a session trace with seeded jittered
// exponential backoff and, when a connection drops mid-stream, resumes
// from the server's record watermark instead of starting the session
// over.
//
// # Protocol
//
// A session upload is POST /ingest?session=ID with the trace stream as
// the body. Two headers make it resumable:
//
//   - X-Domino-Seq: the record index at which this body starts, where
//     record 0 is the stream header. A request without the header is
//     the legacy one-shot contract (body EOF completes the session).
//   - X-Domino-Eos: "1" marks the request that carries the end of the
//     session; the session completes only when such a request finishes
//     with every record accepted.
//
// The server tracks how many records it has accepted per session and
// serves that count at GET /sessions/{id}/watermark. A retrying client
// probes the watermark and replays from it: JSONL bodies are trimmed
// to the unacknowledged suffix (one record per line, so the watermark
// is a line offset); binary bodies are resent whole with
// X-Domino-Seq: 0, because dictionary frames make a mid-stream byte
// offset meaningless — the server skips the already-accepted prefix
// and counts the duplicates as deduped, not double-analyzed.
//
// Retry classification: transport errors, 429 (overload), 412 (seq
// gap), and 5xx responses retry; 4xx contract violations (400, 404,
// 409, 413, 415) fail permanently. A Retry-After header, when present,
// overrides the computed backoff if longer.
package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Protocol header and media-type names shared by client and server.
const (
	// HeaderSeq carries the record index at which the request body
	// starts; record 0 is the stream header.
	HeaderSeq = "X-Domino-Seq"
	// HeaderEos marks the request that carries the end of the session.
	HeaderEos = "X-Domino-Eos"

	// ContentTypeBinary selects the binary columnar trace format.
	ContentTypeBinary = "application/x-domino-trace"
	// ContentTypeJSONL selects the JSONL trace format.
	ContentTypeJSONL = "application/x-ndjson"
)

// Watermark is the GET /sessions/{id}/watermark response body.
type Watermark struct {
	Session  string `json:"session"`
	Accepted int    `json:"accepted"`
	State    string `json:"state"`
}

// Options configures a Client.
type Options struct {
	// BaseURL is the dominod root, e.g. "http://127.0.0.1:8077".
	BaseURL string
	// HTTPClient issues the requests (default http.DefaultClient).
	// Fault injection wraps here: &http.Client{Transport: flaky}.
	HTTPClient *http.Client
	// Retries is how many times a failed upload is retried after the
	// first attempt (default 0: one shot).
	Retries int
	// Backoff is the base delay before the first retry; attempt n
	// waits Backoff·2ⁿ·jitter where jitter ∈ [0.5, 1.0) (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps the computed delay (default 2s).
	MaxBackoff time.Duration
	// Seed drives the jitter; same seed = same delay schedule.
	Seed int64
	// Sleep is the delay function, injectable for tests
	// (default time.Sleep). It is called with each retry delay.
	Sleep func(time.Duration)
}

// UploadStats reports what an Upload took.
type UploadStats struct {
	Attempts int // POSTs issued, including the successful one
	Resumed  int // retries that replayed from a nonzero watermark
	// ShedRetries counts retries forced by load shedding or failover:
	// 429s and 503s, the statuses dominod and dominolb answer with when
	// telling the client "back off and try again".
	ShedRetries int
}

// Client uploads session traces with retry and resume. Safe for
// sequential use; give concurrent uploaders their own Client so the
// jitter sequence stays deterministic.
type Client struct {
	opts Options
	rng  *rand.Rand
}

// New builds a Client from opts, applying defaults.
func New(opts Options) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 2 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	return &Client{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Upload streams a complete session (header through final record) to
// the server, retrying and resuming per the package protocol.
// contentType must be ContentTypeJSONL or ContentTypeBinary and match
// the payload encoding.
func (c *Client) Upload(ctx context.Context, session, contentType string, payload []byte) (UploadStats, error) {
	var stats UploadStats
	jsonl := contentType != ContentTypeBinary
	seq, body := 0, payload
	var lastErr error
	for attempt := 0; ; attempt++ {
		stats.Attempts++
		status, retryAfter, err := c.post(ctx, session, contentType, seq, body)
		if err == nil && status/100 == 2 {
			return stats, nil
		}
		switch {
		case err != nil:
			lastErr = fmt.Errorf("ingest %s attempt %d: %w", session, stats.Attempts, err)
		case retryableStatus(status):
			if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
				stats.ShedRetries++
			}
			lastErr = fmt.Errorf("ingest %s attempt %d: server returned %d", session, stats.Attempts, status)
		default:
			return stats, fmt.Errorf("ingest %s: permanent failure, server returned %d", session, status)
		}
		if attempt >= c.opts.Retries {
			return stats, fmt.Errorf("%w (retries exhausted)", lastErr)
		}
		c.opts.Sleep(c.backoff(attempt, retryAfter))
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		// Resume from wherever the server got to. A failed probe keeps
		// the previous offset — worst case we resend bytes the server
		// dedups anyway.
		if w, werr := c.watermark(ctx, session); werr == nil {
			if w.Accepted > 0 {
				stats.Resumed++
			}
			if jsonl {
				seq, body = w.Accepted, trimRecords(payload, w.Accepted)
			} else {
				seq, body = 0, payload
			}
		}
	}
}

func (c *Client) post(ctx context.Context, session, contentType string, seq int, body []byte) (status int, retryAfter time.Duration, err error) {
	u := c.opts.BaseURL + "/ingest?session=" + url.QueryEscape(session)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(HeaderSeq, strconv.Itoa(seq))
	req.Header.Set(HeaderEos, "1")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// Watermark probes how many records the server has accepted for a
// session. A session the server has never seen reports 0.
func (c *Client) Watermark(ctx context.Context, session string) (Watermark, error) {
	return c.watermark(ctx, session)
}

func (c *Client) watermark(ctx context.Context, session string) (Watermark, error) {
	u := c.opts.BaseURL + "/sessions/" + url.PathEscape(session) + "/watermark"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Watermark{}, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return Watermark{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return Watermark{Session: session}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return Watermark{}, fmt.Errorf("watermark %s: server returned %d", session, resp.StatusCode)
	}
	var w Watermark
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&w); err != nil {
		return Watermark{}, fmt.Errorf("watermark %s: %w", session, err)
	}
	return w, nil
}

// Report fetches the session's report body from GET /report/{id}.
func (c *Client) Report(ctx context.Context, session string) ([]byte, error) {
	u := c.opts.BaseURL + "/report/" + url.PathEscape(session)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report %s: server returned %d", session, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// backoff computes the delay before retry n (0-based): seeded jittered
// exponential, capped, overridden by a longer server Retry-After.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	d := c.opts.Backoff << uint(n)
	if d <= 0 || d > c.opts.MaxBackoff {
		d = c.opts.MaxBackoff
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusPreconditionFailed ||
		status/100 == 5
}

// trimRecords drops the first n newline-terminated records from a
// JSONL payload; record 0 is the header line.
func trimRecords(payload []byte, n int) []byte {
	rest := payload
	for i := 0; i < n; i++ {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return nil
		}
		rest = rest[nl+1:]
	}
	return rest
}
