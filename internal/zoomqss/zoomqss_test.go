package zoomqss

import (
	"testing"

	"github.com/domino5g/domino/internal/stats"
)

func genSmall(t *testing.T) []Record {
	t.Helper()
	return Generate(Config{WiredMinutes: 5000, WiFiMinutes: 5000, CellularMinutes: 5000}, 7)
}

func TestGenerateCounts(t *testing.T) {
	recs := genSmall(t)
	if len(recs) != 15000 {
		t.Fatalf("records = %d", len(recs))
	}
	if n := len(Filter(recs, Cellular)); n != 5000 {
		t.Fatalf("cellular = %d", n)
	}
}

func TestJitterOrdering(t *testing.T) {
	// The paper's Fig. 5 ordering: cellular > Wi-Fi > wired at the
	// median and at the tail.
	recs := genSmall(t)
	med := func(a AccessType) float64 {
		return stats.NewCDF(Column(Filter(recs, a), func(r Record) float64 { return r.OutboundJitterMs })).Median()
	}
	p95 := func(a AccessType) float64 {
		return stats.NewCDF(Column(Filter(recs, a), func(r Record) float64 { return r.OutboundJitterMs })).Quantile(0.95)
	}
	if !(med(Cellular) > med(WiFi) && med(WiFi) > med(Wired)) {
		t.Fatalf("median ordering violated: cell=%v wifi=%v wired=%v", med(Cellular), med(WiFi), med(Wired))
	}
	if !(p95(Cellular) > p95(WiFi) && p95(WiFi) > p95(Wired)) {
		t.Fatalf("tail ordering violated: cell=%v wifi=%v wired=%v", p95(Cellular), p95(WiFi), p95(Wired))
	}
}

func TestLossOrdering(t *testing.T) {
	// Fig. 6: cellular loss dominates.
	recs := genSmall(t)
	mean := func(a AccessType) float64 {
		return stats.NewCDF(Column(Filter(recs, a), func(r Record) float64 { return r.OutboundLossPct })).Mean()
	}
	if !(mean(Cellular) > mean(WiFi) && mean(WiFi) > mean(Wired)) {
		t.Fatalf("loss ordering violated: cell=%v wifi=%v wired=%v", mean(Cellular), mean(WiFi), mean(Wired))
	}
}

func TestValuesInRange(t *testing.T) {
	for _, r := range genSmall(t) {
		if r.OutboundJitterMs < 0 || r.OutboundJitterMs > 500 ||
			r.InboundJitterMs < 0 || r.InboundJitterMs > 600 {
			t.Fatalf("jitter out of range: %+v", r)
		}
		if r.OutboundLossPct < 0 || r.OutboundLossPct > 100 ||
			r.InboundLossPct < 0 || r.InboundLossPct > 100 {
			t.Fatalf("loss out of range: %+v", r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig(), 3)
	b := Generate(DefaultConfig(), 3)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestAccessTypeString(t *testing.T) {
	if Wired.String() != "wired" || WiFi.String() != "wifi" || Cellular.String() != "cellular" {
		t.Fatal("access type strings")
	}
}
