// Package zoomqss generates a synthetic campus-wide Zoom QSS dataset:
// per-minute QoS reports (jitter, loss, access-network type) for a
// population of meetings, replacing the paper's 500-day enterprise API
// export (which is gated behind an organizational Zoom account and an
// IRB process). The generator is calibrated to the distributional
// orderings Figs. 5–6 report: cellular ≫ Wi-Fi ≳ wired for both jitter
// and loss, with cellular exhibiting heavy tails.
package zoomqss

import (
	"github.com/domino5g/domino/internal/sim"
)

// AccessType is the participant's access network.
type AccessType int

// Access network types reported by the QSS API.
const (
	Wired AccessType = iota
	WiFi
	Cellular
)

// String implements fmt.Stringer.
func (a AccessType) String() string {
	switch a {
	case Wired:
		return "wired"
	case WiFi:
		return "wifi"
	default:
		return "cellular"
	}
}

// Record is one per-minute QoS report for one participant direction.
type Record struct {
	Access           AccessType
	OutboundJitterMs float64
	InboundJitterMs  float64
	OutboundLossPct  float64
	InboundLossPct   float64
}

// Config sizes the synthetic dataset. Minutes are split across access
// types in the paper's proportions (409 days Wi-Fi, 86 days wired,
// 165 hours cellular).
type Config struct {
	WiredMinutes    int
	WiFiMinutes     int
	CellularMinutes int
}

// DefaultConfig scales the paper's dataset proportions down to a
// quickly-generable size (1 unit ≈ 10 minutes of the original).
func DefaultConfig() Config {
	return Config{
		WiredMinutes:    12384, // 86 days
		WiFiMinutes:     58896, // 409 days
		CellularMinutes: 990,   // 165 hours
	}
}

// jitterProfile draws a per-minute average jitter (ms).
func jitterProfile(a AccessType, rng *sim.RNG) float64 {
	switch a {
	case Wired:
		// Tight: median ~2 ms, short tail.
		return clampPos(rng.LogNormal(0.7, 0.55))
	case WiFi:
		// Moderate: median ~5 ms, occasional retransmission bursts.
		v := rng.LogNormal(1.6, 0.6)
		if rng.Bool(0.04) {
			v += rng.Exponential(12)
		}
		return clampPos(v)
	default:
		// Cellular: median ~12 ms, heavy tail from scheduling and HARQ.
		v := rng.LogNormal(2.5, 0.7)
		if rng.Bool(0.12) {
			v += rng.Pareto(8, 1.6)
		}
		return clampPos(v)
	}
}

// lossProfile draws a per-minute average loss percentage.
func lossProfile(a AccessType, rng *sim.RNG) float64 {
	switch a {
	case Wired:
		if rng.Bool(0.85) {
			return 0
		}
		return clampPct(rng.Exponential(0.08))
	case WiFi:
		if rng.Bool(0.60) {
			return 0
		}
		return clampPct(rng.Exponential(0.35))
	default:
		if rng.Bool(0.25) {
			return 0
		}
		v := rng.Exponential(1.1)
		if rng.Bool(0.08) {
			v += rng.Pareto(2, 1.8)
		}
		return clampPct(v)
	}
}

func clampPos(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 500 {
		return 500
	}
	return v
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// Generate produces the dataset.
func Generate(cfg Config, seed uint64) []Record {
	rng := sim.NewRNG(seed)
	var out []Record
	emit := func(a AccessType, n int) {
		for i := 0; i < n; i++ {
			out = append(out, Record{
				Access:           a,
				OutboundJitterMs: jitterProfile(a, rng),
				InboundJitterMs:  jitterProfile(a, rng) * rng.Uniform(0.8, 1.1),
				OutboundLossPct:  lossProfile(a, rng),
				InboundLossPct:   lossProfile(a, rng),
			})
		}
	}
	emit(Wired, cfg.WiredMinutes)
	emit(WiFi, cfg.WiFiMinutes)
	emit(Cellular, cfg.CellularMinutes)
	return out
}

// Filter returns the records of one access type.
func Filter(recs []Record, a AccessType) []Record {
	var out []Record
	for _, r := range recs {
		if r.Access == a {
			out = append(out, r)
		}
	}
	return out
}

// Column extracts one metric across records.
func Column(recs []Record, get func(Record) float64) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = get(r)
	}
	return out
}
