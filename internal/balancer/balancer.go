// Package balancer is the dominolb fleet tier: a failure-aware
// routing layer in front of N dominod backends.
//
// Sessions are admitted here and pinned to a backend by rendezvous
// (HRW) hashing over the currently-healthy node set — the streaming
// analyzer is stateful, so every chunk of a session must land on the
// same node. An active health checker probes each backend's /healthz,
// distinguishing down (stop routing, fail sessions over) from
// draining (no new sessions, in-flight ones finish). When a pinned
// backend dies mid-session the balancer re-pins the session and
// drives re-ingest through the resumable-ingest contract: it replays
// the backend-acknowledged prefix from its per-session replay buffer
// at seq 0 (the new node's watermark), or — when no aligned buffer
// exists — answers the client with a retryable 503 so the
// internal/ingest backoff path resends from scratch. Either way a
// mid-upload kill -9 of a backend still yields a final report
// byte-identical to clean single-node analysis.
//
// The balancer also serves the fleet read surface: GET /metrics
// scrapes every backend, obs.ParseText-parses and obs.Merges the
// snapshots into one lint-clean exposition; /sessions, /query and
// /incidents/similar fan out and merge; /report/{id} routes to the
// owning node.
package balancer

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Balancer.
type Options struct {
	// Backends are the dominod base URLs fronted by this balancer,
	// e.g. "http://127.0.0.1:9101". At least one is required.
	Backends []string
	// Client issues proxied and health requests; default is a fresh
	// http.Client with no global timeout (ingest bodies are long-lived
	// streams; probes and scrapes get per-request context deadlines).
	Client *http.Client
	// HealthInterval is the active probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default HealthInterval/2).
	HealthTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a
	// backend down (default 3). Proxy-observed transport errors count
	// toward it too, so data-path failures shorten detection.
	FailThreshold int
	// ReplayMax caps one session's failover replay buffer in bytes;
	// a session that outgrows it falls back to client resend via
	// retryable 503. 0 means the 64 MiB default; negative disables
	// buffering entirely.
	ReplayMax int64
	// ScrapeTimeout bounds one backend /metrics scrape during
	// federation (default 5s).
	ScrapeTimeout time.Duration
	Log           *slog.Logger
}

// Balancer routes sessions across a dominod fleet. Create with New,
// serve Routes, stop with Close.
type Balancer struct {
	opts     Options
	backends []*backend
	client   *http.Client
	log      *slog.Logger
	m        *metrics

	mu       sync.Mutex
	sessions map[string]*lbSession
	order    []string // session admission order, for /lb/sessions

	nextID atomic.Uint64
	stop   chan struct{}
	done   sync.WaitGroup
}

// lbSession is the balancer's routing state for one session: its pin,
// how much the pinned backend has acknowledged, and the acknowledged
// byte prefix kept for failover replay.
type lbSession struct {
	mu          sync.Mutex
	id          string
	backend     *backend
	contentType string
	resumable   bool // client speaks the seq/watermark protocol
	accepted    int  // records the pinned backend has acknowledged
	buf         []byte
	overflow    bool // buffer gave up (too large); failover needs client resend
	done        bool
	failovers   int
}

// New builds a Balancer, runs one synchronous health round so routing
// starts with a populated fleet view, and starts the background
// prober.
func New(opts Options) (*Balancer, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("balancer: no backends configured")
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = opts.HealthInterval / 2
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 3
	}
	if opts.ReplayMax == 0 {
		opts.ReplayMax = 64 << 20
	}
	if opts.ScrapeTimeout <= 0 {
		opts.ScrapeTimeout = 5 * time.Second
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	b := &Balancer{
		opts:     opts,
		client:   client,
		log:      opts.Log,
		sessions: map[string]*lbSession{},
		stop:     make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range opts.Backends {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		b.backends = append(b.backends, newBackend(u))
	}
	if len(b.backends) == 0 {
		return nil, fmt.Errorf("balancer: no backends configured")
	}
	b.m = newMetrics(b)
	b.probeAll() // synchronous first round: know the fleet before serving
	b.done.Add(1)
	go b.probeLoop()
	return b, nil
}

// Close stops the health prober. In-flight proxied requests finish on
// their own.
func (b *Balancer) Close() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	b.done.Wait()
}

// Routes returns the balancer's HTTP surface.
func (b *Balancer) Routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", b.handleIngest)
	mux.HandleFunc("GET /sessions", b.handleSessions)
	mux.HandleFunc("GET /sessions/{id}/watermark", b.handleWatermark)
	mux.HandleFunc("GET /report/{id}", b.handleReport)
	mux.HandleFunc("GET /query", b.handleQuery)
	mux.HandleFunc("GET /incidents/similar", b.handleSimilar)
	mux.HandleFunc("GET /metrics", b.handleMetrics)
	mux.HandleFunc("GET /healthz", b.handleHealthz)
	mux.HandleFunc("GET /lb/sessions", b.handleLBSessions)
	return mux
}

// session returns the routing entry for id, creating it on first
// sight.
func (b *Balancer) session(id string) *lbSession {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.sessions[id]
	if s == nil {
		s = &lbSession{id: id}
		b.sessions[id] = s
		b.order = append(b.order, id)
		b.m.sessionsTotal.Inc()
	}
	return s
}

// lookup returns the routing entry for id, or nil.
func (b *Balancer) lookup(id string) *lbSession {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sessions[id]
}

// pick rendezvous-hashes a session onto the healthy backend set: each
// (backend, session) pair scores fnv64a(backend + NUL + session) and
// the highest score wins. Stable while the healthy set is stable, and
// only sessions pinned to a lost node move when it shrinks.
func (b *Balancer) pick(id string) *backend {
	var best *backend
	var bestScore uint64
	for _, be := range b.backends {
		if be.State() != stateUp {
			continue
		}
		score := hrwScore(be.url, id)
		if best == nil || score > bestScore || (score == bestScore && be.url < best.url) {
			best, bestScore = be, score
		}
	}
	return best
}

// hrwScore is the rendezvous hash: FNV-1a over backend identity, a
// separator, and the session id, finished with a splitmix64 mix —
// raw FNV's high bits avalanche too weakly for max-score comparisons
// when keys share long prefixes (URLs differing only in port,
// sessions differing only in a trailing index).
func hrwScore(backend, session string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(backend); i++ {
		h ^= uint64(backend[i])
		h *= prime64
	}
	h *= prime64 // NUL separator
	for i := 0; i < len(session); i++ {
		h ^= uint64(session[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// handleHealthz reports the balancer's own readiness: ok while at
// least one backend is up, else 503.
func (b *Balancer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type nodeView struct {
		URL   string `json:"url"`
		Node  string `json:"node,omitempty"`
		State string `json:"state"`
	}
	up := 0
	nodes := make([]nodeView, 0, len(b.backends))
	for _, be := range b.backends {
		st := be.State()
		if st == stateUp {
			up++
		}
		nodes = append(nodes, nodeView{URL: be.url, Node: be.NodeID(), State: st.String()})
	}
	status, code := "ok", http.StatusOK
	switch {
	case up == 0:
		status, code = "down", http.StatusServiceUnavailable
	case up < len(b.backends):
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"up":       up,
		"backends": nodes,
	})
}

// handleLBSessions exposes the routing table — which backend owns
// each session, how far ingest got, and how often it failed over.
// Debug surface for tests and runbooks, not part of the dominod API.
func (b *Balancer) handleLBSessions(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Session   string `json:"session"`
		Backend   string `json:"backend"`
		Accepted  int    `json:"accepted"`
		Buffered  int    `json:"buffered_bytes"`
		Overflow  bool   `json:"overflow,omitempty"`
		Done      bool   `json:"done"`
		Failovers int    `json:"failovers"`
	}
	b.mu.Lock()
	ids := append([]string(nil), b.order...)
	table := make([]*lbSession, len(ids))
	for i, id := range ids {
		table[i] = b.sessions[id]
	}
	b.mu.Unlock()
	out := make([]entry, 0, len(ids))
	for _, s := range table {
		s.mu.Lock()
		e := entry{
			Session: s.id, Accepted: s.accepted, Buffered: len(s.buf),
			Overflow: s.overflow, Done: s.done, Failovers: s.failovers,
		}
		if s.backend != nil {
			e.Backend = s.backend.url
		}
		s.mu.Unlock()
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}

// writeJSON mirrors dominod's response envelope: indented JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// httpError writes dominod's error envelope.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
