package balancer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/rcastore"
	"github.com/domino5g/domino/internal/sim"
)

// errNoBackends is returned when the healthy set is empty.
var errNoBackends = fmt.Errorf("no healthy backends")

// handleIngest admits a session (or the next chunk of one), pins it
// to a backend, and proxies the body. Failure handling is the point:
//
//   - if the pinned backend is down or draining when the chunk
//     arrives, the session fails over first — the balancer re-pins by
//     HRW over the surviving nodes and replays its acknowledged
//     prefix at seq 0, which is exactly the new node's watermark;
//   - if the backend dies under an in-flight proxy, the client gets a
//     retryable 503 + Retry-After and the internal/ingest backoff
//     path takes over: probe watermark (now answered by the new
//     pin), resend what is missing.
func (b *Balancer) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	if id == "" {
		// Affinity needs a name; mint one so even anonymous legacy
		// uploads route consistently.
		id = fmt.Sprintf("lb-%d", b.nextID.Add(1))
	}
	sess := b.session(id)
	// One chunk at a time per session: the protocol is sequential and
	// a concurrent duplicate would corrupt replay accounting.
	sess.mu.Lock()
	defer sess.mu.Unlock()

	resumable := r.Header.Get(ingest.HeaderSeq) != ""
	sess.resumable = sess.resumable || resumable
	if ct := r.Header.Get("Content-Type"); ct != "" {
		sess.contentType = ct
	}
	if err := b.ensureBackend(r.Context(), sess); err != nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("session %s: %v", id, err))
		return
	}
	b.forward(w, r, sess, id)
}

// ensureBackend gives sess a live pin, failing it over when the
// current one left the fleet. Callers hold sess.mu.
func (b *Balancer) ensureBackend(ctx context.Context, sess *lbSession) error {
	cur := sess.backend
	if cur != nil && cur.State() == stateUp {
		return nil
	}
	next := b.pick(sess.id)
	if next == nil {
		return errNoBackends
	}
	if cur == nil {
		sess.backend = next
		return nil
	}
	// Failover. The new node has never seen this session (watermark
	// 0): replay the acknowledged prefix if we still hold it aligned,
	// otherwise reset so the client's own resend starts from scratch.
	b.m.failovers.Inc()
	sess.failovers++
	b.log.Warn("session failover", "session", sess.id, "from", cur.url, "to", next.url,
		"replay_bytes", len(sess.buf), "accepted", sess.accepted)
	if len(sess.buf) > 0 && !sess.overflow {
		if err := b.replay(ctx, sess, next); err != nil {
			return fmt.Errorf("failover replay: %w", err)
		}
	} else {
		sess.accepted = 0
		sess.buf = nil
	}
	sess.backend = next
	return nil
}

// replay re-ingests a session's acknowledged prefix into a fresh
// backend: one POST at seq 0 (the new node's watermark), no EOS, so
// the stream continues where the client left off.
func (b *Balancer) replay(ctx context.Context, sess *lbSession, be *backend) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		be.url+"/ingest?session="+url.QueryEscape(sess.id), bytes.NewReader(sess.buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", sess.contentType)
	req.Header.Set(ingest.HeaderSeq, "0")
	resp, err := b.client.Do(req)
	if err != nil {
		b.backendFailed(be, err)
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("backend %s answered %d: %s", be.url, resp.StatusCode, bytes.TrimSpace(body))
	}
	var wm ingest.Watermark
	if err := json.Unmarshal(body, &wm); err != nil {
		return fmt.Errorf("backend %s watermark: %w", be.url, err)
	}
	sess.accepted = wm.Accepted
	b.m.replayedBytes.Add(int64(len(sess.buf)))
	return nil
}

// forward proxies one ingest chunk to the session's pinned backend,
// teeing the body into the replay buffer and committing it only once
// the backend acknowledges. Callers hold sess.mu.
func (b *Balancer) forward(w http.ResponseWriter, r *http.Request, sess *lbSession, id string) {
	be := sess.backend
	var pending *bytes.Buffer
	var body io.Reader = r.Body
	if sess.resumable && !sess.overflow && b.opts.ReplayMax > 0 {
		pending = &bytes.Buffer{}
		body = io.TeeReader(r.Body, pending)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		be.url+"/ingest?session="+url.QueryEscape(id), body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req.Header.Set("Content-Type", sess.contentType)
	for _, h := range []string{ingest.HeaderSeq, ingest.HeaderEos} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := b.client.Do(req)
	if err != nil {
		// The backend vanished under the stream. We cannot replay the
		// client's body (it is half-consumed); hand the failure to the
		// client's retry loop, and let the failure feed health so the
		// next attempt fails over.
		b.backendFailed(be, err)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("backend lost mid-upload (%v); retry to fail over", err))
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		b.backendFailed(be, err)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("backend lost mid-response (%v); retry to fail over", err))
		return
	}

	switch resp.StatusCode {
	case http.StatusOK:
		// Final report: the session is complete, the buffer has done
		// its job.
		sess.done = true
		sess.buf = nil
		sess.overflow = false
	case http.StatusAccepted:
		// Chunk acknowledged: commit the teed bytes to the replay
		// buffer and advance the acknowledged watermark.
		var wm ingest.Watermark
		if json.Unmarshal(respBody, &wm) == nil {
			sess.accepted = wm.Accepted
		}
		if pending != nil {
			sess.buf = append(sess.buf, pending.Bytes()...)
			if int64(len(sess.buf)) > b.opts.ReplayMax {
				sess.buf = nil
				sess.overflow = true
			}
		}
	case http.StatusServiceUnavailable:
		// The backend is shedding or draining; reflect draining into
		// the fleet view right away so the client's retry re-pins
		// instead of bouncing off the same node.
		if strings.Contains(string(respBody), "draining") {
			if be.noteState(stateDraining, "") {
				b.log.Info("backend draining (ingest reject)", "backend", be.url)
			}
		}
	}
	copyHeader(w, resp.Header, "Content-Type")
	copyHeader(w, resp.Header, "Retry-After")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(respBody)
}

// backendFailed folds a data-path failure into backend health.
func (b *Balancer) backendFailed(be *backend, err error) {
	b.m.proxyErrors.Inc()
	if be.noteFailure(b.opts.FailThreshold) {
		b.log.Warn("backend down (proxy error)", "backend", be.url, "err", err)
	}
}

func copyHeader(w http.ResponseWriter, h http.Header, name string) {
	if v := h.Get(name); v != "" {
		w.Header().Set(name, v)
	}
}

// handleWatermark serves a session's resume point. For a session the
// balancer routed, this runs failover first, so the answer reflects
// the node the next POST will land on — that is what makes the
// client-resend failover path converge.
func (b *Balancer) handleWatermark(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if sess := b.lookup(id); sess != nil {
		sess.mu.Lock()
		defer sess.mu.Unlock()
		if err := b.ensureBackend(r.Context(), sess); err != nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		b.passThrough(w, r.Context(), sess.backend, "/sessions/"+url.PathEscape(id)+"/watermark")
		return
	}
	// Unknown to this balancer (admitted before a restart, or direct
	// to a node): first backend that knows it wins.
	for _, be := range b.reachable() {
		if b.tryPassThrough(w, r.Context(), be, "/sessions/"+url.PathEscape(id)+"/watermark") {
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such session")
}

// handleReport routes to the owning backend, falling back to asking
// the fleet.
func (b *Balancer) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path := "/report/" + url.PathEscape(id)
	if sess := b.lookup(id); sess != nil {
		sess.mu.Lock()
		be := sess.backend
		sess.mu.Unlock()
		if be != nil && be.State() != stateDown && b.tryPassThrough(w, r.Context(), be, path) {
			return
		}
	}
	for _, be := range b.reachable() {
		if b.tryPassThrough(w, r.Context(), be, path) {
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such session")
}

// reachable lists backends worth asking for reads: everything not
// down. Draining nodes still answer reads for what they hold.
func (b *Balancer) reachable() []*backend {
	out := make([]*backend, 0, len(b.backends))
	for _, be := range b.backends {
		if be.State() != stateDown {
			out = append(out, be)
		}
	}
	return out
}

// passThrough proxies one GET verbatim — status, content type, body.
func (b *Balancer) passThrough(w http.ResponseWriter, ctx context.Context, be *backend, path string) {
	resp, err := b.get(ctx, be, path)
	if err != nil {
		b.backendFailed(be, err)
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	defer resp.Body.Close()
	copyHeader(w, resp.Header, "Content-Type")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// tryPassThrough proxies a GET only if the backend answers 200;
// a miss (404, error) leaves the ResponseWriter untouched so the
// caller can try elsewhere.
func (b *Balancer) tryPassThrough(w http.ResponseWriter, ctx context.Context, be *backend, path string) bool {
	resp, err := b.get(ctx, be, path)
	if err != nil {
		b.backendFailed(be, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return false
	}
	copyHeader(w, resp.Header, "Content-Type")
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, resp.Body)
	return true
}

func (b *Balancer) get(ctx context.Context, be *backend, pathAndQuery string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.url+pathAndQuery, nil)
	if err != nil {
		return nil, err
	}
	return b.client.Do(req)
}

// fanGet issues one GET per reachable backend and returns the decoded
// 200-bodies. Individual failures are logged and skipped — a degraded
// fleet still answers with what it has.
func fanGet[T any](b *Balancer, ctx context.Context, pathAndQuery string) []T {
	var out []T
	for _, be := range b.reachable() {
		resp, err := b.get(ctx, be, pathAndQuery)
		if err != nil {
			b.backendFailed(be, err)
			continue
		}
		var v T
		ok := resp.StatusCode == http.StatusOK
		if ok {
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				b.log.Warn("fan-out decode failed", "backend", be.url, "path", pathAndQuery, "err", err)
				ok = false
			}
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if ok {
			out = append(out, v)
		}
	}
	return out
}

// handleSessions fans /sessions across the fleet and merges the
// per-node session summaries, ordered by session id.
func (b *Balancer) handleSessions(w http.ResponseWriter, r *http.Request) {
	parts := fanGet[[]json.RawMessage](b, r.Context(), "/sessions")
	type keyed struct {
		id  string
		raw json.RawMessage
	}
	var all []keyed
	for _, part := range parts {
		for _, raw := range part {
			var peek struct {
				Session string `json:"session"`
			}
			_ = json.Unmarshal(raw, &peek)
			all = append(all, keyed{id: peek.Session, raw: raw})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := make([]json.RawMessage, len(all))
	for i, k := range all {
		out[i] = k.raw
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQuery fans /query across the fleet and merges per-node
// results into fleet-wide answers: records interleave by start time,
// top_chains re-aggregate by chain, cause_rates re-derive rates from
// summed runs over summed session minutes.
func (b *Balancer) handleQuery(w http.ResponseWriter, r *http.Request) {
	pathAndQuery := "/query"
	if r.URL.RawQuery != "" {
		pathAndQuery += "?" + r.URL.RawQuery
	}
	switch agg := r.URL.Query().Get("agg"); agg {
	case "":
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			limit, _ = strconv.Atoi(v)
		}
		type recordsResp struct {
			Records []rcastore.Record `json:"records"`
		}
		var records []rcastore.Record
		for _, part := range fanGet[recordsResp](b, r.Context(), pathAndQuery) {
			records = append(records, part.Records...)
		}
		sort.SliceStable(records, func(i, j int) bool {
			if records[i].Start != records[j].Start {
				return records[i].Start < records[j].Start
			}
			return records[i].Session < records[j].Session
		})
		if limit > 0 && len(records) > limit {
			records = records[:limit]
		}
		if records == nil {
			records = []rcastore.Record{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"records": records})
	case "top_chains":
		k := 10
		if v := r.URL.Query().Get("k"); v != "" {
			k, _ = strconv.Atoi(v)
		}
		type chainsResp struct {
			TopChains []rcastore.ChainAgg `json:"top_chains"`
		}
		byChain := map[string]*rcastore.ChainAgg{}
		for _, part := range fanGet[chainsResp](b, r.Context(), pathAndQuery) {
			for _, c := range part.TopChains {
				a := byChain[c.Chain]
				if a == nil {
					cp := c
					byChain[c.Chain] = &cp
					continue
				}
				a.Runs += c.Runs
				a.Sessions += c.Sessions
			}
		}
		out := make([]rcastore.ChainAgg, 0, len(byChain))
		for _, a := range byChain {
			out = append(out, *a)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Runs != out[j].Runs {
				return out[i].Runs > out[j].Runs
			}
			return out[i].Chain < out[j].Chain
		})
		if k > 0 && len(out) > k {
			out = out[:k]
		}
		writeJSON(w, http.StatusOK, map[string]any{"top_chains": out})
	case "cause_rates":
		writeJSON(w, http.StatusOK, map[string]any{
			"cause_rates": b.mergeCauseRates(r.Context(), pathAndQuery),
		})
	default:
		// Let a backend phrase the error for unknown aggregations.
		for _, be := range b.reachable() {
			b.passThrough(w, r.Context(), be, pathAndQuery)
			return
		}
		httpError(w, http.StatusServiceUnavailable, errNoBackends.Error())
	}
}

// mergeCauseRates re-aggregates per-node cause-rate buckets. Runs sum
// per (cell, bucket, cause); Sessions and Minutes sum per (cell,
// bucket) group — each node reports its group denominator on every
// row, so per node the group values are taken once — and the rate is
// re-derived from the merged numerator and denominator.
func (b *Balancer) mergeCauseRates(ctx context.Context, pathAndQuery string) []rcastore.CauseBucket {
	type ratesResp struct {
		CauseRates []rcastore.CauseBucket `json:"cause_rates"`
	}
	type groupKey struct {
		cell   string
		bucket int64
	}
	type cellKey struct {
		groupKey
		cause string
	}
	runs := map[cellKey]int{}
	sessions := map[groupKey]int{}
	minutes := map[groupKey]float64{}
	for _, part := range fanGet[ratesResp](b, ctx, pathAndQuery) {
		grouped := map[groupKey]bool{}
		for _, cb := range part.CauseRates {
			g := groupKey{cell: cb.Cell, bucket: int64(cb.Bucket)}
			runs[cellKey{groupKey: g, cause: cb.Cause}] += cb.Runs
			if !grouped[g] {
				grouped[g] = true
				sessions[g] += cb.Sessions
				minutes[g] += cb.Minutes
			}
		}
	}
	out := make([]rcastore.CauseBucket, 0, len(runs))
	for k, n := range runs {
		cb := rcastore.CauseBucket{
			Cell: k.cell, Bucket: sim.Time(k.bucket), Cause: k.cause,
			Runs: n, Sessions: sessions[k.groupKey], Minutes: minutes[k.groupKey],
		}
		if cb.Minutes > 0 {
			cb.RunsPerMin = float64(n) / cb.Minutes
		}
		out = append(out, cb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		if out[i].Bucket != out[j].Bucket {
			return out[i].Bucket < out[j].Bucket
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// handleSimilar fans nearest-incident lookups. A fired= probe fans
// directly; a session= probe first resolves the probe signature from
// whichever node holds the session, then queries the rest of the
// fleet with the explicit signature and merges.
func (b *Balancer) handleSimilar(w http.ResponseWriter, r *http.Request) {
	type similarResp struct {
		Fired   []string         `json:"fired"`
		Matches []rcastore.Match `json:"matches"`
	}
	k := 5
	if v := r.URL.Query().Get("k"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			k = n
		}
	}
	q := r.URL.Query()
	probeSession := q.Get("session")
	var fired []string
	var matches []rcastore.Match
	if probeSession != "" {
		// Resolve the probe signature from the node that stored the
		// session; its own matches come along for free.
		found := false
		path := "/incidents/similar"
		if r.URL.RawQuery != "" {
			path += "?" + r.URL.RawQuery
		}
		for _, be := range b.reachable() {
			resp, err := b.get(r.Context(), be, path)
			if err != nil {
				b.backendFailed(be, err)
				continue
			}
			var sr similarResp
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&sr) == nil {
				fired, matches, found = sr.Fired, sr.Matches, true
			}
			resp.Body.Close()
			if found {
				break
			}
		}
		if !found {
			httpError(w, http.StatusNotFound, fmt.Sprintf("session %q has no stored report on any node", probeSession))
			return
		}
		// Rewrite the query for the rest of the fleet: explicit
		// signature, no session (they do not hold it).
		q.Del("session")
		q.Set("fired", strings.Join(fired, ","))
	}
	fanQuery := "/incidents/similar?" + q.Encode()
	for _, part := range fanGet[similarResp](b, r.Context(), fanQuery) {
		if fired == nil {
			fired = part.Fired
		}
		matches = append(matches, part.Matches...)
	}
	if fired == nil {
		// No backend produced an answer; surface the fleet state or
		// the parameter error from a live node.
		for _, be := range b.reachable() {
			b.passThrough(w, r.Context(), be, fanQuery)
			return
		}
		httpError(w, http.StatusServiceUnavailable, errNoBackends.Error())
		return
	}
	// Dedup (the probe-owning node answered twice when session= was
	// given), drop the probe itself, re-rank: distance, then recency,
	// then session.
	seen := map[string]bool{}
	out := matches[:0]
	for _, m := range matches {
		if m.Session == probeSession || seen[m.Session] {
			continue
		}
		seen[m.Session] = true
		out = append(out, m)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].End != out[j].End {
			return out[i].End > out[j].End
		}
		return out[i].Session < out[j].Session
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	if out == nil {
		out = []rcastore.Match{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"fired": fired, "matches": out})
}
