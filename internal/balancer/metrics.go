package balancer

import (
	"context"
	"io"
	"net/http"

	"github.com/domino5g/domino/internal/obs"
)

// metrics is the balancer's own instrument set. Per-backend health
// gauges are Func-backed so the scrape always reflects the live state
// machine; everything else is plain counters on the data path.
type metrics struct {
	reg           *obs.Registry
	sessionsTotal *obs.Counter
	failovers     *obs.Counter
	replayedBytes *obs.Counter
	proxyErrors   *obs.Counter
	healthProbes  *obs.Counter
	probeFailures *obs.Counter
	scrapeErrors  map[string]*obs.Counter // by backend URL
}

func newMetrics(b *Balancer) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		sessionsTotal: reg.Counter("dominolb_sessions_total",
			"Sessions admitted at the balancer."),
		failovers: reg.Counter("dominolb_failovers_total",
			"Sessions re-pinned to a surviving backend after their node left the fleet."),
		replayedBytes: reg.Counter("dominolb_replayed_bytes_total",
			"Bytes replayed from balancer-side buffers into fresh backends during failover."),
		proxyErrors: reg.Counter("dominolb_proxy_errors_total",
			"Proxied requests that failed at the transport layer."),
		healthProbes: reg.Counter("dominolb_health_probes_total",
			"Active health probes issued."),
		probeFailures: reg.Counter("dominolb_health_probe_failures_total",
			"Active health probes that failed."),
		scrapeErrors: map[string]*obs.Counter{},
	}
	reg.GaugeFunc("dominolb_backends", "Backends configured.",
		func() float64 { return float64(len(b.backends)) })
	reg.GaugeFunc("dominolb_sessions_active", "Sessions the balancer is routing that have not completed.",
		func() float64 {
			b.mu.Lock()
			table := make([]*lbSession, 0, len(b.sessions))
			for _, s := range b.sessions {
				table = append(table, s)
			}
			b.mu.Unlock()
			active := 0
			for _, s := range table {
				s.mu.Lock()
				if !s.done {
					active++
				}
				s.mu.Unlock()
			}
			return float64(active)
		})
	for _, be := range b.backends {
		be := be
		reg.GaugeFunc("dominolb_backend_up", "1 while the backend is healthy and routable.",
			func() float64 {
				if be.State() == stateUp {
					return 1
				}
				return 0
			}, obs.L("backend", be.url))
		reg.GaugeFunc("dominolb_backend_draining", "1 while the backend drains for shutdown.",
			func() float64 {
				if be.State() == stateDraining {
					return 1
				}
				return 0
			}, obs.L("backend", be.url))
		m.scrapeErrors[be.url] = reg.Counter("dominolb_backend_scrape_errors_total",
			"Failed /metrics scrapes during federation.", obs.L("backend", be.url))
	}
	return m
}

// handleMetrics serves the fleet exposition: the balancer's own
// snapshot merged with every reachable backend's scraped-and-reparsed
// snapshot, rendered as one lint-clean Prometheus text document.
// Backends that fail to scrape are skipped and counted — a degraded
// fleet still exposes itself.
func (b *Balancer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snaps := []obs.Snapshot{b.m.reg.Snapshot()}
	for _, be := range b.reachable() {
		snap, err := b.scrape(r.Context(), be)
		if err != nil {
			b.m.scrapeErrors[be.url].Inc()
			b.log.Warn("backend scrape failed", "backend", be.url, "err", err)
			continue
		}
		snaps = append(snaps, snap)
	}
	merged, err := obs.Merge(snaps...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "merging fleet snapshots: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = merged.WriteText(w)
}

// scrape pulls one backend's /metrics and parses it back into a
// snapshot — WriteText's inverse, the federation seam.
func (b *Balancer) scrape(ctx context.Context, be *backend) (obs.Snapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, b.opts.ScrapeTimeout)
	defer cancel()
	resp, err := b.get(ctx, be, "/metrics")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return obs.Snapshot{}, errStatus(resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

type errStatus int

func (e errStatus) Error() string { return http.StatusText(int(e)) }
