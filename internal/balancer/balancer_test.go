package balancer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/domino5g/domino/internal/ingest"
	"github.com/domino5g/domino/internal/obs"
)

// fakeNode is a dominod stand-in implementing just enough of the
// ingest protocol for routing tests: line-oriented "records",
// seq/watermark dedup, 412 on gaps, draining rejection, and a
// /metrics registry.
type fakeNode struct {
	node string

	mu       sync.Mutex
	draining bool
	sessions map[string][]string // accepted records per session
	done     map[string]bool
	ingests  int // ingest POSTs seen, including rejected ones

	reg *obs.Registry
	ts  *httptest.Server
}

func newFakeNode(t *testing.T, node string) *fakeNode {
	t.Helper()
	f := &fakeNode{
		node:     node,
		sessions: map[string][]string{},
		done:     map[string]bool{},
		reg:      obs.NewRegistry(),
	}
	f.reg.Gauge("dominod_node_info", "Node identity.", obs.L("node", node)).Set(1)
	f.reg.CounterFunc("dominod_records_total", "Records accepted.", func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		n := 0
		for _, recs := range f.sessions {
			n += len(recs)
		}
		return float64(n)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		draining := f.draining
		f.mu.Unlock()
		status, code := "ok", http.StatusOK
		if draining {
			status, code = "draining", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"status": status, "node": node})
	})
	mux.HandleFunc("POST /ingest", f.handleIngest)
	mux.HandleFunc("GET /sessions/{id}/watermark", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		recs, ok := f.sessions[r.PathValue("id")]
		f.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(ingest.Watermark{Session: r.PathValue("id"), Accepted: len(recs), State: "active"})
	})
	mux.HandleFunc("GET /report/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		recs, ok := f.sessions[r.PathValue("id")]
		isDone := f.done[r.PathValue("id")]
		f.mu.Unlock()
		if !ok || !isDone {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"session":%q,"records":%d,"node":%q,"body":%q}`,
			r.PathValue("id"), len(recs), node, strings.Join(recs, "|"))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		f.reg.Snapshot().WriteText(w)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeNode) handleIngest(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ingests++
	if f.draining {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "draining: this node is shutting down"})
		return
	}
	id := r.URL.Query().Get("session")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	seq := 0
	if v := r.Header.Get(ingest.HeaderSeq); v != "" {
		seq, _ = strconv.Atoi(v)
	}
	acc := f.sessions[id]
	if seq > len(acc) {
		w.WriteHeader(http.StatusPreconditionFailed)
		json.NewEncoder(w).Encode(map[string]string{"error": "seq gap"})
		return
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(body) == 0 {
		lines = nil
	}
	skip := len(acc) - seq // already-accepted prefix of this chunk
	if skip < len(lines) {
		acc = append(acc, lines[skip:]...)
	}
	f.sessions[id] = acc
	if r.Header.Get(ingest.HeaderEos) == "1" {
		f.done[id] = true
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"session":%q,"records":%d,"node":%q,"body":%q}`,
			id, len(acc), f.node, strings.Join(acc, "|"))
		return
	}
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(ingest.Watermark{Session: id, Accepted: len(acc), State: "active"})
}

func (f *fakeNode) setDraining(v bool) {
	f.mu.Lock()
	f.draining = v
	f.mu.Unlock()
}

func (f *fakeNode) records(id string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.sessions[id]...)
}

// newTestBalancer fronts the fakes with prober stopped after the
// initial round — tests drive re-probes explicitly for determinism.
func newTestBalancer(t *testing.T, opts Options, fakes ...*fakeNode) (*Balancer, *httptest.Server) {
	t.Helper()
	for _, f := range fakes {
		opts.Backends = append(opts.Backends, f.ts.URL)
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Hour // probes on demand via probeAll
	}
	if opts.FailThreshold == 0 {
		opts.FailThreshold = 1
	}
	lb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lb.Close)
	ts := httptest.NewServer(lb.Routes())
	t.Cleanup(ts.Close)
	return lb, ts
}

func postChunk(t *testing.T, base, id, ct string, seq int, eos bool, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/ingest?session="+id, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ct)
	req.Header.Set(ingest.HeaderSeq, strconv.Itoa(seq))
	if eos {
		req.Header.Set(ingest.HeaderEos, "1")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHRWPinningIsStableAndMovesMinimally(t *testing.T) {
	a, b, c := newFakeNode(t, "a"), newFakeNode(t, "b"), newFakeNode(t, "c")
	lb, _ := newTestBalancer(t, Options{}, a, b, c)

	pins := map[string]string{}
	byBackend := map[string]int{}
	for i := 0; i < 90; i++ {
		id := fmt.Sprintf("sess-%d", i)
		be := lb.pick(id)
		if be == nil {
			t.Fatal("no backend picked")
		}
		if again := lb.pick(id); again != be {
			t.Fatalf("pick(%s) not stable", id)
		}
		pins[id] = be.url
		byBackend[be.url]++
	}
	if len(byBackend) != 3 {
		t.Fatalf("90 sessions landed on %d backends, want 3: %v", len(byBackend), byBackend)
	}
	// Take backend b out: only its sessions may move.
	for _, be := range lb.backends {
		if be.url == b.ts.URL {
			be.noteFailure(1)
		}
	}
	for id, was := range pins {
		now := lb.pick(id)
		if was == b.ts.URL {
			if now.url == b.ts.URL {
				t.Fatalf("%s still pinned to dead backend", id)
			}
			continue
		}
		if now.url != was {
			t.Fatalf("%s moved from %s to %s though its backend survived", id, was, now.url)
		}
	}
}

func TestChunkedFailoverReplaysAcknowledgedPrefix(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	lb, ts := newTestBalancer(t, Options{}, a, b)

	const id = "replay-sess"
	resp := postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 0, false, "hdr\nr1\nr2\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 0: %d %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()

	// Which fake owns it?
	sess := lb.lookup(id)
	owner, other := a, b
	if sess.backend.url == b.ts.URL {
		owner, other = b, a
	}
	if got := owner.records(id); len(got) != 3 {
		t.Fatalf("owner has %v", got)
	}

	// Kill the owner hard; the next chunk's proxy attempt fails, feeds
	// health (threshold 1), and the retry fails over with replay.
	owner.ts.CloseClientConnections()
	owner.ts.Close()
	resp = postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 3, false, "r3\n")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("chunk against dead backend: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp.Body.Close()

	resp = postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 3, false, "r3\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover chunk: %d %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()
	if got := strings.Join(other.records(id), "|"); got != "hdr|r1|r2|r3" {
		t.Fatalf("survivor assembled %q", got)
	}

	resp = postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 4, true, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eos: %d %s", resp.StatusCode, readBody(t, resp))
	}
	report := readBody(t, resp)
	if !strings.Contains(report, `"records":4`) || !strings.Contains(report, `"node":"`+other.node+`"`) {
		t.Fatalf("report %s", report)
	}
	if v := lb.m.failovers.Value(); v != 1 {
		t.Fatalf("failovers counter = %d, want 1", v)
	}

	// The routing table surfaces what happened.
	table := readBody(t, mustGet(t, ts.URL+"/lb/sessions"))
	if !strings.Contains(table, `"failovers": 1`) || !strings.Contains(table, `"done": true`) {
		t.Fatalf("/lb/sessions: %s", table)
	}
}

func TestClientResendFailoverWhenBufferOverflows(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	// ReplayMax negative: no balancer-side buffering at all — failover
	// must go through the client's watermark-probe + resend path.
	lb, ts := newTestBalancer(t, Options{ReplayMax: -1}, a, b)

	const id = "resend-sess"
	resp := postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 0, false, "hdr\nr1\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 0: %d %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()
	owner, other := a, b
	if lb.lookup(id).backend.url == b.ts.URL {
		owner, other = b, a
	}
	owner.ts.CloseClientConnections()
	owner.ts.Close()

	// The real client drives recovery end to end: 503 → backoff →
	// watermark probe (answered by the new pin: 0) → full resend.
	client := ingest.New(ingest.Options{
		BaseURL: ts.URL, Retries: 4, Backoff: time.Millisecond, Seed: 7,
		Sleep: func(time.Duration) {},
	})
	stats, err := client.Upload(context.Background(), id, ingest.ContentTypeJSONL, []byte("hdr\nr1\nr2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShedRetries == 0 {
		t.Fatalf("stats = %+v, expected shed retries through the failover", stats)
	}
	if got := strings.Join(other.records(id), "|"); got != "hdr|r1|r2" {
		t.Fatalf("survivor assembled %q", got)
	}
}

func TestDrainStopsNewSessionsWhileFailingOverPinned(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	lb, ts := newTestBalancer(t, Options{}, a, b)

	// Find a session pinned to a, then start it.
	var pinnedID string
	for i := 0; ; i++ {
		id := fmt.Sprintf("drain-%d", i)
		if lb.pick(id).url == a.ts.URL {
			pinnedID = id
			break
		}
	}
	resp := postChunk(t, ts.URL, pinnedID, ingest.ContentTypeJSONL, 0, false, "hdr\nr1\n")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk 0: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// a starts draining; the prober notices.
	a.setDraining(true)
	lb.probeAll()
	for _, be := range lb.backends {
		if be.url == a.ts.URL && be.State() != stateDraining {
			t.Fatalf("backend a state = %v, want draining", be.State())
		}
	}

	// New sessions — even ones HRW would pin to a — land on b.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("post-drain-%d", i)
		resp := postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 0, true, "hdr\n")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain session: %d", resp.StatusCode)
		}
		resp.Body.Close()
		if len(b.records(id)) == 0 {
			t.Fatalf("session %s not on surviving node", id)
		}
	}
	a.mu.Lock()
	aSessions := len(a.sessions)
	a.mu.Unlock()
	if aSessions != 1 {
		t.Fatalf("draining node accumulated %d sessions, want just the pre-drain one", aSessions)
	}

	// The pinned in-flight session finishes via failover replay.
	resp = postChunk(t, ts.URL, pinnedID, ingest.ContentTypeJSONL, 2, true, "r2\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned eos after drain: %d %s", resp.StatusCode, readBody(t, resp))
	}
	resp.Body.Close()
	if got := strings.Join(b.records(pinnedID), "|"); got != "hdr|r1|r2" {
		t.Fatalf("failed-over session assembled %q", got)
	}
}

func TestMetricsFederation(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	lb, ts := newTestBalancer(t, Options{}, a, b)
	for i, f := range []*fakeNode{a, b} {
		id := fmt.Sprintf("fed-%d", i)
		resp := postChunk(t, f.ts.URL, id, ingest.ContentTypeJSONL, 0, true, "hdr\nr1\n")
		resp.Body.Close()
	}

	text := readBody(t, mustGet(t, ts.URL+"/metrics"))
	errs, stats := obs.Lint(strings.NewReader(text))
	for _, e := range errs {
		t.Errorf("fleet exposition: %v", e)
	}
	if stats.Families == 0 {
		t.Fatal("empty fleet exposition")
	}
	if !strings.Contains(text, `dominod_node_info{node="a"} 1`) ||
		!strings.Contains(text, `dominod_node_info{node="b"} 1`) {
		t.Fatalf("per-node identity missing:\n%s", text)
	}
	if !strings.Contains(text, "dominod_records_total 4") {
		t.Fatalf("backend counters not summed (want 4 records fleet-wide):\n%s", text)
	}
	if !strings.Contains(text, `dominolb_backend_up{backend=`) {
		t.Fatalf("balancer health gauges missing:\n%s", text)
	}

	// The served document equals Merge(own snapshot, per-node parses).
	fleet, err := obs.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("fleet exposition does not re-parse: %v", err)
	}
	var nodeSnaps []obs.Snapshot
	for _, f := range []*fakeNode{a, b} {
		snap, err := obs.ParseText(strings.NewReader(readBody(t, mustGet(t, f.ts.URL+"/metrics"))))
		if err != nil {
			t.Fatal(err)
		}
		nodeSnaps = append(nodeSnaps, snap)
	}
	want, err := obs.Merge(nodeSnaps...)
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range want.Families {
		var got *obs.Family
		for i := range fleet.Families {
			if fleet.Families[i].Name == wf.Name {
				got = &fleet.Families[i]
				break
			}
		}
		if got == nil {
			t.Fatalf("family %s missing from fleet exposition", wf.Name)
		}
		gotText, wantText := renderFamily(t, *got), renderFamily(t, wf)
		if gotText != wantText {
			t.Fatalf("family %s diverges from Merge of node snapshots:\ngot:\n%s\nwant:\n%s", wf.Name, gotText, wantText)
		}
	}

	// A dead backend is skipped and counted, not fatal.
	b.ts.CloseClientConnections()
	b.ts.Close()
	for _, be := range lb.backends {
		if be.url == b.ts.URL {
			be.noteFailure(1)
		}
	}
	text = readBody(t, mustGet(t, ts.URL+"/metrics"))
	if errs, _ := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("degraded exposition fails lint: %v", errs)
	}
	if strings.Contains(text, `dominod_node_info{node="b"}`) {
		t.Fatal("dead backend still in fleet exposition")
	}
}

func renderFamily(t *testing.T, f obs.Family) string {
	t.Helper()
	var buf bytes.Buffer
	if err := (obs.Snapshot{Families: []obs.Family{f}}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestHealthzAggregation(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	lb, ts := newTestBalancer(t, Options{}, a, b)

	body := readBody(t, mustGet(t, ts.URL+"/healthz"))
	if !strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, `"node": "a"`) {
		t.Fatalf("healthz: %s", body)
	}

	a.setDraining(true)
	lb.probeAll()
	resp := mustGet(t, ts.URL+"/healthz")
	if body := readBody(t, resp); !strings.Contains(body, `"status": "degraded"`) || !strings.Contains(body, `"draining"`) {
		t.Fatalf("healthz with draining backend: %s", body)
	}

	b.ts.CloseClientConnections()
	b.ts.Close()
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
	for _, be := range lb.backends {
		if be.url == b.ts.URL {
			be.noteFailure(1)
		}
	}
	resp = mustGet(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no up backends: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestReportRoutesToOwner(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	_, ts := newTestBalancer(t, Options{}, a, b)
	const id = "report-sess"
	resp := postChunk(t, ts.URL, id, ingest.ContentTypeJSONL, 0, true, "hdr\nr1\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	direct := readBody(t, resp)
	viaLB := readBody(t, mustGet(t, ts.URL+"/report/"+id))
	if direct != viaLB {
		t.Fatalf("report via balancer differs:\ningest: %s\nreport: %s", direct, viaLB)
	}
	resp = mustGet(t, ts.URL+"/report/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown report: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
