package balancer

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// state is a backend's health as the balancer sees it.
type state int

const (
	// stateDown: unreachable or failing; excluded from routing and
	// sessions pinned here fail over.
	stateDown state = iota
	// stateUp: probing healthy; eligible for new sessions.
	stateUp
	// stateDraining: alive but shutting down — it answers reads and
	// finishes what it holds, but rejects new ingest, so the balancer
	// stops pinning sessions to it and fails pinned streams over on
	// their next chunk.
	stateDraining
)

func (s state) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// backend is one dominod node and its probe bookkeeping.
type backend struct {
	url string

	mu     sync.Mutex
	st     state
	fails  int    // consecutive failures (probe or data path)
	nodeID string // from /healthz, for attribution
}

func newBackend(url string) *backend {
	return &backend{url: url, st: stateDown}
}

// State reads the backend's current health.
func (be *backend) State() state {
	be.mu.Lock()
	defer be.mu.Unlock()
	return be.st
}

// NodeID is the node identity the backend last reported on /healthz.
func (be *backend) NodeID() string {
	be.mu.Lock()
	defer be.mu.Unlock()
	return be.nodeID
}

// noteFailure records one failed interaction (probe or proxied
// request). threshold consecutive failures mark the backend down.
// Returns true when this call transitioned it.
func (be *backend) noteFailure(threshold int) bool {
	be.mu.Lock()
	defer be.mu.Unlock()
	be.fails++
	if be.fails >= threshold && be.st != stateDown {
		be.st = stateDown
		return true
	}
	return false
}

// noteState records a successful probe verdict and resets the failure
// streak. Returns true when the state changed.
func (be *backend) noteState(st state, nodeID string) bool {
	be.mu.Lock()
	defer be.mu.Unlock()
	be.fails = 0
	if nodeID != "" {
		be.nodeID = nodeID
	}
	if be.st != st {
		be.st = st
		return true
	}
	return false
}

// probeLoop runs the active health checker until Close.
func (b *Balancer) probeLoop() {
	defer b.done.Done()
	t := time.NewTicker(b.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.probeAll()
		}
	}
}

// probeAll probes every backend once, in parallel.
func (b *Balancer) probeAll() {
	var wg sync.WaitGroup
	for _, be := range b.backends {
		wg.Add(1)
		go func(be *backend) {
			defer wg.Done()
			b.probe(be)
		}(be)
	}
	wg.Wait()
}

// probe hits one backend's /healthz and folds the verdict into its
// state machine: 200 → up, a 503 that self-reports "draining" →
// draining (the node is alive, just leaving), anything else —
// transport error, timeout, other status — counts toward the
// consecutive-failure threshold.
func (b *Balancer) probe(be *backend) {
	b.m.healthProbes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), b.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.url+"/healthz", nil)
	if err != nil {
		b.probeFailed(be, err.Error())
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		b.probeFailed(be, err.Error())
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
		Node   string `json:"node"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK:
		if be.noteState(stateUp, body.Node) {
			b.log.Info("backend up", "backend", be.url, "node", body.Node)
		}
	case resp.StatusCode == http.StatusServiceUnavailable && body.Status == "draining":
		if be.noteState(stateDraining, body.Node) {
			b.log.Info("backend draining", "backend", be.url, "node", body.Node)
		}
	default:
		b.probeFailed(be, resp.Status)
	}
}

func (b *Balancer) probeFailed(be *backend, why string) {
	b.m.probeFailures.Inc()
	if be.noteFailure(b.opts.FailThreshold) {
		b.log.Warn("backend down", "backend", be.url, "err", why)
	}
}
