package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 4, 5})
	if c.N() != 5 {
		t.Fatal("N")
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Fatal("min/max")
	}
	if c.Median() != 3 {
		t.Fatalf("median = %v", c.Median())
	}
	if c.Mean() != 3 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if got := c.At(2.5); got != 0.4 {
		t.Fatalf("At(2.5) = %v", got)
	}
	if got := c.At(5); got != 1 {
		t.Fatalf("At(max) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(below) = %v", got)
	}
}

func TestCDFQuantileInterpolates(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if c.Quantile(0) != 0 || c.Quantile(1) != 10 {
		t.Fatal("extremes")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) {
		t.Fatal("empty CDF should be NaN")
	}
	if c.At(1) != 0 {
		t.Fatal("empty At")
	}
	if c.Summary() != "n=0" {
		t.Fatal("empty summary")
	}
}

func TestSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	s := c.Series([]float64{0, 2, 5})
	if s[0][1] != 0 || s[1][1] != 0.5 || s[2][1] != 1 {
		t.Fatalf("series = %v", s)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace = %v", xs)
		}
	}
}

func TestLinSpace(t *testing.T) {
	xs := LinSpace(0, 10, 5)
	if len(xs) != 5 || xs[0] != 0 || xs[4] != 10 || xs[2] != 5 {
		t.Fatalf("LinSpace = %v", xs)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("cell", "median", "p99")
	tb.AddRow("amarisoft", 12.5, 300.1)
	tb.AddRow("mosolabs", 9.0, 80.0)
	s := tb.String()
	if !strings.Contains(s, "amarisoft") || !strings.Contains(s, "median") {
		t.Fatalf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("table has %d lines", len(lines))
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := c.Quantile(p)
			if q < prev-1e-9 || q < c.Min()-1e-9 || q > c.Max()+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
