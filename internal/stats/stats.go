// Package stats provides the small statistical toolkit the experiment
// harness uses to report paper figures: empirical CDFs, percentiles,
// and summary rows.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	return &CDF{sorted: cp}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile (p in [0,1]).
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := p * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range c.sorted {
		s += x
	}
	return s / float64(len(c.sorted))
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Summary renders a one-line percentile summary.
func (c *CDF) Summary() string {
	if c.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p10=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		c.N(), c.Quantile(0.10), c.Quantile(0.50), c.Quantile(0.90), c.Quantile(0.99), c.Max())
}

// Series samples the CDF at the given points, producing (x, P(X<=x))
// pairs — the exact data behind a paper CDF plot.
func (c *CDF) Series(points []float64) [][2]float64 {
	out := make([][2]float64, 0, len(points))
	for _, x := range points {
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// LogSpace returns n points log-spaced between lo and hi (inclusive),
// matching the log-x axes of Figs. 2 and 8.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo, hi}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := 0; i < n; i++ {
		out[i] = x
		x *= ratio
	}
	return out
}

// LinSpace returns n points linearly spaced between lo and hi.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// Table is a simple aligned-text table builder for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
