package core

// DefaultChainsText is the paper's Fig. 9 causal graph in DSL form.
//
// Six 5G root causes reach the WebRTC consequences through the delay
// intermediates. Capacity causes (poor channel, cross traffic) act
// through TBS reduction and buffer build-up; timing/reliability causes
// (UL scheduling, HARQ retx, RLC retx, RRC transitions) inflate delay
// directly. Forward (media-path) delay reaches all three consequences;
// reverse (RTCP-path) delay only reaches the pushback controller
// (Fig. 22). Root-to-sink paths: 6 causes × (3 forward + 1 reverse)
// = the paper's 24 causal chains.
const DefaultChainsText = `# Domino default causal graph (Fig. 9).
# Cause classes OR over per-direction features; consequence classes OR
# over the local/remote client.
alias poor_channel = ul_channel_degrades | dl_channel_degrades
alias cross_traffic = ul_cross_traffic | dl_cross_traffic
alias harq_retx = ul_harq_retx | dl_harq_retx
alias rlc_retx = ul_rlc_retx | dl_rlc_retx
alias tbs_down = ul_tbs_down | dl_tbs_down
alias rate_exceeds_tbs = ul_rate_exceeds_tbs | dl_rate_exceeds_tbs
alias jitter_buffer_drain = local_jitter_buffer_drain | remote_jitter_buffer_drain
alias gcc_overuse = local_gcc_overuse | remote_gcc_overuse
alias target_bitrate_down = local_target_bitrate_down | remote_target_bitrate_down
alias outstanding_bytes_up = local_outstanding_bytes_up | remote_outstanding_bytes_up
alias cwnd_full = local_cwnd_full | remote_cwnd_full
alias pushback_rate_down = local_pushback_rate_down | remote_pushback_rate_down

# Capacity causes: PHY rate loss -> buffer build-up -> delay.
poor_channel --> tbs_down --> rate_exceeds_tbs --> forward_delay_up
cross_traffic --> tbs_down --> rate_exceeds_tbs --> forward_delay_up
poor_channel --> tbs_down --> rate_exceeds_tbs --> reverse_delay_up
cross_traffic --> tbs_down --> rate_exceeds_tbs --> reverse_delay_up

# Timing/reliability causes: direct delay inflation.
ul_scheduling --> forward_delay_up
harq_retx --> forward_delay_up
rlc_retx --> forward_delay_up
rrc_state_change --> forward_delay_up
ul_scheduling --> reverse_delay_up
harq_retx --> reverse_delay_up
rlc_retx --> reverse_delay_up
rrc_state_change --> reverse_delay_up

# Delay consequences at the application.
forward_delay_up --> jitter_buffer_drain
forward_delay_up --> gcc_overuse --> target_bitrate_down
forward_delay_up --> outstanding_bytes_up --> cwnd_full --> pushback_rate_down
reverse_delay_up --> outstanding_bytes_up --> cwnd_full --> pushback_rate_down
`

// DefaultGraph parses DefaultChainsText; it panics on error because the
// embedded text is a compile-time constant validated by tests.
func DefaultGraph() *Graph {
	g, err := ParseChainsString(DefaultChainsText)
	if err != nil {
		panic("core: default chain text invalid: " + err.Error())
	}
	return g
}

// CauseClasses lists the paper's six cause classes in Fig. 10 order.
func CauseClasses() []string {
	return []string{"poor_channel", "cross_traffic", "ul_scheduling", "harq_retx", "rlc_retx", "rrc_state_change"}
}

// ConsequenceClasses lists the three consequence classes in Fig. 10
// order.
func ConsequenceClasses() []string {
	return []string{"jitter_buffer_drain", "target_bitrate_down", "pushback_rate_down"}
}
