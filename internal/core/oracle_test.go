package core_test

import (
	"bytes"
	"io"
	"testing"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// TestRollingEvalMatchesOracle is the rolling engine's differential
// pin: for every registered scenario, a WindowEvaluator driven exactly
// like the streaming analyzer drives it (observe, evict to the window
// start, evaluate monotonically advancing windows) must produce a
// feature vector byte-identical to the retained full-recompute oracle
// at every window position. One evaluator is recycled across scenarios
// via Reset, so the pooled-reuse path is pinned against the oracle
// too.
func TestRollingEvalMatchesOracle(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := analyzer.Config()
	const dur = 12 * sim.Second
	var eval *core.WindowEvaluator
	for i, name := range scenario.Names() {
		name := name
		seed := uint64(17 + i)
		t.Run(name, func(t *testing.T) {
			sc, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := sc.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			set := sess.Run(dur)
			if eval == nil {
				eval = analyzer.NewWindowEvaluator(set.HasGNBLog)
			} else {
				eval.Reset(set.HasGNBLog)
			}
			// Stream the set through the wire format so the evaluator
			// sees the time-merged record order a live session delivers.
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, set); err != nil {
				t.Fatal(err)
			}
			sr := trace.NewStreamReader(&buf)
			for {
				rec, err := sr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				eval.Observe(rec)
			}
			end := set.Duration - cfg.Window
			for start := sim.Time(0); start <= end; start += cfg.Step {
				eval.EvictBefore(start)
				got := eval.Eval(start)
				want := eval.EvalFull(start)
				if got != want {
					t.Fatalf("window [%v, %v) diverged:\nrolling: %v\noracle:  %v",
						start, start+cfg.Window, got.Active(), want.Active())
				}
			}
		})
	}
}

// TestRollingEvalCustomGeometry pins the rolling engine against the
// oracle under a non-default geometry that breaks the bucket alignment
// of the cached bin events (step not a multiple of the 100 ms rate bin
// or the 50 ms MCS group), forcing the full-recompute fallbacks, and
// under a shorter window with a coarser trend group.
func TestRollingEvalCustomGeometry(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  core.DetectorConfig
	}{
		{"unaligned-step", core.DetectorConfig{Window: 3 * sim.Second, Step: 330 * sim.Millisecond}},
		{"short-window", core.DetectorConfig{Window: 1500 * sim.Millisecond, Step: 250 * sim.Millisecond, TrendGroup: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			analyzer, err := core.NewAnalyzer(tc.cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			cfg := analyzer.Config()
			sc, err := scenario.ByName("worst-case-combined")
			if err != nil {
				t.Fatal(err)
			}
			sess, err := sc.Build(5)
			if err != nil {
				t.Fatal(err)
			}
			set := sess.Run(10 * sim.Second)
			eval := analyzer.NewWindowEvaluator(set.HasGNBLog)
			var buf bytes.Buffer
			if err := trace.WriteJSONL(&buf, set); err != nil {
				t.Fatal(err)
			}
			sr := trace.NewStreamReader(&buf)
			for {
				rec, err := sr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				eval.Observe(rec)
			}
			end := set.Duration - cfg.Window
			for start := sim.Time(0); start <= end; start += cfg.Step {
				eval.EvictBefore(start)
				got := eval.Eval(start)
				want := eval.EvalFull(start)
				if got != want {
					t.Fatalf("window [%v, %v) diverged:\nrolling: %v\noracle:  %v",
						start, start+cfg.Window, got.Active(), want.Active())
				}
			}
		})
	}
}
