package core

import (
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Each Table 5 event condition gets a focused unit test: build a
// minimal trace exhibiting (or just missing) the triggering pattern and
// evaluate one window.

func evalOne(t *testing.T, set *trace.Set) FeatureVector {
	t.Helper()
	set.Sort()
	cfg := DefaultDetectorConfig()
	ix := newIndexedTrace(set, cfg)
	v := ix.evalWindow(0)
	if full := ix.evalWindowFull(cfg, 0); full.Bits != v.Bits {
		t.Fatalf("rolling evaluation diverged from full recompute:\nrolling: %v\nfull:    %v",
			v.Active(), full.Active())
	}
	return v
}

// statsSeries builds a 5 s local stats series at 50 ms and lets the
// caller mutate each record.
func statsSeries(mut func(i int, r *trace.WebRTCStatsRecord)) *trace.Set {
	set := &trace.Set{Duration: 5 * sim.Second, HasGNBLog: true}
	n := 100
	for i := 0; i < n; i++ {
		r := trace.WebRTCStatsRecord{
			At: sim.Time(i) * 50 * sim.Millisecond, Local: true,
			InboundFPS: 30, OutboundFPS: 30, OutboundHeight: 540,
			VideoJBDelayMs: 100, TargetBitrateBps: 2e6, PushbackRateBps: 2e6,
			OutstandingBytes: 10000, CongestionWindow: 50000,
		}
		mut(i, &r)
		set.Stats = append(set.Stats, r)
	}
	return set
}

func TestEvent1InboundFPSDrop(t *testing.T) {
	// Max 30 before min 10: fires.
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 60 {
			r.InboundFPS = 10
		}
	}))
	if !v.Has("local_inbound_framerate_down") {
		t.Fatal("fps drop not detected")
	}
	// Low before high (recovery): must NOT fire (argmax < argmin rule).
	v = evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i < 40 {
			r.InboundFPS = 10
		}
	}))
	if v.Has("local_inbound_framerate_down") {
		t.Fatal("fps recovery misdetected as drop")
	}
	// Steady 30: no fire.
	v = evalOne(t, statsSeries(func(int, *trace.WebRTCStatsRecord) {}))
	if v.Has("local_inbound_framerate_down") {
		t.Fatal("steady fps misdetected")
	}
}

func TestEvent2OutboundFPSDrop(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 50 {
			r.OutboundFPS = 20
		}
	}))
	if !v.Has("local_outbound_framerate_down") {
		t.Fatal("outbound fps drop not detected")
	}
}

func TestEvent3ResolutionDown(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 50 {
			r.OutboundHeight = 360
		}
	}))
	if !v.Has("local_outbound_resolution_down") {
		t.Fatal("resolution drop not detected")
	}
	// An upgrade is not a downtrend.
	v = evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 50 {
			r.OutboundHeight = 720
		}
	}))
	if v.Has("local_outbound_resolution_down") {
		t.Fatal("resolution upgrade misdetected")
	}
}

func TestEvent4JitterBufferDrain(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i == 70 {
			r.VideoJBDelayMs = 0
		}
	}))
	if !v.Has("local_jitter_buffer_drain") {
		t.Fatal("drain not detected")
	}
	v = evalOne(t, statsSeries(func(int, *trace.WebRTCStatsRecord) {}))
	if v.Has("local_jitter_buffer_drain") {
		t.Fatal("healthy buffer misdetected as drained")
	}
}

func TestEvent5TargetBitrateDown(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 50 {
			r.TargetBitrateBps = 1.2e6 // −40%
		}
	}))
	if !v.Has("local_target_bitrate_down") {
		t.Fatal("target drop not detected")
	}
	// Sub-epsilon noise (±1%) must not fire.
	v = evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i%2 == 0 {
			r.TargetBitrateBps = 1.99e6
		}
	}))
	if v.Has("local_target_bitrate_down") {
		t.Fatal("estimator noise misdetected as drop")
	}
}

func TestEvent6GCCOveruse(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i == 42 {
			r.GCCNetState = trace.GCCOveruse
		}
	}))
	if !v.Has("local_gcc_overuse") {
		t.Fatal("overuse entry not detected")
	}
}

func TestEvent7PushbackDown(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 60 {
			r.PushbackRateBps = 1e6
		}
	}))
	if !v.Has("local_pushback_rate_down") {
		t.Fatal("pushback drop not detected")
	}
}

func TestEvent8CwndFull(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i == 30 {
			r.OutstandingBytes = 60000 // > 50000 window
		}
	}))
	if !v.Has("local_cwnd_full") {
		t.Fatal("full window not detected")
	}
}

func TestEvent9OutstandingUp(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		r.OutstandingBytes = 10000 + i*400 // steady climb
	}))
	if !v.Has("local_outstanding_bytes_up") {
		t.Fatal("outstanding uptrend not detected")
	}
	v = evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		r.OutstandingBytes = 50000 - i*400 // steady fall
	}))
	if v.Has("local_outstanding_bytes_up") {
		t.Fatal("downtrend misdetected as uptrend")
	}
}

func TestEvent10PushbackNeqTarget(t *testing.T) {
	v := evalOne(t, statsSeries(func(i int, r *trace.WebRTCStatsRecord) {
		if i > 80 {
			r.PushbackRateBps = r.TargetBitrateBps * 0.7
		}
	}))
	if !v.Has("local_pushback_neq_target") {
		t.Fatal("pushback≠target not detected")
	}
}

// packetSeries builds a 5 s media+RTCP packet series with a delay
// profile per kind.
func packetSeries(mediaDelay, rtcpDelay func(i int) sim.Time) *trace.Set {
	set := &trace.Set{Duration: 5 * sim.Second}
	seq := uint64(0)
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		seq++
		set.Packets = append(set.Packets, trace.PacketRecord{
			Seq: seq, Kind: netem.KindVideo, Dir: netem.Uplink, Size: 1200,
			SentAt: at, Arrived: at + mediaDelay(i),
		})
		if i%10 == 0 {
			seq++
			set.Packets = append(set.Packets, trace.PacketRecord{
				Seq: seq, Kind: netem.KindRTCP, Dir: netem.Downlink, Size: 100,
				SentAt: at, Arrived: at + rtcpDelay(i),
			})
		}
	}
	return set
}

func TestEvent11ForwardDelayUp(t *testing.T) {
	flat := func(int) sim.Time { return 30 * sim.Millisecond }
	ramp := func(i int) sim.Time { return 30*sim.Millisecond + sim.Time(i)*400*sim.Microsecond }
	v := evalOne(t, packetSeries(ramp, flat))
	if !v.Has(FForwardDelayUp) {
		t.Fatal("forward ramp not detected")
	}
	if v.Has(FReverseDelayUp) {
		t.Fatal("flat reverse misdetected")
	}
	// Uptrend but below the 80 ms gate: no fire.
	smallRamp := func(i int) sim.Time { return 30*sim.Millisecond + sim.Time(i)*50*sim.Microsecond }
	v = evalOne(t, packetSeries(smallRamp, flat))
	if v.Has(FForwardDelayUp) {
		t.Fatal("sub-threshold ramp misdetected (max < 80 ms)")
	}
}

func TestEvent12ReverseDelayUp(t *testing.T) {
	flat := func(int) sim.Time { return 30 * sim.Millisecond }
	// RTCP sampled every 10th packet: 50 samples; need ≥ 2 groups of 10.
	ramp := func(i int) sim.Time { return 30*sim.Millisecond + sim.Time(i)*2*sim.Millisecond }
	v := evalOne(t, packetSeries(flat, ramp))
	if !v.Has(FReverseDelayUp) {
		t.Fatal("reverse ramp not detected")
	}
	if v.Has(FForwardDelayUp) {
		t.Fatal("flat forward misdetected")
	}
}

// dciSeries builds a 5 s DCI series for the uplink and lets the caller
// mutate each record.
func dciSeries(mut func(i int, r *trace.DCIRecord)) *trace.Set {
	set := &trace.Set{Duration: 5 * sim.Second, HasGNBLog: true}
	for i := 0; i < 2000; i++ {
		r := trace.DCIRecord{
			At: sim.Time(i) * 2500 * sim.Microsecond, Dir: netem.Uplink,
			RNTI: 50, OwnPRB: 20, MCS: 20, TBSBits: 20000,
		}
		mut(i, &r)
		set.DCI = append(set.DCI, r)
	}
	return set
}

func TestEvent13TBSDown(t *testing.T) {
	v := evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		if i > 1000 {
			r.TBSBits = 5000 // < 0.8 × 20000
		}
	}))
	if !v.Has("ul_tbs_down") {
		t.Fatal("TBS drop not detected")
	}
	// Rise (min before max): no fire.
	v = evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		if i < 1000 {
			r.TBSBits = 5000
		}
	}))
	if v.Has("ul_tbs_down") {
		t.Fatal("TBS recovery misdetected as drop")
	}
}

func TestEvent14RateExceedsTBS(t *testing.T) {
	// App sends 1200 B per 10 ms (~960 kbit/s) while the PHY allocates
	// almost nothing for the second half of the window.
	set := dciSeries(func(i int, r *trace.DCIRecord) {
		if i > 1000 {
			r.TBSBits = 24
		}
	})
	seq := uint64(0)
	for i := 0; i < 500; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		seq++
		set.Packets = append(set.Packets, trace.PacketRecord{
			Seq: seq, Kind: netem.KindVideo, Dir: netem.Uplink, Size: 1200,
			SentAt: at, Arrived: at + 30*sim.Millisecond,
		})
	}
	v := evalOne(t, set)
	if !v.Has("ul_rate_exceeds_tbs") {
		t.Fatal("app-rate-exceeds-TBS not detected")
	}
}

func TestEvent15CrossTraffic(t *testing.T) {
	v := evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		r.OtherPRB = 10 // 50% of own 20
	}))
	if !v.Has("ul_cross_traffic") {
		t.Fatal("cross traffic not detected")
	}
	v = evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		r.OtherPRB = 1 // 5% < 20% threshold
	}))
	if v.Has("ul_cross_traffic") {
		t.Fatal("light cross traffic misdetected")
	}
}

func TestEvent16ChannelDegrades(t *testing.T) {
	// The paper's rule requires a *persistently* poor channel: the 90th
	// percentile of 50 ms group medians below 20 (so nearly the whole
	// window is degraded) plus more than 10 groups with median < 10.
	// This is why poor_channel detections concentrate on the Amarisoft
	// cell's persistently weak uplink.
	v := evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		r.MCS = 8 // persistently low
		if i%3 == 0 {
			r.MCS = 4
		}
	}))
	if !v.Has("ul_channel_degrades") {
		t.Fatal("persistently poor channel not detected")
	}
	// A 1.5 s dip inside an otherwise-healthy window does NOT satisfy
	// the p90 gate: most group medians are still healthy.
	v = evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		r.MCS = 25
		if i > 1000 && i < 1600 {
			r.MCS = 3
		}
	}))
	if v.Has("ul_channel_degrades") {
		t.Fatal("brief dip misdetected as persistent degradation")
	}
}

func TestEvent17HARQRetx(t *testing.T) {
	v := evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		if i%100 == 0 { // 20 retx in window > 10 threshold
			r.HARQRetx = true
		}
	}))
	if !v.Has("ul_harq_retx") {
		t.Fatal("HARQ retx burst not detected")
	}
	v = evalOne(t, dciSeries(func(i int, r *trace.DCIRecord) {
		if i == 7 { // a single retx is normal operation
			r.HARQRetx = true
		}
	}))
	if v.Has("ul_harq_retx") {
		t.Fatal("single HARQ retx misdetected")
	}
}

func TestEvent18RLCRetx(t *testing.T) {
	set := dciSeries(func(int, *trace.DCIRecord) {})
	set.GNBLogs = append(set.GNBLogs, trace.GNBLogRecord{
		At: 2 * sim.Second, Kind: trace.GNBLogRLCRetx, Dir: netem.Uplink,
	})
	v := evalOne(t, set)
	if !v.Has("ul_rlc_retx") {
		t.Fatal("RLC retx log entry not detected")
	}
}

func TestEvent18RLCRetxGatedByGNBLog(t *testing.T) {
	// A commercial trace (no gNB log) must not detect RLC retx even if
	// the simulator annotated DCI records.
	set := dciSeries(func(i int, r *trace.DCIRecord) {
		if i == 500 {
			r.RLCRetx = true
		}
	})
	set.HasGNBLog = false
	v := evalOne(t, set)
	if v.Has("ul_rlc_retx") {
		t.Fatal("RLC retx detected without gNB logs (commercial cells cannot)")
	}
	// With gNB logs the same annotation counts.
	set2 := dciSeries(func(i int, r *trace.DCIRecord) {
		if i == 500 {
			r.RLCRetx = true
		}
	})
	v = evalOne(t, set2)
	if !v.Has("ul_rlc_retx") {
		t.Fatal("RLC retx missed on a private-cell trace")
	}
}

func TestEvent19ULScheduling(t *testing.T) {
	v := evalOne(t, dciSeries(func(int, *trace.DCIRecord) {}))
	if !v.Has(FULScheduling) {
		t.Fatal("uplink transmissions present but ul_scheduling false")
	}
	empty := &trace.Set{Duration: 5 * sim.Second}
	v = evalOne(t, empty)
	if v.Has(FULScheduling) {
		t.Fatal("ul_scheduling true with no uplink activity")
	}
}

func TestEvent20RRCChange(t *testing.T) {
	set := dciSeries(func(int, *trace.DCIRecord) {})
	set.RRC = append(set.RRC, trace.RRCRecord{At: sim.Second, Connected: false})
	v := evalOne(t, set)
	if !v.Has(FRRCChange) {
		t.Fatal("RRC change not detected")
	}
}

func TestRemoteSideEventsIndependent(t *testing.T) {
	// A remote-only drain must set remote_ and not local_.
	set := &trace.Set{Duration: 5 * sim.Second}
	for i := 0; i < 100; i++ {
		at := sim.Time(i) * 50 * sim.Millisecond
		local := trace.WebRTCStatsRecord{At: at, Local: true, VideoJBDelayMs: 100, InboundFPS: 30, OutboundFPS: 30, OutboundHeight: 540, TargetBitrateBps: 1e6, PushbackRateBps: 1e6, CongestionWindow: 1000}
		remote := local
		remote.Local = false
		if i == 50 {
			remote.VideoJBDelayMs = 0
		}
		set.Stats = append(set.Stats, local, remote)
	}
	v := evalOne(t, set)
	if !v.Has("remote_jitter_buffer_drain") {
		t.Fatal("remote drain missed")
	}
	if v.Has("local_jitter_buffer_drain") {
		t.Fatal("local side contaminated by remote event")
	}
}

func TestDetectorConfigNormalize(t *testing.T) {
	cfg := DetectorConfig{}.normalize()
	def := DefaultDetectorConfig()
	if cfg != def {
		t.Fatalf("zero config did not normalize to defaults:\n%+v\n%+v", cfg, def)
	}
	custom := DetectorConfig{Window: 2 * sim.Second, HARQCount: 50}.normalize()
	if custom.Window != 2*sim.Second || custom.HARQCount != 50 {
		t.Fatal("explicit fields overwritten")
	}
	if custom.Step != def.Step {
		t.Fatal("unset fields not defaulted")
	}
}
