package core

import (
	"sort"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// indexedTrace holds a trace as binary-searchable per-source series so
// window evaluation is O(window) instead of O(trace). It is built in
// one shot from a full Set (batch analysis) or grown record-by-record
// and pruned from the front (streaming analysis) — evalWindow works
// identically on both because it only ever reads the [start, end)
// slice of each series.
//
// Alongside the raw series it maintains rolling aggregates so that
// evaluating the next window position costs O(samples-in-step) for the
// count/sum/extrema-shaped event conditions instead of re-scanning the
// full window:
//
//   - cumulative count/sum arrays parallel to each series (window
//     aggregate = two array reads after the binary search);
//   - monotonic min/max deques for the argmax-before-argmin conditions
//     (events 1–2, 13), fed by per-series cursors as windows advance;
//   - per-time-bucket caches for the bin-shaped conditions (events 14
//     and 16), with bucket medians computed once per completed bucket.
//
// The cursor-fed structures assume evalWindow is called with
// non-decreasing window starts (the only access pattern batch and
// streaming analysis produce). evalWindowFull is the retained
// position-independent recompute path, pinned equal by differential
// tests.
type indexedTrace struct {
	cfg       DetectorConfig // normalized; ingest-time thresholds
	hasGNBLog bool

	// Media (forward) and RTCP (reverse) delay series, both directions
	// merged, ordered by send time.
	fwdAt    []sim.Time
	fwdDelay []float64 // ms
	revAt    []sim.Time
	revDelay []float64

	// Cumulative count of delay samples above cfg.DelayUpMs.
	fwdCumHigh []int32
	revCumHigh []int32

	// Per-direction app send rate accounting: media bytes by send time.
	appAt    [2][]sim.Time
	appBytes [2][]int

	// Per-direction DCI-derived series ordered by time.
	dciAt    [2][]sim.Time
	dciOwn   [2][]int // own-UE PRBs
	dciOther [2][]int // other-UE PRBs
	dciMCS   [2][]int
	dciTBS   [2][]int  // bits
	dciHARQ  [2][]bool // HARQ retx flag
	dciULUse [2][]bool // own transmission

	// Cumulative DCI aggregates: PRB sums, HARQ-retx and own-use counts.
	dciCumOwn   [2][]int64
	dciCumOther [2][]int64
	dciCumHARQ  [2][]int32
	dciCumULUse [2][]int32

	// RLC retx events (gNB log), per direction.
	rlcAt [2][]sim.Time

	// RNTI change times.
	rrcAt []sim.Time

	// Stats per side ordered by time.
	statsAt  [2][]sim.Time
	stats    [2][]trace.WebRTCStatsRecord
	statsCum [2]statsCums

	roll    rollState
	scratch evalScratch
}

// statsCums holds cumulative flag counts over one side's stats series:
// cum[i] counts samples (or adjacent pairs, attributed to the later
// index) matching the condition over series[0..i].
type statsCums struct {
	resDown    []int32 // pair: outbound height decreased
	drain      []int32 // jitter buffer at or below drain threshold
	overuse    []int32 // GCC overuse state
	cwndFull   []int32 // outstanding exceeds congestion window
	pushNeq    []int32 // pushback below target by the configured fraction
	targetDrop []int32 // pair: relative target-bitrate drop
	pushDrop   []int32 // pair: relative pushback-rate drop
}

// evalScratch holds reusable per-evaluation buffers.
type evalScratch struct {
	medians []float64
}

func sideIdx(local bool) int {
	if local {
		return 0
	}
	return 1
}

func dirIdx(d netem.Direction) int {
	if d == netem.Uplink {
		return 0
	}
	return 1
}

// newIndexedTrace builds the index for the given (normalized) detector
// configuration. The set must be sorted.
func newIndexedTrace(set *trace.Set, cfg DetectorConfig) *indexedTrace {
	ix := &indexedTrace{cfg: cfg, hasGNBLog: set.HasGNBLog}
	ix.roll.init(cfg)
	for _, p := range set.Packets {
		ix.addPacket(p)
	}
	for _, r := range set.DCI {
		ix.addDCI(r)
	}
	for _, g := range set.GNBLogs {
		ix.addGNB(g)
	}
	// Batch construction appends DCI-flagged and gNB-logged RLC retx
	// separately, so the merged series needs a sort; incremental
	// construction receives records time-merged and stays sorted.
	for i := range ix.rlcAt {
		sort.Slice(ix.rlcAt[i], func(a, b int) bool { return ix.rlcAt[i][a] < ix.rlcAt[i][b] })
	}
	for _, r := range set.RRC {
		ix.addRRC(r)
	}
	for _, s := range set.Stats {
		ix.addStats(s)
	}
	return ix
}

// reset empties every series and rolling structure in place, keeping
// the allocated capacity — the pooling path for fleet-scale reuse.
func (ix *indexedTrace) reset(hasGNBLog bool) {
	ix.hasGNBLog = hasGNBLog
	ix.fwdAt = ix.fwdAt[:0]
	ix.fwdDelay = ix.fwdDelay[:0]
	ix.fwdCumHigh = ix.fwdCumHigh[:0]
	ix.revAt = ix.revAt[:0]
	ix.revDelay = ix.revDelay[:0]
	ix.revCumHigh = ix.revCumHigh[:0]
	for di := 0; di < 2; di++ {
		ix.appAt[di] = ix.appAt[di][:0]
		ix.appBytes[di] = ix.appBytes[di][:0]
		ix.dciAt[di] = ix.dciAt[di][:0]
		ix.dciOwn[di] = ix.dciOwn[di][:0]
		ix.dciOther[di] = ix.dciOther[di][:0]
		ix.dciMCS[di] = ix.dciMCS[di][:0]
		ix.dciTBS[di] = ix.dciTBS[di][:0]
		ix.dciHARQ[di] = ix.dciHARQ[di][:0]
		ix.dciULUse[di] = ix.dciULUse[di][:0]
		ix.dciCumOwn[di] = ix.dciCumOwn[di][:0]
		ix.dciCumOther[di] = ix.dciCumOther[di][:0]
		ix.dciCumHARQ[di] = ix.dciCumHARQ[di][:0]
		ix.dciCumULUse[di] = ix.dciCumULUse[di][:0]
		ix.rlcAt[di] = ix.rlcAt[di][:0]
	}
	ix.rrcAt = ix.rrcAt[:0]
	for si := 0; si < 2; si++ {
		ix.statsAt[si] = ix.statsAt[si][:0]
		ix.stats[si] = ix.stats[si][:0]
		c := &ix.statsCum[si]
		c.resDown = c.resDown[:0]
		c.drain = c.drain[:0]
		c.overuse = c.overuse[:0]
		c.cwndFull = c.cwndFull[:0]
		c.pushNeq = c.pushNeq[:0]
		c.targetDrop = c.targetDrop[:0]
		c.pushDrop = c.pushDrop[:0]
	}
	ix.roll.reset()
}

func (ix *indexedTrace) addPacket(p trace.PacketRecord) {
	if p.Kind == netem.KindRTCP {
		d := p.Delay().Milliseconds()
		ix.revAt = append(ix.revAt, p.SentAt)
		ix.revDelay = append(ix.revDelay, d)
		ix.revCumHigh = appendCum32(ix.revCumHigh, ix.delayHigh(d))
		return
	}
	if p.Kind == netem.KindCross {
		return
	}
	di := dirIdx(p.Dir)
	d := p.Delay().Milliseconds()
	ix.fwdAt = append(ix.fwdAt, p.SentAt)
	ix.fwdDelay = append(ix.fwdDelay, d)
	ix.fwdCumHigh = appendCum32(ix.fwdCumHigh, ix.delayHigh(d))
	ix.appAt[di] = append(ix.appAt[di], p.SentAt)
	ix.appBytes[di] = append(ix.appBytes[di], p.Size)
}

func (ix *indexedTrace) addDCI(r trace.DCIRecord) {
	di := dirIdx(r.Dir)
	ix.dciAt[di] = append(ix.dciAt[di], r.At)
	ix.dciOwn[di] = append(ix.dciOwn[di], r.OwnPRB)
	ix.dciOther[di] = append(ix.dciOther[di], r.OtherPRB)
	ix.dciMCS[di] = append(ix.dciMCS[di], r.MCS)
	tbs := 0
	if r.OwnPRB > 0 {
		tbs = r.TBSBits
	}
	ix.dciTBS[di] = append(ix.dciTBS[di], tbs)
	ix.dciHARQ[di] = append(ix.dciHARQ[di], r.HARQRetx)
	ix.dciULUse[di] = append(ix.dciULUse[di], r.OwnPRB > 0)
	ix.dciCumOwn[di] = appendCumSum64(ix.dciCumOwn[di], int64(r.OwnPRB))
	ix.dciCumOther[di] = appendCumSum64(ix.dciCumOther[di], int64(r.OtherPRB))
	ix.dciCumHARQ[di] = appendCum32(ix.dciCumHARQ[di], r.HARQRetx)
	ix.dciCumULUse[di] = appendCum32(ix.dciCumULUse[di], r.OwnPRB > 0)
	// The DCI RLC-retx annotation is gNB-internal knowledge: only
	// private cells with base-station logs expose it (the paper's
	// commercial cells detect no RLC retx for exactly this reason).
	if r.RLCRetx && ix.hasGNBLog {
		ix.rlcAt[di] = append(ix.rlcAt[di], r.At)
	}
}

func (ix *indexedTrace) addGNB(g trace.GNBLogRecord) {
	if g.Kind == trace.GNBLogRLCRetx {
		di := dirIdx(g.Dir)
		ix.rlcAt[di] = append(ix.rlcAt[di], g.At)
	}
}

func (ix *indexedTrace) addRRC(r trace.RRCRecord) {
	ix.rrcAt = append(ix.rrcAt, r.At)
}

func (ix *indexedTrace) addStats(s trace.WebRTCStatsRecord) {
	si := sideIdx(s.Local)
	i := len(ix.stats[si])
	ix.statsAt[si] = append(ix.statsAt[si], s.At)
	ix.stats[si] = append(ix.stats[si], s)
	ix.appendStatsCums(si, i)
}

// statsFlagSet holds one stats record's per-sample condition flags —
// the single definition both the append path and the out-of-order
// rebuild path count from.
type statsFlagSet struct {
	resDown, drain, overuse, cwndFull, pushNeq, targetDrop, pushDrop bool
}

// statsFlags evaluates the flag conditions for record r with (possibly
// nil) predecessor p; pair conditions are attributed to the later
// record.
func (ix *indexedTrace) statsFlags(r, p *trace.WebRTCStatsRecord) statsFlagSet {
	cfg := &ix.cfg
	return statsFlagSet{
		resDown:    p != nil && r.OutboundHeight < p.OutboundHeight,
		drain:      r.VideoJBDelayMs <= cfg.JBDrainMs,
		overuse:    r.GCCNetState == trace.GCCOveruse,
		cwndFull:   r.CongestionWindow > 0 && r.OutstandingBytes > r.CongestionWindow,
		pushNeq:    r.PushbackRateBps < r.TargetBitrateBps*(1-cfg.PushbackNeqFrac),
		targetDrop: p != nil && p.TargetBitrateBps > 0 && r.TargetBitrateBps < p.TargetBitrateBps*(1-cfg.RelDrop),
		pushDrop:   p != nil && p.PushbackRateBps > 0 && r.PushbackRateBps < p.PushbackRateBps*(1-cfg.RelDrop),
	}
}

// delayHigh is the event 11–12 threshold flag, shared between the
// append path and the out-of-order rebuild path.
func (ix *indexedTrace) delayHigh(d float64) bool { return d > ix.cfg.DelayUpMs }

// appendStatsCums extends side si's cumulative flag counts for the
// record at index i (which must be the last one).
func (ix *indexedTrace) appendStatsCums(si, i int) {
	c := &ix.statsCum[si]
	var p *trace.WebRTCStatsRecord
	if i > 0 {
		p = &ix.stats[si][i-1]
	}
	f := ix.statsFlags(&ix.stats[si][i], p)
	c.resDown = appendCum32(c.resDown, f.resDown)
	c.drain = appendCum32(c.drain, f.drain)
	c.overuse = appendCum32(c.overuse, f.overuse)
	c.cwndFull = appendCum32(c.cwndFull, f.cwndFull)
	c.pushNeq = appendCum32(c.pushNeq, f.pushNeq)
	c.targetDrop = appendCum32(c.targetDrop, f.targetDrop)
	c.pushDrop = appendCum32(c.pushDrop, f.pushDrop)
}

// appendCum32 extends a cumulative count array by one flag.
func appendCum32(cum []int32, flag bool) []int32 {
	var prev int32
	if n := len(cum); n > 0 {
		prev = cum[n-1]
	}
	if flag {
		prev++
	}
	return append(cum, prev)
}

// appendCumSum64 extends a cumulative sum array by one value.
func appendCumSum64(cum []int64, v int64) []int64 {
	var prev int64
	if n := len(cum); n > 0 {
		prev = cum[n-1]
	}
	return append(cum, prev+v)
}

// cum32 returns the flag count over series indices [lo, hi).
func cum32(cum []int32, lo, hi int) int {
	if hi <= lo {
		return 0
	}
	v := cum[hi-1]
	if lo > 0 {
		v -= cum[lo-1]
	}
	return int(v)
}

// cum64 returns the value sum over series indices [lo, hi).
func cum64(cum []int64, lo, hi int) int64 {
	if hi <= lo {
		return 0
	}
	v := cum[hi-1]
	if lo > 0 {
		v -= cum[lo-1]
	}
	return v
}

// evictBefore drops every sample with timestamp < cut, compacting each
// series in place so the backing arrays stay sized to the window
// high-water mark instead of growing with the trace. Cumulative arrays
// are rebased and the rolling cursors shifted alongside.
func (ix *indexedTrace) evictBefore(cut sim.Time) {
	lo := cutIndex(ix.fwdAt, cut)
	ix.fwdAt = shiftS(ix.fwdAt, lo)
	ix.fwdDelay = shiftS(ix.fwdDelay, lo)
	ix.fwdCumHigh = shiftCum32(ix.fwdCumHigh, lo)

	lo = cutIndex(ix.revAt, cut)
	ix.revAt = shiftS(ix.revAt, lo)
	ix.revDelay = shiftS(ix.revDelay, lo)
	ix.revCumHigh = shiftCum32(ix.revCumHigh, lo)

	for di := 0; di < 2; di++ {
		lo = cutIndex(ix.appAt[di], cut)
		ix.appAt[di] = shiftS(ix.appAt[di], lo)
		ix.appBytes[di] = shiftS(ix.appBytes[di], lo)
		ix.roll.appCur[di] = cursorShift(ix.roll.appCur[di], lo)

		lo = cutIndex(ix.dciAt[di], cut)
		ix.dciAt[di] = shiftS(ix.dciAt[di], lo)
		ix.dciOwn[di] = shiftS(ix.dciOwn[di], lo)
		ix.dciOther[di] = shiftS(ix.dciOther[di], lo)
		ix.dciMCS[di] = shiftS(ix.dciMCS[di], lo)
		ix.dciTBS[di] = shiftS(ix.dciTBS[di], lo)
		ix.dciHARQ[di] = shiftS(ix.dciHARQ[di], lo)
		ix.dciULUse[di] = shiftS(ix.dciULUse[di], lo)
		ix.dciCumOwn[di] = shiftCum64(ix.dciCumOwn[di], lo)
		ix.dciCumOther[di] = shiftCum64(ix.dciCumOther[di], lo)
		ix.dciCumHARQ[di] = shiftCum32(ix.dciCumHARQ[di], lo)
		ix.dciCumULUse[di] = shiftCum32(ix.dciCumULUse[di], lo)
		ix.roll.dciCur[di] = cursorShift(ix.roll.dciCur[di], lo)

		lo = cutIndex(ix.rlcAt[di], cut)
		ix.rlcAt[di] = shiftS(ix.rlcAt[di], lo)
	}

	lo = cutIndex(ix.rrcAt, cut)
	ix.rrcAt = shiftS(ix.rrcAt, lo)

	for si := 0; si < 2; si++ {
		lo = cutIndex(ix.statsAt[si], cut)
		ix.statsAt[si] = shiftS(ix.statsAt[si], lo)
		ix.stats[si] = shiftS(ix.stats[si], lo)
		c := &ix.statsCum[si]
		c.resDown = shiftCum32(c.resDown, lo)
		c.drain = shiftCum32(c.drain, lo)
		c.overuse = shiftCum32(c.overuse, lo)
		c.cwndFull = shiftCum32(c.cwndFull, lo)
		c.pushNeq = shiftCum32(c.pushNeq, lo)
		c.targetDrop = shiftCum32(c.targetDrop, lo)
		c.pushDrop = shiftCum32(c.pushDrop, lo)
		ix.roll.statsCur[si] = cursorShift(ix.roll.statsCur[si], lo)
	}
}

// cutIndex returns the number of leading samples with timestamp < cut.
func cutIndex(at []sim.Time, cut sim.Time) int {
	return sort.Search(len(at), func(i int) bool { return at[i] >= cut })
}

// shiftS drops the first lo elements of a series in place.
func shiftS[T any](s []T, lo int) []T {
	if lo == 0 {
		return s
	}
	n := copy(s, s[lo:])
	return s[:n]
}

// shiftCum32 drops the first lo entries of a cumulative array, rebasing
// the remainder so cum[i] again aggregates from the new first sample.
// The flag of a former pair condition at the new index 0 may reference
// an evicted predecessor; window queries only ever read pairs from
// index lo+1 on, so the stale contribution cancels out of every range.
func shiftCum32(cum []int32, lo int) []int32 {
	if lo == 0 {
		return cum
	}
	base := cum[lo-1]
	n := copy(cum, cum[lo:])
	cum = cum[:n]
	for i := range cum {
		cum[i] -= base
	}
	return cum
}

func shiftCum64(cum []int64, lo int) []int64 {
	if lo == 0 {
		return cum
	}
	base := cum[lo-1]
	n := copy(cum, cum[lo:])
	cum = cum[:n]
	for i := range cum {
		cum[i] -= base
	}
	return cum
}

// cursorShift moves a rolling consume cursor left with its series.
// Every evicted sample was already consumed (eviction cuts below the
// last evaluated window end), so the cursor never goes negative on the
// analysis paths; the clamp keeps a stray early eviction harmless.
func cursorShift(cur, lo int) int {
	if cur < lo {
		return 0
	}
	return cur - lo
}

// bubbleLast restores sortedness after one sample was appended to a
// time series, swapping the parallel value arrays alongside and
// returning the insertion position. The walk is O(displacement), which
// a streaming caller bounds by its lateness slack; for in-order input
// it is a single comparison.
func bubbleLast(at []sim.Time, swap func(i, j int)) int {
	i := len(at) - 1
	for ; i > 0 && at[i] < at[i-1]; i-- {
		at[i], at[i-1] = at[i-1], at[i]
		if swap != nil {
			swap(i, i-1)
		}
	}
	return i
}

// restoreOrderPacket re-sorts the tail of the packet-derived series
// after an out-of-order (but within-lateness) streamed packet and
// repairs the cumulative arrays from the insertion point.
func (ix *indexedTrace) restoreOrderPacket(p trace.PacketRecord) {
	if p.Kind == netem.KindRTCP {
		pos := bubbleLast(ix.revAt, func(i, j int) {
			ix.revDelay[i], ix.revDelay[j] = ix.revDelay[j], ix.revDelay[i]
		})
		ix.rebuildDelayCum(ix.revDelay, ix.revCumHigh, pos)
		return
	}
	if p.Kind == netem.KindCross {
		return
	}
	di := dirIdx(p.Dir)
	pos := bubbleLast(ix.fwdAt, func(i, j int) {
		ix.fwdDelay[i], ix.fwdDelay[j] = ix.fwdDelay[j], ix.fwdDelay[i]
	})
	ix.rebuildDelayCum(ix.fwdDelay, ix.fwdCumHigh, pos)
	bubbleLast(ix.appAt[di], func(i, j int) {
		ix.appBytes[di][i], ix.appBytes[di][j] = ix.appBytes[di][j], ix.appBytes[di][i]
	})
}

// rebuildDelayCum recomputes a delay threshold-count array from pos on.
func (ix *indexedTrace) rebuildDelayCum(delay []float64, cum []int32, pos int) {
	if pos == len(delay)-1 {
		return // appended in order; already extended by addPacket
	}
	var prev int32
	if pos > 0 {
		prev = cum[pos-1]
	}
	for i := pos; i < len(delay); i++ {
		if ix.delayHigh(delay[i]) {
			prev++
		}
		cum[i] = prev
	}
}

// restoreOrderDCI re-sorts the tail of the DCI-derived series.
func (ix *indexedTrace) restoreOrderDCI(r trace.DCIRecord) {
	di := dirIdx(r.Dir)
	pos := bubbleLast(ix.dciAt[di], func(i, j int) {
		ix.dciOwn[di][i], ix.dciOwn[di][j] = ix.dciOwn[di][j], ix.dciOwn[di][i]
		ix.dciOther[di][i], ix.dciOther[di][j] = ix.dciOther[di][j], ix.dciOther[di][i]
		ix.dciMCS[di][i], ix.dciMCS[di][j] = ix.dciMCS[di][j], ix.dciMCS[di][i]
		ix.dciTBS[di][i], ix.dciTBS[di][j] = ix.dciTBS[di][j], ix.dciTBS[di][i]
		ix.dciHARQ[di][i], ix.dciHARQ[di][j] = ix.dciHARQ[di][j], ix.dciHARQ[di][i]
		ix.dciULUse[di][i], ix.dciULUse[di][j] = ix.dciULUse[di][j], ix.dciULUse[di][i]
	})
	if pos != len(ix.dciAt[di])-1 {
		ix.rebuildDCICums(di, pos)
	}
	bubbleLast(ix.rlcAt[di], nil)
}

// rebuildDCICums recomputes direction di's cumulative arrays from pos.
func (ix *indexedTrace) rebuildDCICums(di, pos int) {
	var pOwn, pOther int64
	var pHARQ, pUse int32
	if pos > 0 {
		pOwn = ix.dciCumOwn[di][pos-1]
		pOther = ix.dciCumOther[di][pos-1]
		pHARQ = ix.dciCumHARQ[di][pos-1]
		pUse = ix.dciCumULUse[di][pos-1]
	}
	for i := pos; i < len(ix.dciAt[di]); i++ {
		pOwn += int64(ix.dciOwn[di][i])
		pOther += int64(ix.dciOther[di][i])
		if ix.dciHARQ[di][i] {
			pHARQ++
		}
		if ix.dciULUse[di][i] {
			pUse++
		}
		ix.dciCumOwn[di][i] = pOwn
		ix.dciCumOther[di][i] = pOther
		ix.dciCumHARQ[di][i] = pHARQ
		ix.dciCumULUse[di][i] = pUse
	}
}

// restoreOrderGNB re-sorts the tail of the RLC-retx series.
func (ix *indexedTrace) restoreOrderGNB(g trace.GNBLogRecord) {
	if g.Kind == trace.GNBLogRLCRetx {
		bubbleLast(ix.rlcAt[dirIdx(g.Dir)], nil)
	}
}

// restoreOrderRRC re-sorts the tail of the RRC series.
func (ix *indexedTrace) restoreOrderRRC() { bubbleLast(ix.rrcAt, nil) }

// restoreOrderStats re-sorts the tail of one side's stats series.
func (ix *indexedTrace) restoreOrderStats(s trace.WebRTCStatsRecord) {
	si := sideIdx(s.Local)
	pos := bubbleLast(ix.statsAt[si], func(i, j int) {
		ix.stats[si][i], ix.stats[si][j] = ix.stats[si][j], ix.stats[si][i]
	})
	if pos != len(ix.statsAt[si])-1 {
		ix.rebuildStatsCums(si, pos)
	}
}

// rebuildStatsCums recomputes side si's cumulative flag counts from
// pos on (an insertion at pos also changes the pair flag at pos+1).
func (ix *indexedTrace) rebuildStatsCums(si, pos int) {
	c := &ix.statsCum[si]
	var resDown, drain, overuse, cwndFull, pushNeq, targetDrop, pushDrop int32
	if pos > 0 {
		resDown = c.resDown[pos-1]
		drain = c.drain[pos-1]
		overuse = c.overuse[pos-1]
		cwndFull = c.cwndFull[pos-1]
		pushNeq = c.pushNeq[pos-1]
		targetDrop = c.targetDrop[pos-1]
		pushDrop = c.pushDrop[pos-1]
	}
	for i := pos; i < len(ix.stats[si]); i++ {
		var p *trace.WebRTCStatsRecord
		if i > 0 {
			p = &ix.stats[si][i-1]
		}
		f := ix.statsFlags(&ix.stats[si][i], p)
		if f.resDown {
			resDown++
		}
		if f.drain {
			drain++
		}
		if f.overuse {
			overuse++
		}
		if f.cwndFull {
			cwndFull++
		}
		if f.pushNeq {
			pushNeq++
		}
		if f.targetDrop {
			targetDrop++
		}
		if f.pushDrop {
			pushDrop++
		}
		c.resDown[i] = resDown
		c.drain[i] = drain
		c.overuse[i] = overuse
		c.cwndFull[i] = cwndFull
		c.pushNeq[i] = pushNeq
		c.targetDrop[i] = targetDrop
		c.pushDrop[i] = pushDrop
	}
}

// buffered returns the number of samples currently held across all
// series — the streaming analyzer's O(window) state measure.
func (ix *indexedTrace) buffered() int {
	n := len(ix.fwdAt) + len(ix.revAt) + len(ix.rrcAt)
	for di := range ix.dciAt {
		n += len(ix.dciAt[di]) + len(ix.rlcAt[di])
	}
	for si := range ix.statsAt {
		n += len(ix.statsAt[si])
	}
	return n
}

// window returns [lo, hi) index bounds of at-values within [start, end).
func window(at []sim.Time, start, end sim.Time) (int, int) {
	lo := sort.Search(len(at), func(i int) bool { return at[i] >= start })
	hi := sort.Search(len(at), func(i int) bool { return at[i] >= end })
	return lo, hi
}
