package core

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// This file is the retained full-recompute window evaluator: the
// original O(window) implementation of the twenty Table 5 event
// conditions, kept as the differential oracle for the rolling engine
// in events.go (and as the fallback for the two bin-shaped conditions
// when a custom geometry breaks bucket alignment). Unlike evalWindow
// it reads only the raw series, carries no cross-call state, and may
// be called for any window position in any order.

// evalWindowFull computes the feature vector for [start, start+W) by
// re-aggregating every sample in the window.
func (ix *indexedTrace) evalWindowFull(cfg DetectorConfig, start sim.Time) FeatureVector {
	end := start + cfg.Window
	v := FeatureVector{Start: start, End: end}

	// --- Application events, per side (events 1–10). ---
	for si := 0; si < 2; si++ {
		lo, hi := window(ix.statsAt[si], start, end)
		recs := ix.stats[si][lo:hi]
		if len(recs) == 0 {
			continue
		}
		base := fidAppBase(si)
		// 1–2: frame-rate drops (max > high before min < low).
		v.Bits.Assign(base+appInFPS, fpsDrop(recs, cfg, func(r int) float64 { return recs[r].InboundFPS }))
		v.Bits.Assign(base+appOutFPS, fpsDrop(recs, cfg, func(r int) float64 { return recs[r].OutboundFPS }))
		// 3: outbound resolution downtrend.
		for i := 1; i < len(recs); i++ {
			if recs[i].OutboundHeight < recs[i-1].OutboundHeight {
				v.Bits.Set(base + appResDown)
				break
			}
		}
		// 4: jitter buffer drains to zero.
		for i := range recs {
			if recs[i].VideoJBDelayMs <= cfg.JBDrainMs && recs[i].At > recs[0].At {
				v.Bits.Set(base + appJBDrain)
				break
			}
		}
		// 5: target bitrate downtrend.
		v.Bits.Assign(base+appTargetDown, relDrop(recs, cfg.RelDrop, func(r int) float64 { return recs[r].TargetBitrateBps }))
		// 6: GCC overuse entry.
		for i := range recs {
			if recs[i].GCCNetState.String() == "overuse" {
				v.Bits.Set(base + appOveruse)
				break
			}
		}
		// 7: pushback rate downtrend.
		v.Bits.Assign(base+appPushDown, relDrop(recs, cfg.RelDrop, func(r int) float64 { return recs[r].PushbackRateBps }))
		// 8: congestion window full.
		for i := range recs {
			if recs[i].CongestionWindow > 0 && recs[i].OutstandingBytes > recs[i].CongestionWindow {
				v.Bits.Set(base + appCwndFull)
				break
			}
		}
		// 9: windowed outstanding-bytes uptrend.
		out := make([]float64, len(recs))
		for i := range recs {
			out[i] = float64(recs[i].OutstandingBytes)
		}
		v.Bits.Assign(base+appOutstanding, groupedUptrend(out, cfg.TrendGroup, 0))
		// 10: pushback unequal to target.
		for i := range recs {
			if recs[i].PushbackRateBps < recs[i].TargetBitrateBps*(1-cfg.PushbackNeqFrac) {
				v.Bits.Set(base + appPushNeq)
				break
			}
		}
	}

	// --- Path delay events (11–12). ---
	v.Bits.Assign(fidFwdDelay, delayUptrend(ix.fwdAt, ix.fwdDelay, start, end, cfg))
	v.Bits.Assign(fidRevDelay, delayUptrend(ix.revAt, ix.revDelay, start, end, cfg))

	// --- 5G events per direction (13–18). ---
	for di := 0; di < 2; di++ {
		lo, hi := window(ix.dciAt[di], start, end)
		own := ix.dciOwn[di][lo:hi]
		other := ix.dciOther[di][lo:hi]
		tbs := ix.dciTBS[di][lo:hi]
		harq := ix.dciHARQ[di][lo:hi]
		base := fidCellBase(di)

		// 13: allocated TBS drop (min < frac × max, max before min).
		v.Bits.Assign(base+cellTBSDown, tbsDrop(tbs, cfg.TBSDropFrac))
		// 14: app bitrate exceeds allocated TBS for >10% of the window.
		v.Bits.Assign(base+cellRateExceeds, ix.rateExceedsFullCfg(di, start, end, cfg))
		// 15: cross traffic.
		sumOwn, sumOther := 0, 0
		for i := range own {
			sumOwn += own[i]
			sumOther += other[i]
		}
		if sumOther > 0 && float64(sumOther) > cfg.CrossFrac*float64(max(sumOwn, 1)) {
			v.Bits.Set(base + cellCross)
		}
		// 16: channel degradation from grouped MCS statistics.
		v.Bits.Assign(base+cellChanDegrade, ix.mcsDegradedFullCfg(di, start, end, cfg))
		// 17: HARQ retransmissions.
		retx := 0
		for _, h := range harq {
			if h {
				retx++
			}
		}
		v.Bits.Assign(base+cellHARQ, retx > cfg.HARQCount)
		// 18: RLC retransmission (gNB log or DCI flag).
		rlo, rhi := window(ix.rlcAt[di], start, end)
		v.Bits.Assign(base+cellRLC, rhi > rlo)
	}

	// 19: uplink scheduling — any own uplink transmission in window.
	lo, hi := window(ix.dciAt[0], start, end)
	for _, used := range ix.dciULUse[0][lo:hi] {
		if used {
			v.Bits.Set(fidULSched)
			break
		}
	}
	// 20: RRC state change (RNTI change).
	rlo, rhi := window(ix.rrcAt, start, end)
	v.Bits.Assign(fidRRC, rhi > rlo)

	return v
}

// fpsDrop implements events 1–2: max > high, min < low, max before min.
func fpsDrop(recs []traceStats, cfg DetectorConfig, get func(int) float64) bool {
	maxV, minV := -1.0, 1e18
	maxI, minI := -1, -1
	for i := range recs {
		fv := get(i)
		if fv > maxV {
			maxV, maxI = fv, i
		}
		if fv < minV {
			minV, minI = fv, i
		}
	}
	return maxV > cfg.FPSHigh && minV < cfg.FPSLow && maxI < minI
}

// relDrop reports a relative decrease between consecutive samples.
func relDrop(recs []traceStats, frac float64, get func(int) float64) bool {
	for i := 1; i < len(recs); i++ {
		prev, cur := get(i-1), get(i)
		if prev > 0 && cur < prev*(1-frac) {
			return true
		}
	}
	return false
}

// groupedUptrend implements the Appendix-D windowed-mean uptrend: split
// the series into groups of n, compare consecutive group means.
func groupedUptrend(xs []float64, n int, eps float64) bool {
	if n <= 0 || len(xs) < 2*n {
		return false
	}
	var means []float64
	for i := 0; i+n <= len(xs); i += n {
		var s float64
		for _, x := range xs[i : i+n] {
			s += x
		}
		means = append(means, s/float64(n))
	}
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]*(1+eps)+eps {
			return true
		}
	}
	return false
}

// delayUptrend implements events 11–12: grouped-mean uptrend plus a
// sample above DelayUpMs.
func delayUptrend(at []sim.Time, delay []float64, start, end sim.Time, cfg DetectorConfig) bool {
	lo, hi := window(at, start, end)
	ds := delay[lo:hi]
	if len(ds) < 2*cfg.TrendGroup {
		return false
	}
	maxD := 0.0
	for _, d := range ds {
		if d > maxD {
			maxD = d
		}
	}
	if maxD <= cfg.DelayUpMs {
		return false
	}
	return groupedUptrend(ds, cfg.TrendGroup, 0)
}

// tbsDrop implements event 13 over own-UE TBS samples.
func tbsDrop(tbs []int, frac float64) bool {
	maxV, minV := -1, 1<<62
	maxI, minI := -1, -1
	for i, t := range tbs {
		if t == 0 {
			continue // slots without own allocation
		}
		if t > maxV {
			maxV, maxI = t, i
		}
		if t < minV {
			minV, minI = t, i
		}
	}
	if maxI < 0 || minI < 0 {
		return false
	}
	return float64(minV) < frac*float64(maxV) && maxI < minI
}

// rateExceedsFull implements event 14 by binning the window's samples
// from scratch: the fraction of RateBin bins where the application
// send rate exceeds the PHY-allocated rate.
func (ix *indexedTrace) rateExceedsFull(di int, start, end sim.Time) bool {
	return ix.rateExceedsFullCfg(di, start, end, ix.cfg)
}

func (ix *indexedTrace) rateExceedsFullCfg(di int, start, end sim.Time, cfg DetectorConfig) bool {
	bins := int((end - start) / cfg.RateBin)
	if bins == 0 {
		return false
	}
	appLo, appHi := window(ix.appAt[di], start, end)
	if appHi == appLo {
		return false
	}
	appBits := make([]float64, bins)
	for i := appLo; i < appHi; i++ {
		b := int((ix.appAt[di][i] - start) / cfg.RateBin)
		if b >= 0 && b < bins {
			appBits[b] += float64(ix.appBytes[di][i] * 8)
		}
	}
	lo, hi := window(ix.dciAt[di], start, end)
	tbsBits := make([]float64, bins)
	for i := lo; i < hi; i++ {
		b := int((ix.dciAt[di][i] - start) / cfg.RateBin)
		if b >= 0 && b < bins {
			tbsBits[b] += float64(ix.dciTBS[di][i])
		}
	}
	exceed := 0
	for b := 0; b < bins; b++ {
		if appBits[b] > tbsBits[b] {
			exceed++
		}
	}
	return float64(exceed) > cfg.RateExceedFrac*float64(bins)
}

// mcsDegradedFull implements event 16 by grouping the window's own-UE
// MCS samples from scratch: the channel is degraded when the 90th
// percentile of group medians is below MCSP90Below and more than
// MCSLowCount groups have a median below MCSMedianBelow.
func (ix *indexedTrace) mcsDegradedFull(di int, start, end sim.Time) bool {
	return ix.mcsDegradedFullCfg(di, start, end, ix.cfg)
}

func (ix *indexedTrace) mcsDegradedFullCfg(di int, start, end sim.Time, cfg DetectorConfig) bool {
	lo, hi := window(ix.dciAt[di], start, end)
	groups := make(map[int][]float64)
	for i := lo; i < hi; i++ {
		if ix.dciOwn[di][i] == 0 {
			continue
		}
		g := int((ix.dciAt[di][i] - start) / cfg.MCSGroup)
		groups[g] = append(groups[g], float64(ix.dciMCS[di][i]))
	}
	if len(groups) == 0 {
		return false
	}
	var medians []float64
	low := 0
	for _, xs := range groups {
		m := median(xs)
		medians = append(medians, m)
		if m < cfg.MCSMedianBelow {
			low++
		}
	}
	return percentile(medians, 0.90) < cfg.MCSP90Below && low > cfg.MCSLowCount
}

func median(xs []float64) float64 { return percentile(xs, 0.5) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// traceStats aliases the record type for the helper signatures above.
type traceStats = trace.WebRTCStatsRecord
