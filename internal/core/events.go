package core

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// DetectorConfig holds the window geometry and every event-condition
// threshold of Table 5. Users override individual fields to tune
// detection for their deployment; zero values select paper defaults.
type DetectorConfig struct {
	// Window is the sliding-window length W (paper: 5 s).
	Window sim.Time
	// Step is the window advance Δt (paper: 0.5 s).
	Step sim.Time

	// FPSHigh/FPSLow: frame-rate drop needs max > FPSHigh before a
	// min < FPSLow (events 1–2).
	FPSHigh, FPSLow float64
	// JBDrainMs: a jitter-buffer sample at or below this counts as a
	// drain to zero (event 4).
	JBDrainMs float64
	// RelDrop is the relative decrease that counts as a downtrend for
	// target/pushback rates (events 5, 7) — suppresses estimator noise.
	RelDrop float64
	// PushbackNeqFrac: pushback ≠ target when pushback < target×(1−f)
	// (event 10).
	PushbackNeqFrac float64
	// DelayUpMs: delay-uptrend events additionally require a delay
	// sample above this (events 11–12; paper: 80 ms).
	DelayUpMs float64
	// TrendGroup is the sample count per averaging group for uptrend
	// detection (paper: 10).
	TrendGroup int
	// TBSDropFrac: TBS drop when min < frac × max (event 13; paper 0.8).
	TBSDropFrac float64
	// RateExceedFrac: fraction of window bins where app rate exceeds
	// TBS rate (event 14; paper 0.1).
	RateExceedFrac float64
	// RateBin is the bin width for event 14.
	RateBin sim.Time
	// CrossFrac: other-UE PRBs exceed this fraction of own PRBs
	// (event 15; paper 0.2).
	CrossFrac float64
	// MCSGroup is the grouping window for event 16 (paper 50 ms).
	MCSGroup sim.Time
	// MCSP90Below / MCSMedianBelow / MCSLowCount: event 16 thresholds
	// (paper: p90 < 20, median < 10 in more than 10 groups).
	MCSP90Below    float64
	MCSMedianBelow float64
	MCSLowCount    int
	// HARQCount: HARQ retx instances per window that count as an event
	// (event 17; paper 10).
	HARQCount int
}

// DefaultDetectorConfig returns the paper's Table 5 thresholds.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Window:          5 * sim.Second,
		Step:            500 * sim.Millisecond,
		FPSHigh:         27,
		FPSLow:          25,
		JBDrainMs:       0.5,
		RelDrop:         0.05,
		PushbackNeqFrac: 0.02,
		DelayUpMs:       80,
		TrendGroup:      10,
		TBSDropFrac:     0.8,
		RateExceedFrac:  0.10,
		RateBin:         100 * sim.Millisecond,
		CrossFrac:       0.20,
		MCSGroup:        50 * sim.Millisecond,
		MCSP90Below:     20,
		MCSMedianBelow:  10,
		MCSLowCount:     10,
		HARQCount:       10,
	}
}

// normalize fills zero fields with defaults.
func (c DetectorConfig) normalize() DetectorConfig {
	d := DefaultDetectorConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Step <= 0 {
		c.Step = d.Step
	}
	if c.FPSHigh == 0 {
		c.FPSHigh = d.FPSHigh
	}
	if c.FPSLow == 0 {
		c.FPSLow = d.FPSLow
	}
	if c.JBDrainMs == 0 {
		c.JBDrainMs = d.JBDrainMs
	}
	if c.RelDrop == 0 {
		c.RelDrop = d.RelDrop
	}
	if c.PushbackNeqFrac == 0 {
		c.PushbackNeqFrac = d.PushbackNeqFrac
	}
	if c.DelayUpMs == 0 {
		c.DelayUpMs = d.DelayUpMs
	}
	if c.TrendGroup == 0 {
		c.TrendGroup = d.TrendGroup
	}
	if c.TBSDropFrac == 0 {
		c.TBSDropFrac = d.TBSDropFrac
	}
	if c.RateExceedFrac == 0 {
		c.RateExceedFrac = d.RateExceedFrac
	}
	if c.RateBin == 0 {
		c.RateBin = d.RateBin
	}
	if c.CrossFrac == 0 {
		c.CrossFrac = d.CrossFrac
	}
	if c.MCSGroup == 0 {
		c.MCSGroup = d.MCSGroup
	}
	if c.MCSP90Below == 0 {
		c.MCSP90Below = d.MCSP90Below
	}
	if c.MCSMedianBelow == 0 {
		c.MCSMedianBelow = d.MCSMedianBelow
	}
	if c.MCSLowCount == 0 {
		c.MCSLowCount = d.MCSLowCount
	}
	if c.HARQCount == 0 {
		c.HARQCount = d.HARQCount
	}
	return c
}

// evalWindow computes the 36-dim feature vector for [start, start+W).
func (ix *indexedTrace) evalWindow(cfg DetectorConfig, start sim.Time) FeatureVector {
	end := start + cfg.Window
	v := FeatureVector{Start: start, End: end, Active: make(map[string]bool, 36)}

	// --- Application events, per side (events 1–10). ---
	for si, prefix := range []string{"local_", "remote_"} {
		lo, hi := window(ix.statsAt[si], start, end)
		recs := ix.stats[si][lo:hi]
		if len(recs) == 0 {
			continue
		}
		// 1–2: frame-rate drops (max > high before min < low).
		v.Active[prefix+FInboundFPSDown] = fpsDrop(recs, cfg, func(r int) float64 { return recs[r].InboundFPS })
		v.Active[prefix+FOutboundFPSDown] = fpsDrop(recs, cfg, func(r int) float64 { return recs[r].OutboundFPS })
		// 3: outbound resolution downtrend.
		for i := 1; i < len(recs); i++ {
			if recs[i].OutboundHeight < recs[i-1].OutboundHeight {
				v.Active[prefix+FOutboundResDown] = true
				break
			}
		}
		// 4: jitter buffer drains to zero.
		for i := range recs {
			if recs[i].VideoJBDelayMs <= cfg.JBDrainMs && recs[i].At > recs[0].At {
				v.Active[prefix+FJitterBufferDrain] = true
				break
			}
		}
		// 5: target bitrate downtrend.
		v.Active[prefix+FTargetBitrateDown] = relDrop(recs, cfg.RelDrop, func(r int) float64 { return recs[r].TargetBitrateBps })
		// 6: GCC overuse entry.
		for i := range recs {
			if recs[i].GCCNetState.String() == "overuse" {
				v.Active[prefix+FGCCOveruse] = true
				break
			}
		}
		// 7: pushback rate downtrend.
		v.Active[prefix+FPushbackRateDown] = relDrop(recs, cfg.RelDrop, func(r int) float64 { return recs[r].PushbackRateBps })
		// 8: congestion window full.
		for i := range recs {
			if recs[i].CongestionWindow > 0 && recs[i].OutstandingBytes > recs[i].CongestionWindow {
				v.Active[prefix+FCwndFull] = true
				break
			}
		}
		// 9: windowed outstanding-bytes uptrend.
		out := make([]float64, len(recs))
		for i := range recs {
			out[i] = float64(recs[i].OutstandingBytes)
		}
		v.Active[prefix+FOutstandingUp] = groupedUptrend(out, cfg.TrendGroup, 0)
		// 10: pushback unequal to target.
		for i := range recs {
			if recs[i].PushbackRateBps < recs[i].TargetBitrateBps*(1-cfg.PushbackNeqFrac) {
				v.Active[prefix+FPushbackNeqTarget] = true
				break
			}
		}
	}

	// --- Path delay events (11–12). ---
	v.Active[FForwardDelayUp] = delayUptrend(ix.fwdAt, ix.fwdDelay, start, end, cfg)
	v.Active[FReverseDelayUp] = delayUptrend(ix.revAt, ix.revDelay, start, end, cfg)

	// --- 5G events per direction (13–18). ---
	for di, prefix := range []string{"ul_", "dl_"} {
		lo, hi := window(ix.dciAt[di], start, end)
		at := ix.dciAt[di][lo:hi]
		own := ix.dciOwn[di][lo:hi]
		other := ix.dciOther[di][lo:hi]
		mcs := ix.dciMCS[di][lo:hi]
		tbs := ix.dciTBS[di][lo:hi]
		harq := ix.dciHARQ[di][lo:hi]

		// 13: allocated TBS drop (min < frac × max, max before min).
		v.Active[prefix+FTBSDown] = tbsDrop(tbs, cfg.TBSDropFrac)
		// 14: app bitrate exceeds allocated TBS for >10% of the window.
		v.Active[prefix+FRateExceedsTBS] = ix.rateExceeds(di, at, tbs, start, end, cfg)
		// 15: cross traffic.
		sumOwn, sumOther := 0, 0
		for i := range own {
			sumOwn += own[i]
			sumOther += other[i]
		}
		if sumOther > 0 && float64(sumOther) > cfg.CrossFrac*float64(max(sumOwn, 1)) {
			v.Active[prefix+FCrossTraffic] = true
		}
		// 16: channel degradation from grouped MCS statistics.
		v.Active[prefix+FChannelDegrade] = mcsDegraded(at, mcs, own, start, cfg)
		// 17: HARQ retransmissions.
		retx := 0
		for _, h := range harq {
			if h {
				retx++
			}
		}
		v.Active[prefix+FHARQRetx] = retx > cfg.HARQCount
		// 18: RLC retransmission (gNB log or DCI flag).
		rlo, rhi := window(ix.rlcAt[di], start, end)
		v.Active[prefix+FRLCRetx] = rhi > rlo
	}

	// 19: uplink scheduling — any own uplink transmission in window.
	lo, hi := window(ix.dciAt[0], start, end)
	for _, used := range ix.dciULUse[0][lo:hi] {
		if used {
			v.Active[FULScheduling] = true
			break
		}
	}
	// 20: RRC state change (RNTI change).
	rlo, rhi := window(ix.rrcAt, start, end)
	v.Active[FRRCChange] = rhi > rlo

	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fpsDrop implements events 1–2: max > high, min < low, max before min.
func fpsDrop(recs []traceStats, cfg DetectorConfig, get func(int) float64) bool {
	maxV, minV := -1.0, 1e18
	maxI, minI := -1, -1
	for i := range recs {
		fv := get(i)
		if fv > maxV {
			maxV, maxI = fv, i
		}
		if fv < minV {
			minV, minI = fv, i
		}
	}
	return maxV > cfg.FPSHigh && minV < cfg.FPSLow && maxI < minI
}

// relDrop reports a relative decrease between consecutive samples.
func relDrop(recs []traceStats, frac float64, get func(int) float64) bool {
	for i := 1; i < len(recs); i++ {
		prev, cur := get(i-1), get(i)
		if prev > 0 && cur < prev*(1-frac) {
			return true
		}
	}
	return false
}

// groupedUptrend implements the Appendix-D windowed-mean uptrend: split
// the series into groups of n, compare consecutive group means.
func groupedUptrend(xs []float64, n int, eps float64) bool {
	if n <= 0 || len(xs) < 2*n {
		return false
	}
	var means []float64
	for i := 0; i+n <= len(xs); i += n {
		var s float64
		for _, x := range xs[i : i+n] {
			s += x
		}
		means = append(means, s/float64(n))
	}
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]*(1+eps)+eps {
			return true
		}
	}
	return false
}

// delayUptrend implements events 11–12: grouped-mean uptrend plus a
// sample above DelayUpMs.
func delayUptrend(at []sim.Time, delay []float64, start, end sim.Time, cfg DetectorConfig) bool {
	lo, hi := window(at, start, end)
	ds := delay[lo:hi]
	if len(ds) < 2*cfg.TrendGroup {
		return false
	}
	maxD := 0.0
	for _, d := range ds {
		if d > maxD {
			maxD = d
		}
	}
	if maxD <= cfg.DelayUpMs {
		return false
	}
	return groupedUptrend(ds, cfg.TrendGroup, 0)
}

// tbsDrop implements event 13 over own-UE TBS samples.
func tbsDrop(tbs []int, frac float64) bool {
	maxV, minV := -1, 1<<62
	maxI, minI := -1, -1
	for i, t := range tbs {
		if t == 0 {
			continue // slots without own allocation
		}
		if t > maxV {
			maxV, maxI = t, i
		}
		if t < minV {
			minV, minI = t, i
		}
	}
	if maxI < 0 || minI < 0 {
		return false
	}
	return float64(minV) < frac*float64(maxV) && maxI < minI
}

// rateExceeds implements event 14: the fraction of RateBin bins where
// the application send rate exceeds the PHY-allocated rate.
func (ix *indexedTrace) rateExceeds(di int, dciAt []sim.Time, tbs []int, start, end sim.Time, cfg DetectorConfig) bool {
	bins := int((end - start) / cfg.RateBin)
	if bins == 0 {
		return false
	}
	appLo, appHi := window(ix.appAt[di], start, end)
	if appHi == appLo {
		return false
	}
	appBits := make([]float64, bins)
	for i := appLo; i < appHi; i++ {
		b := int((ix.appAt[di][i] - start) / cfg.RateBin)
		if b >= 0 && b < bins {
			appBits[b] += float64(ix.appBytes[di][i] * 8)
		}
	}
	tbsBits := make([]float64, bins)
	for i, at := range dciAt {
		b := int((at - start) / cfg.RateBin)
		if b >= 0 && b < bins {
			tbsBits[b] += float64(tbs[i])
		}
	}
	exceed := 0
	for b := 0; b < bins; b++ {
		if appBits[b] > tbsBits[b] {
			exceed++
		}
	}
	return float64(exceed) > cfg.RateExceedFrac*float64(bins)
}

// mcsDegraded implements event 16: group own-UE MCS samples into
// MCSGroup windows; the channel is degraded when the 90th percentile of
// group medians is below MCSP90Below and more than MCSLowCount groups
// have a median below MCSMedianBelow.
func mcsDegraded(at []sim.Time, mcs, own []int, start sim.Time, cfg DetectorConfig) bool {
	groups := make(map[int][]float64)
	for i := range at {
		if own[i] == 0 {
			continue
		}
		g := int((at[i] - start) / cfg.MCSGroup)
		groups[g] = append(groups[g], float64(mcs[i]))
	}
	if len(groups) == 0 {
		return false
	}
	var medians []float64
	low := 0
	for _, xs := range groups {
		m := median(xs)
		medians = append(medians, m)
		if m < cfg.MCSMedianBelow {
			low++
		}
	}
	return percentile(medians, 0.90) < cfg.MCSP90Below && low > cfg.MCSLowCount
}

func median(xs []float64) float64 { return percentile(xs, 0.5) }

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	i := int(p * float64(len(cp)-1))
	return cp[i]
}

// traceStats aliases the record type for the helper signatures above.
type traceStats = trace.WebRTCStatsRecord
