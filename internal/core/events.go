package core

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// evalWindow computes the 36-dim feature vector for [start, start+W)
// using the rolling aggregates: count/sum conditions read two entries
// of a cumulative array, extremum conditions read deque fronts, and
// the bin-shaped conditions read cached per-bucket aggregates. Only
// the grouped-trend conditions (events 9, 11–12) still scan their
// window span — they group by window-relative sample index, which has
// no incremental form — and they do so allocation-free.
//
// Window starts must be non-decreasing across calls (the pattern both
// batch Analyze and the streaming analyzer produce). evalWindowFull is
// the retained position-independent oracle; differential tests pin the
// two byte-identical across every scenario.
func (ix *indexedTrace) evalWindow(start sim.Time) FeatureVector {
	cfg := &ix.cfg
	end := start + cfg.Window
	ix.advanceRoll(end)
	ix.retireRoll(start)
	v := FeatureVector{Start: start, End: end}
	r := &ix.roll

	// --- Application events, per side (events 1–10). ---
	for si := 0; si < 2; si++ {
		lo, hi := window(ix.statsAt[si], start, end)
		if hi == lo {
			continue
		}
		base := fidAppBase(si)
		c := &ix.statsCum[si]
		// 1–2: frame-rate drops (max > high before min < low).
		if extremaDrop(&r.inFPSMax[si], &r.inFPSMin[si], cfg.FPSHigh, cfg.FPSLow) {
			v.Bits.Set(base + appInFPS)
		}
		if extremaDrop(&r.outFPSMax[si], &r.outFPSMin[si], cfg.FPSHigh, cfg.FPSLow) {
			v.Bits.Set(base + appOutFPS)
		}
		// 3: outbound resolution downtrend (adjacent-pair decrease).
		if cum32(c.resDown, lo+1, hi) > 0 {
			v.Bits.Set(base + appResDown)
		}
		// 4: jitter buffer drains to zero, strictly after the window's
		// first sample time.
		if cum32(c.drain, lo, hi) > 0 {
			j := lo
			for j < hi && ix.statsAt[si][j] == ix.statsAt[si][lo] {
				j++
			}
			if cum32(c.drain, j, hi) > 0 {
				v.Bits.Set(base + appJBDrain)
			}
		}
		// 5: target bitrate downtrend.
		if cum32(c.targetDrop, lo+1, hi) > 0 {
			v.Bits.Set(base + appTargetDown)
		}
		// 6: GCC overuse entry.
		if cum32(c.overuse, lo, hi) > 0 {
			v.Bits.Set(base + appOveruse)
		}
		// 7: pushback rate downtrend.
		if cum32(c.pushDrop, lo+1, hi) > 0 {
			v.Bits.Set(base + appPushDown)
		}
		// 8: congestion window full.
		if cum32(c.cwndFull, lo, hi) > 0 {
			v.Bits.Set(base + appCwndFull)
		}
		// 9: windowed outstanding-bytes uptrend.
		if ix.outstandingUptrend(si, lo, hi, cfg.TrendGroup) {
			v.Bits.Set(base + appOutstanding)
		}
		// 10: pushback unequal to target.
		if cum32(c.pushNeq, lo, hi) > 0 {
			v.Bits.Set(base + appPushNeq)
		}
	}

	// --- Path delay events (11–12). ---
	if ix.delayUptrendRolling(ix.fwdAt, ix.fwdDelay, ix.fwdCumHigh, start, end) {
		v.Bits.Set(fidFwdDelay)
	}
	if ix.delayUptrendRolling(ix.revAt, ix.revDelay, ix.revCumHigh, start, end) {
		v.Bits.Set(fidRevDelay)
	}

	// --- 5G events per direction (13–18). ---
	var dciLo [2]int
	var dciHi [2]int
	for di := 0; di < 2; di++ {
		lo, hi := window(ix.dciAt[di], start, end)
		dciLo[di], dciHi[di] = lo, hi
		base := fidCellBase(di)

		// 13: allocated TBS drop (min < frac × max, max before min).
		if extremaDropFrac(&r.tbsMax[di], &r.tbsMin[di], cfg.TBSDropFrac) {
			v.Bits.Set(base + cellTBSDown)
		}
		// 14: app bitrate exceeds allocated TBS for >10% of the window.
		if ix.rateExceedsRolling(di, start, end) {
			v.Bits.Set(base + cellRateExceeds)
		}
		// 15: cross traffic.
		sumOwn := cum64(ix.dciCumOwn[di], lo, hi)
		sumOther := cum64(ix.dciCumOther[di], lo, hi)
		if sumOther > 0 && float64(sumOther) > cfg.CrossFrac*float64(max(sumOwn, 1)) {
			v.Bits.Set(base + cellCross)
		}
		// 16: channel degradation from grouped MCS statistics.
		if ix.mcsDegradedRolling(di, start, end) {
			v.Bits.Set(base + cellChanDegrade)
		}
		// 17: HARQ retransmissions.
		if cum32(ix.dciCumHARQ[di], lo, hi) > cfg.HARQCount {
			v.Bits.Set(base + cellHARQ)
		}
		// 18: RLC retransmission (gNB log or DCI flag).
		rlo, rhi := window(ix.rlcAt[di], start, end)
		if rhi > rlo {
			v.Bits.Set(base + cellRLC)
		}
	}

	// 19: uplink scheduling — any own uplink transmission in window.
	if cum32(ix.dciCumULUse[0], dciLo[0], dciHi[0]) > 0 {
		v.Bits.Set(fidULSched)
	}
	// 20: RRC state change (RNTI change).
	rlo, rhi := window(ix.rrcAt, start, end)
	if rhi > rlo {
		v.Bits.Set(fidRRC)
	}

	return v
}

// extremaDrop implements events 1–2 over the rolling deques: window
// max above high, min below low, and the (earliest) max attained
// before the (earliest) min.
func extremaDrop(maxD, minD *extrema, high, low float64) bool {
	if maxD.empty() {
		return false
	}
	maxSeq, maxV := maxD.front()
	minSeq, minV := minD.front()
	return maxV > high && minV < low && maxSeq < minSeq
}

// extremaDropFrac implements event 13 over the rolling deques (nonzero
// TBS samples only): min < frac × max with the max attained first.
func extremaDropFrac(maxD, minD *extrema, frac float64) bool {
	if maxD.empty() {
		return false
	}
	maxSeq, maxV := maxD.front()
	minSeq, minV := minD.front()
	return minV < frac*maxV && maxSeq < minSeq
}

// groupUptrendAt is the single rolling-path implementation of the
// Appendix-D grouped-mean uptrend (kept semantically identical to the
// oracle's groupedUptrend at eps=0): split the cnt window samples
// starting at index lo into groups of n, summing sample k via get,
// and report any consecutive group-mean increase. The callback does
// not escape, so the scan allocates nothing.
func groupUptrendAt(lo, cnt, n int, get func(int) float64) bool {
	if n <= 0 || cnt < 2*n {
		return false
	}
	prev := 0.0
	for g := 0; g+n <= cnt; g += n {
		var s float64
		for k := lo + g; k < lo+g+n; k++ {
			s += get(k)
		}
		m := s / float64(n)
		if g > 0 && m > prev {
			return true
		}
		prev = m
	}
	return false
}

// outstandingUptrend implements event 9: grouped-mean uptrend over the
// window's outstanding-bytes samples, grouped by window-relative index.
func (ix *indexedTrace) outstandingUptrend(si, lo, hi, n int) bool {
	recs := ix.stats[si]
	return groupUptrendAt(lo, hi-lo, n, func(k int) float64 { return float64(recs[k].OutstandingBytes) })
}

// delayUptrendRolling implements events 11–12: the above-threshold
// gate reads the cumulative count; only windows that pass it (and hold
// enough samples) pay for the grouped-mean scan.
func (ix *indexedTrace) delayUptrendRolling(at []sim.Time, delay []float64, cumHigh []int32, start, end sim.Time) bool {
	n := ix.cfg.TrendGroup
	lo, hi := window(at, start, end)
	if hi-lo < 2*n {
		return false
	}
	if cum32(cumHigh, lo, hi) == 0 {
		return false
	}
	return groupUptrendAt(lo, hi-lo, n, func(k int) float64 { return delay[k] })
}

// rateExceedsRolling implements event 14 over the cached per-bin sums
// when the window start is bin-aligned (always true when Step is a
// multiple of RateBin, as in the paper's geometry); otherwise it falls
// back to the full recompute.
func (ix *indexedTrace) rateExceedsRolling(di int, start, end sim.Time) bool {
	cfg := &ix.cfg
	bins := int((end - start) / cfg.RateBin)
	if bins == 0 {
		return false
	}
	if start%cfg.RateBin != 0 {
		return ix.rateExceedsFull(di, start, end)
	}
	appLo, appHi := window(ix.appAt[di], start, end)
	if appHi == appLo {
		return false
	}
	base := int64(start / cfg.RateBin)
	exceed := 0
	for b := 0; b < bins; b++ {
		if ix.roll.rateApp[di].get(base+int64(b)) > ix.roll.rateTBS[di].get(base+int64(b)) {
			exceed++
		}
	}
	return float64(exceed) > cfg.RateExceedFrac*float64(bins)
}

// mcsDegradedRolling implements event 16 over the cached per-bucket
// medians when both window edges are bucket-aligned (a queried bucket
// must be complete before its median is cached, so the window end may
// not split one); otherwise it falls back to the full recompute.
func (ix *indexedTrace) mcsDegradedRolling(di int, start, end sim.Time) bool {
	cfg := &ix.cfg
	if start%cfg.MCSGroup != 0 || (end-start)%cfg.MCSGroup != 0 {
		return ix.mcsDegradedFull(di, start, end)
	}
	first := int64(start / cfg.MCSGroup)
	last := int64((end - 1) / cfg.MCSGroup)
	medians := ix.scratch.medians[:0]
	low := 0
	for b := first; b <= last; b++ {
		m, n := ix.roll.mcs[di].median(b)
		if n == 0 {
			continue
		}
		medians = append(medians, m)
		if m < cfg.MCSMedianBelow {
			low++
		}
	}
	ix.scratch.medians = medians
	if len(medians) == 0 {
		return false
	}
	sort.Float64s(medians)
	p90 := medians[int(0.90*float64(len(medians)-1))]
	return p90 < cfg.MCSP90Below && low > cfg.MCSLowCount
}
