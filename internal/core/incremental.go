package core

import (
	"github.com/domino5g/domino/internal/obs"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// This file is the incremental half of the detection engine: the same
// window evaluation and event-run collapsing the batch Analyze performs,
// factored so a streaming caller can drive it one window at a time with
// O(window) trace state. Analyze itself is a thin loop over these
// pieces, which is what guarantees the streaming and batch paths cannot
// diverge.

// WindowEvaluator incrementally maintains the indexed per-source series
// window evaluation reads. Records are Observed in (merged) timestamp
// order, old samples are evicted once the window has slid past them,
// and Eval computes the same 36-dim feature vector the batch path
// computes for that window position.
type WindowEvaluator struct {
	cfg DetectorConfig
	ix  *indexedTrace
}

// NewWindowEvaluator returns an empty evaluator for one session.
// hasGNBLog gates RLC-retx visibility exactly like trace.Set.HasGNBLog.
func (a *Analyzer) NewWindowEvaluator(hasGNBLog bool) *WindowEvaluator {
	ix := &indexedTrace{cfg: a.cfg, hasGNBLog: hasGNBLog}
	ix.roll.init(a.cfg)
	return &WindowEvaluator{cfg: a.cfg, ix: ix}
}

// Reset empties the evaluator in place for a new session, keeping the
// allocated series capacity — the recycling path for pooled fleet
// ingest (see stream.Analyzer.Reset and cmd/dominod).
func (e *WindowEvaluator) Reset(hasGNBLog bool) { e.ix.reset(hasGNBLog) }

// Observe appends one record's samples to the index. Records should
// arrive in non-decreasing primary-timestamp order across all sources
// (the order WriteJSONL emits); a record behind the series tail is
// insertion-sorted back into place, at O(displacement) cost, so a
// caller admitting bounded out-of-orderness (stream.Config.Lateness)
// still evaluates windows on correctly ordered series. Header records
// are ignored.
func (e *WindowEvaluator) Observe(rec trace.Record) {
	switch {
	case rec.DCI != nil:
		e.ix.addDCI(*rec.DCI)
		e.ix.restoreOrderDCI(*rec.DCI)
	case rec.GNB != nil:
		e.ix.addGNB(*rec.GNB)
		e.ix.restoreOrderGNB(*rec.GNB)
	case rec.Packet != nil:
		e.ix.addPacket(*rec.Packet)
		e.ix.restoreOrderPacket(*rec.Packet)
	case rec.Stats != nil:
		e.ix.addStats(*rec.Stats)
		e.ix.restoreOrderStats(*rec.Stats)
	case rec.RRC != nil:
		e.ix.addRRC(*rec.RRC)
		e.ix.restoreOrderRRC()
	}
}

// EvictBefore drops samples older than cut (the start of the earliest
// window still to be evaluated).
func (e *WindowEvaluator) EvictBefore(cut sim.Time) { e.ix.evictBefore(cut) }

// Eval computes the feature vector for the window [start, start+W)
// from the rolling aggregates, at O(samples-in-step) amortized cost.
// Every sample in the window must have been Observed and not evicted,
// and starts must be non-decreasing across calls — the access pattern
// of both analysis drivers.
func (e *WindowEvaluator) Eval(start sim.Time) FeatureVector {
	return e.ix.evalWindow(start)
}

// EvalFull computes the same vector by re-aggregating every sample in
// the window — the retained recompute oracle, free of cross-call
// state. Differential tests pin Eval ≡ EvalFull across every scenario.
func (e *WindowEvaluator) EvalFull(start sim.Time) FeatureVector {
	return e.ix.evalWindowFull(e.cfg, start)
}

// Buffered returns the number of samples currently held — O(window)
// when the caller evicts as it advances, versus O(trace) for batch.
func (e *WindowEvaluator) Buffered() int { return e.ix.buffered() }

// Incremental carries the per-session detection state that spans
// windows: the report under construction and the open node/chain runs.
// Step feeds it one window's feature vector at a time, in order;
// Finish closes the remaining runs. It is the exact state machine of
// the batch Analyze loop, exposed for streaming callers.
//
// The causal DAG is pre-resolved once per Analyzer into index form
// (integer node IDs, per-node feature bitmasks, per-chain node-ID
// lists), so a Step touches no strings and no maps: node activation is
// one mask test per node against the window's feature bits, and run
// bookkeeping lives in flat per-node/per-chain arrays reused across
// steps.
type Incremental struct {
	a           *Analyzer
	rep         *Report
	keepWindows bool
	hooks       obs.Hooks

	// Per-session scratch, sized to the compiled graph and reused
	// across steps (and across sessions via Reset).
	active       []bool // per node: active in current window
	causeMark    []bool // per distinct cause: linked in current window
	matched      []bool // per chain: fully matched in current window
	openNode     []EventRun
	openNodeSet  []bool
	openChain    []ChainRun
	openChainSet []bool
}

// NewIncremental starts an incremental analysis for one session.
func (a *Analyzer) NewIncremental(cellName string) *Incremental {
	cg := &a.comp
	inc := &Incremental{
		a:            a,
		keepWindows:  true,
		active:       make([]bool, len(cg.nodes)),
		causeMark:    make([]bool, len(cg.causes)),
		matched:      make([]bool, len(cg.chainNodes)),
		openNode:     make([]EventRun, len(cg.nodes)),
		openNodeSet:  make([]bool, len(cg.nodes)),
		openChain:    make([]ChainRun, len(cg.chainNodes)),
		openChainSet: make([]bool, len(cg.chainNodes)),
	}
	inc.rep = a.newReport(cellName)
	return inc
}

// Reset rewinds the Incremental to a fresh session (a new report, no
// open runs), reusing the compiled-graph scratch — the recycling path
// for pooled fleet ingest.
func (inc *Incremental) Reset(cellName string) {
	inc.rep = inc.a.newReport(cellName)
	inc.keepWindows = true
	inc.hooks = nil
	for i := range inc.openNodeSet {
		inc.openNodeSet[i] = false
	}
	for i := range inc.openChainSet {
		inc.openChainSet[i] = false
	}
}

func (a *Analyzer) newReport(cellName string) *Report {
	return &Report{
		CellName:    cellName,
		NodeEvents:  make(map[string][]EventRun),
		ChainEvents: make(map[int][]ChainRun),
		chains:      a.chains,
	}
}

// SetKeepWindows controls whether per-window results are retained in
// the report (default true, matching batch analysis). Long-running
// live sessions turn this off to keep report growth bounded by event
// runs instead of window count.
func (inc *Incremental) SetKeepWindows(keep bool) { inc.keepWindows = keep }

// SetScenario labels the report under construction with the name of
// the scenario that generated the session's trace.
func (inc *Incremental) SetScenario(name string) { inc.rep.Scenario = name }

// SetHooks installs observability hooks fired on node/chain run
// transitions (nil disables them, the default). Hook calls receive the
// precompiled node names and chain signatures, so an allocation-free
// Hooks implementation keeps Step allocation-free.
func (inc *Incremental) SetHooks(h obs.Hooks) { inc.hooks = h }

// Step consumes the feature vector of the next window position and
// returns its WindowResult together with the node and chain runs that
// closed at this step (in graph-node and chain-ID order respectively).
func (inc *Incremental) Step(v FeatureVector) (WindowResult, []EventRun, []ChainRun) {
	cg := &inc.a.comp
	rep := inc.rep
	wr := WindowResult{Vector: v}

	for i, mask := range cg.nodeMask {
		inc.active[i] = v.Bits&mask != 0
	}

	// Backward trace: for each active consequence, walk matched
	// chains back to their causes.
	anyCause := false
	for ci, nodes := range cg.chainNodes {
		m := true
		for _, nid := range nodes {
			if !inc.active[nid] {
				m = false
				break
			}
		}
		inc.matched[ci] = m
		if m {
			wr.ChainIDs = append(wr.ChainIDs, ci+1)
			if !inc.causeMark[cg.chainCauseID[ci]] {
				inc.causeMark[cg.chainCauseID[ci]] = true
				anyCause = true
			}
		}
	}
	for _, nid := range cg.consequences {
		if inc.active[nid] {
			wr.Consequences = append(wr.Consequences, cg.nodes[nid])
		}
	}
	if anyCause {
		for i, name := range cg.causes {
			if inc.causeMark[i] {
				inc.causeMark[i] = false
				wr.Causes = append(wr.Causes, name)
			}
		}
	}
	if inc.keepWindows {
		rep.Windows = append(rep.Windows, wr)
	}

	// Update node runs.
	var closedNodes []EventRun
	for nid, name := range cg.nodes {
		if inc.active[nid] {
			if inc.openNodeSet[nid] {
				inc.openNode[nid].End = v.End
				inc.openNode[nid].Windows++
			} else {
				inc.openNodeSet[nid] = true
				inc.openNode[nid] = EventRun{Node: name, Start: v.Start, End: v.End, Windows: 1}
				if inc.hooks != nil {
					inc.hooks.NodeFired(name, int64(v.Start))
				}
			}
		} else if inc.openNodeSet[nid] {
			run := inc.openNode[nid]
			rep.NodeEvents[name] = append(rep.NodeEvents[name], run)
			closedNodes = append(closedNodes, run)
			inc.openNodeSet[nid] = false
			if inc.hooks != nil {
				inc.hooks.NodeRunClosed(name, int64(run.Start), int64(run.End), run.Windows)
			}
		}
	}
	// Update chain runs.
	var closedChains []ChainRun
	for ci := range cg.chainNodes {
		if inc.matched[ci] {
			if inc.openChainSet[ci] {
				inc.openChain[ci].End = v.End
				inc.openChain[ci].Windows++
			} else {
				inc.openChainSet[ci] = true
				inc.openChain[ci] = ChainRun{Chain: inc.a.chains[ci], Start: v.Start, End: v.End, Windows: 1}
				if inc.hooks != nil {
					inc.hooks.ChainRunOpened(cg.chainSigs[ci], int64(v.Start))
				}
			}
		} else if inc.openChainSet[ci] {
			run := inc.openChain[ci]
			rep.ChainEvents[ci+1] = append(rep.ChainEvents[ci+1], run)
			closedChains = append(closedChains, run)
			inc.openChainSet[ci] = false
			if inc.hooks != nil {
				inc.hooks.ChainRunClosed(cg.chainSigs[ci], int64(run.Start), int64(run.End), run.Windows)
			}
		}
	}
	return wr, closedNodes, closedChains
}

// Finish closes every run still open, stamps the session duration, and
// returns the final report plus the runs closed here. The Incremental
// must not be used afterwards (Reset rewinds it for a new session).
func (inc *Incremental) Finish(duration sim.Time) (*Report, []EventRun, []ChainRun) {
	cg := &inc.a.comp
	rep := inc.rep
	rep.Duration = duration
	var closedNodes []EventRun
	for nid, name := range cg.nodes {
		if inc.openNodeSet[nid] {
			run := inc.openNode[nid]
			rep.NodeEvents[name] = append(rep.NodeEvents[name], run)
			closedNodes = append(closedNodes, run)
			inc.openNodeSet[nid] = false
			if inc.hooks != nil {
				inc.hooks.NodeRunClosed(name, int64(run.Start), int64(run.End), run.Windows)
			}
		}
	}
	var closedChains []ChainRun
	for ci := range cg.chainNodes {
		if inc.openChainSet[ci] {
			run := inc.openChain[ci]
			rep.ChainEvents[ci+1] = append(rep.ChainEvents[ci+1], run)
			closedChains = append(closedChains, run)
			inc.openChainSet[ci] = false
			if inc.hooks != nil {
				inc.hooks.ChainRunClosed(cg.chainSigs[ci], int64(run.Start), int64(run.End), run.Windows)
			}
		}
	}
	return rep, closedNodes, closedChains
}

// Snapshot returns a point-in-time copy of the report with runs still
// open treated as closed now, for live inspection of an unfinished
// session. The Incremental remains usable.
func (inc *Incremental) Snapshot(asOf sim.Time) *Report {
	cg := &inc.a.comp
	rep := inc.rep
	cp := &Report{
		CellName:    rep.CellName,
		Scenario:    rep.Scenario,
		Duration:    asOf,
		Windows:     rep.Windows[:len(rep.Windows):len(rep.Windows)],
		NodeEvents:  make(map[string][]EventRun, len(rep.NodeEvents)),
		ChainEvents: make(map[int][]ChainRun, len(rep.ChainEvents)),
		chains:      rep.chains,
	}
	for n, runs := range rep.NodeEvents {
		cp.NodeEvents[n] = append([]EventRun(nil), runs...)
	}
	for id, runs := range rep.ChainEvents {
		cp.ChainEvents[id] = append([]ChainRun(nil), runs...)
	}
	for nid, name := range cg.nodes {
		if inc.openNodeSet[nid] {
			cp.NodeEvents[name] = append(cp.NodeEvents[name], inc.openNode[nid])
		}
	}
	for ci := range cg.chainNodes {
		if inc.openChainSet[ci] {
			cp.ChainEvents[ci+1] = append(cp.ChainEvents[ci+1], inc.openChain[ci])
		}
	}
	return cp
}
