package core

import (
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// This file is the incremental half of the detection engine: the same
// window evaluation and event-run collapsing the batch Analyze performs,
// factored so a streaming caller can drive it one window at a time with
// O(window) trace state. Analyze itself is a thin loop over these
// pieces, which is what guarantees the streaming and batch paths cannot
// diverge.

// WindowEvaluator incrementally maintains the indexed per-source series
// window evaluation reads. Records are Observed in (merged) timestamp
// order, old samples are evicted once the window has slid past them,
// and Eval computes the same 36-dim feature vector the batch path
// computes for that window position.
type WindowEvaluator struct {
	cfg DetectorConfig
	ix  *indexedTrace
}

// NewWindowEvaluator returns an empty evaluator for one session.
// hasGNBLog gates RLC-retx visibility exactly like trace.Set.HasGNBLog.
func (a *Analyzer) NewWindowEvaluator(hasGNBLog bool) *WindowEvaluator {
	return &WindowEvaluator{cfg: a.cfg, ix: &indexedTrace{hasGNBLog: hasGNBLog}}
}

// Observe appends one record's samples to the index. Records should
// arrive in non-decreasing primary-timestamp order across all sources
// (the order WriteJSONL emits); a record behind the series tail is
// insertion-sorted back into place, at O(displacement) cost, so a
// caller admitting bounded out-of-orderness (stream.Config.Lateness)
// still evaluates windows on correctly ordered series. Header records
// are ignored.
func (e *WindowEvaluator) Observe(rec trace.Record) {
	switch {
	case rec.DCI != nil:
		e.ix.addDCI(*rec.DCI)
		e.ix.restoreOrderDCI(*rec.DCI)
	case rec.GNB != nil:
		e.ix.addGNB(*rec.GNB)
		e.ix.restoreOrderGNB(*rec.GNB)
	case rec.Packet != nil:
		e.ix.addPacket(*rec.Packet)
		e.ix.restoreOrderPacket(*rec.Packet)
	case rec.Stats != nil:
		e.ix.addStats(*rec.Stats)
		e.ix.restoreOrderStats(*rec.Stats)
	case rec.RRC != nil:
		e.ix.addRRC(*rec.RRC)
		e.ix.restoreOrderRRC()
	}
}

// EvictBefore drops samples older than cut (the start of the earliest
// window still to be evaluated).
func (e *WindowEvaluator) EvictBefore(cut sim.Time) { e.ix.evictBefore(cut) }

// Eval computes the feature vector for the window [start, start+W).
// Every sample in that range must have been Observed and not evicted.
func (e *WindowEvaluator) Eval(start sim.Time) FeatureVector {
	return e.ix.evalWindow(e.cfg, start)
}

// Buffered returns the number of samples currently held — O(window)
// when the caller evicts as it advances, versus O(trace) for batch.
func (e *WindowEvaluator) Buffered() int { return e.ix.buffered() }

// Incremental carries the per-session detection state that spans
// windows: the report under construction and the open node/chain runs.
// Step feeds it one window's feature vector at a time, in order;
// Finish closes the remaining runs. It is the exact state machine of
// the batch Analyze loop, exposed for streaming callers.
type Incremental struct {
	a           *Analyzer
	rep         *Report
	openNode    map[string]*EventRun
	openChain   map[int]*ChainRun
	keepWindows bool
}

// NewIncremental starts an incremental analysis for one session.
func (a *Analyzer) NewIncremental(cellName string) *Incremental {
	return &Incremental{
		a: a,
		rep: &Report{
			CellName:    cellName,
			NodeEvents:  make(map[string][]EventRun),
			ChainEvents: make(map[int][]ChainRun),
			chains:      a.chains,
		},
		openNode:    make(map[string]*EventRun),
		openChain:   make(map[int]*ChainRun),
		keepWindows: true,
	}
}

// SetKeepWindows controls whether per-window results are retained in
// the report (default true, matching batch analysis). Long-running
// live sessions turn this off to keep report growth bounded by event
// runs instead of window count.
func (inc *Incremental) SetKeepWindows(keep bool) { inc.keepWindows = keep }

// SetScenario labels the report under construction with the name of
// the scenario that generated the session's trace.
func (inc *Incremental) SetScenario(name string) { inc.rep.Scenario = name }

// Step consumes the feature vector of the next window position and
// returns its WindowResult together with the node and chain runs that
// closed at this step (in graph-node and chain-ID order respectively).
func (inc *Incremental) Step(v FeatureVector) (WindowResult, []EventRun, []ChainRun) {
	a := inc.a
	rep := inc.rep
	wr := WindowResult{Vector: v}

	nodes := a.graph.Nodes()
	activeNodes := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if a.graph.NodeActive(n, v) {
			activeNodes[n] = true
		}
	}

	// Backward trace: for each active consequence, walk matched
	// chains back to their causes.
	causeSet := map[string]bool{}
	for _, c := range a.chains {
		matched := true
		for _, n := range c.Nodes {
			if !activeNodes[n] {
				matched = false
				break
			}
		}
		if matched {
			wr.ChainIDs = append(wr.ChainIDs, c.ID)
			causeSet[c.Cause()] = true
		}
	}
	for _, n := range a.graph.Consequences() {
		if activeNodes[n] {
			wr.Consequences = append(wr.Consequences, n)
		}
	}
	for cause := range causeSet {
		wr.Causes = append(wr.Causes, cause)
	}
	sortStrings(wr.Causes)
	if inc.keepWindows {
		rep.Windows = append(rep.Windows, wr)
	}

	// Update node runs.
	var closedNodes []EventRun
	for _, n := range nodes {
		if activeNodes[n] {
			if r := inc.openNode[n]; r != nil {
				r.End = v.End
				r.Windows++
			} else {
				inc.openNode[n] = &EventRun{Node: n, Start: v.Start, End: v.End, Windows: 1}
			}
		} else if r := inc.openNode[n]; r != nil {
			rep.NodeEvents[n] = append(rep.NodeEvents[n], *r)
			closedNodes = append(closedNodes, *r)
			delete(inc.openNode, n)
		}
	}
	// Update chain runs.
	var closedChains []ChainRun
	matchedNow := make(map[int]bool, len(wr.ChainIDs))
	for _, id := range wr.ChainIDs {
		matchedNow[id] = true
		if r := inc.openChain[id]; r != nil {
			r.End = v.End
			r.Windows++
		} else {
			inc.openChain[id] = &ChainRun{Chain: a.chains[id-1], Start: v.Start, End: v.End, Windows: 1}
		}
	}
	for id := 1; id <= len(a.chains); id++ {
		if r := inc.openChain[id]; r != nil && !matchedNow[id] {
			rep.ChainEvents[id] = append(rep.ChainEvents[id], *r)
			closedChains = append(closedChains, *r)
			delete(inc.openChain, id)
		}
	}
	return wr, closedNodes, closedChains
}

// Finish closes every run still open, stamps the session duration, and
// returns the final report plus the runs closed here. The Incremental
// must not be used afterwards.
func (inc *Incremental) Finish(duration sim.Time) (*Report, []EventRun, []ChainRun) {
	rep := inc.rep
	rep.Duration = duration
	var closedNodes []EventRun
	for _, n := range inc.a.graph.Nodes() {
		if r := inc.openNode[n]; r != nil {
			rep.NodeEvents[n] = append(rep.NodeEvents[n], *r)
			closedNodes = append(closedNodes, *r)
			delete(inc.openNode, n)
		}
	}
	var closedChains []ChainRun
	for id := 1; id <= len(inc.a.chains); id++ {
		if r := inc.openChain[id]; r != nil {
			rep.ChainEvents[id] = append(rep.ChainEvents[id], *r)
			closedChains = append(closedChains, *r)
			delete(inc.openChain, id)
		}
	}
	return rep, closedNodes, closedChains
}

// Snapshot returns a point-in-time copy of the report with runs still
// open treated as closed now, for live inspection of an unfinished
// session. The Incremental remains usable.
func (inc *Incremental) Snapshot(asOf sim.Time) *Report {
	rep := inc.rep
	cp := &Report{
		CellName:    rep.CellName,
		Scenario:    rep.Scenario,
		Duration:    asOf,
		Windows:     rep.Windows[:len(rep.Windows):len(rep.Windows)],
		NodeEvents:  make(map[string][]EventRun, len(rep.NodeEvents)),
		ChainEvents: make(map[int][]ChainRun, len(rep.ChainEvents)),
		chains:      rep.chains,
	}
	for n, runs := range rep.NodeEvents {
		cp.NodeEvents[n] = append([]EventRun(nil), runs...)
	}
	for id, runs := range rep.ChainEvents {
		cp.ChainEvents[id] = append([]ChainRun(nil), runs...)
	}
	for n, r := range inc.openNode {
		cp.NodeEvents[n] = append(cp.NodeEvents[n], *r)
	}
	for id, r := range inc.openChain {
		cp.ChainEvents[id] = append(cp.ChainEvents[id], *r)
	}
	return cp
}
