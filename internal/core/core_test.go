package core

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

func TestFeatureNamesCount(t *testing.T) {
	names := FeatureNames()
	if len(names) != 36 {
		t.Fatalf("feature vector has %d dims, want 36", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"local_jitter_buffer_drain", "remote_target_bitrate_down",
		"forward_delay_up", "reverse_delay_up",
		"ul_harq_retx", "dl_rlc_retx", "ul_scheduling", "rrc_state_change",
	} {
		if !seen[want] {
			t.Fatalf("missing feature %q", want)
		}
	}
}

func TestDefaultGraphHas24Chains(t *testing.T) {
	g := DefaultGraph()
	chains := g.EnumerateChains()
	if len(chains) != 24 {
		t.Fatalf("default graph enumerates %d chains, paper specifies 24", len(chains))
	}
	// All six causes and three consequence classes appear.
	causes := map[string]bool{}
	cons := map[string]bool{}
	for _, c := range chains {
		causes[c.Cause()] = true
		cons[c.Consequence()] = true
	}
	for _, c := range CauseClasses() {
		if !causes[c] {
			t.Fatalf("cause %q missing from default chains", c)
		}
	}
	for _, c := range ConsequenceClasses() {
		if !cons[c] {
			t.Fatalf("consequence %q missing from default chains", c)
		}
	}
}

func TestGraphKinds(t *testing.T) {
	g := DefaultGraph()
	if g.Kind("poor_channel") != KindCause {
		t.Fatal("poor_channel should be a cause")
	}
	if g.Kind("forward_delay_up") != KindIntermediate {
		t.Fatal("forward_delay_up should be intermediate")
	}
	if g.Kind("pushback_rate_down") != KindConsequence {
		t.Fatal("pushback_rate_down should be a consequence")
	}
}

func TestParserRejectsCycle(t *testing.T) {
	_, err := ParseChainsString("a --> b\nb --> a\n")
	if err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestParserRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"A --> b", "a ->> b", "a -->", "alias x y", "alias = b"} {
		if _, err := ParseChainsString(bad); err == nil {
			t.Fatalf("accepted invalid line %q", bad)
		}
	}
}

func TestParserFig11Example(t *testing.T) {
	// The exact example from the paper's Fig. 11.
	text := `dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain
`
	g, err := ParseChainsString(text)
	if err != nil {
		t.Fatal(err)
	}
	chains := g.EnumerateChains()
	if len(chains) != 2 {
		t.Fatalf("chains = %d, want 2", len(chains))
	}
	if g.Kind("local_jitter_buffer_drain") != KindConsequence {
		t.Fatal("consequence kind wrong")
	}
	if len(g.Causes()) != 2 {
		t.Fatalf("causes = %v", g.Causes())
	}
}

func TestFormatRoundTrip(t *testing.T) {
	g := DefaultGraph()
	text := FormatGraph(g)
	g2, err := ParseChainsString(text)
	if err != nil {
		t.Fatalf("formatted graph does not reparse: %v\n%s", err, text)
	}
	if len(g2.EnumerateChains()) != len(g.EnumerateChains()) {
		t.Fatal("round trip changed chain count")
	}
}

// synthSet builds a synthetic trace that triggers a known causal chain:
// DL HARQ retx → forward delay up → local jitter buffer drain, active
// between 10 s and 15 s of a 30 s trace.
func synthSet() *trace.Set {
	set := &trace.Set{CellName: "synthetic", Duration: 30 * sim.Second, HasGNBLog: true}
	// Stats at 50 ms for both sides.
	for at := sim.Time(0); at < 30*sim.Second; at += 50 * sim.Millisecond {
		inEvent := at >= 10*sim.Second && at < 15*sim.Second
		local := trace.WebRTCStatsRecord{
			At: at, Local: true,
			InboundFPS: 30, OutboundFPS: 30, OutboundHeight: 540,
			VideoJBDelayMs: 120, TargetBitrateBps: 2e6, PushbackRateBps: 2e6,
			OutstandingBytes: 10000, CongestionWindow: 50000,
		}
		if inEvent {
			local.VideoJBDelayMs = 0 // drain
			local.InboundFPS = 12
		}
		remote := local
		remote.Local = false
		remote.VideoJBDelayMs = 100
		remote.InboundFPS = 30
		set.Stats = append(set.Stats, local, remote)
	}
	// Media packets every 10 ms in both directions; DL delay ramps
	// during the event (30 → 200 ms), UL stays flat.
	seq := uint64(0)
	for at := sim.Time(0); at < 30*sim.Second; at += 10 * sim.Millisecond {
		seq++
		set.Packets = append(set.Packets, trace.PacketRecord{
			Seq: seq, Kind: netem.KindVideo, Dir: netem.Uplink, Size: 1200,
			SentAt: at, Arrived: at + 30*sim.Millisecond,
		})
		dlDelay := 30 * sim.Millisecond
		if at >= 10*sim.Second && at < 15*sim.Second {
			frac := float64(at-10*sim.Second) / float64(5*sim.Second)
			dlDelay = sim.FromMilliseconds(30 + 170*frac)
		}
		seq++
		set.Packets = append(set.Packets, trace.PacketRecord{
			Seq: seq, Kind: netem.KindVideo, Dir: netem.Downlink, Size: 1200,
			SentAt: at, Arrived: at + dlDelay,
		})
	}
	// DCI: healthy UL and DL scheduling; DL HARQ retx burst in-event.
	for at := sim.Time(0); at < 30*sim.Second; at += 2 * sim.Millisecond {
		set.DCI = append(set.DCI, trace.DCIRecord{
			At: at, Dir: netem.Uplink, RNTI: 100, OwnPRB: 20, MCS: 20, TBSBits: 20000,
		})
		rec := trace.DCIRecord{At: at, Dir: netem.Downlink, RNTI: 100, OwnPRB: 20, MCS: 20, TBSBits: 20000}
		if at >= 10*sim.Second && at < 15*sim.Second && (at/(2*sim.Millisecond))%10 == 0 {
			rec.HARQRetx = true
		}
		set.DCI = append(set.DCI, rec)
	}
	set.Sort()
	return set
}

func TestAnalyzerDetectsInjectedChain(t *testing.T) {
	a, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.Analyze(synthSet())
	if err != nil {
		t.Fatal(err)
	}
	// The drain consequence must be detected...
	if rep.EventCount("jitter_buffer_drain") == 0 {
		t.Fatal("jitter buffer drain not detected")
	}
	// ...the forward delay intermediate...
	if rep.EventCount("forward_delay_up") == 0 {
		t.Fatal("forward delay uptrend not detected")
	}
	// ...and the HARQ cause, linked via a matched chain.
	if rep.EventCount("harq_retx") == 0 {
		t.Fatal("HARQ retx cause not detected")
	}
	found := false
	for _, w := range rep.Windows {
		for _, id := range w.ChainIDs {
			c := a.Chains()[id-1]
			if c.Cause() == "harq_retx" && c.Consequence() == "jitter_buffer_drain" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("harq→jb-drain chain never matched")
	}
	// The detection must be localized around the injected window.
	for _, runs := range rep.NodeEvents["jitter_buffer_drain"] {
		if runs.End < 9*sim.Second || runs.Start > 17*sim.Second {
			t.Fatalf("drain detected far from injection: %+v", runs)
		}
	}
}

func TestAnalyzerQuietTraceIsQuiet(t *testing.T) {
	set := &trace.Set{CellName: "quiet", Duration: 20 * sim.Second}
	for at := sim.Time(0); at < 20*sim.Second; at += 50 * sim.Millisecond {
		rec := trace.WebRTCStatsRecord{
			At: at, Local: true, InboundFPS: 30, OutboundFPS: 30, OutboundHeight: 540,
			VideoJBDelayMs: 100, TargetBitrateBps: 2e6, PushbackRateBps: 2e6,
			OutstandingBytes: 10000, CongestionWindow: 50000,
		}
		rem := rec
		rem.Local = false
		set.Stats = append(set.Stats, rec, rem)
	}
	seq := uint64(0)
	for at := sim.Time(0); at < 20*sim.Second; at += 10 * sim.Millisecond {
		for _, dir := range []netem.Direction{netem.Uplink, netem.Downlink} {
			seq++
			set.Packets = append(set.Packets, trace.PacketRecord{
				Seq: seq, Kind: netem.KindVideo, Dir: dir, Size: 1200,
				SentAt: at, Arrived: at + 25*sim.Millisecond,
			})
		}
	}
	set.Sort()
	a, _ := NewAnalyzer(DetectorConfig{}, nil)
	rep, err := a.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, cons := range ConsequenceClasses() {
		if n := rep.EventCount(cons); n != 0 {
			t.Fatalf("quiet trace produced %d %s events", n, cons)
		}
	}
	if rep.TotalChainEvents() != 0 {
		t.Fatalf("quiet trace matched %d chains", rep.TotalChainEvents())
	}
}

func TestConditionalProbabilities(t *testing.T) {
	a, _ := NewAnalyzer(DetectorConfig{}, nil)
	rep, err := a.Analyze(synthSet())
	if err != nil {
		t.Fatal(err)
	}
	probs := rep.ConditionalProbabilities(CauseClasses(), ConsequenceClasses())
	row := probs["jitter_buffer_drain"]
	if row["harq_retx"] == 0 {
		t.Fatalf("P(harq|jb_drain) = 0; row = %v", row)
	}
	for cause, p := range row {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %s=%v", cause, p)
		}
	}
}

func TestChainRatiosSumBounded(t *testing.T) {
	a, _ := NewAnalyzer(DetectorConfig{}, nil)
	rep, _ := a.Analyze(synthSet())
	ratios := rep.ChainRatios(CauseClasses(), ConsequenceClasses())
	var sum float64
	for _, row := range ratios {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("ratio out of range: %v", v)
			}
			sum += v
		}
	}
	if sum > 1.0001 {
		t.Fatalf("ratios sum to %v > 1", sum)
	}
}

func TestEventRunCollapsing(t *testing.T) {
	// A single 5 s event seen by ~10 overlapping windows must count as
	// one event run, not ten.
	a, _ := NewAnalyzer(DetectorConfig{}, nil)
	rep, _ := a.Analyze(synthSet())
	runs := rep.NodeEvents["jitter_buffer_drain"]
	if len(runs) > 2 {
		t.Fatalf("one injected drain produced %d event runs", len(runs))
	}
	if runs[0].Windows < 3 {
		t.Fatalf("run covers only %d windows", runs[0].Windows)
	}
}

func TestMergeReports(t *testing.T) {
	a, _ := NewAnalyzer(DetectorConfig{}, nil)
	r1, _ := a.Analyze(synthSet())
	r2, _ := a.Analyze(synthSet())
	m := MergeReports([]*Report{r1, r2})
	if m.Duration != r1.Duration*2 {
		t.Fatal("merged duration wrong")
	}
	if m.EventCount("jitter_buffer_drain") != 2*r1.EventCount("jitter_buffer_drain") {
		t.Fatal("merged event counts wrong")
	}
}

func TestGeneratedGoParses(t *testing.T) {
	src := GenerateGo(DefaultGraph(), "detect")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "detect.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	// Every chain ID appears exactly once.
	for i := 1; i <= 24; i++ {
		marker := "res.Chains = append(res.Chains, "
		if !strings.Contains(src, marker) {
			t.Fatal("no chain appends in generated code")
		}
	}
	if got := strings.Count(src, "res.Chains = append"); got != 24 {
		t.Fatalf("generated code has %d chain sites, want 24", got)
	}
}

func TestGeneratedGoMatchesInterpreter(t *testing.T) {
	// Semantics parity on the Fig. 11 two-chain example: evaluate both
	// the interpreter and a hand-executed reading of the generated
	// structure for all 8 feature combinations.
	text := `dl_rlc_retx --> forward_delay_up --> local_jitter_buffer_drain
dl_harq_retx --> forward_delay_up --> local_jitter_buffer_drain
`
	g, err := ParseChainsString(text)
	if err != nil {
		t.Fatal(err)
	}
	chains := g.EnumerateChains()
	for mask := 0; mask < 8; mask++ {
		v := NewFeatureVector(map[string]bool{
			"dl_rlc_retx":               mask&1 != 0,
			"dl_harq_retx":              mask&2 != 0,
			"forward_delay_up":          mask&4 != 0,
			"local_jitter_buffer_drain": true,
		})
		for _, c := range chains {
			want := true
			for _, n := range c.Nodes {
				if !g.NodeActive(n, v) {
					want = false
				}
			}
			// The generated code matches a chain iff all nodes active —
			// same predicate; spot-check the condition text exists.
			src := GenerateGo(g, "d")
			if want && !strings.Contains(src, c.String()) {
				t.Fatalf("chain %q missing from generated code", c.String())
			}
		}
	}
}

// Property: any parseable acyclic chain file enumerates at least one
// chain per line and FormatGraph round-trips.
func TestParserProperty(t *testing.T) {
	nodes := []string{"a", "b", "c", "d", "e", "f"}
	f := func(edges []uint8) bool {
		var lines []string
		for _, e := range edges {
			from := nodes[int(e)%3]   // a,b,c
			to := nodes[3+int(e/3)%3] // d,e,f — guarantees acyclicity
			lines = append(lines, from+" --> "+to)
		}
		if len(lines) == 0 {
			return true
		}
		g, err := ParseChainsString(strings.Join(lines, "\n"))
		if err != nil {
			return false
		}
		if _, err := ParseChainsString(FormatGraph(g)); err != nil {
			return false
		}
		return len(g.EnumerateChains()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
