package core

import (
	"fmt"

	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Analyzer is the Domino detection engine: window geometry + event
// thresholds + causal graph.
//
// An Analyzer is immutable after NewAnalyzer and safe for concurrent
// use: Analyze only reads the configuration and graph and builds all
// per-trace state locally, so one Analyzer may serve any number of
// goroutines (see AnalyzeBatch). Callers must not mutate the Graph
// passed to NewAnalyzer afterwards.
type Analyzer struct {
	cfg    DetectorConfig
	graph  *Graph
	chains []Chain
}

// NewAnalyzer builds an analyzer. A nil graph selects the paper's
// default Fig. 9 graph; a zero config selects Table 5 thresholds.
func NewAnalyzer(cfg DetectorConfig, graph *Graph) (*Analyzer, error) {
	if graph == nil {
		graph = DefaultGraph()
	}
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg.normalize(), graph: graph, chains: graph.EnumerateChains()}, nil
}

// Graph returns the analyzer's causal graph.
func (a *Analyzer) Graph() *Graph { return a.graph }

// Chains returns the enumerated causal chains.
func (a *Analyzer) Chains() []Chain { return a.chains }

// Config returns the normalized detector configuration.
func (a *Analyzer) Config() DetectorConfig { return a.cfg }

// WindowResult is the detection output for one window position.
type WindowResult struct {
	Vector FeatureVector
	// Consequences lists consequence-class nodes active in the window.
	Consequences []string
	// Causes lists cause nodes reached by backward tracing from an
	// active consequence through fully-active chains.
	Causes []string
	// ChainIDs lists matched chain IDs (every node active).
	ChainIDs []int
}

// EventRun is a maximal run of consecutive windows in which the same
// node (or chain) stayed active — the unit Domino counts as one event,
// collapsing the W/Δt-fold multiplicity of the sliding window.
type EventRun struct {
	Node       string
	Start, End sim.Time
	Windows    int
}

// ChainRun is a maximal run of windows matching one chain.
type ChainRun struct {
	Chain      Chain
	Start, End sim.Time
	Windows    int
}

// Report is the full analysis result for one trace set.
type Report struct {
	CellName string
	Duration sim.Time
	Windows  []WindowResult

	// NodeEvents are collapsed event runs per node (causes,
	// intermediates, consequences, and raw features).
	NodeEvents map[string][]EventRun
	// ChainEvents are collapsed runs per chain ID.
	ChainEvents map[int][]ChainRun

	chains []Chain
}

// Analyze runs Domino over a sorted trace set.
func (a *Analyzer) Analyze(set *trace.Set) (*Report, error) {
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	ix := newIndexedTrace(set)
	rep := &Report{
		CellName:    set.CellName,
		Duration:    set.Duration,
		NodeEvents:  make(map[string][]EventRun),
		ChainEvents: make(map[int][]ChainRun),
		chains:      a.chains,
	}

	// Track open runs for nodes and chains.
	openNode := make(map[string]*EventRun)
	openChain := make(map[int]*ChainRun)

	nodes := a.graph.Nodes()
	end := set.Duration - a.cfg.Window
	for start := sim.Time(0); start <= end; start += a.cfg.Step {
		v := ix.evalWindow(a.cfg, start)
		wr := WindowResult{Vector: v}

		activeNodes := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			if a.graph.NodeActive(n, v) {
				activeNodes[n] = true
			}
		}

		// Backward trace: for each active consequence, walk matched
		// chains back to their causes.
		causeSet := map[string]bool{}
		for _, c := range a.chains {
			matched := true
			for _, n := range c.Nodes {
				if !activeNodes[n] {
					matched = false
					break
				}
			}
			if matched {
				wr.ChainIDs = append(wr.ChainIDs, c.ID)
				causeSet[c.Cause()] = true
			}
		}
		for _, n := range a.graph.Consequences() {
			if activeNodes[n] {
				wr.Consequences = append(wr.Consequences, n)
			}
		}
		for cause := range causeSet {
			wr.Causes = append(wr.Causes, cause)
		}
		sortStrings(wr.Causes)
		rep.Windows = append(rep.Windows, wr)

		// Update node runs.
		for _, n := range nodes {
			if activeNodes[n] {
				if r := openNode[n]; r != nil {
					r.End = v.End
					r.Windows++
				} else {
					openNode[n] = &EventRun{Node: n, Start: v.Start, End: v.End, Windows: 1}
				}
			} else if r := openNode[n]; r != nil {
				rep.NodeEvents[n] = append(rep.NodeEvents[n], *r)
				delete(openNode, n)
			}
		}
		// Update chain runs.
		matchedNow := make(map[int]bool, len(wr.ChainIDs))
		for _, id := range wr.ChainIDs {
			matchedNow[id] = true
			if r := openChain[id]; r != nil {
				r.End = v.End
				r.Windows++
			} else {
				openChain[id] = &ChainRun{Chain: a.chains[id-1], Start: v.Start, End: v.End, Windows: 1}
			}
		}
		for id, r := range openChain {
			if !matchedNow[id] {
				rep.ChainEvents[id] = append(rep.ChainEvents[id], *r)
				delete(openChain, id)
			}
		}
	}
	// Close any runs still open at trace end.
	for n, r := range openNode {
		rep.NodeEvents[n] = append(rep.NodeEvents[n], *r)
	}
	for id, r := range openChain {
		rep.ChainEvents[id] = append(rep.ChainEvents[id], *r)
	}
	return rep, nil
}

// AnalyzeBatch analyzes independent trace sets concurrently across the
// given number of workers (<= 0 selects GOMAXPROCS) and returns the
// reports in input order. Report i is always sets[i]'s report, so the
// output is identical to calling Analyze in a loop; on failure the
// error of the lowest-index failing set is returned.
func (a *Analyzer) AnalyzeBatch(workers int, sets ...*trace.Set) ([]*Report, error) {
	out := make([]*Report, len(sets))
	err := parallel.ForEach(workers, len(sets), func(i int) error {
		rep, err := a.Analyze(sets[i])
		if err != nil {
			return fmt.Errorf("core: set %d (%s): %w", i, sets[i].CellName, err)
		}
		out[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EventCount returns the number of collapsed event runs for a node.
func (r *Report) EventCount(node string) int { return len(r.NodeEvents[node]) }

// EventsPerMinute returns the collapsed event rate for a node (Fig. 10).
func (r *Report) EventsPerMinute(node string) float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(len(r.NodeEvents[node])) / r.Duration.Seconds() * 60
}

// TotalChainEvents returns the number of collapsed chain runs.
func (r *Report) TotalChainEvents() int {
	n := 0
	for _, runs := range r.ChainEvents {
		n += len(runs)
	}
	return n
}

// DegradationEventsPerMinute counts consequence events per minute — the
// paper's headline "≈5 video quality degradation events per session per
// minute" metric.
func (r *Report) DegradationEventsPerMinute(consequences []string) float64 {
	n := 0
	for _, c := range consequences {
		n += len(r.NodeEvents[c])
	}
	if r.Duration <= 0 {
		return 0
	}
	return float64(n) / r.Duration.Seconds() * 60
}
