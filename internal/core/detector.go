package core

import (
	"fmt"

	"github.com/domino5g/domino/internal/parallel"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Analyzer is the Domino detection engine: window geometry + event
// thresholds + causal graph.
//
// An Analyzer is immutable after NewAnalyzer and safe for concurrent
// use: Analyze only reads the configuration and graph and builds all
// per-trace state locally, so one Analyzer may serve any number of
// goroutines (see AnalyzeBatch). Callers must not mutate the Graph
// passed to NewAnalyzer afterwards.
type Analyzer struct {
	cfg    DetectorConfig
	graph  *Graph
	chains []Chain
	comp   compiledGraph
}

// NewAnalyzer builds an analyzer. A nil graph selects the paper's
// default Fig. 9 graph; a zero config selects Table 5 thresholds.
func NewAnalyzer(cfg DetectorConfig, graph *Graph) (*Analyzer, error) {
	if graph == nil {
		graph = DefaultGraph()
	}
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	chains := graph.EnumerateChains()
	return &Analyzer{
		cfg:    cfg.normalize(),
		graph:  graph,
		chains: chains,
		comp:   compileGraph(graph, chains),
	}, nil
}

// compiledGraph is the causal DAG pre-resolved to index form, computed
// once per Analyzer so the per-window Step touches no strings or maps:
// nodes get dense integer IDs, every node's (alias-expanded) feature
// set becomes one FeatureBits mask, and chains become node-ID lists.
type compiledGraph struct {
	nodes        []string      // graph.Nodes() order; index = node ID
	nodeMask     []FeatureBits // per node: OR of its canonical features
	consequences []int         // consequence node IDs, stable order
	chainNodes   [][]int32     // per chain (ID-1): node IDs on the path
	chainCauseID []int32       // per chain: index into causes
	chainSigs    []string      // per chain: Chain.String(), precomputed
	causes       []string      // distinct chain causes, ascending
}

// compileGraph resolves the graph. A node's mask ORs the feature bits
// of every canonical feature reachable through its alias expansion —
// exactly Graph.NodeActive's recursion, evaluated once. Names that
// reach no canonical feature get a zero mask and are never active,
// matching the map-based evaluation of unknown features.
func compileGraph(g *Graph, chains []Chain) compiledGraph {
	nodes := g.Nodes()
	id := make(map[string]int, len(nodes))
	for i, n := range nodes {
		id[n] = i
	}
	cg := compiledGraph{nodes: nodes, nodeMask: make([]FeatureBits, len(nodes))}
	var resolve func(name string, seen map[string]bool) FeatureBits
	resolve = func(name string, seen map[string]bool) FeatureBits {
		if members, ok := g.aliases[name]; ok {
			if seen[name] {
				return 0
			}
			seen[name] = true
			var m FeatureBits
			for _, mem := range members {
				m |= resolve(mem, seen)
			}
			delete(seen, name)
			return m
		}
		var b FeatureBits
		if i, ok := FeatureID(name); ok {
			b.Set(i)
		}
		return b
	}
	seen := make(map[string]bool)
	for i, n := range nodes {
		cg.nodeMask[i] = resolve(n, seen)
	}
	for _, n := range g.Consequences() {
		cg.consequences = append(cg.consequences, id[n])
	}
	causeID := make(map[string]int)
	for _, c := range chains {
		if _, ok := causeID[c.Cause()]; !ok {
			causeID[c.Cause()] = 0
			cg.causes = append(cg.causes, c.Cause())
		}
	}
	sortStrings(cg.causes)
	for i, name := range cg.causes {
		causeID[name] = i
	}
	for _, c := range chains {
		ids := make([]int32, len(c.Nodes))
		for k, n := range c.Nodes {
			ids[k] = int32(id[n])
		}
		cg.chainNodes = append(cg.chainNodes, ids)
		cg.chainCauseID = append(cg.chainCauseID, int32(causeID[c.Cause()]))
		cg.chainSigs = append(cg.chainSigs, c.String())
	}
	return cg
}

// Graph returns the analyzer's causal graph.
func (a *Analyzer) Graph() *Graph { return a.graph }

// Chains returns the enumerated causal chains.
func (a *Analyzer) Chains() []Chain { return a.chains }

// Config returns the normalized detector configuration.
func (a *Analyzer) Config() DetectorConfig { return a.cfg }

// WindowResult is the detection output for one window position.
type WindowResult struct {
	Vector FeatureVector
	// Consequences lists consequence-class nodes active in the window.
	Consequences []string
	// Causes lists cause nodes reached by backward tracing from an
	// active consequence through fully-active chains.
	Causes []string
	// ChainIDs lists matched chain IDs (every node active).
	ChainIDs []int
}

// EventRun is a maximal run of consecutive windows in which the same
// node (or chain) stayed active — the unit Domino counts as one event,
// collapsing the W/Δt-fold multiplicity of the sliding window.
type EventRun struct {
	Node       string
	Start, End sim.Time
	Windows    int
}

// ChainRun is a maximal run of windows matching one chain.
type ChainRun struct {
	Chain      Chain
	Start, End sim.Time
	Windows    int
}

// Report is the full analysis result for one trace set.
type Report struct {
	CellName string
	// Scenario labels the report with the generating scenario's name
	// when the trace carried one, so multi-scenario sweeps stay
	// attributable.
	Scenario string
	Duration sim.Time
	Windows  []WindowResult

	// NodeEvents are collapsed event runs per node (causes,
	// intermediates, consequences, and raw features).
	NodeEvents map[string][]EventRun
	// ChainEvents are collapsed runs per chain ID.
	ChainEvents map[int][]ChainRun

	chains []Chain
}

// Analyze runs Domino over a sorted trace set. It is the batch driver
// of the incremental engine: one full index, then Step per window (see
// Incremental for the streaming driver — both produce identical
// reports for the same records by construction).
func (a *Analyzer) Analyze(set *trace.Set) (*Report, error) {
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	ix := newIndexedTrace(set, a.cfg)
	inc := a.NewIncremental(set.CellName)
	inc.SetScenario(set.Scenario)
	end := set.Duration - a.cfg.Window
	for start := sim.Time(0); start <= end; start += a.cfg.Step {
		inc.Step(ix.evalWindow(start))
	}
	rep, _, _ := inc.Finish(set.Duration)
	return rep, nil
}

// AnalyzeBatch analyzes independent trace sets concurrently across the
// given number of workers (<= 0 selects GOMAXPROCS) and returns the
// reports in input order. Report i is always sets[i]'s report, so the
// output is identical to calling Analyze in a loop; on failure the
// error of the lowest-index failing set is returned.
func (a *Analyzer) AnalyzeBatch(workers int, sets ...*trace.Set) ([]*Report, error) {
	out := make([]*Report, len(sets))
	err := parallel.ForEach(workers, len(sets), func(i int) error {
		rep, err := a.Analyze(sets[i])
		if err != nil {
			return fmt.Errorf("core: set %d (%s): %w", i, sets[i].CellName, err)
		}
		out[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EventCount returns the number of collapsed event runs for a node.
func (r *Report) EventCount(node string) int { return len(r.NodeEvents[node]) }

// EventsPerMinute returns the collapsed event rate for a node (Fig. 10).
func (r *Report) EventsPerMinute(node string) float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(len(r.NodeEvents[node])) / r.Duration.Seconds() * 60
}

// TotalChainEvents returns the number of collapsed chain runs.
func (r *Report) TotalChainEvents() int {
	n := 0
	for _, runs := range r.ChainEvents {
		n += len(runs)
	}
	return n
}

// DegradationEventsPerMinute counts consequence events per minute — the
// paper's headline "≈5 video quality degradation events per session per
// minute" metric.
func (r *Report) DegradationEventsPerMinute(consequences []string) float64 {
	n := 0
	for _, c := range consequences {
		n += len(r.NodeEvents[c])
	}
	if r.Duration <= 0 {
		return 0
	}
	return float64(n) / r.Duration.Seconds() * 60
}
