package core

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// The Domino configuration DSL (Fig. 11): one causal chain per line,
// nodes joined by "-->". Lines may also declare aliases that OR
// feature names together, letting chains be written at the
// cause-class level while detection stays per-direction:
//
//	# comment
//	alias poor_channel = ul_channel_degrades | dl_channel_degrades
//	poor_channel --> forward_delay_up --> jitter_buffer_drain
//
// Parsing produces a Graph; overlapping chains share nodes and edges.

var nodeNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// ParseChains parses DSL text into a graph.
func ParseChains(r io.Reader) (*Graph, error) {
	g := NewGraph()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "alias ") {
			if err := parseAlias(g, strings.TrimPrefix(line, "alias ")); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		parts := strings.Split(line, "-->")
		if len(parts) < 2 {
			return nil, fmt.Errorf("line %d: chain needs at least one '-->': %q", lineNo, line)
		}
		var nodes []string
		for _, p := range parts {
			name := strings.TrimSpace(p)
			if !nodeNameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid node name %q", lineNo, name)
			}
			nodes = append(nodes, name)
		}
		for i := 0; i+1 < len(nodes); i++ {
			g.AddEdge(nodes[i], nodes[i+1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseAlias(g *Graph, rest string) error {
	eq := strings.SplitN(rest, "=", 2)
	if len(eq) != 2 {
		return fmt.Errorf("alias needs '=': %q", rest)
	}
	name := strings.TrimSpace(eq[0])
	if !nodeNameRE.MatchString(name) {
		return fmt.Errorf("invalid alias name %q", name)
	}
	var members []string
	for _, m := range strings.Split(eq[1], "|") {
		m = strings.TrimSpace(m)
		if !nodeNameRE.MatchString(m) {
			return fmt.Errorf("invalid alias member %q", m)
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return fmt.Errorf("alias %q has no members", name)
	}
	g.AddAlias(name, members)
	return nil
}

// ParseChainsString parses DSL text from a string.
func ParseChainsString(s string) (*Graph, error) {
	return ParseChains(strings.NewReader(s))
}

// FormatGraph renders a graph back to DSL text (aliases first, then one
// line per enumerated chain).
func FormatGraph(g *Graph) string {
	var b strings.Builder
	var aliasNames []string
	for name := range g.Aliases() {
		aliasNames = append(aliasNames, name)
	}
	sortStrings(aliasNames)
	for _, name := range aliasNames {
		b.WriteString("alias ")
		b.WriteString(name)
		b.WriteString(" = ")
		b.WriteString(strings.Join(g.Aliases()[name], " | "))
		b.WriteString("\n")
	}
	if len(aliasNames) > 0 {
		b.WriteString("\n")
	}
	for _, c := range g.EnumerateChains() {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	return b.String()
}

func sortStrings(xs []string) {
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
}
