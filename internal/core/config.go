package core

import (
	"github.com/domino5g/domino/internal/sim"
)

// DetectorConfig holds the window geometry and every event-condition
// threshold of Table 5. Users override individual fields to tune
// detection for their deployment; zero values select paper defaults.
type DetectorConfig struct {
	// Window is the sliding-window length W (paper: 5 s).
	Window sim.Time
	// Step is the window advance Δt (paper: 0.5 s).
	Step sim.Time

	// FPSHigh/FPSLow: frame-rate drop needs max > FPSHigh before a
	// min < FPSLow (events 1–2).
	FPSHigh, FPSLow float64
	// JBDrainMs: a jitter-buffer sample at or below this counts as a
	// drain to zero (event 4).
	JBDrainMs float64
	// RelDrop is the relative decrease that counts as a downtrend for
	// target/pushback rates (events 5, 7) — suppresses estimator noise.
	RelDrop float64
	// PushbackNeqFrac: pushback ≠ target when pushback < target×(1−f)
	// (event 10).
	PushbackNeqFrac float64
	// DelayUpMs: delay-uptrend events additionally require a delay
	// sample above this (events 11–12; paper: 80 ms).
	DelayUpMs float64
	// TrendGroup is the sample count per averaging group for uptrend
	// detection (paper: 10).
	TrendGroup int
	// TBSDropFrac: TBS drop when min < frac × max (event 13; paper 0.8).
	TBSDropFrac float64
	// RateExceedFrac: fraction of window bins where app rate exceeds
	// TBS rate (event 14; paper 0.1).
	RateExceedFrac float64
	// RateBin is the bin width for event 14.
	RateBin sim.Time
	// CrossFrac: other-UE PRBs exceed this fraction of own PRBs
	// (event 15; paper 0.2).
	CrossFrac float64
	// MCSGroup is the grouping window for event 16 (paper 50 ms).
	MCSGroup sim.Time
	// MCSP90Below / MCSMedianBelow / MCSLowCount: event 16 thresholds
	// (paper: p90 < 20, median < 10 in more than 10 groups).
	MCSP90Below    float64
	MCSMedianBelow float64
	MCSLowCount    int
	// HARQCount: HARQ retx instances per window that count as an event
	// (event 17; paper 10).
	HARQCount int
}

// DefaultDetectorConfig returns the paper's Table 5 thresholds.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		Window:          5 * sim.Second,
		Step:            500 * sim.Millisecond,
		FPSHigh:         27,
		FPSLow:          25,
		JBDrainMs:       0.5,
		RelDrop:         0.05,
		PushbackNeqFrac: 0.02,
		DelayUpMs:       80,
		TrendGroup:      10,
		TBSDropFrac:     0.8,
		RateExceedFrac:  0.10,
		RateBin:         100 * sim.Millisecond,
		CrossFrac:       0.20,
		MCSGroup:        50 * sim.Millisecond,
		MCSP90Below:     20,
		MCSMedianBelow:  10,
		MCSLowCount:     10,
		HARQCount:       10,
	}
}

// normalize fills zero fields with defaults.
func (c DetectorConfig) normalize() DetectorConfig {
	d := DefaultDetectorConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Step <= 0 {
		c.Step = d.Step
	}
	if c.FPSHigh == 0 {
		c.FPSHigh = d.FPSHigh
	}
	if c.FPSLow == 0 {
		c.FPSLow = d.FPSLow
	}
	if c.JBDrainMs == 0 {
		c.JBDrainMs = d.JBDrainMs
	}
	if c.RelDrop == 0 {
		c.RelDrop = d.RelDrop
	}
	if c.PushbackNeqFrac == 0 {
		c.PushbackNeqFrac = d.PushbackNeqFrac
	}
	if c.DelayUpMs == 0 {
		c.DelayUpMs = d.DelayUpMs
	}
	if c.TrendGroup == 0 {
		c.TrendGroup = d.TrendGroup
	}
	if c.TBSDropFrac == 0 {
		c.TBSDropFrac = d.TBSDropFrac
	}
	if c.RateExceedFrac == 0 {
		c.RateExceedFrac = d.RateExceedFrac
	}
	if c.RateBin == 0 {
		c.RateBin = d.RateBin
	}
	if c.CrossFrac == 0 {
		c.CrossFrac = d.CrossFrac
	}
	if c.MCSGroup == 0 {
		c.MCSGroup = d.MCSGroup
	}
	if c.MCSP90Below == 0 {
		c.MCSP90Below = d.MCSP90Below
	}
	if c.MCSMedianBelow == 0 {
		c.MCSMedianBelow = d.MCSMedianBelow
	}
	if c.MCSLowCount == 0 {
		c.MCSLowCount = d.MCSLowCount
	}
	if c.HARQCount == 0 {
		c.HARQCount = d.HARQCount
	}
	return c
}
