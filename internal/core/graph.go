package core

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind classifies graph nodes for reporting.
type NodeKind int

// Node kinds: causes are roots (no incoming edges), consequences are
// sinks (no outgoing edges), everything else is intermediate.
const (
	KindCause NodeKind = iota
	KindIntermediate
	KindConsequence
)

// Graph is the user-configurable causal DAG. Nodes are feature names or
// aliases; edges point from cause toward consequence.
type Graph struct {
	// edges[from] lists direct successors.
	edges map[string][]string
	// aliases maps a node name to the feature names it ORs over.
	aliases map[string][]string
	// order preserves first-mention ordering for stable output.
	order []string
	seen  map[string]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		edges:   make(map[string][]string),
		aliases: make(map[string][]string),
		seen:    make(map[string]bool),
	}
}

func (g *Graph) touch(name string) {
	if !g.seen[name] {
		g.seen[name] = true
		g.order = append(g.order, name)
	}
}

// AddEdge inserts a directed edge (idempotent).
func (g *Graph) AddEdge(from, to string) {
	g.touch(from)
	g.touch(to)
	for _, t := range g.edges[from] {
		if t == to {
			return
		}
	}
	g.edges[from] = append(g.edges[from], to)
}

// AddAlias declares name as the OR of the given feature names.
func (g *Graph) AddAlias(name string, features []string) {
	g.touch(name)
	g.aliases[name] = features
}

// Aliases returns the alias table.
func (g *Graph) Aliases() map[string][]string { return g.aliases }

// Nodes returns all node names in first-mention order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.order...) }

// Successors returns the direct successors of a node.
func (g *Graph) Successors(name string) []string { return g.edges[name] }

// Kind classifies a node by its connectivity.
func (g *Graph) Kind(name string) NodeKind {
	hasOut := len(g.edges[name]) > 0
	hasIn := false
	for _, succs := range g.edges {
		for _, s := range succs {
			if s == name {
				hasIn = true
			}
		}
	}
	switch {
	case hasOut && !hasIn:
		return KindCause
	case !hasOut && hasIn:
		return KindConsequence
	default:
		return KindIntermediate
	}
}

// Causes returns root nodes in stable order.
func (g *Graph) Causes() []string { return g.byKind(KindCause) }

// Consequences returns sink nodes in stable order.
func (g *Graph) Consequences() []string { return g.byKind(KindConsequence) }

func (g *Graph) byKind(k NodeKind) []string {
	var out []string
	for _, n := range g.order {
		if len(g.edges[n]) == 0 && g.indegree(n) == 0 {
			continue // pure alias, not part of the DAG
		}
		if g.Kind(n) == k {
			out = append(out, n)
		}
	}
	return out
}

func (g *Graph) indegree(name string) int {
	n := 0
	for _, succs := range g.edges {
		for _, s := range succs {
			if s == name {
				n++
			}
		}
	}
	return n
}

// Validate checks the graph is a DAG and aliases reference no edges.
func (g *Graph) Validate() error {
	// Cycle detection via DFS colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(n string) error
	visit = func(n string) error {
		color[n] = gray
		for _, s := range g.edges[n] {
			switch color[s] {
			case gray:
				return fmt.Errorf("core: causal graph has a cycle through %q", s)
			case white:
				if err := visit(s); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, n := range g.order {
		if color[n] == white {
			if err := visit(n); err != nil {
				return err
			}
		}
	}
	for name := range g.aliases {
		if len(g.aliases[name]) == 0 {
			return fmt.Errorf("core: alias %q has no members", name)
		}
	}
	return nil
}

// Chain is one root-to-sink path through the graph: the unit the paper
// counts (24 chains in the default configuration).
type Chain struct {
	ID    int
	Nodes []string // cause first, consequence last
}

// Cause returns the chain's root node.
func (c Chain) Cause() string { return c.Nodes[0] }

// Consequence returns the chain's sink node.
func (c Chain) Consequence() string { return c.Nodes[len(c.Nodes)-1] }

// String renders the chain in DSL form.
func (c Chain) String() string { return strings.Join(c.Nodes, " --> ") }

// EnumerateChains lists every root-to-sink path in stable order and
// assigns chain IDs (1-based, as in the paper's generated code).
func (g *Graph) EnumerateChains() []Chain {
	var chains []Chain
	var path []string
	var dfs func(n string)
	dfs = func(n string) {
		path = append(path, n)
		succs := g.edges[n]
		if len(succs) == 0 {
			chains = append(chains, Chain{Nodes: append([]string(nil), path...)})
		}
		for _, s := range succs {
			dfs(s)
		}
		path = path[:len(path)-1]
	}
	for _, n := range g.Causes() {
		dfs(n)
	}
	sort.SliceStable(chains, func(i, j int) bool {
		return strings.Join(chains[i].Nodes, "\x00") < strings.Join(chains[j].Nodes, "\x00")
	})
	for i := range chains {
		chains[i].ID = i + 1
	}
	return chains
}

// NodeActive evaluates a node (alias-aware) against a feature vector.
func (g *Graph) NodeActive(name string, v FeatureVector) bool {
	if members, ok := g.aliases[name]; ok {
		for _, m := range members {
			if g.NodeActive(m, v) {
				return true
			}
		}
		return false
	}
	return v.Has(name)
}
