package core

import (
	"sort"
)

// ConditionalProbabilities computes Table 2: for each consequence
// class, the probability that a given cause was linked to it by a
// matched chain. A consequence event (collapsed run) may be attributed
// to several causes (columns can sum past 100%), or to none — the
// "Unknown" column.
func (r *Report) ConditionalProbabilities(causes, consequences []string) map[string]map[string]float64 {
	// Consequence→chain-ID index, built once per call (the chain table
	// is tiny) so attribution iterates only the consequence's own
	// chains instead of scanning every chain's runs per event. Built
	// locally — Report methods stay read-only and safe to share.
	idx := make(map[string][]int, 4)
	for _, c := range r.chains {
		idx[c.Consequence()] = append(idx[c.Consequence()], c.ID)
	}
	out := make(map[string]map[string]float64, len(consequences))
	// countedAt[cause] records the (1-based) event index the cause was
	// last attributed to, replacing the map the old causesDuring
	// allocated per event run.
	countedAt := make(map[string]int, 8)
	for _, cons := range consequences {
		row := make(map[string]float64, len(causes)+1)
		events := r.NodeEvents[cons]
		if len(events) == 0 {
			for _, c := range causes {
				row[c] = 0
			}
			row["unknown"] = 0
			out[cons] = row
			continue
		}
		counts := make(map[string]int, len(causes))
		unknown := 0
		clear(countedAt)
		for evi, ev := range events {
			attributed := false
			for _, id := range idx[cons] {
				cause := r.chains[id-1].Cause()
				if countedAt[cause] == evi+1 {
					attributed = true
					continue
				}
				for _, cr := range r.ChainEvents[id] {
					if cr.Start < ev.End && cr.End > ev.Start {
						countedAt[cause] = evi + 1
						counts[cause]++
						attributed = true
						break
					}
				}
			}
			if !attributed {
				unknown++
			}
		}
		for _, c := range causes {
			row[c] = float64(counts[c]) / float64(len(events))
		}
		row["unknown"] = float64(unknown) / float64(len(events))
		out[cons] = row
	}
	return out
}

// ChainRatios computes Table 4: each (cause, consequence) pair's share
// of all collapsed chain events.
func (r *Report) ChainRatios(causes, consequences []string) map[string]map[string]float64 {
	total := r.TotalChainEvents()
	out := make(map[string]map[string]float64, len(consequences))
	counts := make(map[string]map[string]int, len(consequences))
	for _, cons := range consequences {
		counts[cons] = make(map[string]int, len(causes))
	}
	for id, runs := range r.ChainEvents {
		chain := r.chains[id-1]
		if m, ok := counts[chain.Consequence()]; ok {
			m[chain.Cause()] += len(runs)
		}
	}
	for _, cons := range consequences {
		row := make(map[string]float64, len(causes))
		for _, c := range causes {
			if total > 0 {
				row[c] = float64(counts[cons][c]) / float64(total)
			}
		}
		out[cons] = row
	}
	return out
}

// FrequencyTable computes Fig. 10: collapsed events per minute for the
// given nodes, in their given order.
func (r *Report) FrequencyTable(nodes []string) []NodeFrequency {
	out := make([]NodeFrequency, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, NodeFrequency{Node: n, PerMinute: r.EventsPerMinute(n)})
	}
	return out
}

// NodeFrequency is one Fig. 10 bar.
type NodeFrequency struct {
	Node      string
	PerMinute float64
}

// TopChains returns the chains with the most collapsed events,
// descending, up to n.
func (r *Report) TopChains(n int) []ChainCount {
	var out []ChainCount
	for id, runs := range r.ChainEvents {
		if len(runs) > 0 {
			out = append(out, ChainCount{Chain: r.chains[id-1], Events: len(runs)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		return out[i].Chain.ID < out[j].Chain.ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ChainCount pairs a chain with its collapsed event count.
type ChainCount struct {
	Chain  Chain
	Events int
}

// MergeReports combines reports from multiple sessions (e.g. all
// commercial-cell runs) into aggregate statistics by concatenating
// event runs and durations. Chain sets must be identical.
func MergeReports(reports []*Report) *Report {
	if len(reports) == 0 {
		return &Report{NodeEvents: map[string][]EventRun{}, ChainEvents: map[int][]ChainRun{}}
	}
	merged := &Report{
		CellName:    "merged",
		NodeEvents:  make(map[string][]EventRun),
		ChainEvents: make(map[int][]ChainRun),
		chains:      reports[0].chains,
	}
	for _, r := range reports {
		merged.Duration += r.Duration
		for n, runs := range r.NodeEvents {
			merged.NodeEvents[n] = append(merged.NodeEvents[n], runs...)
		}
		for id, runs := range r.ChainEvents {
			merged.ChainEvents[id] = append(merged.ChainEvents[id], runs...)
		}
	}
	return merged
}
