// Package core implements Domino, the paper's contribution: sliding a
// window over merged cross-layer traces, evaluating the twenty event
// conditions of Table 5 into a 36-dimensional feature vector, and
// backward-tracing a user-configurable causal DAG from every detected
// WebRTC consequence to its 5G root causes.
package core

import (
	"math/bits"

	"github.com/domino5g/domino/internal/sim"
)

// Canonical feature names. The vector has 36 dimensions: ten
// application events × {local, remote}, two path-delay events, six 5G
// events × {UL, DL}, plus UL-scheduling and RRC-state-change
// (Appendix D).
const (
	// Application events (prefix with side).
	FInboundFPSDown    = "inbound_framerate_down"
	FOutboundFPSDown   = "outbound_framerate_down"
	FOutboundResDown   = "outbound_resolution_down"
	FJitterBufferDrain = "jitter_buffer_drain"
	FTargetBitrateDown = "target_bitrate_down"
	FGCCOveruse        = "gcc_overuse"
	FPushbackRateDown  = "pushback_rate_down"
	FCwndFull          = "cwnd_full"
	FOutstandingUp     = "outstanding_bytes_up"
	FPushbackNeqTarget = "pushback_neq_target"

	// Path events.
	FForwardDelayUp = "forward_delay_up"
	FReverseDelayUp = "reverse_delay_up"

	// 5G events (prefix with direction).
	FTBSDown        = "tbs_down"
	FRateExceedsTBS = "rate_exceeds_tbs"
	FCrossTraffic   = "cross_traffic"
	FChannelDegrade = "channel_degrades"
	FHARQRetx       = "harq_retx"
	FRLCRetx        = "rlc_retx"

	// Singleton events.
	FULScheduling = "ul_scheduling"
	FRRCChange    = "rrc_state_change"
)

var appEvents = []string{
	FInboundFPSDown, FOutboundFPSDown, FOutboundResDown, FJitterBufferDrain,
	FTargetBitrateDown, FGCCOveruse, FPushbackRateDown, FCwndFull,
	FOutstandingUp, FPushbackNeqTarget,
}

var cellEvents = []string{
	FTBSDown, FRateExceedsTBS, FCrossTraffic, FChannelDegrade, FHARQRetx, FRLCRetx,
}

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = 36

// Feature indices: the bit position of every canonical feature inside a
// FeatureBits word, in FeatureNames order. Application events occupy
// [fidAppBase(si), fidAppBase(si)+10) per side, cell events
// [fidCellBase(di), fidCellBase(di)+6) per direction.
const (
	fidFwdDelay = 20
	fidRevDelay = 21
	fidULSched  = 34
	fidRRC      = 35
)

// Offsets of the app events within a side's block, in appEvents order.
const (
	appInFPS = iota
	appOutFPS
	appResDown
	appJBDrain
	appTargetDown
	appOveruse
	appPushDown
	appCwndFull
	appOutstanding
	appPushNeq
)

// Offsets of the cell events within a direction's block, in cellEvents
// order.
const (
	cellTBSDown = iota
	cellRateExceeds
	cellCross
	cellChanDegrade
	cellHARQ
	cellRLC
)

func fidAppBase(si int) int  { return si * 10 }
func fidCellBase(di int) int { return 22 + di*6 }

// featureNames is the canonical name table, built once; featureIndex is
// its inverse. Both are immutable after init.
var (
	featureNames []string
	featureIndex map[string]int
)

func init() {
	featureNames = make([]string, 0, NumFeatures)
	for _, side := range []string{"local_", "remote_"} {
		for _, e := range appEvents {
			featureNames = append(featureNames, side+e)
		}
	}
	featureNames = append(featureNames, FForwardDelayUp, FReverseDelayUp)
	for _, dir := range []string{"ul_", "dl_"} {
		for _, e := range cellEvents {
			featureNames = append(featureNames, dir+e)
		}
	}
	featureNames = append(featureNames, FULScheduling, FRRCChange)
	featureIndex = make(map[string]int, len(featureNames))
	for i, n := range featureNames {
		featureIndex[n] = i
	}
}

// FeatureNames returns the 36 canonical feature names in stable order.
// The table is computed once; callers receive a copy they may mutate.
func FeatureNames() []string {
	return append([]string(nil), featureNames...)
}

// FeatureID returns the bit index of a canonical feature name and
// whether the name is one of the 36 features.
func FeatureID(name string) (int, bool) {
	i, ok := featureIndex[name]
	return i, ok
}

// FeatureBits is a 36-bit set over the canonical features: bit i
// corresponds to FeatureNames()[i]. The zero value has no features
// active.
type FeatureBits uint64

// Has reports whether feature bit i is set.
func (b FeatureBits) Has(i int) bool { return b&(1<<uint(i)) != 0 }

// Set sets feature bit i.
func (b *FeatureBits) Set(i int) { *b |= 1 << uint(i) }

// Assign sets or clears feature bit i.
func (b *FeatureBits) Assign(i int, on bool) {
	if on {
		*b |= 1 << uint(i)
	} else {
		*b &^= 1 << uint(i)
	}
}

// Count returns the number of active features.
func (b FeatureBits) Count() int { return bits.OnesCount64(uint64(b)) }

// FeatureVector is the per-window detection result: the window bounds
// plus a fixed 36-bit set over the canonical features. It is a small
// value type — evaluating a window allocates nothing.
type FeatureVector struct {
	Start, End sim.Time
	Bits       FeatureBits
}

// Has reports whether the named feature fired in this window. Names
// outside the canonical 36 (e.g. custom graph nodes that no detector
// event feeds) are never active.
func (v FeatureVector) Has(name string) bool {
	i, ok := featureIndex[name]
	return ok && v.Bits.Has(i)
}

// Set records the named feature as active (on) or inactive (off),
// replacing direct writes to the former Active map. Unknown names are
// ignored — the detector only ever produces the canonical 36.
func (v *FeatureVector) Set(name string, on bool) {
	if i, ok := featureIndex[name]; ok {
		v.Bits.Assign(i, on)
	}
}

// Active returns the set of active features as a name→bool map — the
// representation FeatureVector used before the bitset rewrite, kept
// for reporting and codegen interop (GenerateGo's BackwardTrace takes
// exactly this map).
func (v FeatureVector) Active() map[string]bool {
	out := make(map[string]bool, v.Bits.Count())
	for i, n := range featureNames {
		if v.Bits.Has(i) {
			out[n] = true
		}
	}
	return out
}

// NewFeatureVector builds a vector from a name→bool assignment,
// ignoring unknown names. It is the inverse of Active, used by tests
// and by callers replaying externally computed assignments.
func NewFeatureVector(active map[string]bool) FeatureVector {
	var v FeatureVector
	for n, on := range active {
		v.Set(n, on)
	}
	return v
}
