// Package core implements Domino, the paper's contribution: sliding a
// window over merged cross-layer traces, evaluating the twenty event
// conditions of Table 5 into a 36-dimensional feature vector, and
// backward-tracing a user-configurable causal DAG from every detected
// WebRTC consequence to its 5G root causes.
package core

import (
	"sort"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Canonical feature names. The vector has 36 dimensions: ten
// application events × {local, remote}, two path-delay events, six 5G
// events × {UL, DL}, plus UL-scheduling and RRC-state-change
// (Appendix D).
const (
	// Application events (prefix with side).
	FInboundFPSDown    = "inbound_framerate_down"
	FOutboundFPSDown   = "outbound_framerate_down"
	FOutboundResDown   = "outbound_resolution_down"
	FJitterBufferDrain = "jitter_buffer_drain"
	FTargetBitrateDown = "target_bitrate_down"
	FGCCOveruse        = "gcc_overuse"
	FPushbackRateDown  = "pushback_rate_down"
	FCwndFull          = "cwnd_full"
	FOutstandingUp     = "outstanding_bytes_up"
	FPushbackNeqTarget = "pushback_neq_target"

	// Path events.
	FForwardDelayUp = "forward_delay_up"
	FReverseDelayUp = "reverse_delay_up"

	// 5G events (prefix with direction).
	FTBSDown        = "tbs_down"
	FRateExceedsTBS = "rate_exceeds_tbs"
	FCrossTraffic   = "cross_traffic"
	FChannelDegrade = "channel_degrades"
	FHARQRetx       = "harq_retx"
	FRLCRetx        = "rlc_retx"

	// Singleton events.
	FULScheduling = "ul_scheduling"
	FRRCChange    = "rrc_state_change"
)

var appEvents = []string{
	FInboundFPSDown, FOutboundFPSDown, FOutboundResDown, FJitterBufferDrain,
	FTargetBitrateDown, FGCCOveruse, FPushbackRateDown, FCwndFull,
	FOutstandingUp, FPushbackNeqTarget,
}

var cellEvents = []string{
	FTBSDown, FRateExceedsTBS, FCrossTraffic, FChannelDegrade, FHARQRetx, FRLCRetx,
}

// FeatureNames returns the 36 canonical feature names in stable order.
func FeatureNames() []string {
	out := make([]string, 0, 36)
	for _, side := range []string{"local_", "remote_"} {
		for _, e := range appEvents {
			out = append(out, side+e)
		}
	}
	out = append(out, FForwardDelayUp, FReverseDelayUp)
	for _, dir := range []string{"ul_", "dl_"} {
		for _, e := range cellEvents {
			out = append(out, dir+e)
		}
	}
	out = append(out, FULScheduling, FRRCChange)
	return out
}

// FeatureVector is the per-window detection result.
type FeatureVector struct {
	Start, End sim.Time
	Active     map[string]bool
}

// Has reports whether the named feature fired in this window.
func (v FeatureVector) Has(name string) bool { return v.Active[name] }

// indexedTrace pre-sorts a trace.Set into binary-searchable series so
// window evaluation is O(window) instead of O(trace).
type indexedTrace struct {
	set *trace.Set

	// Media (forward) and RTCP (reverse) delay series, both directions
	// merged, ordered by send time.
	fwdAt    []sim.Time
	fwdDelay []float64 // ms
	revAt    []sim.Time
	revDelay []float64

	// Per-direction app send rate accounting: media bytes by send time.
	appAt    [2][]sim.Time
	appBytes [2][]int

	// Per-direction DCI-derived series ordered by time.
	dciAt    [2][]sim.Time
	dciOwn   [2][]int // own-UE PRBs
	dciOther [2][]int // other-UE PRBs
	dciMCS   [2][]int
	dciTBS   [2][]int  // bits
	dciHARQ  [2][]bool // HARQ retx flag
	dciULUse [2][]bool // own transmission

	// RLC retx events (gNB log), per direction.
	rlcAt [2][]sim.Time

	// RNTI change times.
	rrcAt []sim.Time

	// Stats per side ordered by time.
	statsAt [2][]sim.Time
	stats   [2][]trace.WebRTCStatsRecord
}

func sideIdx(local bool) int {
	if local {
		return 0
	}
	return 1
}

func dirIdx(d netem.Direction) int {
	if d == netem.Uplink {
		return 0
	}
	return 1
}

// newIndexedTrace builds the index. The set must be sorted.
func newIndexedTrace(set *trace.Set) *indexedTrace {
	ix := &indexedTrace{set: set}
	for _, p := range set.Packets {
		di := dirIdx(p.Dir)
		if p.Kind == netem.KindRTCP {
			ix.revAt = append(ix.revAt, p.SentAt)
			ix.revDelay = append(ix.revDelay, p.Delay().Milliseconds())
			continue
		}
		if p.Kind == netem.KindCross {
			continue
		}
		ix.fwdAt = append(ix.fwdAt, p.SentAt)
		ix.fwdDelay = append(ix.fwdDelay, p.Delay().Milliseconds())
		ix.appAt[di] = append(ix.appAt[di], p.SentAt)
		ix.appBytes[di] = append(ix.appBytes[di], p.Size)
	}
	for _, r := range set.DCI {
		di := dirIdx(r.Dir)
		ix.dciAt[di] = append(ix.dciAt[di], r.At)
		ix.dciOwn[di] = append(ix.dciOwn[di], r.OwnPRB)
		ix.dciOther[di] = append(ix.dciOther[di], r.OtherPRB)
		ix.dciMCS[di] = append(ix.dciMCS[di], r.MCS)
		tbs := 0
		if r.OwnPRB > 0 {
			tbs = r.TBSBits
		}
		ix.dciTBS[di] = append(ix.dciTBS[di], tbs)
		ix.dciHARQ[di] = append(ix.dciHARQ[di], r.HARQRetx)
		ix.dciULUse[di] = append(ix.dciULUse[di], r.OwnPRB > 0)
		// The DCI RLC-retx annotation is gNB-internal knowledge: only
		// private cells with base-station logs expose it (the paper's
		// commercial cells detect no RLC retx for exactly this reason).
		if r.RLCRetx && set.HasGNBLog {
			ix.rlcAt[di] = append(ix.rlcAt[di], r.At)
		}
	}
	for _, g := range set.GNBLogs {
		if g.Kind == trace.GNBLogRLCRetx {
			di := dirIdx(g.Dir)
			ix.rlcAt[di] = append(ix.rlcAt[di], g.At)
		}
	}
	for i := range ix.rlcAt {
		sort.Slice(ix.rlcAt[i], func(a, b int) bool { return ix.rlcAt[i][a] < ix.rlcAt[i][b] })
	}
	for _, r := range set.RRC {
		ix.rrcAt = append(ix.rrcAt, r.At)
	}
	for _, s := range set.Stats {
		si := sideIdx(s.Local)
		ix.statsAt[si] = append(ix.statsAt[si], s.At)
		ix.stats[si] = append(ix.stats[si], s)
	}
	return ix
}

// window returns [lo, hi) index bounds of at-values within [start, end).
func window(at []sim.Time, start, end sim.Time) (int, int) {
	lo := sort.Search(len(at), func(i int) bool { return at[i] >= start })
	hi := sort.Search(len(at), func(i int) bool { return at[i] >= end })
	return lo, hi
}
