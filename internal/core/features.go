// Package core implements Domino, the paper's contribution: sliding a
// window over merged cross-layer traces, evaluating the twenty event
// conditions of Table 5 into a 36-dimensional feature vector, and
// backward-tracing a user-configurable causal DAG from every detected
// WebRTC consequence to its 5G root causes.
package core

import (
	"sort"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// Canonical feature names. The vector has 36 dimensions: ten
// application events × {local, remote}, two path-delay events, six 5G
// events × {UL, DL}, plus UL-scheduling and RRC-state-change
// (Appendix D).
const (
	// Application events (prefix with side).
	FInboundFPSDown    = "inbound_framerate_down"
	FOutboundFPSDown   = "outbound_framerate_down"
	FOutboundResDown   = "outbound_resolution_down"
	FJitterBufferDrain = "jitter_buffer_drain"
	FTargetBitrateDown = "target_bitrate_down"
	FGCCOveruse        = "gcc_overuse"
	FPushbackRateDown  = "pushback_rate_down"
	FCwndFull          = "cwnd_full"
	FOutstandingUp     = "outstanding_bytes_up"
	FPushbackNeqTarget = "pushback_neq_target"

	// Path events.
	FForwardDelayUp = "forward_delay_up"
	FReverseDelayUp = "reverse_delay_up"

	// 5G events (prefix with direction).
	FTBSDown        = "tbs_down"
	FRateExceedsTBS = "rate_exceeds_tbs"
	FCrossTraffic   = "cross_traffic"
	FChannelDegrade = "channel_degrades"
	FHARQRetx       = "harq_retx"
	FRLCRetx        = "rlc_retx"

	// Singleton events.
	FULScheduling = "ul_scheduling"
	FRRCChange    = "rrc_state_change"
)

var appEvents = []string{
	FInboundFPSDown, FOutboundFPSDown, FOutboundResDown, FJitterBufferDrain,
	FTargetBitrateDown, FGCCOveruse, FPushbackRateDown, FCwndFull,
	FOutstandingUp, FPushbackNeqTarget,
}

var cellEvents = []string{
	FTBSDown, FRateExceedsTBS, FCrossTraffic, FChannelDegrade, FHARQRetx, FRLCRetx,
}

// FeatureNames returns the 36 canonical feature names in stable order.
func FeatureNames() []string {
	out := make([]string, 0, 36)
	for _, side := range []string{"local_", "remote_"} {
		for _, e := range appEvents {
			out = append(out, side+e)
		}
	}
	out = append(out, FForwardDelayUp, FReverseDelayUp)
	for _, dir := range []string{"ul_", "dl_"} {
		for _, e := range cellEvents {
			out = append(out, dir+e)
		}
	}
	out = append(out, FULScheduling, FRRCChange)
	return out
}

// FeatureVector is the per-window detection result.
type FeatureVector struct {
	Start, End sim.Time
	Active     map[string]bool
}

// Has reports whether the named feature fired in this window.
func (v FeatureVector) Has(name string) bool { return v.Active[name] }

// indexedTrace holds a trace as binary-searchable per-source series so
// window evaluation is O(window) instead of O(trace). It is built in
// one shot from a full Set (batch analysis) or grown record-by-record
// and pruned from the front (streaming analysis) — evalWindow works
// identically on both because it only ever reads the [start, end)
// slice of each series.
type indexedTrace struct {
	hasGNBLog bool

	// Media (forward) and RTCP (reverse) delay series, both directions
	// merged, ordered by send time.
	fwdAt    []sim.Time
	fwdDelay []float64 // ms
	revAt    []sim.Time
	revDelay []float64

	// Per-direction app send rate accounting: media bytes by send time.
	appAt    [2][]sim.Time
	appBytes [2][]int

	// Per-direction DCI-derived series ordered by time.
	dciAt    [2][]sim.Time
	dciOwn   [2][]int // own-UE PRBs
	dciOther [2][]int // other-UE PRBs
	dciMCS   [2][]int
	dciTBS   [2][]int  // bits
	dciHARQ  [2][]bool // HARQ retx flag
	dciULUse [2][]bool // own transmission

	// RLC retx events (gNB log), per direction.
	rlcAt [2][]sim.Time

	// RNTI change times.
	rrcAt []sim.Time

	// Stats per side ordered by time.
	statsAt [2][]sim.Time
	stats   [2][]trace.WebRTCStatsRecord
}

func sideIdx(local bool) int {
	if local {
		return 0
	}
	return 1
}

func dirIdx(d netem.Direction) int {
	if d == netem.Uplink {
		return 0
	}
	return 1
}

// newIndexedTrace builds the index. The set must be sorted.
func newIndexedTrace(set *trace.Set) *indexedTrace {
	ix := &indexedTrace{hasGNBLog: set.HasGNBLog}
	for _, p := range set.Packets {
		ix.addPacket(p)
	}
	for _, r := range set.DCI {
		ix.addDCI(r)
	}
	for _, g := range set.GNBLogs {
		ix.addGNB(g)
	}
	// Batch construction appends DCI-flagged and gNB-logged RLC retx
	// separately, so the merged series needs a sort; incremental
	// construction receives records time-merged and stays sorted.
	for i := range ix.rlcAt {
		sort.Slice(ix.rlcAt[i], func(a, b int) bool { return ix.rlcAt[i][a] < ix.rlcAt[i][b] })
	}
	for _, r := range set.RRC {
		ix.addRRC(r)
	}
	for _, s := range set.Stats {
		ix.addStats(s)
	}
	return ix
}

func (ix *indexedTrace) addPacket(p trace.PacketRecord) {
	if p.Kind == netem.KindRTCP {
		ix.revAt = append(ix.revAt, p.SentAt)
		ix.revDelay = append(ix.revDelay, p.Delay().Milliseconds())
		return
	}
	if p.Kind == netem.KindCross {
		return
	}
	di := dirIdx(p.Dir)
	ix.fwdAt = append(ix.fwdAt, p.SentAt)
	ix.fwdDelay = append(ix.fwdDelay, p.Delay().Milliseconds())
	ix.appAt[di] = append(ix.appAt[di], p.SentAt)
	ix.appBytes[di] = append(ix.appBytes[di], p.Size)
}

func (ix *indexedTrace) addDCI(r trace.DCIRecord) {
	di := dirIdx(r.Dir)
	ix.dciAt[di] = append(ix.dciAt[di], r.At)
	ix.dciOwn[di] = append(ix.dciOwn[di], r.OwnPRB)
	ix.dciOther[di] = append(ix.dciOther[di], r.OtherPRB)
	ix.dciMCS[di] = append(ix.dciMCS[di], r.MCS)
	tbs := 0
	if r.OwnPRB > 0 {
		tbs = r.TBSBits
	}
	ix.dciTBS[di] = append(ix.dciTBS[di], tbs)
	ix.dciHARQ[di] = append(ix.dciHARQ[di], r.HARQRetx)
	ix.dciULUse[di] = append(ix.dciULUse[di], r.OwnPRB > 0)
	// The DCI RLC-retx annotation is gNB-internal knowledge: only
	// private cells with base-station logs expose it (the paper's
	// commercial cells detect no RLC retx for exactly this reason).
	if r.RLCRetx && ix.hasGNBLog {
		ix.rlcAt[di] = append(ix.rlcAt[di], r.At)
	}
}

func (ix *indexedTrace) addGNB(g trace.GNBLogRecord) {
	if g.Kind == trace.GNBLogRLCRetx {
		di := dirIdx(g.Dir)
		ix.rlcAt[di] = append(ix.rlcAt[di], g.At)
	}
}

func (ix *indexedTrace) addRRC(r trace.RRCRecord) {
	ix.rrcAt = append(ix.rrcAt, r.At)
}

func (ix *indexedTrace) addStats(s trace.WebRTCStatsRecord) {
	si := sideIdx(s.Local)
	ix.statsAt[si] = append(ix.statsAt[si], s.At)
	ix.stats[si] = append(ix.stats[si], s)
}

// shift drops the first lo elements of a parallel value series in
// place (same backing array).
func shift[T any](s *[]T) func(lo int) {
	return func(lo int) { n := copy(*s, (*s)[lo:]); *s = (*s)[:n] }
}

// evictBefore drops every sample with timestamp < cut, compacting each
// series in place so the backing arrays stay sized to the window
// high-water mark instead of growing with the trace.
func (ix *indexedTrace) evictBefore(cut sim.Time) {
	dropT := func(at []sim.Time, parallel ...func(lo int)) []sim.Time {
		lo := sort.Search(len(at), func(i int) bool { return at[i] >= cut })
		if lo == 0 {
			return at
		}
		for _, fn := range parallel {
			fn(lo)
		}
		n := copy(at, at[lo:])
		return at[:n]
	}
	ix.fwdAt = dropT(ix.fwdAt, shift(&ix.fwdDelay))
	ix.revAt = dropT(ix.revAt, shift(&ix.revDelay))
	for di := range ix.appAt {
		ix.appAt[di] = dropT(ix.appAt[di], shift(&ix.appBytes[di]))
		ix.dciAt[di] = dropT(ix.dciAt[di],
			shift(&ix.dciOwn[di]), shift(&ix.dciOther[di]), shift(&ix.dciMCS[di]),
			shift(&ix.dciTBS[di]), shift(&ix.dciHARQ[di]), shift(&ix.dciULUse[di]))
		ix.rlcAt[di] = dropT(ix.rlcAt[di])
	}
	ix.rrcAt = dropT(ix.rrcAt)
	for si := range ix.statsAt {
		ix.statsAt[si] = dropT(ix.statsAt[si], shift(&ix.stats[si]))
	}
}

// bubbleLast restores sortedness after one sample was appended to a
// time series, swapping the parallel value arrays alongside. The walk
// is O(displacement), which a streaming caller bounds by its lateness
// slack; for in-order input it is a single comparison.
func bubbleLast(at []sim.Time, swap func(i, j int)) {
	for i := len(at) - 1; i > 0 && at[i] < at[i-1]; i-- {
		at[i], at[i-1] = at[i-1], at[i]
		if swap != nil {
			swap(i, i-1)
		}
	}
}

// swapIn returns a swap over one parallel value series.
func swapIn[T any](s []T) func(i, j int) {
	return func(i, j int) { s[i], s[j] = s[j], s[i] }
}

// swapAll composes swaps over several parallel value series.
func swapAll(swaps ...func(i, j int)) func(i, j int) {
	return func(i, j int) {
		for _, fn := range swaps {
			fn(i, j)
		}
	}
}

// restoreOrderPacket re-sorts the tail of the packet-derived series
// after an out-of-order (but within-lateness) streamed packet.
func (ix *indexedTrace) restoreOrderPacket(p trace.PacketRecord) {
	if p.Kind == netem.KindRTCP {
		bubbleLast(ix.revAt, swapIn(ix.revDelay))
		return
	}
	if p.Kind == netem.KindCross {
		return
	}
	di := dirIdx(p.Dir)
	bubbleLast(ix.fwdAt, swapIn(ix.fwdDelay))
	bubbleLast(ix.appAt[di], swapIn(ix.appBytes[di]))
}

// restoreOrderDCI re-sorts the tail of the DCI-derived series.
func (ix *indexedTrace) restoreOrderDCI(r trace.DCIRecord) {
	di := dirIdx(r.Dir)
	bubbleLast(ix.dciAt[di], swapAll(
		swapIn(ix.dciOwn[di]), swapIn(ix.dciOther[di]), swapIn(ix.dciMCS[di]),
		swapIn(ix.dciTBS[di]), swapIn(ix.dciHARQ[di]), swapIn(ix.dciULUse[di])))
	bubbleLast(ix.rlcAt[di], nil)
}

// restoreOrderGNB re-sorts the tail of the RLC-retx series.
func (ix *indexedTrace) restoreOrderGNB(g trace.GNBLogRecord) {
	if g.Kind == trace.GNBLogRLCRetx {
		bubbleLast(ix.rlcAt[dirIdx(g.Dir)], nil)
	}
}

// restoreOrderRRC re-sorts the tail of the RRC series.
func (ix *indexedTrace) restoreOrderRRC() { bubbleLast(ix.rrcAt, nil) }

// restoreOrderStats re-sorts the tail of one side's stats series.
func (ix *indexedTrace) restoreOrderStats(s trace.WebRTCStatsRecord) {
	si := sideIdx(s.Local)
	bubbleLast(ix.statsAt[si], swapIn(ix.stats[si]))
}

// buffered returns the number of samples currently held across all
// series — the streaming analyzer's O(window) state measure.
func (ix *indexedTrace) buffered() int {
	n := len(ix.fwdAt) + len(ix.revAt) + len(ix.rrcAt)
	for di := range ix.dciAt {
		n += len(ix.dciAt[di]) + len(ix.rlcAt[di])
	}
	for si := range ix.statsAt {
		n += len(ix.statsAt[si])
	}
	return n
}

// window returns [lo, hi) index bounds of at-values within [start, end).
func window(at []sim.Time, start, end sim.Time) (int, int) {
	lo := sort.Search(len(at), func(i int) bool { return at[i] >= start })
	hi := sort.Search(len(at), func(i int) bool { return at[i] >= end })
	return lo, hi
}
