package core

import (
	"sort"

	"github.com/domino5g/domino/internal/sim"
)

// This file holds the cursor-fed half of the rolling window engine:
// monotonic min/max deques for the argmax-before-argmin events and
// per-time-bucket caches for the bin-shaped events. Per-series cursors
// consume samples as window ends advance (so every structure covers
// exactly the samples with timestamp below the last evaluated window
// end), and retire drops entries that slid out of the window start.
// Everything here is allocation-free at steady state: deques and
// bucket rings reuse their backing arrays, and completed MCS buckets
// recycle their sample slices through a free list.

// rollState carries the cursors and cursor-fed aggregates of one
// indexedTrace.
type rollState struct {
	lastEnd sim.Time

	statsCur [2]int
	dciCur   [2]int
	appCur   [2]int

	// Per-series consume sequence numbers: a stable stand-in for the
	// sample index that survives eviction/compaction, used to order
	// argmax against argmin.
	statsSeq [2]int64
	dciSeq   [2]int64

	inFPSMax, inFPSMin   [2]extrema
	outFPSMax, outFPSMin [2]extrema
	tbsMax, tbsMin       [2]extrema

	mcs     [2]mcsBuckets
	rateApp [2]binSums
	rateTBS [2]binSums
}

// init wires the bucket widths from the (normalized) detector config
// and flips the min deques into min mode.
func (r *rollState) init(cfg DetectorConfig) {
	for i := 0; i < 2; i++ {
		r.inFPSMin[i].isMin = true
		r.outFPSMin[i].isMin = true
		r.tbsMin[i].isMin = true
		r.mcs[i].width = cfg.MCSGroup
		r.rateApp[i].width = cfg.RateBin
		r.rateTBS[i].width = cfg.RateBin
	}
}

// reset empties every rolling structure in place, keeping capacity.
func (r *rollState) reset() {
	r.lastEnd = 0
	for i := 0; i < 2; i++ {
		r.statsCur[i], r.dciCur[i], r.appCur[i] = 0, 0, 0
		r.statsSeq[i], r.dciSeq[i] = 0, 0
		r.inFPSMax[i].clear()
		r.inFPSMin[i].clear()
		r.outFPSMax[i].clear()
		r.outFPSMin[i].clear()
		r.tbsMax[i].clear()
		r.tbsMin[i].clear()
		r.mcs[i].clear()
		r.rateApp[i].clear()
		r.rateTBS[i].clear()
	}
}

// advance consumes every sample with timestamp < end into the rolling
// structures. end must be non-decreasing across calls.
func (ix *indexedTrace) advanceRoll(end sim.Time) {
	r := &ix.roll
	if end <= r.lastEnd {
		return
	}
	for si := 0; si < 2; si++ {
		at := ix.statsAt[si]
		cur := r.statsCur[si]
		for cur < len(at) && at[cur] < end {
			rec := &ix.stats[si][cur]
			seq := r.statsSeq[si]
			r.statsSeq[si]++
			r.inFPSMax[si].push(at[cur], seq, rec.InboundFPS)
			r.inFPSMin[si].push(at[cur], seq, rec.InboundFPS)
			r.outFPSMax[si].push(at[cur], seq, rec.OutboundFPS)
			r.outFPSMin[si].push(at[cur], seq, rec.OutboundFPS)
			cur++
		}
		r.statsCur[si] = cur
	}
	for di := 0; di < 2; di++ {
		at := ix.dciAt[di]
		cur := r.dciCur[di]
		for cur < len(at) && at[cur] < end {
			seq := r.dciSeq[di]
			r.dciSeq[di]++
			if tbs := ix.dciTBS[di][cur]; tbs > 0 {
				v := float64(tbs)
				r.tbsMax[di].push(at[cur], seq, v)
				r.tbsMin[di].push(at[cur], seq, v)
				r.rateTBS[di].add(at[cur], v)
			}
			if ix.dciOwn[di][cur] > 0 {
				r.mcs[di].add(at[cur], float64(ix.dciMCS[di][cur]))
			}
			cur++
		}
		r.dciCur[di] = cur

		at = ix.appAt[di]
		cur = r.appCur[di]
		for cur < len(at) && at[cur] < end {
			r.rateApp[di].add(at[cur], float64(ix.appBytes[di][cur]*8))
			cur++
		}
		r.appCur[di] = cur
	}
	r.lastEnd = end
}

// retire drops rolling entries that precede the window start.
func (ix *indexedTrace) retireRoll(start sim.Time) {
	r := &ix.roll
	for i := 0; i < 2; i++ {
		r.inFPSMax[i].retire(start)
		r.inFPSMin[i].retire(start)
		r.outFPSMax[i].retire(start)
		r.outFPSMin[i].retire(start)
		r.tbsMax[i].retire(start)
		r.tbsMin[i].retire(start)
		r.mcs[i].retire(start)
		r.rateApp[i].retire(start)
		r.rateTBS[i].retire(start)
	}
}

// extrema is a monotonic deque tracking the window maximum (or, with
// isMin, minimum) of one series, preserving the earliest attaining
// sample so argmax-before-argmin conditions evaluate exactly as a full
// scan would. Entries live in at/seq/val[head:]; the dead prefix is
// compacted away once it dominates the backing array.
type extrema struct {
	at    []sim.Time
	seq   []int64
	val   []float64
	head  int
	isMin bool
}

func (d *extrema) push(at sim.Time, seq int64, v float64) {
	n := len(d.val)
	for n > d.head {
		last := d.val[n-1]
		if (d.isMin && last > v) || (!d.isMin && last < v) {
			n--
			continue
		}
		break
	}
	d.at = append(d.at[:n], at)
	d.seq = append(d.seq[:n], seq)
	d.val = append(d.val[:n], v)
}

func (d *extrema) retire(cut sim.Time) {
	for d.head < len(d.at) && d.at[d.head] < cut {
		d.head++
	}
	if d.head > 32 && d.head*2 >= len(d.at) {
		n := copy(d.at, d.at[d.head:])
		copy(d.seq, d.seq[d.head:])
		copy(d.val, d.val[d.head:])
		d.at, d.seq, d.val = d.at[:n], d.seq[:n], d.val[:n]
		d.head = 0
	}
}

func (d *extrema) empty() bool { return d.head >= len(d.at) }

// front returns the consume sequence and value of the window extremum.
func (d *extrema) front() (int64, float64) { return d.seq[d.head], d.val[d.head] }

func (d *extrema) clear() {
	d.at, d.seq, d.val = d.at[:0], d.seq[:0], d.val[:0]
	d.head = 0
}

// binSums accumulates a value sum per fixed-width absolute time bucket
// (bucket b covers [b*width, (b+1)*width)). Live buckets are
// sums[head:], with base the bucket index of sums[head].
type binSums struct {
	width sim.Time
	base  int64
	sums  []float64
	head  int
}

func (b *binSums) add(at sim.Time, v float64) {
	idx := int64(at / b.width)
	if b.head == len(b.sums) {
		b.base = idx
	}
	for idx >= b.base+int64(len(b.sums)-b.head) {
		b.sums = append(b.sums, 0)
	}
	b.sums[b.head+int(idx-b.base)] += v
}

// get returns the sum for absolute bucket idx (0 when out of range).
func (b *binSums) get(idx int64) float64 {
	if b.head == len(b.sums) || idx < b.base || idx >= b.base+int64(len(b.sums)-b.head) {
		return 0
	}
	return b.sums[b.head+int(idx-b.base)]
}

func (b *binSums) retire(cut sim.Time) {
	for b.head < len(b.sums) && (b.base+1)*int64(b.width) <= int64(cut) {
		b.head++
		b.base++
	}
	if b.head > 32 && b.head*2 >= len(b.sums) {
		n := copy(b.sums, b.sums[b.head:])
		b.sums = b.sums[:n]
		b.head = 0
	}
}

func (b *binSums) clear() {
	b.sums = b.sums[:0]
	b.head = 0
	b.base = 0
}

// mcsBuckets caches per-bucket MCS samples (own-allocation slots only)
// and their medians: a bucket's median is computed once, when a window
// evaluation first reads the completed bucket, by sorting its samples
// in place. Sample slices of retired buckets are recycled.
type mcsBuckets struct {
	width   sim.Time
	base    int64
	buckets []mcsBucket
	head    int
	free    [][]float64
}

type mcsBucket struct {
	vals   []float64
	median float64
	sorted bool
}

func (m *mcsBuckets) add(at sim.Time, v float64) {
	idx := int64(at / m.width)
	if m.head == len(m.buckets) {
		m.base = idx
	}
	for idx >= m.base+int64(len(m.buckets)-m.head) {
		var vals []float64
		if n := len(m.free); n > 0 {
			vals = m.free[n-1]
			m.free = m.free[:n-1]
		}
		m.buckets = append(m.buckets, mcsBucket{vals: vals})
	}
	b := &m.buckets[m.head+int(idx-m.base)]
	b.vals = append(b.vals, v)
}

// median returns the cached median and sample count for absolute
// bucket idx; count 0 means the bucket is empty or out of range. The
// bucket must be complete (every sample with a timestamp inside it
// already consumed), which holds for any bucket below the last
// advanced window end.
func (m *mcsBuckets) median(idx int64) (float64, int) {
	if m.head == len(m.buckets) || idx < m.base || idx >= m.base+int64(len(m.buckets)-m.head) {
		return 0, 0
	}
	b := &m.buckets[m.head+int(idx-m.base)]
	if len(b.vals) == 0 {
		return 0, 0
	}
	if !b.sorted {
		sort.Float64s(b.vals)
		b.median = b.vals[int(0.5*float64(len(b.vals)-1))]
		b.sorted = true
	}
	return b.median, len(b.vals)
}

func (m *mcsBuckets) retire(cut sim.Time) {
	for m.head < len(m.buckets) && (m.base+1)*int64(m.width) <= int64(cut) {
		b := &m.buckets[m.head]
		if b.vals != nil {
			m.free = append(m.free, b.vals[:0])
		}
		*b = mcsBucket{}
		m.head++
		m.base++
	}
	if m.head > 16 && m.head*2 >= len(m.buckets) {
		n := copy(m.buckets, m.buckets[m.head:])
		for i := n; i < len(m.buckets); i++ {
			m.buckets[i] = mcsBucket{}
		}
		m.buckets = m.buckets[:n]
		m.head = 0
	}
}

func (m *mcsBuckets) clear() {
	for i := range m.buckets {
		if vals := m.buckets[i].vals; vals != nil {
			m.free = append(m.free, vals[:0])
		}
		m.buckets[i] = mcsBucket{}
	}
	m.buckets = m.buckets[:0]
	m.head = 0
	m.base = 0
}
