package scenario

import (
	"testing"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/sim"
)

// TestCatalogProvokesIntendedNodes is the catalog's self-test
// contract: every registered scenario that declares Provokes must
// actually trigger those causal-graph nodes in the Domino report of a
// 30 s run — each scenario exercises the chain it documents.
func TestCatalogProvokesIntendedNodes(t *testing.T) {
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const seed, dur = 3, 30 * sim.Second
	provoking := 0
	for _, s := range All() {
		if len(s.Provokes) == 0 {
			continue
		}
		provoking++
		sess, err := s.Build(seed)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		set := sess.Run(dur)
		rep, err := analyzer.Analyze(set)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if rep.Scenario != s.Name {
			t.Errorf("%s: report labeled %q", s.Name, rep.Scenario)
		}
		for _, node := range s.Provokes {
			if rep.EventCount(node) == 0 {
				t.Errorf("%s: intended node %q never fired (nodes with events: %v)",
					s.Name, node, firedNodes(rep))
			}
		}
	}
	if provoking < 8 {
		t.Fatalf("only %d scenarios declare Provokes, want >= 8 degradation scenarios", provoking)
	}
}

func firedNodes(rep *core.Report) []string {
	var out []string
	for n, runs := range rep.NodeEvents {
		if len(runs) > 0 {
			out = append(out, n)
		}
	}
	return out
}
