package scenario

import (
	"fmt"
	"sort"

	"github.com/domino5g/domino/internal/mac"
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rrc"
	"github.com/domino5g/domino/internal/sim"
)

// Direction selects the radio link a dynamic acts on, serialized as
// "ul" or "dl".
type Direction string

// Link directions.
const (
	UL Direction = "ul"
	DL Direction = "dl"
)

func (d Direction) valid() bool { return d == UL || d == DL }

func (d Direction) netem() netem.Direction {
	if d == UL {
		return netem.Uplink
	}
	return netem.Downlink
}

// Target is the set of live simulation handles a Dynamic acts on: the
// event engine plus the session's cell and wired legs. Scenario.ApplyTo
// builds one from an rtc.Session; tests may assemble their own.
type Target struct {
	Engine *sim.Engine
	Cell   *ran.Cell
	// ULWired carries local→remote media past the cell; DLWired carries
	// remote→local media (and the local client's inbound RTCP feedback).
	ULWired, DLWired *netem.Path
}

// Dynamic is one timed, per-layer perturbation of a running session.
// Implementations either script deterministic offsets into a layer's
// generator (SNR dips, cross-traffic bursts) or schedule configuration
// mutations as events on the simulation engine (grant-policy shifts,
// flaky-RRC phases) — the knobs that used to be frozen at construction.
type Dynamic interface {
	// Kind is the stable JSON type tag.
	Kind() string
	// Validate checks the dynamic's parameters.
	Validate() error
	// Apply arms the dynamic on the target. It must be called before
	// the simulation starts (engine time zero) and must not consume
	// simulation randomness, so a scenario without dynamics replays
	// byte-identically to its base preset.
	Apply(t *Target)
}

// dynamicKinds maps a JSON type tag to a factory for decoding.
var dynamicKinds = map[string]func() Dynamic{}

// RegisterDynamic adds a decodable dynamic kind. It panics on a
// duplicate tag — kind registration errors are programming bugs.
func RegisterDynamic(kind string, factory func() Dynamic) {
	if _, dup := dynamicKinds[kind]; dup {
		panic("scenario: duplicate dynamic kind " + kind)
	}
	dynamicKinds[kind] = factory
}

// DynamicKinds returns the registered dynamic type tags, sorted.
func DynamicKinds() []string {
	out := make([]string, 0, len(dynamicKinds))
	for k := range dynamicKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterDynamic("snr_dip", func() Dynamic { return &SNRDip{} })
	RegisterDynamic("snr_ramp", func() Dynamic { return &SNRRamp{} })
	RegisterDynamic("cross_traffic_burst", func() Dynamic { return &CrossTrafficBurst{} })
	RegisterDynamic("cross_traffic_phase", func() Dynamic { return &CrossTrafficPhase{} })
	RegisterDynamic("rrc_release", func() Dynamic { return &RRCRelease{} })
	RegisterDynamic("rrc_flaky_phase", func() Dynamic { return &RRCFlakyPhase{} })
	RegisterDynamic("grant_policy_shift", func() Dynamic { return &GrantPolicyShift{} })
	RegisterDynamic("ue_share_drop", func() Dynamic { return &UEShareDrop{} })
	RegisterDynamic("wired_delay_surge", func() Dynamic { return &WiredDelaySurge{} })
}

// windowErr validates a [start, end) interval.
func windowErr(kind string, start, end sim.Time) error {
	if start < 0 {
		return fmt.Errorf("scenario: %s: negative start %v", kind, start)
	}
	if end <= start {
		return fmt.Errorf("scenario: %s: end %v not after start %v", kind, end, start)
	}
	return nil
}

// dirErr validates a direction value; field names the JSON key so the
// error points at the right place in a scenario file.
func dirErr(kind, field string, d Direction) error {
	if !d.valid() {
		return fmt.Errorf(`scenario: %s: %s must be "ul" or "dl", got %q`, kind, field, d)
	}
	return nil
}

// SNRDip subtracts DepthDB from the channel SNR during [Start, End) —
// a transient deep fade (mobility, blocking) that clears on its own.
type SNRDip struct {
	Dir     Direction `json:"dir"`
	Start   sim.Time  `json:"start_us"`
	End     sim.Time  `json:"end_us"`
	DepthDB float64   `json:"depth_db"`
}

// Kind implements Dynamic.
func (d *SNRDip) Kind() string { return "snr_dip" }

// Validate implements Dynamic.
func (d *SNRDip) Validate() error {
	if err := dirErr(d.Kind(), "dir", d.Dir); err != nil {
		return err
	}
	if d.DepthDB <= 0 {
		return fmt.Errorf("scenario: snr_dip: depth_db must be positive, got %v", d.DepthDB)
	}
	return windowErr(d.Kind(), d.Start, d.End)
}

// Apply implements Dynamic.
func (d *SNRDip) Apply(t *Target) {
	t.Cell.Channel(d.Dir.netem()).ScriptDip(d.Start, d.End, d.DepthDB)
}

// SNRRamp shifts the channel SNR by DeltaDB, interpolated linearly
// over [Start, End) and held afterwards — a lasting mean change such
// as a mid-call channel collapse (negative delta) or recovery
// (positive delta).
type SNRRamp struct {
	Dir     Direction `json:"dir"`
	Start   sim.Time  `json:"start_us"`
	End     sim.Time  `json:"end_us"`
	DeltaDB float64   `json:"delta_db"`
}

// Kind implements Dynamic.
func (d *SNRRamp) Kind() string { return "snr_ramp" }

// Validate implements Dynamic.
func (d *SNRRamp) Validate() error {
	if err := dirErr(d.Kind(), "dir", d.Dir); err != nil {
		return err
	}
	if d.DeltaDB == 0 {
		return fmt.Errorf("scenario: snr_ramp: delta_db must be nonzero")
	}
	if d.Start < 0 {
		return fmt.Errorf("scenario: snr_ramp: negative start %v", d.Start)
	}
	if d.End < d.Start {
		return fmt.Errorf("scenario: snr_ramp: end %v before start %v", d.End, d.Start)
	}
	return nil
}

// Apply implements Dynamic.
func (d *SNRRamp) Apply(t *Target) {
	t.Cell.Channel(d.Dir.netem()).ScriptRamp(d.Start, d.End, d.DeltaDB)
}

// CrossTrafficBurst adds a deterministic background load of Fraction
// of the carrier during [Start, End) — one heavy neighbor transfer.
type CrossTrafficBurst struct {
	Dir      Direction `json:"dir"`
	Start    sim.Time  `json:"start_us"`
	End      sim.Time  `json:"end_us"`
	Fraction float64   `json:"fraction"`
}

// Kind implements Dynamic.
func (d *CrossTrafficBurst) Kind() string { return "cross_traffic_burst" }

// Validate implements Dynamic.
func (d *CrossTrafficBurst) Validate() error {
	if err := dirErr(d.Kind(), "dir", d.Dir); err != nil {
		return err
	}
	if d.Fraction <= 0 || d.Fraction > 1 {
		return fmt.Errorf("scenario: cross_traffic_burst: fraction %v out of (0,1]", d.Fraction)
	}
	return windowErr(d.Kind(), d.Start, d.End)
}

// Apply implements Dynamic.
func (d *CrossTrafficBurst) Apply(t *Target) {
	t.Cell.Cross(d.Dir.netem()).ScriptBurst(d.Start, d.End, d.Fraction)
}

// CrossTrafficPhase swaps the stochastic cross-traffic profile at At —
// a load-regime change such as a quiet cell entering rush hour.
type CrossTrafficPhase struct {
	Dir    Direction              `json:"dir"`
	At     sim.Time               `json:"at_us"`
	Config mac.CrossTrafficConfig `json:"config"`
}

// Kind implements Dynamic.
func (d *CrossTrafficPhase) Kind() string { return "cross_traffic_phase" }

// Validate implements Dynamic.
func (d *CrossTrafficPhase) Validate() error {
	if err := dirErr(d.Kind(), "dir", d.Dir); err != nil {
		return err
	}
	if d.At < 0 {
		return fmt.Errorf("scenario: cross_traffic_phase: negative at %v", d.At)
	}
	if d.Config.BaselineFraction < 0 || d.Config.BaselineFraction > 1 ||
		d.Config.BurstPRBFraction < 0 || d.Config.BurstPRBFraction > 1 {
		return fmt.Errorf("scenario: cross_traffic_phase: fractions out of [0,1]")
	}
	return nil
}

// Apply implements Dynamic.
func (d *CrossTrafficPhase) Apply(t *Target) {
	cross := t.Cell.Cross(d.Dir.netem())
	cfg := d.Config
	t.Engine.Schedule(d.At, func() { cross.SetConfig(cfg) })
}

// RRCRelease forces one spurious RRC release at At (the Fig. 19
// deterministic outage).
type RRCRelease struct {
	At sim.Time `json:"at_us"`
}

// Kind implements Dynamic.
func (d *RRCRelease) Kind() string { return "rrc_release" }

// Validate implements Dynamic.
func (d *RRCRelease) Validate() error {
	if d.At < 0 {
		return fmt.Errorf("scenario: rrc_release: negative at %v", d.At)
	}
	return nil
}

// Apply implements Dynamic.
func (d *RRCRelease) Apply(t *Target) { t.Cell.RRC().ScriptRelease(d.At) }

// RRCFlakyPhase makes the RRC machine spuriously release at
// RatePerMinute during [Start, End), restoring the previous behaviour
// afterwards — a bounded flapping phase instead of a whole-call rate.
type RRCFlakyPhase struct {
	Start         sim.Time `json:"start_us"`
	End           sim.Time `json:"end_us"`
	RatePerMinute float64  `json:"rate_per_minute"`
	Outage        sim.Time `json:"outage_us"`
}

// Kind implements Dynamic.
func (d *RRCFlakyPhase) Kind() string { return "rrc_flaky_phase" }

// Validate implements Dynamic.
func (d *RRCFlakyPhase) Validate() error {
	if d.RatePerMinute <= 0 {
		return fmt.Errorf("scenario: rrc_flaky_phase: rate_per_minute must be positive, got %v", d.RatePerMinute)
	}
	if d.Outage < 0 {
		return fmt.Errorf("scenario: rrc_flaky_phase: negative outage %v", d.Outage)
	}
	return windowErr(d.Kind(), d.Start, d.End)
}

// Apply implements Dynamic.
func (d *RRCFlakyPhase) Apply(t *Target) {
	m := t.Cell.RRC()
	outage := d.Outage
	if outage == 0 {
		outage = 300 * sim.Millisecond
	}
	var prev rrc.Config
	t.Engine.Schedule(d.Start, func() {
		prev = m.Config()
		m.SetConfig(rrc.Config{ReleaseRate: d.RatePerMinute, OutageDuration: outage})
	})
	t.Engine.Schedule(d.End, func() { m.SetConfig(prev) })
}

// GrantPolicyShift replaces the uplink grant policy at At — a
// scheduler reconfiguration such as grant starvation (long scheduling
// delay, small grant caps) or the reverse.
type GrantPolicyShift struct {
	At     sim.Time        `json:"at_us"`
	Grants mac.GrantConfig `json:"grants"`
}

// Kind implements Dynamic.
func (d *GrantPolicyShift) Kind() string { return "grant_policy_shift" }

// Validate implements Dynamic.
func (d *GrantPolicyShift) Validate() error {
	if d.At < 0 {
		return fmt.Errorf("scenario: grant_policy_shift: negative at %v", d.At)
	}
	if d.Grants.SchedulingDelay < 0 || d.Grants.BSRPeriod < 0 {
		return fmt.Errorf("scenario: grant_policy_shift: negative delay in grant config")
	}
	return nil
}

// Apply implements Dynamic.
func (d *GrantPolicyShift) Apply(t *Target) {
	sched := t.Cell.ULSched()
	cfg := d.Grants
	t.Engine.Schedule(d.At, func() { sched.SetConfig(cfg) })
}

// UEShareDrop caps the experiment UE's PRB share at Share during
// [Start, End), restoring the previous cap afterwards — a fairness
// squeeze, e.g. the cell admitting a higher-priority slice.
type UEShareDrop struct {
	Start sim.Time `json:"start_us"`
	End   sim.Time `json:"end_us"`
	Share float64  `json:"share"`
}

// Kind implements Dynamic.
func (d *UEShareDrop) Kind() string { return "ue_share_drop" }

// Validate implements Dynamic.
func (d *UEShareDrop) Validate() error {
	if d.Share <= 0 || d.Share > 1 {
		return fmt.Errorf("scenario: ue_share_drop: share %v out of (0,1]", d.Share)
	}
	return windowErr(d.Kind(), d.Start, d.End)
}

// Apply implements Dynamic.
func (d *UEShareDrop) Apply(t *Target) {
	cell := t.Cell
	var prev float64
	t.Engine.Schedule(d.Start, func() {
		prev = cell.Config().MaxUEShare
		cell.SetMaxUEShare(d.Share)
	})
	t.Engine.Schedule(d.End, func() { cell.SetMaxUEShare(prev) })
}

// WiredDelaySurge adds Extra one-way delay on one wired leg during
// [Start, End). With RTCPOnly only feedback packets are delayed — the
// Fig. 22 reverse-path stall; otherwise all packets on the leg are —
// the Fig. 20 jitter-buffer drain.
type WiredDelaySurge struct {
	Leg      Direction `json:"leg"`
	Start    sim.Time  `json:"start_us"`
	End      sim.Time  `json:"end_us"`
	Extra    sim.Time  `json:"extra_us"`
	RTCPOnly bool      `json:"rtcp_only,omitempty"`
}

// Kind implements Dynamic.
func (d *WiredDelaySurge) Kind() string { return "wired_delay_surge" }

// Validate implements Dynamic.
func (d *WiredDelaySurge) Validate() error {
	if err := dirErr(d.Kind(), "leg", d.Leg); err != nil {
		return err
	}
	if d.Extra <= 0 {
		return fmt.Errorf("scenario: wired_delay_surge: extra_us must be positive, got %v", d.Extra)
	}
	return windowErr(d.Kind(), d.Start, d.End)
}

// Apply implements Dynamic.
func (d *WiredDelaySurge) Apply(t *Target) {
	path := t.ULWired
	if d.Leg == DL {
		path = t.DLWired
	}
	if d.RTCPOnly {
		path.ScriptExtraDelayKind(netem.KindRTCP, d.Start, d.End, d.Extra)
		return
	}
	path.ScriptExtraDelay(d.Start, d.End, d.Extra)
}
