// Package scenario is the declarative workload layer of the Domino
// reproduction: a Scenario names a base cell preset and an ordered
// schedule of timed, per-layer Dynamics (SNR ramps and dips,
// cross-traffic bursts and regime shifts, flaky-RRC phases,
// grant-policy shifts, UE-share squeezes, wired delay surges). The
// paper's diagnosis power comes from exactly these events — DK-Root
// trains on operator datasets spanning many degradation regimes, and
// Patounas et al. inject bottlenecks one layer at a time — so new
// workloads here are data, not code: compose dynamics in Go or load
// them from JSON, and every layer knob that used to be frozen at
// construction becomes a scheduled event on the simulation engine.
//
// Scenarios serialize to JSON, validate themselves, and live in a
// package-level registry (the four Table 1 presets plus a catalog of
// degradation scenarios, each provoking a different causal chain of
// the paper's Fig. 9 graph). A registered scenario without dynamics
// replays byte-identically to its base preset at the same seed.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
)

// Scenario is one declarative workload: a base cell and a dynamics
// schedule. The zero Dynamics slice reproduces the base preset
// exactly.
type Scenario struct {
	// Name is the registry key (and the label carried by traces and
	// reports generated from this scenario).
	Name string
	// Description is a one-line summary for catalogs and -list output.
	Description string
	// Cell names the base cell preset (ran.PresetByName).
	Cell string
	// Dynamics is the ordered schedule of perturbations.
	Dynamics []Dynamic
	// Provokes lists the causal-graph nodes this scenario is designed
	// to trigger (documentation plus the catalog's self-test contract).
	Provokes []string
}

// Validate checks the scenario: a name, a resolvable base cell, and
// valid dynamics.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, err := ran.PresetByName(s.Cell); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	for i, d := range s.Dynamics {
		if d == nil {
			return fmt.Errorf("scenario %q: dynamic %d is nil", s.Name, i)
		}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("scenario %q: dynamic %d (%s): %w", s.Name, i, d.Kind(), err)
		}
	}
	return nil
}

// CellConfig resolves the scenario's base cell preset.
func (s Scenario) CellConfig() (ran.CellConfig, error) { return ran.PresetByName(s.Cell) }

// Build constructs a session for the scenario at the given seed: the
// base preset's default session, labeled with the scenario name, with
// every dynamic armed. Run the session to obtain the trace.
func (s Scenario) Build(seed uint64) (*rtc.Session, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cell, err := s.CellConfig()
	if err != nil {
		return nil, err
	}
	cfg := rtc.DefaultSessionConfig(cell, seed)
	cfg.ScenarioName = s.Name
	sess, err := rtc.NewSession(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	s.applyTo(sess)
	return sess, nil
}

// ApplyTo arms the scenario's dynamics on an already-built session
// (engine still at time zero). Use Build unless the session needs
// extra wiring first.
func (s Scenario) ApplyTo(sess *rtc.Session) error {
	if err := s.Validate(); err != nil {
		return err
	}
	s.applyTo(sess)
	return nil
}

func (s Scenario) applyTo(sess *rtc.Session) {
	t := &Target{
		Engine:  sess.Engine,
		Cell:    sess.Cell,
		ULWired: sess.ULWired(),
		DLWired: sess.DLWired(),
	}
	for _, d := range s.Dynamics {
		d.Apply(t)
	}
}

// dynEnvelope is the serialized form of one dynamic: a type tag and
// the kind-specific parameters.
type dynEnvelope struct {
	Type   string          `json:"type"`
	Params json.RawMessage `json:"params,omitempty"`
}

// scenarioJSON is the serialized form of a Scenario.
type scenarioJSON struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Cell        string        `json:"cell"`
	Dynamics    []dynEnvelope `json:"dynamics,omitempty"`
	Provokes    []string      `json:"provokes,omitempty"`
}

// MarshalJSON implements json.Marshaler: each dynamic is wrapped in a
// {"type": kind, "params": {...}} envelope.
func (s Scenario) MarshalJSON() ([]byte, error) {
	out := scenarioJSON{Name: s.Name, Description: s.Description, Cell: s.Cell, Provokes: s.Provokes}
	for i, d := range s.Dynamics {
		if d == nil {
			return nil, fmt.Errorf("scenario %q: dynamic %d is nil", s.Name, i)
		}
		params, err := json.Marshal(d)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: dynamic %d (%s): %w", s.Name, i, d.Kind(), err)
		}
		out.Dynamics = append(out.Dynamics, dynEnvelope{Type: d.Kind(), Params: params})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, resolving each dynamic's
// concrete type through the kind registry.
func (s *Scenario) UnmarshalJSON(b []byte) error {
	var in scenarioJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	out := Scenario{Name: in.Name, Description: in.Description, Cell: in.Cell, Provokes: in.Provokes}
	for i, env := range in.Dynamics {
		factory, ok := dynamicKinds[env.Type]
		if !ok {
			return fmt.Errorf("scenario %q: dynamic %d: unknown type %q (known: %v)",
				in.Name, i, env.Type, DynamicKinds())
		}
		d := factory()
		if len(env.Params) > 0 {
			if err := json.Unmarshal(env.Params, d); err != nil {
				return fmt.Errorf("scenario %q: dynamic %d (%s): %w", in.Name, i, env.Type, err)
			}
		}
		out.Dynamics = append(out.Dynamics, d)
	}
	*s = out
	return nil
}

// Parse decodes and validates one scenario from JSON.
func Parse(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
