package scenario

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/sim"
)

func TestRegistryLookup(t *testing.T) {
	if len(Names()) < 12 {
		t.Fatalf("registry has %d scenarios, want the 4 presets + >=8 degradation scenarios", len(Names()))
	}
	// Case-insensitive lookup.
	for _, name := range []string{"amarisoft", "AMARISOFT", " Midcall-SNR-Collapse "} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	// Unknown names report the valid ones.
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	for _, want := range []string{"midcall-snr-collapse", "worst-case-combined", "tmobile-fdd"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-scenario error %q does not list %q", err, want)
		}
	}
	// Registration order is stable: Table 1 first.
	if got := Names()[:4]; !reflect.DeepEqual(got, []string{"tmobile-tdd", "tmobile-fdd", "amarisoft", "mosolabs"}) {
		t.Fatalf("first four registered scenarios = %v, want Table 1 order", got)
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"missing name", Scenario{Cell: "amarisoft"}, "missing name"},
		{"unknown cell", Scenario{Name: "x", Cell: "nokia"}, "unknown cell"},
		{"nil dynamic", Scenario{Name: "x", Cell: "amarisoft", Dynamics: []Dynamic{nil}}, "nil"},
		{"bad dir", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&SNRDip{Dir: "sideways", Start: 0, End: sim.Second, DepthDB: 3}}}, `"ul" or "dl"`},
		{"inverted window", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&SNRDip{Dir: UL, Start: 2 * sim.Second, End: sim.Second, DepthDB: 3}}}, "not after start"},
		{"zero depth", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&SNRDip{Dir: UL, Start: 0, End: sim.Second}}}, "depth_db"},
		{"bad fraction", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&CrossTrafficBurst{Dir: DL, Start: 0, End: sim.Second, Fraction: 1.5}}}, "fraction"},
		{"bad share", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&UEShareDrop{Start: 0, End: sim.Second, Share: 0}}}, "share"},
		{"negative rate", Scenario{Name: "x", Cell: "amarisoft",
			Dynamics: []Dynamic{&RRCFlakyPhase{Start: 0, End: sim.Second, RatePerMinute: -1}}}, "rate_per_minute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil {
				t.Fatal("Validate passed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
	// Every registered scenario must of course validate.
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Fatalf("registered scenario %q invalid: %v", s.Name, err)
		}
	}
}

// TestJSONRoundTripStructural pins Marshal→Unmarshal structural
// equality for every registered scenario (trace-level equality is
// pinned by TestScenarioDeterminismAndJSONRoundTrip).
func TestJSONRoundTripStructural(t *testing.T) {
	for _, s := range All() {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name, err)
		}
		var back Scenario
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v\njson: %s", s.Name, err, b)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("%s: round trip mismatch\n got: %#v\nwant: %#v", s.Name, back, s)
		}
	}
}

func TestParseRejectsUnknownDynamicKind(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"name":"x","cell":"amarisoft","dynamics":[{"type":"earthquake"}]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Fatalf("want unknown-type error, got %v", err)
	}
	if !strings.Contains(err.Error(), "snr_dip") {
		t.Fatalf("error should list known kinds, got %v", err)
	}
}

func TestParseValidScenario(t *testing.T) {
	src := `{
		"name": "custom",
		"cell": "mosolabs",
		"dynamics": [
			{"type": "snr_dip", "params": {"dir": "ul", "start_us": 2000000, "end_us": 3000000, "depth_db": 12}},
			{"type": "grant_policy_shift", "params": {"at_us": 1000000, "grants": {"scheduling_delay_us": 30000, "max_grant_bytes": 2000}}}
		]
	}`
	s, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dynamics) != 2 {
		t.Fatalf("got %d dynamics", len(s.Dynamics))
	}
	dip, ok := s.Dynamics[0].(*SNRDip)
	if !ok || dip.DepthDB != 12 || dip.Start != 2*sim.Second {
		t.Fatalf("dynamic 0 decoded wrong: %#v", s.Dynamics[0])
	}
	shift, ok := s.Dynamics[1].(*GrantPolicyShift)
	if !ok || shift.Grants.SchedulingDelay != 30*sim.Millisecond || shift.Grants.MaxGrantBytes != 2000 {
		t.Fatalf("dynamic 1 decoded wrong: %#v", s.Dynamics[1])
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Scenario{Name: "Amarisoft", Cell: "amarisoft"})
}

func TestDynamicKindsComplete(t *testing.T) {
	kinds := DynamicKinds()
	want := []string{
		"cross_traffic_burst", "cross_traffic_phase", "grant_policy_shift",
		"rrc_flaky_phase", "rrc_release", "snr_dip", "snr_ramp",
		"ue_share_drop", "wired_delay_surge",
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("DynamicKinds() = %v, want %v", kinds, want)
	}
}
