package scenario

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/mac"
	"github.com/domino5g/domino/internal/sim"
)

// registry holds every registered scenario as its canonical JSON,
// keyed by lowercase name, with registration order preserved for
// catalogs and artifacts. Lookups decode a fresh copy, so a caller
// mutating a returned scenario's dynamics (to derive a custom
// workload) can never corrupt the shared catalog.
var (
	registry = map[string][]byte{}
	order    []string
)

// Register adds a scenario to the package registry. It panics on an
// invalid scenario or a duplicate name — the catalog below registers
// at init, so registration errors are programming bugs.
func Register(s Scenario) {
	if err := s.Validate(); err != nil {
		panic("scenario: registering invalid scenario: " + err.Error())
	}
	key := strings.ToLower(s.Name)
	if _, dup := registry[key]; dup {
		panic("scenario: duplicate registration " + s.Name)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		panic("scenario: registering unmarshalable scenario " + s.Name + ": " + err.Error())
	}
	registry[key] = blob
	order = append(order, key)
}

// Names returns the registered scenario names in registration order.
func Names() []string { return append([]string(nil), order...) }

// decode rebuilds a scenario from its canonical registry JSON; the
// blob was produced by Register, so failure is a programming bug.
func decode(key string) Scenario {
	var s Scenario
	if err := json.Unmarshal(registry[key], &s); err != nil {
		panic("scenario: corrupt registry entry " + key + ": " + err.Error())
	}
	return s
}

// All returns a fresh copy of every registered scenario in
// registration order.
func All() []Scenario {
	out := make([]Scenario, len(order))
	for i, k := range order {
		out[i] = decode(k)
	}
	return out
}

// ByName looks a scenario up case-insensitively, returning a fresh
// copy. Unknown names report the valid ones.
func ByName(name string) (Scenario, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if _, ok := registry[key]; ok {
		return decode(key), nil
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}

// The catalog. The four Table 1 presets come first (no dynamics — they
// replay byte-identically to ran.Presets() sessions), then the
// degradation scenarios, each designed to provoke a different causal
// chain of the Fig. 9 graph (the Provokes field names the intended
// nodes; the catalog test asserts each fires in the Domino report).
func init() {
	// --- Table 1 presets as scenarios. ---
	Register(Scenario{
		Name:        "tmobile-tdd",
		Description: "Table 1: T-Mobile 100 MHz TDD — wide mid-band carrier, light cross traffic, small delay spread",
		Cell:        "tmobile-tdd",
	})
	Register(Scenario{
		Name:        "tmobile-fdd",
		Description: "Table 1: T-Mobile 15 MHz FDD — busy low-band cell, heavy DL cross traffic, intermittent RRC releases",
		Cell:        "tmobile-fdd",
	})
	Register(Scenario{
		Name:        "amarisoft",
		Description: "Table 1: Amarisoft 20 MHz TDD — private cell, persistently poor UL channel, conservative UL MCS",
		Cell:        "amarisoft",
	})
	Register(Scenario{
		Name:        "mosolabs",
		Description: "Table 1: Mosolabs 20 MHz TDD — private cell, healthy channel, proactive UL grants",
		Cell:        "mosolabs",
	})

	// --- Degradation scenarios. ---
	Register(Scenario{
		Name:        "midcall-snr-collapse",
		Description: "UL mean SNR ramps down 14 dB at 10 s and never recovers: MCS collapse, RLC build-up, lasting delay",
		Cell:        "amarisoft",
		Dynamics: []Dynamic{
			&SNRRamp{Dir: UL, Start: 10 * sim.Second, End: 14 * sim.Second, DeltaDB: -14},
		},
		Provokes: []string{"poor_channel", "tbs_down"},
	})
	Register(Scenario{
		Name:        "rush-hour-cross-traffic",
		Description: "quiet wide cell enters rush hour at 8 s (heavy stochastic DL load) plus one 50% neighbor burst",
		Cell:        "tmobile-tdd",
		Dynamics: []Dynamic{
			&CrossTrafficPhase{Dir: DL, At: 8 * sim.Second, Config: mac.CrossTrafficConfig{
				UEs: 12, BurstRate: 10, BurstDuration: 800 * sim.Millisecond,
				BurstPRBFraction: 0.45, BaselineFraction: 0.35,
			}},
			&CrossTrafficBurst{Dir: DL, Start: 10 * sim.Second, End: 14 * sim.Second, Fraction: 0.5},
		},
		Provokes: []string{"cross_traffic"},
	})
	Register(Scenario{
		Name:        "flapping-rrc",
		Description: "stable private cell develops a flapping-RRC phase (20 releases/min between 8 s and 22 s)",
		Cell:        "amarisoft",
		Dynamics: []Dynamic{
			&RRCFlakyPhase{Start: 8 * sim.Second, End: 22 * sim.Second, RatePerMinute: 20, Outage: 400 * sim.Millisecond},
			&RRCRelease{At: 10 * sim.Second},
		},
		Provokes: []string{"rrc_state_change"},
	})
	Register(Scenario{
		Name:        "grant-starvation",
		Description: "scheduler reconfigured at 10 s to 45 ms grant delay and 1.5 KB grant caps: UL starves behind BSRs",
		Cell:        "tmobile-tdd",
		Dynamics: []Dynamic{
			&GrantPolicyShift{At: 10 * sim.Second, Grants: mac.GrantConfig{
				SchedulingDelay: 45 * sim.Millisecond,
				BSRPeriod:       10 * sim.Millisecond,
				MaxGrantBytes:   1500,
			}},
		},
		Provokes: []string{"ul_scheduling", "forward_delay_up"},
	})
	Register(Scenario{
		Name:        "ue-share-squeeze",
		Description: "scheduler fairness cap drops to 6% of the carrier between 10 s and 20 s (higher-priority slice admitted)",
		Cell:        "tmobile-tdd",
		Dynamics: []Dynamic{
			&UEShareDrop{Start: 10 * sim.Second, End: 20 * sim.Second, Share: 0.06},
		},
		Provokes: []string{"tbs_down", "rate_exceeds_tbs"},
	})
	Register(Scenario{
		Name:        "harq-storm",
		Description: "three 24 dB UL fades (blocking events) trigger HARQ retransmission bursts",
		Cell:        "amarisoft",
		Dynamics: []Dynamic{
			&SNRDip{Dir: UL, Start: 8 * sim.Second, End: 9 * sim.Second, DepthDB: 24},
			&SNRDip{Dir: UL, Start: 12 * sim.Second, End: 13 * sim.Second, DepthDB: 24},
			&SNRDip{Dir: UL, Start: 16 * sim.Second, End: 17 * sim.Second, DepthDB: 24},
		},
		Provokes: []string{"harq_retx"},
	})
	Register(Scenario{
		Name:        "rlc-cascade",
		Description: "one deep 30 dB UL fade exhausts HARQ and forces ~105 ms RLC recoveries with HoL bursts",
		Cell:        "amarisoft",
		Dynamics: []Dynamic{
			&SNRDip{Dir: UL, Start: 10 * sim.Second, End: 11200 * sim.Millisecond, DepthDB: 30},
		},
		Provokes: []string{"rlc_retx"},
	})
	Register(Scenario{
		Name:        "jb-freeze-surge",
		Description: "280 ms forward-path surge on the DL wired leg drains the local jitter buffer and freezes video",
		Cell:        "mosolabs",
		Dynamics: []Dynamic{
			&WiredDelaySurge{Leg: DL, Start: 10 * sim.Second, End: 11500 * sim.Millisecond, Extra: 280 * sim.Millisecond},
		},
		Provokes: []string{"jitter_buffer_drain"},
	})
	Register(Scenario{
		Name:        "rtcp-stall",
		Description: "400 ms RTCP-only delay on the DL wired leg stalls feedback: outstanding bytes fill the window",
		Cell:        "mosolabs",
		Dynamics: []Dynamic{
			&WiredDelaySurge{Leg: DL, Start: 10 * sim.Second, End: 13 * sim.Second, Extra: 400 * sim.Millisecond, RTCPOnly: true},
		},
		Provokes: []string{"outstanding_bytes_up"},
	})
	Register(Scenario{
		Name:        "worst-case-combined",
		Description: "everything at once on the busy FDD cell: DL SNR ramp, grant starvation, UE-share squeeze, 70% cross burst, RRC release",
		Cell:        "tmobile-fdd",
		Dynamics: []Dynamic{
			&SNRRamp{Dir: DL, Start: 8 * sim.Second, End: 12 * sim.Second, DeltaDB: -10},
			&GrantPolicyShift{At: 10 * sim.Second, Grants: mac.GrantConfig{
				SchedulingDelay: 30 * sim.Millisecond,
				BSRPeriod:       4 * sim.Millisecond,
				MaxGrantBytes:   2000,
			}},
			&UEShareDrop{Start: 14 * sim.Second, End: 22 * sim.Second, Share: 0.15},
			&CrossTrafficBurst{Dir: DL, Start: 14 * sim.Second, End: 18 * sim.Second, Fraction: 0.7},
			&RRCRelease{At: 20 * sim.Second},
		},
		Provokes: []string{"cross_traffic", "rrc_state_change"},
	})
}
