package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// traceBytes builds the scenario at seed, runs it, and serializes the
// trace to JSONL.
func traceBytes(t *testing.T, s Scenario, seed uint64, d sim.Time) []byte {
	t.Helper()
	sess, err := s.Build(seed)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	set := sess.Run(d)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, set); err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return buf.Bytes()
}

// splitHeader separates a JSONL trace into its header line and the
// record lines.
func splitHeader(t *testing.T, b []byte) (string, []byte) {
	t.Helper()
	i := bytes.IndexByte(b, '\n')
	if i < 0 {
		t.Fatal("trace has no header line")
	}
	return string(b[:i]), b[i+1:]
}

// TestPresetScenariosMatchLegacyPresets is the refactor's differential
// pin: for every Table 1 preset, the scenario-built session must
// produce byte-identical trace records to the pre-registry path
// (rtc.DefaultSessionConfig over the ran constructor) at the same
// seed. Only the header may differ, and only by the scenario label.
func TestPresetScenariosMatchLegacyPresets(t *testing.T) {
	legacy := map[string]func() ran.CellConfig{
		"tmobile-tdd": ran.TMobileTDD,
		"tmobile-fdd": ran.TMobileFDD,
		"amarisoft":   ran.Amarisoft,
		"mosolabs":    ran.Mosolabs,
	}
	const seed, dur = 11, 10 * sim.Second
	for name, build := range legacy {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Dynamics) != 0 {
			t.Fatalf("%s: preset scenario has dynamics", name)
		}

		sess, err := rtc.NewSession(rtc.DefaultSessionConfig(build(), seed))
		if err != nil {
			t.Fatal(err)
		}
		var legacyBuf bytes.Buffer
		if err := trace.WriteJSONL(&legacyBuf, sess.Run(dur)); err != nil {
			t.Fatal(err)
		}
		legacyHdr, legacyRecs := splitHeader(t, legacyBuf.Bytes())
		scHdr, scRecs := splitHeader(t, traceBytes(t, sc, seed, dur))

		if !bytes.Equal(legacyRecs, scRecs) {
			t.Fatalf("%s: scenario records differ from legacy preset records", name)
		}
		if !strings.Contains(scHdr, `"scenario":"`+name+`"`) {
			t.Fatalf("%s: scenario header not labeled: %s", name, scHdr)
		}
		// Removing the label must recover the legacy header exactly.
		if got := strings.Replace(scHdr, `"scenario":"`+name+`",`, "", 1); got != legacyHdr {
			t.Fatalf("%s: headers differ beyond the scenario label\nlegacy:   %s\nscenario: %s", name, legacyHdr, scHdr)
		}
	}
}

// TestScenarioDeterminismAndJSONRoundTrip is the catalog's golden
// determinism pin: every registered scenario produces byte-identical
// JSONL across two independent runs at the same seed, and a scenario
// reconstructed from its own JSON produces the same bytes again
// (Marshal → Unmarshal → identical trace).
func TestScenarioDeterminismAndJSONRoundTrip(t *testing.T) {
	const seed, dur = 7, 12 * sim.Second
	for _, s := range All() {
		first := traceBytes(t, s, seed, dur)
		if second := traceBytes(t, s, seed, dur); !bytes.Equal(first, second) {
			t.Fatalf("%s: two runs at seed %d differ", s.Name, seed)
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		var back Scenario
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if roundTripped := traceBytes(t, back, seed, dur); !bytes.Equal(first, roundTripped) {
			t.Fatalf("%s: JSON round-tripped scenario produced a different trace", s.Name)
		}
	}
}
