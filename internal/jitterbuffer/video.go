// Package jitterbuffer models WebRTC's receive-side adaptive playout
// buffers: a frame-level video buffer and a sample-level audio buffer.
// Both trade latency for smoothness exactly as the paper describes
// (§6.1): the buffer holds early frames so late ones still meet their
// render deadline; rapid delay surges outrun the buffer, draining it to
// zero and freezing playback (Fig. 20), while sustained jitter grows
// the target delay and hence mouth-to-ear latency (Fig. 3).
package jitterbuffer

import (
	"github.com/domino5g/domino/internal/sim"
)

// VideoConfig parameterizes the video playout buffer.
type VideoConfig struct {
	// FrameInterval is the nominal inter-frame spacing (33.3 ms at 30 fps).
	FrameInterval sim.Time
	// MinTargetDelay floors the adaptive target.
	MinTargetDelay sim.Time
	// MaxTargetDelay caps the adaptive target.
	MaxTargetDelay sim.Time
	// JitterMultiplier scales the jitter estimate into target delay.
	JitterMultiplier float64
	// DrainRatePerFrame is how much buffered delay may be shed per
	// rendered frame when the buffer holds more than the target
	// (latency recovery after a spike).
	DrainRatePerFrame sim.Time
	// FreezeThreshold: a render gap beyond
	// max(3×FrameInterval, FrameInterval+FreezeThreshold) counts as a
	// freeze (WebRTC uses 150 ms).
	FreezeThreshold sim.Time
}

// DefaultVideoConfig returns a 30 fps configuration with WebRTC-like
// adaptation constants.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		FrameInterval:     sim.FromMilliseconds(1000.0 / 30),
		MinTargetDelay:    30 * sim.Millisecond,
		MaxTargetDelay:    700 * sim.Millisecond,
		JitterMultiplier:  4.0,
		DrainRatePerFrame: 500 * sim.Microsecond,
		FreezeThreshold:   150 * sim.Millisecond,
	}
}

// RenderEvent describes the playout decision for one frame.
type RenderEvent struct {
	FrameID  uint64
	RenderAt sim.Time
	// BufferDelay is how long the frame sat in the buffer (render −
	// arrival). Zero means the buffer was drained: the frame rendered
	// the moment it arrived.
	BufferDelay sim.Time
	// Drained marks a zero-delay (late) render.
	Drained bool
	// FreezeDuration is the render gap beyond the freeze threshold
	// that this frame ended; zero when no freeze occurred.
	FreezeDuration sim.Time
}

// VideoBuffer is the adaptive frame playout buffer. Feed completed
// frames in decode order via OnFrame; the buffer returns the render
// schedule and tracks freeze/fps/delay statistics.
type VideoBuffer struct {
	cfg VideoConfig

	// baseline maps sender timestamps to render deadlines:
	// render = sendAt + baseline. It adapts up instantly on late
	// frames and drains down slowly when the buffer is over target.
	baseline    sim.Time
	initialized bool

	jitterMs   float64 // EWMA jitter estimate (RFC 3550 style)
	lastSend   sim.Time
	lastArrive sim.Time

	lastRender  sim.Time
	lastDelay   sim.Time
	renderTimes []sim.Time // recent renders, for FPS queries
	totalFrames uint64
	drainEvents uint64
	freezeCount uint64
	freezeTotal sim.Time
	delaySumMs  float64
	frozenUntil sim.Time
}

// NewVideoBuffer returns a buffer with the given config (zero value
// selects defaults).
func NewVideoBuffer(cfg VideoConfig) *VideoBuffer {
	if cfg.FrameInterval <= 0 {
		cfg = DefaultVideoConfig()
	}
	return &VideoBuffer{cfg: cfg}
}

// TargetDelay returns the current adaptive target buffer delay.
func (b *VideoBuffer) TargetDelay() sim.Time {
	t := sim.FromMilliseconds(b.jitterMs * b.cfg.JitterMultiplier)
	if t < b.cfg.MinTargetDelay {
		t = b.cfg.MinTargetDelay
	}
	if t > b.cfg.MaxTargetDelay {
		t = b.cfg.MaxTargetDelay
	}
	return t
}

// OnFrame feeds one completed frame (all packets arrived) in decode
// order and returns its render decision.
func (b *VideoBuffer) OnFrame(frameID uint64, sendAt, arrival sim.Time) RenderEvent {
	b.totalFrames++

	// Jitter estimate from arrival-vs-send spacing deviation.
	if b.lastArrive != 0 || b.lastSend != 0 {
		d := (arrival - b.lastArrive) - (sendAt - b.lastSend)
		if d < 0 {
			d = -d
		}
		b.jitterMs += (d.Milliseconds() - b.jitterMs) / 16
	}
	b.lastSend, b.lastArrive = sendAt, arrival

	if !b.initialized {
		b.baseline = arrival - sendAt + b.TargetDelay()
		b.initialized = true
	}

	render := sendAt + b.baseline
	ev := RenderEvent{FrameID: frameID}
	if render <= arrival {
		// Late frame: the buffer is empty; render immediately and lift
		// the baseline so subsequent frames regain headroom.
		ev.Drained = true
		b.drainEvents++
		render = arrival
		b.baseline = arrival - sendAt + b.TargetDelay()/2
	} else {
		// Early frame: shed a little latency if we are above target.
		delay := render - arrival
		if delay > b.TargetDelay() {
			shed := b.cfg.DrainRatePerFrame
			if over := delay - b.TargetDelay(); shed > over {
				shed = over
			}
			b.baseline -= shed
			render -= shed
		}
	}
	// Renders are monotone.
	if b.lastRender != 0 && render < b.lastRender {
		render = b.lastRender
	}

	// Freeze detection on the render gap.
	if b.lastRender != 0 {
		gap := render - b.lastRender
		threshold := 3 * b.cfg.FrameInterval
		if alt := b.cfg.FrameInterval + b.cfg.FreezeThreshold; alt > threshold {
			threshold = alt
		}
		if gap >= threshold {
			b.freezeCount++
			b.freezeTotal += gap
			ev.FreezeDuration = gap
			b.frozenUntil = render
		}
	}

	ev.RenderAt = render
	ev.BufferDelay = render - arrival
	b.lastDelay = ev.BufferDelay
	b.delaySumMs += ev.BufferDelay.Milliseconds()
	b.lastRender = render
	b.renderTimes = append(b.renderTimes, render)
	// Keep a bounded render history (2 s at 60 fps).
	if len(b.renderTimes) > 120 {
		b.renderTimes = b.renderTimes[len(b.renderTimes)-120:]
	}
	return ev
}

// VideoStats summarizes buffer state for the 50 ms stats stream.
type VideoStats struct {
	CurrentDelayMs float64
	TargetDelayMs  float64
	AvgDelayMs     float64
	FPS            float64
	FreezeCount    uint64
	FreezeTotalMs  float64
	DrainEvents    uint64
	TotalFrames    uint64
	FrozenNow      bool
}

// Stats returns statistics as of time now. FPS counts frames rendered
// in the trailing second.
func (b *VideoBuffer) Stats(now sim.Time) VideoStats {
	fps := 0
	for i := len(b.renderTimes) - 1; i >= 0; i-- {
		if b.renderTimes[i] > now {
			continue // scheduled but not yet rendered
		}
		if now-b.renderTimes[i] > sim.Second {
			break
		}
		fps++
	}
	avg := 0.0
	if b.totalFrames > 0 {
		avg = b.delaySumMs / float64(b.totalFrames)
	}
	return VideoStats{
		CurrentDelayMs: b.lastDelay.Milliseconds(),
		TargetDelayMs:  b.TargetDelay().Milliseconds(),
		AvgDelayMs:     avg,
		FPS:            float64(fps),
		FreezeCount:    b.freezeCount,
		FreezeTotalMs:  b.freezeTotal.Milliseconds(),
		DrainEvents:    b.drainEvents,
		TotalFrames:    b.totalFrames,
		FrozenNow:      now < b.frozenUntil,
	}
}
