package jitterbuffer

import (
	"github.com/domino5g/domino/internal/sim"
)

// AudioConfig parameterizes the audio playout buffer (NetEq analogue).
type AudioConfig struct {
	// PacketDuration is the audio carried per packet (20 ms Opus).
	PacketDuration sim.Time
	// SamplesPerPacket converts packets to samples (48 kHz × 20 ms = 960).
	SamplesPerPacket int
	// MinTargetDelay / MaxTargetDelay bound the adaptive target.
	MinTargetDelay sim.Time
	MaxTargetDelay sim.Time
	// JitterMultiplier scales the jitter estimate into target delay.
	JitterMultiplier float64
}

// DefaultAudioConfig returns a 20 ms / 48 kHz configuration.
func DefaultAudioConfig() AudioConfig {
	return AudioConfig{
		PacketDuration:   20 * sim.Millisecond,
		SamplesPerPacket: 960,
		MinTargetDelay:   20 * sim.Millisecond,
		MaxTargetDelay:   500 * sim.Millisecond,
		JitterMultiplier: 3.5,
	}
}

// AudioBuffer is the adaptive audio playout buffer. Late packets force
// concealment: the playout clock never stops, so every missing
// PacketDuration of audio is synthesized (counted in ConcealedSamples)
// — the paper's Fig. 4 metric.
type AudioBuffer struct {
	cfg AudioConfig

	baseline    sim.Time
	initialized bool

	jitterMs   float64
	lastSend   sim.Time
	lastArrive sim.Time

	lastDelay        sim.Time
	delaySumMs       float64
	packets          uint64
	concealedSamples uint64
	concealEvents    uint64
	totalSamples     uint64
}

// NewAudioBuffer returns a buffer with the given config (zero value
// selects defaults).
func NewAudioBuffer(cfg AudioConfig) *AudioBuffer {
	if cfg.PacketDuration <= 0 {
		cfg = DefaultAudioConfig()
	}
	return &AudioBuffer{cfg: cfg}
}

// TargetDelay returns the adaptive target buffer delay.
func (b *AudioBuffer) TargetDelay() sim.Time {
	t := sim.FromMilliseconds(b.jitterMs * b.cfg.JitterMultiplier)
	if t < b.cfg.MinTargetDelay {
		t = b.cfg.MinTargetDelay
	}
	if t > b.cfg.MaxTargetDelay {
		t = b.cfg.MaxTargetDelay
	}
	return t
}

// OnPacket feeds one audio packet in sequence order. It returns the
// packet's buffer delay and the samples concealed while waiting for it.
func (b *AudioBuffer) OnPacket(sendAt, arrival sim.Time) (bufferDelay sim.Time, concealed int) {
	b.packets++
	b.totalSamples += uint64(b.cfg.SamplesPerPacket)

	if b.lastArrive != 0 || b.lastSend != 0 {
		d := (arrival - b.lastArrive) - (sendAt - b.lastSend)
		if d < 0 {
			d = -d
		}
		b.jitterMs += (d.Milliseconds() - b.jitterMs) / 16
	}
	b.lastSend, b.lastArrive = sendAt, arrival

	if !b.initialized {
		b.baseline = arrival - sendAt + b.TargetDelay()
		b.initialized = true
	}

	due := sendAt + b.baseline
	if arrival > due {
		// Late: the playout clock already passed this packet's slot.
		// Every missed PacketDuration was synthesized.
		gap := arrival - due
		pkts := int(gap/b.cfg.PacketDuration) + 1
		concealed = pkts * b.cfg.SamplesPerPacket
		b.concealedSamples += uint64(concealed)
		b.concealEvents++
		// Rebuild headroom.
		b.baseline = arrival - sendAt + b.TargetDelay()/2
		bufferDelay = 0
	} else {
		bufferDelay = due - arrival
		// Gentle latency recovery when far above target.
		if bufferDelay > b.TargetDelay()*2 {
			b.baseline -= b.cfg.PacketDuration / 40
		}
	}
	b.lastDelay = bufferDelay
	b.delaySumMs += bufferDelay.Milliseconds()
	return bufferDelay, concealed
}

// AudioStats summarizes buffer state.
type AudioStats struct {
	CurrentDelayMs   float64
	TargetDelayMs    float64
	AvgDelayMs       float64
	ConcealedSamples uint64
	TotalSamples     uint64
	ConcealEvents    uint64
	Packets          uint64
}

// Stats returns current statistics.
func (b *AudioBuffer) Stats() AudioStats {
	avg := 0.0
	if b.packets > 0 {
		avg = b.delaySumMs / float64(b.packets)
	}
	return AudioStats{
		CurrentDelayMs:   b.lastDelay.Milliseconds(),
		TargetDelayMs:    b.TargetDelay().Milliseconds(),
		AvgDelayMs:       avg,
		ConcealedSamples: b.concealedSamples,
		TotalSamples:     b.totalSamples,
		ConcealEvents:    b.concealEvents,
		Packets:          b.packets,
	}
}
