package jitterbuffer

import (
	"testing"
	"testing/quick"

	"github.com/domino5g/domino/internal/sim"
)

const frame = sim.Time(1000000 / 30) // ≈33.3 ms in µs

// playFrames drives a video buffer with frames sent every frame
// interval and delivered after delayFn(i).
func playFrames(b *VideoBuffer, n int, delayFn func(i int) sim.Time) []RenderEvent {
	var evs []RenderEvent
	for i := 0; i < n; i++ {
		sendAt := sim.Time(i) * frame
		evs = append(evs, b.OnFrame(uint64(i), sendAt, sendAt+delayFn(i)))
	}
	return evs
}

func TestVideoStableNetworkNoFreezes(t *testing.T) {
	b := NewVideoBuffer(DefaultVideoConfig())
	evs := playFrames(b, 300, func(int) sim.Time { return 30 * sim.Millisecond })
	st := b.Stats(sim.Time(300) * frame)
	if st.FreezeCount != 0 {
		t.Fatalf("freezes on a stable network: %d", st.FreezeCount)
	}
	// Renders must be monotone and spaced at the frame interval.
	for i := 1; i < len(evs); i++ {
		if evs[i].RenderAt < evs[i-1].RenderAt {
			t.Fatal("render times not monotone")
		}
	}
	if st.TotalFrames != 300 {
		t.Fatalf("frames = %d", st.TotalFrames)
	}
}

func TestVideoDelaySurgeDrainsAndFreezes(t *testing.T) {
	b := NewVideoBuffer(DefaultVideoConfig())
	// 100 stable frames, then a 280 ms delay surge (the Fig. 20 shape).
	evs := playFrames(b, 200, func(i int) sim.Time {
		if i >= 100 && i < 130 {
			return 280 * sim.Millisecond
		}
		return 25 * sim.Millisecond
	})
	st := b.Stats(sim.Time(200) * frame)
	if st.DrainEvents == 0 {
		t.Fatal("delay surge did not drain the buffer")
	}
	if st.FreezeCount == 0 {
		t.Fatal("delay surge did not cause a freeze")
	}
	if st.FreezeTotalMs < 100 {
		t.Fatalf("freeze total %vms too small", st.FreezeTotalMs)
	}
	// The drained frame rendered with zero buffer delay.
	found := false
	for _, ev := range evs {
		if ev.Drained && ev.BufferDelay == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no zero-delay drained render")
	}
}

func TestVideoJitterGrowsTargetDelay(t *testing.T) {
	calm := NewVideoBuffer(DefaultVideoConfig())
	playFrames(calm, 200, func(int) sim.Time { return 30 * sim.Millisecond })

	jittery := NewVideoBuffer(DefaultVideoConfig())
	rng := sim.NewRNG(1)
	playFrames(jittery, 200, func(int) sim.Time {
		return 30*sim.Millisecond + sim.Time(rng.Exponential(float64(40*sim.Millisecond)))
	})
	if jittery.TargetDelay() <= calm.TargetDelay() {
		t.Fatalf("jitter did not grow target: %v vs %v", jittery.TargetDelay(), calm.TargetDelay())
	}
}

func TestVideoLatencyRecoveryAfterSpike(t *testing.T) {
	b := NewVideoBuffer(DefaultVideoConfig())
	// Spike then long calm stretch: buffered delay should shrink again.
	playFrames(b, 60, func(i int) sim.Time {
		if i == 30 {
			return 300 * sim.Millisecond
		}
		return 25 * sim.Millisecond
	})
	afterSpike := b.Stats(sim.Time(60) * frame).CurrentDelayMs
	playFrames2 := func(n int) {
		for i := 0; i < n; i++ {
			sendAt := sim.Time(60+i) * frame
			b.OnFrame(uint64(60+i), sendAt, sendAt+25*sim.Millisecond)
		}
	}
	playFrames2(600)
	final := b.Stats(sim.Time(660) * frame).CurrentDelayMs
	if final >= afterSpike {
		t.Fatalf("buffer delay did not recover: %v -> %v", afterSpike, final)
	}
}

func TestVideoFPSDropsDuringFreeze(t *testing.T) {
	b := NewVideoBuffer(DefaultVideoConfig())
	playFrames(b, 100, func(int) sim.Time { return 25 * sim.Millisecond })
	fpsBefore := b.Stats(sim.Time(99)*frame + 25*sim.Millisecond).FPS
	if fpsBefore < 25 {
		t.Fatalf("steady-state FPS = %v", fpsBefore)
	}
	// A 500 ms gap in arrivals: no renders during it.
	for i := 100; i < 130; i++ {
		sendAt := sim.Time(i) * frame
		b.OnFrame(uint64(i), sendAt, sendAt+500*sim.Millisecond)
	}
	// Query mid-gap: renders after now do not count.
	midGap := sim.Time(103) * frame
	if fps := b.Stats(midGap).FPS; fps >= fpsBefore {
		t.Fatalf("FPS did not drop during stall: %v", fps)
	}
}

func TestVideoStatsFrozenNow(t *testing.T) {
	b := NewVideoBuffer(DefaultVideoConfig())
	playFrames(b, 50, func(i int) sim.Time {
		if i == 40 {
			return 400 * sim.Millisecond
		}
		return 25 * sim.Millisecond
	})
	// Immediately after the freeze-ending frame's render, FrozenNow is
	// false; during the gap it was true.
	during := sim.Time(40)*frame + 100*sim.Millisecond
	if !b.Stats(during).FrozenNow {
		t.Fatal("FrozenNow false during freeze window")
	}
}

func TestAudioStableNoConcealment(t *testing.T) {
	b := NewAudioBuffer(DefaultAudioConfig())
	for i := 0; i < 500; i++ {
		sendAt := sim.Time(i) * 20 * sim.Millisecond
		if _, c := b.OnPacket(sendAt, sendAt+30*sim.Millisecond); c != 0 {
			t.Fatalf("concealment on stable network at packet %d", i)
		}
	}
	st := b.Stats()
	if st.ConcealedSamples != 0 || st.ConcealEvents != 0 {
		t.Fatal("stable network concealed samples")
	}
	if st.TotalSamples != 500*960 {
		t.Fatalf("total samples = %d", st.TotalSamples)
	}
}

func TestAudioLatePacketConceals(t *testing.T) {
	b := NewAudioBuffer(DefaultAudioConfig())
	for i := 0; i < 100; i++ {
		sendAt := sim.Time(i) * 20 * sim.Millisecond
		b.OnPacket(sendAt, sendAt+30*sim.Millisecond)
	}
	// One packet arrives 200 ms late: ~10 packets of audio concealed.
	sendAt := sim.Time(100) * 20 * sim.Millisecond
	_, concealed := b.OnPacket(sendAt, sendAt+230*sim.Millisecond)
	if concealed < 960 {
		t.Fatalf("late packet concealed only %d samples", concealed)
	}
	st := b.Stats()
	if st.ConcealEvents != 1 {
		t.Fatalf("conceal events = %d", st.ConcealEvents)
	}
}

func TestAudioJitterGrowsTarget(t *testing.T) {
	calm := NewAudioBuffer(DefaultAudioConfig())
	for i := 0; i < 300; i++ {
		sendAt := sim.Time(i) * 20 * sim.Millisecond
		calm.OnPacket(sendAt, sendAt+30*sim.Millisecond)
	}
	rng := sim.NewRNG(2)
	jittery := NewAudioBuffer(DefaultAudioConfig())
	for i := 0; i < 300; i++ {
		sendAt := sim.Time(i) * 20 * sim.Millisecond
		jittery.OnPacket(sendAt, sendAt+30*sim.Millisecond+sim.Time(rng.Exponential(float64(30*sim.Millisecond))))
	}
	if jittery.TargetDelay() <= calm.TargetDelay() {
		t.Fatal("audio target did not adapt to jitter")
	}
}

// Property: video render times are always monotone non-decreasing and
// buffer delays are never negative, for arbitrary delay sequences.
func TestVideoMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		b := NewVideoBuffer(DefaultVideoConfig())
		last := sim.Time(0)
		for i, d := range delays {
			sendAt := sim.Time(i) * frame
			ev := b.OnFrame(uint64(i), sendAt, sendAt+sim.Time(d)*100*sim.Microsecond)
			if ev.RenderAt < last || ev.BufferDelay < 0 {
				return false
			}
			last = ev.RenderAt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: audio concealment only happens for late packets, and
// target delay stays within configured bounds.
func TestAudioBoundsProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		cfg := DefaultAudioConfig()
		b := NewAudioBuffer(cfg)
		for i, d := range delays {
			sendAt := sim.Time(i) * 20 * sim.Millisecond
			bd, _ := b.OnPacket(sendAt, sendAt+sim.Time(d)*50*sim.Microsecond)
			if bd < 0 {
				return false
			}
			td := b.TargetDelay()
			if td < cfg.MinTargetDelay || td > cfg.MaxTargetDelay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
