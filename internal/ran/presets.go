package ran

import (
	"fmt"
	"strings"

	"github.com/domino5g/domino/internal/mac"
	"github.com/domino5g/domino/internal/phy"
	"github.com/domino5g/domino/internal/rrc"
	"github.com/domino5g/domino/internal/sim"
)

// The four cells of Table 1. Parameters follow the paper's narrative:
//
//   - T-Mobile 15 MHz FDD (622.85 MHz): heavily utilized low-band cell
//     with strong, bursty DL cross traffic and intermittent spurious
//     RRC releases. Small TBS ⇒ >10 TBs per video frame ⇒ large delay
//     spread (Fig. 14b).
//   - T-Mobile 100 MHz TDD (2506.95 MHz): wide mid-band carrier, light
//     cross traffic, large TBS ⇒ small delay spread (Fig. 14a).
//   - Amarisoft 20 MHz TDD (3547.20 MHz): private cell, no cross
//     traffic, persistently poor UL channel plus conservative UL MCS
//     selection ⇒ low UL bitrate, frequent HARQ and RLC retx. The only
//     cell with gNB (RLC-layer) logs.
//   - Mosolabs 20 MHz TDD (3630.72 MHz): private cell, healthy
//     channel, proactive UL grants (Fig. 16).

// TMobileFDD returns the T-Mobile 15 MHz FDD cell configuration.
func TMobileFDD() CellConfig {
	ul := phy.DefaultGoodChannel()
	ul.MeanSNRdB = 19
	dl := phy.DefaultGoodChannel()
	dl.MeanSNRdB = 20
	return CellConfig{
		Name:         "T-Mobile 15MHz FDD",
		Numerology:   phy.SCS15kHz,
		BandwidthMHz: 15,
		Frame:        mac.FDD(),
		ULGrants: mac.GrantConfig{
			SchedulingDelay: 8 * sim.Millisecond,
			BSRPeriod:       2 * sim.Millisecond,
			MaxGrantBytes:   4000,
		},
		HARQ:           mac.HARQConfig{RTT: 8 * sim.Millisecond, MaxAttempts: 5},
		RLCStatusDelay: 55 * sim.Millisecond,
		ULChannel:      ul,
		DLChannel:      dl,
		ULLinkAdapt:    LinkAdaptConfig{Backoff: 1, ReportInterval: 20 * sim.Millisecond},
		DLLinkAdapt:    LinkAdaptConfig{Backoff: 0, ReportInterval: 20 * sim.Millisecond},
		ULCross:        mac.LightCommercialUL(),
		DLCross:        mac.BusyCommercialDL(),
		RRC:            rrc.Flaky(0.35),
		MaxUEShare:     0.5,
		HasGNBLog:      false,
	}
}

// TMobileTDD returns the T-Mobile 100 MHz TDD cell configuration.
func TMobileTDD() CellConfig {
	ul := phy.DefaultGoodChannel()
	ul.MeanSNRdB = 21
	dl := phy.DefaultGoodChannel()
	dl.MeanSNRdB = 23
	cross := mac.CrossTrafficConfig{
		UEs: 5, BurstRate: 2, BurstDuration: 600 * sim.Millisecond,
		BurstPRBFraction: 0.3, BaselineFraction: 0.08,
	}
	return CellConfig{
		Name:         "T-Mobile 100MHz TDD",
		Numerology:   phy.SCS30kHz,
		BandwidthMHz: 100,
		Frame:        mac.TDD("DDDSU"),
		ULGrants: mac.GrantConfig{
			SchedulingDelay: 14 * sim.Millisecond,
			BSRPeriod:       2500 * sim.Microsecond,
			MaxGrantBytes:   40000,
		},
		HARQ:           mac.HARQConfig{RTT: 8 * sim.Millisecond, MaxAttempts: 5},
		RLCStatusDelay: 55 * sim.Millisecond,
		ULChannel:      ul,
		DLChannel:      dl,
		ULLinkAdapt:    LinkAdaptConfig{Backoff: 1, ReportInterval: 20 * sim.Millisecond},
		DLLinkAdapt:    LinkAdaptConfig{Backoff: 0, ReportInterval: 20 * sim.Millisecond},
		ULCross:        mac.LightCommercialUL(),
		DLCross:        cross,
		RRC:            rrc.Stable(),
		MaxUEShare:     0.5,
		HasGNBLog:      false,
	}
}

// Amarisoft returns the Amarisoft Callbox private cell configuration.
func Amarisoft() CellConfig {
	dl := phy.DefaultGoodChannel()
	dl.MeanSNRdB = 22
	return CellConfig{
		Name:         "Amarisoft 20MHz TDD",
		Numerology:   phy.SCS30kHz,
		BandwidthMHz: 20,
		Frame:        mac.TDD("DDDSU"),
		ULGrants: mac.GrantConfig{
			SchedulingDelay: 18 * sim.Millisecond,
			BSRPeriod:       2500 * sim.Microsecond,
			MaxGrantBytes:   9000,
		},
		HARQ:           mac.HARQConfig{RTT: 10 * sim.Millisecond, MaxAttempts: 5},
		RLCStatusDelay: 55 * sim.Millisecond,
		ULChannel:      phy.DefaultPoorChannel(),
		DLChannel:      dl,
		// Conservative UL MCS selection (§5.1.1): large backoff.
		ULLinkAdapt: LinkAdaptConfig{Backoff: 4, ReportInterval: 20 * sim.Millisecond},
		DLLinkAdapt: LinkAdaptConfig{Backoff: 0, ReportInterval: 20 * sim.Millisecond},
		ULCross:     mac.QuietCell(),
		DLCross:     mac.QuietCell(),
		RRC:         rrc.Stable(),
		MaxUEShare:  0.9,
		HasGNBLog:   true,
	}
}

// Mosolabs returns the Mosolabs Canopy private cell configuration.
func Mosolabs() CellConfig {
	ul := phy.DefaultGoodChannel()
	ul.MeanSNRdB = 20
	dl := phy.DefaultGoodChannel()
	dl.MeanSNRdB = 22
	return CellConfig{
		Name:         "Mosolabs 20MHz TDD",
		Numerology:   phy.SCS30kHz,
		BandwidthMHz: 20,
		Frame:        mac.TDD("DDDSU"),
		ULGrants: mac.GrantConfig{
			SchedulingDelay: 15 * sim.Millisecond,
			BSRPeriod:       2500 * sim.Microsecond,
			MaxGrantBytes:   9000,
			Proactive:       true,
			ProactivePeriod: 5 * sim.Millisecond,
			ProactiveBytes:  900,
		},
		HARQ:           mac.HARQConfig{RTT: 9 * sim.Millisecond, MaxAttempts: 5},
		RLCStatusDelay: 55 * sim.Millisecond,
		ULChannel:      ul,
		DLChannel:      dl,
		ULLinkAdapt:    LinkAdaptConfig{Backoff: 1, ReportInterval: 20 * sim.Millisecond},
		DLLinkAdapt:    LinkAdaptConfig{Backoff: 0, ReportInterval: 20 * sim.Millisecond},
		ULCross:        mac.QuietCell(),
		DLCross:        mac.QuietCell(),
		RRC:            rrc.Stable(),
		MaxUEShare:     0.9,
		HasGNBLog:      false,
	}
}

// cellEntry is one registered cell: a stable slug, optional short
// aliases, and the constructor producing a fresh CellConfig.
type cellEntry struct {
	slug    string
	aliases []string
	build   func() CellConfig
}

// cellRegistry holds every registered cell in registration order. The
// four Table 1 cells register below; scenario packages and tests may
// RegisterCell additional bases.
var cellRegistry []cellEntry

// RegisterCell adds a cell constructor under a stable slug (plus
// optional aliases). It panics on an empty slug, a nil constructor, or
// a slug/alias collision — registration errors are programming bugs.
func RegisterCell(slug string, build func() CellConfig, aliases ...string) {
	if slug == "" || build == nil {
		panic("ran: RegisterCell needs a slug and a constructor")
	}
	for _, n := range append([]string{slug}, aliases...) {
		if _, err := PresetByName(n); err == nil {
			panic("ran: duplicate cell registration " + n)
		}
	}
	cellRegistry = append(cellRegistry, cellEntry{slug: strings.ToLower(slug), aliases: aliases, build: build})
}

func init() {
	// Table 1 order: the registration order is the Presets() order, so
	// every artifact rendered from Presets() keeps its historical rows.
	RegisterCell("tmobile-tdd", TMobileTDD, "tdd")
	RegisterCell("tmobile-fdd", TMobileFDD, "fdd")
	RegisterCell("amarisoft", Amarisoft)
	RegisterCell("mosolabs", Mosolabs)
}

// Presets returns every registered cell in registration order — for
// the seed registry, the four paper cells in Table 1 order.
func Presets() []CellConfig {
	out := make([]CellConfig, len(cellRegistry))
	for i, e := range cellRegistry {
		out[i] = e.build()
	}
	return out
}

// CellNames returns the registered cell slugs in registration order.
func CellNames() []string {
	out := make([]string, len(cellRegistry))
	for i, e := range cellRegistry {
		out[i] = e.slug
	}
	return out
}

// PresetByName looks up a registered cell case-insensitively by slug
// ("tmobile-fdd"), alias ("fdd"), or full Table 1 name ("T-Mobile
// 15MHz FDD"). Unknown names report the valid slugs.
func PresetByName(name string) (CellConfig, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for _, e := range cellRegistry {
		if n == e.slug || strings.EqualFold(name, e.build().Name) {
			return e.build(), nil
		}
		for _, a := range e.aliases {
			if n == strings.ToLower(a) {
				return e.build(), nil
			}
		}
	}
	return CellConfig{}, fmt.Errorf("ran: unknown cell preset %q (valid: %s)",
		name, strings.Join(CellNames(), ", "))
}
