package ran

import (
	"testing"

	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// sendBurst enqueues n packets of size bytes on the link at time at.
func sendBurst(e *sim.Engine, link netem.Link, at sim.Time, n, size int, kind netem.MediaKind) {
	e.Schedule(at, func() {
		for i := 0; i < n; i++ {
			link.Send(&netem.Packet{Seq: uint64(at) + uint64(i), Kind: kind, Size: size, SentAt: e.Now()})
		}
	})
}

func newTestCell(t *testing.T, cfg CellConfig, seed uint64) (*sim.Engine, *Cell, *[]*netem.Packet, *[]*netem.Packet, *trace.Collector) {
	t.Helper()
	e := sim.NewEngine()
	var ulOut, dlOut []*netem.Packet
	col := trace.NewCollector(cfg.Name, cfg.HasGNBLog)
	cell, err := NewCell(e, sim.NewRNG(seed), cfg,
		func(p *netem.Packet) { ulOut = append(ulOut, p) },
		func(p *netem.Packet) { dlOut = append(dlOut, p) },
		col)
	if err != nil {
		t.Fatal(err)
	}
	return e, cell, &ulOut, &dlOut, col
}

func TestCellULDelivery(t *testing.T) {
	e, cell, ulOut, _, _ := newTestCell(t, Mosolabs(), 2)
	for b := 0; b < 30; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 6, 1200, netem.KindVideo)
	}
	e.RunUntil(3 * sim.Second)
	if len(*ulOut) != 180 {
		t.Fatalf("delivered %d/180 UL packets", len(*ulOut))
	}
	// All packets experience the request-grant scheduling delay: one-way
	// through the RAN must exceed a few ms but stay bounded.
	for _, p := range *ulOut {
		d := p.OneWayDelay()
		if d < sim.Millisecond {
			t.Fatalf("UL delay %v implausibly low", d)
		}
		if d > sim.Second {
			t.Fatalf("UL delay %v implausibly high", d)
		}
	}
}

func TestCellDLDelivery(t *testing.T) {
	e, cell, _, dlOut, _ := newTestCell(t, Mosolabs(), 3)
	for b := 0; b < 30; b++ {
		sendBurst(e, cell.DLLink(), sim.Time(b)*33*sim.Millisecond, 6, 1200, netem.KindVideo)
	}
	e.RunUntil(3 * sim.Second)
	if len(*dlOut) != 180 {
		t.Fatalf("delivered %d/180 DL packets", len(*dlOut))
	}
}

func TestCellULSlowerThanDL(t *testing.T) {
	// The request–grant loop makes UL median delay exceed DL on an
	// otherwise symmetric healthy cell (§5.2.1).
	e, cell, ulOut, dlOut, _ := newTestCell(t, Mosolabs(), 4)
	for b := 0; b < 100; b++ {
		at := sim.Time(b) * 33 * sim.Millisecond
		sendBurst(e, cell.ULLink(), at, 5, 1200, netem.KindVideo)
		sendBurst(e, cell.DLLink(), at, 5, 1200, netem.KindVideo)
	}
	e.RunUntil(5 * sim.Second)
	med := func(pkts []*netem.Packet) sim.Time {
		if len(pkts) == 0 {
			t.Fatal("no packets")
		}
		ds := make([]sim.Time, len(pkts))
		for i, p := range pkts {
			ds[i] = p.OneWayDelay()
		}
		for i := range ds {
			for j := i + 1; j < len(ds); j++ {
				if ds[j] < ds[i] {
					ds[i], ds[j] = ds[j], ds[i]
				}
			}
		}
		return ds[len(ds)/2]
	}
	ulMed, dlMed := med(*ulOut), med(*dlOut)
	if ulMed <= dlMed {
		t.Fatalf("UL median %v should exceed DL median %v", ulMed, dlMed)
	}
	if dlMed > 20*sim.Millisecond {
		t.Fatalf("DL median %v too high for a quiet private cell", dlMed)
	}
}

func TestCellEmitsDCITelemetry(t *testing.T) {
	e, cell, _, _, col := newTestCell(t, Amarisoft(), 5)
	for b := 0; b < 60; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 4, 1200, netem.KindVideo)
	}
	e.RunUntil(2 * sim.Second)
	if len(col.Set.DCI) == 0 {
		t.Fatal("no DCI records")
	}
	sawOwn := false
	for _, r := range col.Set.DCI {
		if r.OwnPRB > 0 {
			sawOwn = true
			if r.MCS < 0 || r.MCS > 27 {
				t.Fatalf("DCI MCS %d out of range", r.MCS)
			}
			if r.TBSBits <= 0 {
				t.Fatal("DCI with own PRBs but zero TBS")
			}
		}
	}
	if !sawOwn {
		t.Fatal("no DCI records with own-UE allocations")
	}
	// Amarisoft exposes gNB logs.
	if len(col.Set.GNBLogs) == 0 {
		t.Fatal("no gNB log records on the Amarisoft cell")
	}
}

func TestCellCommercialHasNoGNBLogs(t *testing.T) {
	e, cell, _, _, col := newTestCell(t, TMobileTDD(), 6)
	for b := 0; b < 30; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 4, 1200, netem.KindVideo)
	}
	e.RunUntil(sim.Second)
	if len(col.Set.GNBLogs) != 0 {
		t.Fatalf("commercial cell leaked %d gNB log records", len(col.Set.GNBLogs))
	}
}

func TestCellPoorULChannelCausesHARQRetx(t *testing.T) {
	e, cell, ulOut, _, _ := newTestCell(t, Amarisoft(), 7)
	for b := 0; b < 300; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 4, 1200, netem.KindVideo)
	}
	// Generous drain time: deep fades can stall the last packets for a
	// while.
	e.RunUntil(14 * sim.Second)
	st := cell.ULStats()
	if st.HARQRetx == 0 {
		t.Fatal("poor UL channel produced no HARQ retransmissions")
	}
	if len(*ulOut) != 1200 {
		t.Fatalf("delivered %d/1200 despite retx (RLC AM must not lose data)", len(*ulOut))
	}
}

func TestCellCrossTrafficInflatesDelay(t *testing.T) {
	quiet := Mosolabs()
	e1, c1, _, out1, _ := newTestCell(t, quiet, 8)
	for b := 0; b < 150; b++ {
		sendBurst(e1, c1.DLLink(), sim.Time(b)*33*sim.Millisecond, 6, 1200, netem.KindVideo)
	}
	e1.RunUntil(6 * sim.Second)

	e2, c2, _, out2, _ := newTestCell(t, Mosolabs(), 8)
	c2.DLCross().ScriptBurst(0, 6*sim.Second, 0.92)
	for b := 0; b < 150; b++ {
		sendBurst(e2, c2.DLLink(), sim.Time(b)*33*sim.Millisecond, 6, 1200, netem.KindVideo)
	}
	e2.RunUntil(6 * sim.Second)

	mean := func(pkts []*netem.Packet) float64 {
		var s float64
		for _, p := range pkts {
			s += p.OneWayDelay().Milliseconds()
		}
		return s / float64(len(pkts))
	}
	if len(*out2) == 0 {
		t.Fatal("no packets under cross traffic")
	}
	m1, m2 := mean(*out1), mean(*out2)
	if m2 < m1*1.5 {
		t.Fatalf("cross traffic did not inflate DL delay: quiet %.2fms vs loaded %.2fms", m1, m2)
	}
	_ = c1
}

func TestCellRRCOutageBuffersAndRecovers(t *testing.T) {
	cfg := Mosolabs()
	e, cell, ulOut, _, col := newTestCell(t, cfg, 9)
	cell.RRC().ScriptRelease(sim.Second)
	for b := 0; b < 90; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 4, 1200, netem.KindVideo)
	}
	e.RunUntil(4 * sim.Second)
	if len(*ulOut) != 360 {
		t.Fatalf("delivered %d/360 across RRC outage", len(*ulOut))
	}
	var maxDelay sim.Time
	for _, p := range *ulOut {
		if d := p.OneWayDelay(); d > maxDelay {
			maxDelay = d
		}
	}
	// Packets caught in the ~300 ms outage see large delay spikes.
	if maxDelay < 200*sim.Millisecond {
		t.Fatalf("max delay %v too small for an RRC outage", maxDelay)
	}
	if len(col.Set.RRC) < 2 {
		t.Fatalf("RRC transitions not in telemetry: %d", len(col.Set.RRC))
	}
	if col.Set.RRC[0].RNTI == col.Set.RRC[len(col.Set.RRC)-1].RNTI &&
		col.Set.RRC[0].Connected != col.Set.RRC[len(col.Set.RRC)-1].Connected {
		t.Fatal("RNTI should change across reconnection")
	}
}

func TestCellProactiveGrantsReduceFirstPacketDelay(t *testing.T) {
	pro := Mosolabs()
	noPro := Mosolabs()
	noPro.ULGrants.Proactive = false

	firstDelay := func(cfg CellConfig) sim.Time {
		e, cell, out, _, _ := newTestCell(t, cfg, 10)
		// One isolated small packet: proactive credit should carry it
		// without waiting for the BSR round trip.
		sendBurst(e, cell.ULLink(), 100*sim.Millisecond, 1, 600, netem.KindAudio)
		e.RunUntil(sim.Second)
		if len(*out) != 1 {
			t.Fatalf("%s: delivered %d", cfg.Name, len(*out))
		}
		return (*out)[0].OneWayDelay()
	}
	dPro, dNoPro := firstDelay(pro), firstDelay(noPro)
	if dPro >= dNoPro {
		t.Fatalf("proactive grants did not cut first-packet delay: %v vs %v", dPro, dNoPro)
	}
}

func TestCellProactiveWaste(t *testing.T) {
	e, cell, _, _, col := newTestCell(t, Mosolabs(), 11)
	// No traffic at all: every proactive grant is wasted.
	e.RunUntil(2 * sim.Second)
	if cell.ULStats().WastedBytes == 0 {
		t.Fatal("idle proactive grants wasted no bytes")
	}
	unused := 0
	for _, r := range col.Set.DCI {
		if r.Proactive && r.Unused {
			unused++
		}
	}
	if unused == 0 {
		t.Fatal("no unused proactive DCI records")
	}
}

func TestCellChannelDipBuildsBuffer(t *testing.T) {
	cfg := Amarisoft()
	cfg.ULChannel.DipRate = 0 // deterministic: only the scripted dip
	e, cell, ulOut, _, _ := newTestCell(t, cfg, 12)
	cell.ULChannel().ScriptDip(sim.Second, 2*sim.Second, 18)

	var maxBufDuringDip int
	e.NewTicker(0, 10*sim.Millisecond, func(now sim.Time) {
		if now >= sim.Second && now < 2200*sim.Millisecond {
			if b := cell.ULBufferBytes(); b > maxBufDuringDip {
				maxBufDuringDip = b
			}
		}
	})
	// Keep the offered load below the cell's post-dip UL capacity so
	// the buffer can drain once the channel recovers.
	for b := 0; b < 120; b++ {
		sendBurst(e, cell.ULLink(), sim.Time(b)*33*sim.Millisecond, 5, 1200, netem.KindVideo)
	}
	e.RunUntil(8 * sim.Second)
	if maxBufDuringDip < 20000 {
		t.Fatalf("RLC buffer during dip only %d bytes; expected build-up", maxBufDuringDip)
	}
	if len(*ulOut) != 600 {
		t.Fatalf("delivered %d/600", len(*ulOut))
	}
	var maxDelay sim.Time
	for _, p := range *ulOut {
		if d := p.OneWayDelay(); d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay < 80*sim.Millisecond {
		t.Fatalf("max delay %v during 18 dB dip; expected a surge", maxDelay)
	}
}

func TestSplitPRBs(t *testing.T) {
	own, cross := splitPRBs(10, 20, 100)
	if own != 10 || cross != 20 {
		t.Fatal("uncontended split should satisfy both")
	}
	own, cross = splitPRBs(50, 150, 100)
	if own+cross > 100 {
		t.Fatal("split exceeds budget")
	}
	if own != 25 {
		t.Fatalf("proportional share = %d, want 25", own)
	}
	own, _ = splitPRBs(1, 10000, 100)
	if own < 1 {
		t.Fatal("nonzero demand should never starve completely")
	}
	own, cross = splitPRBs(0, 0, 100)
	if own != 0 || cross != 0 {
		t.Fatal("zero demand")
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"fdd", "tdd", "amarisoft", "mosolabs"} {
		if _, err := PresetByName(name); err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
	for _, cfg := range Presets() {
		if _, err := PresetByName(cfg.Name); err != nil {
			t.Fatalf("full-name lookup %q failed", cfg.Name)
		}
	}
}

func TestCellInvalidConfig(t *testing.T) {
	e := sim.NewEngine()
	cfg := Mosolabs()
	cfg.BandwidthMHz = 17
	if _, err := NewCell(e, sim.NewRNG(1), cfg, nil, nil, nil); err == nil {
		t.Fatal("invalid bandwidth accepted")
	}
	cfg = Mosolabs()
	cfg.MaxUEShare = 0
	if _, err := NewCell(e, sim.NewRNG(1), cfg, nil, nil, nil); err == nil {
		t.Fatal("invalid MaxUEShare accepted")
	}
}
