// Package ran composes the PHY, MAC, RLC, and RRC models into a
// simulated 5G cell that the media stack attaches to as a pair of
// netem.Links (uplink and downlink). The cell runs a slot-level loop,
// emits NR-Scope-style DCI telemetry and gNB logs, and reproduces the
// delay mechanisms the paper diagnoses: RLC buffer build-up under
// channel degradation or cross traffic, UL scheduling delay and delay
// spread, HARQ and RLC retransmission latency with head-of-line
// blocking, and RRC-transition outages.
package ran

import (
	"fmt"

	"github.com/domino5g/domino/internal/mac"
	"github.com/domino5g/domino/internal/netem"
	"github.com/domino5g/domino/internal/phy"
	"github.com/domino5g/domino/internal/rlc"
	"github.com/domino5g/domino/internal/rrc"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/trace"
)

// LinkAdaptConfig shapes the MCS selection policy per direction.
type LinkAdaptConfig struct {
	// Backoff lowers (positive) or raises (negative) the CQI-mapped
	// MCS. The paper attributes the Amarisoft UL bitrate gap partly to
	// a conservative UL MCS selection strategy.
	Backoff int
	// ReportInterval is the CQI reporting period.
	ReportInterval sim.Time
}

// CellConfig fully describes one simulated cell.
type CellConfig struct {
	Name         string
	Numerology   phy.Numerology
	BandwidthMHz int
	Frame        mac.FramePattern

	ULGrants mac.GrantConfig
	HARQ     mac.HARQConfig
	// RLCStatusDelay is the gap between HARQ exhaustion and the RLC
	// retransmission becoming eligible (status-report round trip).
	// Combined with MaxAttempts×RTT it produces the ~105 ms RLC retx
	// penalty of Fig. 18.
	RLCStatusDelay sim.Time

	ULChannel, DLChannel     phy.ChannelConfig
	ULLinkAdapt, DLLinkAdapt LinkAdaptConfig
	ULCross, DLCross         mac.CrossTrafficConfig
	RRC                      rrc.Config

	// MaxUEShare caps the fraction of the carrier's PRBs the
	// experiment UE may take in one slot (scheduler fairness).
	MaxUEShare float64
	// HasGNBLog mirrors data availability: private cells expose
	// RLC-layer logs, commercial cells do not.
	HasGNBLog bool
}

// Observer receives the cell's telemetry stream. trace.Collector
// implements it; tests use lighter-weight observers.
type Observer interface {
	OnDCI(trace.DCIRecord)
	OnGNBLog(trace.GNBLogRecord)
	OnRRC(trace.RRCRecord)
}

// direction holds the per-direction machinery.
type direction struct {
	dir     netem.Direction
	channel *phy.Channel
	adapter *phy.LinkAdapter
	cross   *mac.CrossTraffic
	harq    *mac.HARQEntity
	tx      *rlc.TxEntity
	rx      *rlc.RxEntity
	sink    netem.Sink

	// pendingRetx holds HARQ retransmissions awaiting a usable slot.
	pendingRetx []*mac.TB
	// tbPool recycles concluded transport blocks (and their segment
	// slices), so the slot loop builds TBs without allocating.
	tbPool []*mac.TB
	// grantCredit is UL-only: granted bytes not yet consumed.
	grantCredit int
	// proactiveCredit tracks the proactive share of grantCredit for
	// waste accounting.
	proactiveCredit int

	lastSNR float64

	// Stats.
	tbsSent      uint64
	wastedBytes  uint64
	grantedBytes uint64
}

// Cell is a simulated 5G cell serving one experiment UE (plus modeled
// cross traffic). Attach media flows via ULLink and DLLink.
type Cell struct {
	cfg      CellConfig
	engine   *sim.Engine
	rng      *sim.RNG
	clock    mac.SlotClock
	totalPRB int

	ul, dl  *direction
	ulSched *mac.ULScheduler
	rrcm    *rrc.Machine
	obs     Observer

	nextTBID uint64
	ticker   *sim.Ticker
}

type nopObserver struct{}

func (nopObserver) OnDCI(trace.DCIRecord)       {}
func (nopObserver) OnGNBLog(trace.GNBLogRecord) {}
func (nopObserver) OnRRC(trace.RRCRecord)       {}

// NewCell constructs a cell and starts its slot loop on the engine.
// ulSink receives packets leaving the cell toward the core network;
// dlSink receives packets delivered to the UE.
func NewCell(engine *sim.Engine, rng *sim.RNG, cfg CellConfig, ulSink, dlSink netem.Sink, obs Observer) (*Cell, error) {
	totalPRB, err := cfg.Numerology.PRBsForBandwidth(cfg.BandwidthMHz)
	if err != nil {
		return nil, fmt.Errorf("ran: cell %q: %w", cfg.Name, err)
	}
	if cfg.MaxUEShare <= 0 || cfg.MaxUEShare > 1 {
		return nil, fmt.Errorf("ran: cell %q: MaxUEShare %v out of (0,1]", cfg.Name, cfg.MaxUEShare)
	}
	if obs == nil {
		obs = nopObserver{}
	}
	c := &Cell{
		cfg:      cfg,
		engine:   engine,
		rng:      rng.Fork(),
		clock:    mac.SlotClock{SlotDuration: cfg.Numerology.SlotDuration()},
		totalPRB: totalPRB,
		ulSched:  mac.NewULScheduler(cfg.ULGrants),
		obs:      obs,
	}
	c.rrcm = rrc.NewMachine(cfg.RRC, c.rng)
	c.ul = c.newDirection(netem.Uplink, cfg.ULChannel, cfg.ULLinkAdapt, cfg.ULCross, ulSink)
	c.dl = c.newDirection(netem.Downlink, cfg.DLChannel, cfg.DLLinkAdapt, cfg.DLCross, dlSink)

	c.ticker = engine.NewTicker(0, c.clock.SlotDuration, c.onSlot)
	return c, nil
}

func (c *Cell) newDirection(dir netem.Direction, ch phy.ChannelConfig, la LinkAdaptConfig, ct mac.CrossTrafficConfig, sink netem.Sink) *direction {
	d := &direction{
		dir:     dir,
		channel: phy.NewChannel(ch, c.rng),
		adapter: phy.NewLinkAdapter(la.Backoff, la.ReportInterval),
		cross:   mac.NewCrossTraffic(ct, c.totalPRB, c.rng),
		tx:      rlc.NewTxEntity(),
		sink:    sink,
	}
	d.rx = rlc.NewRxEntity(func(dp rlc.DeliveredPacket) {
		dp.Packet.ArrivedAt = dp.At
		if d.sink != nil {
			d.sink(dp.Packet)
		}
	})
	d.harq = mac.NewHARQEntity(c.cfg.HARQ, c.engine, c.rng,
		func(tb *mac.TB, at sim.Time) {
			d.rx.Receive(tb.Segments, at)
			d.recycleTB(tb)
		},
		func(tb *mac.TB, at sim.Time) {
			// Nack copies the segments into the retx queue, so the TB
			// is concluded here too.
			d.tx.Nack(tb.Segments, at+c.cfg.RLCStatusDelay)
			c.obs.OnGNBLog(trace.GNBLogRecord{At: at, Kind: trace.GNBLogRLCRetx, Dir: dir, Note: "harq exhausted"})
			d.recycleTB(tb)
		},
		func(tb *mac.TB) { d.pendingRetx = append(d.pendingRetx, tb) },
		nil,
	)
	return d
}

// takeTB pops a recycled transport block (or allocates the first time).
func (d *direction) takeTB() *mac.TB {
	if n := len(d.tbPool); n > 0 {
		tb := d.tbPool[n-1]
		d.tbPool = d.tbPool[:n-1]
		return tb
	}
	return &mac.TB{}
}

// recycleTB returns a concluded TB to the pool, dropping its segment
// references (they point at SDUs the pool must not keep alive) while
// keeping the slice's backing array for the next FillTBInto.
func (d *direction) recycleTB(tb *mac.TB) {
	segs := tb.Segments
	clear(segs)
	*tb = mac.TB{Segments: segs[:0]}
	d.tbPool = append(d.tbPool, tb)
}

// ULLink returns the link carrying traffic from the UE into the network.
func (c *Cell) ULLink() netem.Link { return dirLink{c, c.ul} }

// DLLink returns the link carrying traffic from the network to the UE.
func (c *Cell) DLLink() netem.Link { return dirLink{c, c.dl} }

type dirLink struct {
	cell *Cell
	d    *direction
}

// Send enqueues the packet into the direction's RLC buffer. Nothing is
// dropped: like a real bearer, data waits for radio resources.
func (l dirLink) Send(p *netem.Packet) {
	l.d.tx.Enqueue(p, l.cell.engine.Now())
}

// ULChannel exposes the uplink channel for scenario scripting.
func (c *Cell) ULChannel() *phy.Channel { return c.ul.channel }

// DLChannel exposes the downlink channel for scenario scripting.
func (c *Cell) DLChannel() *phy.Channel { return c.dl.channel }

// ULCross exposes the uplink cross-traffic generator for scripting.
func (c *Cell) ULCross() *mac.CrossTraffic { return c.ul.cross }

// DLCross exposes the downlink cross-traffic generator for scripting.
func (c *Cell) DLCross() *mac.CrossTraffic { return c.dl.cross }

// RRC exposes the RRC machine for scripting.
func (c *Cell) RRC() *rrc.Machine { return c.rrcm }

// ULSched exposes the uplink grant scheduler for scenario scripting
// (grant-policy shifts scheduled as simulation events).
func (c *Cell) ULSched() *mac.ULScheduler { return c.ulSched }

// Channel returns the channel process for one direction.
func (c *Cell) Channel(dir netem.Direction) *phy.Channel {
	if dir == netem.Uplink {
		return c.ul.channel
	}
	return c.dl.channel
}

// Cross returns the cross-traffic generator for one direction.
func (c *Cell) Cross(dir netem.Direction) *mac.CrossTraffic {
	if dir == netem.Uplink {
		return c.ul.cross
	}
	return c.dl.cross
}

// SetMaxUEShare changes the scheduler-fairness cap on the experiment
// UE's PRB share from the next slot onward. Scenario dynamics schedule
// it on the simulation engine to model a fairness-policy change (e.g.
// the cell admitting a high-priority slice that squeezes the UE).
// Values outside (0, 1] are clamped.
func (c *Cell) SetMaxUEShare(share float64) {
	if share <= 0 {
		share = 1.0 / float64(c.totalPRB)
	}
	if share > 1 {
		share = 1
	}
	c.cfg.MaxUEShare = share
}

// TotalPRB returns the carrier's PRB count.
func (c *Cell) TotalPRB() int { return c.totalPRB }

// Config returns the cell configuration.
func (c *Cell) Config() CellConfig { return c.cfg }

// Stop halts the slot loop.
func (c *Cell) Stop() { c.ticker.Stop() }

// ULBufferBytes returns the UE-side RLC buffer occupancy (the quantity
// BSRs report and Fig. 12 plots).
func (c *Cell) ULBufferBytes() int { return c.ul.tx.BufferedBytes() }

// DLBufferBytes returns the gNB-side RLC buffer occupancy.
func (c *Cell) DLBufferBytes() int { return c.dl.tx.BufferedBytes() }

// onSlot is the per-slot main loop.
func (c *Cell) onSlot(now sim.Time) {
	slot := c.clock.SlotAt(now)
	wasConnected := c.rrcm.State() == rrc.Connected
	connected := c.rrcm.Poll(now)
	if connected != wasConnected {
		c.obs.OnRRC(trace.RRCRecord{At: now, Connected: connected, RNTI: c.rrcm.RNTI(),
			Cause: c.lastRRCCause()})
		c.obs.OnGNBLog(trace.GNBLogRecord{At: now, Kind: trace.GNBLogRRC, RNTI: c.rrcm.RNTI()})
	}
	if !connected {
		// PHY silent: nothing scheduled, buffers build up. No DCI
		// records are emitted — exactly the telemetry gap of Fig. 19.
		return
	}

	if c.cfg.Frame.HasDL(slot) {
		c.processDL(now)
	}
	if c.cfg.Frame.HasUL(slot) {
		c.processUL(now)
	}

	// Periodic gNB RLC buffer log (every 16 slots ≈ 8-16 ms).
	if slot%16 == 0 {
		c.obs.OnGNBLog(trace.GNBLogRecord{At: now, Kind: trace.GNBLogRLCBuffer, Dir: netem.Uplink, BufferBytes: c.ul.tx.BufferedBytes()})
		c.obs.OnGNBLog(trace.GNBLogRecord{At: now, Kind: trace.GNBLogRLCBuffer, Dir: netem.Downlink, BufferBytes: c.dl.tx.BufferedBytes()})
	}
}

func (c *Cell) lastRRCCause() string {
	tr := c.rrcm.Transitions()
	if len(tr) == 0 {
		return ""
	}
	return tr[len(tr)-1].Cause
}

// allocRetx transmits pending HARQ retransmissions with priority and
// returns the PRBs consumed.
func (c *Cell) allocRetx(d *direction, now sim.Time, snr float64, budget int) int {
	used := 0
	kept := d.pendingRetx[:0]
	for _, tb := range d.pendingRetx {
		if tb.PRBs <= budget-used {
			used += tb.PRBs
			d.harq.Transmit(tb, snr, c.clock.SlotDuration)
			c.emitDCI(d, now, tb, 0, true)
		} else {
			kept = append(kept, tb)
		}
	}
	d.pendingRetx = kept
	return used
}

// processDL schedules the downlink slot: retx first, then our UE's
// buffered data competing with cross traffic for PRBs.
func (c *Cell) processDL(now sim.Time) {
	d := c.dl
	snr := d.channel.Sample(now)
	d.lastSNR = snr
	mcs := d.adapter.MCSForSlot(now, snr)

	budget := c.totalPRB
	budget -= c.allocRetx(d, now, snr, budget)

	crossDemand := d.cross.DemandPRBs(now, c.clock.SlotDuration)
	maxOwn := int(float64(c.totalPRB) * c.cfg.MaxUEShare)
	ownDemand := 0
	if buffered := d.tx.BufferedBytes(); buffered > 0 || d.tx.HasEligibleRetx(now) {
		ownDemand = phy.PRBsForBytes(mcs, buffered, maxOwn)
	}

	ownPRB, crossPRB := splitPRBs(ownDemand, crossDemand, budget)
	if ownPRB > 0 {
		c.transmit(d, now, mcs, snr, ownPRB, crossPRB, 0, false)
	} else if crossPRB > 0 {
		// Cross-traffic-only slot still produces a DCI record: NR-Scope
		// decodes every UE's allocations.
		c.obs.OnDCI(trace.DCIRecord{At: now, Dir: d.dir, RNTI: c.rrcm.RNTI(), OtherPRB: crossPRB, MCS: int(mcs)})
	}
}

// processUL runs the request–grant machinery then transmits against
// accumulated grant credit.
func (c *Cell) processUL(now sim.Time) {
	d := c.ul
	snr := d.channel.Sample(now)
	d.lastSNR = snr
	mcs := d.adapter.MCSForSlot(now, snr)

	budget := c.totalPRB
	budget -= c.allocRetx(d, now, snr, budget)

	// The BSR reports buffered bytes not yet covered by unconsumed
	// grant credit, so PRB-capped slots do not trigger duplicate BSRs.
	report := d.tx.BufferedBytes() - d.grantCredit
	if report < 0 {
		report = 0
	}
	usable, proactive := c.ulSched.OnULSlot(now, report)
	if usable > 0 {
		d.grantCredit += usable
		d.grantedBytes += uint64(usable)
		if proactive {
			d.proactiveCredit += usable
		}
	}

	crossDemand := d.cross.DemandPRBs(now, c.clock.SlotDuration)
	maxOwn := int(float64(c.totalPRB) * c.cfg.MaxUEShare)
	ownDemand := 0
	if d.grantCredit > 0 {
		ownDemand = phy.PRBsForBytes(mcs, d.grantCredit, maxOwn)
	}
	ownPRB, crossPRB := splitPRBs(ownDemand, crossDemand, budget)
	if ownPRB > 0 {
		tbBytes := phy.TransportBlockSizeBytes(mcs, ownPRB)
		take := tbBytes
		if take > d.grantCredit {
			take = d.grantCredit
		}
		wasProactive := d.proactiveCredit > 0
		d.grantCredit -= take
		if d.proactiveCredit > 0 {
			pc := take
			if pc > d.proactiveCredit {
				pc = d.proactiveCredit
			}
			d.proactiveCredit -= pc
		}
		c.transmit(d, now, mcs, snr, ownPRB, crossPRB, take, wasProactive)
	} else if crossPRB > 0 {
		c.obs.OnDCI(trace.DCIRecord{At: now, Dir: d.dir, RNTI: c.rrcm.RNTI(), OtherPRB: crossPRB, MCS: int(mcs)})
	}
}

// transmit builds one TB from the direction's RLC buffer and hands it
// to HARQ. grantBytes (UL only) caps the fill to the consumed grant
// credit; zero means fill to the TBS (DL).
func (c *Cell) transmit(d *direction, now sim.Time, mcs phy.MCS, snr float64, ownPRB, crossPRB, grantBytes int, proactive bool) {
	tbsBits := phy.TransportBlockSizeBits(mcs, ownPRB)
	capacity := tbsBits / 8
	if grantBytes > 0 && grantBytes < capacity {
		capacity = grantBytes
	}
	tb := d.takeTB()
	segs, used := d.tx.FillTBInto(tb.Segments[:0], capacity, now)
	waste := capacity - used
	if waste > 0 {
		d.wastedBytes += uint64(waste)
	}
	if len(segs) == 0 {
		tb.Segments = segs
		d.tbPool = append(d.tbPool, tb)
		// Grant went entirely unused (proactive grant with empty
		// buffer, or over-granting): record the wasted allocation.
		c.obs.OnDCI(trace.DCIRecord{
			At: now, Dir: d.dir, RNTI: c.rrcm.RNTI(),
			OwnPRB: ownPRB, OtherPRB: crossPRB, MCS: int(mcs),
			TBSBits: tbsBits, Proactive: proactive, Unused: true,
		})
		return
	}
	carriesRLCRetx := false
	for i := range segs {
		if segs[i].RLCRetx {
			carriesRLCRetx = true
			break
		}
	}
	c.nextTBID++
	*tb = mac.TB{
		ID: c.nextTBID, Dir: d.dir, SentAt: now,
		PRBs: ownPRB, MCS: mcs, TBSBits: tbsBits, UsedBits: used * 8,
		Segments: segs, Proactive: proactive, CarriesRLCRetx: carriesRLCRetx,
	}
	d.tbsSent++
	d.harq.Transmit(tb, snr, c.clock.SlotDuration)
	c.emitDCI(d, now, tb, crossPRB, false)
	if carriesRLCRetx {
		c.obs.OnGNBLog(trace.GNBLogRecord{At: now, Kind: trace.GNBLogRLCRetx, Dir: d.dir, Note: "rlc retx tx"})
	}
}

func (c *Cell) emitDCI(d *direction, now sim.Time, tb *mac.TB, crossPRB int, isRetx bool) {
	c.obs.OnDCI(trace.DCIRecord{
		At: now, Dir: d.dir, RNTI: c.rrcm.RNTI(),
		OwnPRB: tb.PRBs, OtherPRB: crossPRB,
		MCS: int(tb.MCS), TBSBits: tb.TBSBits, UsedBits: tb.UsedBits,
		HARQRetx: isRetx || tb.Attempt > 0, RLCRetx: tb.CarriesRLCRetx,
		Proactive: tb.Proactive, Unused: tb.UsedBits < tb.TBSBits,
	})
}

// splitPRBs divides the slot budget between the experiment UE and the
// cross-traffic aggregate. When both fit, both are satisfied; under
// contention the budget is split proportionally to demand — so heavy
// cross traffic crowds out the experiment UE, as in §5.1.2.
func splitPRBs(own, cross, budget int) (ownPRB, crossPRB int) {
	if own+cross <= budget {
		return own, cross
	}
	total := own + cross
	if total == 0 {
		return 0, 0
	}
	ownPRB = budget * own / total
	if own > 0 && ownPRB == 0 {
		ownPRB = 1
	}
	crossPRB = budget - ownPRB
	if crossPRB > cross {
		crossPRB = cross
	}
	return ownPRB, crossPRB
}

// DebugState exposes internal queue depths for tests and diagnostics.
type DebugState struct {
	ULBufferBytes   int
	ULGrantCredit   int
	ULPendingRetx   int
	ULPendingGrants int
	DLBufferBytes   int
	DLPendingRetx   int
	ULRxPendingSDUs int
	DLRxPendingSDUs int
}

// Debug returns a snapshot of internal queue state.
func (c *Cell) Debug() DebugState {
	return DebugState{
		ULBufferBytes:   c.ul.tx.BufferedBytes(),
		ULGrantCredit:   c.ul.grantCredit,
		ULPendingRetx:   len(c.ul.pendingRetx),
		ULPendingGrants: c.ulSched.PendingGrants(),
		DLBufferBytes:   c.dl.tx.BufferedBytes(),
		DLPendingRetx:   len(c.dl.pendingRetx),
		ULRxPendingSDUs: c.ul.rx.PendingSDUs(),
		DLRxPendingSDUs: c.dl.rx.PendingSDUs(),
	}
}

// DirStats summarizes a direction's counters for tests and telemetry.
type DirStats struct {
	TBsSent      uint64
	WastedBytes  uint64
	GrantedBytes uint64
	HARQFirstTx  uint64
	HARQRetx     uint64
	HARQExhaust  uint64
	RLCRetx      uint64
	HoLBurstMax  int
}

// ULStats returns uplink counters.
func (c *Cell) ULStats() DirStats { return statsOf(c.ul) }

// DLStats returns downlink counters.
func (c *Cell) DLStats() DirStats { return statsOf(c.dl) }

func statsOf(d *direction) DirStats {
	return DirStats{
		TBsSent:      d.tbsSent,
		WastedBytes:  d.wastedBytes,
		GrantedBytes: d.grantedBytes,
		HARQFirstTx:  d.harq.FirstTx,
		HARQRetx:     d.harq.Retx,
		HARQExhaust:  d.harq.Exhausted,
		RLCRetx:      d.tx.RetxCount,
		HoLBurstMax:  d.rx.HoLBlockedMax,
	}
}
