package domino

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"github.com/domino5g/domino/internal/core"
	"github.com/domino5g/domino/internal/experiments"
	"github.com/domino5g/domino/internal/ran"
	"github.com/domino5g/domino/internal/rtc"
	"github.com/domino5g/domino/internal/scenario"
	"github.com/domino5g/domino/internal/sim"
	"github.com/domino5g/domino/internal/stream"
	"github.com/domino5g/domino/internal/trace"
)

// Every table and figure of the paper's evaluation has a benchmark that
// regenerates it (DESIGN.md §6). Benchmarks double as the reproduction
// harness: run `go test -bench=. -benchmem` to regenerate all
// artifacts; per-artifact text output comes from cmd/experiments.

const benchDuration = 20 * sim.Second

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opts := experiments.Options{Duration: benchDuration, Seed: 1, Sessions: 1}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Text) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// benchRunAll regenerates every artifact through the batch engine with
// the given worker-pool width; the sequential/parallel pair below is
// the headline scaling comparison (artifact text is identical in both,
// only the wall clock moves).
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	opts := experiments.Options{Duration: benchDuration, Seed: 1, Sessions: 1, Workers: workers}
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(experiments.IDs()) {
			b.Fatalf("got %d artifacts, want %d", len(results), len(experiments.IDs()))
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B)   { benchRunAll(b, runtime.GOMAXPROCS(0)) }

// BenchmarkAnalyzeBatch measures the concurrent batch analyzer over
// eight independent 10 s traces.
func BenchmarkAnalyzeBatch(b *testing.B) {
	sets := make([]*trace.Set, 8)
	for i := range sets {
		sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		sets[i] = sess.Run(10 * sim.Second)
	}
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.AnalyzeBatch(workers, sets...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamAnalyzer compares the incremental analyzer against
// batch analysis on one 10 s session: records/s is ingest throughput,
// max-buffered-samples the peak trace state each path holds (the
// streaming path's O(window) bound versus the batch path's O(trace)).
func BenchmarkStreamAnalyzer(b *testing.B) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), 1))
	if err != nil {
		b.Fatal(err)
	}
	set := sess.Run(10 * sim.Second)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, set); err != nil {
		b.Fatal(err)
	}
	sr := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
	var records []trace.Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		records = append(records, rec)
	}
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	totalSamples := float64(len(records) - 1) // minus header

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		// One analyzer recycled across sessions via Reset — the pooled
		// steady state a fleet ingest service (cmd/dominod) runs in.
		sa := stream.New(analyzer, stream.Config{})
		var peak int
		for i := 0; i < b.N; i++ {
			sa.Reset()
			for _, rec := range records {
				if err := sa.Push(rec); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sa.Close(); err != nil {
				b.Fatal(err)
			}
			peak = sa.Stats().MaxBuffered
		}
		b.ReportMetric(totalSamples*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(float64(peak), "max-buffered-samples")
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := analyzer.Analyze(set); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(totalSamples*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		b.ReportMetric(totalSamples, "max-buffered-samples")
	})
}

// BenchmarkWindowEval measures the rolling window evaluator alone: one
// 10 s session's records observed and every window position evaluated
// with eviction, exactly as the streaming analyzer drives it. The
// evaluator is recycled via Reset, so the number reflects the pooled
// steady state (windows/s and the zero-alloc eval contract).
func BenchmarkWindowEval(b *testing.B) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), 3))
	if err != nil {
		b.Fatal(err)
	}
	set := sess.Run(10 * sim.Second)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, set); err != nil {
		b.Fatal(err)
	}
	sr := trace.NewStreamReader(bytes.NewReader(buf.Bytes()))
	var records []trace.Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		if rec.Header == nil {
			records = append(records, rec)
		}
	}
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := analyzer.Config()
	eval := analyzer.NewWindowEvaluator(set.HasGNBLog)
	end := set.Duration - cfg.Window
	windows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Reset(set.HasGNBLog)
		for _, rec := range records {
			eval.Observe(rec)
		}
		windows = 0
		for start := sim.Time(0); start <= end; start += cfg.Step {
			eval.EvictBefore(start)
			eval.Eval(start)
			windows++
		}
	}
	b.ReportMetric(float64(windows*b.N)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(float64(len(records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkIncrementalStep measures the compiled-DAG state machine
// alone: feeding one session's precomputed feature vectors through
// Incremental.Step (backward trace, run collapsing), with the
// Incremental recycled via Reset.
func BenchmarkIncrementalStep(b *testing.B) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), 3))
	if err != nil {
		b.Fatal(err)
	}
	set := sess.Run(10 * sim.Second)
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := analyzer.Analyze(set)
	if err != nil {
		b.Fatal(err)
	}
	vectors := make([]core.FeatureVector, len(rep.Windows))
	for i, w := range rep.Windows {
		vectors[i] = w.Vector
	}
	inc := analyzer.NewIncremental(set.CellName)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Reset(set.CellName)
		inc.SetKeepWindows(false)
		for _, v := range vectors {
			inc.Step(v)
		}
		inc.Finish(set.Duration)
	}
	b.ReportMetric(float64(len(vectors)*b.N)/b.Elapsed().Seconds(), "steps/s")
}

func BenchmarkTable1DatasetRates(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig2DelayCDF(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig3JitterBuffer(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4Playback(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5ZoomJitter(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6ZoomLoss(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkFig8CellMetrics(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig10EventFrequencies(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkTable2ConditionalProb(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3Resolutions(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4ChainRatios(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkFig11Codegen(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12ChannelDip(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13CrossTraffic(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14DelaySpread(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig16ProactiveGrants(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17HARQ(b *testing.B)             { benchExperiment(b, "fig17") }
func BenchmarkFig18RLCRetx(b *testing.B)          { benchExperiment(b, "fig18") }
func BenchmarkFig19RRC(b *testing.B)              { benchExperiment(b, "fig19") }
func BenchmarkFig20Freeze(b *testing.B)           { benchExperiment(b, "fig20") }
func BenchmarkFig21GCCTargetRate(b *testing.B)    { benchExperiment(b, "fig21") }
func BenchmarkFig22Pushback(b *testing.B)         { benchExperiment(b, "fig22") }
func BenchmarkHeadlineEventsPerMin(b *testing.B)  { benchExperiment(b, "headline") }
func BenchmarkScenarioCatalog(b *testing.B)       { benchExperiment(b, "scenarios") }

// BenchmarkScenarioTraceGen measures trace-generation throughput per
// registered scenario: one simulated call per iteration, reporting
// emitted trace records per wall-clock second. Together with
// BenchmarkStreamAnalyzer these feed `make bench-json`
// (BENCH_scenarios.json), the perf-trajectory artifact CI uploads.
func BenchmarkScenarioTraceGen(b *testing.B) {
	for _, name := range scenario.Names() {
		b.Run(name, func(b *testing.B) {
			sc, err := scenario.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var total float64
			for i := 0; i < b.N; i++ {
				sess, err := sc.Build(1)
				if err != nil {
					b.Fatal(err)
				}
				set := sess.Run(benchDuration)
				c := set.Counts()
				total += float64(c.DCI + c.GNBLog + c.Packets + c.WebRTC)
			}
			b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
			b.ReportMetric(benchDuration.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "sim-s/s")
		})
	}
}

// --- Component benchmarks: simulator throughput and analyzer cost. ---

// BenchmarkSimulatedCallSecond measures simulator throughput: one
// simulated call-second on the Amarisoft preset per iteration.
func BenchmarkSimulatedCallSecond(b *testing.B) {
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), 1))
	if err != nil {
		b.Fatal(err)
	}
	sess.Local.Start()
	sess.Remote.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Engine.RunUntil(sim.Time(i+1) * sim.Second)
	}
}

// benchTraceSet builds one reusable trace for analyzer benchmarks.
func benchTraceSet(b *testing.B) *trace.Set {
	b.Helper()
	sess, err := rtc.NewSession(rtc.DefaultSessionConfig(ran.Amarisoft(), 5))
	if err != nil {
		b.Fatal(err)
	}
	return sess.Run(30 * sim.Second)
}

// BenchmarkAnalyzerInterp measures the in-process backward-trace
// detector over a 30 s cross-layer trace.
func BenchmarkAnalyzerInterp(b *testing.B) {
	set := benchTraceSet(b)
	analyzer, err := core.NewAnalyzer(core.DetectorConfig{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorCodegen measures generating the Go detector source
// from the default graph (the Fig. 11 path).
func BenchmarkDetectorCodegen(b *testing.B) {
	g := core.DefaultGraph()
	for i := 0; i < b.N; i++ {
		src := core.GenerateGo(g, "detect")
		if !strings.Contains(src, "BackwardTrace") {
			b.Fatal("bad codegen")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §7). ---

// BenchmarkAblationWindow sweeps the sliding-window length W and
// reports detected chain events, showing detection stability versus
// window geometry.
func BenchmarkAblationWindow(b *testing.B) {
	set := benchTraceSet(b)
	for _, w := range []sim.Time{2 * sim.Second, 5 * sim.Second, 10 * sim.Second} {
		name := w.String()
		b.Run("W="+name, func(b *testing.B) {
			analyzer, err := core.NewAnalyzer(core.DetectorConfig{Window: w}, nil)
			if err != nil {
				b.Fatal(err)
			}
			var events int
			for i := 0; i < b.N; i++ {
				rep, err := analyzer.Analyze(set)
				if err != nil {
					b.Fatal(err)
				}
				events = rep.TotalChainEvents()
			}
			b.ReportMetric(float64(events), "chain-events")
		})
	}
}

// BenchmarkAblationProactiveGrants compares first-packet UL latency
// with and without Mosolabs-style proactive grants.
func BenchmarkAblationProactiveGrants(b *testing.B) {
	for _, pro := range []bool{true, false} {
		name := "proactive=off"
		if pro {
			name = "proactive=on"
		}
		b.Run(name, func(b *testing.B) {
			var medMs float64
			for i := 0; i < b.N; i++ {
				cfg := ran.Mosolabs()
				cfg.ULGrants.Proactive = pro
				sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				set := sess.Run(benchDuration)
				delays := set.PacketDelays(0) // uplink, all kinds
				if len(delays) == 0 {
					b.Fatal("no packets")
				}
				sum := 0.0
				for _, d := range delays {
					sum += d
				}
				medMs = sum / float64(len(delays))
			}
			b.ReportMetric(medMs, "mean-UL-delay-ms")
		})
	}
}

// BenchmarkAblationHARQLimit sweeps the HARQ retransmission cap and
// reports RLC recovery activity: lower caps push recovery to the
// (much slower) RLC layer.
func BenchmarkAblationHARQLimit(b *testing.B) {
	for _, maxAttempts := range []int{2, 5, 8} {
		b.Run("maxAttempts="+strconv.Itoa(maxAttempts), func(b *testing.B) {
			var rlcRetx uint64
			for i := 0; i < b.N; i++ {
				cfg := ran.Amarisoft()
				cfg.HARQ.MaxAttempts = maxAttempts
				sess, err := rtc.NewSession(rtc.DefaultSessionConfig(cfg, 9))
				if err != nil {
					b.Fatal(err)
				}
				sess.Run(benchDuration)
				rlcRetx = sess.Cell.ULStats().RLCRetx
			}
			b.ReportMetric(float64(rlcRetx), "rlc-retx")
		})
	}
}

// BenchmarkAblationTrendlineThreshold compares the adaptive threshold
// against a fixed one by counting overuse events on the same trace.
func BenchmarkAblationTrendlineThreshold(b *testing.B) {
	for _, adaptive := range []bool{true, false} {
		name := "threshold=fixed"
		if adaptive {
			name = "threshold=adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var overuses uint64
			for i := 0; i < b.N; i++ {
				cfg := rtc.DefaultSessionConfig(ran.TMobileFDD(), 13)
				if !adaptive {
					// Freeze the threshold by zeroing the gains.
					cfg.Local.GCC.Trendline.KUp = 0
					cfg.Local.GCC.Trendline.KDown = 0
				}
				sess, err := rtc.NewSession(cfg)
				if err != nil {
					b.Fatal(err)
				}
				sess.Run(benchDuration)
				overuses = sess.Local.Controller().Snapshot(benchDuration).OveruseEvents
			}
			b.ReportMetric(float64(overuses), "overuse-events")
		})
	}
}
