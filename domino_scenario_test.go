package domino

import (
	"bytes"
	"strings"
	"testing"
)

// TestScenarioFacadeEndToEnd drives the public scenario API: resolve a
// registered scenario, simulate it, serialize the trace, and stream it
// back through the analyzer — the report must carry both the cell and
// the scenario label end to end.
func TestScenarioFacadeEndToEnd(t *testing.T) {
	if len(ScenarioNames()) < 12 {
		t.Fatalf("facade lists %d scenarios, want >= 12", len(ScenarioNames()))
	}
	sc, err := ScenarioByName("harq-storm")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewScenarioSession(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Run(6 * Second)
	if set.Scenario != "harq-storm" {
		t.Fatalf("trace scenario label %q", set.Scenario)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, set); err != nil {
		t.Fatal(err)
	}
	analyzer, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := StreamRecords(&buf, NewStreamAnalyzer(analyzer, StreamConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenario != "harq-storm" || report.CellName != "Amarisoft 20MHz TDD" {
		t.Fatalf("report labels: cell=%q scenario=%q", report.CellName, report.Scenario)
	}

	// JSON round trip through the facade parser.
	blob, err := sc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != sc.Name || len(back.Dynamics) != len(sc.Dynamics) {
		t.Fatalf("facade round trip mismatch: %+v", back)
	}
}

// TestPresetByNameCaseInsensitive pins the satellite contract: lookups
// ignore case and unknown names enumerate the valid slugs.
func TestPresetByNameCaseInsensitive(t *testing.T) {
	for _, name := range []string{"AMARISOFT", "Amarisoft", "T-MOBILE 15MHZ FDD", "FDD", " mosolabs "} {
		if _, err := PresetByName(name); err != nil {
			t.Fatalf("PresetByName(%q): %v", name, err)
		}
	}
	_, err := PresetByName("ericsson")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	for _, want := range []string{"tmobile-tdd", "tmobile-fdd", "amarisoft", "mosolabs"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %q", err, want)
		}
	}
	if len(CellNames()) != 4 {
		t.Fatalf("CellNames() = %v", CellNames())
	}
}
