package domino

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPIPipeline exercises the documented end-to-end flow: pick
// a preset, simulate a call, analyze it, and round-trip the trace
// through the JSONL format.
func TestPublicAPIPipeline(t *testing.T) {
	cell, err := PresetByName("mosolabs")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(DefaultSessionConfig(cell, 21))
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Run(15 * Second)

	analyzer, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	report, err := analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if report.Duration != 15*Second {
		t.Fatalf("report duration %v", report.Duration)
	}
	if len(analyzer.Chains()) != 24 {
		t.Fatalf("default chains = %d, want 24", len(analyzer.Chains()))
	}

	// Trace round trip.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, set); err != nil {
		t.Fatal(err)
	}
	set2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if set2.CellName != set.CellName || set2.Duration != set.Duration {
		t.Fatal("trace header did not round trip")
	}
	c1, c2 := set.Counts(), set2.Counts()
	if c1 != c2 {
		t.Fatalf("record counts changed: %+v vs %+v", c1, c2)
	}
	// Re-analysis of the round-tripped trace must agree.
	report2, err := analyzer.Analyze(set2)
	if err != nil {
		t.Fatal(err)
	}
	if report2.TotalChainEvents() != report.TotalChainEvents() {
		t.Fatal("analysis diverged after trace round trip")
	}
}

// TestAnalyzeBatchConcurrent drives one shared Analyzer over several
// independent traces concurrently and checks the batch output is
// position-for-position identical to sequential Analyze calls. Run
// under -race (as CI does) this also proves the documented claim that
// an Analyzer is safe for concurrent use.
func TestAnalyzeBatchConcurrent(t *testing.T) {
	analyzer, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	presets := Presets()
	sets := make([]*TraceSet, len(presets))
	for i, cell := range presets {
		sess, err := NewSession(DefaultSessionConfig(cell, uint64(31+i)))
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = sess.Run(10 * Second)
	}
	batch, err := AnalyzeBatch(analyzer, len(sets), sets...)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sets) {
		t.Fatalf("got %d reports, want %d", len(batch), len(sets))
	}
	for i, set := range sets {
		seq, err := analyzer.Analyze(set)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].CellName != set.CellName {
			t.Fatalf("report %d is for %q, want %q", i, batch[i].CellName, set.CellName)
		}
		if batch[i].TotalChainEvents() != seq.TotalChainEvents() {
			t.Fatalf("report %d: batch found %d chain events, sequential %d",
				i, batch[i].TotalChainEvents(), seq.TotalChainEvents())
		}
		for _, node := range append(CauseClasses(), ConsequenceClasses()...) {
			if batch[i].EventCount(node) != seq.EventCount(node) {
				t.Fatalf("report %d node %s: batch %d events, sequential %d",
					i, node, batch[i].EventCount(node), seq.EventCount(node))
			}
		}
	}
}

// TestPublicStreamingMatchesBatch exercises the streaming façade: a
// trace streamed record-by-record through NewStreamAnalyzer +
// StreamRecords must reproduce the batch Analyze report.
func TestPublicStreamingMatchesBatch(t *testing.T) {
	cell, err := PresetByName("fdd")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(DefaultSessionConfig(cell, 23))
	if err != nil {
		t.Fatal(err)
	}
	set := sess.Run(10 * Second)

	analyzer, err := NewAnalyzer(DetectorConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := analyzer.Analyze(set)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf, set); err != nil {
		t.Fatal(err)
	}
	var windows int
	sa := NewStreamAnalyzer(analyzer, StreamConfig{
		OnWindow: func(WindowResult) { windows++ },
	})
	streamed, err := StreamRecords(&buf, sa)
	if err != nil {
		t.Fatal(err)
	}
	if windows != len(batch.Windows) {
		t.Fatalf("streamed %d windows, batch %d", windows, len(batch.Windows))
	}
	if streamed.TotalChainEvents() != batch.TotalChainEvents() {
		t.Fatalf("chain events: stream %d, batch %d", streamed.TotalChainEvents(), batch.TotalChainEvents())
	}
	for _, node := range append(CauseClasses(), ConsequenceClasses()...) {
		if streamed.EventCount(node) != batch.EventCount(node) {
			t.Fatalf("node %s: stream %d events, batch %d", node, streamed.EventCount(node), batch.EventCount(node))
		}
	}
	if stats := sa.Stats(); stats.MaxBuffered == 0 || stats.Records == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestPublicChainParsing(t *testing.T) {
	g, err := ParseChainsString(DefaultChainsText)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.EnumerateChains()) != 24 {
		t.Fatal("default chain text must produce 24 chains")
	}
	g2, err := ParseChains(strings.NewReader("a --> b --> c"))
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateGo(g2, "demo")
	if !strings.Contains(src, "package demo") || !strings.Contains(src, "BackwardTrace") {
		t.Fatal("GenerateGo output malformed")
	}
}

func TestPublicClassesAndPresets(t *testing.T) {
	if len(CauseClasses()) != 6 {
		t.Fatal("six cause classes")
	}
	if len(ConsequenceClasses()) != 3 {
		t.Fatal("three consequence classes")
	}
	if len(Presets()) != 4 {
		t.Fatal("four cell presets (Table 1)")
	}
	if DefaultDetectorConfig().Window != 5*Second {
		t.Fatal("default window must be the paper's 5 s")
	}
}
