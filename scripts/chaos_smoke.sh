#!/usr/bin/env sh
# chaos_smoke.sh — end-to-end crash-recovery check for dominod's
# durability layer.
#
# Two runs of the same fleet workload, pinned to the same -fixed-clock:
#   A (graceful): ingest four sessions, SIGTERM, final checkpoint.
#   B (crash):    ingest three sessions, then kill -9 mid-way through
#                 the fourth upload — no drain, no checkpoint, nothing
#                 but the write-ahead journal survives. Restart on the
#                 same journal, assert all three completed reports were
#                 replayed, then deliver the interrupted session again
#                 and shut down gracefully.
# The final checkpoints of both runs must be byte-identical: recovery
# plus re-delivery is indistinguishable from never having crashed.
# Artifacts (daemon logs, both checkpoints, the surviving journal)
# land in OUT_DIR (default ./chaos-smoke) so CI can upload them.
set -eu

OUT_DIR="${OUT_DIR:-chaos-smoke}"
ADDR="${ADDR:-127.0.0.1:18177}"

mkdir -p "$OUT_DIR"
BIN_DIR="$(mktemp -d)"
WORK="$(mktemp -d)"
DOMINOD_PID=""
cleanup() {
    [ -n "$DOMINOD_PID" ] && kill "$DOMINOD_PID" 2>/dev/null || true
    rm -rf "$BIN_DIR" "$WORK"
}
trap cleanup EXIT INT TERM

. "$(dirname "$0")/smoke_lib.sh"

echo "== building dominod and tracegen"
smoke_build ./cmd/dominod ./cmd/tracegen

echo "== run A: four sessions, graceful shutdown"
start_dominod "$ADDR" "$WORK/a.spill" "$OUT_DIR/dominod-a.log"
DOMINOD_PID=$STARTED_PID
upload "http://$ADDR" s1 amarisoft 11 10
upload "http://$ADDR" s2 mosolabs 12 10
upload "http://$ADDR" s3 tmobile-tdd 13 10
upload "http://$ADDR" doomed tmobile-fdd 14 40
kill -TERM "$DOMINOD_PID"
wait "$DOMINOD_PID" || true
DOMINOD_PID=""
[ -s "$WORK/a.spill" ] || { echo "run A left no checkpoint"; exit 1; }

echo "== run B: three sessions, then kill -9 mid-upload"
start_dominod "$ADDR" "$WORK/b.spill" "$OUT_DIR/dominod-b.log"
DOMINOD_PID=$STARTED_PID
upload "http://$ADDR" s1 amarisoft 11 10
upload "http://$ADDR" s2 mosolabs 12 10
upload "http://$ADDR" s3 tmobile-tdd 13 10
# The fourth upload is throttled so the SIGKILL lands mid-stream.
"$BIN_DIR/tracegen" -cell tmobile-fdd -seed 14 -duration 40 -o "$WORK/doomed.jsonl" 2>/dev/null
set +e
curl -fsS -X POST -H 'Content-Type: application/jsonl' --limit-rate 100K \
    --data-binary @"$WORK/doomed.jsonl" "http://$ADDR/ingest?session=doomed" \
    >/dev/null 2>&1 &
CURL_PID=$!
sleep 0.5
kill -9 "$DOMINOD_PID"
wait "$DOMINOD_PID" 2>/dev/null
wait "$CURL_PID"
CURL_RC=$?
set -e
DOMINOD_PID=""
[ "$CURL_RC" -ne 0 ] || {
    echo "interrupted upload finished before the kill; raise -duration"; exit 1; }
[ -s "$WORK/b.spill.wal" ] || { echo "no journal survived the crash"; exit 1; }
cp "$WORK/b.spill.wal" "$OUT_DIR/journal-after-crash.wal"

echo "== restarting on the surviving journal"
start_dominod "$ADDR" "$WORK/b.spill" "$OUT_DIR/dominod-b.log"
DOMINOD_PID=$STARTED_PID
grep -q '"replayed":3' "$OUT_DIR/dominod-b.log" || {
    echo "restart did not replay the three journaled reports"
    grep '"RCA store recovered"' "$OUT_DIR/dominod-b.log" || true; exit 1; }
# The crashed process took the session registry with it: the
# interrupted session is unknown and is simply delivered again.
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/report/doomed")"
[ "$code" = "404" ] || { echo "interrupted session survived the crash ($code)"; exit 1; }
upload "http://$ADDR" doomed tmobile-fdd 14 40
kill -TERM "$DOMINOD_PID"
wait "$DOMINOD_PID" || true
DOMINOD_PID=""

echo "== comparing graceful checkpoint with post-crash checkpoint"
cp "$WORK/a.spill" "$OUT_DIR/graceful.spill"
cp "$WORK/b.spill" "$OUT_DIR/recovered.spill"
cmp "$WORK/a.spill" "$WORK/b.spill" || {
    echo "recovered store diverges from the graceful run"; exit 1; }
# A graceful shutdown folds the journal into the checkpoint and
# truncates it: an empty journal is the proof the fold happened.
[ ! -s "$WORK/b.spill.wal" ] || { echo "journal not truncated by final checkpoint"; exit 1; }

echo "chaos smoke OK: crash recovery is byte-identical to a graceful run"
